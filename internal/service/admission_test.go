package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/ccd"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestAdmitRequestShedsOverCapacity(t *testing.T) {
	e := New(Options{Workers: 1, Admission: AdmissionConfig{MaxQueue: 1}})
	if got := e.AdmissionCapacity(); got != 2 {
		t.Fatalf("capacity %d, want workers+queue = 2", got)
	}

	rel1, err := e.AdmitRequest()
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := e.AdmitRequest()
	if err != nil {
		t.Fatal(err)
	}
	// Third concurrent request is over capacity: shed, not queued.
	if _, err := e.AdmitRequest(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-capacity admit returned %v, want ErrOverloaded", err)
	}

	// Releasing one slot readmits; double-release must not free two slots.
	rel1()
	rel1()
	rel3, err := e.AdmitRequest()
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	if _, err := e.AdmitRequest(); !errors.Is(err, ErrOverloaded) {
		t.Fatal("double-release freed a phantom slot")
	}
	rel2()
	rel3()

	adm := e.Metrics().Admission
	if !adm.Enabled || adm.Capacity != 2 {
		t.Errorf("snapshot enabled=%v capacity=%d, want true/2", adm.Enabled, adm.Capacity)
	}
	if adm.Inflight != 0 {
		t.Errorf("inflight %d after all releases, want 0", adm.Inflight)
	}
	if adm.Admitted != 3 || adm.Shed != 2 {
		t.Errorf("admitted=%d shed=%d, want 3/2", adm.Admitted, adm.Shed)
	}
}

func TestAdmissionDisabledStillCounts(t *testing.T) {
	e := New(Options{Workers: 1}) // zero AdmissionConfig: no shedding
	var rels []func()
	for i := 0; i < 100; i++ {
		rel, err := e.AdmitRequest()
		if err != nil {
			t.Fatalf("admit %d with admission disabled: %v", i, err)
		}
		rels = append(rels, rel)
	}
	adm := e.Metrics().Admission
	if adm.Enabled || adm.Capacity != 0 {
		t.Errorf("snapshot enabled=%v capacity=%d, want false/0", adm.Enabled, adm.Capacity)
	}
	if adm.Inflight != 100 {
		t.Errorf("inflight %d, want 100 (depth is reported even when unbounded)", adm.Inflight)
	}
	for _, rel := range rels {
		rel()
	}
}

func TestRetryAfterBounds(t *testing.T) {
	e := New(Options{Workers: 2, Admission: AdmissionConfig{MaxQueue: 4}})
	// No latency signal, nothing in flight: still at least a second.
	if d := e.RetryAfter(); d < time.Second || d > 30*time.Second {
		t.Errorf("idle RetryAfter %v outside [1s, 30s]", d)
	}
	// A huge queue against a slow p99 clamps at the ceiling.
	e.ctr.inflight.Store(10_000)
	e.ctr.matchLatency.Observe(20_000_000) // one 20s match
	if d := e.RetryAfter(); d != 30*time.Second {
		t.Errorf("saturated RetryAfter %v, want the 30s clamp", d)
	}
	e.ctr.inflight.Store(0)
}

// TestBackgroundYieldsToInteractive pins the priority inversion fix: with the
// pool fully occupied and an interactive request waiting, a background task
// that arrives later must not steal the freed slot.
func TestBackgroundYieldsToInteractive(t *testing.T) {
	e := New(Options{Workers: 1})
	block := make(chan struct{})
	occupied := make(chan struct{})
	go e.Do(func() { close(occupied); <-block })
	<-occupied

	order := make(chan string, 2)
	go func() {
		_ = e.DoCtx(context.Background(), func() { order <- "interactive" })
	}()
	waitFor(t, "interactive waiter registered", func() bool {
		return e.ctr.interactiveWaiting.Load() == 1
	})

	go func() {
		_ = e.DoCtx(WithClass(context.Background(), ClassBackground), func() { order <- "background" })
	}()
	waitFor(t, "background task parked", func() bool {
		return e.ctr.yields.Load() >= 1
	})

	close(block) // free the slot while both are waiting
	if first := <-order; first != "interactive" {
		t.Fatalf("background task won the freed slot (ran %q first)", first)
	}
	if second := <-order; second != "background" {
		t.Fatalf("second completion %q, want background", second)
	}
	if y := e.Metrics().Admission.BackgroundYields; y < 1 {
		t.Errorf("background_yields %d, want >= 1", y)
	}
}

// TestBackgroundYieldCancellable: a parked background task must honor its
// context instead of spinning until the interactive queue drains.
func TestBackgroundYieldCancellable(t *testing.T) {
	e := New(Options{Workers: 1})
	block := make(chan struct{})
	occupied := make(chan struct{})
	go e.Do(func() { close(occupied); <-block })
	<-occupied
	defer close(block)

	go func() {
		_ = e.DoCtx(context.Background(), func() {})
	}()
	waitFor(t, "interactive waiter registered", func() bool {
		return e.ctr.interactiveWaiting.Load() == 1
	})

	ctx, cancel := context.WithCancel(WithClass(context.Background(), ClassBackground))
	errc := make(chan error, 1)
	go func() {
		errc <- e.DoCtx(ctx, func() { t.Error("cancelled background task ran") })
	}()
	waitFor(t, "background task parked", func() bool { return e.ctr.yields.Load() >= 1 })
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parked background task returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked background task ignored cancellation")
	}
}

// TestCloneStudyYieldsToInteractive proves the self-join runs at background
// class end to end: with an interactive request already waiting for the only
// worker slot, a freshly started clone study parks instead of competing, and
// the interactive request wins the slot when it frees.
func TestCloneStudyYieldsToInteractive(t *testing.T) {
	e := New(Options{Workers: 1, Shards: 2})
	for i := 0; i < 4; i++ {
		if err := e.CorpusAddFingerprint(fmt.Sprintf("doc-%d", i), testFP(i)); err != nil {
			t.Fatal(err)
		}
	}

	block := make(chan struct{})
	occupied := make(chan struct{})
	go e.Do(func() { close(occupied); <-block })
	<-occupied

	order := make(chan string, 2)
	go func() {
		_ = e.DoCtx(context.Background(), func() { order <- "interactive" })
	}()
	waitFor(t, "interactive waiter registered", func() bool {
		return e.ctr.interactiveWaiting.Load() == 1
	})

	studyDone := make(chan error, 1)
	go func() {
		_, err := e.RunCloneStudy(context.Background(), "", 0, 3)
		order <- "study"
		studyDone <- err
	}()
	waitFor(t, "study segment parked behind interactive work", func() bool {
		return e.ctr.yields.Load() >= 1
	})

	close(block)
	if first := <-order; first != "interactive" {
		t.Fatalf("study segment beat the waiting interactive request (%q ran first)", first)
	}
	<-order
	if err := <-studyDone; err != nil {
		t.Fatalf("study failed after yielding: %v", err)
	}
}

// TestBackpressureEngagesAndReleases drives the full loop: slow fsyncs raise
// the rolling p99 past the threshold (acks slow down), fast fsyncs wash the
// window clean (acks speed back up). The cumulative histogram could never
// express the second half.
func TestBackpressureEngagesAndReleases(t *testing.T) {
	dir := t.TempDir()
	c := NewCorpus(ccd.DefaultConfig, 2)
	store, err := OpenStore(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	store.SetBackpressure(BackpressureConfig{FsyncP99: time.Millisecond, MaxDelay: 5 * time.Millisecond})

	// A sick disk: every fsync takes ~4ms.
	store.wal.syncHook = func() error { time.Sleep(4 * time.Millisecond); return nil }
	for i := 0; i < 3; i++ {
		if err := c.Add(fmt.Sprintf("slow-%d", i), testFP(i)); err != nil {
			t.Fatal(err)
		}
	}
	d := store.Durability()
	if !d.BackpressureEngaged {
		t.Fatalf("backpressure not engaged at recent p99 %dus (threshold 1ms)", d.RecentFsyncP99Us)
	}
	// The first add seeds the window; later adds over the threshold are slowed.
	if d.BackpressureDelays < 1 {
		t.Fatalf("no acks slowed under a 4ms-fsync disk: %+v", d)
	}
	if d.BackpressureDelayUs <= 0 {
		t.Errorf("delays counted but no delay time accumulated: %+v", d)
	}

	// The disk recovers: enough healthy fsyncs must evict every slow sample
	// from the rolling window and disengage backpressure. The healthy disk is
	// simulated too — a real fsync on a loaded CI disk can exceed the 1ms
	// threshold, and the window eviction is what's under test here.
	store.wal.syncHook = func() error { return nil }
	for i := 0; i < recentFsyncWindow+4; i++ {
		if err := c.Add(fmt.Sprintf("fast-%d", i), testFP(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	d2 := store.Durability()
	if d2.BackpressureEngaged {
		t.Fatalf("backpressure still engaged after recovery: recent p99 %dus", d2.RecentFsyncP99Us)
	}
	delaysAtRecovery := d2.BackpressureDelays
	if err := c.Add("post-recovery", testFP(9999)); err != nil {
		t.Fatal(err)
	}
	if got := store.Durability().BackpressureDelays; got != delaysAtRecovery {
		t.Errorf("healthy-disk add was slowed: delays %d -> %d", delaysAtRecovery, got)
	}
}

// TestBackpressureDisabledByDefault: without SetBackpressure no delay is ever
// injected, whatever the disk does.
func TestBackpressureDisabledByDefault(t *testing.T) {
	dir := t.TempDir()
	c := NewCorpus(ccd.DefaultConfig, 2)
	store, err := OpenStore(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	store.wal.syncHook = func() error { time.Sleep(2 * time.Millisecond); return nil }
	for i := 0; i < 3; i++ {
		if err := c.Add(fmt.Sprintf("doc-%d", i), testFP(i)); err != nil {
			t.Fatal(err)
		}
	}
	d := store.Durability()
	if d.BackpressureDelays != 0 || d.BackpressureEngaged {
		t.Errorf("backpressure active without a policy: %+v", d)
	}
	if d.RecentFsyncP99Us <= 0 {
		t.Errorf("rolling fsync p99 not tracked: %+v", d)
	}
}
