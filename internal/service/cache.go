package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"sync"

	"repro/internal/solidity"
)

// Key is the content address of a source text: the SHA-256 of its normalized
// form. Two sources differing only in comments or whitespace share a key —
// the same normalization the study pipeline uses for deduplication — so
// every cache layer (parse, report, fingerprint) deduplicates exactly the
// inputs the paper's funnel collapses.
type Key string

// ContentKey normalizes src (comments stripped, whitespace collapsed) and
// hashes it. Cached CCC reports therefore carry the line/column positions of
// whichever comment/whitespace variant was analyzed first; the analysis
// verdict itself is invariant under the normalization.
func ContentKey(src string) Key {
	s := solidity.StripComments(src)
	h := sha256.Sum256([]byte(strings.Join(strings.Fields(s), " ")))
	return Key(hex.EncodeToString(h[:]))
}

// CacheStats is a point-in-time view of one cache's effectiveness, reported
// by the /metrics endpoint.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Len       int   `json:"len"`
	Cap       int   `json:"cap"`
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// lru is a mutex-guarded, fixed-capacity LRU cache from content keys to
// values. A nil *lru (capacity < 0, used by benchmarks to measure the
// uncached path) never hits and never stores.
type lru[V any] struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[Key]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type lruEntry[V any] struct {
	key Key
	val V
}

// newLRU returns a cache holding up to capacity entries; capacity < 0
// disables the cache entirely (every Get misses, Put is a no-op).
func newLRU[V any](capacity int) *lru[V] {
	if capacity < 0 {
		return nil
	}
	if capacity == 0 {
		capacity = DefaultCacheEntries
	}
	return &lru[V]{cap: capacity, ll: list.New(), items: make(map[Key]*list.Element)}
}

func (c *lru[V]) Get(k Key) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(lruEntry[V]).val, true
}

func (c *lru[V]) Put(k Key, v V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value = lruEntry[V]{key: k, val: v}
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(lruEntry[V]{key: k, val: v})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(lruEntry[V]).key)
		c.evictions++
	}
}

func (c *lru[V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *lru[V]) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Len: c.ll.Len(), Cap: c.cap}
}
