package service

import (
	"context"
	"errors"
	"time"
)

// ErrBudgetExhausted reports that a request's deadline budget expired
// mid-scan and the result is a best-effort partial top-K, not a failure.
// Callers that see it alongside non-nil matches should serve them with a
// degraded marker; callers that cannot degrade treat it as
// context.DeadlineExceeded.
var ErrBudgetExhausted = errors.New("service: request budget exhausted")

// Budget is one request's deadline, derived once at the API edge from the
// client's X-Request-Timeout header (clamped by -max-deadline) and carried
// on the context through admission, the engine, the corpus scan, and — as a
// remaining-millisecond field — every remote shard request. It is stored as
// an absolute deadline rather than a duration so queue wait subtracts
// implicitly: whatever time admission spends, Remaining() reflects it.
type Budget struct {
	// Deadline is the absolute instant the client stops listening.
	Deadline time.Time
}

// mergeReserve is the slice of the remaining budget held back from the scan
// phase so the merge phase (and response encoding) still runs inside the
// deadline: a tenth of what is left, capped at 5ms.
const mergeReserveCap = 5 * time.Millisecond

// Remaining returns the budget left right now (negative once expired).
func (b Budget) Remaining() time.Duration { return time.Until(b.Deadline) }

// Expired reports whether the deadline has passed.
func (b Budget) Expired() bool { return !b.Deadline.IsZero() && !time.Now().Before(b.Deadline) }

// ScanDeadline is the phase split: the instant the scan loops must yield,
// reserving min(10% of remaining, 5ms) for merge and encoding. The
// fingerprint phase runs before the budget is consulted (it is bounded and
// cheap next to the scan), so the split is effectively
// fingerprint → scan(deadline−reserve) → merge(reserve).
func (b Budget) ScanDeadline() time.Time {
	if b.Deadline.IsZero() {
		return time.Time{}
	}
	rem := time.Until(b.Deadline)
	if rem <= 0 {
		return b.Deadline
	}
	reserve := rem / 10
	if reserve > mergeReserveCap {
		reserve = mergeReserveCap
	}
	return b.Deadline.Add(-reserve)
}

type budgetKey struct{}

// WithBudget attaches a request budget to ctx. The API layer pairs it with
// context.WithTimeout on the same deadline, so plain ctx cancellation and
// budget expiry agree; the explicit Budget value exists so downstream layers
// can distinguish "deadline spent" (serve a degraded partial) from "client
// hung up" (nobody is listening, serve nothing).
func WithBudget(ctx context.Context, b Budget) context.Context {
	return context.WithValue(ctx, budgetKey{}, b)
}

// BudgetOf returns the request budget on ctx, if one was attached.
func BudgetOf(ctx context.Context) (Budget, bool) {
	b, ok := ctx.Value(budgetKey{}).(Budget)
	return b, ok
}

// DeadlineExpired reports whether ctx stopped because its time ran out —
// either the attached Budget expired or the context itself reports
// DeadlineExceeded — as opposed to a plain cancellation (client
// disconnect), which callers must not answer with a degraded body.
func DeadlineExpired(ctx context.Context) bool {
	if b, ok := BudgetOf(ctx); ok && b.Expired() {
		return true
	}
	return errors.Is(ctx.Err(), context.DeadlineExceeded)
}
