package service

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/ccd"
)

// FuzzSnapshotLoad: ReadSnapshot on arbitrary bytes must return an error or
// a valid corpus — never panic, never allocate absurdly, never hand back a
// corpus that cannot round-trip through WriteSnapshot. Seeded with valid
// version-2 envelopes (matching and mismatching shard counts), a pre-shard
// legacy (version 1) envelope, a truncated shard directory, and a
// shard-count header that over-declares its payload.
func FuzzSnapshotLoad(f *testing.F) {
	encode := func(shards, docs int) []byte {
		c := NewCorpus(ccd.DefaultConfig, shards)
		for i := 0; i < docs; i++ {
			if err := c.Add(fmt.Sprintf("doc-%d", i), testFP(i)); err != nil {
				f.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := c.WriteSnapshot(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	empty := encode(2, 0)
	small := encode(2, 9)
	wide := encode(5, 17)
	f.Add(empty)
	f.Add(small)
	f.Add(wide)
	f.Add(small[:len(small)/2])            // truncated shard directory
	f.Add(append([]byte{}, small[:14]...)) // cut inside the config block
	// Over-declared shard count: keep the v2 preamble, bump the count byte.
	f.Add(bytes.Replace(small, []byte{2, 0}, []byte{63, 0}, 1))
	// Pre-shard legacy header with garbage body.
	f.Add([]byte("SVCSNAP\x00\x01\x03garbage"))
	f.Add([]byte("SVCSNAP\x00\x02"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		c := NewCorpus(ccd.DefaultConfig, 2)
		if err := c.ReadSnapshot(bytes.NewReader(data)); err != nil {
			return
		}
		// Whatever ReadSnapshot accepted must survive a write/read round trip
		// with an identical entry multiset and configuration.
		var buf bytes.Buffer
		if err := c.WriteSnapshot(&buf); err != nil {
			t.Fatalf("accepted corpus fails to snapshot: %v", err)
		}
		got := NewCorpus(ccd.DefaultConfig, 2)
		if err := got.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("round trip fails to load: %v", err)
		}
		if got.Len() != c.Len() || got.Config() != c.Config() {
			t.Fatalf("round trip drifted: %d/%v vs %d/%v", got.Len(), got.Config(), c.Len(), c.Config())
		}
		if !reflect.DeepEqual(got.entryMultiset(), c.entryMultiset()) {
			t.Fatal("round trip changed the entry multiset")
		}
	})
}

// FuzzWALReplay: byte-level corruption or truncation of a write-ahead log
// must never panic or fabricate records — replay yields an exact prefix of
// the entries that were appended, and cutting the file at the reported good
// offset leaves a log that replays identically with no torn tail. The fuzzer
// drives both the log contents (entries derived from data) and the damage
// (truncate at cut, XOR one byte at xorPos).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte("id1\xffQxRtYuIoP.AbCdEf\xffid2\xffZzZzZzZz"), uint16(0), uint16(0), byte(0))
	f.Add([]byte("a\xffbbbb"), uint16(3), uint16(2), byte(0x40))
	f.Add([]byte{}, uint16(9), uint16(1), byte(0xff))
	f.Add([]byte("doc\xfffingerprint\xffdoc\xfffingerprint"), uint16(65535), uint16(20), byte(1))

	f.Fuzz(func(t *testing.T, data []byte, cut uint16, xorPos uint16, xorVal byte) {
		// Derive entries from data (fields split on 0xFF, paired id/fp) and
		// build the valid log image.
		fields := bytes.Split(data, []byte{0xff})
		var entries []ccd.Entry
		var log []byte
		for i := 0; i+1 < len(fields); i += 2 {
			e := ccd.Entry{ID: string(fields[i]), FP: ccd.Fingerprint(fields[i+1])}
			entries = append(entries, e)
			log = append(log, encodeWALRecord(e.ID, e.FP)...)
		}

		// Damage it: truncate, then flip bits in one surviving byte.
		if int(cut) < len(log) {
			log = log[:cut]
		}
		if len(log) > 0 {
			log[int(xorPos)%len(log)] ^= xorVal
		}

		dir := t.TempDir()
		path := filepath.Join(dir, "corrupt.wal")
		if err := os.WriteFile(path, log, 0o644); err != nil {
			t.Fatal(err)
		}

		var replayed []ccd.Entry
		records, goodOffset, _, err := replayWAL(path, func(id string, fp ccd.Fingerprint) {
			replayed = append(replayed, ccd.Entry{ID: id, FP: fp})
		})
		if err != nil {
			t.Fatalf("replay of existing file errored: %v", err)
		}
		if records != len(replayed) {
			t.Fatalf("reported %d records, callback saw %d", records, len(replayed))
		}
		if goodOffset < 0 || goodOffset > int64(len(log)) {
			t.Fatalf("good offset %d outside file of %d bytes", goodOffset, len(log))
		}
		// Exact prefix: nothing reordered, duplicated or invented. (A
		// corrupted record can only be accepted if the XOR was a no-op or
		// re-created a valid image of the same prefix; equality still holds
		// record-for-record below goodOffset in every case the CRC admits.)
		if len(replayed) > len(entries) {
			t.Fatalf("replayed %d records from a log of %d", len(replayed), len(entries))
		}
		for i, e := range replayed {
			if xorVal == 0 || int(xorPos)%max(len(log), 1) >= int(goodOffset) {
				// Damage (if any) lies beyond the accepted prefix: the
				// replayed records must match the originals exactly.
				if e != entries[i] {
					t.Fatalf("record %d: got %+v, want %+v", i, e, entries[i])
				}
			}
		}

		// Cutting at goodOffset (what OpenStore does) must leave a clean log
		// that replays the same records with no torn tail.
		if err := os.Truncate(path, goodOffset); err != nil {
			t.Fatal(err)
		}
		var second []ccd.Entry
		records2, offset2, torn2, err := replayWAL(path, func(id string, fp ccd.Fingerprint) {
			second = append(second, ccd.Entry{ID: id, FP: fp})
		})
		if err != nil {
			t.Fatalf("second replay: %v", err)
		}
		if torn2 {
			t.Fatal("log cut at good offset still reports a torn tail")
		}
		if records2 != records || offset2 != goodOffset {
			t.Fatalf("second replay: %d records to offset %d, want %d to %d", records2, offset2, records, goodOffset)
		}
		for i := range second {
			if second[i] != replayed[i] {
				t.Fatalf("second replay record %d differs: %+v vs %+v", i, second[i], replayed[i])
			}
		}
	})
}
