package service

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ccd"
)

// FuzzWALReplay: byte-level corruption or truncation of a write-ahead log
// must never panic or fabricate records — replay yields an exact prefix of
// the entries that were appended, and cutting the file at the reported good
// offset leaves a log that replays identically with no torn tail. The fuzzer
// drives both the log contents (entries derived from data) and the damage
// (truncate at cut, XOR one byte at xorPos).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte("id1\xffQxRtYuIoP.AbCdEf\xffid2\xffZzZzZzZz"), uint16(0), uint16(0), byte(0))
	f.Add([]byte("a\xffbbbb"), uint16(3), uint16(2), byte(0x40))
	f.Add([]byte{}, uint16(9), uint16(1), byte(0xff))
	f.Add([]byte("doc\xfffingerprint\xffdoc\xfffingerprint"), uint16(65535), uint16(20), byte(1))

	f.Fuzz(func(t *testing.T, data []byte, cut uint16, xorPos uint16, xorVal byte) {
		// Derive entries from data (fields split on 0xFF, paired id/fp) and
		// build the valid log image.
		fields := bytes.Split(data, []byte{0xff})
		var entries []ccd.Entry
		var log []byte
		for i := 0; i+1 < len(fields); i += 2 {
			e := ccd.Entry{ID: string(fields[i]), FP: ccd.Fingerprint(fields[i+1])}
			entries = append(entries, e)
			log = append(log, encodeWALRecord(e.ID, e.FP)...)
		}

		// Damage it: truncate, then flip bits in one surviving byte.
		if int(cut) < len(log) {
			log = log[:cut]
		}
		if len(log) > 0 {
			log[int(xorPos)%len(log)] ^= xorVal
		}

		dir := t.TempDir()
		path := filepath.Join(dir, "corrupt.wal")
		if err := os.WriteFile(path, log, 0o644); err != nil {
			t.Fatal(err)
		}

		var replayed []ccd.Entry
		records, goodOffset, _, err := replayWAL(path, func(id string, fp ccd.Fingerprint) {
			replayed = append(replayed, ccd.Entry{ID: id, FP: fp})
		})
		if err != nil {
			t.Fatalf("replay of existing file errored: %v", err)
		}
		if records != len(replayed) {
			t.Fatalf("reported %d records, callback saw %d", records, len(replayed))
		}
		if goodOffset < 0 || goodOffset > int64(len(log)) {
			t.Fatalf("good offset %d outside file of %d bytes", goodOffset, len(log))
		}
		// Exact prefix: nothing reordered, duplicated or invented. (A
		// corrupted record can only be accepted if the XOR was a no-op or
		// re-created a valid image of the same prefix; equality still holds
		// record-for-record below goodOffset in every case the CRC admits.)
		if len(replayed) > len(entries) {
			t.Fatalf("replayed %d records from a log of %d", len(replayed), len(entries))
		}
		for i, e := range replayed {
			if xorVal == 0 || int(xorPos)%max(len(log), 1) >= int(goodOffset) {
				// Damage (if any) lies beyond the accepted prefix: the
				// replayed records must match the originals exactly.
				if e != entries[i] {
					t.Fatalf("record %d: got %+v, want %+v", i, e, entries[i])
				}
			}
		}

		// Cutting at goodOffset (what OpenStore does) must leave a clean log
		// that replays the same records with no torn tail.
		if err := os.Truncate(path, goodOffset); err != nil {
			t.Fatal(err)
		}
		var second []ccd.Entry
		records2, offset2, torn2, err := replayWAL(path, func(id string, fp ccd.Fingerprint) {
			second = append(second, ccd.Entry{ID: id, FP: fp})
		})
		if err != nil {
			t.Fatalf("second replay: %v", err)
		}
		if torn2 {
			t.Fatal("log cut at good offset still reports a torn tail")
		}
		if records2 != records || offset2 != goodOffset {
			t.Fatalf("second replay: %d records to offset %d, want %d to %d", records2, offset2, records, goodOffset)
		}
		for i := range second {
			if second[i] != replayed[i] {
				t.Fatalf("second replay record %d differs: %+v vs %+v", i, second[i], replayed[i])
			}
		}
	})
}
