package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/ccd"
	"repro/internal/index"
)

// clusteredFingerprints builds a corpus with a known ground-truth partition:
// nClusters groups whose members are exact or one-edit copies of a long
// random per-cluster base (far above ε within a group, unrelated across
// groups). Returns the entries and the expected member partition.
func clusteredFingerprints(seed int64, nClusters, maxSize int) ([]ccd.Entry, map[string]int) {
	rng := rand.New(rand.NewSource(seed))
	alphabet := []byte("QxRtYuIoPAbCdEfGhZvNmWqSjKl")
	var entries []ccd.Entry
	groupOf := map[string]int{}
	doc := 0
	for c := 0; c < nClusters; c++ {
		base := make([]byte, 36+rng.Intn(12))
		for i := range base {
			base[i] = alphabet[rng.Intn(len(alphabet))]
		}
		size := 1 + rng.Intn(maxSize)
		for m := 0; m < size; m++ {
			fp := append([]byte(nil), base...)
			if m%3 == 1 { // one point mutation: similarity stays ≥ 90
				fp[rng.Intn(len(fp))] = alphabet[rng.Intn(len(alphabet))]
			}
			id := fmt.Sprintf("doc-%05d", doc)
			doc++
			entries = append(entries, ccd.Entry{ID: id, FP: ccd.Fingerprint(fp)})
			groupOf[id] = c
		}
	}
	// Interleave ids across groups so every shard sees every group.
	rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	return entries, groupOf
}

func seedCorpus(t *testing.T, shards int, entries []ccd.Entry) *Corpus {
	t.Helper()
	c := NewCorpus(ccd.DefaultConfig, shards)
	for _, e := range entries {
		if err := c.Add(e.ID, e.FP); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestSelfJoinFindsGroundTruthClusters: the posting-list self-join recovers
// exactly the generated partition, for any shard count, and agrees with the
// naive all-pairs baseline.
func TestSelfJoinFindsGroundTruthClusters(t *testing.T) {
	entries, groupOf := clusteredFingerprints(5, 25, 6)
	naive := NaiveSelfJoin(entries, ccd.DefaultConfig)
	want := naive.Clusters(1, true)

	for _, shards := range []int{1, 4} {
		c := seedCorpus(t, shards, entries)
		j, err := NewSelfJoin(c, c, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		got := j.Clusters().Clusters(1, true)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: planner clusters differ from naive all-pairs\n got %d clusters\nwant %d", shards, len(got), len(want))
		}
		// Ground truth: members of one generated group always cluster
		// together (they are ≤ 2 edits apart through the base).
		for _, cl := range got {
			g := groupOf[cl.Members[0]]
			for _, m := range cl.Members {
				if groupOf[m] != g {
					t.Fatalf("shards=%d: cluster %v mixes groups %d and %d", shards, cl.Members, g, groupOf[m])
				}
			}
		}
		st := j.Stats()
		if st.Docs != int64(len(entries)) || st.Queried != int64(len(entries)) {
			t.Fatalf("shards=%d: stats %+v, want docs=queried=%d", shards, st, len(entries))
		}
		if st.Candidates < st.Scored+st.CutoffSkipped {
			t.Fatalf("shards=%d: funnel inconsistent: %+v", shards, st)
		}
		if _, _, done := j.Checkpoint(); !done {
			t.Fatalf("shards=%d: join not marked done", shards)
		}
		// Running a finished join is a no-op.
		if err := j.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSelfJoinCancelAndResume: a cancelled join stops with ctx.Err() and a
// checkpoint; resuming completes it with the identical partition (and the
// funnel records the resume).
func TestSelfJoinCancelAndResume(t *testing.T) {
	entries, _ := clusteredFingerprints(9, 30, 5)
	c := seedCorpus(t, 3, entries)

	ref, err := NewSelfJoin(c, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := ref.Clusters().Clusters(1, true)

	j, err := NewSelfJoin(c, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel from inside the fan-out after a handful of queries.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inner := j.par
	queries := 0
	j.par = func(ctx context.Context, n int, fn func(int)) error {
		return inner(ctx, n, func(i int) {
			queries++
			if queries > 3 {
				cancel()
			}
			fn(i)
		})
	}
	if err := j.Run(ctx); err != context.Canceled {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if _, _, done := j.Checkpoint(); done {
		t.Fatal("cancelled join reports done")
	}
	j.par = inner
	if err := j.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, _, done := j.Checkpoint(); !done {
		t.Fatal("resumed join not done")
	}
	if got := j.Clusters().Clusters(1, true); !reflect.DeepEqual(got, want) {
		t.Fatal("resumed join produced a different partition")
	}
	if st := j.Stats(); st.Resumes != 1 {
		t.Fatalf("resumes %d, want 1", st.Resumes)
	}
}

// TestSelfJoinRejectsOverlappingRun: only one Run may drive a join at a
// time — an overlapping call (e.g. an embedder resuming a study that is
// still executing) returns ErrSelfJoinRunning instead of re-running the same
// segments concurrently and racing the checkpoint.
func TestSelfJoinRejectsOverlappingRun(t *testing.T) {
	entries, _ := clusteredFingerprints(21, 10, 4)
	c := seedCorpus(t, 2, entries)
	j, err := NewSelfJoin(c, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	inner := j.par
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	j.par = func(ctx context.Context, n int, fn func(int)) error {
		once.Do(func() {
			close(entered)
			<-release
		})
		return inner(ctx, n, fn)
	}
	done := make(chan error, 1)
	go func() { done <- j.Run(context.Background()) }()
	<-entered
	if err := j.Run(context.Background()); !errors.Is(err, ErrSelfJoinRunning) {
		t.Fatalf("overlapping Run returned %v, want ErrSelfJoinRunning", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The guard clears with the run: a finished join accepts Run again (as a
	// no-op) and reports no spurious resume.
	if err := j.Run(context.Background()); err != nil {
		t.Fatalf("Run after completion: %v", err)
	}
	if st := j.Stats(); st.Resumes != 0 || st.Errors != 0 {
		t.Fatalf("stats %+v, want no resumes or errors", st)
	}
}

// TestSelfJoinQueryErrorFailsSegment: a per-document query failure that is
// NOT a context cancellation must surface from Run (keeping the checkpoint
// behind the segment) and be counted apart from Cancelled — not silently
// absorbed as if the query had been cut by ctx.
func TestSelfJoinQueryErrorFailsSegment(t *testing.T) {
	entries, _ := clusteredFingerprints(27, 8, 4)
	c := seedCorpus(t, 2, entries)
	j, err := NewSelfJoin(c, c, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Cancellations are pauses, tallied but never fatal.
	j.recordQueryFailure("doc-x", context.Canceled)
	j.recordQueryFailure("doc-y", fmt.Errorf("wrapped: %w", context.DeadlineExceeded))
	if st := j.Stats(); st.Cancelled != 2 || st.Errors != 0 {
		t.Fatalf("stats %+v, want 2 cancelled / 0 errors", st)
	}

	// A real backend failure fails the run at the segment boundary.
	inner := j.par
	boom := errors.New("backend exploded")
	j.par = func(ctx context.Context, n int, fn func(int)) error {
		j.recordQueryFailure("doc-z", boom)
		return nil
	}
	if err := j.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want wrapped %v", err, boom)
	}
	if st := j.Stats(); st.Errors != 1 {
		t.Fatalf("stats %+v, want 1 error", st)
	}
	if shard, segment, done := j.Checkpoint(); shard != 0 || segment != 0 || done {
		t.Fatalf("checkpoint advanced past failed segment: shard=%d segment=%d done=%v", shard, segment, done)
	}

	// Retrying after the fault clears re-runs the segment and completes.
	j.par = inner
	if err := j.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, _, done := j.Checkpoint(); !done {
		t.Fatal("retried join not done")
	}
}

// TestEngineCloneStudyMatchesOfflineJoin is the shared-implementation
// equivalence at the service layer: the engine's pooled, sharded study and
// the offline single-shard join produce the identical cluster-size
// distribution at the same η/ε — for the exact join and for a capped one.
func TestEngineCloneStudyMatchesOfflineJoin(t *testing.T) {
	entries, _ := clusteredFingerprints(13, 40, 6)
	for _, limit := range []int{0, 1, 3} {
		offlineCorpus := seedCorpus(t, 1, entries)
		offline, err := NewSelfJoin(offlineCorpus, offlineCorpus, limit)
		if err != nil {
			t.Fatal(err)
		}
		if err := offline.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		offRep := offline.Report(5)

		eng := New(Options{Workers: 4, Shards: 3})
		for _, e := range entries {
			if err := eng.CorpusAddFingerprint(e.ID, e.FP); err != nil {
				t.Fatal(err)
			}
		}
		onRep, err := eng.RunCloneStudy(context.Background(), "", limit, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(onRep.Summary, offRep.Summary) {
			t.Fatalf("limit=%d: online summary %+v != offline %+v", limit, onRep.Summary, offRep.Summary)
		}
		if !reflect.DeepEqual(onRep.Top, offRep.Top) {
			t.Fatalf("limit=%d: online top clusters %v != offline %v", limit, onRep.Top, offRep.Top)
		}
		if onRep.Eta != offRep.Eta || onRep.Epsilon != offRep.Epsilon {
			t.Fatalf("limit=%d: parameter mismatch: %v/%v vs %v/%v", limit, onRep.Eta, onRep.Epsilon, offRep.Eta, offRep.Epsilon)
		}
		m := eng.Metrics()
		if m.SelfJoin.Completed != 1 || m.SelfJoin.Docs != int64(len(entries)) {
			t.Fatalf("limit=%d: study funnel %+v", limit, m.SelfJoin)
		}
		if limit > 0 {
			// The cap is on clone edges, not TopK slots: the query doc's
			// self-match must not eat the budget (limit=1 once found NO
			// clones because self always took the single slot).
			if onRep.Stats.Matches == 0 || onRep.Summary.Clustered == 0 {
				t.Fatalf("limit=%d: no clones found on a clustered corpus: %+v", limit, onRep.Stats)
			}
		}
	}
}

// TestCloneStudyRejectsSourceOnlyBackend: a corpus study against smartembed
// must fail up front — its queries need document source, the enumeration
// carries only fingerprints, and every query would silently match nothing,
// reporting an all-singleton distribution indistinguishable from a genuinely
// clone-free corpus.
func TestCloneStudyRejectsSourceOnlyBackend(t *testing.T) {
	e := New(Options{Workers: 2, Shards: 2, Backends: []string{index.BackendSmartEmbed}})
	if err := e.CorpusAdd("c1", reentrantSrc); err != nil {
		t.Fatal(err)
	}
	if _, err := e.NewCloneStudy(index.BackendSmartEmbed, 0); err == nil {
		t.Fatal("clone study against a source-only backend accepted")
	}
	if _, err := e.RunCloneStudy(context.Background(), index.BackendSmartEmbed, 0, 5); err == nil {
		t.Fatal("RunCloneStudy against a source-only backend succeeded")
	}
	// The ccd study on the same engine still runs.
	if _, err := e.RunCloneStudy(context.Background(), "", 0, 5); err != nil {
		t.Fatal(err)
	}
}

// TestObserveStudyClassifiesOutcome: the study funnel distinguishes a
// client cancellation from a real failure — conflating them sends an
// operator chasing a phantom cancel instead of the backend error.
func TestObserveStudyClassifiesOutcome(t *testing.T) {
	var c counters
	c.observeStudy(SelfJoinStats{}, nil)
	c.observeStudy(SelfJoinStats{}, context.Canceled)
	c.observeStudy(SelfJoinStats{}, fmt.Errorf("wrapped: %w", context.DeadlineExceeded))
	c.observeStudy(SelfJoinStats{Errors: 2}, errors.New("backend exploded"))
	if got := c.studiesCompleted.Load(); got != 1 {
		t.Fatalf("completed %d, want 1", got)
	}
	if got := c.studiesCancelled.Load(); got != 2 {
		t.Fatalf("cancelled %d, want 2", got)
	}
	if got := c.studiesFailed.Load(); got != 1 {
		t.Fatalf("failed %d, want 1", got)
	}
	if got := c.studyErrors.Load(); got != 2 {
		t.Fatalf("query errors %d, want 2", got)
	}
}

// TestEngineOnlineClusterTracking: with TrackClusters, ingest maintains the
// live union-find and /metrics carries its summary.
func TestEngineOnlineClusterTracking(t *testing.T) {
	e := New(Options{Workers: 2, Shards: 2, TrackClusters: true})
	fp := ccd.Fingerprint("QxRtYuIoPAbCdEfGhZvNmQwErTyUiOp")
	for i := 0; i < 5; i++ {
		if err := e.CorpusAddFingerprint(fmt.Sprintf("dup-%d", i), fp); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.CorpusAddFingerprint("lone", ccd.Fingerprint("ZmNvBqWsEdRfTgYhUjMkOlPa")); err != nil {
		t.Fatal(err)
	}
	set := e.Clusters()
	if set == nil {
		t.Fatal("TrackClusters engine has no cluster set")
	}
	sum := set.Summary()
	if sum.Docs != 6 || sum.Clusters != 1 || sum.Largest != 5 || sum.Singletons != 1 {
		t.Fatalf("live summary %+v, want one 5-cluster and one singleton", sum)
	}
	m := e.Metrics()
	if m.Clusters == nil || m.Clusters.Largest != 5 {
		t.Fatalf("metrics clusters %+v", m.Clusters)
	}
	// Engines without tracking expose neither the set nor the metric.
	if e2 := New(Options{Workers: 1}); e2.Clusters() != nil || e2.Metrics().Clusters != nil {
		t.Fatal("untracked engine leaks a cluster view")
	}
}
