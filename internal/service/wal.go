package service

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/ccd"
)

// ErrPersist marks durability failures: an Add that could not be journaled
// was not acknowledged and is not visible in the corpus. Callers distinguish
// it from per-entry parse issues (which still index a partial fingerprint).
var ErrPersist = errors.New("corpus persistence failed")

// WAL record layout:
//
//	uvarint payload length
//	uint32  CRC-32 (IEEE, little-endian) of the payload
//	payload: uvarint id length, id, uvarint fingerprint length, fingerprint
//
// Records are synced to disk before Add is acknowledged, so a crash loses at
// most un-acknowledged writes. Replay stops at the first torn or corrupt
// record — a crash mid-append leaves a truncated tail, never a reordered
// one — and reports the byte offset of the last intact record so the tail
// can be cut before new appends.
type wal struct {
	mu   sync.Mutex // guards writes to f, writeSeq and writtenBytes
	f    *os.File
	path string

	// Group commit: appenders write under mu, then sync under syncMu. An
	// appender arriving while another's fsync is in flight waits on syncMu
	// and usually finds its record already covered (syncSeq ≥ its seq), so
	// N concurrent appends coalesce into ~2 fsyncs instead of N.
	syncMu   sync.Mutex
	writeSeq int64 // records written (mu)
	syncSeq  int64 // records known durable (written under syncMu+mu, read under either)

	// Byte offsets mirroring the sequence counters: writtenBytes is the file
	// length after the last append (mu), syncedBytes the length of the
	// durable prefix (written under syncMu+mu, read under either). A failed
	// fsync rolls the file back to syncedBytes — a record whose append
	// returned an error must NEVER replay on boot, or the caller's
	// accounting (the bulk ingest response, pendingAdds) and the replay
	// count disagree.
	writtenBytes int64
	syncedBytes  int64

	// failed marks a write error that may have left garbage bytes beyond
	// writtenBytes (a short write). While set, the file needs a truncate to
	// writtenBytes before the next append; the flag — never a truncate —
	// is all the write-failure path touches, because truncating to the
	// durable prefix under mu alone could cut records of a group whose
	// fsync is in flight under syncMu and let them be acknowledged anyway.
	failed bool // guarded by mu

	// syncHook / writeHook, when set, inject faults into the fsync and the
	// record write (tests of the group-commit failure paths). writeHook runs
	// after its garbage reaches the file, simulating a short write.
	syncHook  func() error
	writeHook func() error
}

// openWAL opens (creating if needed) the log for appending.
func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, path: path, writtenBytes: st.Size(), syncedBytes: st.Size()}, nil
}

// encodeWALRecord renders one entry in the on-disk record layout. Pure, so
// the replay fuzzer can synthesize valid logs without touching a file.
func encodeWALRecord(id string, fp ccd.Fingerprint) []byte {
	payload := make([]byte, 0, 2*binary.MaxVarintLen64+len(id)+len(fp))
	payload = binary.AppendUvarint(payload, uint64(len(id)))
	payload = append(payload, id...)
	payload = binary.AppendUvarint(payload, uint64(len(fp)))
	payload = append(payload, fp...)

	rec := make([]byte, 0, binary.MaxVarintLen64+4+len(payload))
	rec = binary.AppendUvarint(rec, uint64(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	return append(rec, payload...)
}

// appendRecord journals one entry and returns once it is on stable storage.
// On a write or fsync failure the log is rolled back to its durable prefix,
// so an errored append leaves no record behind for replay — and concurrent
// appenders whose records were cut by the rollback get an error of their
// own instead of a false acknowledgement.
func (w *wal) appendRecord(id string, fp ccd.Fingerprint) error {
	rec := encodeWALRecord(id, fp)

	w.mu.Lock()
	if w.failed {
		// An earlier append died mid-write and may have left garbage beyond
		// the last complete record. writtenBytes counts only fully-written
		// records and is never below any concurrent syncer's covered
		// snapshot, so cutting to it cannot remove a record that could
		// still be acknowledged.
		if err := w.f.Truncate(w.writtenBytes); err != nil {
			w.mu.Unlock()
			return fmt.Errorf("wal: poisoned by earlier write failure: %w", err)
		}
		w.failed = false
	}
	if err := w.write(rec); err != nil {
		w.failed = true
		w.mu.Unlock()
		return err
	}
	w.writeSeq++
	seq := w.writeSeq
	w.writtenBytes += int64(len(rec))
	w.mu.Unlock()

	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.syncSeq >= seq {
		return nil // a concurrent appender's fsync already covered us
	}
	w.mu.Lock()
	if w.failed {
		// Same garbage cut, from the sync side (safe here too: we hold
		// syncMu, so no fsync is in flight).
		if err := w.f.Truncate(w.writtenBytes); err == nil {
			w.failed = false
		}
	}
	covered := w.writeSeq // every record written before the Sync below
	coveredBytes := w.writtenBytes
	poisoned := w.failed
	w.mu.Unlock()
	if poisoned {
		return fmt.Errorf("wal: log poisoned by an earlier write failure")
	}
	if err := w.sync(); err != nil {
		// The group's records are not durable. Cut them so boot-time replay
		// agrees exactly with what was acknowledged; every appender in the
		// group observes covered < seq below (or its own sync error) and
		// reports failure.
		w.mu.Lock()
		w.rollbackLocked()
		w.mu.Unlock()
		return err
	}
	w.mu.Lock()
	w.syncSeq = covered
	w.syncedBytes = coveredBytes
	w.mu.Unlock()
	if seq > covered {
		// A rollback between our write and our sync attempt cut this record.
		return fmt.Errorf("wal: record lost in failed group commit")
	}
	return nil
}

// rollbackLocked truncates the log to its durable prefix after a failed
// fsync. Callers hold BOTH w.syncMu and w.mu: the sync lock guarantees no
// other fsync is in flight whose covered records the truncate could cut.
func (w *wal) rollbackLocked() {
	if err := w.f.Truncate(w.syncedBytes); err != nil {
		return // file unusable; subsequent appends keep failing, replay cuts the tail
	}
	w.writtenBytes = w.syncedBytes
	w.writeSeq = w.syncSeq
	w.failed = false
}

// sync flushes the file to stable storage (or the injected test hook).
func (w *wal) sync() error {
	if w.syncHook != nil {
		return w.syncHook()
	}
	return w.f.Sync()
}

// write appends one record (or fails through the injected test hook).
func (w *wal) write(rec []byte) error {
	if w.writeHook != nil {
		if err := w.writeHook(); err != nil {
			return err
		}
	}
	_, err := w.f.Write(rec)
	return err
}

// reset truncates the log after a successful snapshot: everything it held is
// now covered by the snapshot file. Lock order matches appendRecord (syncMu
// before mu).
func (w *wal) reset() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.writeSeq, w.syncSeq = 0, 0
	w.writtenBytes, w.syncedBytes = 0, 0
	return nil
}

// size returns the current log length in bytes.
func (w *wal) size() (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, err := w.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// maxWALPayload bounds one record's payload (an id plus a fingerprint).
const maxWALPayload = 1 << 28 // 256 MiB

// replayWAL streams records from path into fn, tolerating a torn tail. It
// returns the number of intact records, the byte offset just past the last
// intact record (truncate the file here before appending), and whether a
// torn/corrupt tail was skipped. A missing file replays zero records.
func replayWAL(path string, fn func(id string, fp ccd.Fingerprint)) (records int, goodOffset int64, torn bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, false, nil
	}
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()

	br := bufio.NewReader(f)
	offset := int64(0)
	for {
		payloadLen, n, err := readUvarintCounted(br)
		if err == io.EOF {
			return records, offset, false, nil
		}
		if err != nil || payloadLen > maxWALPayload {
			return records, offset, true, nil
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
			return records, offset, true, nil
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return records, offset, true, nil
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBuf[:]) {
			return records, offset, true, nil
		}
		id, rest, ok := cutString(payload)
		if !ok {
			return records, offset, true, nil
		}
		fp, rest, ok := cutString(rest)
		if !ok || len(rest) != 0 {
			return records, offset, true, nil
		}
		fn(string(id), ccd.Fingerprint(fp))
		records++
		offset += int64(n) + 4 + int64(payloadLen)
	}
}

// readUvarintCounted decodes a uvarint and reports how many bytes it took.
func readUvarintCounted(br *bufio.Reader) (uint64, int, error) {
	var v uint64
	var n int
	for shift := uint(0); ; shift += 7 {
		b, err := br.ReadByte()
		if err != nil {
			if n > 0 && err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, n, err
		}
		n++
		if shift >= 64 || n > binary.MaxVarintLen64 {
			return 0, n, fmt.Errorf("uvarint overflow")
		}
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, n, nil
		}
	}
}

// cutString splits a uvarint-length-prefixed string off the front of buf.
func cutString(buf []byte) (s, rest []byte, ok bool) {
	n, used := binary.Uvarint(buf)
	if used <= 0 || n > uint64(len(buf)-used) {
		return nil, nil, false
	}
	return buf[used : used+int(n)], buf[used+int(n):], true
}
