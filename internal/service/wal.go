package service

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ccd"
	"repro/internal/trace"
)

// ErrPersist marks durability failures: an Add that could not be journaled
// was not acknowledged and is not visible in the corpus. Callers distinguish
// it from per-entry parse issues (which still index a partial fingerprint).
var ErrPersist = errors.New("corpus persistence failed")

// WAL record layout:
//
//	uvarint payload length
//	uint32  CRC-32 (IEEE, little-endian) of the payload
//	payload: uvarint id length, id, uvarint fingerprint length, fingerprint
//
// Records are synced to disk before Add is acknowledged, so a crash loses at
// most un-acknowledged writes. Replay stops at the first torn or corrupt
// record — a crash mid-append leaves a truncated tail, never a reordered
// one — and reports the byte offset of the last intact record so the tail
// can be cut before new appends.
type wal struct {
	mu   sync.Mutex // guards writes to f, writeSeq and writtenBytes
	f    *os.File
	path string

	// Group commit: appenders write under mu, then sync under syncMu. An
	// appender arriving while another's fsync is in flight waits on syncMu
	// and usually finds its record already covered (syncSeq ≥ its seq), so
	// N concurrent appends coalesce into ~2 fsyncs instead of N.
	syncMu   sync.Mutex
	writeSeq int64 // monotonic append counter; never reused, even across rollbacks (mu)
	syncSeq  int64 // highest seq known durable (written under syncMu+mu, read under either)

	// Byte offsets mirroring the sequence counters: writtenBytes is the file
	// length after the last append (mu), syncedBytes the length of the
	// durable prefix (written under syncMu+mu, read under either). A failed
	// fsync rolls the file back to syncedBytes — a record whose append
	// returned an error must NEVER replay on boot, or the caller's
	// accounting (the bulk ingest response, pendingAdds) and the replay
	// count disagree.
	writtenBytes int64
	syncedBytes  int64

	// cuts records the seq ranges condemned by failed-fsync rollbacks.
	// Because sequence numbers are never reused, membership in a cut range
	// is a permanent verdict: an appender waiting on syncMu distinguishes
	// "my record is durable" (syncSeq ≥ seq AND seq not cut) from "my record
	// was cut and syncSeq moved past it on the strength of someone else's
	// bytes". pending holds the seq of every appender between write and
	// acknowledgement; a range retires as soon as no pending seq can still
	// fall inside it (every future append gets a larger seq than its hi), so
	// cuts stays empty except in the wake of an fsync failure. Both guarded
	// by mu.
	cuts    []seqRange
	pending map[int64]struct{}

	// rollbackNeeded marks a rollback whose truncate failed: the condemned
	// records' bytes are still in the file, and because the log is opened
	// O_APPEND, new records must not land after them (a later fsync would
	// make already-refused records durable and replayable). writeRecord
	// retries the truncate before appending anything. Guarded by mu.
	rollbackNeeded bool

	// failed marks a write error that may have left garbage bytes beyond
	// writtenBytes (a short write). While set, the file needs a truncate to
	// writtenBytes before the next append; the flag — never a truncate —
	// is all the write-failure path touches, because truncating to the
	// durable prefix under mu alone could cut records of a group whose
	// fsync is in flight under syncMu and let them be acknowledged anyway.
	failed bool // guarded by mu

	// syncHook / writeHook / truncHook, when set, inject faults into the
	// fsync, the record write and the rollback/garbage truncates (tests of
	// the group-commit failure paths). writeHook runs after its garbage
	// reaches the file, simulating a short write.
	syncHook  func() error
	writeHook func() error
	truncHook func() error

	// Durability instrumentation: fsync latency, records made durable per
	// fsync (the group-commit coalescing factor), and the failure-path
	// counters (rollbacks performed, records condemned by them).
	fsyncHist trace.Hist // µs per fsync actually performed
	batchHist trace.Hist // records covered per successful fsync
	rollbacks atomic.Int64
	condemned atomic.Int64

	// Recent-fsync window for the ingest backpressure signal. The
	// cumulative fsyncHist can only ever grow, so its p99 never recovers
	// from a past stall; backpressure must engage AND release, which needs
	// a windowed view. Slots hold µs+1 (0 = empty), recentIdx counts
	// observations ever made.
	recentFsync [recentFsyncWindow]atomic.Int64
	recentIdx   atomic.Int64
}

// recentFsyncWindow sizes the rolling fsync-latency window behind the
// backpressure signal: large enough to ride out one outlier, small enough
// that recovery is visible within ~a second of healthy group commits.
const recentFsyncWindow = 64

// observeFsync folds one performed fsync into both the cumulative histogram
// and the rolling window.
func (w *wal) observeFsync(d time.Duration) {
	w.fsyncHist.ObserveDuration(d)
	i := w.recentIdx.Add(1) - 1
	w.recentFsync[i%recentFsyncWindow].Store(d.Microseconds() + 1)
}

// recentFsyncP99 returns the p99 fsync latency over the rolling window
// (0 when no fsync has happened yet). This is the backpressure signal: it
// rises within one window of a slow disk and falls again once group
// commits recover, unlike the cumulative histogram's monotone quantiles.
func (w *wal) recentFsyncP99() time.Duration {
	n := w.recentIdx.Load()
	if n == 0 {
		return 0
	}
	if n > recentFsyncWindow {
		n = recentFsyncWindow
	}
	vals := make([]int64, 0, n)
	for i := int64(0); i < n; i++ {
		if v := w.recentFsync[i].Load(); v > 0 {
			vals = append(vals, v-1)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	rank := int(math.Ceil(0.99 * float64(len(vals))))
	if rank < 1 {
		rank = 1
	}
	return time.Duration(vals[rank-1]) * time.Microsecond
}

// openWAL opens (creating if needed) the log for appending.
func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, path: path, writtenBytes: st.Size(), syncedBytes: st.Size()}, nil
}

// encodeWALRecord renders one entry in the on-disk record layout. Pure, so
// the replay fuzzer can synthesize valid logs without touching a file.
func encodeWALRecord(id string, fp ccd.Fingerprint) []byte {
	payload := make([]byte, 0, 2*binary.MaxVarintLen64+len(id)+len(fp))
	payload = binary.AppendUvarint(payload, uint64(len(id)))
	payload = append(payload, id...)
	payload = binary.AppendUvarint(payload, uint64(len(fp)))
	payload = append(payload, fp...)

	rec := make([]byte, 0, binary.MaxVarintLen64+4+len(payload))
	rec = binary.AppendUvarint(rec, uint64(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	return append(rec, payload...)
}

// seqRange is a half-open-below interval (lo, hi] of sequence numbers
// removed from the log by a failed-group-commit rollback.
type seqRange struct{ lo, hi int64 }

// appendRecord journals one entry and returns once it is on stable storage.
// On a write or fsync failure the log is rolled back to its durable prefix,
// so an errored append leaves no record behind for replay — and concurrent
// appenders whose records were cut by the rollback get an error of their
// own instead of a false acknowledgement.
func (w *wal) appendRecord(ctx context.Context, id string, fp ccd.Fingerprint) error {
	ctx, sp := trace.Start(ctx, "wal.append")
	defer sp.End()
	seq, err := w.writeRecord(encodeWALRecord(id, fp))
	if err != nil {
		return err
	}
	defer w.release(seq)
	_, wait := trace.Start(ctx, "wal.fsync_wait")
	wait.AnnotateInt("seq", seq)
	err = w.awaitDurable(seq)
	wait.End()
	return err
}

// writeRecord appends one encoded record and registers the caller as a
// pending appender, returning the record's sequence number. The caller must
// follow up with awaitDurable(seq) and then release(), in that order.
func (w *wal) writeRecord(rec []byte) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.rollbackNeeded {
		// A failed group commit could not truncate its condemned records
		// away. Their seqs are already in cuts, so no appender can be
		// acknowledged for them — but their bytes must leave the file before
		// anything new lands behind them. Safe under mu alone: while
		// rollbackNeeded is set no fsync can be in flight (every path to
		// sync() first clears this flag here or errors out).
		if err := w.truncate(w.syncedBytes); err != nil {
			return 0, fmt.Errorf("wal: pending rollback of a failed group commit: %w", err)
		}
		w.writtenBytes = w.syncedBytes
		w.rollbackNeeded = false
		w.failed = false
	}
	if w.failed {
		// An earlier append died mid-write and may have left garbage beyond
		// the last complete record. writtenBytes counts only fully-written
		// records and is never below any concurrent syncer's covered
		// snapshot, so cutting to it cannot remove a record that could
		// still be acknowledged.
		if err := w.truncate(w.writtenBytes); err != nil {
			return 0, fmt.Errorf("wal: poisoned by earlier write failure: %w", err)
		}
		w.failed = false
	}
	if err := w.write(rec); err != nil {
		w.failed = true
		return 0, err
	}
	w.writeSeq++
	w.writtenBytes += int64(len(rec))
	if w.pending == nil {
		w.pending = make(map[int64]struct{})
	}
	w.pending[w.writeSeq] = struct{}{}
	return w.writeSeq, nil
}

// awaitDurable returns once the record holding seq is on stable storage,
// either because a concurrent appender's group fsync covered it or because
// this call performed the fsync itself. It returns an error when a rollback
// cut the record from the log.
func (w *wal) awaitDurable(seq int64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	if w.cutLocked(seq) {
		// A rollback between our write and now removed this record. Its seq
		// was never reassigned, so syncSeq having moved past it can only
		// reflect other appenders' records — not ours.
		w.mu.Unlock()
		return fmt.Errorf("wal: record lost in failed group commit")
	}
	if w.syncSeq >= seq {
		w.mu.Unlock()
		return nil // a concurrent appender's fsync already covered us
	}
	if w.failed {
		// Same garbage cut as in writeRecord, from the sync side (safe here
		// too: we hold syncMu, so no fsync is in flight). If the truncate
		// fails, sync anyway: every record below writtenBytes is complete,
		// and boot replay's CRC check cuts the trailing garbage. Erroring
		// out here instead would falsely fail this appender while leaving
		// its intact record for a later group commit to make durable and
		// replayable — an errored append must never replay.
		if err := w.truncate(w.writtenBytes); err == nil {
			w.failed = false
		}
	}
	covered := w.writeSeq // every record written before the Sync below
	coveredBytes := w.writtenBytes
	batch := covered - w.syncSeq // records this fsync makes durable
	w.mu.Unlock()
	fsyncStart := time.Now()
	err := w.sync()
	w.observeFsync(time.Since(fsyncStart))
	if err != nil {
		// The group's records are not durable. Cut them so boot-time replay
		// agrees exactly with what was acknowledged; every appender in the
		// group finds its seq in the recorded cut range above (or returns
		// its own sync error here) and reports failure.
		w.mu.Lock()
		w.rollbackLocked()
		w.mu.Unlock()
		return err
	}
	w.batchHist.Observe(batch)
	w.mu.Lock()
	w.syncSeq = covered
	w.syncedBytes = coveredBytes
	w.mu.Unlock()
	return nil
}

// release retires the appender holding seq and drops every cut range no
// pending appender can query anymore — ranges are recorded with ascending
// hi, and a future append always gets a seq above every recorded hi, so the
// prefix below the smallest pending seq is dead. This keeps cuts from
// accumulating for the life of the process when pending never drains (a
// server under sustained concurrent ingest with intermittent fsync
// failures).
func (w *wal) release(seq int64) {
	w.mu.Lock()
	delete(w.pending, seq)
	if len(w.cuts) > 0 {
		if len(w.pending) == 0 {
			w.cuts = nil
		} else {
			min := int64(-1)
			for s := range w.pending {
				if min < 0 || s < min {
					min = s
				}
			}
			i := 0
			for i < len(w.cuts) && w.cuts[i].hi < min {
				i++
			}
			w.cuts = w.cuts[i:]
		}
	}
	w.mu.Unlock()
}

// cutLocked reports whether seq was removed by a failed-group-commit
// rollback. Callers hold w.mu.
func (w *wal) cutLocked(seq int64) bool {
	for _, r := range w.cuts {
		if seq > r.lo && seq <= r.hi {
			return true
		}
	}
	return false
}

// rollbackLocked truncates the log to its durable prefix after a failed
// fsync. Callers hold BOTH w.syncMu and w.mu: the sync lock guarantees no
// other fsync is in flight whose covered records the truncate could cut.
// The cut records' sequence numbers are retired, never reused — the range is
// recorded so pending appenders detect the loss, and writeSeq keeps counting
// upward, so a later group commit cannot push syncSeq over a cut seq and
// falsely acknowledge it.
func (w *wal) rollbackLocked() {
	// Condemn the seqs first: whether the truncate lands now or is retried
	// by the next writeRecord, these records will never be acknowledged, so
	// every waiting appender must report failure.
	w.rollbacks.Add(1)
	if w.writeSeq > w.syncSeq {
		w.cuts = append(w.cuts, seqRange{lo: w.syncSeq, hi: w.writeSeq})
		w.condemned.Add(w.writeSeq - w.syncSeq)
	}
	if err := w.truncate(w.syncedBytes); err != nil {
		w.rollbackNeeded = true // bytes still present; cut before the next append
		return
	}
	w.writtenBytes = w.syncedBytes
	w.failed = false
}

// sync flushes the file to stable storage (or the injected test hook).
func (w *wal) sync() error {
	if w.syncHook != nil {
		return w.syncHook()
	}
	return w.f.Sync()
}

// truncate cuts the file to n bytes (or fails through the injected test
// hook). reset's full truncate bypasses the hook on purpose: it is not part
// of the append/rollback failure surface under test.
func (w *wal) truncate(n int64) error {
	if w.truncHook != nil {
		if err := w.truncHook(); err != nil {
			return err
		}
	}
	return w.f.Truncate(n)
}

// write appends one record (or fails through the injected test hook).
func (w *wal) write(rec []byte) error {
	if w.writeHook != nil {
		if err := w.writeHook(); err != nil {
			return err
		}
	}
	_, err := w.f.Write(rec)
	return err
}

// reset truncates the log after a successful snapshot: everything it held is
// now covered by the snapshot file. Lock order matches appendRecord (syncMu
// before mu).
func (w *wal) reset() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.writeSeq, w.syncSeq = 0, 0
	w.writtenBytes, w.syncedBytes = 0, 0
	// Sequence numbers restart, so stale cut ranges must not survive to
	// falsely condemn them, and the truncate above completed any pending
	// rollback. Safe: reset only runs under the store's exclusive lock,
	// with no appender pending.
	w.cuts = nil
	w.rollbackNeeded = false
	return nil
}

// rollbackPending reports whether a failed-fsync rollback's truncate is
// still outstanding — condemned bytes sit in the file and the next append
// must cut them first. A node in this state is not ready for traffic.
func (w *wal) rollbackPending() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rollbackNeeded
}

// durableSize returns the length of the log's fsynced prefix. Every record
// ending at or before it is on stable storage and can never be cut by a
// failed-group-commit rollback — the only bytes safe to replicate.
func (w *wal) durableSize() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncedBytes
}

// size returns the current log length in bytes.
func (w *wal) size() (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, err := w.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// maxWALPayload bounds one record's payload (an id plus a fingerprint).
const maxWALPayload = 1 << 28 // 256 MiB

// replayWAL streams records from path into fn, tolerating a torn tail. It
// returns the number of intact records, the byte offset just past the last
// intact record (truncate the file here before appending), and whether a
// torn/corrupt tail was skipped. A missing file replays zero records.
func replayWAL(path string, fn func(id string, fp ccd.Fingerprint)) (records int, goodOffset int64, torn bool, err error) {
	goodOffset, torn, err = walScan(path, 0, func(id string, fp ccd.Fingerprint, end int64) bool {
		fn(id, fp)
		records++
		return true
	})
	return records, goodOffset, torn, err
}

// walScan streams intact records from path, starting at byte offset start
// (which must sit on a record boundary), invoking fn with each record and
// the byte offset just past it. fn returning false stops the scan without
// consuming that record. It returns the byte offset just past the last
// record consumed and whether a torn/corrupt tail ended the scan. A missing
// file scans zero records.
func walScan(path string, start int64, fn func(id string, fp ccd.Fingerprint, end int64) bool) (goodOffset int64, torn bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return start, false, nil
	}
	if err != nil {
		return start, false, err
	}
	defer f.Close()
	if start > 0 {
		if _, err := f.Seek(start, io.SeekStart); err != nil {
			return start, false, err
		}
	}

	br := bufio.NewReader(f)
	offset := start
	for {
		payloadLen, n, err := readUvarintCounted(br)
		if err == io.EOF {
			return offset, false, nil
		}
		if err != nil || payloadLen > maxWALPayload {
			return offset, true, nil
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
			return offset, true, nil
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return offset, true, nil
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBuf[:]) {
			return offset, true, nil
		}
		id, rest, ok := cutString(payload)
		if !ok {
			return offset, true, nil
		}
		fp, rest, ok := cutString(rest)
		if !ok || len(rest) != 0 {
			return offset, true, nil
		}
		end := offset + int64(n) + 4 + int64(payloadLen)
		if !fn(string(id), ccd.Fingerprint(fp), end) {
			return offset, false, nil
		}
		offset = end
	}
}

// readUvarintCounted decodes a uvarint and reports how many bytes it took.
func readUvarintCounted(br *bufio.Reader) (uint64, int, error) {
	var v uint64
	var n int
	for shift := uint(0); ; shift += 7 {
		b, err := br.ReadByte()
		if err != nil {
			if n > 0 && err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, n, err
		}
		n++
		if shift >= 64 || n > binary.MaxVarintLen64 {
			return 0, n, fmt.Errorf("uvarint overflow")
		}
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, n, nil
		}
	}
}

// cutString splits a uvarint-length-prefixed string off the front of buf.
func cutString(buf []byte) (s, rest []byte, ok bool) {
	n, used := binary.Uvarint(buf)
	if used <= 0 || n > uint64(len(buf)-used) {
		return nil, nil, false
	}
	return buf[used : used+int(n)], buf[used+int(n):], true
}
