package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ccd"
	"repro/internal/index"
	"repro/internal/trace"
)

// Snapshot and WAL file names inside a store directory.
const (
	SnapshotFile = "corpus.snap"
	WALFile      = "corpus.wal"
)

// Store makes a Corpus durable inside one directory:
//
//	<dir>/corpus.snap   whole-corpus binary snapshot (atomic: temp + rename)
//	<dir>/corpus.wal    append-only log of Adds since the last snapshot
//
// Every acknowledged Add is fsynced to the WAL before it becomes visible in
// memory, so a crash (kill -9, power loss) between snapshots loses nothing
// that was acknowledged. OpenStore restores the snapshot (if any), replays
// the WAL on top, truncates any torn tail left by a crash mid-append, and
// then journals all subsequent Adds. Snapshot persists the corpus and
// truncates the WAL in one critical section.
type Store struct {
	dir    string
	corpus *Corpus
	wal    *wal
	opts   StoreOptions

	// remapFailures counts post-snapshot remap attempts that failed (the
	// heap generations keep serving; mapping is an optimization, not
	// correctness).
	remapFailures atomic.Int64

	// mu orders Adds against Snapshot: Adds hold it shared (WAL append plus
	// in-memory insert happen atomically w.r.t. snapshots), Snapshot holds
	// it exclusively so the saved corpus and the truncated WAL agree.
	mu sync.RWMutex

	restored       int           // entries restored from the snapshot at boot
	replayed       int           // WAL records applied at boot
	replayDupes    int           // WAL records skipped as already in the snapshot
	replayOutdated int           // WAL records superseded by a later record for the same id
	tornTail       bool          // whether boot found (and cut) a torn WAL tail
	restoreDur     time.Duration // boot-time snapshot restore + WAL replay wall time
	pendingAdds    atomic.Int64  // adds journaled since the last snapshot
	snapshots      atomic.Int64  // successful snapshots taken
	lastSnapshot   atomic.Int64  // unix nanos of the last successful snapshot

	snapWriteHist trace.Hist // µs per successful Snapshot call

	// Backpressure from durability into ingest acks: config (swapped
	// atomically so tests and admins can retune live) plus the delay
	// accounting.
	bp        atomic.Pointer[BackpressureConfig]
	bpDelays  atomic.Int64 // acks that were slowed
	bpDelayUs atomic.Int64 // total injected delay
}

// BackpressureConfig slows ingest acknowledgements when WAL fsyncs degrade:
// once the rolling-window fsync p99 crosses FsyncP99, every durable Add
// sleeps for the excess (capped at MaxDelay) before acknowledging. Write
// bursts then degrade smoothly — clients are paced at the disk's actual
// speed — instead of piling work onto a drowning log until the admission
// queue cliffs into 429s.
type BackpressureConfig struct {
	// FsyncP99 is the rolling-window fsync p99 above which acks slow.
	// 0 disables backpressure.
	FsyncP99 time.Duration
	// MaxDelay caps the per-ack delay (0 selects DefaultBackpressureMaxDelay).
	MaxDelay time.Duration
}

// DefaultBackpressureMaxDelay caps one ingest ack's injected delay when
// BackpressureConfig.MaxDelay is unset.
const DefaultBackpressureMaxDelay = 100 * time.Millisecond

// SetBackpressure installs (or, with a zero config, removes) the ingest
// backpressure policy. Safe to call while the store is serving traffic.
func (s *Store) SetBackpressure(cfg BackpressureConfig) {
	if cfg.FsyncP99 <= 0 {
		s.bp.Store(nil)
		return
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = DefaultBackpressureMaxDelay
	}
	s.bp.Store(&cfg)
}

// backpressureDelay slows one acknowledged add when the rolling fsync p99
// is over the configured threshold. The record is already durable and
// visible — the delay only paces the client — so a cancelled ctx simply
// skips the wait.
func (s *Store) backpressureDelay(ctx context.Context) {
	cfg := s.bp.Load()
	if cfg == nil {
		return
	}
	p99 := s.wal.recentFsyncP99()
	if p99 <= cfg.FsyncP99 {
		return
	}
	delay := p99 - cfg.FsyncP99
	if delay > cfg.MaxDelay {
		delay = cfg.MaxDelay
	}
	_, sp := trace.Start(ctx, "ingest.backpressure")
	sp.AnnotateInt("delay_us", delay.Microseconds())
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
	sp.End()
	s.bpDelays.Add(1)
	s.bpDelayUs.Add(delay.Microseconds())
}

// StoreOptions tunes how a store boots and maintains its corpus.
type StoreOptions struct {
	// NoMapSegments disables the zero-copy snapshot path: boot decodes the
	// snapshot to the heap (ReadSnapshot) and no post-snapshot remap runs.
	// The default (false) memory-maps the snapshot file and opens segments
	// in place, making restore a validation pass.
	NoMapSegments bool
}

// OpenStore attaches durable storage in dir to c (which must be empty: the
// store's contents become the corpus's initial state). The directory is
// created if needed. Snapshot segments are memory-mapped by default; use
// OpenStoreWith to opt out.
func OpenStore(dir string, c *Corpus) (*Store, error) {
	return OpenStoreWith(dir, c, StoreOptions{})
}

// OpenStoreWith is OpenStore with explicit options.
func OpenStoreWith(dir string, c *Corpus, opts StoreOptions) (*Store, error) {
	if c.store != nil {
		return nil, fmt.Errorf("service: corpus already has a store attached")
	}
	if c.Backend() != index.BackendCCD {
		return nil, fmt.Errorf("service: store requires a ccd-backed corpus (got %q): the WAL journals (id, fingerprint) pairs", c.Backend())
	}
	if c.Len() != 0 {
		return nil, fmt.Errorf("service: OpenStore needs an empty corpus (%d entries)", c.Len())
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: create store dir: %w", err)
	}
	s := &Store{dir: dir, corpus: c, opts: opts}
	bootStart := time.Now()

	snapPath := filepath.Join(dir, SnapshotFile)
	if _, err := os.Stat(snapPath); err == nil {
		var restoreErr error
		if opts.NoMapSegments {
			f, err := os.Open(snapPath)
			if err != nil {
				return nil, err
			}
			restoreErr = c.ReadSnapshot(f)
			f.Close()
		} else {
			restoreErr = c.OpenSnapshotFile(snapPath)
		}
		if restoreErr != nil {
			return nil, fmt.Errorf("service: restore %s: %w", snapPath, restoreErr)
		}
		s.restored = c.Len()
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	// Replay is idempotent against the snapshot: a crash between the
	// snapshot rename and the WAL truncate leaves a WAL whose records are
	// all already in the snapshot, so records matching a not-yet-consumed
	// snapshot entry (same id and fingerprint) are skipped instead of
	// indexed twice. Only the LAST record per id replays: the corpus's
	// duplicate-id supersede means applying an earlier record after the
	// snapshot restore would roll the id back to a stale fingerprint (the
	// snapshot already holds the final one).
	var covered map[string]int
	if s.restored > 0 {
		covered = c.entryMultiset()
	}
	walPath := filepath.Join(dir, WALFile)
	var recs []ccd.Entry
	_, goodOffset, torn, err := replayWAL(walPath, func(id string, fp ccd.Fingerprint) {
		recs = append(recs, ccd.Entry{ID: id, FP: fp})
	})
	lastFor := make(map[string]int, len(recs))
	for i, r := range recs {
		lastFor[r.ID] = i
	}
	var replayBatch []ccd.Entry
	for i, r := range recs {
		if lastFor[r.ID] != i {
			s.replayOutdated++
			continue
		}
		key := r.ID + "\x00" + string(r.FP)
		if covered[key] > 0 {
			covered[key]--
			s.replayDupes++
			continue
		}
		replayBatch = append(replayBatch, r)
		s.replayed++
	}
	// One publish for the whole log instead of one per record: boot-time
	// replay builds a single delta segment.
	c.addLocalBatch(replayBatch)
	if err != nil {
		return nil, fmt.Errorf("service: replay %s: %w", walPath, err)
	}
	s.tornTail = torn
	if torn {
		if err := os.Truncate(walPath, goodOffset); err != nil {
			return nil, fmt.Errorf("service: cut torn WAL tail: %w", err)
		}
	}
	s.pendingAdds.Store(int64(s.replayed))

	if s.wal, err = openWAL(walPath); err != nil {
		return nil, fmt.Errorf("service: open WAL: %w", err)
	}
	s.restoreDur = time.Since(bootStart)
	c.store = s
	return s, nil
}

// Ready reports whether the store can take traffic: boot replay is complete
// (an open *Store implies it) and no failed-group-commit rollback is waiting
// for its truncate. A load balancer should not route to a not-ready node.
func (s *Store) Ready() bool {
	return s.wal != nil && !s.wal.rollbackPending()
}

// add journals the entry, then makes it visible. Called by Corpus.Add. The
// backpressure delay runs after the shared lock is released: slowing an ack
// must never hold up a Snapshot waiting for the exclusive lock.
func (s *Store) add(ctx context.Context, id string, fp ccd.Fingerprint) error {
	if err := func() error {
		s.mu.RLock()
		defer s.mu.RUnlock()
		if err := s.wal.appendRecord(ctx, id, fp); err != nil {
			return fmt.Errorf("%w: wal append: %v", ErrPersist, err)
		}
		s.corpus.addLocal(id, fp)
		s.pendingAdds.Add(1)
		return nil
	}(); err != nil {
		return err
	}
	s.backpressureDelay(ctx)
	return nil
}

// SnapshotInfo reports one Snapshot call.
type SnapshotInfo struct {
	Path    string        `json:"path"`
	Bytes   int64         `json:"bytes"`
	Entries int           `json:"entries"`
	Elapsed time.Duration `json:"-"`
}

// Snapshot persists the corpus atomically (write to a temp file in the same
// directory, fsync, rename) and truncates the WAL. Ingest pauses for the
// duration; matching is unaffected.
func (s *Store) Snapshot() (SnapshotInfo, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()

	tmp, err := os.CreateTemp(s.dir, SnapshotFile+".tmp-*")
	if err != nil {
		return SnapshotInfo{}, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_ = tmp.Chmod(0o644)        // CreateTemp defaults to 0600
	if err := s.corpus.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return SnapshotInfo{}, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return SnapshotInfo{}, err
	}
	st, err := tmp.Stat()
	if err != nil {
		tmp.Close()
		return SnapshotInfo{}, err
	}
	if err := tmp.Close(); err != nil {
		return SnapshotInfo{}, err
	}
	final := filepath.Join(s.dir, SnapshotFile)
	if err := os.Rename(tmp.Name(), final); err != nil {
		return SnapshotInfo{}, err
	}
	syncDir(s.dir)
	if err := s.wal.reset(); err != nil {
		return SnapshotInfo{}, fmt.Errorf("snapshot saved but WAL truncate failed (replay will be redundant, not lossy): %w", err)
	}
	// Best-effort: swap the published generations onto zero-copy segments
	// over the file just written — compaction back onto the mapping. Ingest
	// is still quiescent (we hold s.mu), so the corpus equals the snapshot.
	// On failure the heap generations keep serving unchanged.
	if !s.opts.NoMapSegments {
		if err := s.corpus.remapSnapshot(final); err != nil {
			s.remapFailures.Add(1)
		}
	}
	s.pendingAdds.Store(0)
	s.snapshots.Add(1)
	s.lastSnapshot.Store(time.Now().UnixNano())
	s.snapWriteHist.ObserveDuration(time.Since(start))
	return SnapshotInfo{
		Path:    final,
		Bytes:   st.Size(),
		Entries: s.corpus.Len(),
		Elapsed: time.Since(start),
	}, nil
}

// ErrWALTruncated reports a StreamWAL position past the end of the current
// WAL: a snapshot truncated the log since the caller's last read, so the
// requested tail no longer exists and a replica must re-bootstrap from a
// fresh snapshot before resuming.
var ErrWALTruncated = errors.New("wal stream position predates the current log (snapshot truncated it; re-bootstrap)")

// StreamWAL replays the on-disk WAL from record position `from` (0-based,
// counted from the last snapshot — the WAL has no persistent sequence
// numbers, positions ARE the sequence) into fn and returns the next
// position to resume from. It holds the store's shared lock, so a snapshot
// cannot truncate the log mid-stream while concurrent adds proceed; a
// record being appended concurrently can look like a torn tail, which just
// ends this page early — the next call picks it up. fn returning an error
// stops the stream; `from` beyond the log returns ErrWALTruncated.
func (s *Store) StreamWAL(from int, fn func(seq int, id string, fp ccd.Fingerprint) error) (int, error) {
	if from < 0 {
		from = 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	next := from
	seq := 0
	var fnErr error
	records, _, _, err := replayWAL(filepath.Join(s.dir, WALFile), func(id string, fp ccd.Fingerprint) {
		i := seq
		seq++
		if fnErr != nil || i < from {
			return
		}
		if err := fn(i, id, fp); err != nil {
			fnErr = err
			return
		}
		next = i + 1
	})
	if err != nil {
		return next, err
	}
	if fnErr != nil {
		return next, fnErr
	}
	if from > records {
		return records, ErrWALTruncated
	}
	return next, nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Best-effort: some filesystems reject directory syncs.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// StartAutoSnapshot snapshots every interval while there are journaled adds
// not yet covered by a snapshot. The returned stop function halts the loop
// and waits for an in-flight snapshot to finish; it is idempotent, so it can
// be both deferred and called explicitly before Close.
func (s *Store) StartAutoSnapshot(interval time.Duration, onErr func(error)) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	var once sync.Once
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if s.pendingAdds.Load() == 0 {
					continue
				}
				if _, err := s.Snapshot(); err != nil && onErr != nil {
					onErr(err)
				}
			}
		}
	}()
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}

// Close releases the WAL file handle. It does not snapshot; callers wanting
// a clean shutdown snapshot first.
func (s *Store) Close() error {
	return s.wal.close()
}

// StoreInfo is a point-in-time view of the store for /v1/corpus and logs.
type StoreInfo struct {
	Dir             string `json:"dir"`
	RestoredEntries int    `json:"restored_entries"`
	ReplayedRecords int    `json:"replayed_records"`
	// ReplaySkippedDuplicates counts WAL records already covered by the
	// snapshot (a crash hit the window between snapshot rename and WAL
	// truncate); they are collapsed at recovery, not indexed twice.
	ReplaySkippedDuplicates int `json:"replay_skipped_duplicates,omitempty"`
	// ReplaySuperseded counts WAL records outdated by a later record for the
	// same id; only the final version of each id replays.
	ReplaySuperseded int    `json:"replay_superseded,omitempty"`
	TornTailCut      bool   `json:"torn_tail_cut,omitempty"`
	PendingAdds      int64  `json:"pending_adds"`
	Snapshots        int64  `json:"snapshots"`
	LastSnapshot     string `json:"last_snapshot,omitempty"`
	WALBytes         int64  `json:"wal_bytes"`
	// MappedSegments counts published segments reading zero-copy out of the
	// snapshot mapping; SegmentRemaps how many post-snapshot remaps swung
	// the generations onto a fresh mapping; RemapFailures the best-effort
	// attempts that failed (heap segments kept serving).
	MappedSegments int   `json:"mapped_segments,omitempty"`
	SegmentRemaps  int64 `json:"segment_remaps,omitempty"`
	RemapFailures  int64 `json:"remap_failures,omitempty"`
}

// Info reports the store's boot and runtime statistics.
func (s *Store) Info() StoreInfo {
	info := StoreInfo{
		Dir:                     s.dir,
		RestoredEntries:         s.restored,
		ReplayedRecords:         s.replayed,
		ReplaySkippedDuplicates: s.replayDupes,
		ReplaySuperseded:        s.replayOutdated,
		TornTailCut:             s.tornTail,
		PendingAdds:             s.pendingAdds.Load(),
		Snapshots:               s.snapshots.Load(),
		MappedSegments:          s.corpus.MappedSegments(),
		SegmentRemaps:           s.corpus.Remaps(),
		RemapFailures:           s.remapFailures.Load(),
	}
	if ns := s.lastSnapshot.Load(); ns != 0 {
		info.LastSnapshot = time.Unix(0, ns).UTC().Format(time.RFC3339)
	}
	if n, err := s.wal.size(); err == nil {
		info.WALBytes = n
	}
	return info
}

// DurabilityStats is the /metrics view of the store's WAL and snapshot
// instrumentation.
type DurabilityStats struct {
	// FsyncLatency is the per-fsync latency histogram of the WAL group
	// commit; GroupCommitBatch the records each fsync made durable (the
	// coalescing factor under concurrent ingest).
	FsyncLatency     LatencyStats `json:"fsync_latency"`
	GroupCommitBatch SizeStats    `json:"group_commit_batch"`

	// Rollbacks counts failed-group-commit rollbacks; CondemnedRecords the
	// appended records those rollbacks cut from the log.
	Rollbacks        int64 `json:"rollbacks"`
	CondemnedRecords int64 `json:"condemned_records"`

	// SnapshotWrite times successful Store.Snapshot calls; RestoreUs is the
	// boot-time snapshot restore + WAL replay wall time.
	SnapshotWrite LatencyStats `json:"snapshot_write"`
	RestoreUs     int64        `json:"restore_us"`

	// BackpressureDelays counts ingest acks slowed because the rolling
	// fsync p99 crossed the configured threshold; BackpressureDelayUs is
	// the total delay injected. BackpressureEngaged reports whether a
	// freshly arriving ack would be slowed right now, and RecentFsyncP99Us
	// is the rolling-window (last fsyncs, not lifetime) p99 the policy
	// reads — unlike FsyncLatency it recovers when the disk does.
	BackpressureDelays  int64 `json:"backpressure_delays"`
	BackpressureDelayUs int64 `json:"backpressure_delay_us"`
	BackpressureEngaged bool  `json:"backpressure_engaged"`
	RecentFsyncP99Us    int64 `json:"recent_fsync_p99_us"`

	Ready bool `json:"ready"`
}

// Durability reports the store's WAL/snapshot instrumentation.
func (s *Store) Durability() DurabilityStats {
	d := DurabilityStats{
		FsyncLatency:        latencyStats(&s.wal.fsyncHist),
		GroupCommitBatch:    sizeStats(&s.wal.batchHist),
		Rollbacks:           s.wal.rollbacks.Load(),
		CondemnedRecords:    s.wal.condemned.Load(),
		SnapshotWrite:       latencyStats(&s.snapWriteHist),
		RestoreUs:           s.restoreDur.Microseconds(),
		BackpressureDelays:  s.bpDelays.Load(),
		BackpressureDelayUs: s.bpDelayUs.Load(),
		RecentFsyncP99Us:    s.wal.recentFsyncP99().Microseconds(),
		Ready:               s.Ready(),
	}
	if cfg := s.bp.Load(); cfg != nil {
		d.BackpressureEngaged = s.wal.recentFsyncP99() > cfg.FsyncP99
	}
	return d
}
