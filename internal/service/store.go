package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ccd"
	"repro/internal/index"
	"repro/internal/trace"
)

// Snapshot, WAL and WAL-epoch file names inside a store directory.
const (
	SnapshotFile = "corpus.snap"
	WALFile      = "corpus.wal"
	EpochFile    = "corpus.epoch"
)

// Store makes a Corpus durable inside one directory:
//
//	<dir>/corpus.snap   whole-corpus binary snapshot (atomic: temp + rename)
//	<dir>/corpus.wal    append-only log of Adds since the last snapshot
//
// Every acknowledged Add is fsynced to the WAL before it becomes visible in
// memory, so a crash (kill -9, power loss) between snapshots loses nothing
// that was acknowledged. OpenStore restores the snapshot (if any), replays
// the WAL on top, truncates any torn tail left by a crash mid-append, and
// then journals all subsequent Adds. Snapshot persists the corpus and
// truncates the WAL in one critical section.
type Store struct {
	dir    string
	corpus *Corpus
	wal    *wal
	opts   StoreOptions

	// remapFailures counts post-snapshot remap attempts that failed (the
	// heap generations keep serving; mapping is an optimization, not
	// correctness).
	remapFailures atomic.Int64

	// mu orders Adds against Snapshot: Adds hold it shared (WAL append plus
	// in-memory insert happen atomically w.r.t. snapshots), Snapshot holds
	// it exclusively so the saved corpus and the truncated WAL agree.
	mu sync.RWMutex

	// walEpoch identifies the current WAL generation. Stream positions are
	// only comparable within one generation, so it is bumped — and persisted
	// to EpochFile — before every WAL truncation; replicas echo it on
	// /v1/wal/stream and a mismatch answers ErrWALTruncated regardless of
	// position. Written under the exclusive lock, read atomically.
	walEpoch atomic.Int64

	// walCursor caches the byte offset of the last WAL stream position
	// served, so a replica tailing the log seeks straight to its position
	// instead of re-replaying the whole file every poll.
	walCursor atomic.Pointer[walCursor]

	restored       int           // entries restored from the snapshot at boot
	replayed       int           // WAL records applied at boot
	replayDupes    int           // WAL records skipped as already in the snapshot
	replayOutdated int           // WAL records superseded by a later record for the same id
	tornTail       bool          // whether boot found (and cut) a torn WAL tail
	restoreDur     time.Duration // boot-time snapshot restore + WAL replay wall time
	pendingAdds    atomic.Int64  // adds journaled since the last snapshot
	snapshots      atomic.Int64  // successful snapshots taken
	lastSnapshot   atomic.Int64  // unix nanos of the last successful snapshot

	snapWriteHist trace.Hist // µs per successful Snapshot call

	// Backpressure from durability into ingest acks: config (swapped
	// atomically so tests and admins can retune live) plus the delay
	// accounting.
	bp        atomic.Pointer[BackpressureConfig]
	bpDelays  atomic.Int64 // acks that were slowed
	bpDelayUs atomic.Int64 // total injected delay
}

// BackpressureConfig slows ingest acknowledgements when WAL fsyncs degrade:
// once the rolling-window fsync p99 crosses FsyncP99, every durable Add
// sleeps for the excess (capped at MaxDelay) before acknowledging. Write
// bursts then degrade smoothly — clients are paced at the disk's actual
// speed — instead of piling work onto a drowning log until the admission
// queue cliffs into 429s.
type BackpressureConfig struct {
	// FsyncP99 is the rolling-window fsync p99 above which acks slow.
	// 0 disables backpressure.
	FsyncP99 time.Duration
	// MaxDelay caps the per-ack delay (0 selects DefaultBackpressureMaxDelay).
	MaxDelay time.Duration
}

// DefaultBackpressureMaxDelay caps one ingest ack's injected delay when
// BackpressureConfig.MaxDelay is unset.
const DefaultBackpressureMaxDelay = 100 * time.Millisecond

// SetBackpressure installs (or, with a zero config, removes) the ingest
// backpressure policy. Safe to call while the store is serving traffic.
func (s *Store) SetBackpressure(cfg BackpressureConfig) {
	if cfg.FsyncP99 <= 0 {
		s.bp.Store(nil)
		return
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = DefaultBackpressureMaxDelay
	}
	s.bp.Store(&cfg)
}

// backpressureDelay slows one acknowledged add when the rolling fsync p99
// is over the configured threshold. The record is already durable and
// visible — the delay only paces the client — so a cancelled ctx simply
// skips the wait.
func (s *Store) backpressureDelay(ctx context.Context) {
	cfg := s.bp.Load()
	if cfg == nil {
		return
	}
	p99 := s.wal.recentFsyncP99()
	if p99 <= cfg.FsyncP99 {
		return
	}
	delay := p99 - cfg.FsyncP99
	if delay > cfg.MaxDelay {
		delay = cfg.MaxDelay
	}
	_, sp := trace.Start(ctx, "ingest.backpressure")
	sp.AnnotateInt("delay_us", delay.Microseconds())
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
	sp.End()
	s.bpDelays.Add(1)
	s.bpDelayUs.Add(delay.Microseconds())
}

// StoreOptions tunes how a store boots and maintains its corpus.
type StoreOptions struct {
	// NoMapSegments disables the zero-copy snapshot path: boot decodes the
	// snapshot to the heap (ReadSnapshot) and no post-snapshot remap runs.
	// The default (false) memory-maps the snapshot file and opens segments
	// in place, making restore a validation pass.
	NoMapSegments bool
}

// OpenStore attaches durable storage in dir to c (which must be empty: the
// store's contents become the corpus's initial state). The directory is
// created if needed. Snapshot segments are memory-mapped by default; use
// OpenStoreWith to opt out.
func OpenStore(dir string, c *Corpus) (*Store, error) {
	return OpenStoreWith(dir, c, StoreOptions{})
}

// OpenStoreWith is OpenStore with explicit options.
func OpenStoreWith(dir string, c *Corpus, opts StoreOptions) (*Store, error) {
	if c.store != nil {
		return nil, fmt.Errorf("service: corpus already has a store attached")
	}
	if c.Backend() != index.BackendCCD {
		return nil, fmt.Errorf("service: store requires a ccd-backed corpus (got %q): the WAL journals (id, fingerprint) pairs", c.Backend())
	}
	if c.Len() != 0 {
		return nil, fmt.Errorf("service: OpenStore needs an empty corpus (%d entries)", c.Len())
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: create store dir: %w", err)
	}
	s := &Store{dir: dir, corpus: c, opts: opts}
	bootStart := time.Now()

	snapPath := filepath.Join(dir, SnapshotFile)
	if _, err := os.Stat(snapPath); err == nil {
		var restoreErr error
		if opts.NoMapSegments {
			f, err := os.Open(snapPath)
			if err != nil {
				return nil, err
			}
			restoreErr = c.ReadSnapshot(f)
			f.Close()
		} else {
			restoreErr = c.OpenSnapshotFile(snapPath)
		}
		if restoreErr != nil {
			return nil, fmt.Errorf("service: restore %s: %w", snapPath, restoreErr)
		}
		s.restored = c.Len()
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	// Replay is idempotent against the snapshot: a crash between the
	// snapshot rename and the WAL truncate leaves a WAL whose records are
	// all already in the snapshot, so records matching a not-yet-consumed
	// snapshot entry (same id and fingerprint) are skipped instead of
	// indexed twice. Only the LAST record per id replays: the corpus's
	// duplicate-id supersede means applying an earlier record after the
	// snapshot restore would roll the id back to a stale fingerprint (the
	// snapshot already holds the final one).
	var covered map[string]int
	if s.restored > 0 {
		covered = c.entryMultiset()
	}
	walPath := filepath.Join(dir, WALFile)
	var recs []ccd.Entry
	_, goodOffset, torn, err := replayWAL(walPath, func(id string, fp ccd.Fingerprint) {
		recs = append(recs, ccd.Entry{ID: id, FP: fp})
	})
	lastFor := make(map[string]int, len(recs))
	for i, r := range recs {
		lastFor[r.ID] = i
	}
	var replayBatch []ccd.Entry
	for i, r := range recs {
		if lastFor[r.ID] != i {
			s.replayOutdated++
			continue
		}
		key := r.ID + "\x00" + string(r.FP)
		if covered[key] > 0 {
			covered[key]--
			s.replayDupes++
			continue
		}
		replayBatch = append(replayBatch, r)
		s.replayed++
	}
	// One publish for the whole log instead of one per record: boot-time
	// replay builds a single delta segment.
	c.addLocalBatch(replayBatch)
	if err != nil {
		return nil, fmt.Errorf("service: replay %s: %w", walPath, err)
	}
	s.tornTail = torn
	if torn {
		if err := os.Truncate(walPath, goodOffset); err != nil {
			return nil, fmt.Errorf("service: cut torn WAL tail: %w", err)
		}
	}
	s.pendingAdds.Store(int64(s.replayed))

	if s.wal, err = openWAL(walPath); err != nil {
		return nil, fmt.Errorf("service: open WAL: %w", err)
	}
	epoch, err := loadOrInitEpoch(dir)
	if err != nil {
		return nil, fmt.Errorf("service: wal epoch: %w", err)
	}
	s.walEpoch.Store(epoch)
	s.restoreDur = time.Since(bootStart)
	c.store = s
	return s, nil
}

// Ready reports whether the store can take traffic: boot replay is complete
// (an open *Store implies it) and no failed-group-commit rollback is waiting
// for its truncate. A load balancer should not route to a not-ready node.
func (s *Store) Ready() bool {
	return s.wal != nil && !s.wal.rollbackPending()
}

// add journals the entry, then makes it visible. Called by Corpus.Add. The
// backpressure delay runs after the shared lock is released: slowing an ack
// must never hold up a Snapshot waiting for the exclusive lock.
func (s *Store) add(ctx context.Context, id string, fp ccd.Fingerprint) error {
	if err := func() error {
		s.mu.RLock()
		defer s.mu.RUnlock()
		if err := s.wal.appendRecord(ctx, id, fp); err != nil {
			return fmt.Errorf("%w: wal append: %v", ErrPersist, err)
		}
		s.corpus.addLocal(id, fp)
		s.pendingAdds.Add(1)
		return nil
	}(); err != nil {
		return err
	}
	s.backpressureDelay(ctx)
	return nil
}

// SnapshotInfo reports one Snapshot call.
type SnapshotInfo struct {
	Path    string        `json:"path"`
	Bytes   int64         `json:"bytes"`
	Entries int           `json:"entries"`
	Elapsed time.Duration `json:"-"`
}

// Snapshot persists the corpus atomically (write to a temp file in the same
// directory, fsync, rename) and truncates the WAL. Ingest pauses for the
// duration; matching is unaffected.
func (s *Store) Snapshot() (SnapshotInfo, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()

	tmp, err := os.CreateTemp(s.dir, SnapshotFile+".tmp-*")
	if err != nil {
		return SnapshotInfo{}, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_ = tmp.Chmod(0o644)        // CreateTemp defaults to 0600
	if err := s.corpus.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return SnapshotInfo{}, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return SnapshotInfo{}, err
	}
	st, err := tmp.Stat()
	if err != nil {
		tmp.Close()
		return SnapshotInfo{}, err
	}
	if err := tmp.Close(); err != nil {
		return SnapshotInfo{}, err
	}
	final := filepath.Join(s.dir, SnapshotFile)
	if err := os.Rename(tmp.Name(), final); err != nil {
		return SnapshotInfo{}, err
	}
	syncDir(s.dir)
	// The epoch bump lands BEFORE the WAL truncate: a replica must be able to
	// observe the generation change before it can ever observe the truncated
	// log, or its stale stream position could silently land inside the new
	// log's records. A crash between the two steps leaves a new epoch over an
	// intact log — replicas re-bootstrap needlessly, which is safe.
	epoch := s.walEpoch.Load() + 1
	if err := writeEpoch(s.dir, epoch); err != nil {
		return SnapshotInfo{}, fmt.Errorf("snapshot saved but WAL epoch persist failed (WAL left intact; replay will be redundant, not lossy): %w", err)
	}
	s.walEpoch.Store(epoch)
	if err := s.wal.reset(); err != nil {
		return SnapshotInfo{}, fmt.Errorf("snapshot saved but WAL truncate failed (replay will be redundant, not lossy): %w", err)
	}
	// Best-effort: swap the published generations onto zero-copy segments
	// over the file just written — compaction back onto the mapping. Ingest
	// is still quiescent (we hold s.mu), so the corpus equals the snapshot.
	// On failure the heap generations keep serving unchanged.
	if !s.opts.NoMapSegments {
		if err := s.corpus.remapSnapshot(final); err != nil {
			s.remapFailures.Add(1)
		}
	}
	s.pendingAdds.Store(0)
	s.snapshots.Add(1)
	s.lastSnapshot.Store(time.Now().UnixNano())
	s.snapWriteHist.ObserveDuration(time.Since(start))
	return SnapshotInfo{
		Path:    final,
		Bytes:   st.Size(),
		Entries: s.corpus.Len(),
		Elapsed: time.Since(start),
	}, nil
}

// ErrWALTruncated reports a WAL stream position the current log does not
// cover: either the caller's epoch names a previous WAL generation (a
// snapshot truncated the log since its last read), or an epoch-less position
// lies past the end of the log. Positions from an old generation are
// meaningless against the new one even when they happen to fit inside it,
// so a replica must re-bootstrap from a fresh snapshot before resuming.
var ErrWALTruncated = errors.New("wal stream position predates the current log (snapshot truncated it; re-bootstrap)")

// WALEpoch returns the current WAL generation id. It changes whenever the
// log is truncated; stream positions are only valid within one generation.
func (s *Store) WALEpoch() int64 { return s.walEpoch.Load() }

// MaxWALPageRecords caps one WALPage (and thus one /v1/wal/stream response).
// Pages are collected in memory under the store's shared lock and written to
// the network after it is released, so the cap bounds both the page's heap
// footprint and the lock hold time.
const MaxWALPageRecords = 4096

// WALEntry is one record read back from the WAL for streaming.
type WALEntry struct {
	Seq int
	ID  string
	FP  ccd.Fingerprint
}

// WALPage is one page of the WAL stream.
type WALPage struct {
	Entries []WALEntry // up to max records from position `from`, in order
	Next    int        // position to resume from
	Epoch   int64      // the WAL generation the positions belong to
	More    bool       // page was cut by max; more records are ready now
}

// walCursor remembers where in the file a stream position lives, so the next
// page seeks instead of re-replaying the log from byte 0. Only trusted when
// the epoch still matches: a truncation invalidates every cached offset.
type walCursor struct {
	epoch int64
	pos   int
	off   int64
}

// WALPage reads up to max records (capped at MaxWALPageRecords) from record
// position `from` (0-based, counted from the last snapshot — the WAL has no
// persistent sequence numbers, positions ARE the sequence). epoch is the WAL
// generation the caller's position belongs to (0 = unknown, first contact);
// a mismatch returns ErrWALTruncated regardless of position, as does an
// epoch-less `from` beyond the log. Only fsynced records are served: a
// record a failed group commit could still roll back never reaches a
// replica. The page is collected under the store's shared lock — a snapshot
// cannot truncate the log mid-page — and the caller streams it out after the
// lock is released.
func (s *Store) WALPage(from int, epoch int64, max int) (WALPage, error) {
	if from < 0 {
		from = 0
	}
	if max <= 0 || max > MaxWALPageRecords {
		max = MaxWALPageRecords
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	cur := s.walEpoch.Load()
	page := WALPage{Next: from, Epoch: cur}
	if epoch != 0 && epoch != cur {
		return page, ErrWALTruncated
	}
	durable := s.wal.durableSize()
	seq, off := 0, int64(0)
	resumed := false
	if c := s.walCursor.Load(); c != nil && c.epoch == cur && c.pos == from && from > 0 {
		// Tail fast path: the previous page ended exactly here, so start the
		// scan at its byte offset instead of decoding the whole log again.
		seq, off, resumed = c.pos, c.off, true
	}
	if _, _, err := walScan(filepath.Join(s.dir, WALFile), off, func(id string, fp ccd.Fingerprint, end int64) bool {
		if end > durable {
			return false
		}
		if seq >= from {
			if len(page.Entries) >= max {
				page.More = true
				return false
			}
			page.Entries = append(page.Entries, WALEntry{Seq: seq, ID: id, FP: fp})
			page.Next = seq + 1
		}
		seq++
		off = end
		return true
	}); err != nil {
		return page, err
	}
	if !resumed && from > seq {
		return page, ErrWALTruncated
	}
	s.walCursor.Store(&walCursor{epoch: cur, pos: page.Next, off: off})
	return page, nil
}

// loadOrInitEpoch reads the persisted WAL epoch, minting (and persisting) a
// fresh one when the file is missing or unreadable. A minted epoch is the
// boot wall clock in nanoseconds, so a wiped-and-recreated store directory
// can never collide with the generation a replica remembers.
func loadOrInitEpoch(dir string) (int64, error) {
	path := filepath.Join(dir, EpochFile)
	if b, err := os.ReadFile(path); err == nil {
		if v, perr := strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64); perr == nil && v > 0 {
			return v, nil
		}
		// Corrupt epoch file: mint a new generation. Replicas re-bootstrap,
		// which is safe; resuming positionally against an unknown one is not.
	} else if !os.IsNotExist(err) {
		return 0, err
	}
	v := time.Now().UnixNano()
	if err := writeEpoch(dir, v); err != nil {
		return 0, err
	}
	return v, nil
}

// writeEpoch persists the WAL epoch atomically (temp + rename + dir sync).
func writeEpoch(dir string, v int64) error {
	tmp, err := os.CreateTemp(dir, EpochFile+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_ = tmp.Chmod(0o644)
	if _, err := fmt.Fprintf(tmp, "%d\n", v); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, EpochFile)); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Best-effort: some filesystems reject directory syncs.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// StartAutoSnapshot snapshots every interval while there are journaled adds
// not yet covered by a snapshot. The returned stop function halts the loop
// and waits for an in-flight snapshot to finish; it is idempotent, so it can
// be both deferred and called explicitly before Close.
func (s *Store) StartAutoSnapshot(interval time.Duration, onErr func(error)) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	var once sync.Once
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if s.pendingAdds.Load() == 0 {
					continue
				}
				if _, err := s.Snapshot(); err != nil && onErr != nil {
					onErr(err)
				}
			}
		}
	}()
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}

// Close releases the WAL file handle. It does not snapshot; callers wanting
// a clean shutdown snapshot first.
func (s *Store) Close() error {
	return s.wal.close()
}

// StoreInfo is a point-in-time view of the store for /v1/corpus and logs.
type StoreInfo struct {
	Dir             string `json:"dir"`
	RestoredEntries int    `json:"restored_entries"`
	ReplayedRecords int    `json:"replayed_records"`
	// ReplaySkippedDuplicates counts WAL records already covered by the
	// snapshot (a crash hit the window between snapshot rename and WAL
	// truncate); they are collapsed at recovery, not indexed twice.
	ReplaySkippedDuplicates int `json:"replay_skipped_duplicates,omitempty"`
	// ReplaySuperseded counts WAL records outdated by a later record for the
	// same id; only the final version of each id replays.
	ReplaySuperseded int    `json:"replay_superseded,omitempty"`
	TornTailCut      bool   `json:"torn_tail_cut,omitempty"`
	PendingAdds      int64  `json:"pending_adds"`
	Snapshots        int64  `json:"snapshots"`
	LastSnapshot     string `json:"last_snapshot,omitempty"`
	WALBytes         int64  `json:"wal_bytes"`
	// WALEpoch identifies the current WAL generation; it changes whenever the
	// log is truncated, and /v1/wal/stream positions are only valid within
	// it. Comparing it across a primary and its replica tells whether the
	// replica's stream position is still meaningful.
	WALEpoch int64 `json:"wal_epoch,omitempty"`
	// MappedSegments counts published segments reading zero-copy out of the
	// snapshot mapping; SegmentRemaps how many post-snapshot remaps swung
	// the generations onto a fresh mapping; RemapFailures the best-effort
	// attempts that failed (heap segments kept serving).
	MappedSegments int   `json:"mapped_segments,omitempty"`
	SegmentRemaps  int64 `json:"segment_remaps,omitempty"`
	RemapFailures  int64 `json:"remap_failures,omitempty"`
}

// Info reports the store's boot and runtime statistics.
func (s *Store) Info() StoreInfo {
	info := StoreInfo{
		Dir:                     s.dir,
		RestoredEntries:         s.restored,
		ReplayedRecords:         s.replayed,
		ReplaySkippedDuplicates: s.replayDupes,
		ReplaySuperseded:        s.replayOutdated,
		TornTailCut:             s.tornTail,
		PendingAdds:             s.pendingAdds.Load(),
		Snapshots:               s.snapshots.Load(),
		WALEpoch:                s.walEpoch.Load(),
		MappedSegments:          s.corpus.MappedSegments(),
		SegmentRemaps:           s.corpus.Remaps(),
		RemapFailures:           s.remapFailures.Load(),
	}
	if ns := s.lastSnapshot.Load(); ns != 0 {
		info.LastSnapshot = time.Unix(0, ns).UTC().Format(time.RFC3339)
	}
	if n, err := s.wal.size(); err == nil {
		info.WALBytes = n
	}
	return info
}

// DurabilityStats is the /metrics view of the store's WAL and snapshot
// instrumentation.
type DurabilityStats struct {
	// FsyncLatency is the per-fsync latency histogram of the WAL group
	// commit; GroupCommitBatch the records each fsync made durable (the
	// coalescing factor under concurrent ingest).
	FsyncLatency     LatencyStats `json:"fsync_latency"`
	GroupCommitBatch SizeStats    `json:"group_commit_batch"`

	// Rollbacks counts failed-group-commit rollbacks; CondemnedRecords the
	// appended records those rollbacks cut from the log.
	Rollbacks        int64 `json:"rollbacks"`
	CondemnedRecords int64 `json:"condemned_records"`

	// SnapshotWrite times successful Store.Snapshot calls; RestoreUs is the
	// boot-time snapshot restore + WAL replay wall time.
	SnapshotWrite LatencyStats `json:"snapshot_write"`
	RestoreUs     int64        `json:"restore_us"`

	// BackpressureDelays counts ingest acks slowed because the rolling
	// fsync p99 crossed the configured threshold; BackpressureDelayUs is
	// the total delay injected. BackpressureEngaged reports whether a
	// freshly arriving ack would be slowed right now, and RecentFsyncP99Us
	// is the rolling-window (last fsyncs, not lifetime) p99 the policy
	// reads — unlike FsyncLatency it recovers when the disk does.
	BackpressureDelays  int64 `json:"backpressure_delays"`
	BackpressureDelayUs int64 `json:"backpressure_delay_us"`
	BackpressureEngaged bool  `json:"backpressure_engaged"`
	RecentFsyncP99Us    int64 `json:"recent_fsync_p99_us"`

	Ready bool `json:"ready"`
}

// Durability reports the store's WAL/snapshot instrumentation.
func (s *Store) Durability() DurabilityStats {
	d := DurabilityStats{
		FsyncLatency:        latencyStats(&s.wal.fsyncHist),
		GroupCommitBatch:    sizeStats(&s.wal.batchHist),
		Rollbacks:           s.wal.rollbacks.Load(),
		CondemnedRecords:    s.wal.condemned.Load(),
		SnapshotWrite:       latencyStats(&s.snapWriteHist),
		RestoreUs:           s.restoreDur.Microseconds(),
		BackpressureDelays:  s.bpDelays.Load(),
		BackpressureDelayUs: s.bpDelayUs.Load(),
		RecentFsyncP99Us:    s.wal.recentFsyncP99().Microseconds(),
		Ready:               s.Ready(),
	}
	if cfg := s.bp.Load(); cfg != nil {
		d.BackpressureEngaged = s.wal.recentFsyncP99() > cfg.FsyncP99
	}
	return d
}
