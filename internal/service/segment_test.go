package service

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/ccd"
)

// writeSnapshotFile persists c to a snapshot file inside a temp dir.
func writeSnapshotFile(t *testing.T, c *Corpus) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), SnapshotFile)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMappedSnapshotRestoreEquivalence: the zero-copy OpenSnapshotFile boot
// and the streaming ReadSnapshot boot must be observably identical — same
// size, same entry multiset, same MatchTopK results across the k sweep — and
// the mapped corpus must actually read zero-copy (MappedSegments > 0).
func TestMappedSnapshotRestoreEquivalence(t *testing.T) {
	fps := randomFingerprints(41, 300)
	builder := NewCorpus(ccd.DefaultConfig, 3)
	for i, fp := range fps {
		if err := builder.Add(fmt.Sprintf("doc-%03d", i), fp); err != nil {
			t.Fatal(err)
		}
	}
	path := writeSnapshotFile(t, builder)

	mapped := NewCorpus(ccd.DefaultConfig, 3)
	if err := mapped.OpenSnapshotFile(path); err != nil {
		t.Fatalf("mapped open: %v", err)
	}
	heap := NewCorpus(ccd.DefaultConfig, 3)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := heap.ReadSnapshot(f); err != nil {
		t.Fatalf("heap restore: %v", err)
	}
	f.Close()

	if mapped.Len() != builder.Len() || heap.Len() != builder.Len() {
		t.Fatalf("sizes drifted: mapped=%d heap=%d builder=%d", mapped.Len(), heap.Len(), builder.Len())
	}
	if mapped.MappedSegments() == 0 {
		t.Fatal("no mapped segments after OpenSnapshotFile")
	}
	if !reflect.DeepEqual(mapped.entryMultiset(), builder.entryMultiset()) {
		t.Fatal("mapped restore changed the entry multiset")
	}
	queries := randomFingerprints(43, 8)
	queries = append(queries, fps[0], fps[150])
	for qi, q := range queries {
		for _, k := range []int{1, 10, 100, 0} {
			want, _ := heap.MatchTopK(q, k)
			got, _ := mapped.MatchTopK(q, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("query %d k=%d: mapped %v != heap %v", qi, k, got, want)
			}
		}
	}
}

// TestMappedShardedEquivalence: the sharded scatter-gather over mapped
// segments returns exactly the single-corpus reference prefix — the sharded
// equivalence property re-pinned over the compressed, memory-mapped path.
func TestMappedShardedEquivalence(t *testing.T) {
	const docs = 160
	fps := randomFingerprints(11, docs)
	single := ccd.NewCorpus(ccd.DefaultConfig)
	builder := NewCorpus(ccd.DefaultConfig, 4)
	for i, fp := range fps {
		id := fmt.Sprintf("doc-%03d", i)
		single.Add(id, fp)
		if err := builder.Add(id, fp); err != nil {
			t.Fatal(err)
		}
	}
	mapped := NewCorpus(ccd.DefaultConfig, 4)
	if err := mapped.OpenSnapshotFile(writeSnapshotFile(t, builder)); err != nil {
		t.Fatal(err)
	}
	queries := randomFingerprints(23, 10)
	queries = append(queries, fps[0], fps[docs/2])
	for qi, q := range queries {
		reference := single.Match(q)
		ccd.SortMatches(reference)
		for _, k := range []int{1, 2, 3, 5, 10, 100, 0} {
			got, _ := mapped.MatchTopK(q, k)
			want := reference
			if k > 0 && k < len(want) {
				want = want[:k]
			}
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("query %d k=%d:\n got %v\nwant %v", qi, k, got, want)
			}
		}
	}
}

// TestStoreMappedBootAndRemap drives the full store lifecycle over the
// mapped path: boot from a snapshot maps segments; Snapshot remaps the
// published generations onto the freshly written file; ingest after a remap
// lands in new delta segments on top of the mapping and stays queryable.
func TestStoreMappedBootAndRemap(t *testing.T) {
	dir := t.TempDir()
	c := NewCorpus(ccd.DefaultConfig, 2)
	s, err := OpenStore(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := c.Add(fmt.Sprintf("doc-%02d", i), testFP(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := c.Remaps(); got != 1 {
		t.Fatalf("remaps after snapshot: %d, want 1", got)
	}
	if c.MappedSegments() == 0 {
		t.Fatal("no mapped segments after post-snapshot remap")
	}
	if s.remapFailures.Load() != 0 {
		t.Fatalf("remap failures: %d", s.remapFailures.Load())
	}
	// Ingest after the remap: delta segments stack on the mapped ones.
	for i := 40; i < 60; i++ {
		if err := c.Add(fmt.Sprintf("doc-%02d", i), testFP(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 60 {
		t.Fatalf("len %d, want 60", c.Len())
	}
	for _, i := range []int{0, 39, 40, 59} {
		ms, _ := c.MatchTopK(testFP(i), 3)
		found := false
		for _, m := range ms {
			if m.ID == fmt.Sprintf("doc-%02d", i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("doc-%02d not found after remap (+delta): %v", i, ms)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reboot: boot restores through the mapped open.
	c2 := NewCorpus(ccd.DefaultConfig, 2)
	s2, err := OpenStore(dir, c2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if c2.Len() != 60 {
		t.Fatalf("rebooted len %d, want 60", c2.Len())
	}
	if c2.MappedSegments() == 0 {
		t.Fatal("reboot did not map snapshot segments")
	}
	info := s2.Info()
	if info.MappedSegments == 0 {
		t.Fatal("store info does not report mapped segments")
	}
	if !reflect.DeepEqual(c2.entryMultiset(), c.entryMultiset()) {
		t.Fatal("reboot changed the entry multiset")
	}

	// The opt-out path boots entirely on the heap.
	c3 := NewCorpus(ccd.DefaultConfig, 2)
	s3, err := OpenStoreWith(t.TempDir(), c3, StoreOptions{NoMapSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if err := c3.Add("solo", testFP(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if c3.MappedSegments() != 0 || c3.Remaps() != 0 {
		t.Fatalf("NoMapSegments store mapped anyway: %d segments, %d remaps",
			c3.MappedSegments(), c3.Remaps())
	}
}

// TestOpenSnapshotFileRejects covers the failure surface: missing file,
// non-empty corpus, backend mismatch.
func TestOpenSnapshotFileRejects(t *testing.T) {
	c := NewCorpus(ccd.DefaultConfig, 2)
	if err := c.OpenSnapshotFile(filepath.Join(t.TempDir(), "absent.snap")); err == nil {
		t.Fatal("missing file: no error")
	}
	builder := NewCorpus(ccd.DefaultConfig, 2)
	if err := builder.Add("a", testFP(1)); err != nil {
		t.Fatal(err)
	}
	path := writeSnapshotFile(t, builder)
	full := NewCorpus(ccd.DefaultConfig, 2)
	if err := full.Add("x", testFP(2)); err != nil {
		t.Fatal(err)
	}
	if err := full.OpenSnapshotFile(path); err == nil {
		t.Fatal("non-empty corpus: no error")
	}
}

// TestMappedRestoreSmoke100k is the tier-1 scale smoke: a 100k-document
// corpus snapshots and reopens through the zero-copy path, restore equals
// the original, and queries over the mapped segments answer correctly. The
// corpus is synthetic (no source parsing), so the whole test stays in the
// seconds range even in short mode.
func TestMappedRestoreSmoke100k(t *testing.T) {
	const docs = 100_000
	fps := randomFingerprints(7, docs)
	entries := make([]ccd.Entry, docs)
	for i, fp := range fps {
		entries[i] = ccd.Entry{ID: fmt.Sprintf("doc-%06d", i), FP: fp}
	}
	builder := NewCorpus(ccd.DefaultConfig, 4)
	builder.addLocalBatch(entries)
	if builder.Len() != docs {
		t.Fatalf("builder len %d, want %d", builder.Len(), docs)
	}
	path := writeSnapshotFile(t, builder)

	mapped := NewCorpus(ccd.DefaultConfig, 4)
	if err := mapped.OpenSnapshotFile(path); err != nil {
		t.Fatalf("mapped open of %d-doc snapshot: %v", docs, err)
	}
	if mapped.Len() != docs {
		t.Fatalf("mapped len %d, want %d", mapped.Len(), docs)
	}
	if mapped.MappedSegments() == 0 {
		t.Fatal("100k restore did not map segments")
	}
	for _, qi := range []int{0, docs / 2, docs - 1} {
		want, _ := builder.MatchTopK(fps[qi], 10)
		got, _ := mapped.MatchTopK(fps[qi], 10)
		if len(got) == 0 {
			t.Fatalf("query %d matched nothing over the mapped corpus", qi)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: mapped %v != builder %v", qi, got, want)
		}
	}
}
