package service

import (
	"context"
	"sync"
	"time"
)

// DegradeConfig tunes the pressure-tiered quality ladder: under measured
// pressure the engine degrades result *quality* (smaller effective top-K,
// coarser pre-filter, stale cluster views) before admission degrades
// *quantity* (shedding 429s). Pressure is the max of queue pressure
// (in-flight admitted requests / admission capacity) and durability pressure
// (recent fsync p99 / FsyncP99), both already maintained for /metrics — the
// ladder adds no new instrumentation to the hot path, only a reader.
type DegradeConfig struct {
	// Tier1, Tier2, Tier3 are the pressure thresholds (0 < t ≤ ~1) at which
	// each tier engages; zero values default to 0.75 / 0.90 / 1.0.
	// Tier 1 halves the effective match limit, tier 2 additionally raises
	// the pre-filter η to prune harder, tier 3 additionally serves
	// /v1/clusters from a stale-while-revalidate snapshot.
	Tier1, Tier2, Tier3 float64
	// FsyncP99 is the recent fsync p99 that counts as durability pressure
	// 1.0 (default 50ms, matching cmd/serve's -bp-fsync-p99 default).
	FsyncP99 time.Duration
	// SampleInterval bounds how often the signals are re-read (default
	// 100ms). Sampling is lazy — it happens on the first Tier() call after
	// the interval, so an idle engine pays nothing.
	SampleInterval time.Duration
	// EnterSamples and ExitSamples are the rolling-window hysteresis: how
	// many consecutive samples above (below) a threshold escalate
	// (de-escalate) the tier. Defaults 2 and 10 — entering fast under real
	// overload, leaving slowly so the ladder does not flap at a boundary.
	EnterSamples int
	ExitSamples  int
	// Disabled switches the ladder off; Tier() is always 0.
	Disabled bool
}

func (c DegradeConfig) withDefaults() DegradeConfig {
	if c.Tier1 <= 0 {
		c.Tier1 = 0.75
	}
	if c.Tier2 <= 0 {
		c.Tier2 = 0.90
	}
	if c.Tier3 <= 0 {
		c.Tier3 = 1.0
	}
	if c.FsyncP99 <= 0 {
		c.FsyncP99 = 50 * time.Millisecond
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = 100 * time.Millisecond
	}
	if c.EnterSamples <= 0 {
		c.EnterSamples = 2
	}
	if c.ExitSamples <= 0 {
		c.ExitSamples = 10
	}
	return c
}

// degrade is the tier state machine. It has no goroutine: Tier() samples the
// pressure signals at most once per SampleInterval under a mutex, so the
// controller's lifecycle is the engine's and a quiet server never samples.
type degrade struct {
	cfg DegradeConfig
	// raisedEta is the tier-2 pre-filter bound: η + (1−η)/2 of the ccd
	// config, computed once at engine construction.
	raisedEta float64

	mu         sync.Mutex
	lastSample time.Time
	tier       int
	upStreak   int
	downStreak int
}

// tierFor maps one pressure reading to the tier it argues for.
func (d *degrade) tierFor(p float64) int {
	switch {
	case p >= d.cfg.Tier3:
		return 3
	case p >= d.cfg.Tier2:
		return 2
	case p >= d.cfg.Tier1:
		return 1
	}
	return 0
}

// sample folds one pressure reading into the hysteresis windows and returns
// the (possibly changed) tier plus how many tiers were newly entered.
func (d *degrade) sample(p float64) (tier, entered int) {
	target := d.tierFor(p)
	switch {
	case target > d.tier:
		d.upStreak++
		d.downStreak = 0
		if d.upStreak >= d.cfg.EnterSamples {
			entered = target - d.tier
			d.tier = target
			d.upStreak = 0
		}
	case target < d.tier:
		d.downStreak++
		d.upStreak = 0
		if d.downStreak >= d.cfg.ExitSamples {
			// De-escalate one tier at a time: recovery re-earns each step.
			d.tier--
			d.downStreak = 0
		}
	default:
		d.upStreak = 0
		d.downStreak = 0
	}
	return d.tier, entered
}

// pressure reads the two load signals the ladder is driven by. Both are
// plain atomic/mutex reads maintained elsewhere.
func (e *Engine) pressure() float64 {
	var p float64
	if e.adm.capacity > 0 {
		p = float64(e.ctr.inflight.Load()) / float64(e.adm.capacity)
	}
	if st := e.corpus.store; st != nil {
		d := st.Durability()
		if fs := float64(d.RecentFsyncP99Us) / float64(e.deg.cfg.FsyncP99.Microseconds()); fs > p {
			p = fs
		}
	}
	return p
}

// DegradeTier returns the engine's current degradation tier (0 = full
// quality), lazily re-sampling the pressure signals when the last sample is
// older than the configured interval.
func (e *Engine) DegradeTier() int {
	if e.deg.cfg.Disabled {
		return 0
	}
	d := e.deg
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now()
	if now.Sub(d.lastSample) < d.cfg.SampleInterval {
		return d.tier
	}
	d.lastSample = now
	tier, entered := d.sample(e.pressure())
	if entered > 0 {
		e.ctr.tierEntered.Add(int64(entered))
	}
	return tier
}

// DegradedEta returns the tier-2 pre-filter bound (η raised halfway to 1).
func (e *Engine) DegradedEta() float64 { return e.deg.raisedEta }

// etaOverrideKey carries a per-request pre-filter η override.
type etaOverrideKey struct{}

// WithEtaOverride marks every corpus scan under ctx with a raised pre-filter
// bound — the tier-2 degradation: prune harder, score less.
func WithEtaOverride(ctx context.Context, eta float64) context.Context {
	return context.WithValue(ctx, etaOverrideKey{}, eta)
}

// EtaOverrideOf returns the pre-filter override on ctx (0 when unmarked).
func EtaOverrideOf(ctx context.Context) float64 {
	if eta, ok := ctx.Value(etaOverrideKey{}).(float64); ok {
		return eta
	}
	return 0
}

// DegradeSnapshot is the /metrics view of the quality-degradation ladder.
type DegradeSnapshot struct {
	// Tier is the current degradation tier (0 = full quality).
	Tier int `json:"tier"`
	// TierEntered counts tier escalations since boot (entering tier 2 from
	// tier 0 counts twice — once per tier passed).
	TierEntered int64 `json:"tier_entered"`
	// LimitHalved counts match requests served with a halved effective
	// limit (tier ≥ 1); EtaRaised counts scans run with the coarser
	// pre-filter (tier ≥ 2); ClustersStale counts /v1/clusters responses
	// served from the stale-while-revalidate snapshot (tier 3).
	LimitHalved   int64 `json:"limit_halved"`
	EtaRaised     int64 `json:"eta_raised"`
	ClustersStale int64 `json:"clusters_stale"`
}

// DeadlineSnapshot is the /metrics view of the request-budget spine.
type DeadlineSnapshot struct {
	// BudgetRequests counts requests that declared a deadline budget
	// (X-Request-Timeout / ?timeout= / shipped shard budget).
	BudgetRequests int64 `json:"budget_requests"`
	// Expired counts budgets that ran out mid-request and were answered
	// with a degraded partial result instead of an error.
	Expired int64 `json:"expired"`
	// Shipped counts shard-side requests that arrived with a remaining
	// budget shipped by a router — nonzero here proves budget propagation
	// crosses the network tier.
	Shipped int64 `json:"shipped"`
}

// NoteBudgetRequest records a request that declared a deadline budget.
func (e *Engine) NoteBudgetRequest() { e.ctr.budgetRequests.Add(1) }

// NoteDeadlineShipped records a shard request that carried a shipped budget.
func (e *Engine) NoteDeadlineShipped() { e.ctr.deadlineShipped.Add(1) }

// NoteLimitHalved records a match served with a tier-1 halved limit.
func (e *Engine) NoteLimitHalved() { e.ctr.limitHalved.Add(1) }

// NoteClustersStale records a /v1/clusters response served stale (tier 3).
func (e *Engine) NoteClustersStale() { e.ctr.clustersStale.Add(1) }
