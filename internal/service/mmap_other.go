//go:build !linux

package service

import "os"

// mapFile on non-linux platforms reads the file into the heap: callers get
// the same zero-copy open over the returned bytes, just without the page
// cache sharing. No reference is needed to keep heap bytes alive, so ref is
// nil.
func mapFile(path string) ([]byte, any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if len(data) == 0 {
		return nil, nil, nil
	}
	return data[:len(data):len(data)], nil, nil
}
