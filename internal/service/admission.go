package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOverloaded marks a request shed by admission control: the bounded
// queue in front of the worker pool is full, and letting the request wait
// would only grow everyone's latency. The API layer maps it to 429 with a
// Retry-After computed from the live p99 (Engine.RetryAfter).
var ErrOverloaded = errors.New("service: overloaded, admission queue full")

// Class is a request's scheduling priority through the worker pool.
type Class int

const (
	// ClassInteractive is the default: latency-sensitive requests
	// (/v1/match, /v1/analyze) that run ahead of background work.
	ClassInteractive Class = iota
	// ClassBackground marks throughput work — self-join segments, bulk
	// ingest batches — that yields to interactive traffic: a background
	// task does not compete for a worker slot while any interactive task
	// is waiting for one.
	ClassBackground
)

// String names the class for annotations and logs.
func (c Class) String() string {
	if c == ClassBackground {
		return "background"
	}
	return "interactive"
}

// classKey carries a Class through a context.
type classKey struct{}

// WithClass marks every engine dispatch under ctx with the given scheduling
// class. Contexts without a mark are ClassInteractive.
func WithClass(ctx context.Context, c Class) context.Context {
	return context.WithValue(ctx, classKey{}, c)
}

// ClassOf returns the scheduling class marked on ctx (ClassInteractive when
// unmarked).
func ClassOf(ctx context.Context) Class {
	if c, ok := ctx.Value(classKey{}).(Class); ok {
		return c
	}
	return ClassInteractive
}

// AdmissionConfig bounds the request queue in front of the worker pool.
type AdmissionConfig struct {
	// MaxQueue is how many admitted requests may be waiting beyond the
	// worker pool before new ones are shed with ErrOverloaded: the
	// admission capacity is Workers + MaxQueue in-flight requests. 0
	// disables admission control (the queue is unbounded, the pre-PR-7
	// behavior); cmd/serve defaults to 64.
	MaxQueue int
}

// yieldPoll is how often a yielded background task re-checks for waiting
// interactive work. Short enough that a freed slot is claimed promptly,
// long enough that parked background tasks cost ~nothing.
const yieldPoll = 500 * time.Microsecond

// admission is the engine's bounded front queue plus the priority gate.
type admission struct {
	capacity int // max in-flight admitted requests; 0 = unlimited
}

// AdmitRequest reserves one slot of the bounded admission queue for an
// in-flight request, returning a release function the caller must invoke
// (exactly once; extra calls are absorbed) when the request finishes. When
// the queue is over capacity the request is shed: release is nil and the
// error wraps ErrOverloaded. With admission control disabled every request
// is admitted but still counted, so /metrics reports true in-flight depth
// either way.
func (e *Engine) AdmitRequest() (release func(), err error) {
	n := e.ctr.inflight.Add(1)
	if e.adm.capacity > 0 && int(n) > e.adm.capacity {
		e.ctr.inflight.Add(-1)
		e.ctr.shed.Add(1)
		return nil, fmt.Errorf("%w: %d in flight, capacity %d", ErrOverloaded, n-1, e.adm.capacity)
	}
	e.ctr.admitted.Add(1)
	var once sync.Once
	return func() { once.Do(func() { e.ctr.inflight.Add(-1) }) }, nil
}

// AdmissionCapacity returns the in-flight request bound (0 = admission
// control disabled).
func (e *Engine) AdmissionCapacity() int { return e.adm.capacity }

// RetryAfter estimates when a shed client should try again: the time the
// pool needs to drain the current queue, from the live p99 match latency.
// Clamped to [1s, 30s] — Retry-After is a coarse hint, not a schedule.
func (e *Engine) RetryAfter() time.Duration {
	waiting := e.ctr.inflight.Load() - int64(e.workers)
	if waiting < 1 {
		waiting = 1
	}
	p99us := e.ctr.matchLatency.Snapshot().Quantile(0.99)
	if p99us <= 0 {
		p99us = 50_000 // no latency signal yet: assume 50ms service time
	}
	d := time.Duration(float64(waiting) / float64(e.workers) * p99us * float64(time.Microsecond))
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// yieldToInteractive parks a background task while any interactive task is
// waiting for a worker slot. Strict priority: background work can wait
// indefinitely under sustained interactive load — it is all checkpointed
// (self-join segments) or client-paced (bulk ingest chunks), so starvation
// costs progress, not correctness.
func (e *Engine) yieldToInteractive(ctx context.Context) error {
	if e.ctr.interactiveWaiting.Load() == 0 {
		return nil
	}
	e.ctr.yields.Add(1)
	t := time.NewTicker(yieldPoll)
	defer t.Stop()
	for e.ctr.interactiveWaiting.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	return nil
}

// AdmissionSnapshot is the /metrics view of the bounded admission queue and
// the priority gate.
type AdmissionSnapshot struct {
	// Enabled reports whether the queue bound is active; Capacity is the
	// in-flight request bound (0 when disabled).
	Enabled  bool `json:"enabled"`
	Capacity int  `json:"capacity,omitempty"`
	// Inflight is the number of admitted requests currently in flight;
	// InteractiveWaiting how many interactive tasks are blocked on a
	// worker slot right now.
	Inflight           int64 `json:"inflight"`
	InteractiveWaiting int64 `json:"interactive_waiting"`
	// Admitted and Shed count admission decisions; BackgroundYields counts
	// background tasks that parked to let interactive work run first.
	Admitted         int64 `json:"admitted"`
	Shed             int64 `json:"shed"`
	BackgroundYields int64 `json:"background_yields"`
}
