package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/ccd"
)

func testFP(i int) ccd.Fingerprint {
	return ccd.Fingerprint(fmt.Sprintf("QxRtYuIoP%dAbCdEfGh.ZxCvBnM%dQwErTy", i, i*7))
}

func mustAdd(t *testing.T, c *Corpus, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := c.Add(fmt.Sprintf("doc-%d", i), testFP(i)); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
}

func verifyEntries(t *testing.T, c *Corpus, n int) {
	t.Helper()
	if c.Len() != n {
		t.Fatalf("corpus has %d entries, want %d", c.Len(), n)
	}
	for i := 0; i < n; i++ {
		ms := c.Match(testFP(i))
		found := false
		for _, m := range ms {
			if m.ID == fmt.Sprintf("doc-%d", i) && m.Score == 100 {
				found = true
			}
		}
		if !found {
			t.Fatalf("doc-%d not matchable after recovery (got %v)", i, ms)
		}
	}
}

// TestStoreGroupCommitFailureAccounting is the partial-group-commit
// regression: an Add whose fsync fails must be rolled out of the WAL file,
// so the acknowledged-add accounting and the boot-time replay count agree
// exactly — a record the caller was told failed must never replay.
func TestStoreGroupCommitFailureAccounting(t *testing.T) {
	dir := t.TempDir()
	c := NewCorpus(ccd.DefaultConfig, 2)
	store, err := OpenStore(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, c, 3)

	// Inject a disk failure on the next group commit. The record's bytes hit
	// the file before the fsync, so without the rollback they would replay.
	store.wal.syncHook = func() error { return errors.New("injected: disk full") }
	err = c.Add("doomed", testFP(99))
	if !errors.Is(err, ErrPersist) {
		t.Fatalf("failed group commit returned %v, want ErrPersist", err)
	}
	if c.Len() != 3 {
		t.Fatalf("unacknowledged add visible: Len %d, want 3", c.Len())
	}

	// The log recovers: the failed record is gone and new appends land at
	// the durable offset.
	store.wal.syncHook = nil
	if err := c.Add("after", testFP(4)); err != nil {
		t.Fatal(err)
	}
	acked := int64(4) // 3 + "after"; "doomed" was refused
	if got := store.pendingAdds.Load(); got != acked {
		t.Fatalf("pendingAdds %d, want %d", got, acked)
	}

	// Crash (no Close, no Snapshot) and reboot: the replay count must match
	// the acknowledged adds, and the refused record must not resurface.
	c2 := NewCorpus(ccd.DefaultConfig, 2)
	s2, err := OpenStore(dir, c2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	info := s2.Info()
	if int64(info.ReplayedRecords) != acked {
		t.Fatalf("replayed %d records, want %d (accounting disagrees with WAL)", info.ReplayedRecords, acked)
	}
	if info.TornTailCut {
		t.Fatal("rollback left a torn tail for replay to cut")
	}
	if c2.Len() != 4 {
		t.Fatalf("rebooted corpus has %d entries, want 4", c2.Len())
	}
	for _, m := range c2.Match(testFP(99)) {
		if m.ID == "doomed" {
			t.Fatal("record from failed group commit replayed on boot")
		}
	}
}

// TestWALRollbackOnSyncFailure pins the wal-level contract: a failed fsync
// truncates back to the durable prefix, later appends succeed at the right
// offset, and replay sees exactly the acknowledged records.
func TestWALRollbackOnSyncFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	if err := w.appendRecord(context.Background(), "a", testFP(1)); err != nil {
		t.Fatal(err)
	}
	okSize, err := w.size()
	if err != nil {
		t.Fatal(err)
	}
	w.syncHook = func() error { return errors.New("injected") }
	if err := w.appendRecord(context.Background(), "b", testFP(2)); err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	if got, _ := w.size(); got != okSize {
		t.Fatalf("file size %d after rollback, want %d", got, okSize)
	}
	w.syncHook = nil
	if err := w.appendRecord(context.Background(), "c", testFP(3)); err != nil {
		t.Fatal(err)
	}
	var ids []string
	records, _, torn, err := replayWAL(path, func(id string, fp ccd.Fingerprint) { ids = append(ids, id) })
	if err != nil || torn {
		t.Fatalf("replay: records=%d torn=%v err=%v", records, torn, err)
	}
	if records != 2 || ids[0] != "a" || ids[1] != "c" {
		t.Fatalf("replayed %v, want [a c]", ids)
	}
}

// TestWALCutAppenderNotFalselyAcknowledged pins sequence-number retirement:
// when a rollback cuts a concurrent appender's record, a LATER successful
// group commit pushing syncSeq past that appender's seq must not let it
// return nil. With seq reuse (writeSeq reset to syncSeq on rollback) the
// fresh record takes over the cut seq, the stalled appender passes the
// syncSeq fast-path and reports success for a record that is not in the log
// — silent loss of an acked write on replay.
func TestWALCutAppenderNotFalselyAcknowledged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	if err := w.appendRecord(context.Background(), "a", testFP(1)); err != nil {
		t.Fatal(err)
	}

	// Appender A: record written, acknowledgement pending — exactly the
	// state of a goroutine that has left writeRecord but not yet entered the
	// group-commit section.
	seqA, err := w.writeRecord(encodeWALRecord("stalled", testFP(2)))
	if err != nil {
		t.Fatal(err)
	}

	// Appender B joins the group and its fsync fails: the rollback cuts both
	// B's record and A's.
	w.syncHook = func() error { return errors.New("injected: disk full") }
	if err := w.appendRecord(context.Background(), "b", testFP(3)); err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	w.syncHook = nil

	// Appender C lands after the rollback and commits durably, pushing
	// syncSeq past A's sequence number.
	if err := w.appendRecord(context.Background(), "c", testFP(4)); err != nil {
		t.Fatal(err)
	}

	// A resumes: it must learn its record is gone, not be acknowledged on
	// the strength of C's fsync.
	errA := w.awaitDurable(seqA)
	w.release(seqA)
	if errA == nil {
		t.Fatal("appender cut by a rollback was acknowledged")
	}

	var ids []string
	records, _, torn, err := replayWAL(path, func(id string, fp ccd.Fingerprint) { ids = append(ids, id) })
	if err != nil || torn {
		t.Fatalf("replay: records=%d torn=%v err=%v", records, torn, err)
	}
	if records != 2 || ids[0] != "a" || ids[1] != "c" {
		t.Fatalf("replayed %v, want [a c]", ids)
	}
}

// TestWALGarbageCutFailureSyncsAnyway: when an appender with a complete
// record finds the log poisoned by another's short write and cannot truncate
// the garbage, it must fsync and acknowledge anyway — its record is intact
// below writtenBytes, and boot replay's CRC check cuts the trailing garbage.
// Returning an error instead would falsely fail an append whose record a
// later group commit then makes durable and replayable.
func TestWALGarbageCutFailureSyncsAnyway(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	if err := w.appendRecord(context.Background(), "a", testFP(1)); err != nil {
		t.Fatal(err)
	}

	// Appender A has written its record but not yet reached the group
	// commit; then another appender's short write poisons the log.
	seqA, err := w.writeRecord(encodeWALRecord("stalled", testFP(2)))
	if err != nil {
		t.Fatal(err)
	}
	w.writeHook = func() error {
		_, _ = w.f.Write([]byte{0xde, 0xad})
		return errors.New("injected: device error")
	}
	if err := w.appendRecord(context.Background(), "garbage-maker", testFP(3)); err == nil {
		t.Fatal("append with failing write succeeded")
	}
	w.writeHook = nil

	// A's garbage cut fails, but its record must still be acknowledged.
	w.truncHook = func() error { return errors.New("injected: truncate refused") }
	errA := w.awaitDurable(seqA)
	w.release(seqA)
	if errA != nil {
		t.Fatalf("appender with intact record failed on garbage-cut failure: %v", errA)
	}
	w.truncHook = nil

	// The next append cuts the garbage and lands cleanly.
	if err := w.appendRecord(context.Background(), "c", testFP(4)); err != nil {
		t.Fatal(err)
	}
	var ids []string
	records, _, torn, err := replayWAL(path, func(id string, fp ccd.Fingerprint) { ids = append(ids, id) })
	if err != nil || torn {
		t.Fatalf("replay: records=%d torn=%v err=%v", records, torn, err)
	}
	if records != 3 || ids[0] != "a" || ids[1] != "stalled" || ids[2] != "c" {
		t.Fatalf("replayed %v, want [a stalled c]", ids)
	}
}

// TestWALRollbackTruncateFailureBlocksNewAppends: when a failed group
// commit's rollback cannot truncate the condemned records away, their bytes
// are still in the O_APPEND file — so new records must not land behind them
// until a retried truncate succeeds, or a later fsync would make the
// refused records durable and replayable.
func TestWALRollbackTruncateFailureBlocksNewAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	if err := w.appendRecord(context.Background(), "a", testFP(1)); err != nil {
		t.Fatal(err)
	}

	w.syncHook = func() error { return errors.New("injected: disk full") }
	w.truncHook = func() error { return errors.New("injected: truncate refused") }
	if err := w.appendRecord(context.Background(), "doomed", testFP(2)); err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	w.syncHook = nil

	// While the rollback is pending, appends fail rather than landing after
	// the condemned bytes.
	if err := w.appendRecord(context.Background(), "blocked", testFP(3)); err == nil {
		t.Fatal("append landed behind un-truncated condemned records")
	}

	// Once the truncate works again, the retry cuts the condemned records
	// and the log carries on.
	w.truncHook = nil
	if err := w.appendRecord(context.Background(), "c", testFP(4)); err != nil {
		t.Fatal(err)
	}
	var ids []string
	records, _, torn, err := replayWAL(path, func(id string, fp ccd.Fingerprint) { ids = append(ids, id) })
	if err != nil || torn {
		t.Fatalf("replay: records=%d torn=%v err=%v", records, torn, err)
	}
	if records != 2 || ids[0] != "a" || ids[1] != "c" {
		t.Fatalf("replayed %v, want [a c]", ids)
	}
}

// TestWALWriteFailurePoisonsAndRecovers: a failed record write (short write
// leaving garbage in the file) must never truncate the log in place — an
// in-flight group commit could lose acknowledged records — but poison it,
// so the NEXT append cuts exactly the garbage beyond the last complete
// record and the log carries on with no torn tail.
func TestWALWriteFailurePoisonsAndRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	if err := w.appendRecord(context.Background(), "a", testFP(1)); err != nil {
		t.Fatal(err)
	}
	w.writeHook = func() error {
		_, _ = w.f.Write([]byte{0xde, 0xad}) // the short write's garbage
		return errors.New("injected: device error")
	}
	if err := w.appendRecord(context.Background(), "b", testFP(2)); err == nil {
		t.Fatal("append with failing write succeeded")
	}
	w.writeHook = nil
	if err := w.appendRecord(context.Background(), "c", testFP(3)); err != nil {
		t.Fatalf("append after write-failure recovery: %v", err)
	}
	var ids []string
	records, _, torn, err := replayWAL(path, func(id string, fp ccd.Fingerprint) { ids = append(ids, id) })
	if err != nil || torn {
		t.Fatalf("replay: records=%d torn=%v err=%v", records, torn, err)
	}
	if records != 2 || ids[0] != "a" || ids[1] != "c" {
		t.Fatalf("replayed %v, want [a c]", ids)
	}
}

// TestStoreReplaySupersededRecords: with duplicate-id supersede, only the
// final WAL record per id replays — and a crash in the snapshot-rename /
// WAL-truncate window must not roll an id back to a stale fingerprint.
func TestStoreReplaySupersededRecords(t *testing.T) {
	dir := t.TempDir()
	c := NewCorpus(ccd.DefaultConfig, 2)
	store, err := OpenStore(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	old, final := testFP(1), testFP(2)
	if err := c.Add("doc", old); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("doc", final); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len %d after re-ingest, want 1", c.Len())
	}
	// Crash-window simulation: snapshot to a buffer and install it as
	// corpus.snap WITHOUT truncating the WAL — exactly the state a crash
	// between the rename and the truncate leaves behind.
	var snap bytes.Buffer
	if err := c.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, SnapshotFile), snap.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := NewCorpus(ccd.DefaultConfig, 2)
	s2, err := OpenStore(dir, c2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	info := s2.Info()
	if info.ReplaySuperseded != 1 || info.ReplaySkippedDuplicates != 1 || info.ReplayedRecords != 0 {
		t.Fatalf("replay accounting %+v, want 1 superseded, 1 dupe, 0 applied", info)
	}
	if c2.Len() != 1 {
		t.Fatalf("rebooted Len %d, want 1", c2.Len())
	}
	if got := c2.entryMultiset()["doc\x00"+string(final)]; got != 1 {
		t.Fatalf("final fingerprint indexed %d times, want 1 (stale record won replay)", got)
	}
	_ = store
}

// TestStoreWALReplayAfterCrash is the acceptance-criteria test: every
// acknowledged Add must survive a kill -9 (simulated by abandoning the store
// without Close or Snapshot — exactly the on-disk state a crash leaves).
func TestStoreWALReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	c1 := NewCorpus(ccd.DefaultConfig, 4)
	if _, err := OpenStore(dir, c1); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, c1, 37)
	// Crash: no Close, no Snapshot. Reopen from disk alone.

	c2 := NewCorpus(ccd.DefaultConfig, 4)
	s2, err := OpenStore(dir, c2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if info := s2.Info(); info.ReplayedRecords != 37 || info.RestoredEntries != 0 {
		t.Fatalf("boot info %+v, want 37 replayed / 0 restored", info)
	}
	verifyEntries(t, c2, 37)
}

// TestStoreSnapshotThenCrash: adds before a snapshot come back from the
// snapshot, adds after it from the WAL; nothing acknowledged is lost.
func TestStoreSnapshotThenCrash(t *testing.T) {
	dir := t.TempDir()
	c1 := NewCorpus(ccd.DefaultConfig, 4)
	s1, err := OpenStore(dir, c1)
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, c1, 20)
	info, err := s1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.Entries != 20 || info.Bytes == 0 {
		t.Fatalf("snapshot info %+v", info)
	}
	if n, _ := s1.wal.size(); n != 0 {
		t.Fatalf("WAL not truncated after snapshot: %d bytes", n)
	}
	for i := 20; i < 30; i++ {
		if err := c1.Add(fmt.Sprintf("doc-%d", i), testFP(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash.

	c2 := NewCorpus(ccd.DefaultConfig, 4)
	s2, err := OpenStore(dir, c2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if info := s2.Info(); info.RestoredEntries != 20 || info.ReplayedRecords != 10 {
		t.Fatalf("boot info %+v, want 20 restored / 10 replayed", info)
	}
	verifyEntries(t, c2, 30)
}

// TestStoreTornWALTail: a crash mid-append leaves a truncated final record;
// replay must keep every complete record, cut the tail, and keep appending.
func TestStoreTornWALTail(t *testing.T) {
	dir := t.TempDir()
	c1 := NewCorpus(ccd.DefaultConfig, 2)
	if _, err := OpenStore(dir, c1); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, c1, 5)

	walPath := filepath.Join(dir, WALFile)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: drop its final 3 bytes.
	if err := os.WriteFile(walPath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := NewCorpus(ccd.DefaultConfig, 2)
	s2, err := OpenStore(dir, c2)
	if err != nil {
		t.Fatal(err)
	}
	info := s2.Info()
	if info.ReplayedRecords != 4 || !info.TornTailCut {
		t.Fatalf("boot info %+v, want 4 replayed with torn tail cut", info)
	}
	verifyEntries(t, c2, 4)
	// New appends after the cut must land on a clean boundary.
	if err := c2.Add("post-tear", testFP(99)); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	c3 := NewCorpus(ccd.DefaultConfig, 2)
	s3, err := OpenStore(dir, c3)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.Info().ReplayedRecords; got != 5 {
		t.Fatalf("replayed %d records after re-append, want 5", got)
	}
	if c3.Len() != 5 {
		t.Fatalf("corpus has %d entries, want 5", c3.Len())
	}
}

// TestStoreCorruptWALRecord: a bit flip inside an earlier record stops
// replay at the corruption point rather than indexing garbage.
func TestStoreCorruptWALRecord(t *testing.T) {
	dir := t.TempDir()
	c1 := NewCorpus(ccd.DefaultConfig, 2)
	if _, err := OpenStore(dir, c1); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, c1, 6)

	walPath := filepath.Join(dir, WALFile)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := NewCorpus(ccd.DefaultConfig, 2)
	s2, err := OpenStore(dir, c2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	info := s2.Info()
	if !info.TornTailCut || info.ReplayedRecords >= 6 {
		t.Fatalf("boot info %+v, want torn cut with < 6 records", info)
	}
	if c2.Len() != info.ReplayedRecords {
		t.Fatalf("corpus %d entries != %d replayed", c2.Len(), info.ReplayedRecords)
	}
}

// TestStoreConcurrentAddsAndSnapshot hammers Add from many goroutines while
// snapshots fire; afterwards a fresh boot must see every acknowledged add
// exactly once.
func TestStoreConcurrentAddsAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	c1 := NewCorpus(ccd.DefaultConfig, 8)
	s1, err := OpenStore(dir, c1)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 30
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				if err := c1.Add(id, testFP(w*1000+i)); err != nil {
					t.Errorf("add %s: %v", id, err)
				}
			}
		}(w)
	}
	snapErrs := make(chan error, 4)
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s1.Snapshot()
			snapErrs <- err
		}()
	}
	wg.Wait()
	close(snapErrs)
	for err := range snapErrs {
		if err != nil {
			t.Fatalf("snapshot: %v", err)
		}
	}
	// Crash without a final snapshot.

	c2 := NewCorpus(ccd.DefaultConfig, 8)
	s2, err := OpenStore(dir, c2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if c2.Len() != writers*perWriter {
		t.Fatalf("recovered %d entries, want %d", c2.Len(), writers*perWriter)
	}
}

// TestStoreCrashBetweenSnapshotAndWALTruncate: a crash can land after the
// snapshot rename but before the WAL truncate, leaving a snapshot and a WAL
// that both hold the same records. Recovery must not index them twice.
func TestStoreCrashBetweenSnapshotAndWALTruncate(t *testing.T) {
	dir := t.TempDir()
	c1 := NewCorpus(ccd.DefaultConfig, 4)
	s1, err := OpenStore(dir, c1)
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, c1, 15)
	walPath := filepath.Join(dir, WALFile)
	preSnapshotWAL, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: the snapshot landed but the WAL truncate
	// did not — restore the pre-snapshot WAL content.
	if err := os.WriteFile(walPath, preSnapshotWAL, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := NewCorpus(ccd.DefaultConfig, 4)
	s2, err := OpenStore(dir, c2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	info := s2.Info()
	if info.RestoredEntries != 15 || info.ReplayedRecords != 0 || info.ReplaySkippedDuplicates != 15 {
		t.Fatalf("boot info %+v, want 15 restored / 0 replayed / 15 skipped", info)
	}
	verifyEntries(t, c2, 15)
	// No entry may appear twice.
	for i := 0; i < 15; i++ {
		hits := 0
		for _, m := range c2.Match(testFP(i)) {
			if m.ID == fmt.Sprintf("doc-%d", i) {
				hits++
			}
		}
		if hits != 1 {
			t.Fatalf("doc-%d indexed %d times after crash-window recovery", i, hits)
		}
	}
}

// TestStoreRestoreAcrossShardCounts: a snapshot taken with one shard count
// restores into a corpus with another (entries re-distribute by id hash).
func TestStoreRestoreAcrossShardCounts(t *testing.T) {
	src := NewCorpus(ccd.DefaultConfig, 16)
	mustAdd(t, src, 50)
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst := NewCorpus(ccd.ConservativeConfig, 3) // different cfg AND shards
	if err := dst.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if dst.Config() != src.Config() {
		t.Fatalf("restored config %v, want %v (snapshot config wins)", dst.Config(), src.Config())
	}
	verifyEntries(t, dst, 50)
}

func TestReadSnapshotRejectsNonEmptyAndGarbage(t *testing.T) {
	c := NewCorpus(ccd.DefaultConfig, 2)
	mustAdd(t, c, 1)
	if err := c.ReadSnapshot(bytes.NewReader(nil)); err == nil {
		t.Error("restore into non-empty corpus accepted")
	}
	empty := NewCorpus(ccd.DefaultConfig, 2)
	if err := empty.ReadSnapshot(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage snapshot accepted")
	}
	var buf bytes.Buffer
	if err := NewCorpus(ccd.DefaultConfig, 2).WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, len(full) / 2, len(full) - 1} {
		if err := NewCorpus(ccd.DefaultConfig, 2).ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated envelope at %d accepted", cut)
		}
	}
}

// TestEngineWithStore: the engine's ingest path journals through an attached
// store and a rebooted engine serves the same corpus.
func TestEngineWithStore(t *testing.T) {
	dir := t.TempDir()
	e1 := New(Options{Workers: 4})
	if _, err := OpenStore(dir, e1.Corpus()); err != nil {
		t.Fatal(err)
	}
	if err := e1.CorpusAdd("reentrant", reentrantSrc); err != nil {
		t.Fatal(err)
	}
	if err := e1.CorpusAddFingerprint("pre", testFP(1)); err != nil {
		t.Fatal(err)
	}
	// Crash.

	e2 := New(Options{Workers: 4})
	if _, err := OpenStore(dir, e2.Corpus()); err != nil {
		t.Fatal(err)
	}
	if e2.Corpus().Len() != 2 {
		t.Fatalf("recovered %d entries, want 2", e2.Corpus().Len())
	}
	ms, err := e2.Match(reentrantSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 || ms[0].ID != "reentrant" || ms[0].Score != 100 {
		t.Fatalf("recovered corpus match: %v", ms)
	}
}

func TestOpenStoreRejectsNonEmptyCorpusAndDoubleAttach(t *testing.T) {
	dir := t.TempDir()
	c := NewCorpus(ccd.DefaultConfig, 2)
	mustAdd(t, c, 1)
	if _, err := OpenStore(dir, c); err == nil {
		t.Error("non-empty corpus accepted")
	}
	c2 := NewCorpus(ccd.DefaultConfig, 2)
	s, err := OpenStore(t.TempDir(), c2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := OpenStore(t.TempDir(), c2); err == nil {
		t.Error("double attach accepted")
	}
}

// TestWALPageEpochAndResume pins the stream-position contract: positions are
// only meaningful within one WAL generation. The epoch survives a store
// reopen (replicas resume cleanly across primary restarts), changes on every
// snapshot truncation, and a stale epoch answers ErrWALTruncated even when
// the position would fit inside the new log.
func TestWALPageEpochAndResume(t *testing.T) {
	dir := t.TempDir()
	c := NewCorpus(ccd.DefaultConfig, 2)
	store, err := OpenStore(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, c, 6)

	page, err := store.WALPage(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	epoch := page.Epoch
	if epoch <= 0 {
		t.Fatalf("WAL epoch %d, want > 0", epoch)
	}
	if len(page.Entries) != 6 || page.Next != 6 || page.More {
		t.Fatalf("full page: %d entries next %d more %v", len(page.Entries), page.Next, page.More)
	}
	for i, e := range page.Entries {
		if e.Seq != i {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
	}

	// max cuts the page and says so.
	page, err = store.WALPage(0, epoch, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 2 || page.Next != 2 || !page.More {
		t.Fatalf("cut page: %d entries next %d more %v", len(page.Entries), page.Next, page.More)
	}

	// Tail resume (the cached-offset fast path): new appends surface at the
	// old Next with consecutive positions.
	if err := c.Add("tail-1", testFP(101)); err != nil {
		t.Fatal(err)
	}
	page, err = store.WALPage(6, epoch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 1 || page.Entries[0].Seq != 6 || page.Entries[0].ID != "tail-1" {
		t.Fatalf("tail page: %+v", page.Entries)
	}

	// The epoch survives a reopen, so a replica's position stays valid
	// across a primary restart.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := NewCorpus(ccd.DefaultConfig, 2)
	store2, err := OpenStore(dir, c2)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if got := store2.WALEpoch(); got != epoch {
		t.Fatalf("epoch changed across reopen: %d -> %d", epoch, got)
	}
	page, err = store2.WALPage(7, epoch, 0)
	if err != nil || len(page.Entries) != 0 || page.Next != 7 {
		t.Fatalf("caught-up resume after reopen: %+v err %v", page, err)
	}

	// Snapshot truncates the log: the generation changes, and the old epoch
	// is refused at EVERY position — including one the new log covers.
	if _, err := store2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := c2.Add(fmt.Sprintf("gen2-%d", i), testFP(200+i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := store2.WALPage(3, epoch, 0); !errors.Is(err, ErrWALTruncated) {
		t.Fatalf("stale epoch at positionally-valid offset: err %v, want ErrWALTruncated", err)
	}
	page, err = store2.WALPage(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if page.Epoch == epoch || page.Epoch <= 0 {
		t.Fatalf("epoch after snapshot %d, want a new generation (old %d)", page.Epoch, epoch)
	}
	if len(page.Entries) != 9 || page.Entries[0].ID != "gen2-0" {
		t.Fatalf("new generation page: %d entries, first %+v", len(page.Entries), page.Entries[:min(1, len(page.Entries))])
	}

	// Epoch-less positional overrun still refuses.
	if _, err := store2.WALPage(10, 0, 0); !errors.Is(err, ErrWALTruncated) {
		t.Fatalf("past-end without epoch: err %v, want ErrWALTruncated", err)
	}
}
