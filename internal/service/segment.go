package service

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"repro/internal/index"
)

// This file is the zero-copy boot path: instead of streaming a snapshot
// through ReadSnapshot (which decodes every posting list to the heap), the
// snapshot file is memory-mapped and each backend segment opens directly over
// its framed byte range. For the ccd backend that makes restore a validation
// pass — posting lists are queried in place out of the page cache — so a
// million-document corpus boots in the time it takes to checksum the file,
// and cold pages are only faulted in when queries touch them.

// mappedOpener opens segments zero-copy over data owned by ref when the
// backend supports it (index.SegmentOpener), falling back to a heap decode.
func mappedOpener(ref any) segmentOpener {
	return func(seg index.Backend, data []byte) error {
		if so, ok := seg.(index.SegmentOpener); ok {
			return so.OpenSegment(data, ref)
		}
		return seg.Restore(bytes.NewReader(data))
	}
}

// snapCursor walks a snapshot envelope held fully in memory. take hands out
// 3-index subslices, so no downstream append can write into a read-only
// mapping.
type snapCursor struct {
	b   []byte
	err error
}

func (r *snapCursor) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, w := binary.Uvarint(r.b)
	if w <= 0 {
		r.err = fmt.Errorf("service: snapshot: read %s: bad uvarint", what)
		return 0
	}
	r.b = r.b[w:]
	return v
}

func (r *snapCursor) take(n uint64, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.err = fmt.Errorf("service: snapshot: read %s: need %d bytes, have %d", what, n, len(r.b))
		return nil
	}
	out := r.b[:n:n]
	r.b = r.b[n:]
	return out
}

func (r *snapCursor) float(what string) float64 {
	b := r.take(8, what)
	if r.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// parseSnapshotEnvelope splits a version-2 snapshot held in data into its
// backend name, configuration and per-shard framed segment byte ranges. The
// returned slices alias data. Version-1 envelopes and other formats return
// an error; the caller decides whether to fall back to the streaming reader.
func parseSnapshotEnvelope(data []byte) (backend string, cfg index.Config, perShard [][][]byte, err error) {
	if len(data) < len(corpusSnapshotMagic)+1 {
		return "", cfg, nil, fmt.Errorf("service: snapshot: %d bytes is too short", len(data))
	}
	if string(data[:len(corpusSnapshotMagic)]) != corpusSnapshotMagic {
		return "", cfg, nil, fmt.Errorf("service: snapshot: bad magic %q", data[:len(corpusSnapshotMagic)])
	}
	r := &snapCursor{b: data[len(corpusSnapshotMagic):]}
	version := r.uvarint("version")
	if r.err != nil {
		return "", cfg, nil, r.err
	}
	if version != CorpusSnapshotVersion {
		return "", cfg, nil, fmt.Errorf("service: snapshot: version %d has no zero-copy layout", version)
	}
	nameLen := r.uvarint("backend name length")
	if r.err == nil && nameLen > 256 {
		return "", cfg, nil, fmt.Errorf("service: snapshot: implausible backend name length %d", nameLen)
	}
	backend = string(r.take(nameLen, "backend name"))
	cfg.CCD.N = int(r.uvarint("config N"))
	cfg.CCD.Eta = r.float("config Eta")
	cfg.CCD.Epsilon = r.float("config Epsilon")
	cfg.Epsilon = r.float("backend Epsilon")
	shardCount := r.uvarint("shard count")
	if r.err != nil {
		return "", cfg, nil, r.err
	}
	if shardCount == 0 || shardCount > maxSnapshotShards {
		return "", cfg, nil, fmt.Errorf("service: snapshot: implausible shard count %d", shardCount)
	}
	perShard = make([][][]byte, shardCount)
	for i := range perShard {
		segCount := r.uvarint("segment count")
		if r.err == nil && segCount > 1<<16 {
			return "", cfg, nil, fmt.Errorf("service: snapshot: shard %d implausible segment count %d", i, segCount)
		}
		perShard[i] = make([][]byte, segCount)
		for j := range perShard[i] {
			size := r.uvarint("segment length")
			if r.err == nil && size > maxSegmentBytes {
				return "", cfg, nil, fmt.Errorf("service: snapshot: shard %d segment %d length %d exceeds limit", i, j, size)
			}
			perShard[i][j] = r.take(size, "segment")
		}
		if r.err != nil {
			return "", cfg, nil, r.err
		}
	}
	if len(r.b) != 0 {
		return "", cfg, nil, fmt.Errorf("service: snapshot: %d trailing bytes", len(r.b))
	}
	return backend, cfg, perShard, nil
}

// OpenSnapshotFile restores a snapshot file into this (empty) corpus through
// the zero-copy path: the file is memory-mapped (heap-read on platforms
// without mmap support) and version-2 segments open directly over the mapped
// bytes — for the ccd backend, restore then costs a validation pass instead
// of an index rebuild. Version-1 snapshots fall back to the streaming
// ReadSnapshot. The mapping stays referenced for as long as any segment
// reads from it.
func (c *Corpus) OpenSnapshotFile(path string) error {
	data, ref, err := mapFile(path)
	if err != nil {
		return err
	}
	backend, cfg, perShard, perr := parseSnapshotEnvelope(data)
	if perr != nil {
		// Not a v2 envelope (or corrupt): let the streaming reader decide —
		// it accepts version 1 and produces precise errors otherwise.
		return c.ReadSnapshot(bytes.NewReader(data))
	}
	if backend != c.backend {
		return fmt.Errorf("service: snapshot holds backend %q, corpus runs %q", backend, c.backend)
	}
	if c.Len() != 0 {
		return fmt.Errorf("service: restore into non-empty corpus (%d entries)", c.Len())
	}
	return c.installSnapshotWith(cfg, perShard, mappedOpener(ref))
}

// remapSnapshot atomically swaps the corpus's published generations for
// zero-copy segments opened over the just-written snapshot at path. The
// corpus content must equal the snapshot's (the caller quiesces ingest around
// Snapshot; Store.Snapshot calls this right after writing the file), which is
// verified per shard by size before any pointer swings. On any mismatch the
// corpus is left untouched.
func (c *Corpus) remapSnapshot(path string) error {
	data, ref, err := mapFile(path)
	if err != nil {
		return err
	}
	backend, cfg, perShard, err := parseSnapshotEnvelope(data)
	if err != nil {
		return err
	}
	if backend != c.backend {
		return fmt.Errorf("service: remap: snapshot holds backend %q, corpus runs %q", backend, c.backend)
	}
	if cfg != c.cfg {
		return fmt.Errorf("service: remap: snapshot config %+v differs from corpus %+v", cfg, c.cfg)
	}
	if len(perShard) != len(c.shards) {
		return fmt.Errorf("service: remap: snapshot has %d shards, corpus %d", len(perShard), len(c.shards))
	}
	open := mappedOpener(ref)
	install := make([][]index.Backend, len(c.shards))
	for i := range perShard {
		segs := make([]index.Backend, 0, len(perShard[i]))
		for j := range perShard[i] {
			seg := c.newSegment()
			if err := open(seg, perShard[i][j]); err != nil {
				return fmt.Errorf("service: remap: shard %d segment %d: %w", i, j, err)
			}
			if seg.Len() > 0 {
				segs = append(segs, seg)
			}
		}
		slices.SortStableFunc(segs, func(a, b index.Backend) int { return b.Len() - a.Len() })
		install[i] = segs
	}
	// Verify every shard before swinging any pointer.
	for i, sh := range c.shards {
		size := 0
		for _, s := range install[i] {
			size += s.Len()
		}
		if got := sh.gen.Load().size; got != size {
			return fmt.Errorf("service: remap: shard %d holds %d docs, snapshot %d", i, got, size)
		}
	}
	for i, sh := range c.shards {
		size := 0
		for _, s := range install[i] {
			size += s.Len()
		}
		sh.pubMu.Lock()
		old := sh.gen.Load()
		sh.gen.Store(&generation{segments: install[i], size: size, seq: old.seq + 1})
		sh.pubMu.Unlock()
	}
	c.remaps.Add(1)
	return nil
}

// MappedSegments counts published segments currently reading zero-copy out
// of a mapped snapshot (diagnostics; surfaces in /metrics via store stats).
func (c *Corpus) MappedSegments() int {
	n := 0
	for _, sh := range c.shards {
		for _, seg := range sh.gen.Load().segments {
			if mr, ok := seg.(index.MappedReporter); ok && mr.MappedSegment() {
				n++
			}
		}
	}
	return n
}

// Remaps reports how many times the corpus swapped its generations onto a
// freshly written snapshot mapping.
func (c *Corpus) Remaps() int64 { return c.remaps.Load() }
