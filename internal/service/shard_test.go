package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ccd"
	"repro/internal/index"
)

// randomFingerprints builds a deterministic set of fingerprints with heavy
// duplication and near-duplication, so top-K ties (same score, different id)
// actually occur and the shard-merge tie-breaking is exercised.
func randomFingerprints(seed int64, n int) []ccd.Fingerprint {
	rng := rand.New(rand.NewSource(seed))
	alphabet := []byte("QxRtYuIoPAbCdEfGhZvNm")
	base := make([][]byte, 7)
	for i := range base {
		b := make([]byte, 12+rng.Intn(20))
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		base[i] = b
	}
	out := make([]ccd.Fingerprint, n)
	for i := range out {
		b := append([]byte(nil), base[rng.Intn(len(base))]...)
		for k := rng.Intn(3); k > 0; k-- { // up to 2 point mutations
			b[rng.Intn(len(b))] = alphabet[rng.Intn(len(alphabet))]
		}
		if rng.Intn(4) == 0 { // sometimes multi-function fingerprints
			b = append(b, '.')
			b = append(b, base[rng.Intn(len(base))]...)
		}
		out[i] = ccd.Fingerprint(b)
	}
	return out
}

// TestShardedMatchTopKEqualsSingleCorpusPrefix is the tentpole equivalence
// property: for every k, the sharded scatter-gather MatchTopK must return
// exactly the k-prefix of the single-corpus sorted Match result — same ids,
// same scores, same tie-breaking — regardless of shard count.
func TestShardedMatchTopKEqualsSingleCorpusPrefix(t *testing.T) {
	const docs = 160
	fps := randomFingerprints(11, docs)

	single := ccd.NewCorpus(ccd.DefaultConfig)
	sharded := map[int]*Corpus{}
	for _, shards := range []int{1, 3, 4, 7} {
		sharded[shards] = NewCorpus(ccd.DefaultConfig, shards)
	}
	for i, fp := range fps {
		id := fmt.Sprintf("doc-%03d", i)
		single.Add(id, fp)
		for _, c := range sharded {
			if err := c.Add(id, fp); err != nil {
				t.Fatal(err)
			}
		}
	}

	queries := randomFingerprints(23, 12)
	queries = append(queries, fps[0], fps[docs/2]) // exact-hit queries
	for qi, q := range queries {
		reference := single.Match(q)
		ccd.SortMatches(reference)
		for shards, c := range sharded {
			for k := 0; k <= len(reference)+2; k++ {
				got, _ := c.MatchTopK(q, k)
				want := reference
				if k > 0 && k < len(want) {
					want = want[:k]
				}
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("query %d, shards=%d, k=%d:\n got %v\nwant %v", qi, shards, k, got, want)
				}
			}
		}
	}
}

// TestShardedTopKTieAtBound is the adversarial tie-at-bound extension of the
// sharded≡single property: the corpus is built so that many documents score
// EXACTLY the same as the k-th place — the score the shared ccd.AtomicBound
// settles at — across different shards. Ties at the shared admission bound
// must survive to the merge (the bound is a strictly-below cutoff) and
// resolve by id there, so the k-th place id is pinned deterministic for
// every shard count and every k straddling a tie group.
func TestShardedTopKTieAtBound(t *testing.T) {
	base := ccd.Fingerprint("QxRtYuIoPAbCdEfGhZvNmQwErTy")
	near := ccd.Fingerprint("QxRtYuIoPAbCdEfGhZvNmQwErTz") // 1 edit: one shared sub-score tier
	far := ccd.Fingerprint("QxRtYuIoPAbCdEfGhZvNmQwEraa")  // 2 edits: a lower tier
	var entries []ccd.Entry
	// 12 exact duplicates (score 100), 8 one-edit copies (one identical
	// intermediate score), 6 two-edit copies: three plateaus of exact ties.
	// Ids interleave so every tie group spans every shard.
	for i := 0; i < 12; i++ {
		entries = append(entries, ccd.Entry{ID: fmt.Sprintf("dup-%02d", i), FP: base})
	}
	for i := 0; i < 8; i++ {
		entries = append(entries, ccd.Entry{ID: fmt.Sprintf("near-%02d", i), FP: near})
	}
	for i := 0; i < 6; i++ {
		entries = append(entries, ccd.Entry{ID: fmt.Sprintf("far-%02d", i), FP: far})
	}

	single := ccd.NewCorpus(ccd.DefaultConfig)
	for _, e := range entries {
		single.Add(e.ID, e.FP)
	}
	reference := single.Match(base)
	ccd.SortMatches(reference)
	if len(reference) < 20 {
		t.Fatalf("tie fixture too weak: only %d reference matches", len(reference))
	}
	// The fixture must actually produce score plateaus.
	plateau := map[float64]int{}
	for _, m := range reference {
		plateau[m.Score]++
	}
	if plateau[100] != 12 {
		t.Fatalf("want 12 exact ties at 100, got %d (scores %v)", plateau[100], plateau)
	}

	for _, shards := range []int{1, 2, 3, 5, 8} {
		c := NewCorpus(ccd.DefaultConfig, shards)
		for _, e := range entries {
			if err := c.Add(e.ID, e.FP); err != nil {
				t.Fatal(err)
			}
		}
		// Every k, including each k that lands INSIDE a tie plateau (k=5 cuts
		// the twelve 100s; k=15 cuts the near group): the merged result must
		// be the exact k-prefix of the reference, ids and all.
		for k := 0; k <= len(reference)+1; k++ {
			got, _ := c.MatchTopK(base, k)
			want := reference
			if k > 0 && k < len(want) {
				want = want[:k]
			}
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d k=%d:\n got %v\nwant %v", shards, k, got, want)
			}
		}
		// Determinism across repeated runs of the same racy scatter-gather:
		// the shared bound is raised concurrently, but the merged k-th place
		// must never wobble.
		for run := 0; run < 10; run++ {
			got, _ := c.MatchTopK(base, 5)
			if !reflect.DeepEqual(got, reference[:5]) {
				t.Fatalf("shards=%d run %d: tie-at-bound merge wobbled:\n got %v\nwant %v",
					shards, run, got, reference[:5])
			}
		}
	}
}

// TestShardedMatchAcrossBackends runs the same prefix property on the ssdeep
// backend (whose scoring has no n-gram pre-filter): k-truncation must be a
// prefix of the unbounded result for any shard count.
func TestShardedMatchAcrossBackends(t *testing.T) {
	fps := randomFingerprints(31, 60)
	one, err := NewBackendCorpus(index.BackendSSDeep, index.Config{Epsilon: 20}, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := NewBackendCorpus(index.BackendSSDeep, index.Config{Epsilon: 20}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, fp := range fps {
		id := fmt.Sprintf("doc-%03d", i)
		for _, c := range []*Corpus{one, many} {
			if err := c.AddDoc(index.Doc{ID: id, FP: fp}); err != nil {
				t.Fatal(err)
			}
		}
	}
	q := index.Doc{FP: fps[7]}
	ref, _, err := one.MatchDocTopK(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("ssdeep reference query matched nothing")
	}
	for k := 0; k <= len(ref)+1; k++ {
		got, _, err := many.MatchDocTopK(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		want := ref
		if k > 0 && k < len(want) {
			want = want[:k]
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d:\n got %v\nwant %v", k, got, want)
		}
	}
}

// TestDuplicateAddSupersedes is the duplicate-ingest regression: re-adding
// an existing id must replace the earlier copy — across generation-segments,
// in Len, the ingest stats and match results — never double-count it.
func TestDuplicateAddSupersedes(t *testing.T) {
	fp1 := ccd.Fingerprint("QxRtYuIoPAbCdEfGhZvNm")
	fp2 := ccd.Fingerprint("ZZZZYuIoPAbCdEfGhXXXX")
	for _, shards := range []int{1, 4} {
		c := NewCorpus(ccd.DefaultConfig, shards)
		if err := c.Add("dup", fp1); err != nil {
			t.Fatal(err)
		}
		// Bury the first copy under later segments so the supersede has to
		// reach across generation-segments, not just the newest one.
		for i := 0; i < 20; i++ {
			if err := c.Add(fmt.Sprintf("filler-%02d", i), testFP(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Add("dup", fp2); err != nil {
			t.Fatal(err)
		}

		if got := c.Len(); got != 21 {
			t.Fatalf("shards=%d: Len %d after duplicate add, want 21", shards, got)
		}
		if got := c.Supersedes(); got != 1 {
			t.Fatalf("shards=%d: supersedes %d, want 1", shards, got)
		}
		if got := c.entryMultiset()["dup\x00"+string(fp1)]; got != 0 {
			t.Fatalf("shards=%d: stale fingerprint still indexed %d times", shards, got)
		}
		if got := c.entryMultiset()["dup\x00"+string(fp2)]; got != 1 {
			t.Fatalf("shards=%d: new fingerprint indexed %d times, want 1", shards, got)
		}
		// The old fingerprint no longer matches at 100; the new one matches
		// exactly once.
		for _, m := range c.Match(fp1) {
			if m.ID == "dup" && m.Score == 100 {
				t.Fatalf("shards=%d: superseded copy still matches at 100", shards)
			}
		}
		hits := 0
		for _, m := range c.Match(fp2) {
			if m.ID == "dup" {
				hits++
				if m.Score != 100 {
					t.Fatalf("shards=%d: superseding copy scores %v", shards, m.Score)
				}
			}
		}
		if hits != 1 {
			t.Fatalf("shards=%d: new copy matched %d times, want exactly 1", shards, hits)
		}

		// Same-batch duplicates collapse too (last write wins).
		c2 := NewCorpus(ccd.DefaultConfig, shards)
		c2.addLocalBatch([]ccd.Entry{{ID: "x", FP: fp1}, {ID: "x", FP: fp2}, {ID: "y", FP: fp1}})
		if c2.Len() != 2 {
			t.Fatalf("shards=%d: batch dup Len %d, want 2", shards, c2.Len())
		}
		if got := c2.entryMultiset()["x\x00"+string(fp2)]; got != 1 {
			t.Fatalf("shards=%d: batch dup kept wrong version (%d)", shards, got)
		}
	}

	// Supersede must survive a snapshot restore: the live-id set is rebuilt
	// from the restored segments, so a post-restore re-ingest still replaces.
	src := NewCorpus(ccd.DefaultConfig, 2)
	if err := src.Add("dup", fp1); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, src, 8)
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewCorpus(ccd.DefaultConfig, 2)
	if err := dst.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := dst.Add("dup", fp2); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 9 {
		t.Fatalf("post-restore Len %d, want 9", dst.Len())
	}
	if got := dst.entryMultiset()["dup\x00"+string(fp1)]; got != 0 {
		t.Fatal("post-restore re-ingest did not supersede the restored copy")
	}

	// The ssdeep backend rebuilds through the same EntryRemover path.
	ssd, err := NewBackendCorpus(index.BackendSSDeep, index.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := ssd.AddDoc(index.Doc{ID: fmt.Sprintf("s-%d", i), FP: testFP(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ssd.AddDoc(index.Doc{ID: "s-3", FP: testFP(3)}); err != nil {
		t.Fatal(err)
	}
	if ssd.Len() != 6 {
		t.Fatalf("ssdeep Len %d after duplicate add, want 6", ssd.Len())
	}
	ms, _, err := ssd.MatchDocTopK(context.Background(), index.Doc{FP: testFP(3)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, m := range ms {
		if m.ID == "s-3" {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("ssdeep duplicate id matched %d times, want 1", seen)
	}
}

// TestBatchDuplicateKeepsLastAcceptedCopy: when one publish batch holds two
// copies of an id and the backend refuses the later one (smartembed cannot
// index a fingerprint-only doc), the earlier indexable copy must win — the
// same outcome sequential ingest of the two Adds produces — instead of the
// blind last-write-wins dedup dropping the indexable copy and losing the id.
func TestBatchDuplicateKeepsLastAcceptedCopy(t *testing.T) {
	se, err := NewBackendCorpus(index.BackendSmartEmbed, index.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	se.addDocsLocal([]index.Doc{
		{ID: "x", Source: reentrantSrc},
		{ID: "x", FP: testFP(1)}, // refused: smartembed needs source
		{ID: "y", Source: reentrantSrc},
	})
	if se.Len() != 2 {
		t.Fatalf("Len %d, want 2 (indexable copy of x dropped)", se.Len())
	}
	if se.Skips() != 1 || se.Supersedes() != 0 {
		t.Fatalf("skips=%d supersedes=%d, want 1/0 (refused copy is a skip, not a supersede)", se.Skips(), se.Supersedes())
	}
	ms, _, err := se.MatchDocTopK(context.Background(), index.Doc{Source: reentrantSrc}, 0)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, m := range ms {
		if m.ID == "x" {
			hits++
		}
	}
	if hits != 1 {
		t.Fatalf("x matched %d times, want 1", hits)
	}

	// When the later copy IS indexable, last write still wins in one batch.
	c := NewCorpus(ccd.DefaultConfig, 1)
	fp1, fp2 := testFP(1), testFP(2)
	c.addDocsLocal([]index.Doc{{ID: "x", FP: fp1}, {ID: "x", FP: fp2}})
	if c.Len() != 1 || c.Supersedes() != 1 {
		t.Fatalf("len=%d supersedes=%d, want 1/1", c.Len(), c.Supersedes())
	}
	if got := c.entryMultiset()["x\x00"+string(fp2)]; got != 1 {
		t.Fatalf("last indexable copy kept %d times, want 1", got)
	}
}

// writeLegacySnapshot encodes entries in the pre-shard (version 1) envelope:
// a flat framed list of ccd corpus snapshots, all under one config.
func writeLegacySnapshot(t *testing.T, cfg ccd.Config, segments [][]ccd.Entry) []byte {
	t.Helper()
	cfgs := make([]ccd.Config, len(segments))
	for i := range cfgs {
		cfgs[i] = cfg
	}
	return writeLegacySnapshotConfigs(t, cfgs, segments)
}

// writeLegacySnapshotConfigs is writeLegacySnapshot with one config per
// segment, so tests can forge the mixed-config envelopes a correct writer
// never produces.
func writeLegacySnapshotConfigs(t *testing.T, cfgs []ccd.Config, segments [][]ccd.Entry) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		bw.Write(scratch[:n])
	}
	bw.WriteString(corpusSnapshotMagic)
	writeUvarint(1) // legacy version
	writeUvarint(uint64(len(segments)))
	for i, seg := range segments {
		c := ccd.NewCorpus(cfgs[i])
		for _, e := range seg {
			c.Add(e.ID, e.FP)
		}
		var segBuf bytes.Buffer
		if err := c.Save(&segBuf); err != nil {
			t.Fatal(err)
		}
		writeUvarint(uint64(segBuf.Len()))
		bw.Write(segBuf.Bytes())
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLegacySnapshotRestores: pre-shard (version 1) snapshots still restore
// into the sharded corpus — byte-identically when the corpus has one shard
// (segments install as-is), re-partitioned by id hash otherwise — with the
// snapshot's matcher configuration adopted in both cases.
func TestLegacySnapshotRestores(t *testing.T) {
	cfg := ccd.ConservativeConfig
	segments := [][]ccd.Entry{nil, nil, nil}
	want := map[string]int{}
	for i := 0; i < 45; i++ {
		e := ccd.Entry{ID: fmt.Sprintf("doc-%d", i), FP: testFP(i)}
		segments[i%3] = append(segments[i%3], e)
		want[e.ID+"\x00"+string(e.FP)]++
	}
	raw := writeLegacySnapshot(t, cfg, segments)

	for _, shards := range []int{1, 4} {
		c := NewCorpus(ccd.DefaultConfig, shards)
		if err := c.ReadSnapshot(bytes.NewReader(raw)); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if c.Config() != cfg {
			t.Fatalf("shards=%d: config %v, want %v", shards, c.Config(), cfg)
		}
		if c.Len() != 45 {
			t.Fatalf("shards=%d: restored %d entries, want 45", shards, c.Len())
		}
		if got := c.entryMultiset(); !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: restored entry multiset differs", shards)
		}
		if shards == 1 {
			// Byte-identical install: the three legacy segments survive as-is.
			if got := c.Segments(); got != 3 {
				t.Fatalf("1-shard legacy restore rebuilt segments: %d, want 3", got)
			}
		}
	}

	// Mixed-config segments must be refused: every segment is matched with
	// one prepared query derived under a single config, so a snapshot whose
	// segments disagree would silently score wrong.
	mixed := writeLegacySnapshotConfigs(t,
		[]ccd.Config{{N: 3, Eta: 0.5, Epsilon: 70}, {N: 5, Eta: 0.5, Epsilon: 70}},
		segments[:2])
	if err := NewCorpus(ccd.DefaultConfig, 1).ReadSnapshot(bytes.NewReader(mixed)); err == nil {
		t.Fatal("mixed-config legacy snapshot accepted")
	}

	// A non-ccd corpus must refuse a legacy (implicitly ccd) snapshot.
	ssd, err := NewBackendCorpus(index.BackendSSDeep, index.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ssd.ReadSnapshot(bytes.NewReader(raw)); err == nil {
		t.Fatal("ssdeep corpus accepted a legacy ccd snapshot")
	}
}

// TestSnapshotRoundTripShardAware: the version-2 envelope round-trips across
// matching and mismatching shard counts and refuses a backend mismatch.
func TestSnapshotRoundTripShardAware(t *testing.T) {
	src := NewCorpus(ccd.DefaultConfig, 4)
	mustAdd(t, src, 64)
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	same := NewCorpus(ccd.ConservativeConfig, 4)
	if err := same.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if same.Config() != src.Config() {
		t.Fatalf("config %v, want %v", same.Config(), src.Config())
	}
	if !reflect.DeepEqual(same.entryMultiset(), src.entryMultiset()) {
		t.Fatal("matching-shard restore lost entries")
	}
	// Matching shard counts must preserve the exact per-shard layout.
	for i, st := range same.ShardStats() {
		if st.Size != src.ShardStats()[i].Size {
			t.Fatalf("shard %d size %d, want %d", i, st.Size, src.ShardStats()[i].Size)
		}
	}

	reshard := NewCorpus(ccd.DefaultConfig, 7)
	if err := reshard.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reshard.entryMultiset(), src.entryMultiset()) {
		t.Fatal("re-sharded restore lost entries")
	}
	verifyEntries(t, reshard, 64)

	// ssdeep round-trip through the same envelope.
	ssrc, err := NewBackendCorpus(index.BackendSSDeep, index.Config{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := ssrc.AddDoc(index.Doc{ID: fmt.Sprintf("s-%d", i), FP: testFP(i)}); err != nil {
			t.Fatal(err)
		}
	}
	buf.Reset()
	if err := ssrc.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	sdst, err := NewBackendCorpus(index.BackendSSDeep, index.Config{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := sdst.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if sdst.Len() != 20 {
		t.Fatalf("ssdeep restore: %d entries, want 20", sdst.Len())
	}
	if err := NewCorpus(ccd.DefaultConfig, 3).ReadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("ccd corpus accepted an ssdeep snapshot")
	}
}

// TestValidateSnapshotConfig: forged envelopes with out-of-domain matcher
// parameters must fail the restore instead of installing a corpus that
// panics on first use (negative N, NaN thresholds).
func TestValidateSnapshotConfig(t *testing.T) {
	ok := index.Config{CCD: ccd.DefaultConfig}
	if err := validateSnapshotConfig(ok); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	nan := math.NaN()
	bad := []index.Config{
		{CCD: ccd.Config{N: -3, Eta: 0.5, Epsilon: 70}},
		{CCD: ccd.Config{N: 1 << 20, Eta: 0.5, Epsilon: 70}},
		{CCD: ccd.Config{N: 3, Eta: nan, Epsilon: 70}},
		{CCD: ccd.Config{N: 3, Eta: 1.5, Epsilon: 70}},
		{CCD: ccd.Config{N: 3, Eta: 0.5, Epsilon: -1}},
		{CCD: ccd.Config{N: 3, Eta: 0.5, Epsilon: nan}},
		{CCD: ccd.DefaultConfig, Epsilon: 1000},
	}
	for i, cfg := range bad {
		if err := validateSnapshotConfig(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

// TestMatchCancellation: a cancelled context aborts the scatter-gather with
// ctx.Err() before (or during) the scan, both at the corpus and through the
// engine's pooled submit path.
func TestMatchCancellation(t *testing.T) {
	c := NewCorpus(ccd.DefaultConfig, 4)
	mustAdd(t, c, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.MatchDocTopK(ctx, index.Doc{FP: testFP(3)}, 5); err != context.Canceled {
		t.Fatalf("corpus match error %v, want context.Canceled", err)
	}
	if got := c.Funnel().CancelledReads; got != 1 {
		t.Fatalf("cancelled reads %d, want 1", got)
	}

	e := New(Options{Workers: 2, Shards: 4})
	if err := e.CorpusAdd("a", reentrantSrc); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.MatchSource(ctx, "", reentrantSrc, 5); err != context.Canceled {
		t.Fatalf("engine match error %v, want context.Canceled", err)
	}
	// Batch dispatch stops: with a pre-cancelled ctx no source runs.
	_, _, err := e.MatchBatchCtx(ctx, "", []string{reentrantSrc, benignSrc}, 0)
	if err != context.Canceled {
		t.Fatalf("batch error %v, want context.Canceled", err)
	}
	// DoCtx refuses to queue on a cancelled context.
	if err := e.DoCtx(ctx, func() { t.Error("task ran on cancelled ctx") }); err != context.Canceled {
		t.Fatalf("DoCtx error %v, want context.Canceled", err)
	}
}

// TestEngineBackendRouting covers CorpusFor and the multi-backend ingest
// fan-out: every loaded backend indexes source docs, SmartEmbed skips
// fingerprint-only docs, and routing errors are typed.
func TestEngineBackendRouting(t *testing.T) {
	e := New(Options{Workers: 2, Shards: 2, Backends: []string{index.BackendSSDeep, index.BackendSmartEmbed}})
	if got := e.Backends(); len(got) != 3 {
		t.Fatalf("backends %v, want 3", got)
	}
	if err := e.CorpusAdd("src-1", reentrantSrc); err != nil {
		t.Fatal(err)
	}
	if err := e.CorpusAddFingerprint("fp-1", testFP(1)); err != nil {
		t.Fatal(err)
	}
	ccdCorpus, _ := e.CorpusFor("")
	if ccdCorpus.Len() != 2 {
		t.Fatalf("ccd corpus %d entries, want 2", ccdCorpus.Len())
	}
	se, err := e.CorpusFor(index.BackendSmartEmbed)
	if err != nil {
		t.Fatal(err)
	}
	if se.Len() != 1 || se.Skips() != 1 {
		t.Fatalf("smartembed len=%d skips=%d, want 1/1", se.Len(), se.Skips())
	}
	ssd, err := e.CorpusFor(index.BackendSSDeep)
	if err != nil {
		t.Fatal(err)
	}
	if ssd.Len() != 2 {
		t.Fatalf("ssdeep corpus %d entries, want 2", ssd.Len())
	}

	// Matching on each backend end to end.
	for _, backend := range []string{"", index.BackendSSDeep, index.BackendSmartEmbed} {
		ms, _, err := e.MatchSource(context.Background(), backend, reentrantSrc, 1)
		if err != nil {
			t.Fatalf("match on %q: %v", backend, err)
		}
		if len(ms) != 1 || ms[0].ID != "src-1" {
			t.Fatalf("match on %q: %v, want src-1", backend, ms)
		}
	}

	if _, err := e.CorpusFor("bogus"); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("bogus backend error %v", err)
	}
	e2 := New(Options{Workers: 1})
	if _, err := e2.CorpusFor(index.BackendSSDeep); !errors.Is(err, ErrBackendNotLoaded) {
		t.Fatalf("not-loaded error %v", err)
	}

	m := e.Metrics()
	if len(m.Backends) != 3 || m.Backends[index.BackendCCD].Size != 2 {
		t.Fatalf("metrics backends %+v", m.Backends)
	}
	if m.CorpusShardCount != 2 || len(m.CorpusShards) != 2 {
		t.Fatalf("metrics shard view: count=%d shards=%d", m.CorpusShardCount, len(m.CorpusShards))
	}
}
