package service

import (
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/ccd"
)

// DefaultShards is the shard count of a concurrent corpus when Options does
// not override it.
const DefaultShards = 16

// Corpus is a sharded, RWMutex-guarded clone-detection corpus safe for
// concurrent use: ingest fans out across shards (writers on different shards
// never contend) and matching takes only read locks, so lookups proceed in
// parallel with each other and with ingest on other shards. It wraps
// ccd.Corpus, which itself is not safe for concurrent use.
type Corpus struct {
	cfg    ccd.Config
	shards []corpusShard
}

type corpusShard struct {
	mu sync.RWMutex
	c  *ccd.Corpus
}

// NewCorpus returns an empty concurrent corpus with the given shard count
// (≤ 0 selects DefaultShards). Zero-value cfg selects ccd.DefaultConfig.
func NewCorpus(cfg ccd.Config, shards int) *Corpus {
	if shards <= 0 {
		shards = DefaultShards
	}
	c := &Corpus{cfg: cfg, shards: make([]corpusShard, shards)}
	for i := range c.shards {
		c.shards[i].c = ccd.NewCorpus(cfg)
	}
	c.cfg = c.shards[0].c.Config() // after default substitution
	return c
}

// Config returns the corpus configuration.
func (c *Corpus) Config() ccd.Config { return c.cfg }

func (c *Corpus) shard(id string) *corpusShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Add indexes a fingerprint under an id. Safe for concurrent use.
func (c *Corpus) Add(id string, fp ccd.Fingerprint) {
	s := c.shard(id)
	s.mu.Lock()
	s.c.Add(id, fp)
	s.mu.Unlock()
}

// Len returns the total number of indexed entries.
func (c *Corpus) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += c.shards[i].c.Len()
		c.shards[i].mu.RUnlock()
	}
	return n
}

// Match queries every shard and merges the clone candidates. The result is
// sorted by descending score (ties by id) so output is deterministic
// regardless of ingest interleaving.
func (c *Corpus) Match(fp ccd.Fingerprint) []ccd.Match {
	var out []ccd.Match
	for i := range c.shards {
		c.shards[i].mu.RLock()
		out = append(out, c.shards[i].c.Match(fp)...)
		c.shards[i].mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}
