package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ccd"
	"repro/internal/index"
	"repro/internal/trace"
)

// Corpus is a sharded, backend-pluggable similarity corpus with lock-free
// reads. Documents are hash-partitioned by id across N independent
// generation-shards; each shard is the generational structure this package
// has always used — readers load one atomic pointer to an immutable
// generation of segments, writers group-commit deltas and compact
// logarithmically — so ingest on one shard never contends with ingest on
// another, and matching never takes a lock at all.
//
// Matching is scatter-gather: MatchTopK fans the query out to every shard in
// parallel, the shards share one atomic admission bound (a strong match found
// in any shard immediately tightens the pruning cutoff of all the others),
// and the per-shard top-K lists merge through one bounded heap. The whole
// fan-out is context-cancellable: a disconnected client stops the scan at
// the next segment boundary.
//
// Segments are index.Backend instances, so the same sharding, snapshotting
// and scatter-gather machinery serves the paper's ccd matcher, the ssdeep
// CTPH comparator and the SmartEmbed structural embedder alike. Only a
// ccd-backed corpus can attach a Store (the WAL journals exactly what that
// backend indexes).
type Corpus struct {
	backend string
	cfg     index.Config
	shards  []*shard

	publishes   atomic.Int64
	compactions atomic.Int64
	remaps      atomic.Int64

	// Ingest accounting: adds that were indexed, skips the backend refused
	// (index.ErrDocUnsupported — e.g. fingerprint-only docs offered to
	// SmartEmbed), supersedes earlier copies replaced by a re-ingested id.
	adds       atomic.Int64
	skips      atomic.Int64
	supersedes atomic.Int64

	// Read-path funnel across all shards (per-backend metrics).
	matches        atomic.Int64
	candidates     atomic.Int64
	filterPruned   atomic.Int64
	scored         atomic.Int64
	cutoffSkipped  atomic.Int64
	cancelledReads atomic.Int64
	degradedReads  atomic.Int64

	// store, when non-nil, intercepts Add for write-ahead logging. Set once
	// during OpenStore, before the corpus serves traffic.
	store *Store
}

// shard is one independent generation chain plus its write delta.
type shard struct {
	// pendMu guards the write delta; held only to append one batch.
	pendMu   sync.Mutex
	pending  []index.Doc
	enqueued uint64 // docs ever enqueued

	// pubMu serializes publishing; held while a new generation is built.
	// The read path never touches it.
	pubMu     sync.Mutex
	published uint64 // docs ever published (≤ enqueued)

	// ids is the shard's live document-id set, maintained by publish and
	// snapshot restore under pubMu. A re-ingested id found here supersedes
	// its earlier copy: the stale segment is rebuilt without it, so
	// duplicate Adds replace instead of double-counting.
	ids map[string]struct{}

	gen atomic.Pointer[generation]

	// Per-shard read statistics. scanNs accumulates the wall time this
	// shard's scatter-gather leg spent scanning segments, so a hot or
	// oversized shard shows up as the fan-out's straggler in /metrics.
	matches    atomic.Int64
	candidates atomic.Int64
	scored     atomic.Int64
	scanNs     atomic.Int64
}

// generation is one immutable published state of a shard. Readers load it
// atomically and use it without synchronization; it is never mutated after
// the pointer swing.
type generation struct {
	segments []index.Backend // descending size, each immutable
	size     int             // total indexed docs across segments
	seq      uint64          // publish counter (diagnostics)
}

// NewCorpus returns an empty ccd-backed corpus with the given shard count
// (≤ 0 selects GOMAXPROCS). Zero-value cfg selects ccd.DefaultConfig.
func NewCorpus(cfg ccd.Config, shards int) *Corpus {
	c, err := NewBackendCorpus(index.BackendCCD, index.Config{CCD: cfg}, shards)
	if err != nil {
		panic(err) // the ccd backend is always registered
	}
	return c
}

// NewBackendCorpus returns an empty sharded corpus over the named similarity
// backend (see index.Names). shards ≤ 0 selects GOMAXPROCS.
func NewBackendCorpus(backend string, cfg index.Config, shards int) (*Corpus, error) {
	if !index.Known(backend) {
		return nil, fmt.Errorf("service: unknown backend %q (known: %v)", backend, index.Names())
	}
	if cfg.CCD.N == 0 {
		cfg.CCD = ccd.DefaultConfig
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	c := &Corpus{backend: backend, cfg: cfg, shards: make([]*shard, shards)}
	for i := range c.shards {
		c.shards[i] = &shard{}
		c.shards[i].gen.Store(&generation{})
	}
	return c, nil
}

// newSegment builds an empty backend segment under the corpus configuration.
func (c *Corpus) newSegment() index.Backend {
	b, err := index.New(c.backend, c.cfg)
	if err != nil {
		panic(err) // name validated at construction
	}
	return b
}

// Backend returns the similarity backend name this corpus runs on.
func (c *Corpus) Backend() string { return c.backend }

// Config returns the corpus's ccd matcher configuration.
func (c *Corpus) Config() ccd.Config { return c.cfg.CCD }

// BackendConfig returns the full backend configuration.
func (c *Corpus) BackendConfig() index.Config { return c.cfg }

// Shards returns the shard count.
func (c *Corpus) Shards() int { return len(c.shards) }

// shardFor routes a document id to its home shard.
func (c *Corpus) shardFor(id string) *shard {
	return c.shards[c.shardIndex(id)]
}

// Add indexes a fingerprint under an id. Safe for concurrent use. With a
// Store attached the entry is journaled first; a non-nil error means the
// entry was NOT acknowledged and is neither durable nor visible.
func (c *Corpus) Add(id string, fp ccd.Fingerprint) error {
	return c.AddDoc(index.Doc{ID: id, FP: fp})
}

// AddDoc indexes one document. With a Store attached the (id, fingerprint)
// pair is journaled before the document becomes visible; the raw source is
// not journaled (the ccd backend — the only one a store attaches to — does
// not index it).
func (c *Corpus) AddDoc(doc index.Doc) error {
	return c.AddDocCtx(context.Background(), doc)
}

// AddDocCtx is AddDoc carrying a request context, so a traced ingest's WAL
// append and fsync wait land in the request's span tree. Cancellation is not
// observed: an add that reached the WAL is journaled and must publish.
func (c *Corpus) AddDocCtx(ctx context.Context, doc index.Doc) error {
	if c.store != nil {
		return c.store.add(ctx, doc.ID, doc.FP)
	}
	c.addDocsLocal([]index.Doc{doc})
	return nil
}

// addLocal inserts without journaling (direct ingest, WAL replay, snapshot
// restore). It returns once the entry is published and visible to readers.
func (c *Corpus) addLocal(id string, fp ccd.Fingerprint) {
	c.addDocsLocal([]index.Doc{{ID: id, FP: fp}})
}

// addLocalBatch enqueues fingerprint entries as per-shard deltas and
// publishes each shard through its group-commit path (WAL boot replay).
func (c *Corpus) addLocalBatch(entries []ccd.Entry) {
	docs := make([]index.Doc, len(entries))
	for i, e := range entries {
		docs[i] = index.Doc{ID: e.ID, FP: e.FP}
	}
	c.addDocsLocal(docs)
}

// addDocsLocal partitions docs to their home shards and publishes every
// touched shard, in parallel when the batch spans several. Empty batches are
// no-ops.
func (c *Corpus) addDocsLocal(docs []index.Doc) {
	if len(docs) == 0 {
		return
	}
	if len(docs) == 1 {
		sh := c.shardFor(docs[0].ID)
		c.publish(sh, sh.enqueue(docs))
		return
	}
	parts := make(map[*shard][]index.Doc, len(c.shards))
	for _, d := range docs {
		sh := c.shardFor(d.ID)
		parts[sh] = append(parts[sh], d)
	}
	var wg sync.WaitGroup
	for sh, part := range parts {
		wg.Add(1)
		go func(sh *shard, part []index.Doc) {
			defer wg.Done()
			c.publish(sh, sh.enqueue(part))
		}(sh, part)
	}
	wg.Wait()
}

// enqueue appends docs to the shard's write delta and returns the enqueue
// watermark the caller must see published.
func (sh *shard) enqueue(docs []index.Doc) uint64 {
	sh.pendMu.Lock()
	defer sh.pendMu.Unlock()
	sh.pending = append(sh.pending, docs...)
	sh.enqueued += uint64(len(docs))
	return sh.enqueued
}

// publish makes every doc enqueued on sh at or before upTo visible.
// Whichever writer wins the shard's publish lock drains the whole delta —
// writers arriving while a publish is in flight usually find their docs
// already covered (group commit). A batch doc whose id is already live in
// the shard supersedes the earlier copy: the stale segments are rebuilt
// without it, so Len, the ingest stats and match results never see the same
// id twice.
func (c *Corpus) publish(sh *shard, upTo uint64) {
	sh.pubMu.Lock()
	defer sh.pubMu.Unlock()
	if sh.published >= upTo {
		return // a concurrent writer's publish covered us
	}
	sh.pendMu.Lock()
	batch := sh.pending
	sh.pending = nil
	sh.pendMu.Unlock()
	drained := uint64(len(batch)) // the watermark advances by drained docs, deduped or not

	// For ids enqueued more than once in this batch, the LAST copy the
	// segment accepts wins — not blindly the last copy, which the backend
	// may refuse (e.g. an FP-only doc on smartembed) even when an earlier
	// copy was indexable. Sequential ingest of the same docs indexes the
	// earlier copy and skips the refused one; the batch path must agree, or
	// the id silently drops out of the corpus.
	var dupCopies map[string][]index.Doc
	if len(batch) > 1 {
		count := make(map[string]int, len(batch))
		for _, d := range batch {
			count[d.ID]++
		}
		if len(count) < len(batch) {
			dupCopies = make(map[string][]index.Doc)
			for _, d := range batch {
				if count[d.ID] > 1 {
					dupCopies[d.ID] = append(dupCopies[d.ID], d)
				}
			}
		}
	}

	seg := c.newSegment()
	indexed := 0
	stale := make(map[string]struct{})
	if sh.ids == nil {
		sh.ids = make(map[string]struct{})
	}
	addOne := func(d index.Doc) bool {
		if err := seg.Add(d); err != nil {
			c.skips.Add(1)
			return false
		}
		indexed++
		if _, dup := sh.ids[d.ID]; dup {
			stale[d.ID] = struct{}{}
		} else {
			sh.ids[d.ID] = struct{}{}
		}
		return true
	}
	for _, d := range batch {
		copies, dup := dupCopies[d.ID]
		if !dup {
			addOne(d)
			continue
		}
		if copies == nil {
			continue // already resolved at the id's first position
		}
		dupCopies[d.ID] = nil
		won := false
		for i := len(copies) - 1; i >= 0; i-- {
			if won {
				// Every copy before the winner collapses under it and counts
				// as a supersede — even one the backend would have refused,
				// since acceptability is only observable by indexing (which
				// is exactly what the collapse avoids). Content matches
				// sequential ingest; this counter corner intentionally
				// doesn't.
				c.supersedes.Add(1)
				continue
			}
			won = addOne(copies[i])
		}
	}
	c.adds.Add(int64(indexed))

	old := sh.gen.Load()
	live := old.segments
	removed := 0
	if len(stale) > 0 {
		// Rebuild every published segment holding a superseded copy. The
		// rebuilt segments are fresh values, so concurrent readers keep
		// scanning the old generation untouched.
		live = make([]index.Backend, 0, len(old.segments))
		for _, s := range old.segments {
			if rem, ok := s.(index.EntryRemover); ok {
				rebuilt, n := rem.WithoutIDs(stale)
				removed += n
				if rebuilt.Len() == 0 {
					continue
				}
				live = append(live, rebuilt)
				continue
			}
			live = append(live, s) // cannot rebuild: the old copy survives
		}
		c.supersedes.Add(int64(removed))
	}
	segs := slices.Clip(slices.Clone(live))
	if indexed > 0 {
		segs = append(segs, seg)
	}
	// Logarithmic compaction: merge the tail while the newest segment has
	// reached at least half its predecessor, keeping sizes strictly
	// geometric and the segment count O(log n). Mapped segments are a
	// compaction floor: merging one would rebuild it on the heap and drop
	// the zero-copy mapping, so deltas above a mapped segment only merge
	// among themselves — the next snapshot remap is what collapses the
	// whole shard back onto a single mapping.
	for len(segs) >= 2 && 2*segs[len(segs)-1].Len() >= segs[len(segs)-2].Len() {
		if mr, ok := segs[len(segs)-2].(index.MappedReporter); ok && mr.MappedSegment() {
			break
		}
		merged, err := segs[len(segs)-2].Merge(segs[len(segs)-1])
		if err != nil {
			break // same-kind merges cannot fail; keep segments unmerged
		}
		segs = append(segs[:len(segs)-2], merged)
		c.compactions.Add(1)
	}
	sh.gen.Store(&generation{
		segments: segs,
		size:     old.size + indexed - removed,
		seq:      old.seq + 1,
	})
	sh.published += drained
	c.publishes.Add(1)
}

// Len returns the number of indexed documents across all shards.
func (c *Corpus) Len() int {
	n := 0
	for _, sh := range c.shards {
		n += sh.gen.Load().size
	}
	return n
}

// Segments returns the total segment count across shards (diagnostics).
func (c *Corpus) Segments() int {
	n := 0
	for _, sh := range c.shards {
		n += len(sh.gen.Load().segments)
	}
	return n
}

// Generation returns the highest publish sequence number across shards.
func (c *Corpus) Generation() uint64 {
	var g uint64
	for _, sh := range c.shards {
		g = max(g, sh.gen.Load().seq)
	}
	return g
}

// Publishes reports generation publishes since boot.
func (c *Corpus) Publishes() int64 { return c.publishes.Load() }

// Compactions reports segment compactions since boot.
func (c *Corpus) Compactions() int64 { return c.compactions.Load() }

// Adds reports documents indexed since boot (duplicate Adds never
// double-count; see Supersedes).
func (c *Corpus) Adds() int64 { return c.adds.Load() }

// Skips reports documents refused by the backend
// (index.ErrDocUnsupported).
func (c *Corpus) Skips() int64 { return c.skips.Load() }

// Supersedes counts earlier copies replaced by a re-ingested id.
func (c *Corpus) Supersedes() int64 { return c.supersedes.Load() }

// Match returns every clone of fp at the backend's admission threshold, best
// first (score descending, ties by id). Lock-free.
func (c *Corpus) Match(fp ccd.Fingerprint) []ccd.Match {
	ms, _ := c.MatchTopK(fp, 0)
	return ms
}

// MatchTopK returns the k best clones of fp (k ≤ 0: all of them), best
// first, plus the pruning statistics of this query.
func (c *Corpus) MatchTopK(fp ccd.Fingerprint, k int) ([]ccd.Match, ccd.MatchStats) {
	ms, stats, _ := c.MatchDocTopK(context.Background(), index.Doc{FP: fp}, k)
	return ms, stats
}

// MatchDocTopK scatter-gathers doc's k best matches (k ≤ 0: all) across the
// shards: each shard scans its immutable generation in parallel, all shards
// share one atomic admission bound, and the per-shard top-K lists merge
// through one bounded heap. A cancelled ctx stops the scan at the next
// segment boundary and returns ctx.Err() with no matches.
func (c *Corpus) MatchDocTopK(ctx context.Context, doc index.Doc, k int) ([]ccd.Match, ccd.MatchStats, error) {
	return c.MatchDocTopKBound(ctx, doc, k, ccd.NewAtomicBound(0))
}

// MatchDocTopKBound is MatchDocTopK with a caller-seeded admission bound. A
// shard node serving a routed query seeds it with the bound shipped by the
// router, so the local scan prunes against evidence other partitions have
// already produced — exactly as a local generation-shard prunes against its
// siblings. The bound only ever rises; seeding 0 recovers MatchDocTopK.
func (c *Corpus) MatchDocTopKBound(ctx context.Context, doc index.Doc, k int, bound *ccd.AtomicBound) ([]ccd.Match, ccd.MatchStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if bound == nil {
		bound = ccd.NewAtomicBound(0)
	}
	q := &index.Query{Doc: doc, K: k, Ctx: ctx, Bound: bound, Eta: EtaOverrideOf(ctx)}
	if b, ok := BudgetOf(ctx); ok && !b.Deadline.IsZero() {
		// Phase split: the scan must yield early enough that merge and
		// response encoding still fit inside the request budget.
		q.ScanDeadline = b.ScanDeadline()
	}

	type shardResult struct {
		ms        []ccd.Match
		stats     ccd.MatchStats
		truncated bool
	}
	results := make([]shardResult, len(c.shards))
	scan := func(i int) {
		_, sp := trace.Start(ctx, "shard.scan")
		sp.AnnotateInt("shard", int64(i))
		start := time.Now()
		sh := c.shards[i]
		g := sh.gen.Load()
		res := &results[i]
		defer func() {
			sh.scanNs.Add(time.Since(start).Nanoseconds())
			sp.AnnotateInt("segments", int64(len(g.segments)))
			sp.AnnotateInt("candidates", int64(res.stats.Candidates))
			sp.AnnotateInt("scored", int64(res.stats.Scored))
			sp.AnnotateInt("filter_ns", res.stats.FilterNs)
			sp.AnnotateInt("score_ns", res.stats.ScoreNs)
			sp.End()
		}()
		for _, seg := range g.segments {
			if ctx.Err() != nil || q.Expired() {
				res.truncated = true
				return
			}
			ms, st := seg.MatchTopK(q)
			res.ms = append(res.ms, ms...)
			res.stats.Add(st)
		}
		sh.matches.Add(1)
		sh.candidates.Add(int64(res.stats.Candidates))
		sh.scored.Add(int64(res.stats.Scored))
	}
	if len(c.shards) == 1 {
		scan(0)
	} else {
		var wg sync.WaitGroup
		for i := range c.shards {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				scan(i)
			}(i)
		}
		wg.Wait()
	}

	_, merge := trace.Start(ctx, "match.merge")
	var stats ccd.MatchStats
	offered := 0
	truncated := false
	col := ccd.NewTopK(k, 0) // per-segment collectors already applied ε
	for i := range results {
		stats.Add(results[i].stats)
		truncated = truncated || results[i].truncated
		for _, m := range results[i].ms {
			col.Offer(m)
			offered++
		}
	}
	truncated = truncated || stats.Abandoned > 0
	merge.AnnotateInt("offered", int64(offered))
	merge.End()
	// Partial work (candidates, pruning) is real even when the query is
	// cancelled; only completed queries count as matches, mirroring the
	// per-shard counters (which the cancellation early-return also skips).
	c.candidates.Add(int64(stats.Candidates))
	c.filterPruned.Add(int64(stats.FilterPruned))
	c.scored.Add(int64(stats.Scored))
	c.cutoffSkipped.Add(int64(stats.CutoffSkipped))
	if err := ctx.Err(); err != nil {
		if DeadlineExpired(ctx) {
			// Time ran out but the client is still listening: hand back the
			// best-effort partial top-K instead of an empty error.
			c.degradedReads.Add(1)
			return col.Results(), stats, ErrBudgetExhausted
		}
		c.cancelledReads.Add(1)
		return nil, stats, err
	}
	if truncated {
		c.degradedReads.Add(1)
		return col.Results(), stats, ErrBudgetExhausted
	}
	c.matches.Add(1)
	return col.Results(), stats, nil
}

// entryMultiset returns the multiset of indexed (id, fingerprint) pairs,
// keyed id + NUL + fingerprint. Boot-time helper for idempotent WAL replay;
// only meaningful for backends exposing their entries (ccd).
func (c *Corpus) entryMultiset() map[string]int {
	out := make(map[string]int, c.Len())
	for _, sh := range c.shards {
		for _, seg := range sh.gen.Load().segments {
			lister, ok := seg.(index.EntryLister)
			if !ok {
				continue
			}
			for _, e := range lister.Entries() {
				out[e.ID+"\x00"+string(e.FP)]++
			}
		}
	}
	return out
}

// CorpusFunnel aggregates the corpus's read-path pruning counters.
type CorpusFunnel struct {
	Matches        int64 `json:"matches"`
	Candidates     int64 `json:"candidates"`
	FilterPruned   int64 `json:"filter_pruned"`
	Scored         int64 `json:"scored"`
	CutoffSkipped  int64 `json:"cutoff_skipped"`
	CancelledReads int64 `json:"cancelled_reads"`
	// DegradedReads counts scans whose budget expired mid-flight and that
	// returned a best-effort partial top-K instead of an error.
	DegradedReads int64 `json:"degraded_reads"`
}

// Funnel reports the corpus's cumulative match funnel.
func (c *Corpus) Funnel() CorpusFunnel {
	return CorpusFunnel{
		Matches:        c.matches.Load(),
		Candidates:     c.candidates.Load(),
		FilterPruned:   c.filterPruned.Load(),
		Scored:         c.scored.Load(),
		CutoffSkipped:  c.cutoffSkipped.Load(),
		CancelledReads: c.cancelledReads.Load(),
		DegradedReads:  c.degradedReads.Load(),
	}
}

// ShardSnapshot is a point-in-time view of one shard for /metrics. ScanUs
// is the cumulative wall time this shard's scatter-gather legs spent
// scanning — divergence across shards marks the fan-out's straggler.
type ShardSnapshot struct {
	Size       int    `json:"size"`
	Segments   int    `json:"segments"`
	Generation uint64 `json:"generation"`
	Matches    int64  `json:"matches"`
	Candidates int64  `json:"candidates"`
	Scored     int64  `json:"scored"`
	ScanUs     int64  `json:"scan_us"`
}

// ShardStats reports per-shard sizes and read activity.
func (c *Corpus) ShardStats() []ShardSnapshot {
	out := make([]ShardSnapshot, len(c.shards))
	for i, sh := range c.shards {
		g := sh.gen.Load()
		out[i] = ShardSnapshot{
			Size:       g.size,
			Segments:   len(g.segments),
			Generation: g.seq,
			Matches:    sh.matches.Load(),
			Candidates: sh.candidates.Load(),
			Scored:     sh.scored.Load(),
			ScanUs:     sh.scanNs.Load() / 1e3,
		}
	}
	return out
}

// --- whole-corpus snapshots ----------------------------------------------------

// Corpus snapshot envelope.
//
// Version 2 (shard-aware, backend-tagged):
//
//	magic   "SVCSNAP\x00"
//	uvarint version (2)
//	string  backend name (uvarint-length-prefixed)
//	uvarint N, float64 Eta, float64 Epsilon, float64 backend-Epsilon (Config)
//	uvarint shard count
//	per shard: uvarint segment count
//	           per segment: uvarint byte length, backend snapshot bytes
//
// Version 1 (legacy, pre-shard): a flat framed sequence of ccd.Corpus
// snapshots. Still loads — segments restore into the current shard layout
// (directly when one shard, re-partitioned by id hash otherwise).
//
// Integrity lives in the per-segment backend snapshots (each carries its own
// CRC-32); the envelope adds only framing. Segments are encoded and decoded
// in parallel.
const (
	corpusSnapshotMagic = "SVCSNAP\x00"
	// CorpusSnapshotVersion is the current snapshot envelope version.
	CorpusSnapshotVersion = 2
	// corpusSnapshotLegacy is the pre-shard envelope still accepted on read.
	corpusSnapshotLegacy = 1
)

// maxSegmentBytes bounds one encoded segment (defense against corrupt
// envelopes).
const maxSegmentBytes = 1 << 32 // 4 GiB

// maxSnapshotShards bounds the declared shard count on read.
const maxSnapshotShards = 1 << 12

// WriteSnapshot encodes every shard's published segments (in parallel — they
// are immutable, so no locks are needed) and writes the snapshot envelope.
// Entries added concurrently may or may not be included; each shard
// contributes one consistent published generation. Store.Snapshot provides
// the ingest-quiescent (and WAL-truncating) variant.
func (c *Corpus) WriteSnapshot(w io.Writer) error {
	type encSeg struct {
		data []byte
		err  error
	}
	perShard := make([][]index.Backend, len(c.shards))
	encoded := make([][]encSeg, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		perShard[i] = sh.gen.Load().segments
		encoded[i] = make([]encSeg, len(perShard[i]))
		for j := range perShard[i] {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				var buf bytes.Buffer
				encoded[i][j].err = perShard[i][j].Snapshot(&buf)
				encoded[i][j].data = buf.Bytes()
			}(i, j)
		}
	}
	wg.Wait()
	for i := range encoded {
		for j := range encoded[i] {
			if err := encoded[i][j].err; err != nil {
				return fmt.Errorf("service: snapshot shard %d segment %d: %w", i, j, err)
			}
		}
	}

	bw := bufio.NewWriter(w)
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	writeFloat := func(f float64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		_, err := bw.Write(buf[:])
		return err
	}
	if _, err := bw.WriteString(corpusSnapshotMagic); err != nil {
		return err
	}
	if err := writeUvarint(CorpusSnapshotVersion); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(c.backend))); err != nil {
		return err
	}
	if _, err := bw.WriteString(c.backend); err != nil {
		return err
	}
	if err := writeUvarint(uint64(c.cfg.CCD.N)); err != nil {
		return err
	}
	for _, f := range []float64{c.cfg.CCD.Eta, c.cfg.CCD.Epsilon, c.cfg.Epsilon} {
		if err := writeFloat(f); err != nil {
			return err
		}
	}
	if err := writeUvarint(uint64(len(encoded))); err != nil {
		return err
	}
	for _, shardSegs := range encoded {
		if err := writeUvarint(uint64(len(shardSegs))); err != nil {
			return err
		}
		for _, seg := range shardSegs {
			if err := writeUvarint(uint64(len(seg.data))); err != nil {
				return err
			}
			if _, err := bw.Write(seg.data); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadSnapshot restores a snapshot written by WriteSnapshot into this
// corpus, which must be empty and run the snapshot's backend. The snapshot's
// configuration replaces the corpus's own. When the shard counts match, the
// decoded segments install directly (byte-identical restore); otherwise the
// documents re-partition by id hash (or, for backends that cannot enumerate
// entries, segments spread round-robin). Pre-shard (version 1) snapshots
// restore the same way, as a one-shard layout.
func (c *Corpus) ReadSnapshot(r io.Reader) error {
	if c.Len() != 0 {
		return fmt.Errorf("service: restore into non-empty corpus (%d entries)", c.Len())
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(corpusSnapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("service: snapshot: read magic: %w", err)
	}
	if string(magic) != corpusSnapshotMagic {
		return fmt.Errorf("service: snapshot: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("service: snapshot: read version: %w", err)
	}
	switch version {
	case corpusSnapshotLegacy:
		return c.readLegacySnapshot(br)
	case CorpusSnapshotVersion:
		return c.readShardedSnapshot(br)
	}
	return fmt.Errorf("service: snapshot: unsupported version %d (want %d or %d)",
		version, corpusSnapshotLegacy, CorpusSnapshotVersion)
}

// readShardedSnapshot parses the version-2 body.
func (c *Corpus) readShardedSnapshot(br *bufio.Reader) error {
	readFloat := func() (float64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil || nameLen > 256 {
		return fmt.Errorf("service: snapshot: read backend name length: %w", orErr(err, "implausible"))
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return fmt.Errorf("service: snapshot: read backend name: %w", err)
	}
	if string(name) != c.backend {
		return fmt.Errorf("service: snapshot holds backend %q, corpus runs %q", name, c.backend)
	}
	var cfg index.Config
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("service: snapshot: read config: %w", err)
	}
	cfg.CCD.N = int(n)
	for _, dst := range []*float64{&cfg.CCD.Eta, &cfg.CCD.Epsilon, &cfg.Epsilon} {
		if *dst, err = readFloat(); err != nil {
			return fmt.Errorf("service: snapshot: read config: %w", err)
		}
	}
	shardCount, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("service: snapshot: read shard count: %w", err)
	}
	if shardCount == 0 || shardCount > maxSnapshotShards {
		return fmt.Errorf("service: snapshot: implausible shard count %d", shardCount)
	}
	perShard := make([][][]byte, shardCount)
	for i := range perShard {
		segCount, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("service: snapshot: shard %d segment count: %w", i, err)
		}
		if segCount > 1<<16 {
			return fmt.Errorf("service: snapshot: shard %d implausible segment count %d", i, segCount)
		}
		perShard[i] = make([][]byte, segCount)
		for j := range perShard[i] {
			size, err := binary.ReadUvarint(br)
			if err != nil {
				return fmt.Errorf("service: snapshot: shard %d segment %d length: %w", i, j, err)
			}
			if size > maxSegmentBytes {
				return fmt.Errorf("service: snapshot: shard %d segment %d length %d exceeds limit", i, j, size)
			}
			perShard[i][j] = make([]byte, size)
			if _, err := io.ReadFull(br, perShard[i][j]); err != nil {
				return fmt.Errorf("service: snapshot: shard %d segment %d: %w", i, j, err)
			}
		}
	}
	return c.installSnapshot(cfg, perShard)
}

// readLegacySnapshot parses the pre-shard (version 1) body: a flat ccd
// segment list, restored as a one-shard layout.
func (c *Corpus) readLegacySnapshot(br *bufio.Reader) error {
	if c.backend != index.BackendCCD {
		return fmt.Errorf("service: pre-shard snapshot holds backend %q, corpus runs %q", index.BackendCCD, c.backend)
	}
	segCount, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("service: snapshot: read segment count: %w", err)
	}
	if segCount == 0 || segCount > 1<<16 {
		return fmt.Errorf("service: snapshot: implausible segment count %d", segCount)
	}
	encoded := make([][]byte, segCount)
	for i := range encoded {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("service: snapshot: read segment %d length: %w", i, err)
		}
		if size > maxSegmentBytes {
			return fmt.Errorf("service: snapshot: segment %d length %d exceeds limit", i, size)
		}
		encoded[i] = make([]byte, size)
		if _, err := io.ReadFull(br, encoded[i]); err != nil {
			return fmt.Errorf("service: snapshot: read segment %d: %w", i, err)
		}
	}
	// Decode the first segment eagerly to learn the snapshot's config (the
	// legacy envelope does not carry one; even an empty placeholder segment
	// does). installSnapshot re-decodes all segments in parallel.
	probe, err := ccd.Load(bytes.NewReader(encoded[0]))
	if err != nil {
		return fmt.Errorf("service: snapshot: decode segment 0: %w", err)
	}
	return c.installSnapshot(index.Config{CCD: probe.Config()}, [][][]byte{encoded})
}

// segmentOpener materializes one backend segment from its snapshot bytes.
// heapOpener decodes to the heap; mappedOpener (segment.go) opens zero-copy
// over a memory mapping when the backend supports it.
type segmentOpener func(seg index.Backend, data []byte) error

// heapOpener is the default segment opener: a full streaming decode.
func heapOpener(seg index.Backend, data []byte) error {
	return seg.Restore(bytes.NewReader(data))
}

// installSnapshot decodes the framed segments (in parallel) under cfg and
// installs them: directly when the on-disk and in-memory shard counts match,
// re-partitioned otherwise.
func (c *Corpus) installSnapshot(cfg index.Config, perShard [][][]byte) error {
	return c.installSnapshotWith(cfg, perShard, heapOpener)
}

// installSnapshotWith is installSnapshot with an explicit segment opener.
func (c *Corpus) installSnapshotWith(cfg index.Config, perShard [][][]byte, open segmentOpener) error {
	if cfg.CCD.N == 0 {
		cfg.CCD = ccd.DefaultConfig
	}
	if err := validateSnapshotConfig(cfg); err != nil {
		return fmt.Errorf("service: snapshot: %w", err)
	}
	// The factory must build segments under the snapshot's config from here
	// on (Restore below double-checks by overwriting from decoded state).
	c.cfg = cfg

	decoded := make([][]index.Backend, len(perShard))
	errs := make([][]error, len(perShard))
	var wg sync.WaitGroup
	for i := range perShard {
		decoded[i] = make([]index.Backend, len(perShard[i]))
		errs[i] = make([]error, len(perShard[i]))
		for j := range perShard[i] {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				seg := c.newSegment()
				if err := open(seg, perShard[i][j]); err != nil {
					errs[i][j] = err
					return
				}
				decoded[i][j] = seg
			}(i, j)
		}
	}
	wg.Wait()
	for i := range errs {
		for j, err := range errs[i] {
			if err != nil {
				return fmt.Errorf("service: snapshot: decode shard %d segment %d: %w", i, j, err)
			}
		}
	}
	// Every segment must agree with the envelope's configuration (Restore
	// adopts the decoded state's config): a forged or mixed-config snapshot
	// would otherwise match with wrong parameters — the prepared query is
	// derived once per query under one config and reused for every segment.
	for i := range decoded {
		for j, seg := range decoded[i] {
			if got := seg.Config(); got != cfg {
				return fmt.Errorf("service: snapshot: shard %d segment %d config %+v differs from snapshot config %+v",
					i, j, got, cfg)
			}
		}
	}

	install := make([][]index.Backend, len(c.shards))
	switch {
	case len(perShard) == len(c.shards):
		// Fast path: the layout matches — segments install byte-identically.
		for i := range decoded {
			install[i] = dropEmpty(decoded[i])
		}
	default:
		flat := dropEmpty(slices.Concat(decoded...))
		if entries, ok := allEntries(flat); ok {
			// Re-partition documents by id hash, one rebuilt segment per
			// shard, restoring the write-balance invariant.
			parts := make([][]ccd.Entry, len(c.shards))
			for _, e := range entries {
				i := c.shardIndex(e.ID)
				parts[i] = append(parts[i], e)
			}
			var wg sync.WaitGroup
			rebuildErrs := make([]error, len(c.shards))
			for i := range c.shards {
				if len(parts[i]) == 0 {
					continue
				}
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					seg := c.newSegment()
					for _, e := range parts[i] {
						if err := seg.Add(index.Doc{ID: e.ID, FP: e.FP}); err != nil {
							rebuildErrs[i] = err
							return
						}
					}
					install[i] = []index.Backend{seg}
				}(i)
			}
			wg.Wait()
			for _, err := range rebuildErrs {
				if err != nil {
					return fmt.Errorf("service: snapshot: re-partition: %w", err)
				}
			}
		} else {
			// Backends that cannot enumerate entries: spread whole segments
			// round-robin (reads scan every shard, so placement is free).
			for i, seg := range flat {
				idx := i % len(c.shards)
				install[idx] = append(install[idx], seg)
			}
		}
	}

	for i, sh := range c.shards {
		segs := install[i]
		slices.SortStableFunc(segs, func(a, b index.Backend) int { return b.Len() - a.Len() })
		size := 0
		for _, s := range segs {
			size += s.Len()
		}
		ids := make(map[string]struct{}, size)
		for _, s := range segs {
			if lister, ok := s.(index.IDLister); ok {
				for _, id := range lister.IDs() {
					ids[id] = struct{}{}
				}
			}
		}
		sh.pubMu.Lock()
		sh.ids = ids
		sh.gen.Store(&generation{segments: segs, size: size, seq: 1})
		sh.pubMu.Unlock()
	}
	return nil
}

// shardIndex computes a document id's home shard (FNV-1a).
func (c *Corpus) shardIndex(id string) int {
	if len(c.shards) == 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(c.shards)))
}

// validateSnapshotConfig bounds a snapshot's matcher configuration to the
// parameter domain before any segment is installed. The envelope carries the
// config as raw ints/floats with no CRC of its own, and an implausible value
// must fail the restore here — a negative N or NaN threshold would otherwise
// take down the process on the first Add or Match.
func validateSnapshotConfig(cfg index.Config) error {
	if cfg.CCD.N < 1 || cfg.CCD.N > 1<<10 {
		return fmt.Errorf("implausible n-gram size %d", cfg.CCD.N)
	}
	inRange := func(v, lo, hi float64) bool {
		return !math.IsNaN(v) && v >= lo && v <= hi
	}
	if !inRange(cfg.CCD.Eta, 0, 1) {
		return fmt.Errorf("containment threshold %v outside [0,1]", cfg.CCD.Eta)
	}
	if !inRange(cfg.CCD.Epsilon, 0, 100) {
		return fmt.Errorf("similarity threshold %v outside [0,100]", cfg.CCD.Epsilon)
	}
	if !inRange(cfg.Epsilon, 0, 100) {
		return fmt.Errorf("backend threshold %v outside [0,100]", cfg.Epsilon)
	}
	return nil
}

// dropEmpty removes zero-length segments (empty-corpus placeholders).
func dropEmpty(segs []index.Backend) []index.Backend {
	out := segs[:0:len(segs)]
	for _, s := range segs {
		if s != nil && s.Len() > 0 {
			out = append(out, s)
		}
	}
	return out
}

// ShardEntries returns shard i's indexed entries sorted by id, or false
// when the shard's backend cannot enumerate them. It reads the shard's
// current immutable generation, so it is safe under concurrent ingest; the
// sorted order is what gives the paginated NDJSON export a stable cursor.
func (c *Corpus) ShardEntries(i int) ([]ccd.Entry, bool) {
	if i < 0 || i >= len(c.shards) {
		return nil, false
	}
	entries, ok := allEntries(c.shards[i].gen.Load().segments)
	if !ok {
		return nil, false
	}
	slices.SortFunc(entries, func(a, b ccd.Entry) int {
		if a.ID < b.ID {
			return -1
		}
		if a.ID > b.ID {
			return 1
		}
		return 0
	})
	return entries, true
}

// allEntries flattens the (id, fingerprint) pairs of every segment, or
// reports false when a segment cannot enumerate them.
func allEntries(segs []index.Backend) ([]ccd.Entry, bool) {
	var out []ccd.Entry
	for _, s := range segs {
		lister, ok := s.(index.EntryLister)
		if !ok {
			return nil, false
		}
		out = append(out, lister.Entries()...)
	}
	return out, true
}

// orErr returns err when non-nil, else an error built from fallback.
func orErr(err error, fallback string) error {
	if err != nil {
		return err
	}
	return errors.New(fallback)
}
