package service

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"

	"repro/internal/ccd"
)

// DefaultShards is the shard count of a concurrent corpus when Options does
// not override it.
const DefaultShards = 16

// Corpus is a sharded, RWMutex-guarded clone-detection corpus safe for
// concurrent use: ingest fans out across shards (writers on different shards
// never contend) and matching takes only read locks, so lookups proceed in
// parallel with each other and with ingest on other shards. It wraps
// ccd.Corpus, which itself is not safe for concurrent use.
//
// A Corpus is purely in-memory unless a Store is attached (OpenStore), in
// which case every Add is journaled to the write-ahead log before it becomes
// visible, and Snapshot/Restore persist the whole corpus atomically.
type Corpus struct {
	cfg    ccd.Config
	shards []corpusShard

	// store, when non-nil, intercepts Add for write-ahead logging. Set once
	// during OpenStore, before the corpus serves traffic.
	store *Store
}

type corpusShard struct {
	mu sync.RWMutex
	c  *ccd.Corpus
}

// NewCorpus returns an empty concurrent corpus with the given shard count
// (≤ 0 selects DefaultShards). Zero-value cfg selects ccd.DefaultConfig.
func NewCorpus(cfg ccd.Config, shards int) *Corpus {
	if shards <= 0 {
		shards = DefaultShards
	}
	c := &Corpus{cfg: cfg, shards: make([]corpusShard, shards)}
	for i := range c.shards {
		c.shards[i].c = ccd.NewCorpus(cfg)
	}
	c.cfg = c.shards[0].c.Config() // after default substitution
	return c
}

// Config returns the corpus configuration.
func (c *Corpus) Config() ccd.Config { return c.cfg }

func (c *Corpus) shard(id string) *corpusShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Add indexes a fingerprint under an id. Safe for concurrent use. With a
// Store attached the entry is journaled first; a non-nil error means the
// entry was NOT acknowledged and is neither durable nor visible.
func (c *Corpus) Add(id string, fp ccd.Fingerprint) error {
	if c.store != nil {
		return c.store.add(id, fp)
	}
	c.addLocal(id, fp)
	return nil
}

// addLocal inserts into the owning shard without journaling (direct ingest,
// WAL replay, snapshot restore re-distribution).
func (c *Corpus) addLocal(id string, fp ccd.Fingerprint) {
	s := c.shard(id)
	s.mu.Lock()
	s.c.Add(id, fp)
	s.mu.Unlock()
}

// Len returns the total number of indexed entries.
func (c *Corpus) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += c.shards[i].c.Len()
		c.shards[i].mu.RUnlock()
	}
	return n
}

// Match queries every shard and merges the clone candidates. The result is
// sorted by descending score (ties by id) so output is deterministic
// regardless of ingest interleaving.
func (c *Corpus) Match(fp ccd.Fingerprint) []ccd.Match {
	var out []ccd.Match
	for i := range c.shards {
		c.shards[i].mu.RLock()
		out = append(out, c.shards[i].c.Match(fp)...)
		c.shards[i].mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// entryMultiset returns the multiset of indexed (id, fingerprint) pairs,
// keyed id + NUL + fingerprint. Boot-time helper for idempotent WAL replay.
func (c *Corpus) entryMultiset() map[string]int {
	out := make(map[string]int, c.Len())
	for i := range c.shards {
		c.shards[i].mu.RLock()
		for _, e := range c.shards[i].c.Entries() {
			out[e.ID+"\x00"+string(e.FP)]++
		}
		c.shards[i].mu.RUnlock()
	}
	return out
}

// --- whole-corpus snapshots ----------------------------------------------------

// Corpus snapshot container (version 1): a thin sharded envelope around the
// ccd.Corpus binary snapshot format.
//
//	magic   "SVCSNAP\x00"
//	uvarint version
//	uvarint shard count
//	per shard: uvarint byte length, ccd snapshot bytes
//
// Integrity lives in the per-shard ccd snapshots (each carries its own
// CRC-32); the envelope adds only framing. Shards are encoded and decoded in
// parallel.
const (
	corpusSnapshotMagic = "SVCSNAP\x00"
	// CorpusSnapshotVersion is the sharded snapshot envelope version.
	CorpusSnapshotVersion = 1
)

// WriteSnapshot encodes every shard (in parallel, under shard read locks)
// and writes the sharded snapshot envelope. Without external
// synchronization, entries added concurrently may or may not be included —
// each shard is still internally consistent. Store.Snapshot provides the
// fully consistent (and WAL-truncating) variant.
func (c *Corpus) WriteSnapshot(w io.Writer) error {
	encoded := make([][]byte, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			s := &c.shards[i]
			s.mu.RLock()
			errs[i] = s.c.Save(&buf)
			s.mu.RUnlock()
			encoded[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("service: snapshot shard %d: %w", i, err)
		}
	}

	bw := bufio.NewWriter(w)
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if _, err := bw.WriteString(corpusSnapshotMagic); err != nil {
		return err
	}
	if err := writeUvarint(CorpusSnapshotVersion); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(encoded))); err != nil {
		return err
	}
	for _, shard := range encoded {
		if err := writeUvarint(uint64(len(shard))); err != nil {
			return err
		}
		if _, err := bw.Write(shard); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxShardBytes bounds one encoded shard (defense against corrupt envelopes).
const maxShardBytes = 1 << 32 // 4 GiB

// ReadSnapshot restores a snapshot written by WriteSnapshot into this
// corpus, which must be empty. The snapshot's matcher configuration replaces
// the corpus's own. When the stored shard count matches, decoded shards are
// installed directly (id→shard hashing depends only on the count); otherwise
// entries are re-distributed across the current shards.
func (c *Corpus) ReadSnapshot(r io.Reader) error {
	if c.Len() != 0 {
		return fmt.Errorf("service: restore into non-empty corpus (%d entries)", c.Len())
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(corpusSnapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("service: snapshot: read magic: %w", err)
	}
	if string(magic) != corpusSnapshotMagic {
		return fmt.Errorf("service: snapshot: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("service: snapshot: read version: %w", err)
	}
	if version != CorpusSnapshotVersion {
		return fmt.Errorf("service: snapshot: unsupported version %d (want %d)", version, CorpusSnapshotVersion)
	}
	shardCount, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("service: snapshot: read shard count: %w", err)
	}
	if shardCount == 0 || shardCount > 1<<16 {
		return fmt.Errorf("service: snapshot: implausible shard count %d", shardCount)
	}
	encoded := make([][]byte, shardCount)
	for i := range encoded {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("service: snapshot: read shard %d length: %w", i, err)
		}
		if size > maxShardBytes {
			return fmt.Errorf("service: snapshot: shard %d length %d exceeds limit", i, size)
		}
		encoded[i] = make([]byte, size)
		if _, err := io.ReadFull(br, encoded[i]); err != nil {
			return fmt.Errorf("service: snapshot: read shard %d: %w", i, err)
		}
	}

	decoded := make([]*ccd.Corpus, shardCount)
	errs := make([]error, shardCount)
	var wg sync.WaitGroup
	for i := range encoded {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			decoded[i], errs[i] = ccd.Load(bytes.NewReader(encoded[i]))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("service: snapshot: decode shard %d: %w", i, err)
		}
	}
	cfg := decoded[0].Config()
	for i, d := range decoded {
		if d.Config() != cfg {
			return fmt.Errorf("service: snapshot: shard %d config %v differs from shard 0 config %v", i, d.Config(), cfg)
		}
	}

	c.cfg = cfg
	if int(shardCount) == len(c.shards) {
		for i := range c.shards {
			c.shards[i].mu.Lock()
			c.shards[i].c = decoded[i]
			c.shards[i].mu.Unlock()
		}
		return nil
	}
	// Shard count changed since the snapshot: rebuild empty shards under the
	// restored config and re-distribute by id hash.
	for i := range c.shards {
		c.shards[i].mu.Lock()
		c.shards[i].c = ccd.NewCorpus(cfg)
		c.shards[i].mu.Unlock()
	}
	for _, d := range decoded {
		for _, e := range d.Entries() {
			c.addLocal(e.ID, e.FP)
		}
	}
	return nil
}
