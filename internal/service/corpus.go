package service

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/ccd"
)

// DefaultShards is retained for API compatibility with the sharded corpus
// this package used to ship. The generational corpus sizes its segments
// automatically; the value is no longer consulted.
const DefaultShards = 16

// Corpus is a clone-detection corpus with lock-free reads: the entire index
// lives in an immutable *generation* reached through one atomic pointer, so
// Match and MatchTopK never take a lock and never wait on writers — match
// latency is independent of ingest bursts.
//
// Writers batch into a pending delta and publish it off the read path: an
// Add enqueues its entry under a short mutex, then whichever writer reaches
// the publish lock first drains the whole delta into a fresh segment and
// swings the generation pointer (group commit — N concurrent Adds coalesce
// into ~2 publishes). An Add returns only after its entry is visible, so
// read-your-writes still holds.
//
// A generation holds the corpus as immutable segments in descending size.
// Publishing appends the delta as a new segment and then merges neighbours
// until every segment is at least twice its successor's size (the classic
// logarithmic method), keeping the segment count O(log n) and amortized
// publish cost O(log n) per entry.
//
// A Corpus is purely in-memory unless a Store is attached (OpenStore), in
// which case every Add is journaled to the write-ahead log before it becomes
// visible, and Snapshot/Restore persist the whole corpus atomically.
type Corpus struct {
	cfg ccd.Config
	gen atomic.Pointer[generation]

	// pendMu guards the write delta; held only to append one batch.
	pendMu   sync.Mutex
	pending  []ccd.Entry
	enqueued uint64 // entries ever enqueued

	// pubMu serializes publishing; held while a new generation is built.
	// The read path never touches it.
	pubMu     sync.Mutex
	published uint64 // entries ever published (≤ enqueued)

	publishes   atomic.Int64
	compactions atomic.Int64

	// store, when non-nil, intercepts Add for write-ahead logging. Set once
	// during OpenStore, before the corpus serves traffic.
	store *Store
}

// generation is one immutable published state of the corpus. Readers load it
// atomically and use it without synchronization; it is never mutated after
// the pointer swing.
type generation struct {
	segments []*ccd.Corpus // descending size, each immutable
	size     int           // total entries across segments
	seq      uint64        // publish counter (diagnostics)
}

// NewCorpus returns an empty concurrent corpus. Zero-value cfg selects
// ccd.DefaultConfig. The second parameter is the legacy shard count of the
// RWMutex-sharded predecessor; it is accepted and ignored.
func NewCorpus(cfg ccd.Config, _ int) *Corpus {
	if cfg.N == 0 {
		cfg = ccd.DefaultConfig
	}
	c := &Corpus{cfg: ccd.NewCorpus(cfg).Config()}
	c.gen.Store(&generation{})
	return c
}

// Config returns the corpus configuration.
func (c *Corpus) Config() ccd.Config { return c.cfg }

// Add indexes a fingerprint under an id. Safe for concurrent use. With a
// Store attached the entry is journaled first; a non-nil error means the
// entry was NOT acknowledged and is neither durable nor visible.
func (c *Corpus) Add(id string, fp ccd.Fingerprint) error {
	if c.store != nil {
		return c.store.add(id, fp)
	}
	c.addLocal(id, fp)
	return nil
}

// addLocal inserts without journaling (direct ingest, WAL replay, snapshot
// restore). It returns once the entry is published and visible to readers.
func (c *Corpus) addLocal(id string, fp ccd.Fingerprint) {
	c.addLocalBatch([]ccd.Entry{{ID: id, FP: fp}})
}

// addLocalBatch enqueues entries as one delta and publishes through the
// group-commit path. Empty batches are no-ops.
func (c *Corpus) addLocalBatch(entries []ccd.Entry) {
	if len(entries) == 0 {
		return
	}
	c.pendMu.Lock()
	c.pending = append(c.pending, entries...)
	c.enqueued += uint64(len(entries))
	upTo := c.enqueued
	c.pendMu.Unlock()
	c.publish(upTo)
}

// publish makes every entry enqueued at or before upTo visible. Whichever
// writer wins the publish lock drains the whole delta — writers arriving
// while a publish is in flight usually find their entries already covered.
func (c *Corpus) publish(upTo uint64) {
	c.pubMu.Lock()
	defer c.pubMu.Unlock()
	if c.published >= upTo {
		return // a concurrent writer's publish covered us
	}
	c.pendMu.Lock()
	batch := c.pending
	c.pending = nil
	c.pendMu.Unlock()

	seg := ccd.NewCorpus(c.cfg)
	for _, e := range batch {
		seg.Add(e.ID, e.FP)
	}
	old := c.gen.Load()
	segs := append(slices.Clip(slices.Clone(old.segments)), seg)
	// Logarithmic compaction: merge the tail while the newest segment has
	// reached at least half its predecessor, keeping sizes strictly
	// geometric and the segment count O(log n).
	for len(segs) >= 2 && 2*segs[len(segs)-1].Len() >= segs[len(segs)-2].Len() {
		segs = append(segs[:len(segs)-2], mergeSegments(c.cfg, segs[len(segs)-2], segs[len(segs)-1]))
		c.compactions.Add(1)
	}
	c.gen.Store(&generation{
		segments: segs,
		size:     old.size + len(batch),
		seq:      old.seq + 1,
	})
	c.published += uint64(len(batch))
	c.publishes.Add(1)
}

// mergeSegments builds one immutable segment holding every entry of a and b
// (in order, so ccd doc numbering stays deterministic).
func mergeSegments(cfg ccd.Config, a, b *ccd.Corpus) *ccd.Corpus {
	out := ccd.NewCorpus(cfg)
	for _, e := range a.Entries() {
		out.Add(e.ID, e.FP)
	}
	for _, e := range b.Entries() {
		out.Add(e.ID, e.FP)
	}
	return out
}

// Len returns the number of published entries.
func (c *Corpus) Len() int { return c.gen.Load().size }

// Segments returns the current generation's segment count (diagnostics).
func (c *Corpus) Segments() int { return len(c.gen.Load().segments) }

// Generation returns the publish sequence number of the current generation.
func (c *Corpus) Generation() uint64 { return c.gen.Load().seq }

// Publishes and Compactions report writer-side activity since boot.
func (c *Corpus) Publishes() int64   { return c.publishes.Load() }
func (c *Corpus) Compactions() int64 { return c.compactions.Load() }

// Match returns every clone of fp at the configured ε, best first (score
// descending, ties by id). Lock-free: runs entirely against one immutable
// generation.
func (c *Corpus) Match(fp ccd.Fingerprint) []ccd.Match {
	ms, _ := c.MatchTopK(fp, 0)
	return ms
}

// MatchTopK returns the k best clones of fp (k ≤ 0: all of them), best
// first, plus the pruning statistics of this query. One top-K collector is
// shared across segments, so a strong match found in an early (large)
// segment raises the admission bound for every later segment.
func (c *Corpus) MatchTopK(fp ccd.Fingerprint, k int) ([]ccd.Match, ccd.MatchStats) {
	g := c.gen.Load()
	col := ccd.NewTopK(k, c.cfg.Epsilon)
	q := ccd.PrepareQuery(c.cfg, fp)
	var stats ccd.MatchStats
	for _, seg := range g.segments {
		stats.Add(seg.MatchPreparedInto(q, col))
	}
	return col.Results(), stats
}

// entryMultiset returns the multiset of indexed (id, fingerprint) pairs,
// keyed id + NUL + fingerprint. Boot-time helper for idempotent WAL replay.
func (c *Corpus) entryMultiset() map[string]int {
	g := c.gen.Load()
	out := make(map[string]int, g.size)
	for _, seg := range g.segments {
		for _, e := range seg.Entries() {
			out[e.ID+"\x00"+string(e.FP)]++
		}
	}
	return out
}

// --- whole-corpus snapshots ----------------------------------------------------

// Corpus snapshot container (version 1): a framed sequence of ccd.Corpus
// binary snapshots, one per generation segment (historically one per shard —
// the layouts are interchangeable and both directions restore cleanly).
//
//	magic   "SVCSNAP\x00"
//	uvarint version
//	uvarint segment count
//	per segment: uvarint byte length, ccd snapshot bytes
//
// Integrity lives in the per-segment ccd snapshots (each carries its own
// CRC-32); the envelope adds only framing. Segments are encoded and decoded
// in parallel.
const (
	corpusSnapshotMagic = "SVCSNAP\x00"
	// CorpusSnapshotVersion is the snapshot envelope version.
	CorpusSnapshotVersion = 1
)

// WriteSnapshot encodes the current generation's segments (in parallel —
// they are immutable, so no locks are needed) and writes the snapshot
// envelope. Entries added concurrently may or may not be included; the
// snapshot is always a consistent published generation. Store.Snapshot
// provides the ingest-quiescent (and WAL-truncating) variant.
func (c *Corpus) WriteSnapshot(w io.Writer) error {
	g := c.gen.Load()
	segments := g.segments
	if len(segments) == 0 {
		// Encode one empty segment so the envelope always frames at least
		// one ccd snapshot (the historical sharded format never wrote zero).
		segments = []*ccd.Corpus{ccd.NewCorpus(c.cfg)}
	}
	encoded := make([][]byte, len(segments))
	errs := make([]error, len(segments))
	var wg sync.WaitGroup
	for i := range segments {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			errs[i] = segments[i].Save(&buf)
			encoded[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("service: snapshot segment %d: %w", i, err)
		}
	}

	bw := bufio.NewWriter(w)
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if _, err := bw.WriteString(corpusSnapshotMagic); err != nil {
		return err
	}
	if err := writeUvarint(CorpusSnapshotVersion); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(encoded))); err != nil {
		return err
	}
	for _, seg := range encoded {
		if err := writeUvarint(uint64(len(seg))); err != nil {
			return err
		}
		if _, err := bw.Write(seg); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxSegmentBytes bounds one encoded segment (defense against corrupt
// envelopes).
const maxSegmentBytes = 1 << 32 // 4 GiB

// ReadSnapshot restores a snapshot written by WriteSnapshot into this
// corpus, which must be empty. The snapshot's matcher configuration replaces
// the corpus's own. Decoded segments are installed directly as the first
// generation (ordered largest-first so the compaction invariant holds for
// subsequent ingest); snapshots from the older sharded layout restore the
// same way, since segment membership does not depend on id hashing.
func (c *Corpus) ReadSnapshot(r io.Reader) error {
	if c.Len() != 0 {
		return fmt.Errorf("service: restore into non-empty corpus (%d entries)", c.Len())
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(corpusSnapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("service: snapshot: read magic: %w", err)
	}
	if string(magic) != corpusSnapshotMagic {
		return fmt.Errorf("service: snapshot: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("service: snapshot: read version: %w", err)
	}
	if version != CorpusSnapshotVersion {
		return fmt.Errorf("service: snapshot: unsupported version %d (want %d)", version, CorpusSnapshotVersion)
	}
	segCount, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("service: snapshot: read segment count: %w", err)
	}
	if segCount == 0 || segCount > 1<<16 {
		return fmt.Errorf("service: snapshot: implausible segment count %d", segCount)
	}
	encoded := make([][]byte, segCount)
	for i := range encoded {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("service: snapshot: read segment %d length: %w", i, err)
		}
		if size > maxSegmentBytes {
			return fmt.Errorf("service: snapshot: segment %d length %d exceeds limit", i, size)
		}
		encoded[i] = make([]byte, size)
		if _, err := io.ReadFull(br, encoded[i]); err != nil {
			return fmt.Errorf("service: snapshot: read segment %d: %w", i, err)
		}
	}

	decoded := make([]*ccd.Corpus, segCount)
	errs := make([]error, segCount)
	var wg sync.WaitGroup
	for i := range encoded {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			decoded[i], errs[i] = ccd.Load(bytes.NewReader(encoded[i]))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("service: snapshot: decode segment %d: %w", i, err)
		}
	}
	cfg := decoded[0].Config()
	for i, d := range decoded {
		if d.Config() != cfg {
			return fmt.Errorf("service: snapshot: segment %d config %v differs from segment 0 config %v", i, d.Config(), cfg)
		}
	}

	segments := make([]*ccd.Corpus, 0, len(decoded))
	size := 0
	for _, d := range decoded {
		if d.Len() == 0 {
			continue // empty-corpus placeholder segment
		}
		segments = append(segments, d)
		size += d.Len()
	}
	slices.SortStableFunc(segments, func(a, b *ccd.Corpus) int { return b.Len() - a.Len() })

	c.pubMu.Lock()
	defer c.pubMu.Unlock()
	c.cfg = cfg
	c.gen.Store(&generation{segments: segments, size: size, seq: 1})
	return nil
}
