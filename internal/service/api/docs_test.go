package api

import (
	"bufio"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"

	"repro/internal/service"
)

// docsMetricsPath reaches the operator-facing metrics reference from this
// package; the test is the contract that keeps the table in that file and
// the live exposition identical.
const docsMetricsPath = "../../../docs/metrics.md"

// docTableRow matches one metric row of the reference table:
// | `ccd_name` | type | meaning |
var docTableRow = regexp.MustCompile("^\\|\\s*`(ccd_[a-z0-9_]+)`\\s*\\|\\s*(counter|gauge|histogram)\\s*\\|")

// TestMetricsDocCoversExposition diffs docs/metrics.md against a live
// Prometheus scrape in both directions: every exposed family must be
// documented with the right type, and every documented family must still be
// exposed. The server is assembled with a store, admission control and a
// rate limiter so the conditional families (durability, overload) render.
func TestMetricsDocCoversExposition(t *testing.T) {
	engine := service.New(service.Options{
		Workers: 2, Shards: 2,
		Admission: service.AdmissionConfig{MaxQueue: 4},
	})
	store, err := service.OpenStore(t.TempDir(), engine.Corpus())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ts := httptest.NewServer(NewServer(engine,
		WithStore(store), WithRateLimit(1000, 1000)).Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Exposed families, from the # TYPE preamble each family must emit.
	exposed := map[string]string{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 4 && fields[0] == "#" && fields[1] == "TYPE" {
			exposed[fields[2]] = fields[3]
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(exposed) == 0 {
		t.Fatal("scrape produced no # TYPE lines")
	}

	// Documented families, from the reference tables.
	doc, err := os.ReadFile(docsMetricsPath)
	if err != nil {
		t.Fatalf("metrics reference missing: %v", err)
	}
	documented := map[string]string{}
	for _, line := range strings.Split(string(doc), "\n") {
		if m := docTableRow.FindStringSubmatch(line); m != nil {
			if _, dup := documented[m[1]]; dup {
				t.Errorf("%s documented twice in %s", m[1], docsMetricsPath)
			}
			documented[m[1]] = m[2]
		}
	}

	for name, typ := range exposed {
		docTyp, ok := documented[name]
		if !ok {
			t.Errorf("exposed family %s (%s) is missing from %s", name, typ, docsMetricsPath)
			continue
		}
		if docTyp != typ {
			t.Errorf("%s documented as %s but exposed as %s", name, docTyp, typ)
		}
	}
	for name := range documented {
		if _, ok := exposed[name]; !ok {
			t.Errorf("documented family %s is no longer exposed", name)
		}
	}
}

// TestDocsCrossLinksResolve pins the relative links between README and the
// docs tree from this package's vantage point (CI also runs a repo-wide
// markdown link check; this keeps `go test` self-sufficient).
func TestDocsCrossLinksResolve(t *testing.T) {
	for _, p := range []string{
		"../../../README.md",
		"../../../docs/metrics.md",
		"../../../docs/operations.md",
		"../../../docs/tuning.md",
	} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("doc missing: %v", err)
		}
	}
}
