package api

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/ccd"
	"repro/internal/cluster"
	"repro/internal/index"
	"repro/internal/remote"
	"repro/internal/service"
)

// WithRouter puts the server in router mode: /v1/match fans out to the
// given router's shard nodes (merging through the shared admission bound),
// corpus ingest forwards each entry to the shard owning its id under the
// consistent-hash ring, and the corpus study streams partition exports
// through the router. The local engine still fingerprints sources and
// serves /v1/analyze; its (empty) local corpus is not matched against.
func WithRouter(r *remote.Router) Option {
	return func(s *Server) { s.router = r }
}

// WithPartition pins the server to one partition of an N-way cluster:
// ingest drops entries whose ring owner is a different partition (counted
// in the response as skipped), so a misrouted write can never make two
// shards disagree about ownership. Shard and replica nodes run with this.
func WithPartition(idx, total int) Option {
	return func(s *Server) {
		if total > 0 && idx >= 0 && idx < total {
			s.partIdx = idx
			s.partRing = remote.NewRing(total)
		}
	}
}

// ownsID reports whether this node's partition owns id (true when the
// server is not partition-pinned).
func (s *Server) ownsID(id string) bool {
	return s.partRing == nil || s.partRing.Owner(id) == s.partIdx
}

// --- shard-side handlers ------------------------------------------------------

// handleShardMatch serves POST /v1/shard/match: one partition-local match
// with the router's shipped admission bound seeding the local scatter-
// gather, so this shard prunes against evidence other partitions already
// produced. The response carries the bound the scan ended at — the router
// folds it back before the next wave.
func (s *Server) handleShardMatch(w http.ResponseWriter, r *http.Request) {
	var req remote.ShardMatchRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Fingerprint == "" {
		writeError(w, http.StatusBadRequest, "provide \"fingerprint\"")
		return
	}
	if req.K < 0 {
		writeError(w, http.StatusBadRequest, "\"k\" must be ≥ 0")
		return
	}
	if req.Bound < 0 {
		req.Bound = 0
	}
	ctx := r.Context()
	if req.BudgetMs > 0 {
		// The router shipped its remaining budget: scan under it and
		// self-cancel into a degraded partial instead of letting an
		// abandoning router strand this scan. The middleware may already
		// have installed a (header-derived) budget; keep the tighter one.
		s.engine.NoteDeadlineShipped()
		deadline := time.Now().Add(time.Duration(req.BudgetMs) * time.Millisecond)
		if b, ok := service.BudgetOf(ctx); !ok || deadline.Before(b.Deadline) {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, deadline)
			defer cancel()
			ctx = service.WithBudget(ctx, service.Budget{Deadline: deadline})
		}
	}
	bound := ccd.NewAtomicBound(req.Bound)
	var ms []ccd.Match
	var st ccd.MatchStats
	var err error
	if derr := s.engine.DoCtx(ctx, func() {
		doc := index.Doc{FP: ccd.Fingerprint(req.Fingerprint)}
		ms, st, err = s.engine.Corpus().MatchDocTopKBound(ctx, doc, req.K, bound)
	}); derr != nil {
		if req.BudgetMs > 0 && errors.Is(derr, context.DeadlineExceeded) {
			// The shipped budget drained while queued: an honest (empty)
			// degraded response beats a 504 the router must write off.
			writeJSON(w, http.StatusOK, remote.ShardMatchResponse{
				Matches: []remote.Match{}, Bound: bound.Load(), Degraded: []string{"deadline"},
			})
		}
		return // client gone while queued
	}
	degraded := errors.Is(err, service.ErrBudgetExhausted)
	if degraded {
		err = nil
	}
	if err != nil {
		if ctx.Err() != nil {
			return // cancelled mid-scan
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := remote.ShardMatchResponse{
		Matches: make([]remote.Match, len(ms)),
		Bound:   bound.Load(),
		Stats: remote.ShardMatchStats{
			Candidates:    st.Candidates,
			FilterPruned:  st.FilterPruned,
			Scored:        st.Scored,
			CutoffSkipped: st.CutoffSkipped,
			Abandoned:     st.Abandoned,
		},
	}
	if degraded {
		resp.Degraded = []string{"deadline"}
	}
	for i, m := range ms {
		resp.Matches[i] = remote.Match{ID: m.ID, Score: m.Score}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWALStream serves GET /v1/wal/stream?from=N[&limit=M][&epoch=E]: one
// page of the shard's WAL tail from record position N as NDJSON, one
// remote.WALRecord per line. The response names the WAL generation in
// X-WAL-Epoch, the resume position in X-WAL-Next, and sets X-WAL-More: 1
// when the page was cut by the (server-capped) limit rather than the log's
// end. Clients echo the epoch back on every subsequent call; a mismatch —
// or an epoch-less position past the end of the log — answers 410 Gone: the
// primary snapshotted and truncated the log, positions from the old
// generation are meaningless against the new one, and the replica must
// re-bootstrap. The page is collected under the store lock but written
// after it is released, so a slow replica can never stall snapshots or
// ingest, and the cap bounds what one request buffers.
func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusConflict, "persistence not enabled (start serve with -corpus-dir)")
		return
	}
	qp := r.URL.Query()
	from := 0
	if v := qp.Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "\"from\" must be a non-negative integer")
			return
		}
		from = n
	}
	limit := 0
	if v := qp.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "\"limit\" must be a positive integer")
			return
		}
		limit = n
	}
	epoch := int64(0)
	if v := qp.Get("epoch"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "\"epoch\" must be a non-negative integer")
			return
		}
		epoch = n
	}

	page, err := s.store.WALPage(from, epoch, limit)
	w.Header().Set("X-WAL-Epoch", strconv.FormatInt(page.Epoch, 10))
	switch {
	case errors.Is(err, service.ErrWALTruncated):
		writeError(w, http.StatusGone, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "wal stream: "+err.Error())
		return
	}
	w.Header().Set("X-WAL-Next", strconv.Itoa(page.Next))
	if page.More {
		w.Header().Set("X-WAL-More", "1")
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range page.Entries {
		if enc.Encode(remote.WALRecord{Seq: e.Seq, ID: e.ID, Fingerprint: string(e.FP)}) != nil {
			return // client gone mid-page; it will re-request from its position
		}
	}
	_ = bw.Flush()
}

// --- router-side handlers -----------------------------------------------------

// writeRemoteError maps a failed shard interaction onto the router's own
// response: shard backpressure (429/503) propagates verbatim with its
// Retry-After, anything else is a 502 naming the upstream failure.
func writeRemoteError(w http.ResponseWriter, err error) {
	var se *remote.StatusError
	if errors.As(err, &se) && se.Overloaded() {
		retry := time.Duration(se.RetryAfterSeconds) * time.Second
		if retry <= 0 {
			retry = time.Second
		}
		writeOverloaded(w, se.Status, retry, se.Error())
		return
	}
	writeError(w, http.StatusBadGateway, "shard request failed: "+err.Error())
}

// routerMatch serves /v1/match in router mode: every query fans out over
// the shard fleet through the router's wave scheduler and merges remotely
// scanned top-K lists. Sources are fingerprinted locally (CPU work stays on
// the router's pool); only fingerprints and bounds cross the network.
func (s *Server) routerMatch(w http.ResponseWriter, r *http.Request, req MatchRequest) {
	ctx := r.Context()
	if req.Backend != "" && req.Backend != "ccd" {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("backend %q: router mode serves the default ccd backend", req.Backend))
		return
	}
	batch := len(req.Sources) > 0 || len(req.Fingerprints) > 0
	if batch && (req.Source != "" || req.Fingerprint != "") {
		writeError(w, http.StatusBadRequest, "mix of single and batch fields: use either \"source\"/\"fingerprint\" or \"sources\"/\"fingerprints\"")
		return
	}
	if !batch {
		if req.Source == "" && req.Fingerprint == "" {
			writeError(w, http.StatusBadRequest, "provide \"source\" or \"fingerprint\"")
			return
		}
		fp, ok := s.routerFingerprint(ctx, req.Source, req.Fingerprint)
		if !ok {
			return
		}
		resp, err := s.routerMatchFP(ctx, req, fp)
		if err != nil {
			if ctx.Err() == nil {
				writeRemoteError(w, err)
			}
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp := MatchBatchResponse{Results: make([]MatchResponse, 0, len(req.Sources)+len(req.Fingerprints))}
	for _, src := range req.Sources {
		fp, ok := s.routerFingerprint(ctx, src, "")
		if !ok {
			return
		}
		one, err := s.routerMatchFP(ctx, req, fp)
		if err != nil {
			if ctx.Err() == nil {
				writeRemoteError(w, err)
			}
			return
		}
		resp.Results = append(resp.Results, one)
	}
	for _, fp := range req.Fingerprints {
		one, err := s.routerMatchFP(ctx, req, fp)
		if err != nil {
			if ctx.Err() == nil {
				writeRemoteError(w, err)
			}
			return
		}
		resp.Results = append(resp.Results, one)
	}
	writeJSON(w, http.StatusOK, resp)
}

// routerFingerprint resolves a query to a fingerprint, running source
// fingerprinting on the engine pool. ok=false means the client is gone.
func (s *Server) routerFingerprint(ctx context.Context, source, fingerprint string) (string, bool) {
	if source == "" {
		return fingerprint, true
	}
	var fp ccd.Fingerprint
	if err := s.engine.DoCtx(ctx, func() {
		// Parse issues still yield a partial fingerprint, same as the
		// single-process match path.
		fp, _ = s.engine.Fingerprint(source)
	}); err != nil {
		return "", false
	}
	return string(fp), true
}

// routerMatchFP routes one fingerprint query and shapes the API response.
func (s *Server) routerMatchFP(ctx context.Context, req MatchRequest, fp string) (MatchResponse, error) {
	limit, halved := s.effectiveLimit(req.Limit)
	res, err := s.router.Match(ctx, fp, limit)
	if err != nil {
		return MatchResponse{}, err
	}
	resp := MatchResponse{Matches: make([]Match, len(res.Matches)), Partial: res.Partial}
	for i, m := range res.Matches {
		resp.Matches[i] = Match{ID: m.ID, Score: m.Score}
	}
	if res.Degraded {
		resp.Partial = true
		resp.Degraded = append(resp.Degraded, "deadline")
	}
	if halved {
		resp.EffectiveLimit = limit
		resp.Degraded = append(resp.Degraded, "limit")
	}
	if req.Explain {
		resp.Explain = &MatchExplain{
			Backend:       "ccd",
			Shards:        s.router.N(),
			Limit:         req.Limit,
			Candidates:    res.Stats.Candidates,
			FilterPruned:  res.Stats.FilterPruned,
			Scored:        res.Stats.Scored,
			CutoffSkipped: res.Stats.CutoffSkipped,
			Abandoned:     res.Stats.Abandoned,
		}
	}
	return resp, nil
}

// routerCorpusAdd forwards a /v1/corpus ingest to the shard fleet: entries
// group by ring owner and each group lands on its shard in one request.
// Shard fingerprinting keeps the router thin — the source text crosses the
// network once either way, and this way the CPU cost lands on the node
// that owns the document.
func (s *Server) routerCorpusAdd(w http.ResponseWriter, r *http.Request, req CorpusAddRequest) {
	ctx := r.Context()
	byOwner := make(map[int][]CorpusEntry)
	for _, e := range req.Entries {
		owner := s.router.Owner(e.ID)
		byOwner[owner] = append(byOwner[owner], e)
	}
	var total CorpusAddResponse
	for part := 0; part < s.router.N(); part++ {
		group, ok := byOwner[part]
		if !ok {
			continue
		}
		var resp CorpusAddResponse
		url := s.router.Target(part) + "/v1/corpus"
		if err := s.router.Client().PostJSON(ctx, url, CorpusAddRequest{Entries: group}, &resp); err != nil {
			if ctx.Err() == nil {
				writeRemoteError(w, err)
			}
			return
		}
		total.Added += resp.Added
		total.ParseIssue += resp.ParseIssue
		total.Skipped += resp.Skipped
		total.Size += resp.Size
	}
	writeJSON(w, http.StatusOK, total)
}

// routerBulk streams a /v1/corpus/bulk NDJSON body through the ring:
// lines buffer per owning shard and flush in bulkChunk batches, so a huge
// stream never materializes on the router.
func (s *Server) routerBulk(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	var resp BulkResponse
	malformed := func(line int, msg string) {
		resp.Malformed++
		if len(resp.Errors) < maxBulkErrors {
			resp.Errors = append(resp.Errors, fmt.Sprintf("line %d: %s", line, msg))
		}
	}
	chunks := make([][]byte, s.router.N())
	counts := make([]int, s.router.N())
	flush := func(part int) error {
		if counts[part] == 0 {
			return nil
		}
		var shardResp BulkResponse
		url := s.router.Target(part) + "/v1/corpus/bulk"
		if err := s.router.Client().PostNDJSON(ctx, url, chunks[part], &shardResp); err != nil {
			return err
		}
		resp.Added += shardResp.Added
		resp.ParseIssues += shardResp.ParseIssues
		resp.Malformed += shardResp.Malformed
		resp.PersistFailures += shardResp.PersistFailures
		resp.Skipped += shardResp.Skipped
		resp.Size += shardResp.Size
		chunks[part] = chunks[part][:0]
		counts[part] = 0
		return nil
	}

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), maxBulkLineBytes)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		// Decode just enough to route: the owning shard re-validates.
		var e BulkEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			malformed(line, "bad JSON: "+err.Error())
			continue
		}
		if e.ID == "" {
			malformed(line, "missing id")
			continue
		}
		part := s.router.Owner(e.ID)
		chunks[part] = append(chunks[part], raw...)
		chunks[part] = append(chunks[part], '\n')
		counts[part]++
		if counts[part] >= bulkChunk {
			if err := flush(part); err != nil {
				if ctx.Err() == nil {
					writeRemoteError(w, err)
				}
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("read stream at line %d: %s", line+1, err))
		return
	}
	for part := range chunks {
		if err := flush(part); err != nil {
			if ctx.Err() == nil {
				writeRemoteError(w, err)
			}
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// routerCloneStudy runs the corpus-wide clone study in router mode: each
// partition's documents stream in through the paginated NDJSON export, and
// every document's clone query fans back out through the router — the
// distributed analogue of the self-join planner's per-segment queries. The
// run is not checkpointed/resumable like the in-process planner; operators
// needing resume run the study on the shard nodes directly.
func (s *Server) routerCloneStudy(ctx context.Context, limit, topN int) (*service.CloneReport, error) {
	cfg := s.engine.Corpus().Config()
	eps := s.engine.Corpus().Epsilon()
	rep := &service.CloneReport{
		Backend: s.engine.Corpus().Backend(),
		Eta:     cfg.Eta,
		Epsilon: eps,
		Limit:   limit,
	}
	k := 0
	if limit > 0 {
		// One extra slot absorbs the document's self-match.
		k = limit + 1
	}
	set := cluster.New()
	for part := 0; part < s.router.N(); part++ {
		rep.Stats.SegmentsTotal++
		err := s.router.Client().ExportEntries(ctx, s.router.Target(part), func(e remote.ExportEntry) error {
			rep.Stats.Docs++
			set.Add(e.ID)
			res, err := s.router.Match(ctx, e.Fingerprint, k)
			if err != nil {
				rep.Stats.Errors++
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return nil // one failed query degrades the study, not ends it
			}
			rep.Stats.Queried++
			rep.Stats.Candidates += int64(res.Stats.Candidates)
			rep.Stats.FilterPruned += int64(res.Stats.FilterPruned)
			rep.Stats.Scored += int64(res.Stats.Scored)
			rep.Stats.CutoffSkipped += int64(res.Stats.CutoffSkipped)
			for _, m := range res.Matches {
				if m.ID == e.ID || m.Score < eps {
					continue
				}
				rep.Stats.Matches++
				if set.Union(e.ID, m.ID) {
					rep.Stats.Unions++
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		rep.Stats.SegmentsDone++
	}
	rep.Summary = set.Summary()
	if topN > 0 {
		top := set.Clusters(2, false)
		if len(top) > topN {
			top = top[:topN]
		}
		rep.Top = top
	}
	return rep, nil
}

// --- cursor plumbing ----------------------------------------------------------

// encodeCursor packs a cursor struct into an opaque URL-safe token.
func encodeCursor(v any) string {
	b, _ := json.Marshal(v)
	return base64.RawURLEncoding.EncodeToString(b)
}

// decodeCursor unpacks a token produced by encodeCursor.
func decodeCursor(token string, into any) error {
	b, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, into)
}
