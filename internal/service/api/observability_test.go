package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/index"
	"repro/internal/service"
)

// --- golden: Prometheus exposition -------------------------------------------

// TestGoldenPrometheusExposition pins the text-exposition surface: every
// metric name, label set, HELP/TYPE preamble and line ordering. Sample
// values are masked (latencies are nondeterministic); the shape is the
// contract a scrape config depends on.
func TestGoldenPrometheusExposition(t *testing.T) {
	ts, _ := newTestServer(t)
	seedObservabilityTraffic(t, ts)

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != prometheusContentType {
		t.Fatalf("content type %q, want %q", ct, prometheusContentType)
	}

	got := maskExpositionValues(t, raw)
	fixture := filepath.Join("testdata", "golden", "metrics_prometheus.txt")
	if *updateGolden {
		if err := os.WriteFile(fixture, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("exposition shape changed.\n got: %s\nwant: %s\n(re-run with -update if intentional)", got, want)
	}
}

// seedObservabilityTraffic issues a deterministic request sequence so every
// status class and histogram the goldens pin has observations.
func seedObservabilityTraffic(t *testing.T, ts *httptest.Server) {
	t.Helper()
	if resp, _ := post(t, ts.URL+"/v1/corpus", map[string]any{"entries": []map[string]string{
		{"id": "victim-1", "source": reentrantSrc},
		{"id": "safe-1", "source": benignSrc},
	}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed status %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/match", map[string]any{"source": reentrantSrc}); resp.StatusCode != http.StatusOK {
		t.Fatalf("match status %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/analyze", map[string]any{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad analyze status %d", resp.StatusCode)
	}
}

// maskExpositionValues replaces every sample value with V, keeping names,
// labels and comment lines verbatim.
func maskExpositionValues(t *testing.T, raw []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			out.WriteString(line)
			out.WriteByte('\n')
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		out.WriteString(line[:i])
		out.WriteString(" V\n")
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// --- golden: trace span tree --------------------------------------------------

// TestGoldenTraceDetail pins the span topology of a traced /v1/match on a
// single-shard server: root → queue.wait → match.fingerprint → match →
// shard.scan → match.merge, with their annotation keys. Wall times and
// timing-valued annotations are masked.
func TestGoldenTraceDetail(t *testing.T) {
	ts, _ := newTestServerOpts(t, service.Options{Workers: 2, Shards: 1})
	if resp, _ := post(t, ts.URL+"/v1/corpus", map[string]any{"entries": []map[string]string{
		{"id": "victim-1", "source": reentrantSrc},
	}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed status %d", resp.StatusCode)
	}

	const traceID = "golden-trace-match"
	resp := postTraced(t, ts.URL+"/v1/match", traceID, map[string]any{"source": reentrantSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != traceID {
		t.Fatalf("X-Trace-Id %q, want %q", got, traceID)
	}

	detail, err := http.Get(ts.URL + "/debug/traces/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(detail.Body)
	detail.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if detail.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch status %d: %s", detail.StatusCode, raw)
	}

	var body any
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("trace detail is not JSON: %v\n%s", err, raw)
	}
	maskTraceTimes(body)
	got, err := json.MarshalIndent(body, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	fixture := filepath.Join("testdata", "golden", "trace_match_detail.json")
	if *updateGolden {
		if err := os.WriteFile(fixture, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace shape changed.\n got: %s\nwant: %s\n(re-run with -update if intentional)", got, want)
	}
}

// maskTraceTimes zeroes wall-clock and duration fields and timing-valued
// annotations in a decoded trace view, leaving the topology and keys.
func maskTraceTimes(v any) {
	switch n := v.(type) {
	case map[string]any:
		for k, child := range n {
			switch k {
			case "start":
				n[k] = "TIME"
			case "start_us", "duration_us":
				n[k] = "T"
			case "val":
				// Timing-valued annotations vary run to run; counts don't.
				if key, _ := n["key"].(string); strings.HasSuffix(key, "_ns") {
					n[k] = "T"
				}
			default:
				maskTraceTimes(child)
			}
		}
	case []any:
		for _, child := range n {
			maskTraceTimes(child)
		}
	}
}

// postTraced posts a JSON body with an X-Request-Id header.
func postTraced(t *testing.T, url, traceID string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// --- trace plumbing behavior --------------------------------------------------

// TestTraceparentHonored checks the W3C fallback: no X-Request-Id, a valid
// traceparent → its trace-id field becomes the trace id.
func TestTraceparentHonored(t *testing.T) {
	ts, _ := newTestServer(t)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/corpus", nil)
	req.Header.Set("Traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("X-Trace-Id %q, want the traceparent trace-id", got)
	}
}

// TestErrorPayloadCarriesTraceID checks that traced error responses embed
// the trace id and the trace lands in the errored retention ring.
func TestErrorPayloadCarriesTraceID(t *testing.T) {
	ts, s := newTestServer(t)
	resp := postTraced(t, ts.URL+"/v1/analyze", "err-trace-1", map[string]any{})
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if body["trace_id"] != "err-trace-1" {
		t.Fatalf("error payload trace_id %v", body["trace_id"])
	}
	tr, ok := s.Recorder().Get("err-trace-1")
	if !ok {
		t.Fatal("errored trace not retained")
	}
	if tr.Err() == "" {
		t.Fatal("retained trace has no error")
	}
	if st := s.Recorder().Stats(); st.Errored == 0 {
		t.Fatalf("recorder stats: %+v", st)
	}
}

// TestReadiness covers /readyz and the ?ready=1 fold into /healthz: without
// a store the server is always ready; a WithReadiness override flips both.
func TestReadiness(t *testing.T) {
	ts, _ := newTestServer(t)
	if resp, m := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK || m["ready"] != true {
		t.Fatalf("readyz: %d %v", resp.StatusCode, m)
	}

	engine := service.New(service.Options{Workers: 1, Shards: 1})
	notReady := NewServer(engine, WithReadiness(func() bool { return false }))
	nts := httptest.NewServer(notReady.Handler())
	defer nts.Close()
	if resp, m := get(t, nts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable || m["ready"] != false {
		t.Fatalf("not-ready readyz: %d %v", resp.StatusCode, m)
	}
	if resp, _ := get(t, nts.URL+"/healthz?ready=1"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz?ready=1: %d", resp.StatusCode)
	}
	if resp, _ := get(t, nts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz liveness must ignore readiness: %d", resp.StatusCode)
	}
}

// TestFsyncWaitSpanPinned runs a store-backed server and pins the ingest
// span topology: a traced POST /v1/corpus must show the WAL group-commit
// wait (corpus.add → wal.append → wal.fsync_wait) and the durability
// histograms must record the fsync.
func TestFsyncWaitSpanPinned(t *testing.T) {
	engine := service.New(service.Options{Workers: 2, Shards: 1})
	store, err := service.OpenStore(t.TempDir(), engine.Corpus())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	s := NewServer(engine, WithStore(store))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const traceID = "ingest-trace-1"
	resp := postTraced(t, ts.URL+"/v1/corpus", traceID, map[string]any{"entries": []map[string]string{
		{"id": "doc-1", "source": benignSrc},
	}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	tr, ok := s.Recorder().Get(traceID)
	if !ok {
		t.Fatal("ingest trace not retained")
	}
	names := map[string]bool{}
	for _, sp := range tr.View().Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"POST /v1/corpus", "corpus.add", "wal.append", "wal.fsync_wait"} {
		if !names[want] {
			t.Errorf("span %q missing; got %v", want, names)
		}
	}

	_, m := get(t, ts.URL+"/metrics")
	dur, ok := m["durability"].(map[string]any)
	if !ok {
		t.Fatalf("durability block missing: %v", m["durability"])
	}
	if c := dur["fsync_latency"].(map[string]any)["count"].(float64); c < 1 {
		t.Errorf("fsync count %v, want ≥ 1", c)
	}
	if c := dur["group_commit_batch"].(map[string]any)["count"].(float64); c < 1 {
		t.Errorf("group-commit batch count %v, want ≥ 1", c)
	}
	if dur["ready"] != true {
		t.Errorf("store not ready after ingest: %v", dur)
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("store-backed readyz: %d", resp.StatusCode)
	}
}

// --- exposition parser --------------------------------------------------------

// expositionFamily is one parsed metric family.
type expositionFamily struct {
	typ     string
	samples []expositionSample
}

type expositionSample struct {
	name   string
	labels string
	value  float64
}

// parseExposition is a minimal Prometheus text-format (0.0.4) parser: enough
// to validate the scrape CI depends on. It enforces that every sample
// belongs to a family announced by HELP/TYPE.
func parseExposition(r io.Reader) (map[string]*expositionFamily, error) {
	families := map[string]*expositionFamily{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("line %d: bad TYPE", lineNo)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", lineNo, parts[1])
			}
			families[parts[0]] = &expositionFamily{typ: parts[1]}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		base := sample.name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if fam, ok := families[strings.TrimSuffix(sample.name, suffix)]; ok && fam.typ == "histogram" {
				base = strings.TrimSuffix(sample.name, suffix)
				break
			}
		}
		fam, ok := families[base]
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q has no TYPE", lineNo, sample.name)
		}
		fam.samples = append(fam.samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return families, nil
}

func parseSample(line string) (expositionSample, error) {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return expositionSample{}, fmt.Errorf("no value separator in %q", line)
	}
	v, err := strconv.ParseFloat(line[i+1:], 64)
	if err != nil {
		return expositionSample{}, fmt.Errorf("bad value in %q: %w", line, err)
	}
	nameAndLabels := line[:i]
	name, labels := nameAndLabels, ""
	if j := strings.IndexByte(nameAndLabels, '{'); j >= 0 {
		if !strings.HasSuffix(nameAndLabels, "}") {
			return expositionSample{}, fmt.Errorf("unterminated labels in %q", line)
		}
		name, labels = nameAndLabels[:j], nameAndLabels[j+1:len(nameAndLabels)-1]
	}
	return expositionSample{name: name, labels: labels, value: v}, nil
}

// labelValue extracts one label's value from a raw label string.
func labelValue(labels, key string) (string, bool) {
	for _, kv := range strings.Split(labels, ",") {
		if k, v, ok := strings.Cut(kv, "="); ok && k == key {
			return strings.Trim(v, `"`), true
		}
	}
	return "", false
}

// validateHistograms checks every histogram family: per-series buckets are
// cumulative-monotone in le order, and the +Inf bucket equals _count.
func validateHistograms(t *testing.T, families map[string]*expositionFamily) {
	t.Helper()
	for name, fam := range families {
		if fam.typ != "histogram" {
			continue
		}
		type series struct {
			les    []float64
			counts map[float64]float64
			count  float64
			inf    float64
			hasInf bool
		}
		byLabels := map[string]*series{}
		get := func(rest string) *series {
			s, ok := byLabels[rest]
			if !ok {
				s = &series{counts: map[float64]float64{}}
				byLabels[rest] = s
			}
			return s
		}
		for _, smp := range fam.samples {
			switch {
			case strings.HasSuffix(smp.name, "_bucket"):
				le, ok := labelValue(smp.labels, "le")
				if !ok {
					t.Errorf("%s: bucket without le label", name)
					continue
				}
				rest := removeLabel(smp.labels, "le")
				s := get(rest)
				if le == "+Inf" {
					s.inf, s.hasInf = smp.value, true
					continue
				}
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Errorf("%s: bad le %q", name, le)
					continue
				}
				s.les = append(s.les, bound)
				s.counts[bound] = smp.value
			case strings.HasSuffix(smp.name, "_count"):
				get(smp.labels).count = smp.value
			}
		}
		for labels, s := range byLabels {
			sort.Float64s(s.les)
			prev := -1.0
			for _, le := range s.les {
				if c := s.counts[le]; c < prev {
					t.Errorf("%s{%s}: bucket le=%g count %g < previous %g (not cumulative)", name, labels, le, c, prev)
				} else {
					prev = c
				}
			}
			if !s.hasInf {
				t.Errorf("%s{%s}: missing +Inf bucket", name, labels)
				continue
			}
			if s.inf != s.count {
				t.Errorf("%s{%s}: +Inf bucket %g != _count %g", name, labels, s.inf, s.count)
			}
			if prev > s.inf {
				t.Errorf("%s{%s}: last finite bucket %g exceeds +Inf %g", name, labels, prev, s.inf)
			}
		}
	}
}

// removeLabel drops one key from a raw label string.
func removeLabel(labels, key string) string {
	var kept []string
	for _, kv := range strings.Split(labels, ",") {
		if k, _, ok := strings.Cut(kv, "="); !ok || k != key {
			kept = append(kept, kv)
		}
	}
	return strings.Join(kept, ",")
}

// TestPrometheusExpositionValid scrapes a loaded server and runs the full
// parser + histogram validation (the check CI runs against the exposition).
func TestPrometheusExpositionValid(t *testing.T) {
	ts, _ := newTestServer(t)
	seedObservabilityTraffic(t, ts)

	for _, mode := range []struct{ name, path, accept string }{
		{"query-param", "/metrics?format=prometheus", ""},
		{"accept-header", "/metrics", "text/plain"},
	} {
		t.Run(mode.name, func(t *testing.T) {
			req, _ := http.NewRequest(http.MethodGet, ts.URL+mode.path, nil)
			if mode.accept != "" {
				req.Header.Set("Accept", mode.accept)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if ct := resp.Header.Get("Content-Type"); ct != prometheusContentType {
				t.Fatalf("content type %q", ct)
			}
			families, err := parseExposition(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if len(families) == 0 {
				t.Fatal("no metric families")
			}
			for _, want := range []string{
				"ccd_matches_total", "ccd_match_latency_seconds",
				"ccd_http_requests_total", "ccd_http_request_duration_seconds",
				"ccd_traces_recorded_total", "ccd_uptime_seconds",
			} {
				if _, ok := families[want]; !ok {
					t.Errorf("family %q missing", want)
				}
			}
			validateHistograms(t, families)
		})
	}
}

// TestMetricsDefaultStaysJSON pins the negotiation default: no format param,
// no text/plain Accept → JSON.
func TestMetricsDefaultStaysJSON(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type %q, want application/json", ct)
	}
}

// --- race hammer --------------------------------------------------------------

// TestTracedHammer drives concurrent traced matches while scraping both
// metrics formats and the trace ring: the lock-free trace/hist/ring paths
// must survive -race, the ring must stay bounded, and every response must
// echo its request id.
func TestTracedHammer(t *testing.T) {
	ts, s := newTestServerOpts(t, service.Options{Workers: 4, Shards: 4, Backends: index.Names()})
	if resp, _ := post(t, ts.URL+"/v1/corpus", map[string]any{"entries": []map[string]string{
		{"id": "victim-1", "source": reentrantSrc},
		{"id": "safe-1", "source": benignSrc},
	}}); resp.StatusCode != http.StatusOK {
		t.Fatal("seed failed")
	}

	const (
		writers    = 8
		perWriter  = 25
		totalMatch = writers * perWriter
	)
	var wg sync.WaitGroup
	errs := make(chan string, totalMatch)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("hammer-%d-%d", w, i)
				resp := postTraced(t, ts.URL+"/v1/match", id, map[string]any{"source": reentrantSrc})
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("match %s: status %d", id, resp.StatusCode)
				}
				if got := resp.Header.Get("X-Trace-Id"); got != id {
					errs <- fmt.Sprintf("match %s: echoed trace id %q", id, got)
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		paths := []string{"/metrics", "/metrics?format=prometheus", "/debug/traces"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + paths[i%len(paths)])
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	wg.Wait()
	close(stop)
	<-scraperDone
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	st := s.Recorder().Stats()
	if st.Recorded < totalMatch {
		t.Errorf("recorded %d traces, want ≥ %d", st.Recorded, totalMatch)
	}
	retained := s.Recorder().Traces()
	bound := 2*st.Capacity + st.SlowKept
	if len(retained) == 0 || len(retained) > bound {
		t.Errorf("retained %d traces, want within (0, %d]", len(retained), bound)
	}

	// The per-endpoint stats saw every hammer request.
	_, m := get(t, ts.URL+"/metrics")
	match := m["endpoints"].(map[string]any)["POST /v1/match"].(map[string]any)
	if c := match["count"].(float64); c < totalMatch {
		t.Errorf("endpoint count %v, want ≥ %d", c, totalMatch)
	}
}
