package api

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/pipeline"
	"repro/internal/service"
)

// maxRunningJobs caps concurrent study runs; further POST /v1/study requests
// are rejected with 429 until one finishes. maxRetainedJobs bounds how many
// finished jobs stay pollable before the oldest are evicted.
const (
	maxRunningJobs  = 4
	maxRetainedJobs = 64
)

// JobStatus is the lifecycle state of an async study job.
type JobStatus string

const (
	// JobRunning marks a study still computing; keep polling.
	JobRunning JobStatus = "running"
	// JobDone marks a study whose full report is attached.
	JobDone JobStatus = "done"
	// JobFailed marks a study aborted by an error (carried in the payload).
	JobFailed JobStatus = "failed"
)

// StudySummary is the JSON-able condensate a polling client receives. For
// pipeline-mode jobs it carries the Figure 6 funnel and tables (the full
// pipeline.Result embeds whole corpora and is far too large to ship); for
// corpus-mode jobs it carries the clone study report instead.
type StudySummary struct {
	// Mode is "pipeline" or "corpus".
	Mode         string                 `json:"mode"`
	Seed         int64                  `json:"seed,omitempty"`
	Scale        float64                `json:"scale,omitempty"`
	Funnel       *pipeline.Funnel       `json:"funnel,omitempty"`
	Correlations []pipeline.Correlation `json:"correlations,omitempty"`
	// Table6 maps DASP category names to snippet/contract counts.
	Table6 map[string]CategoryCount `json:"table6,omitempty"`
	// ManualSampleSize is the Table 8 stratified sample size.
	ManualSampleSize int `json:"manual_sample_size,omitempty"`
	// Clone is the corpus-mode result: self-join funnel plus the
	// cluster-size distribution over the serving corpus.
	Clone   *service.CloneReport `json:"clone,omitempty"`
	Elapsed string               `json:"elapsed"`
}

// CategoryCount is one Table 6 cell pair.
type CategoryCount struct {
	Snippets  int `json:"snippets"`
	Contracts int `json:"contracts"`
}

// Job is one asynchronous study run.
type Job struct {
	ID      string        `json:"id"`
	Status  JobStatus     `json:"status"`
	Created time.Time     `json:"created"`
	Summary *StudySummary `json:"summary,omitempty"`
	Error   string        `json:"error,omitempty"`
}

// jobStore tracks study jobs by id, caps how many run at once, and evicts
// the oldest finished jobs beyond the retention bound.
type jobStore struct {
	mu      sync.RWMutex
	seq     int
	running int
	jobs    map[string]*Job
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*Job)}
}

// start registers a running job and returns a copy of its initial state.
// ok is false when maxRunningJobs studies are already in flight.
func (s *jobStore) start(now time.Time) (_ Job, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running >= maxRunningJobs {
		return Job{}, false
	}
	s.running++
	s.seq++
	j := &Job{ID: fmt.Sprintf("study-%d", s.seq), Status: JobRunning, Created: now}
	s.jobs[j.ID] = j
	s.pruneLocked()
	return *j, true
}

// finish records a job's outcome and frees its running slot.
func (s *jobStore) finish(id string, summary *StudySummary, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.Status != JobRunning {
		return
	}
	s.running--
	if err != nil {
		j.Status = JobFailed
		j.Error = err.Error()
		return
	}
	j.Status = JobDone
	j.Summary = summary
}

// pruneLocked evicts the oldest finished jobs until at most maxRetainedJobs
// remain; running jobs are never evicted. Callers hold s.mu.
func (s *jobStore) pruneLocked() {
	if len(s.jobs) <= maxRetainedJobs {
		return
	}
	var finished []*Job
	for _, j := range s.jobs {
		if j.Status != JobRunning {
			finished = append(finished, j)
		}
	}
	sort.Slice(finished, func(i, k int) bool {
		if !finished[i].Created.Equal(finished[k].Created) {
			return finished[i].Created.Before(finished[k].Created)
		}
		return finished[i].ID < finished[k].ID
	})
	for _, j := range finished {
		if len(s.jobs) <= maxRetainedJobs {
			return
		}
		delete(s.jobs, j.ID)
	}
}

// get returns a copy of the job, if known.
func (s *jobStore) get(id string) (Job, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// list returns copies of all jobs, newest first (by creation time, then id).
func (s *jobStore) list() []Job {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].Created.Equal(out[k].Created) {
			return out[i].Created.After(out[k].Created)
		}
		return out[i].ID > out[k].ID
	})
	return out
}

// summarize condenses a pipeline result.
func summarize(res *pipeline.Result, elapsed time.Duration) *StudySummary {
	funnel := res.Funnel
	sum := &StudySummary{
		Mode:             "pipeline",
		Seed:             res.Config.Seed,
		Scale:            res.Config.Scale,
		Funnel:           &funnel,
		Correlations:     res.Correlations,
		Table6:           make(map[string]CategoryCount, len(res.Table6)),
		ManualSampleSize: res.Manual.SampleSize,
		Elapsed:          elapsed.Round(time.Millisecond).String(),
	}
	for cat, e := range res.Table6 {
		sum.Table6[string(cat)] = CategoryCount{Snippets: e.Snippets, Contracts: e.Contracts}
	}
	return sum
}

// summarizeClone wraps a corpus-mode clone study report.
func summarizeClone(rep *service.CloneReport, elapsed time.Duration) *StudySummary {
	return &StudySummary{
		Mode:    "corpus",
		Clone:   rep,
		Elapsed: elapsed.Round(time.Millisecond).String(),
	}
}
