package api

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster"
)

// defaultTopClusters bounds the largest-cluster list attached to
// /v1/clusters and to corpus-study summaries.
const defaultTopClusters = 10

// clustersStaleMaxAge bounds how old the tier-3 stale-while-revalidate
// clusters snapshot may grow before a request recomputes it inline anyway.
const clustersStaleMaxAge = 5 * time.Second

// clustersCache is the stale-while-revalidate snapshot behind /v1/clusters.
// Under degradation tier 3 requests are served from the cached summary and
// top list (bounded age) while at most one background refresh recomputes it
// — the cluster walk is the endpoint's only expensive part, and shedding it
// from the request path is the last quality rung before admission starts
// shedding whole requests.
type clustersCache struct {
	mu         sync.Mutex
	at         time.Time // zero until first fill
	sum        cluster.Summary
	top        []cluster.Cluster // full set.Clusters(2,false) list, unsliced
	refreshing bool
}

// snapshot computes the live summary + top list and stores it in the cache.
func (c *clustersCache) snapshot(set *cluster.Set) (cluster.Summary, []cluster.Cluster) {
	sum := set.Summary()
	top := set.Clusters(2, false)
	c.mu.Lock()
	c.at = time.Now()
	c.sum = sum
	c.top = top
	c.mu.Unlock()
	return sum, top
}

// stale returns the cached snapshot when it is fresh enough to serve under
// tier 3. When the cache is usable but aging, it starts a single background
// refresh (single-flight: concurrent requests keep serving stale rather than
// piling onto the cluster walk).
func (c *clustersCache) stale(set *cluster.Set) (cluster.Summary, []cluster.Cluster, bool) {
	c.mu.Lock()
	if c.at.IsZero() || time.Since(c.at) > clustersStaleMaxAge {
		c.mu.Unlock()
		return cluster.Summary{}, nil, false
	}
	sum, top := c.sum, c.top
	refresh := !c.refreshing && time.Since(c.at) > clustersStaleMaxAge/2
	if refresh {
		c.refreshing = true
	}
	c.mu.Unlock()
	if refresh {
		go func() {
			c.snapshot(set)
			c.mu.Lock()
			c.refreshing = false
			c.mu.Unlock()
		}()
	}
	return sum, top, true
}

// ClustersResponse is the GET /v1/clusters payload: the live clone-cluster
// view the engine maintains as ingest lands. Enabled is false when the
// server runs without cluster tracking (serve -clusters=false); the exact
// distribution is always available through the /v1/study corpus mode.
type ClustersResponse struct {
	Enabled bool             `json:"enabled"`
	Summary *cluster.Summary `json:"summary,omitempty"`
	// Top lists the largest clusters (size descending, representative id
	// ascending), without members; ?top=N resizes it.
	Top []cluster.Cluster `json:"top,omitempty"`
	// Stale marks a response served from the tier-3 stale-while-revalidate
	// snapshot (bounded age) instead of a live cluster walk.
	Stale bool `json:"stale,omitempty"`
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	set := s.engine.Clusters()
	if set == nil {
		writeJSON(w, http.StatusOK, ClustersResponse{Enabled: false})
		return
	}
	topN := defaultTopClusters
	if v := r.URL.Query().Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "\"top\" must be a non-negative integer")
			return
		}
		topN = n
	}
	var (
		sum   cluster.Summary
		top   []cluster.Cluster
		stale bool
	)
	if s.engine.DegradeTier() >= 3 {
		sum, top, stale = s.clustersCache.stale(set)
	}
	if stale {
		s.engine.NoteClustersStale()
	} else {
		sum, top = s.clustersCache.snapshot(set)
	}
	resp := ClustersResponse{Enabled: true, Summary: &sum, Stale: stale}
	if topN > 0 {
		if len(top) > topN {
			top = top[:topN]
		}
		resp.Top = top
	}
	writeJSON(w, http.StatusOK, resp)
}

// clustersCursor is the resume position of a paginated clusters export: the
// min-size filter the export started with (pinned so every page filters
// identically) and the offset into the size-descending cluster list.
type clustersCursor struct {
	Min    int `json:"m"`
	Offset int `json:"o"`
}

// handleClustersExport streams the live clusters as NDJSON — one cluster
// per line with its sorted member list, size descending — ready for the
// paper's distribution tables. ?min=N keeps only clusters of at least N
// members (default 2; min=1 includes singletons).
//
// Without pagination parameters the whole distribution streams in one
// response (the original behavior). ?limit=N caps a page at N clusters and
// returns an opaque resume token in X-Next-Cursor (absent on the last
// page); pass it back as ?cursor= for the next page. Clustering advances
// under concurrent ingest, so pages are a best-effort walk of the live
// view, not a point-in-time snapshot.
func (s *Server) handleClustersExport(w http.ResponseWriter, r *http.Request) {
	set := s.engine.Clusters()
	if set == nil {
		writeError(w, http.StatusConflict, "cluster tracking not enabled (start serve with -clusters)")
		return
	}
	qp := r.URL.Query()
	minSize := 2
	if v := qp.Get("min"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "\"min\" must be a positive integer")
			return
		}
		minSize = n
	}
	limit := 0
	if v := qp.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "\"limit\" must be a positive integer")
			return
		}
		limit = n
	}
	offset := 0
	if v := qp.Get("cursor"); v != "" {
		var cur clustersCursor
		if err := decodeCursor(v, &cur); err != nil || cur.Offset < 0 || cur.Min < 1 {
			writeError(w, http.StatusBadRequest, "bad \"cursor\" (tokens come from X-Next-Cursor, opaque)")
			return
		}
		minSize, offset = cur.Min, cur.Offset
		if limit == 0 {
			limit = defaultExportPage
		}
	}

	clusters := set.Clusters(minSize, true)
	if offset > len(clusters) {
		offset = len(clusters)
	}
	page := clusters[offset:]
	if limit > 0 && len(page) > limit {
		page = page[:limit]
		w.Header().Set("X-Next-Cursor", encodeCursor(clustersCursor{Min: minSize, Offset: offset + limit}))
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, c := range page {
		if err := enc.Encode(c); err != nil {
			return // client gone mid-stream
		}
	}
	_ = bw.Flush()
}
