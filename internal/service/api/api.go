// Package api exposes the concurrent analysis engine over an HTTP JSON API:
// CCC vulnerability analysis (/v1/analyze), CCD fingerprinting
// (/v1/fingerprint), corpus ingest and clone matching (/v1/corpus,
// /v1/match), asynchronous full-study jobs (/v1/study), plus health and
// metrics endpoints. cmd/serve wires it to a listener.
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/ccc"
	"repro/internal/ccd"
	"repro/internal/index"
	"repro/internal/pipeline"
	"repro/internal/remote"
	"repro/internal/service"
	"repro/internal/trace"
)

// maxBodyBytes bounds request bodies (contracts are small; 8 MiB leaves
// room for large batches).
const maxBodyBytes = 8 << 20

// maxStudyScale caps the corpus scale an HTTP client may request; the full
// paper-size study (1.0) takes minutes of CPU.
const maxStudyScale = 1.0

// Server handles the JSON API around one engine.
type Server struct {
	engine *service.Engine
	store  *service.Store // nil when persistence is disabled
	jobs   *jobStore
	start  time.Time

	// mux is built once in NewServer so the endpoints map is complete
	// before the first request — reads are lock-free after that.
	mux       *http.ServeMux
	endpoints map[string]*endpointStats
	recorder  *trace.Recorder
	logger    *slog.Logger // nil disables request logging
	ready     func() bool  // readiness probe; defaults to the store's state

	// limiter is the per-client token-bucket (nil without WithRateLimit);
	// rateLimited counts requests it refused.
	limiter     *rateLimiter
	rateLimited atomic.Int64

	// maxDeadline clamps client-declared X-Request-Timeout budgets (0:
	// DefaultMaxDeadline; see WithMaxDeadline).
	maxDeadline time.Duration

	// clustersCache is the tier-3 stale-while-revalidate snapshot served by
	// /v1/clusters under full degradation (see handleClusters).
	clustersCache clustersCache

	// router puts the server in router mode (WithRouter): match and ingest
	// fan out to remote shard nodes instead of the local corpus.
	router *remote.Router
	// partRing/partIdx pin a shard node to its partition (WithPartition):
	// ingest refuses entries another partition owns. partRing nil =
	// unpartitioned.
	partRing *remote.Ring
	partIdx  int
}

// Option configures a Server.
type Option func(*Server)

// WithStore enables the persistence endpoints (/v1/corpus/snapshot) against
// the store backing the engine's corpus.
func WithStore(store *service.Store) Option {
	return func(s *Server) { s.store = store }
}

// WithLogger enables per-request structured logging (errors at Warn,
// everything else at Debug), each line carrying the request's trace id.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.logger = l }
}

// WithReadiness overrides the /readyz probe. Without it, readiness follows
// the store (not ready during boot replay or after a rollback-pending fsync
// failure), or is always true when persistence is disabled.
func WithReadiness(ready func() bool) Option {
	return func(s *Server) { s.ready = ready }
}

// WithRateLimit enables per-client token-bucket rate limiting on the /v1
// routes: each client (X-API-Key header, else remote address) accrues rps
// requests per second up to burst. Observability endpoints are exempt — a
// scrape or probe must work exactly when the limiter is busiest.
func WithRateLimit(rps float64, burst int) Option {
	return func(s *Server) {
		if rps > 0 {
			s.limiter = newRateLimiter(rps, burst)
		}
	}
}

// WithTraceBuffer sizes the completed-trace ring served at /debug/traces
// (recent capacity n, slowest-N retention slow). Zeroes keep the defaults.
func WithTraceBuffer(n, slow int) Option {
	return func(s *Server) { s.recorder = trace.NewRecorder(n, slow) }
}

// DefaultMaxDeadline is the ceiling applied to client-declared request
// budgets when WithMaxDeadline is not used.
const DefaultMaxDeadline = 30 * time.Second

// WithMaxDeadline clamps client-declared deadline budgets (X-Request-Timeout
// / ?timeout=): a client may always ask for less time, never more. d ≤ 0
// keeps DefaultMaxDeadline.
func WithMaxDeadline(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.maxDeadline = d
		}
	}
}

// NewServer returns a server around engine.
func NewServer(engine *service.Engine, opts ...Option) *Server {
	s := &Server{
		engine:    engine,
		jobs:      newJobStore(),
		start:     time.Now(),
		endpoints: make(map[string]*endpointStats),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.recorder == nil {
		s.recorder = trace.NewRecorder(0, 0)
	}
	if s.maxDeadline <= 0 {
		s.maxDeadline = DefaultMaxDeadline
	}
	if s.ready == nil {
		if st := s.store; st != nil {
			s.ready = st.Ready
		} else {
			s.ready = func() bool { return true }
		}
	}

	// /v1 routes sit behind the per-client rate limiter; the heavy POST
	// routes additionally pass the engine's bounded admission queue, and
	// ingest routes are guarded on store readiness. Order per request:
	// rate limit (cheapest, per-client fairness) → admission (global
	// overload) → writability → handler.
	mux := http.NewServeMux()
	s.traced(mux, "POST /v1/analyze", s.limited(s.admitted(s.handleAnalyze)))
	s.traced(mux, "POST /v1/fingerprint", s.limited(s.admitted(s.handleFingerprint)))
	s.traced(mux, "POST /v1/corpus", s.limited(s.admitted(s.writable(s.handleCorpusAdd))))
	s.traced(mux, "GET /v1/corpus", s.limited(s.handleCorpusInfo))
	s.traced(mux, "POST /v1/corpus/bulk", s.limited(s.admitted(s.writable(s.handleCorpusBulk))))
	s.traced(mux, "POST /v1/corpus/snapshot", s.limited(s.writable(s.handleCorpusSnapshot)))
	s.traced(mux, "GET /v1/corpus/export", s.limited(s.handleCorpusExport))
	s.traced(mux, "POST /v1/match", s.limited(s.admitted(s.handleMatch)))
	s.traced(mux, "POST /v1/study", s.limited(s.handleStudyStart))
	s.traced(mux, "GET /v1/study", s.limited(s.handleStudyList))
	s.traced(mux, "GET /v1/study/{id}", s.limited(s.handleStudyGet))
	s.traced(mux, "GET /v1/clusters", s.limited(s.handleClusters))
	s.traced(mux, "GET /v1/clusters/export", s.limited(s.handleClustersExport))
	// Multi-node plumbing: a shard node answers partition-local matches
	// (seeded with the router's shipped bound) and streams its WAL tail to
	// bootstrapping replicas. Routed on every node — harmless without
	// remote peers, and a single-process deployment can still be tailed.
	s.traced(mux, "POST /v1/shard/match", s.limited(s.admitted(s.handleShardMatch)))
	s.traced(mux, "GET /v1/wal/stream", s.limited(s.handleWALStream))
	// Observability endpoints are counted but untraced: a scrape must not
	// churn the trace ring it is reading.
	s.counted(mux, "GET /healthz", s.handleHealthz)
	s.counted(mux, "GET /readyz", s.handleReadyz)
	s.counted(mux, "GET /metrics", s.handleMetrics)
	s.counted(mux, "GET /debug/traces", s.handleDebugTraces)
	s.counted(mux, "GET /debug/traces/{id}", s.handleDebugTraceGet)
	s.mux = mux
	return s
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Recorder exposes the completed-trace ring (the debug listener and tests
// read it).
func (s *Server) Recorder() *trace.Recorder { return s.recorder }

// --- request/response shapes --------------------------------------------------

// AnalyzeRequest carries one source (Source) or a batch (Sources).
type AnalyzeRequest struct {
	Source  string   `json:"source,omitempty"`
	Sources []string `json:"sources,omitempty"`
}

// AnalyzeResult is the outcome for one source.
type AnalyzeResult struct {
	// Key is the content address of the source (cache identity).
	Key        string        `json:"key"`
	Findings   []ccc.Finding `json:"findings"`
	Categories []string      `json:"categories"`
	Truncated  bool          `json:"truncated,omitempty"`
	Error      string        `json:"error,omitempty"`
}

// AnalyzeResponse wraps batch results; single-source requests receive the
// lone AnalyzeResult object instead.
type AnalyzeResponse struct {
	Results []AnalyzeResult `json:"results"`
}

// FingerprintResponse is the /v1/fingerprint result.
type FingerprintResponse struct {
	Key             string `json:"key"`
	Fingerprint     string `json:"fingerprint"`
	SubFingerprints int    `json:"sub_fingerprints"`
	Error           string `json:"error,omitempty"`
}

// CorpusAddRequest bulk-adds documents to the serving corpus.
type CorpusAddRequest struct {
	Entries []CorpusEntry `json:"entries"`
}

// CorpusEntry is one document to index.
type CorpusEntry struct {
	ID     string `json:"id"`
	Source string `json:"source"`
}

// CorpusAddResponse reports a bulk ingest. Skipped counts entries a
// partition-pinned shard node refused because the consistent-hash ring
// assigns them to a different partition.
type CorpusAddResponse struct {
	Added      int `json:"added"`
	ParseIssue int `json:"parse_issues"` // indexed with partial fingerprints
	Skipped    int `json:"skipped,omitempty"`
	Size       int `json:"size"`
}

// MatchRequest matches one query — a source or a precomputed fingerprint —
// or a batch of them against a serving corpus. Limit keeps only the k
// best candidates per query (0 = all). Backend selects the similarity
// backend ("ccd", "ssdeep", "smartembed"; empty = ccd) and Explain attaches
// the per-stage pruning funnel to each result; both are also accepted as
// query parameters (?backend=...&explain=1), which win over the body.
type MatchRequest struct {
	Source      string `json:"source,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Sources / Fingerprints select the batch form: the response is a
	// MatchBatchResponse with one result per query, sources first.
	Sources      []string `json:"sources,omitempty"`
	Fingerprints []string `json:"fingerprints,omitempty"`
	Limit        int      `json:"limit,omitempty"`
	Backend      string   `json:"backend,omitempty"`
	Explain      bool     `json:"explain,omitempty"`
}

// Match is one clone candidate on the wire.
type Match struct {
	ID    string  `json:"id"`
	Score float64 `json:"score"`
}

// MatchExplain is the per-query pruning funnel attached by explain=1: how
// many candidates the backend's pre-filter produced, how many it abandoned
// in-filter, how many were fully scored, and how many the shared top-K
// admission bound cut short, plus the scatter-gather fan-out width.
type MatchExplain struct {
	Backend       string `json:"backend"`
	Shards        int    `json:"shards"`
	Limit         int    `json:"limit,omitempty"`
	Candidates    int    `json:"candidates"`
	FilterPruned  int    `json:"filter_pruned"`
	Scored        int    `json:"scored"`
	CutoffSkipped int    `json:"cutoff_skipped"`
	// Abandoned counts candidates never visited because the request's
	// deadline budget expired mid-scan.
	Abandoned int `json:"abandoned,omitempty"`
}

// MatchResponse lists clone candidates, best first. Partial is set when the
// matches cover less than the full corpus — a router-mode server with an
// unreachable partition, or a scan cut short by the request budget
// (degraded mode, not an error — availability over completeness).
type MatchResponse struct {
	Matches []Match `json:"matches"`
	Partial bool    `json:"partial,omitempty"`
	// Degraded lists the quality reductions applied to this response:
	// "deadline" (the budget expired mid-scan; Matches is a best-effort
	// partial top-K) and/or "limit" (pressure tier ≥ 1 halved the effective
	// top-K; see EffectiveLimit).
	Degraded []string `json:"degraded,omitempty"`
	// EffectiveLimit is the top-K actually served when degradation reduced
	// the requested limit.
	EffectiveLimit int           `json:"effective_limit,omitempty"`
	Explain        *MatchExplain `json:"explain,omitempty"`
	Error          string        `json:"error,omitempty"`
}

// MatchBatchResponse answers the batch form of /v1/match: one entry per
// query, in request order (sources before fingerprints).
type MatchBatchResponse struct {
	Results []MatchResponse `json:"results"`
}

// StudyRequest starts an asynchronous study run. Mode selects what the job
// computes: "pipeline" (the default) regenerates the paper's Figure 6
// snippet→contract pipeline at Scale, while "corpus" runs the corpus-wide
// clone study — posting-list self-join plus incremental clustering — over
// the live serving corpus of the selected backend. The corpus mode ignores
// Seed/Scale (it measures what is actually indexed) and accepts Limit, the
// per-document match cap (0 = exact join at the backend's ε).
type StudyRequest struct {
	Seed    int64   `json:"seed"`
	Scale   float64 `json:"scale"`
	Mode    string  `json:"mode,omitempty"`
	Backend string  `json:"backend,omitempty"`
	Limit   int     `json:"limit,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
	// TraceID correlates the failure with its trace at /debug/traces/{id}
	// and the server logs; present on traced routes.
	TraceID string `json:"trace_id,omitempty"`
	// RetryAfterSeconds mirrors the Retry-After header on shed (429) and
	// not-writable (503) responses, for clients that only read bodies.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// --- handlers -----------------------------------------------------------------

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if !decode(w, r, &req) {
		return
	}
	single := req.Source != "" && len(req.Sources) == 0
	srcs := req.Sources
	if single {
		srcs = []string{req.Source}
	}
	if len(srcs) == 0 {
		writeError(w, http.StatusBadRequest, "provide \"source\" or \"sources\"")
		return
	}
	results := make([]AnalyzeResult, len(srcs))
	for i, out := range s.engine.AnalyzeBatch(srcs) {
		results[i] = AnalyzeResult{
			Key:       string(service.ContentKey(srcs[i])),
			Findings:  out.Report.Findings,
			Truncated: out.Report.Truncated,
		}
		if results[i].Findings == nil {
			results[i].Findings = []ccc.Finding{}
		}
		results[i].Categories = []string{}
		for _, c := range out.Report.Categories() {
			results[i].Categories = append(results[i].Categories, string(c))
		}
		if out.Err != nil {
			results[i].Error = out.Err.Error()
		}
	}
	if single {
		writeJSON(w, http.StatusOK, results[0])
		return
	}
	writeJSON(w, http.StatusOK, AnalyzeResponse{Results: results})
}

func (s *Server) handleFingerprint(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Source == "" {
		writeError(w, http.StatusBadRequest, "provide \"source\"")
		return
	}
	var resp FingerprintResponse
	if err := s.engine.DoCtx(r.Context(), func() {
		fp, err := s.engine.Fingerprint(req.Source)
		resp = FingerprintResponse{
			Key:             string(service.ContentKey(req.Source)),
			Fingerprint:     string(fp),
			SubFingerprints: len(fp.Subs()),
		}
		if err != nil {
			resp.Error = err.Error()
		}
	}); err != nil {
		return // client gone while queued
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCorpusAdd(w http.ResponseWriter, r *http.Request) {
	var req CorpusAddRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Entries) == 0 {
		writeError(w, http.StatusBadRequest, "provide \"entries\"")
		return
	}
	for i, e := range req.Entries {
		if e.ID == "" {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("entry %d: missing id", i))
			return
		}
	}
	if s.router != nil {
		s.routerCorpusAdd(w, r, req)
		return
	}
	skipped := 0
	if s.partRing != nil {
		kept := req.Entries[:0]
		for _, e := range req.Entries {
			if s.ownsID(e.ID) {
				kept = append(kept, e)
			} else {
				skipped++
			}
		}
		req.Entries = kept
	}
	entries := make([]service.CorpusEntry, len(req.Entries))
	for i, e := range req.Entries {
		entries[i] = service.CorpusEntry{ID: e.ID, Source: e.Source}
	}
	issues := 0
	for _, err := range s.engine.CorpusAddBatchCtx(r.Context(), entries) {
		if errors.Is(err, service.ErrPersist) {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if err != nil {
			issues++
		}
	}
	writeJSON(w, http.StatusOK, CorpusAddResponse{
		Added:      len(entries),
		ParseIssue: issues,
		Skipped:    skipped,
		Size:       s.engine.Corpus().Len(),
	})
}

func (s *Server) handleCorpusInfo(w http.ResponseWriter, r *http.Request) {
	cfg := s.engine.Corpus().Config()
	backends := map[string]any{}
	for _, name := range s.engine.Backends() {
		c, err := s.engine.CorpusFor(name)
		if err != nil {
			continue
		}
		backends[name] = map[string]any{
			"size":   c.Len(),
			"shards": c.Shards(),
			"adds":   c.Adds(),
			"skips":  c.Skips(),
		}
	}
	info := map[string]any{
		"size":     s.engine.Corpus().Len(),
		"n":        cfg.N,
		"eta":      cfg.Eta,
		"epsilon":  cfg.Epsilon,
		"backends": backends,
	}
	if s.store != nil {
		info["persistence"] = s.store.Info()
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	var req MatchRequest
	if !decode(w, r, &req) {
		return
	}
	// Query parameters override the body: ?backend=ssdeep&explain=1.
	if qp := r.URL.Query(); qp.Has("backend") || qp.Has("explain") {
		if qp.Has("backend") {
			req.Backend = qp.Get("backend")
		}
		if v := qp.Get("explain"); v != "" {
			req.Explain = v == "1" || strings.EqualFold(v, "true")
		}
	}
	if req.Limit < 0 {
		writeError(w, http.StatusBadRequest, "\"limit\" must be ≥ 0")
		return
	}
	if s.router != nil {
		s.routerMatch(w, r, req)
		return
	}
	if _, err := s.engine.CorpusFor(req.Backend); err != nil {
		writeBackendError(w, err)
		return
	}
	batch := len(req.Sources) > 0 || len(req.Fingerprints) > 0
	if batch && (req.Source != "" || req.Fingerprint != "") {
		writeError(w, http.StatusBadRequest, "mix of single and batch fields: use either \"source\"/\"fingerprint\" or \"sources\"/\"fingerprints\"")
		return
	}
	ctx := r.Context() // a disconnected client cancels in-flight scatter-gather work
	if !batch {
		if req.Source == "" && req.Fingerprint == "" {
			writeError(w, http.StatusBadRequest, "provide \"source\" or \"fingerprint\"")
			return
		}
		var resp MatchResponse
		if err := s.engine.DoCtx(ctx, func() {
			resp = s.matchOne(ctx, req)
		}); err != nil {
			if service.DeadlineExpired(ctx) {
				// The budget was spent queueing: the scan never ran, but the
				// client is still listening — answer degraded-empty rather
				// than silently dropping the connection into a 504.
				writeJSON(w, http.StatusOK, MatchResponse{
					Matches: []Match{}, Partial: true, Degraded: []string{"deadline"},
				})
				return
			}
			return // client gone while queued; nobody is listening
		}
		if ctx.Err() != nil && !service.DeadlineExpired(ctx) {
			return // client hung up mid-scan
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	resp := MatchBatchResponse{Results: make([]MatchResponse, len(req.Sources)+len(req.Fingerprints))}
	// Source queries fan out through the pooled batch helper (fingerprinting
	// is the expensive part); precomputed fingerprints match inline on one
	// worker slot — the read path itself is lock-free and cheap.
	degradedEmpty := MatchResponse{Matches: []Match{}, Partial: true, Degraded: []string{"deadline"}}
	if len(req.Sources) > 0 {
		mss, stats, errs, ran, err := s.matchSources(ctx, req)
		if err != nil && !service.DeadlineExpired(ctx) {
			return // cancelled; client gone
		}
		for i := range resp.Results[:len(req.Sources)] {
			if ran[i] {
				resp.Results[i] = s.toMatchResponse(req, mss[i], stats[i], errs[i])
			} else {
				// Skipped by a mid-batch deadline expiry: marked degraded,
				// never a silent empty result.
				resp.Results[i] = degradedEmpty
			}
		}
	}
	if len(req.Fingerprints) > 0 {
		for i := range req.Fingerprints {
			resp.Results[len(req.Sources)+i] = degradedEmpty
		}
		if err := s.engine.DoCtx(ctx, func() {
			for i, fp := range req.Fingerprints {
				doc := index.Doc{FP: ccd.Fingerprint(fp)}
				ms, st, err := s.engine.MatchDoc(ctx, req.Backend, doc, req.Limit)
				if err != nil && !errors.Is(err, service.ErrBudgetExhausted) {
					return // only ctx errors reach here (backend pre-validated)
				}
				resp.Results[len(req.Sources)+i] = s.toMatchResponse(req, ms, st, err)
			}
		}); err != nil && !service.DeadlineExpired(ctx) {
			return
		}
	}
	if ctx.Err() != nil && !service.DeadlineExpired(ctx) {
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// matchSources runs the batch source form on the worker pool, collecting
// per-source stats for explain=1. ran marks queries that actually executed —
// a mid-batch deadline expiry leaves the tail undispatched.
func (s *Server) matchSources(ctx context.Context, req MatchRequest) ([][]ccd.Match, []ccd.MatchStats, []error, []bool, error) {
	mss := make([][]ccd.Match, len(req.Sources))
	stats := make([]ccd.MatchStats, len(req.Sources))
	errs := make([]error, len(req.Sources))
	ran := make([]bool, len(req.Sources))
	err := s.engine.MapCtx(ctx, len(req.Sources), func(i int) {
		mss[i], stats[i], errs[i] = s.engine.MatchSource(ctx, req.Backend, req.Sources[i], req.Limit)
		ran[i] = true
	})
	return mss, stats, errs, ran, err
}

// matchOne serves the single-query form of /v1/match, applying the tier-1
// degradation (halved effective limit) when the pressure ladder says so.
func (s *Server) matchOne(ctx context.Context, req MatchRequest) MatchResponse {
	limit, halved := s.effectiveLimit(req.Limit)
	var ms []ccd.Match
	var st ccd.MatchStats
	var err error
	if req.Source != "" {
		ms, st, err = s.engine.MatchSource(ctx, req.Backend, req.Source, limit)
	} else {
		ms, st, err = s.engine.MatchDoc(ctx, req.Backend, index.Doc{FP: ccd.Fingerprint(req.Fingerprint)}, limit)
	}
	resp := s.toMatchResponse(req, ms, st, err)
	if halved {
		resp.EffectiveLimit = limit
		resp.Degraded = append(resp.Degraded, "limit")
	}
	return resp
}

// effectiveLimit applies the tier-1 quality degradation: under pressure the
// requested top-K is halved, trading result depth for scan work. Unbounded
// requests (limit ≤ 1) pass through — there is no meaningful half.
func (s *Server) effectiveLimit(limit int) (int, bool) {
	if limit > 1 && s.engine.DegradeTier() >= 1 {
		s.engine.NoteLimitHalved()
		return limit / 2, true
	}
	return limit, false
}

func (s *Server) toMatchResponse(req MatchRequest, ms []ccd.Match, st ccd.MatchStats, err error) MatchResponse {
	resp := MatchResponse{Matches: make([]Match, len(ms))}
	for i, m := range ms {
		resp.Matches[i] = Match{ID: m.ID, Score: m.Score}
	}
	if errors.Is(err, service.ErrBudgetExhausted) {
		// Time ran out mid-scan: the matches are a best-effort partial
		// top-K, served degraded rather than failed.
		resp.Partial = true
		resp.Degraded = append(resp.Degraded, "deadline")
		err = nil
	}
	if err != nil {
		resp.Error = err.Error()
	}
	if req.Explain {
		corpus, cerr := s.engine.CorpusFor(req.Backend)
		if cerr == nil {
			resp.Explain = &MatchExplain{
				Backend:       corpus.Backend(),
				Shards:        corpus.Shards(),
				Limit:         req.Limit,
				Candidates:    st.Candidates,
				FilterPruned:  st.FilterPruned,
				Scored:        st.Scored,
				CutoffSkipped: st.CutoffSkipped,
				Abandoned:     st.Abandoned,
			}
		}
	}
	return resp
}

// writeBackendError maps backend-routing failures: unknown names are client
// errors (400), known-but-not-loaded backends are a deployment state the
// client cannot fix in the request (409).
func writeBackendError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	if errors.Is(err, service.ErrBackendNotLoaded) {
		status = http.StatusConflict
	}
	writeError(w, status, err.Error())
}

func (s *Server) handleStudyStart(w http.ResponseWriter, r *http.Request) {
	var req StudyRequest
	if !decode(w, r, &req) {
		return
	}
	switch req.Mode {
	case "", "pipeline":
		s.startPipelineStudy(w, req)
	case "corpus":
		s.startCorpusStudy(w, req)
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown study mode %q (want \"pipeline\" or \"corpus\")", req.Mode))
	}
}

// startPipelineStudy launches the paper's Figure 6 pipeline regeneration.
func (s *Server) startPipelineStudy(w http.ResponseWriter, req StudyRequest) {
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.Scale <= 0 {
		req.Scale = 0.01
	}
	if req.Scale > maxStudyScale {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("scale %.3f exceeds maximum %.1f", req.Scale, maxStudyScale))
		return
	}
	job, ok := s.jobs.start(time.Now())
	if !ok {
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("%d study jobs already running; retry after one finishes", maxRunningJobs))
		return
	}
	// The job runs on a plain goroutine; the pipeline's internal fan-out
	// goes through the shared engine pool, so heavy study work still
	// competes fairly with interactive requests for worker slots.
	go func() {
		started := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.jobs.finish(job.ID, nil, fmt.Errorf("study panicked: %v", p))
			}
		}()
		cfg := pipeline.DefaultConfig()
		cfg.Seed = req.Seed
		cfg.Scale = req.Scale
		cfg.Engine = s.engine
		res := pipeline.Run(cfg)
		s.jobs.finish(job.ID, summarize(res, time.Since(started)), nil)
	}()
	writeJSON(w, http.StatusAccepted, job)
}

// startCorpusStudy launches the corpus-wide clone study over the serving
// corpus: the same asynchronous job machinery, but measuring what the
// service actually indexes instead of a regenerated throwaway corpus.
func (s *Server) startCorpusStudy(w http.ResponseWriter, req StudyRequest) {
	if req.Limit < 0 {
		writeError(w, http.StatusBadRequest, "\"limit\" must be ≥ 0")
		return
	}
	if s.router != nil {
		if req.Backend != "" && req.Backend != "ccd" {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("backend %q: router mode serves the default ccd backend", req.Backend))
			return
		}
	} else if _, err := s.engine.CorpusFor(req.Backend); err != nil {
		writeBackendError(w, err)
		return
	}
	job, ok := s.jobs.start(time.Now())
	if !ok {
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("%d study jobs already running; retry after one finishes", maxRunningJobs))
		return
	}
	go func() {
		started := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.jobs.finish(job.ID, nil, fmt.Errorf("corpus study panicked: %v", p))
			}
		}()
		// The study's per-document queries fan out through the engine pool
		// (same slots as interactive traffic) and, like pipeline jobs, run
		// to completion in the background. Embedders needing cancel/resume
		// drive service.SelfJoin directly via Engine.NewCloneStudy. In
		// router mode the documents stream in from the shard exports and
		// every query fans back out over the fleet.
		var rep *service.CloneReport
		var err error
		if s.router != nil {
			rep, err = s.routerCloneStudy(context.Background(), req.Limit, defaultTopClusters)
		} else {
			rep, err = s.engine.RunCloneStudy(context.Background(), req.Backend, req.Limit, defaultTopClusters)
		}
		if err != nil {
			s.jobs.finish(job.ID, nil, err)
			return
		}
		s.jobs.finish(job.ID, summarizeClone(rep, time.Since(started)), nil)
	}()
	writeJSON(w, http.StatusAccepted, job)
}

func (s *Server) handleStudyList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list()})
}

func (s *Server) handleStudyGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// ?ready=1 folds the readiness dimension into the liveness probe for
	// load balancers that only support one health URL.
	if v := r.URL.Query().Get("ready"); v == "1" || strings.EqualFold(v, "true") {
		s.handleReadyz(w, r)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"uptime": time.Since(s.start).Round(time.Millisecond).String(),
	})
}

// handleReadyz reports readiness: 200 when the serving corpus is durable and
// caught up, 503 while the WAL boot replay is still running or a failed
// group commit left a rollback pending.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready := s.ready()
	status := http.StatusOK
	state := "ok"
	if !ready {
		status = http.StatusServiceUnavailable
		state = "unavailable"
	}
	writeJSON(w, status, map[string]any{
		"status": state,
		"ready":  ready,
		"uptime": time.Since(s.start).Round(time.Millisecond).String(),
	})
}

// MetricsResponse is the /metrics JSON payload: engine load, cache hit rates
// and per-endpoint request stats.
type MetricsResponse struct {
	service.Snapshot
	// Endpoints maps route patterns ("POST /v1/match") to request counts,
	// status-class splits and latency summaries.
	Endpoints map[string]EndpointMetrics `json:"endpoints"`
	// HitRates flattens per-cache hit rates for dashboards.
	HitRates map[string]float64  `json:"cache_hit_rates"`
	Traces   trace.RecorderStats `json:"traces"`
	// RateLimited counts requests refused by the per-client token-bucket
	// limiter (0 when rate limiting is disabled).
	RateLimited int64  `json:"requests_ratelimited"`
	Uptime      string `json:"uptime"`
	// Remote reports the router's scatter-gather counters; absent on
	// single-process and shard nodes.
	Remote *RemoteMetrics `json:"remote,omitempty"`
}

// RemoteMetrics is the JSON /metrics view of the router's remote fanout:
// per-shard error counts, hedging and degradation tallies, and the
// candidates remote shards skipped thanks to the shipped admission bound.
type RemoteMetrics struct {
	Fanouts          int64                `json:"fanouts"`
	HedgedReads      int64                `json:"hedged_reads"`
	PartialResponses int64                `json:"partial_responses"`
	BoundShipSavings int64                `json:"bound_ship_savings"`
	ShardErrors      []int64              `json:"shard_errors"`
	FanoutLatency    service.LatencyStats `json:"fanout_latency"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.engine.Metrics()
	if wantsPrometheus(r.URL.Query().Get("format"), r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", prometheusContentType)
		_ = s.writePrometheus(w, snap, time.Since(s.start).Seconds())
		return
	}
	resp := MetricsResponse{
		Snapshot:  snap,
		Endpoints: s.endpointMetrics(),
		HitRates: map[string]float64{
			"parse":       snap.ParseCache.HitRate(),
			"report":      snap.ReportCache.HitRate(),
			"fingerprint": snap.FingerprintCache.HitRate(),
		},
		Traces:      s.recorder.Stats(),
		RateLimited: s.rateLimited.Load(),
		Uptime:      time.Since(s.start).Round(time.Millisecond).String(),
	}
	if s.router != nil {
		rs := s.router.Stats()
		resp.Remote = &RemoteMetrics{
			Fanouts:          rs.Fanouts,
			HedgedReads:      rs.Hedged,
			PartialResponses: rs.Partials,
			BoundShipSavings: rs.BoundShipSavings,
			ShardErrors:      rs.ShardErrors,
			FanoutLatency:    latencyStatsOf(s.router.FanoutHist()),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- plumbing -----------------------------------------------------------------

func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		status := http.StatusBadRequest
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeErrorRetry(w, status, msg, 0)
}

func writeErrorRetry(w http.ResponseWriter, status int, msg string, retryAfterSeconds int) {
	resp := errorResponse{Error: msg, RetryAfterSeconds: retryAfterSeconds}
	// Traced routes hand their handlers a *traceWriter; recover the trace
	// from it so every error payload carries its trace id and the trace
	// itself is marked errored (and thus retained by the recorder).
	if tw, ok := w.(*traceWriter); ok && tw.trace != nil {
		resp.TraceID = tw.trace.ID()
		tw.trace.SetError(fmt.Sprintf("%d: %s", status, msg))
	}
	writeJSON(w, status, resp)
}
