package api

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

// exactP99 is the ceil-rank p99 over raw client-side durations. The server's
// log₂ histogram buckets are too coarse (factor-of-2 resolution) to back a
// "within 2x" assertion; the raw samples are exact.
func exactP99(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (len(sorted)*99 + 99) / 100 // ceil(0.99 n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// latencyGrace absorbs scheduler noise when latencies sit near the clock's
// floor: at millisecond scale, "2x" comparisons are meaningless without it.
const latencyGrace = 25 * time.Millisecond

// TestOverloadShedsAndPinsAcceptedP99 is the PR's headline acceptance claim:
// under ~4x the admission capacity of concurrent offered load, the server
// sheds with 429 + Retry-After while the requests it does accept keep a p99
// within 2x of the uncontended p99 (plus the noise floor).
func TestOverloadShedsAndPinsAcceptedP99(t *testing.T) {
	ts, srv := newTestServerOpts(t, service.Options{
		Workers:      2,
		Shards:       4,
		CacheEntries: -1, // every request does real fingerprint work
		Admission:    service.AdmissionConfig{MaxQueue: 2},
	})
	if resp, _ := post(t, ts.URL+"/v1/corpus", map[string]any{"entries": []map[string]string{
		{"id": "victim-1", "source": reentrantSrc},
		{"id": "safe-1", "source": benignSrc},
	}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed status %d", resp.StatusCode)
	}

	// src returns a unique source per i so the disabled cache never short-
	// circuits the work.
	src := func(i int) string {
		return fmt.Sprintf("contract C%d {\n\tuint v;\n\tfunction f() public { v = v + %d; }\n}", i, i)
	}
	match := func(i int) (*http.Response, time.Duration) {
		t.Helper()
		start := time.Now()
		resp, _ := post(t, ts.URL+"/v1/match", map[string]any{"source": src(i)})
		return resp, time.Since(start)
	}

	// Uncontended baseline: sequential requests, exact client-side p99.
	var base []time.Duration
	for i := 0; i < 40; i++ {
		resp, d := match(i)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("uncontended request %d: status %d", i, resp.StatusCode)
		}
		base = append(base, d)
	}
	baseP99 := exactP99(base)

	// Overload: 16 concurrent closed-loop clients against capacity 4.
	const clients, perClient = 16, 8
	var mu sync.Mutex
	var accepted []time.Duration
	var shed int
	var shedRetryAfter []string
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, d := match(1000 + c*perClient + i)
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					accepted = append(accepted, d)
				case http.StatusTooManyRequests:
					shed++
					shedRetryAfter = append(shedRetryAfter, resp.Header.Get("Retry-After"))
				default:
					t.Errorf("unexpected status %d under overload", resp.StatusCode)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	if shed == 0 {
		t.Fatal("no requests shed at 4x admission capacity")
	}
	if len(accepted) == 0 {
		t.Fatal("every request shed: admission queue admitted nothing")
	}
	// Every shed response carries a sane Retry-After: delay-seconds in
	// [1, 30], matching Engine.RetryAfter's clamp.
	for _, ra := range shedRetryAfter {
		secs, err := strconv.Atoi(ra)
		if err != nil || secs < 1 || secs > 30 {
			t.Fatalf("shed response Retry-After %q, want integer seconds in [1, 30]", ra)
		}
	}
	// The accepted requests' p99 stays pinned: the bounded queue keeps at
	// most MaxQueue requests waiting, so accepted latency is bounded by a
	// small multiple of service time rather than growing with offered load.
	accP99 := exactP99(accepted)
	if limit := 2*baseP99 + latencyGrace; accP99 > limit {
		t.Errorf("accepted p99 %v exceeds 2x uncontended p99 %v (+%v grace)", accP99, baseP99, latencyGrace)
	}

	// The shed decisions are visible to operators.
	_, m := get(t, ts.URL+"/metrics")
	adm := m["admission"].(map[string]any)
	if adm["shed"].(float64) < float64(shed) {
		t.Errorf("metrics report %v sheds, observed %d", adm["shed"], shed)
	}
	if !adm["enabled"].(bool) {
		t.Error("admission not reported enabled")
	}
	_ = srv
}

// TestShedResponseShape pins the 429 body fields the golden harness cannot
// reach deterministically (admission sheds depend on concurrent timing).
func TestShedResponseShape(t *testing.T) {
	ts, _ := newTestServerOpts(t, service.Options{
		Workers:   1,
		Shards:    2,
		Admission: service.AdmissionConfig{MaxQueue: 1},
	})
	// Hold the admission queue full from the inside: two slow analyze
	// requests occupy capacity (workers 1 + queue 1 = 2).
	block := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
				slowBody(fmt.Sprintf(`{"source": "contract B%d { uint x; }"}`, i), block))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
		}(i)
	}
	// Wait until both requests are admitted (inflight visible in /metrics).
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, m := get(t, ts.URL+"/metrics")
		if m["admission"].(map[string]any)["inflight"].(float64) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			close(block)
			t.Fatal("admission queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := post(t, ts.URL+"/v1/match", map[string]any{"source": benignSrc})
	close(block)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d with a full admission queue, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After header")
	}
	if body["retry_after_seconds"].(float64) < 1 {
		t.Errorf("retry_after_seconds %v, want >= 1", body["retry_after_seconds"])
	}
	if body["trace_id"] == "" {
		t.Error("shed response missing trace_id")
	}
}

// slowBody yields a request body whose final byte arrives only when release
// closes, keeping the request in flight (admitted, inside the handler's
// decode) without any server-side hook.
func slowBody(payload string, release <-chan struct{}) *slowReader {
	return &slowReader{payload: []byte(payload), release: release}
}

type slowReader struct {
	payload []byte
	off     int
	release <-chan struct{}
}

func (r *slowReader) Read(p []byte) (int, error) {
	// Serve all but the last byte immediately; hold the last byte until
	// released so the server stays inside decode().
	if r.off < len(r.payload)-1 {
		n := copy(p, r.payload[r.off:len(r.payload)-1])
		r.off += n
		return n, nil
	}
	<-r.release
	if r.off < len(r.payload) {
		n := copy(p, r.payload[r.off:])
		r.off += n
		return n, nil
	}
	return 0, io.EOF
}

// TestRateLimiterRefillAcrossKeys drives the token bucket with a fake clock:
// one client draining its burst must not affect another, and tokens refill
// at the configured rate.
func TestRateLimiterRefillAcrossKeys(t *testing.T) {
	l := newRateLimiter(5, 10) // 5 tokens/s, burst 10
	now := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		if !l.allow("alice", now) {
			t.Fatalf("alice request %d refused within burst", i)
		}
	}
	if l.allow("alice", now) {
		t.Fatal("alice allowed past burst")
	}
	// A drained alice does not starve bob.
	for i := 0; i < 10; i++ {
		if !l.allow("bob", now) {
			t.Fatalf("bob request %d refused while alice drained", i)
		}
	}
	// 200ms at 5 rps refills exactly one token.
	now = now.Add(200 * time.Millisecond)
	if !l.allow("alice", now) {
		t.Fatal("alice not refilled after 200ms at 5 rps")
	}
	if l.allow("alice", now) {
		t.Fatal("alice got two tokens from one refill interval")
	}
	// Refill caps at burst, not beyond.
	now = now.Add(time.Hour)
	for i := 0; i < 10; i++ {
		if !l.allow("alice", now) {
			t.Fatalf("alice request %d refused after full refill", i)
		}
	}
	if l.allow("alice", now) {
		t.Fatal("burst cap exceeded after long idle")
	}
}

func TestRateLimiterEvictsStaleClients(t *testing.T) {
	l := newRateLimiter(1, 1)
	now := time.Unix(1000, 0)
	for i := 0; i < maxRateLimitClients; i++ {
		l.allow(fmt.Sprintf("client-%d", i), now)
	}
	// All existing buckets are stale once a full refill has elapsed; a new
	// client must evict rather than grow the map.
	now = now.Add(time.Minute)
	if !l.allow("newcomer", now) {
		t.Fatal("newcomer refused")
	}
	if n := len(l.buckets); n > maxRateLimitClients {
		t.Fatalf("bucket map grew to %d, cap %d", n, maxRateLimitClients)
	}
}

// TestRateLimitPerClientHTTP exercises the middleware end to end: clients
// are keyed by X-API-Key, limited independently, and observability routes
// stay exempt.
func TestRateLimitPerClientHTTP(t *testing.T) {
	eng := service.New(service.Options{Workers: 2, Shards: 2})
	s := NewServer(eng, WithRateLimit(0.01, 2)) // 2 requests, then ~100s refill
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	do := func(key string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/corpus", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-API-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	for i := 0; i < 2; i++ {
		if resp := do("alice"); resp.StatusCode != http.StatusOK {
			t.Fatalf("alice request %d: status %d", i, resp.StatusCode)
		}
	}
	limited := do("alice")
	if limited.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice over burst: status %d, want 429", limited.StatusCode)
	}
	if ra, err := strconv.Atoi(limited.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("rate-limited Retry-After %q, want positive integer seconds", limited.Header.Get("Retry-After"))
	}
	// A different key is a different bucket.
	if resp := do("bob"); resp.StatusCode != http.StatusOK {
		t.Fatalf("bob blocked by alice's limit: status %d", resp.StatusCode)
	}
	// Observability endpoints bypass the limiter — and report the refusals.
	_, m := get(t, ts.URL+"/metrics")
	if m["requests_ratelimited"].(float64) < 1 {
		t.Errorf("requests_ratelimited %v, want >= 1", m["requests_ratelimited"])
	}
}
