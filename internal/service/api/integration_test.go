package api

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/ccd"
	"repro/internal/service"
)

// studyFingerprints builds a deterministic 10k-document corpus of clone
// groups (long per-group bases, exact and one-edit members, interleaved
// ids) — the seeded corpus of the online≡offline acceptance test.
func studyFingerprints(seed int64, docs int) []ccd.Entry {
	rng := rand.New(rand.NewSource(seed))
	alphabet := []byte("QxRtYuIoPAbCdEfGhZvNmWqSjKl")
	entries := make([]ccd.Entry, 0, docs)
	for len(entries) < docs {
		base := make([]byte, 36+rng.Intn(12))
		for i := range base {
			base[i] = alphabet[rng.Intn(len(alphabet))]
		}
		size := 1 + rng.Intn(6)
		for m := 0; m < size && len(entries) < docs; m++ {
			fp := append([]byte(nil), base...)
			if m%3 == 1 {
				fp[rng.Intn(len(fp))] = alphabet[rng.Intn(len(alphabet))]
			}
			entries = append(entries, ccd.Entry{ID: fmt.Sprintf("doc-%05d", len(entries)), FP: ccd.Fingerprint(fp)})
		}
	}
	rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	return entries
}

// TestCorpusStudy10kOnlineEqualsOffline is the acceptance-criteria
// integration test: the corpus-wide study over a 10k-document seeded
// serving corpus, run online through POST /v1/study {"mode": "corpus"}
// (sharded scatter-gather, pooled fan-out, HTTP job machinery), produces a
// cluster-size distribution IDENTICAL to the offline single-shard self-join
// — the same implementation cmd/soddstudy -table study runs — at the same
// η/ε.
func TestCorpusStudy10kOnlineEqualsOffline(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-doc corpus study")
	}
	entries := studyFingerprints(29, 10_000)

	// Offline reference: the exact join cmd/soddstudy's study path performs
	// (experiments.CloneStudy without -service).
	offCorpus := service.NewCorpus(ccd.ConservativeConfig, 1)
	for _, e := range entries {
		if err := offCorpus.Add(e.ID, e.FP); err != nil {
			t.Fatal(err)
		}
	}
	offline, err := service.NewSelfJoin(offCorpus, offCorpus, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := offline.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	offRep := offline.Report(10)

	// Online: seed the serving corpus (sharded, cluster tracking on) and run
	// the study through the HTTP job API at the same η/ε.
	ts, srv := newTestServerOpts(t, service.Options{
		Workers: 4, Shards: 4, CCD: ccd.ConservativeConfig, TrackClusters: true,
	})
	for _, e := range entries {
		if err := srv.engine.CorpusAddFingerprint(e.ID, e.FP); err != nil {
			t.Fatal(err)
		}
	}
	resp, m := post(t, ts.URL+"/v1/study", map[string]any{"mode": "corpus"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("start: %d %v", resp.StatusCode, m)
	}
	id := m["id"].(string)
	deadline := time.Now().Add(3 * time.Minute)
	for {
		_, m = get(t, ts.URL+"/v1/study/"+id)
		if m["status"] == "done" {
			break
		}
		if m["status"] == "failed" {
			t.Fatalf("online study failed: %v", m["error"])
		}
		if time.Now().After(deadline) {
			t.Fatal("online study did not finish")
		}
		time.Sleep(50 * time.Millisecond)
	}
	clone := m["summary"].(map[string]any)["clone"].(map[string]any)

	// Identical parameters.
	if clone["eta"].(float64) != offRep.Eta || clone["epsilon"].(float64) != offRep.Epsilon {
		t.Fatalf("online η/ε %v/%v, offline %v/%v", clone["eta"], clone["epsilon"], offRep.Eta, offRep.Epsilon)
	}
	// Identical cluster-size distribution, member counts and largest
	// clusters.
	dist := clone["summary"].(map[string]any)
	for field, want := range map[string]int{
		"docs":       offRep.Summary.Docs,
		"clusters":   offRep.Summary.Clusters,
		"singletons": offRep.Summary.Singletons,
		"clustered":  offRep.Summary.Clustered,
		"largest":    offRep.Summary.Largest,
	} {
		if got := int(dist[field].(float64)); got != want {
			t.Errorf("online %s = %d, offline %d", field, got, want)
		}
	}
	gotSizes := map[int]int{}
	for sz, n := range dist["sizes"].(map[string]any) {
		var k int
		fmt.Sscanf(sz, "%d", &k)
		gotSizes[k] = int(n.(float64))
	}
	if !reflect.DeepEqual(gotSizes, offRep.Summary.Sizes) {
		t.Fatalf("online size histogram %v\noffline %v", gotSizes, offRep.Summary.Sizes)
	}
	var gotTop []struct {
		Rep  string
		Size int
	}
	for _, raw := range clone["top"].([]any) {
		c := raw.(map[string]any)
		gotTop = append(gotTop, struct {
			Rep  string
			Size int
		}{c["rep"].(string), int(c["size"].(float64))})
	}
	for i, want := range offRep.Top {
		if i >= len(gotTop) || gotTop[i].Rep != want.Rep || gotTop[i].Size != want.Size {
			t.Fatalf("online top clusters %v\noffline %v", gotTop, offRep.Top)
		}
	}

	// The live ingest-time cluster view agrees with the exact study on this
	// corpus (every member of a group matches the group's base at ε).
	_, cl := get(t, ts.URL+"/v1/clusters")
	live := cl["summary"].(map[string]any)
	if int(live["docs"].(float64)) != offRep.Summary.Docs {
		t.Errorf("live view docs %v, want %d", live["docs"], offRep.Summary.Docs)
	}
}
