package api

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/trace"
)

// endpointStats aggregates one route's requests for /metrics: a total
// counter, per-status-class counters and a latency histogram.
type endpointStats struct {
	count   atomic.Int64
	classes [6]atomic.Int64 // indexed status/100; [0] collects the implausible
	latency trace.Hist
}

func (st *endpointStats) observe(status int, d time.Duration) {
	st.count.Add(1)
	c := status / 100
	if c < 0 || c >= len(st.classes) {
		c = 0
	}
	st.classes[c].Add(1)
	st.latency.ObserveDuration(d)
}

// statusClasses maps class index to the label used in /metrics.
var statusClasses = [6]string{"other", "1xx", "2xx", "3xx", "4xx", "5xx"}

// traceWriter is the ResponseWriter handed to traced handlers. It captures
// the status code for the endpoint stats and carries the request's trace, so
// writeError can stamp the trace id into error payloads without every call
// site threading it through.
type traceWriter struct {
	http.ResponseWriter
	trace  *trace.Trace
	status int
}

func (tw *traceWriter) WriteHeader(code int) {
	if tw.status == 0 {
		tw.status = code
	}
	tw.ResponseWriter.WriteHeader(code)
}

func (tw *traceWriter) Write(b []byte) (int, error) {
	if tw.status == 0 {
		tw.status = http.StatusOK
	}
	return tw.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming endpoints (bulk
// ingest, NDJSON exports) keep working through the wrapper.
func (tw *traceWriter) Flush() {
	if f, ok := tw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// traced registers a route behind the tracing middleware: every request gets
// a trace (honoring an inbound X-Request-Id or W3C traceparent), its id is
// echoed in the X-Trace-Id response header, the root span is named after the
// route pattern, and the finished trace lands in the server's recorder.
func (s *Server) traced(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	st := &endpointStats{}
	s.endpoints[pattern] = st
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tr := trace.New(inboundTraceID(r))
		root := tr.StartRoot(pattern)
		w.Header().Set("X-Trace-Id", tr.ID())
		tw := &traceWriter{ResponseWriter: w, trace: tr}
		ctx := trace.ContextWithSpan(r.Context(), root)
		// Deadline budget: a client-declared X-Request-Timeout (or
		// ?timeout=) becomes both a context deadline — queue wait subtracts
		// from it implicitly — and a service.Budget value, so downstream
		// layers can tell "time ran out" (serve a degraded partial) from
		// "client hung up" (serve nothing).
		if d, ok := requestTimeout(r); ok {
			if s.maxDeadline > 0 && d > s.maxDeadline {
				d = s.maxDeadline
			}
			root.AnnotateInt("budget_ms", d.Milliseconds())
			deadline := time.Now().Add(d)
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, deadline)
			defer cancel()
			ctx = service.WithBudget(ctx, service.Budget{Deadline: deadline})
			s.engine.NoteBudgetRequest()
		}
		h(tw, r.WithContext(ctx))
		status := tw.status
		if status == 0 {
			// The handler wrote nothing — a cancelled client, typically.
			status = http.StatusOK
			if err := ctx.Err(); err != nil {
				if errors.Is(err, context.DeadlineExceeded) {
					// The budget ran out on a handler with nothing partial
					// to serve: an honest timeout, not a disconnect.
					writeError(tw, http.StatusGatewayTimeout, "request deadline exceeded")
					status = tw.status
				} else {
					status = statusClientClosedRequest
					tr.SetError(err.Error())
				}
			}
		}
		elapsed := time.Since(start)
		root.AnnotateInt("status", int64(status))
		root.End()
		tr.Finish()
		s.recorder.Record(tr)
		st.observe(status, elapsed)
		if s.logger != nil {
			lvl := slog.LevelDebug
			if status >= 400 {
				lvl = slog.LevelWarn
			}
			s.logger.LogAttrs(r.Context(), lvl, "request",
				slog.String("trace_id", tr.ID()),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", status),
				slog.Duration("elapsed", elapsed),
			)
		}
	})
}

// statusClientClosedRequest is nginx's conventional code for a client that
// disconnected before the response was written.
const statusClientClosedRequest = 499

// requestTimeout reads the client's declared deadline budget: the
// X-Request-Timeout header wins over the ?timeout= query parameter. Both
// accept a Go duration string ("50ms", "2s") or a bare integer of
// milliseconds. Unparsable or non-positive values are ignored — a garbled
// budget must not fail a request that would have succeeded without one.
func requestTimeout(r *http.Request) (time.Duration, bool) {
	v := strings.TrimSpace(r.Header.Get("X-Request-Timeout"))
	if v == "" {
		v = strings.TrimSpace(r.URL.Query().Get("timeout"))
	}
	if v == "" {
		return 0, false
	}
	if ms, err := strconv.ParseInt(v, 10, 64); err == nil {
		if ms <= 0 {
			return 0, false
		}
		return time.Duration(ms) * time.Millisecond, true
	}
	if d, err := time.ParseDuration(v); err == nil && d > 0 {
		return d, true
	}
	return 0, false
}

// counted registers a stats-only route: counted and timed per endpoint, but
// untraced — the observability endpoints themselves (metrics scrapes, health
// probes, trace reads) must not churn the trace ring they expose.
func (s *Server) counted(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	st := &endpointStats{}
	s.endpoints[pattern] = st
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tw := &traceWriter{ResponseWriter: w}
		h(tw, r)
		status := tw.status
		if status == 0 {
			status = http.StatusOK
		}
		st.observe(status, time.Since(start))
	})
}

// inboundTraceID extracts a caller-supplied trace id: X-Request-Id wins
// (verbatim, when it looks like a sane token), then the W3C traceparent's
// trace-id field. Empty means "generate one".
func inboundTraceID(r *http.Request) string {
	if v := strings.TrimSpace(r.Header.Get("X-Request-Id")); v != "" && len(v) <= 128 && isIDToken(v) {
		return v
	}
	return trace.ParseTraceparent(r.Header.Get("Traceparent"))
}

// isIDToken accepts the unreserved URI characters — enough for every request
// id scheme in the wild, and nothing that needs escaping in logs or JSON.
func isIDToken(v string) bool {
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == '~':
		default:
			return false
		}
	}
	return true
}

// EndpointMetrics is the JSON view of one route's request stats.
type EndpointMetrics struct {
	Count   int64                `json:"count"`
	ByClass map[string]int64     `json:"by_class,omitempty"`
	Latency service.LatencyStats `json:"latency"`
}

// endpointMetrics snapshots every registered route's stats.
func (s *Server) endpointMetrics() map[string]EndpointMetrics {
	out := make(map[string]EndpointMetrics, len(s.endpoints))
	for pattern, st := range s.endpoints {
		m := EndpointMetrics{
			Count:   st.count.Load(),
			Latency: latencyStatsOf(&st.latency),
		}
		for i := range st.classes {
			if n := st.classes[i].Load(); n > 0 {
				if m.ByClass == nil {
					m.ByClass = make(map[string]int64)
				}
				m.ByClass[statusClasses[i]] = n
			}
		}
		out[pattern] = m
	}
	return out
}

// latencyStatsOf mirrors the service package's histogram summary for the
// API-layer histograms.
func latencyStatsOf(h *trace.Hist) service.LatencyStats {
	hs := h.Snapshot()
	return service.LatencyStats{
		Count:    hs.Count,
		MeanUs:   hs.Mean(),
		P50Us:    hs.Quantile(0.50),
		P90Us:    hs.Quantile(0.90),
		P99Us:    hs.Quantile(0.99),
		MaxUs:    hs.Max,
		TotalSec: float64(hs.Sum) / 1e6,
		Buckets:  hs.Buckets,
	}
}
