package api

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
	"time"

	"repro/internal/ccd"
	"repro/internal/remote"
	"repro/internal/service"
)

// deadlineEpsilon is the slack the return-within-budget property allows on
// top of the declared budget: scheduling noise and the response round-trip,
// not scan time — the point of the budget spine is that scan time is cut off.
const deadlineEpsilon = 500 * time.Millisecond

// budgetMatchResponse is the wire shape the deadline properties assert on.
type budgetMatchResponse struct {
	Matches        []wireMatch `json:"matches"`
	Partial        bool        `json:"partial"`
	Degraded       []string    `json:"degraded"`
	EffectiveLimit int         `json:"effective_limit"`
}

func hasDegraded(resp budgetMatchResponse, reason string) bool {
	for _, d := range resp.Degraded {
		if d == reason {
			return true
		}
	}
	return false
}

// matchWithBudget posts one fingerprint match declaring an X-Request-Timeout
// budget, returning the decoded body (zero unless 200), status, and the
// client-observed latency.
func matchWithBudget(t *testing.T, base string, fp ccd.Fingerprint, k int, budget time.Duration) (budgetMatchResponse, int, time.Duration) {
	t.Helper()
	buf, _ := json.Marshal(map[string]any{"fingerprint": string(fp), "limit": k})
	req, err := http.NewRequest(http.MethodPost, base+"/v1/match", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Timeout", strconv.FormatInt(budget.Milliseconds(), 10))
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("match with %s budget: %v", budget, err)
	}
	defer resp.Body.Close()
	var out budgetMatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode budget match response: %v", err)
		}
	}
	return out, resp.StatusCode, elapsed
}

// assertBudgetContract pins the spine's two invariants for one response:
// the request returned within budget + epsilon, and budget expiry never
// produced an empty *unmarked* 200 — an empty result under a deadline must
// say "degraded": ["deadline"], and a deadline-degraded response must also
// be partial. (504 is the honest no-partial-results timeout; 429 is
// admission shedding; both are within contract.)
func assertBudgetContract(t *testing.T, label string, resp budgetMatchResponse, status int, elapsed, budget time.Duration) {
	t.Helper()
	if elapsed > budget+deadlineEpsilon {
		t.Fatalf("%s: returned in %s, over the %s budget + %s epsilon", label, elapsed, budget, deadlineEpsilon)
	}
	switch status {
	case http.StatusOK:
		if len(resp.Matches) == 0 && !hasDegraded(resp, "deadline") {
			t.Fatalf("%s: empty 200 without a deadline degradation marker: %+v", label, resp)
		}
		if hasDegraded(resp, "deadline") && !resp.Partial {
			t.Fatalf("%s: deadline-degraded response not marked partial: %+v", label, resp)
		}
	case http.StatusGatewayTimeout, http.StatusTooManyRequests:
	default:
		t.Fatalf("%s: status %d (want 200 degraded, 504 or 429)", label, status)
	}
}

// TestDeadlineMidScanLocal is the budget-expiry property on the local
// sharded corpus: across a sweep of budgets small enough to expire while
// queued or mid-scan, every response lands inside budget + epsilon and is
// either a degraded partial, a 504, or a shed — never a panic, never an
// empty unmarked 200. Every query is an ingested document's own
// fingerprint, so a scan that DID complete always has its self-match:
// emptiness is proof of truncation, which must be marked.
func TestDeadlineMidScanLocal(t *testing.T) {
	entries := studyFingerprints(17, 800)
	ts, srv := newTestServerOpts(t, service.Options{Workers: 2, Shards: 4, CCD: ccd.ConservativeConfig})
	for _, e := range entries {
		if err := srv.engine.CorpusAddFingerprint(e.ID, e.FP); err != nil {
			t.Fatal(err)
		}
	}

	budgets := []time.Duration{time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond}
	for qi := 0; qi < 20; qi++ {
		q := entries[qi*31%len(entries)]
		budget := budgets[qi%len(budgets)]
		resp, status, elapsed := matchWithBudget(t, ts.URL, q.FP, 3, budget)
		assertBudgetContract(t, q.ID, resp, status, elapsed, budget)
	}

	// A comfortable budget must not degrade anything: the spine only takes
	// quality when time actually runs out.
	q := entries[0]
	resp, status, elapsed := matchWithBudget(t, ts.URL, q.FP, 3, 10*time.Second)
	assertBudgetContract(t, "roomy", resp, status, elapsed, 10*time.Second)
	if status != http.StatusOK || len(resp.Degraded) != 0 || len(resp.Matches) == 0 {
		t.Fatalf("roomy budget degraded: status %d resp %+v", status, resp)
	}
}

// TestDeadlineMidScatterGatherDistributed runs the same property through a
// 3-shard in-process cluster: the router ships its remaining budget with
// every shard request (pinned via the shards' deadline.shipped counters),
// stragglers self-cancel, and the degraded-response semantics — partial +
// "deadline" marker — are identical to the local path's.
func TestDeadlineMidScatterGatherDistributed(t *testing.T) {
	entries := studyFingerprints(19, 600)
	c := newTestCluster(t, 3, remote.Config{Waves: 2})
	if br := c.ingestBulk(t, entries); br.Added != len(entries) {
		t.Fatalf("ingest: added %d of %d", br.Added, len(entries))
	}

	budgets := []time.Duration{time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
		20 * time.Millisecond, 100 * time.Millisecond}
	for qi := 0; qi < 25; qi++ {
		q := entries[qi*13%len(entries)]
		budget := budgets[qi%len(budgets)]
		resp, status, elapsed := matchWithBudget(t, c.router.URL, q.FP, 3, budget)
		assertBudgetContract(t, q.ID, resp, status, elapsed, budget)
	}

	// The shards must have observed shipped budgets: the router puts its
	// remaining budget in every shard request, so the counter being zero on
	// every shard would mean propagation stops at the network tier.
	var shipped int64
	for i, sh := range c.shards {
		var m struct {
			Deadline struct {
				Shipped int64 `json:"shipped"`
			} `json:"deadline"`
		}
		resp, err := http.Get(sh.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("shard %d metrics: %v", i, err)
		}
		resp.Body.Close()
		shipped += m.Deadline.Shipped
	}
	if shipped == 0 {
		t.Fatal("no shard observed a shipped budget (deadline.shipped == 0 fleet-wide)")
	}
}
