package api

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/ccd"
	"repro/internal/service"
)

// Bulk NDJSON ingest limits: one JSON document per line.
const (
	// maxBulkLineBytes bounds a single NDJSON line (one contract).
	maxBulkLineBytes = 1 << 20 // 1 MiB
	// bulkChunk is how many parsed lines are fanned out through the engine
	// at a time; bounded so a huge stream never materializes in memory.
	bulkChunk = 256
	// maxBulkErrors caps how many per-line error details are reported back.
	maxBulkErrors = 10
)

// BulkEntry is one NDJSON line of a /v1/corpus/bulk stream: an id plus
// either a source to fingerprint or a precomputed fingerprint (which wins
// when both are present).
type BulkEntry struct {
	ID          string `json:"id"`
	Source      string `json:"source,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// BulkResponse summarizes a streaming ingest.
type BulkResponse struct {
	// Added counts entries indexed AND journaled (including ones with parse
	// issues). On a persistence failure the response still carries the exact
	// count, so the client's accounting always agrees with what a WAL replay
	// will reproduce on boot.
	Added int `json:"added"`
	// ParseIssues counts entries indexed with partial fingerprints.
	ParseIssues int `json:"parse_issues"`
	// Malformed counts skipped lines (bad JSON, missing fields, oversized).
	Malformed int `json:"malformed"`
	// PersistFailures counts entries whose WAL append failed: they were NOT
	// acknowledged, are not in the corpus, and will not replay.
	PersistFailures int `json:"persist_failures,omitempty"`
	// Skipped counts entries a partition-pinned shard node refused because
	// the consistent-hash ring assigns them to another partition.
	Skipped int `json:"skipped,omitempty"`
	// Errors details the first few malformed lines.
	Errors []string `json:"errors,omitempty"`
	Size   int      `json:"size"`
	// Error carries the persistence failure that aborted the stream.
	Error string `json:"error,omitempty"`
}

// handleCorpusBulk streams NDJSON — {"id": ..., "source": ...} or
// {"id": ..., "fingerprint": ...} per line — into the serving corpus,
// fanning chunks out through the engine's worker pool. Malformed lines are
// skipped and counted; a persistence failure aborts the stream with 500
// (earlier chunks remain ingested: the stream is not transactional). The
// failure response still carries the per-entry accounting: a partially
// committed chunk reports exactly the entries that were journaled, never
// the whole chunk, so the response and a boot-time WAL replay agree.
func (s *Server) handleCorpusBulk(w http.ResponseWriter, r *http.Request) {
	if s.router != nil {
		s.routerBulk(w, r)
		return
	}
	var resp BulkResponse
	malformed := func(line int, msg string) {
		resp.Malformed++
		if len(resp.Errors) < maxBulkErrors {
			resp.Errors = append(resp.Errors, fmt.Sprintf("line %d: %s", line, msg))
		}
	}
	flush := func(chunk []service.CorpusEntry) error {
		var persistErr error
		for _, err := range s.engine.CorpusAddBatchCtx(r.Context(), chunk) {
			switch {
			case err == nil:
				resp.Added++
			case errors.Is(err, service.ErrPersist):
				resp.PersistFailures++
				persistErr = err
			default:
				resp.ParseIssues++
				resp.Added++ // indexed with a partial fingerprint
			}
		}
		return persistErr
	}

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), maxBulkLineBytes)
	chunk := make([]service.CorpusEntry, 0, bulkChunk)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e BulkEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			malformed(line, "bad JSON: "+err.Error())
			continue
		}
		if e.ID == "" {
			malformed(line, "missing id")
			continue
		}
		if e.Source == "" && e.Fingerprint == "" {
			malformed(line, "missing source or fingerprint")
			continue
		}
		if !s.ownsID(e.ID) {
			resp.Skipped++
			continue
		}
		chunk = append(chunk, service.CorpusEntry{
			ID:          e.ID,
			Source:      e.Source,
			Fingerprint: ccd.Fingerprint(e.Fingerprint),
		})
		if len(chunk) == bulkChunk {
			if err := flush(chunk); err != nil {
				abortBulk(w, &resp, s, err)
				return
			}
			chunk = chunk[:0]
		}
	}
	if err := sc.Err(); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("read stream at line %d: %s", line+1, err))
		return
	}
	if len(chunk) > 0 {
		if err := flush(chunk); err != nil {
			abortBulk(w, &resp, s, err)
			return
		}
	}
	resp.Size = s.engine.Corpus().Len()
	writeJSON(w, http.StatusOK, resp)
}

// abortBulk answers a persistence-failed bulk stream with 500 plus the exact
// accounting so far (entries journaled before the failure stay ingested).
func abortBulk(w http.ResponseWriter, resp *BulkResponse, s *Server, err error) {
	resp.Error = err.Error()
	resp.Size = s.engine.Corpus().Len()
	writeJSON(w, http.StatusInternalServerError, *resp)
}

// SnapshotResponse reports a /v1/corpus/snapshot call.
type SnapshotResponse struct {
	Path    string `json:"path"`
	Bytes   int64  `json:"bytes"`
	Entries int    `json:"entries"`
	Elapsed string `json:"elapsed"`
}

// handleCorpusSnapshot persists the corpus and truncates the WAL. Requires
// the server to run with persistence enabled (-corpus-dir).
func (s *Server) handleCorpusSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusConflict, "persistence not enabled (start serve with -corpus-dir)")
		return
	}
	info, err := s.store.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot: "+err.Error())
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{
		Path:    info.Path,
		Bytes:   info.Bytes,
		Entries: info.Entries,
		Elapsed: info.Elapsed.Round(time.Millisecond).String(),
	})
}

// handleCorpusExport streams the corpus in the binary snapshot format; the
// result feeds straight back into -corpus-dir (as corpus.snap) or another
// instance's restore. Works with or without persistence enabled.
//
// ?format=ndjson (or any ?cursor=) selects the paginated NDJSON form
// instead: pages of {"id", "fingerprint"} lines with an opaque resume token
// in the X-Next-Cursor response header (absent on the last page), bounded
// by ?limit= (default 10000). The router streams partition exports through
// this without unbounded responses. The cursor is positional over the
// id-sorted shard entries, so pages taken across concurrent ingest are a
// best-effort enumeration, not a point-in-time snapshot — bit-exact copies
// use the binary form.
func (s *Server) handleCorpusExport(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	if qp.Get("format") == "ndjson" || qp.Has("cursor") {
		s.handleCorpusExportNDJSON(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="corpus.snap"`)
	w.Header().Set("X-Corpus-Snapshot-Version", fmt.Sprint(service.CorpusSnapshotVersion))
	if err := s.engine.Corpus().WriteSnapshot(w); err != nil {
		// Headers are gone; all we can do is log-level truncation. The
		// per-shard CRCs make a truncated download detectable client-side.
		return
	}
}

// exportCursor is the resume position of a paginated NDJSON export: the
// next generation-shard and the offset into its id-sorted entry list.
type exportCursor struct {
	Shard  int `json:"s"`
	Offset int `json:"o"`
}

// defaultExportPage bounds one NDJSON export page when ?limit= is absent.
const defaultExportPage = 10000

// handleCorpusExportNDJSON serves one page of the cursor-paginated export.
// The page is gathered before any byte is written so the X-Next-Cursor
// header can precede the body.
func (s *Server) handleCorpusExportNDJSON(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	limit := defaultExportPage
	if v := qp.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "\"limit\" must be a positive integer")
			return
		}
		limit = n
	}
	var cur exportCursor
	if v := qp.Get("cursor"); v != "" {
		if err := decodeCursor(v, &cur); err != nil || cur.Shard < 0 || cur.Offset < 0 {
			writeError(w, http.StatusBadRequest, "bad \"cursor\" (tokens come from X-Next-Cursor, opaque)")
			return
		}
	}
	corpus := s.engine.Corpus()
	page := make([]BulkEntry, 0, min(limit, 4096))
	for cur.Shard < corpus.Shards() && len(page) < limit {
		entries, ok := corpus.ShardEntries(cur.Shard)
		if !ok {
			writeError(w, http.StatusConflict,
				fmt.Sprintf("backend %q cannot enumerate entries for NDJSON export", corpus.Backend()))
			return
		}
		if cur.Offset >= len(entries) {
			cur.Shard, cur.Offset = cur.Shard+1, 0
			continue
		}
		take := min(limit-len(page), len(entries)-cur.Offset)
		for _, e := range entries[cur.Offset : cur.Offset+take] {
			page = append(page, BulkEntry{ID: e.ID, Fingerprint: string(e.FP)})
		}
		cur.Offset += take
	}
	if cur.Shard < corpus.Shards() {
		w.Header().Set("X-Next-Cursor", encodeCursor(cur))
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range page {
		if err := enc.Encode(e); err != nil {
			return // client gone mid-stream
		}
	}
	_ = bw.Flush()
}
