package api

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/remote"
	"repro/internal/service"
	"repro/internal/trace"
)

// Prometheus text exposition (format version 0.0.4) for /metrics. Rendered
// by hand — the serving stack takes no dependencies — from the same
// snapshots the JSON view serializes. Metric names carry the ccd_ prefix;
// latency histograms are exposed in seconds (converted from the internal
// microsecond buckets), size histograms in raw units.

const prometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// wantsPrometheus decides the exposition format: an explicit
// ?format=prometheus wins, otherwise an Accept header asking for text/plain
// (the Prometheus scraper's default) selects text exposition. JSON stays the
// default for humans and the existing tooling.
func wantsPrometheus(format, accept string) bool {
	switch format {
	case "prometheus":
		return true
	case "":
		// Fall through to Accept-header negotiation.
	default:
		return false
	}
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		if mt == "text/plain" {
			return true
		}
	}
	return false
}

// promWriter accumulates exposition lines. Errors are sticky and surface at
// the end; a failed scrape write has no recovery beyond dropping the scrape.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// header emits the HELP/TYPE preamble for a metric family.
func (p *promWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// metric emits one sample line. labels is pre-rendered ("" or `key="val"`).
func (p *promWriter) metric(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	p.printf("%s%s %s\n", name, labels, formatFloat(v))
}

// counter and gauge emit a single-sample family with its preamble.
func (p *promWriter) counter(name, help string, v int64) {
	p.counterf(name, help, float64(v))
}

// counterf is counter for fractional totals (cumulative seconds).
func (p *promWriter) counterf(name, help string, v float64) {
	p.header(name, help, "counter")
	p.metric(name, "", v)
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	p.metric(name, "", v)
}

// formatFloat renders integral values without an exponent so counters read
// naturally, falling back to shortest-form for real fractions.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func label(k, v string) string { return k + `="` + escapeLabel(v) + `"` }

// histogram emits a full cumulative histogram family from the log₂ buckets.
// scale converts bucket upper bounds and the sum into exposition units
// (1e-6 for microsecond histograms → seconds, 1 for raw sizes).
func (p *promWriter) histogram(name, help, labels string, buckets [trace.HistBuckets]int64, count int64, sumScaled float64, scale float64) {
	p.header(name, help, "histogram")
	p.histogramSeries(name, labels, buckets, count, sumScaled, scale)
}

// histogramSeries emits one labeled series of an already-headed histogram
// family (per-endpoint latency shares a single HELP/TYPE preamble).
func (p *promWriter) histogramSeries(name, labels string, buckets [trace.HistBuckets]int64, count int64, sumScaled float64, scale float64) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i := range buckets {
		cum += buckets[i]
		le := formatFloat(float64(trace.BucketUpper(i)) * scale)
		p.metric(name+"_bucket", labels+sep+label("le", le), float64(cum))
	}
	// Overflow observations live above the last bucket: only +Inf covers
	// them, which is why +Inf must equal _count rather than the running sum.
	p.metric(name+"_bucket", labels+sep+`le="+Inf"`, float64(count))
	p.metric(name+"_sum", labels, sumScaled)
	p.metric(name+"_count", labels, float64(count))
}

// latencyHistogram renders a LatencyStats (µs buckets) in seconds.
func (p *promWriter) latencyHistogram(name, help, labels string, ls service.LatencyStats) {
	p.histogram(name, help, labels, ls.Buckets, ls.Count, ls.TotalSec, 1e-6)
}

// writePrometheus renders the full metrics surface as text exposition.
func (s *Server) writePrometheus(w io.Writer, snap service.Snapshot, uptimeSec float64) error {
	p := &promWriter{w: w}

	// Worker pool.
	p.gauge("ccd_workers", "Worker pool size.", float64(snap.Workers))
	p.gauge("ccd_busy_workers", "Worker slots currently held.", float64(snap.BusyWorkers))
	p.gauge("ccd_peak_busy_workers", "High-water mark of busy workers.", float64(snap.PeakBusyWorkers))
	p.gauge("ccd_saturation", "busy_workers / workers.", snap.Saturation)
	p.counter("ccd_tasks_executed_total", "Units of work executed by the pool.", snap.TasksExecuted)

	// Admission control and priority scheduling.
	adm := snap.Admission
	p.gauge("ccd_admission_capacity", "In-flight request bound (0 = admission control disabled).", float64(adm.Capacity))
	p.gauge("ccd_admission_inflight", "Admitted requests currently in flight.", float64(adm.Inflight))
	p.gauge("ccd_admission_interactive_waiting", "Interactive tasks waiting for a worker slot.", float64(adm.InteractiveWaiting))
	p.counter("ccd_requests_admitted_total", "Requests admitted past the bounded queue.", adm.Admitted)
	p.counter("ccd_requests_shed_total", "Requests shed with 429 by admission control.", adm.Shed)
	p.counter("ccd_background_yields_total", "Background tasks that parked for waiting interactive work.", adm.BackgroundYields)
	p.counter("ccd_requests_ratelimited_total", "Requests refused by the per-client rate limiter.", s.rateLimited.Load())

	// Operations.
	p.counter("ccd_analyses_total", "Analyze requests served.", snap.Analyses)
	p.counter("ccd_fingerprints_total", "Fingerprint computations.", snap.Fingerprints)
	p.counter("ccd_matches_total", "Match queries served.", snap.Matches)
	p.counter("ccd_corpus_adds_total", "Documents added to the serving corpus.", snap.CorpusAdds)

	// Corpus shape.
	p.gauge("ccd_corpus_size", "Documents in the serving corpus.", float64(snap.CorpusSize))
	p.gauge("ccd_corpus_segments", "Immutable segments across all shards.", float64(snap.CorpusSegments))
	p.counter("ccd_corpus_publishes_total", "Generation publishes.", snap.CorpusPublishes)
	p.counter("ccd_corpus_compactions_total", "Segment compactions.", snap.CorpusCompactions)

	// Per-shard scatter-gather.
	p.header("ccd_corpus_shard_docs", "Documents per generation-shard.", "gauge")
	for i, sh := range snap.CorpusShards {
		p.metric("ccd_corpus_shard_docs", label("shard", strconv.Itoa(i)), float64(sh.Size))
	}
	p.header("ccd_corpus_shard_scan_seconds_total", "Cumulative scan wall time per shard.", "counter")
	for i, sh := range snap.CorpusShards {
		p.metric("ccd_corpus_shard_scan_seconds_total", label("shard", strconv.Itoa(i)), float64(sh.ScanUs)/1e6)
	}

	// Match funnel + latency.
	p.counter("ccd_match_candidates_total", "Candidates surviving the n-gram pre-filter.", snap.MatchCandidates)
	p.counter("ccd_match_filter_pruned_total", "Candidates abandoned inside the pre-filter.", snap.MatchFilterPruned)
	p.counter("ccd_match_scored_total", "Candidates fully scored by Algorithm 1.", snap.MatchScored)
	p.counter("ccd_match_cutoff_skipped_total", "Candidates cut short by the top-K bound.", snap.MatchCutoffSkipped)
	p.latencyHistogram("ccd_match_latency_seconds", "Match service time.", "", snap.MatchLatency)

	// Durability (store attached only).
	if d := snap.Durability; d != nil {
		p.latencyHistogram("ccd_wal_fsync_seconds", "WAL group-commit fsync latency.", "", d.FsyncLatency)
		p.histogram("ccd_wal_group_commit_batch", "Records made durable per fsync.", "",
			d.GroupCommitBatch.Buckets, d.GroupCommitBatch.Count,
			d.GroupCommitBatch.Mean*float64(d.GroupCommitBatch.Count), 1)
		p.counter("ccd_wal_rollbacks_total", "Failed group-commit rollbacks.", d.Rollbacks)
		p.counter("ccd_wal_condemned_records_total", "Appended records condemned by rollbacks.", d.CondemnedRecords)
		p.latencyHistogram("ccd_snapshot_write_seconds", "Snapshot write duration.", "", d.SnapshotWrite)
		p.gauge("ccd_restore_seconds", "Boot-time snapshot restore + WAL replay wall time.", float64(d.RestoreUs)/1e6)
		p.gauge("ccd_wal_fsync_recent_p99_seconds", "Rolling-window fsync p99 (the backpressure signal; recovers, unlike the cumulative histogram).", float64(d.RecentFsyncP99Us)/1e6)
		p.counter("ccd_ingest_backpressure_delays_total", "Ingest acks slowed by durability backpressure.", d.BackpressureDelays)
		p.counterf("ccd_ingest_backpressure_delay_seconds_total", "Total ack delay injected by backpressure.", float64(d.BackpressureDelayUs)/1e6)
		engaged := 0.0
		if d.BackpressureEngaged {
			engaged = 1
		}
		p.gauge("ccd_ingest_backpressure_engaged", "1 while a freshly arriving ingest ack would be slowed.", engaged)
		ready := 0.0
		if d.Ready {
			ready = 1
		}
		p.gauge("ccd_ready", "1 when the store is serving and durable, 0 during replay or rollback.", ready)
	}

	// Remote fanout (router mode). Zero-valued on single-process and shard
	// nodes — the families render on every role so dashboards and the docs
	// table keep one schema.
	var rstats remote.Stats
	var fanoutLatency service.LatencyStats
	if s.router != nil {
		rstats = s.router.Stats()
		fanoutLatency = latencyStatsOf(s.router.FanoutHist())
	}
	p.counter("ccd_remote_fanouts_total", "Match queries fanned out to remote shard nodes.", rstats.Fanouts)
	p.latencyHistogram("ccd_remote_fanout_seconds", "End-to-end remote fanout latency (all waves, merged).", "", fanoutLatency)
	p.header("ccd_remote_shard_errors_total", "Failed requests per remote shard.", "counter")
	for i, n := range rstats.ShardErrors {
		p.metric("ccd_remote_shard_errors_total", label("shard", strconv.Itoa(i)), float64(n))
	}
	p.counter("ccd_remote_hedged_reads_total", "Queries raced against a replica after the shard's rolling p99 crossed the hedge threshold.", rstats.Hedged)
	p.counter("ccd_remote_partial_responses_total", "Degraded responses missing at least one partition.", rstats.Partials)
	p.counter("ccd_remote_bound_ship_savings_total", "Candidates remote shards pruned thanks to the shipped admission bound.", rstats.BoundShipSavings)

	// Deadline budget spine + quality-degradation ladder. Like the remote
	// families these render zero-valued on every role, so a fleet dashboard
	// can sum ccd_deadline_shipped_total over shard nodes without caring
	// which nodes ever received a shipped budget.
	dg := snap.Degrade
	p.gauge("ccd_degrade_tier", "Current quality-degradation tier (0 = full quality).", float64(dg.Tier))
	p.counter("ccd_degrade_tier_entered_total", "Degradation tier escalations since boot.", dg.TierEntered)
	p.counter("ccd_degrade_limit_halved_total", "Match requests served with a tier-1 halved effective limit.", dg.LimitHalved)
	p.counter("ccd_degrade_eta_raised_total", "Scans run with the tier-2 raised pre-filter bound.", dg.EtaRaised)
	p.counter("ccd_degrade_clusters_stale_total", "Cluster views served from the tier-3 stale snapshot.", dg.ClustersStale)
	dl := snap.Deadline
	p.counter("ccd_deadline_budget_requests_total", "Requests that declared a deadline budget.", dl.BudgetRequests)
	p.counter("ccd_deadline_expired_total", "Budgets that expired mid-request and were answered with a degraded partial.", dl.Expired)
	p.counter("ccd_deadline_shipped_total", "Shard requests that arrived with a router-shipped remaining budget.", dl.Shipped)

	// Self-join study funnel.
	sj := snap.SelfJoin
	p.counter("ccd_study_started_total", "Corpus-wide clone studies started.", sj.Started)
	p.counter("ccd_study_completed_total", "Studies completed.", sj.Completed)
	p.counter("ccd_study_cancelled_total", "Studies cancelled by the client.", sj.Cancelled)
	p.counter("ccd_study_failed_total", "Studies aborted by backend errors.", sj.Failed)
	p.counter("ccd_study_matches_total", "Clone pairs found across studies.", sj.Matches)

	// Caches.
	caches := []struct {
		name  string
		stats service.CacheStats
	}{
		{"parse", snap.ParseCache},
		{"report", snap.ReportCache},
		{"fingerprint", snap.FingerprintCache},
	}
	p.header("ccd_cache_hits_total", "Cache hits per layer.", "counter")
	for _, c := range caches {
		p.metric("ccd_cache_hits_total", label("cache", c.name), float64(c.stats.Hits))
	}
	p.header("ccd_cache_misses_total", "Cache misses per layer.", "counter")
	for _, c := range caches {
		p.metric("ccd_cache_misses_total", label("cache", c.name), float64(c.stats.Misses))
	}

	// Backends.
	backends := make([]string, 0, len(snap.Backends))
	for name := range snap.Backends {
		backends = append(backends, name)
	}
	sort.Strings(backends)
	p.header("ccd_backend_size", "Documents per similarity backend.", "gauge")
	for _, name := range backends {
		p.metric("ccd_backend_size", label("backend", name), float64(snap.Backends[name].Size))
	}

	// HTTP per-endpoint stats.
	patterns := make([]string, 0, len(s.endpoints))
	for pat := range s.endpoints {
		patterns = append(patterns, pat)
	}
	sort.Strings(patterns)
	p.header("ccd_http_requests_total", "Requests per route and status class.", "counter")
	for _, pat := range patterns {
		st := s.endpoints[pat]
		for i := range st.classes {
			if n := st.classes[i].Load(); n > 0 {
				p.metric("ccd_http_requests_total",
					label("endpoint", pat)+","+label("class", statusClasses[i]), float64(n))
			}
		}
	}
	if len(patterns) > 0 {
		p.header("ccd_http_request_duration_seconds", "Request duration per route.", "histogram")
		for _, pat := range patterns {
			ls := latencyStatsOf(&s.endpoints[pat].latency)
			p.histogramSeries("ccd_http_request_duration_seconds", label("endpoint", pat),
				ls.Buckets, ls.Count, ls.TotalSec, 1e-6)
		}
	}

	// Trace recorder.
	rs := s.recorder.Stats()
	p.counter("ccd_traces_recorded_total", "Traces recorded.", rs.Recorded)
	p.counter("ccd_traces_errored_total", "Errored traces recorded.", rs.Errored)

	p.gauge("ccd_uptime_seconds", "Process uptime.", uptimeSec)
	return p.err
}
