package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ccd"
	"repro/internal/remote"
	"repro/internal/service"
)

// cluster is a full in-process multi-node topology: N partition-pinned shard
// servers plus one router server fanning out over them.
type testCluster struct {
	router   *httptest.Server
	shards   []*httptest.Server
	shardSrv []*Server
}

func newTestCluster(t *testing.T, n int, cfg remote.Config) *testCluster {
	t.Helper()
	c := &testCluster{}
	for i := 0; i < n; i++ {
		engine := service.New(service.Options{Workers: 2, Shards: 2, CCD: ccd.ConservativeConfig})
		srv := NewServer(engine, WithPartition(i, n))
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		c.shards = append(c.shards, ts)
		c.shardSrv = append(c.shardSrv, srv)
		cfg.Targets = append(cfg.Targets, ts.URL)
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = ccd.ConservativeConfig.Epsilon
	}
	router := remote.NewRouter(cfg)
	rsrv := NewServer(service.New(service.Options{Workers: 2, CCD: ccd.ConservativeConfig}), WithRouter(router))
	c.router = httptest.NewServer(rsrv.Handler())
	t.Cleanup(c.router.Close)
	return c
}

// ingestBulk streams fingerprints through the router's NDJSON bulk route,
// which groups lines by ring owner and ships each group to its shard.
func (c *testCluster) ingestBulk(t *testing.T, entries []ccd.Entry) BulkResponse {
	t.Helper()
	var sb strings.Builder
	for _, e := range entries {
		line, _ := json.Marshal(BulkEntry{ID: e.ID, Fingerprint: string(e.FP)})
		sb.Write(line)
		sb.WriteByte('\n')
	}
	resp, err := http.Post(c.router.URL+"/v1/corpus/bulk", "application/x-ndjson", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk through router: status %d", resp.StatusCode)
	}
	var br BulkResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	return br
}

type wireMatch struct {
	ID    string
	Score float64
}

type wireMatchResponse struct {
	Matches []wireMatch `json:"matches"`
	Partial bool        `json:"partial"`
}

func matchFP(t *testing.T, base string, fp ccd.Fingerprint, k int) (wireMatchResponse, *http.Response) {
	t.Helper()
	buf, _ := json.Marshal(map[string]any{"fingerprint": string(fp), "limit": k})
	resp, err := http.Post(base+"/v1/match", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out wireMatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out, resp
}

// TestDistributedMatchEqualsSingleProcess is the partition-equivalence
// property test: the router's scatter-gather over partition-pinned shard
// nodes must return exactly the single-process MatchTopK answer — same ids,
// same scores, same order — across k sweeps. This is the correctness
// contract that lets the shipped admission bound prune remotely: the k-th
// best of any subset never exceeds the global k-th score.
func TestDistributedMatchEqualsSingleProcess(t *testing.T) {
	entries := studyFingerprints(11, 600)
	c := newTestCluster(t, 3, remote.Config{Waves: 2})
	if br := c.ingestBulk(t, entries); br.Added != len(entries) || br.Skipped != 0 {
		t.Fatalf("router bulk: added %d skipped %d of %d", br.Added, br.Skipped, len(entries))
	}

	single, singleSrv := newTestServerOpts(t, service.Options{Workers: 2, Shards: 4, CCD: ccd.ConservativeConfig})
	for _, e := range entries {
		if err := singleSrv.engine.CorpusAddFingerprint(e.ID, e.FP); err != nil {
			t.Fatal(err)
		}
	}

	for qi := 0; qi < 25; qi++ {
		q := entries[qi*17%len(entries)]
		for _, k := range []int{1, 2, 3, 5, 10} {
			want, _ := matchFP(t, single.URL, q.FP, k)
			got, _ := matchFP(t, c.router.URL, q.FP, k)
			if got.Partial {
				t.Fatalf("unexpected partial (q=%s k=%d)", q.ID, k)
			}
			if !reflect.DeepEqual(got.Matches, want.Matches) {
				t.Fatalf("distributed != single-process for q=%s k=%d:\n got %+v\nwant %+v",
					q.ID, k, got.Matches, want.Matches)
			}
		}
	}
}

func TestDistributedKillOneShardDegrades(t *testing.T) {
	entries := studyFingerprints(13, 300)
	c := newTestCluster(t, 3, remote.Config{})
	c.ingestBulk(t, entries)

	q := entries[0]
	before, resp := matchFP(t, c.router.URL, q.FP, 5)
	if resp.StatusCode != http.StatusOK || before.Partial {
		t.Fatalf("healthy cluster: status %d partial %v", resp.StatusCode, before.Partial)
	}

	c.shards[1].Close() // kill one partition
	after, resp := matchFP(t, c.router.URL, q.FP, 5)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded match: status %d", resp.StatusCode)
	}
	if !after.Partial {
		t.Fatal(`killed shard must surface as "partial": true`)
	}
	if len(after.Matches) == 0 {
		t.Fatal("surviving partitions returned nothing")
	}
	for _, m := range after.Matches {
		if !containsMatch(before.Matches, m) {
			t.Errorf("degraded answer invented match %+v", m)
		}
	}
}

func containsMatch(ms []wireMatch, m wireMatch) bool {
	for _, x := range ms {
		if x == m {
			return true
		}
	}
	return false
}

// TestRouterPropagatesShardRetryAfter pins the overload contract end to end
// over HTTP: a shard's 429 + Retry-After surfaces verbatim from the router,
// not as a generic 502.
func TestRouterPropagatesShardRetryAfter(t *testing.T) {
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "9")
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(map[string]any{"error": "shard overloaded"})
	}))
	t.Cleanup(busy.Close)

	router := remote.NewRouter(remote.Config{Targets: []string{busy.URL}})
	rsrv := NewServer(service.New(service.Options{Workers: 2}), WithRouter(router))
	ts := httptest.NewServer(rsrv.Handler())
	t.Cleanup(ts.Close)

	_, resp := matchFP(t, ts.URL, "abcdefgh", 1)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("router answered %d, want 429 passed through", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "9" {
		t.Fatalf("Retry-After = %q, want the shard's own %q", ra, "9")
	}
}

func TestShardPartitionFilterSkipsForeignIDs(t *testing.T) {
	engine := service.New(service.Options{Workers: 2})
	srv := NewServer(engine, WithPartition(0, 3))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	ring := remote.NewRing(3)
	var mine, foreign string
	for i := 0; mine == "" || foreign == ""; i++ {
		id := fmt.Sprintf("doc-%d", i)
		if ring.Owner(id) == 0 {
			mine = id
		} else if foreign == "" {
			foreign = id
		}
	}
	resp, m := post(t, ts.URL+"/v1/corpus", map[string]any{"entries": []map[string]string{
		{"id": mine, "source": benignSrc},
		{"id": foreign, "source": benignSrc},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, m)
	}
	if int(m["added"].(float64)) != 1 || int(m["skipped"].(float64)) != 1 {
		t.Fatalf("added=%v skipped=%v, want 1/1 (partition filter)", m["added"], m["skipped"])
	}
	if engine.Corpus().Len() != 1 {
		t.Fatalf("corpus len %d, want only the owned doc", engine.Corpus().Len())
	}
}

func TestWALStreamEndpoint(t *testing.T) {
	engine := service.New(service.Options{Workers: 2})
	store, err := service.OpenStore(t.TempDir(), engine.Corpus())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	ts := httptest.NewServer(NewServer(engine, WithStore(store)).Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 5; i++ {
		if err := engine.CorpusAddFingerprint(fmt.Sprintf("w-%d", i), ccd.Fingerprint(strings.Repeat("Ab", 10+i))); err != nil {
			t.Fatal(err)
		}
	}

	fetch := func(q string) (*http.Response, []remote.WALRecord) {
		resp, err := http.Get(ts.URL + "/v1/wal/stream" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var recs []remote.WALRecord
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if len(sc.Bytes()) == 0 {
				continue
			}
			var rec remote.WALRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
			}
			recs = append(recs, rec)
		}
		return resp, recs
	}

	resp, recs := fetch("?from=0")
	if resp.StatusCode != http.StatusOK || len(recs) != 5 {
		t.Fatalf("full stream: status %d, %d records", resp.StatusCode, len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != i {
			t.Fatalf("record %d has seq %d; positions are the sequence numbers", i, rec.Seq)
		}
	}
	epoch := resp.Header.Get("X-WAL-Epoch")
	if epoch == "" || epoch == "0" {
		t.Fatalf("stream did not name its WAL generation: X-WAL-Epoch=%q", epoch)
	}

	resp, recs = fetch("?from=3&limit=1&epoch=" + epoch)
	if resp.StatusCode != http.StatusOK || len(recs) != 1 || recs[0].Seq != 3 {
		t.Fatalf("windowed stream: status %d recs %+v", resp.StatusCode, recs)
	}
	if resp.Header.Get("X-WAL-More") != "1" || resp.Header.Get("X-WAL-Next") != "4" {
		t.Fatalf("cut page must advertise more: X-WAL-More=%q X-WAL-Next=%q",
			resp.Header.Get("X-WAL-More"), resp.Header.Get("X-WAL-Next"))
	}

	// Caught up: an empty 200 page, not an error.
	resp, recs = fetch("?from=5&epoch=" + epoch)
	if resp.StatusCode != http.StatusOK || len(recs) != 0 {
		t.Fatalf("caught-up stream: status %d, %d records", resp.StatusCode, len(recs))
	}
	if resp.Header.Get("X-WAL-More") == "1" {
		t.Fatal("caught-up page claims more records")
	}

	// Past the end of the log without an epoch: positional 410.
	resp, _ = fetch("?from=6")
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("past-end stream: status %d, want 410 Gone", resp.StatusCode)
	}

	// The divergence trap: snapshot truncates the WAL, then MORE records than
	// the replica's position land in the new log. Positionally from=3 fits
	// inside the new log — but those are different records, and silently
	// serving them would skip the new log's records 0..2 forever. The epoch
	// echo must force a 410 regardless of position.
	if _, err := store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 12; i++ {
		if err := engine.CorpusAddFingerprint(fmt.Sprintf("w-%d", i), ccd.Fingerprint(strings.Repeat("Cd", 10+i))); err != nil {
			t.Fatal(err)
		}
	}
	resp, _ = fetch("?from=3&epoch=" + epoch)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stale epoch at a positionally-valid offset: status %d, want 410 Gone", resp.StatusCode)
	}

	// A fresh epoch-less read sees the new generation's records from 0.
	resp, recs = fetch("?from=0")
	if resp.StatusCode != http.StatusOK || len(recs) != 7 {
		t.Fatalf("new-generation stream: status %d, %d records", resp.StatusCode, len(recs))
	}
	if got := resp.Header.Get("X-WAL-Epoch"); got == epoch {
		t.Fatalf("WAL generation did not change across a snapshot truncation (still %s)", got)
	}
}

func TestCorpusExportCursorPagination(t *testing.T) {
	ts, srv := newTestServerOpts(t, service.Options{Workers: 2, Shards: 4})
	want := map[string]string{}
	for i := 0; i < 57; i++ {
		id := fmt.Sprintf("e-%02d", i)
		fp := ccd.Fingerprint(strings.Repeat("Zy", 8+i%7))
		if err := srv.engine.CorpusAddFingerprint(id, fp); err != nil {
			t.Fatal(err)
		}
		want[id] = string(fp)
	}

	got := map[string]string{}
	cursor, pages := "", 0
	for {
		url := ts.URL + "/v1/corpus/export?format=ndjson&limit=10"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page %d: status %d", pages, resp.StatusCode)
		}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var e BulkEntry
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				t.Fatal(err)
			}
			if _, dup := got[e.ID]; dup {
				t.Fatalf("id %q appeared twice across pages", e.ID)
			}
			got[e.ID] = e.Fingerprint
		}
		cursor = resp.Header.Get("X-Next-Cursor")
		resp.Body.Close()
		pages++
		if cursor == "" {
			break
		}
		if pages > 20 {
			t.Fatal("cursor never terminated")
		}
	}
	if pages < 6 {
		t.Fatalf("57 entries at limit=10 walked only %d pages", pages)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("paginated export diverged: got %d entries, want %d", len(got), len(want))
	}

	resp, err := http.Get(ts.URL + "/v1/corpus/export?cursor=not.a.cursor")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage cursor: status %d, want 400", resp.StatusCode)
	}
}

func TestClustersExportCursorPagination(t *testing.T) {
	ts, srv := newTestServerOpts(t, service.Options{Workers: 2, Shards: 2, TrackClusters: true})
	// Three clone groups of different sizes; identical fingerprints cluster.
	for g, size := range []int{4, 3, 2} {
		fp := ccd.Fingerprint(strings.Repeat(fmt.Sprintf("Qw%dEr", g), 6))
		for m := 0; m < size; m++ {
			if err := srv.engine.CorpusAddFingerprint(fmt.Sprintf("g%d-m%d", g, m), fp); err != nil {
				t.Fatal(err)
			}
		}
	}

	full := exportClusterIDs(t, ts.URL+"/v1/clusters/export?min=2")
	if len(full) < 3 {
		t.Fatalf("expected at least 3 clusters unpaginated, got %d", len(full))
	}

	var paged []string
	cursor, pages := "", 0
	for {
		url := ts.URL + "/v1/clusters/export?min=2&limit=1"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		ids := decodeClusterIDs(t, resp)
		paged = append(paged, ids...)
		cursor = resp.Header.Get("X-Next-Cursor")
		pages++
		if cursor == "" {
			break
		}
		if pages > 10 {
			t.Fatal("cluster cursor never terminated")
		}
	}
	if pages < 3 {
		t.Fatalf("limit=1 over %d clusters walked only %d pages", len(full), pages)
	}
	if !reflect.DeepEqual(paged, full) {
		t.Fatalf("paginated clusters %v != streamed %v", paged, full)
	}
}

func exportClusterIDs(t *testing.T, url string) []string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return decodeClusterIDs(t, resp)
}

func decodeClusterIDs(t *testing.T, resp *http.Response) []string {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clusters export: status %d", resp.StatusCode)
	}
	var ids []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var c struct {
			Rep string `json:"rep"`
		}
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, c.Rep)
	}
	return ids
}
