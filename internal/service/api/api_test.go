package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/index"
	"repro/internal/service"
)

const (
	reentrantSrc = `contract Victim {
	mapping(address => uint) balances;
	function withdraw() public {
		msg.sender.call{value: balances[msg.sender]}("");
		balances[msg.sender] = 0;
	}
}`
	benignSrc = `contract Safe {
	uint total;
	function deposit(uint amount) public {
		total = total + 1;
	}
}`
)

// newTestServer runs every registered backend with a pinned shard count and
// live cluster tracking, so responses (including the golden fixtures) are
// machine-independent.
func newTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	return newTestServerOpts(t, service.Options{Workers: 4, Shards: 4, Backends: index.Names(), TrackClusters: true})
}

// newCCDOnlyServer runs with just the default backend (the
// backend-not-loaded error shape).
func newCCDOnlyServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	return newTestServerOpts(t, service.Options{Workers: 4, Shards: 4})
}

func newTestServerOpts(t *testing.T, opts service.Options) (*httptest.Server, *Server) {
	t.Helper()
	s := NewServer(service.New(opts))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

func post(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func get(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return m
}

func TestHandlersTableDriven(t *testing.T) {
	ts, _ := newTestServer(t)
	tests := []struct {
		name       string
		method     string
		path       string
		body       any
		wantStatus int
		check      func(t *testing.T, m map[string]any)
	}{
		{
			name: "analyze single vulnerable", method: "POST", path: "/v1/analyze",
			body:       map[string]any{"source": reentrantSrc},
			wantStatus: 200,
			check: func(t *testing.T, m map[string]any) {
				if len(m["findings"].([]any)) == 0 {
					t.Error("expected findings")
				}
				cats := m["categories"].([]any)
				found := false
				for _, c := range cats {
					if c == "Reentrancy" {
						found = true
					}
				}
				if !found {
					t.Errorf("categories missing Reentrancy: %v", cats)
				}
				if m["key"] == "" {
					t.Error("missing content key")
				}
			},
		},
		{
			name: "analyze single benign", method: "POST", path: "/v1/analyze",
			body:       map[string]any{"source": benignSrc},
			wantStatus: 200,
			check: func(t *testing.T, m map[string]any) {
				if n := len(m["findings"].([]any)); n != 0 {
					t.Errorf("benign source produced %d findings", n)
				}
			},
		},
		{
			name: "analyze batch", method: "POST", path: "/v1/analyze",
			body:       map[string]any{"sources": []string{reentrantSrc, benignSrc}},
			wantStatus: 200,
			check: func(t *testing.T, m map[string]any) {
				results := m["results"].([]any)
				if len(results) != 2 {
					t.Fatalf("results: %d", len(results))
				}
				first := results[0].(map[string]any)
				second := results[1].(map[string]any)
				if len(first["findings"].([]any)) == 0 {
					t.Error("batch[0] should be vulnerable")
				}
				if len(second["findings"].([]any)) != 0 {
					t.Error("batch[1] should be clean")
				}
			},
		},
		{
			name: "analyze empty request", method: "POST", path: "/v1/analyze",
			body:       map[string]any{},
			wantStatus: 400,
		},
		{
			name: "analyze unknown field", method: "POST", path: "/v1/analyze",
			body:       map[string]any{"sauce": "typo"},
			wantStatus: 400,
		},
		{
			name: "fingerprint", method: "POST", path: "/v1/fingerprint",
			body:       map[string]any{"source": reentrantSrc},
			wantStatus: 200,
			check: func(t *testing.T, m map[string]any) {
				if m["fingerprint"] == "" {
					t.Error("empty fingerprint")
				}
				if m["sub_fingerprints"].(float64) < 1 {
					t.Error("no sub-fingerprints")
				}
			},
		},
		{
			name: "fingerprint missing source", method: "POST", path: "/v1/fingerprint",
			body:       map[string]any{},
			wantStatus: 400,
		},
		{
			name: "corpus add missing id", method: "POST", path: "/v1/corpus",
			body:       map[string]any{"entries": []map[string]any{{"source": benignSrc}}},
			wantStatus: 400,
		},
		{
			name: "match without corpus", method: "POST", path: "/v1/match",
			body:       map[string]any{"source": benignSrc},
			wantStatus: 200,
			check: func(t *testing.T, m map[string]any) {
				if n := len(m["matches"].([]any)); n != 0 {
					t.Errorf("empty corpus matched %d", n)
				}
			},
		},
		{
			name: "match no input", method: "POST", path: "/v1/match",
			body:       map[string]any{},
			wantStatus: 400,
		},
		{
			name: "study scale too large", method: "POST", path: "/v1/study",
			body:       map[string]any{"scale": 5.0},
			wantStatus: 400,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			resp, m := post(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %v)", resp.StatusCode, tc.wantStatus, m)
			}
			if tc.check != nil {
				tc.check(t, m)
			}
		})
	}
}

func TestCorpusIngestThenMatch(t *testing.T) {
	ts, _ := newTestServer(t)
	entries := []map[string]any{
		{"id": "vuln-1", "source": reentrantSrc},
		{"id": "safe-1", "source": benignSrc},
	}
	resp, m := post(t, ts.URL+"/v1/corpus", map[string]any{"entries": entries})
	if resp.StatusCode != 200 {
		t.Fatalf("ingest: %d %v", resp.StatusCode, m)
	}
	if m["added"].(float64) != 2 || m["size"].(float64) != 2 {
		t.Fatalf("ingest response: %v", m)
	}

	resp, m = post(t, ts.URL+"/v1/match", map[string]any{"source": reentrantSrc})
	if resp.StatusCode != 200 {
		t.Fatalf("match: %d", resp.StatusCode)
	}
	matches := m["matches"].([]any)
	if len(matches) == 0 {
		t.Fatal("no matches for indexed source")
	}
	best := matches[0].(map[string]any)
	if best["id"] != "vuln-1" {
		t.Errorf("best match %v, want vuln-1", best["id"])
	}
	if best["score"].(float64) < 90 {
		t.Errorf("identical source should score high: %v", best)
	}

	_, info := get(t, ts.URL+"/v1/corpus")
	if info["size"].(float64) != 2 {
		t.Errorf("corpus info: %v", info)
	}
}

// TestConcurrentBatchAnalyzeAndMatch exercises the acceptance criterion:
// concurrent batch /v1/analyze and /v1/match requests against one engine,
// meaningful under -race.
func TestConcurrentBatchAnalyzeAndMatch(t *testing.T) {
	ts, _ := newTestServer(t)
	// Seed the corpus first.
	var entries []map[string]any
	for i := 0; i < 10; i++ {
		entries = append(entries, map[string]any{"id": fmt.Sprintf("c%d", i), "source": reentrantSrc})
	}
	if resp, m := post(t, ts.URL+"/v1/corpus", map[string]any{"entries": entries}); resp.StatusCode != 200 {
		t.Fatalf("ingest: %v", m)
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan string, clients*2)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			batch := map[string]any{"sources": []string{reentrantSrc, benignSrc, reentrantSrc}}
			buf, _ := json.Marshal(batch)
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(buf))
			if err != nil {
				errs <- err.Error()
				return
			}
			var m map[string]any
			json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if resp.StatusCode != 200 || len(m["results"].([]any)) != 3 {
				errs <- fmt.Sprintf("client %d: analyze status %d", c, resp.StatusCode)
			}
		}(c)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			buf, _ := json.Marshal(map[string]any{"source": reentrantSrc})
			resp, err := http.Post(ts.URL+"/v1/match", "application/json", bytes.NewReader(buf))
			if err != nil {
				errs <- err.Error()
				return
			}
			var m map[string]any
			json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if resp.StatusCode != 200 || len(m["matches"].([]any)) != 10 {
				errs <- fmt.Sprintf("client %d: match status %d", c, resp.StatusCode)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestMetricsReportCacheHits(t *testing.T) {
	ts, _ := newTestServer(t)
	// Same source three times: one miss, two hits.
	for i := 0; i < 3; i++ {
		if resp, _ := post(t, ts.URL+"/v1/analyze", map[string]any{"source": reentrantSrc}); resp.StatusCode != 200 {
			t.Fatalf("analyze %d failed", i)
		}
	}
	resp, m := get(t, ts.URL+"/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	rc := m["report_cache"].(map[string]any)
	if rc["hits"].(float64) != 2 || rc["misses"].(float64) != 1 {
		t.Errorf("report cache hits=%v misses=%v, want 2/1", rc["hits"], rc["misses"])
	}
	rates := m["cache_hit_rates"].(map[string]any)
	if r := rates["report"].(float64); r < 0.66 || r > 0.67 {
		t.Errorf("report hit rate %v, want ~0.667", r)
	}
	eps := m["endpoints"].(map[string]any)
	analyze := eps["POST /v1/analyze"].(map[string]any)
	if analyze["count"].(float64) != 3 {
		t.Errorf("analyze request count %v", analyze["count"])
	}
	if analyze["by_class"].(map[string]any)["2xx"].(float64) != 3 {
		t.Errorf("analyze 2xx count %v", analyze["by_class"])
	}
	if lat := analyze["latency"].(map[string]any); lat["count"].(float64) != 3 {
		t.Errorf("analyze latency count %v", lat["count"])
	}
	if m["workers"].(float64) != 4 {
		t.Errorf("workers %v", m["workers"])
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, m := get(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 || m["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, m)
	}
}

func TestStudyJobLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("study job is slow")
	}
	ts, _ := newTestServer(t)
	resp, m := post(t, ts.URL+"/v1/study", map[string]any{"seed": 1, "scale": 0.004})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("start: %d %v", resp.StatusCode, m)
	}
	id, _ := m["id"].(string)
	if !strings.HasPrefix(id, "study-") {
		t.Fatalf("job id %q", id)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, m = get(t, ts.URL+"/v1/study/"+id)
		if resp.StatusCode != 200 {
			t.Fatalf("poll: %d", resp.StatusCode)
		}
		switch m["status"] {
		case "done":
			sum := m["summary"].(map[string]any)
			funnel := sum["funnel"].(map[string]any)
			if funnel["UniqueSnippets"].(float64) == 0 {
				t.Errorf("empty funnel: %v", funnel)
			}
			return
		case "failed":
			t.Fatalf("job failed: %v", m["error"])
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish in time")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestCorpusStudyLifecycle drives the /v1/study corpus mode end to end:
// seed clone groups into the serving corpus, run the corpus-wide study, and
// check the cluster-size distribution plus the live /v1/clusters view and
// its NDJSON export agree with the seeded ground truth.
func TestCorpusStudyLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)
	// Three exact clones plus one unrelated doc: one cluster of 3.
	entries := []map[string]string{
		{"id": "clone-a", "source": reentrantSrc},
		{"id": "clone-b", "source": reentrantSrc},
		{"id": "clone-c", "source": reentrantSrc},
		{"id": "other-1", "source": benignSrc},
	}
	if resp, m := post(t, ts.URL+"/v1/corpus", map[string]any{"entries": entries}); resp.StatusCode != 200 {
		t.Fatalf("seed: %d %v", resp.StatusCode, m)
	}

	resp, m := post(t, ts.URL+"/v1/study", map[string]any{"mode": "corpus"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("start: %d %v", resp.StatusCode, m)
	}
	id := m["id"].(string)
	deadline := time.Now().Add(time.Minute)
	for {
		resp, m = get(t, ts.URL+"/v1/study/"+id)
		if resp.StatusCode != 200 {
			t.Fatalf("poll: %d", resp.StatusCode)
		}
		if m["status"] == "done" {
			break
		}
		if m["status"] == "failed" {
			t.Fatalf("corpus study failed: %v", m["error"])
		}
		if time.Now().After(deadline) {
			t.Fatal("corpus study did not finish")
		}
		time.Sleep(20 * time.Millisecond)
	}
	sum := m["summary"].(map[string]any)
	if sum["mode"] != "corpus" {
		t.Fatalf("summary mode %v", sum["mode"])
	}
	clone := sum["clone"].(map[string]any)
	if clone["backend"] != "ccd" {
		t.Errorf("clone backend %v", clone["backend"])
	}
	dist := clone["summary"].(map[string]any)
	if dist["docs"].(float64) != 4 || dist["largest"].(float64) != 3 || dist["clusters"].(float64) != 1 {
		t.Fatalf("clone distribution %v, want one 3-cluster over 4 docs", dist)
	}
	if clone["stats"].(map[string]any)["queried"].(float64) != 4 {
		t.Errorf("study stats %v", clone["stats"])
	}
	top := clone["top"].([]any)
	if len(top) != 1 || top[0].(map[string]any)["rep"] != "clone-a" || top[0].(map[string]any)["size"].(float64) != 3 {
		t.Fatalf("top clusters %v", top)
	}

	// The live view agrees (ingest-time tracking found the same clusters).
	_, cl := get(t, ts.URL+"/v1/clusters")
	if cl["enabled"] != true {
		t.Fatalf("clusters response %v", cl)
	}
	lsum := cl["summary"].(map[string]any)
	if lsum["largest"].(float64) != 3 || lsum["clustered"].(float64) != 3 {
		t.Fatalf("live summary %v", lsum)
	}

	// NDJSON export: one line, the 3-cluster with sorted members.
	resp, err := http.Get(ts.URL + "/v1/clusters/export")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("export content type %q", ct)
	}
	var lines []map[string]any
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var c map[string]any
		if err := dec.Decode(&c); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, c)
	}
	if len(lines) != 1 {
		t.Fatalf("export lines %v, want 1 cluster", lines)
	}
	members := lines[0]["members"].([]any)
	if len(members) != 3 || members[0] != "clone-a" || members[2] != "clone-c" {
		t.Fatalf("export members %v", members)
	}

	// min=1 includes the singletons.
	resp2, err := http.Get(ts.URL + "/v1/clusters/export?min=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	n := 0
	dec = json.NewDecoder(resp2.Body)
	for dec.More() {
		var c map[string]any
		if err := dec.Decode(&c); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("export min=1 returned %d components, want 2", n)
	}

	// The metrics funnel recorded the study.
	_, metrics := get(t, ts.URL+"/metrics")
	sj := metrics["self_join"].(map[string]any)
	if sj["completed"].(float64) != 1 || sj["docs"].(float64) != 4 {
		t.Fatalf("metrics self_join %v", sj)
	}
	if metrics["clusters"] == nil {
		t.Fatal("metrics missing live clusters block")
	}
}

func TestJobStoreCapAndRetention(t *testing.T) {
	s := newJobStore()
	now := time.Now()
	var ids []string
	for i := 0; i < maxRunningJobs; i++ {
		j, ok := s.start(now)
		if !ok {
			t.Fatalf("start %d refused below cap", i)
		}
		ids = append(ids, j.ID)
	}
	if _, ok := s.start(now); ok {
		t.Fatal("start above cap accepted")
	}
	s.finish(ids[0], &StudySummary{}, nil)
	if _, ok := s.start(now); !ok {
		t.Fatal("start refused after a slot freed")
	}

	// Retention: churn far past the bound; finished jobs get evicted,
	// running ones never do.
	s2 := newJobStore()
	for i := 0; i < maxRetainedJobs+40; i++ {
		j, ok := s2.start(now.Add(time.Duration(i) * time.Second))
		if !ok {
			t.Fatalf("churn start %d refused", i)
		}
		s2.finish(j.ID, nil, fmt.Errorf("x"))
	}
	jobs := s2.list()
	if len(jobs) > maxRetainedJobs {
		t.Fatalf("retained %d jobs, bound %d", len(jobs), maxRetainedJobs)
	}
	// Newest first, and the newest job survived the pruning.
	if jobs[0].ID != fmt.Sprintf("study-%d", maxRetainedJobs+40) {
		t.Fatalf("newest job missing: %s", jobs[0].ID)
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Created.After(jobs[i-1].Created) {
			t.Fatalf("list not newest-first at %d", i)
		}
	}
}

func TestStudyUnknownJob(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, _ := get(t, ts.URL+"/v1/study/study-999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}
