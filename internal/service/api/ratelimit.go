package api

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// maxRateLimitClients caps the per-client bucket map. Beyond it the oldest
// stale buckets are evicted — an eviction refills the returning client to a
// full burst, which errs toward admitting, never toward a lockout.
const maxRateLimitClients = 4096

// rateLimiter is a token-bucket limiter keyed by client: each key accrues
// rps tokens per second up to burst, and a request needs one token. The
// zero-size map grows on demand; see maxRateLimitClients.
type rateLimiter struct {
	rps   float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rps float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rps:     rps,
		burst:   float64(burst),
		buckets: make(map[string]*tokenBucket),
	}
}

// allow consumes one token from key's bucket if available. now is a
// parameter, not time.Now(), so tests can drive refill deterministically.
func (l *rateLimiter) allow(key string, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxRateLimitClients {
			l.evictStale(now)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rps)
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictStale drops buckets idle long enough to have refilled completely —
// forgetting them loses no information, a returning client starts at full
// burst either way. Called with l.mu held, only on the map-full slow path.
func (l *rateLimiter) evictStale(now time.Time) {
	full := time.Duration(l.burst / l.rps * float64(time.Second))
	if full < time.Second {
		full = time.Second
	}
	for key, b := range l.buckets {
		if now.Sub(b.last) >= full {
			delete(l.buckets, key)
		}
	}
	// Pathological case: thousands of distinct clients inside one refill
	// window. Drop arbitrary buckets rather than grow without bound.
	for key := range l.buckets {
		if len(l.buckets) < maxRateLimitClients {
			break
		}
		delete(l.buckets, key)
	}
}

// retryAfter is how long a drained client should wait for its next token.
func (l *rateLimiter) retryAfter() time.Duration {
	d := time.Duration(float64(time.Second) / l.rps)
	if d < time.Second {
		d = time.Second
	}
	return d
}

// clientKey identifies the caller for rate limiting: the X-API-Key header
// when present (one logical client behind many addresses), otherwise the
// remote address without its ephemeral port.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "addr:" + host
}

// limited wraps a handler behind the per-client rate limiter (a no-op when
// the server was built without WithRateLimit).
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.limiter != nil && !s.limiter.allow(clientKey(r), time.Now()) {
			s.rateLimited.Add(1)
			writeOverloaded(w, http.StatusTooManyRequests, s.limiter.retryAfter(),
				"rate limit exceeded for this client")
			return
		}
		h(w, r)
	}
}

// admitted wraps a heavy handler behind the engine's bounded admission
// queue: over capacity, the request is shed with 429 and a Retry-After
// computed from the live queue depth and match p99.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, err := s.engine.AdmitRequest()
		if err != nil {
			writeOverloaded(w, http.StatusTooManyRequests, s.engine.RetryAfter(), err.Error())
			return
		}
		defer release()
		h(w, r)
	}
}

// writable guards ingest routes on readiness: while the store is replaying
// or holding a pending rollback, writes are refused with 503 + Retry-After
// instead of piling onto a log that cannot accept them.
func (s *Server) writable(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.ready() {
			writeOverloaded(w, http.StatusServiceUnavailable, time.Second,
				"store is not ready for writes (boot replay or rollback pending)")
			return
		}
		h(w, r)
	}
}

// writeOverloaded emits a shed/backoff response: the Retry-After header in
// whole seconds (RFC 9110 delay-seconds) plus the same hint in the JSON body.
func writeOverloaded(w http.ResponseWriter, status int, retryAfter time.Duration, msg string) {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeErrorRetry(w, status, msg, secs)
}
