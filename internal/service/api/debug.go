package api

import (
	"net/http"
	"net/http/pprof"

	"repro/internal/trace"
)

// TracesResponse is the GET /debug/traces listing: summaries of the retained
// traces (slowest first, then the recent/errored rings) plus the recorder's
// retention counters.
type TracesResponse struct {
	Traces   []trace.Summary     `json:"traces"`
	Recorder trace.RecorderStats `json:"recorder"`
}

// handleDebugTraces lists the retained traces.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	traces := s.recorder.Traces()
	out := TracesResponse{
		Traces:   make([]trace.Summary, 0, len(traces)),
		Recorder: s.recorder.Stats(),
	}
	for _, tr := range traces {
		out.Traces = append(out.Traces, tr.Summary())
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDebugTraceGet returns one retained trace's full span tree.
func (s *Server) handleDebugTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.recorder.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "trace not found (evicted or never recorded)")
		return
	}
	writeJSON(w, http.StatusOK, tr.View())
}

// DebugHandler returns the handler for the private debug listener
// (-debug-addr): the pprof surface plus the same trace endpoints the main
// API serves. Kept off the public mux so profiling is never exposed on the
// serving port.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleDebugTraceGet)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}
