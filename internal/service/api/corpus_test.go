package api

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service"
)

func postNDJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/corpus/bulk", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func TestCorpusBulkNDJSON(t *testing.T) {
	ts, _ := newTestServer(t)
	var sb strings.Builder
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&sb, `{"id": "src-%d", "source": "contract C%d { uint x; function f() public { x = %d; } }"}`+"\n", i, i, i)
	}
	// Pre-fingerprinted entries skip parsing entirely.
	sb.WriteString(`{"id": "pre-1", "fingerprint": "QsRtYuIoPlKjHgFdSaZx.WqErTyUiOp"}` + "\n")
	resp, body := postNDJSON(t, ts.URL, sb.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, body)
	}
	if body["added"].(float64) != 11 || body["malformed"] != nil && body["malformed"].(float64) != 0 {
		t.Fatalf("bulk response: %v", body)
	}
	if body["size"].(float64) != 11 {
		t.Fatalf("corpus size %v, want 11", body["size"])
	}
	// The ingested entries are matchable.
	_, m := post(t, ts.URL+"/v1/match", map[string]any{"fingerprint": "QsRtYuIoPlKjHgFdSaZx.WqErTyUiOp"})
	found := false
	for _, raw := range m["matches"].([]any) {
		if raw.(map[string]any)["id"] == "pre-1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("pre-fingerprinted entry not matchable: %v", m)
	}
}

func TestCorpusBulkMalformedLines(t *testing.T) {
	ts, _ := newTestServer(t)
	body := strings.Join([]string{
		`{"id": "good-1", "source": "contract A { uint x; function f() public { x = 1; } }"}`,
		`this is not json`,
		`{"source": "contract B {}"}`, // missing id
		`{"id": "no-content"}`,        // missing source and fingerprint
		``,                            // blank lines are skipped silently
		`{"id": "good-2", "source": "contract B { uint y; function g() public { y = 2; } }"}`,
	}, "\n") + "\n"
	resp, got := postNDJSON(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, got)
	}
	if got["added"].(float64) != 2 {
		t.Errorf("added %v, want 2", got["added"])
	}
	if got["malformed"].(float64) != 3 {
		t.Errorf("malformed %v, want 3", got["malformed"])
	}
	errs := got["errors"].([]any)
	if len(errs) != 3 {
		t.Fatalf("errors %v, want 3 entries", errs)
	}
	for i, want := range []string{"line 2: bad JSON", "line 3: missing id", "line 4: missing source or fingerprint"} {
		if !strings.HasPrefix(errs[i].(string), want) {
			t.Errorf("error %d = %q, want prefix %q", i, errs[i], want)
		}
	}
	if got["size"].(float64) != 2 {
		t.Errorf("size %v, want 2", got["size"])
	}
}

// TestCorpusBulkPersistFailureAccounting: when the WAL dies mid-stream, the
// 500 response must still carry the exact per-entry accounting — the lines
// journaled before the failure count as added, the rest as persist failures,
// and a duplicate-free boot replay would reproduce precisely the added set.
func TestCorpusBulkPersistFailureAccounting(t *testing.T) {
	engine := service.New(service.Options{Workers: 2})
	store, err := service.OpenStore(t.TempDir(), engine.Corpus())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(engine, WithStore(store)).Handler())
	defer ts.Close()

	// First stream lands durably.
	resp, got := postNDJSON(t, ts.URL,
		`{"id": "a", "fingerprint": "QsRtYuIoPlKjHgFdSaZx.WqErTyUiOp"}`+"\n"+
			`{"id": "b", "fingerprint": "QsRtYuIoPlKjHgFdSaZy.WqErTyUiOq"}`+"\n")
	if resp.StatusCode != http.StatusOK || got["added"].(float64) != 2 {
		t.Fatalf("seed stream: status %d, %v", resp.StatusCode, got)
	}

	// Kill the WAL under the server: every further journaled add fails.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	resp, got = postNDJSON(t, ts.URL,
		`{"id": "c", "fingerprint": "QsRtYuIoPlKjHgFdSaZz.WqErTyUiOr"}`+"\n"+
			`not json at all`+"\n"+
			`{"id": "d", "fingerprint": "QsRtYuIoPlKjHgFdSaZw.WqErTyUiOs"}`+"\n")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if got["added"].(float64) != 0 {
		t.Errorf("added %v entries of a dead-WAL stream, want 0", got["added"])
	}
	if got["persist_failures"].(float64) != 2 {
		t.Errorf("persist_failures %v, want 2", got["persist_failures"])
	}
	if got["malformed"].(float64) != 1 {
		t.Errorf("malformed %v, want 1", got["malformed"])
	}
	if got["error"] == nil || got["error"].(string) == "" {
		t.Error("500 response carries no error detail")
	}
	// The corpus still holds exactly the acknowledged entries.
	if got["size"].(float64) != 2 {
		t.Errorf("size %v, want 2", got["size"])
	}
}

func TestCorpusBulkOversizedLine(t *testing.T) {
	ts, _ := newTestServer(t)
	huge := `{"id": "huge", "source": "` + strings.Repeat("x", 2<<20) + `"}`
	resp, got := postNDJSON(t, ts.URL, huge+"\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d (%v), want 400 for oversized line", resp.StatusCode, got)
	}
}

func TestCorpusSnapshotWithoutStore(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, got := post(t, ts.URL+"/v1/corpus/snapshot", map[string]any{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d (%v), want 409 without -corpus-dir", resp.StatusCode, got)
	}
}

func TestCorpusSnapshotAndInfoWithStore(t *testing.T) {
	engine := service.New(service.Options{Workers: 2})
	store, err := service.OpenStore(t.TempDir(), engine.Corpus())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ts := httptest.NewServer(NewServer(engine, WithStore(store)).Handler())
	defer ts.Close()

	postNDJSON(t, ts.URL, `{"id": "a", "source": "contract A { uint x; function f() public { x = 1; } }"}`+"\n")
	resp, got := post(t, ts.URL+"/v1/corpus/snapshot", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d: %v", resp.StatusCode, got)
	}
	if got["entries"].(float64) != 1 || got["bytes"].(float64) <= 0 {
		t.Fatalf("snapshot response: %v", got)
	}
	_, info := get(t, ts.URL+"/v1/corpus")
	p, ok := info["persistence"].(map[string]any)
	if !ok {
		t.Fatalf("no persistence block in %v", info)
	}
	if p["snapshots"].(float64) != 1 || p["pending_adds"].(float64) != 0 {
		t.Fatalf("persistence info: %v", p)
	}
}

func TestCorpusExportRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	postNDJSON(t, ts.URL,
		`{"id": "a", "source": "contract A { uint x; function f() public { x = 1; } }"}`+"\n"+
			`{"id": "b", "source": "contract B { uint y; function g() public { y = 2; } }"}`+"\n")

	resp, err := http.Get(ts.URL + "/v1/corpus/export")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// The exported bytes restore into a fresh corpus with both entries.
	restored := service.NewCorpus(service.New(service.Options{}).Corpus().Config(), 0)
	if err := restored.ReadSnapshot(bytes.NewReader(raw)); err != nil {
		t.Fatalf("restore exported snapshot: %v", err)
	}
	if restored.Len() != 2 {
		t.Fatalf("restored %d entries, want 2", restored.Len())
	}
}
