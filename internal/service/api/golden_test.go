package api

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/service"
)

// Golden-file tests pin the HTTP response shapes: any field rename, type
// change or ordering regression in the JSON API shows up as a diff against
// the committed fixture. Regenerate deliberately with
//
//	go test ./internal/service/api -run TestGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden response fixtures")

// TestGoldenResponses drives a deterministic request sequence against a
// fresh server and compares every (status, body) pair against
// testdata/golden/<name>.json.
func TestGoldenResponses(t *testing.T) {
	ts, _ := newTestServer(t)

	// Seed the corpus first so match queries have something to hit. The
	// response of this call is itself one of the golden cases.
	seed := map[string]any{"entries": []map[string]string{
		{"id": "victim-1", "source": reentrantSrc},
		{"id": "safe-1", "source": benignSrc},
	}}

	cases := []struct {
		name   string
		method string
		path   string
		body   any
	}{
		{"corpus_add", http.MethodPost, "/v1/corpus", seed},
		{"corpus_info", http.MethodGet, "/v1/corpus", nil},
		{"analyze_single", http.MethodPost, "/v1/analyze", map[string]any{"source": reentrantSrc}},
		{"analyze_batch", http.MethodPost, "/v1/analyze", map[string]any{"sources": []string{reentrantSrc, benignSrc}}},
		{"analyze_missing_source", http.MethodPost, "/v1/analyze", map[string]any{}},
		{"fingerprint", http.MethodPost, "/v1/fingerprint", map[string]any{"source": benignSrc}},
		{"match_single", http.MethodPost, "/v1/match", map[string]any{"source": reentrantSrc}},
		{"match_limit", http.MethodPost, "/v1/match", map[string]any{"source": reentrantSrc, "limit": 1}},
		{"match_batch", http.MethodPost, "/v1/match", map[string]any{
			"sources": []string{reentrantSrc, benignSrc},
			"limit":   1,
		}},
		{"match_fingerprint_miss", http.MethodPost, "/v1/match", map[string]any{"fingerprint": "zzzzzzzzzzzz"}},
		{"match_bad_limit", http.MethodPost, "/v1/match", map[string]any{"source": benignSrc, "limit": -1}},
		{"match_mixed_forms", http.MethodPost, "/v1/match", map[string]any{"source": benignSrc, "sources": []string{benignSrc}}},
		// Backend selection and explain, as query parameters.
		{"match_backend_ssdeep", http.MethodPost, "/v1/match?backend=ssdeep", map[string]any{"source": reentrantSrc, "limit": 1}},
		{"match_backend_smartembed", http.MethodPost, "/v1/match?backend=smartembed", map[string]any{"source": reentrantSrc, "limit": 1}},
		{"match_backend_unknown", http.MethodPost, "/v1/match?backend=nope", map[string]any{"source": benignSrc}},
		{"match_explain", http.MethodPost, "/v1/match?explain=1", map[string]any{"source": reentrantSrc, "limit": 2}},
		{"match_explain_body_backend", http.MethodPost, "/v1/match", map[string]any{
			"source": reentrantSrc, "backend": "ssdeep", "explain": true, "limit": 1,
		}},
		// Live clone-cluster view (the two seeded docs are unrelated: two
		// singletons, no clusters).
		{"clusters", http.MethodGet, "/v1/clusters?top=5", nil},
		// Study-mode validation shapes.
		{"study_bad_mode", http.MethodPost, "/v1/study", map[string]any{"mode": "nope"}},
		{"study_corpus_bad_backend", http.MethodPost, "/v1/study", map[string]any{"mode": "corpus", "backend": "nope"}},
		{"study_corpus_bad_limit", http.MethodPost, "/v1/study", map[string]any{"mode": "corpus", "limit": -1}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runGoldenCase(t, ts, tc.name, tc.method, tc.path, tc.body)
		})
	}
}

// TestGoldenBackendNotLoaded pins the error shape of a registered backend
// the server was not started with (serve without -backend ssdeep), plus the
// cluster endpoints' disabled shapes (serve -clusters=false).
func TestGoldenBackendNotLoaded(t *testing.T) {
	ts, _ := newCCDOnlyServer(t)
	runGoldenCase(t, ts, "match_backend_not_loaded", http.MethodPost,
		"/v1/match?backend=ssdeep", map[string]any{"source": benignSrc})
	runGoldenCase(t, ts, "clusters_disabled", http.MethodGet, "/v1/clusters", nil)
	runGoldenCase(t, ts, "clusters_export_disabled", http.MethodGet, "/v1/clusters/export", nil)
}

// TestGoldenOverloadShapes pins the deterministic overload response shapes:
// the rate-limited 429 (retry hint = the limiter's fixed refill interval)
// and the not-ready ingest 503. Admission-shed 429s share the same error
// shape but depend on concurrent timing; TestShedResponseShape covers them.
func TestGoldenOverloadShapes(t *testing.T) {
	limited := NewServer(service.New(service.Options{Workers: 2, Shards: 2}),
		WithRateLimit(0.01, 1)) // burst 1, then a deterministic 100s refill
	lts := httptest.NewServer(limited.Handler())
	t.Cleanup(lts.Close)
	if resp, err := http.Get(lts.URL + "/v1/corpus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close() // burn the only token
	}
	runGoldenCase(t, lts, "ratelimited", http.MethodGet, "/v1/corpus", nil)

	notReady := NewServer(service.New(service.Options{Workers: 2, Shards: 2}),
		WithReadiness(func() bool { return false }))
	nts := httptest.NewServer(notReady.Handler())
	t.Cleanup(nts.Close)
	runGoldenCase(t, nts, "ingest_not_ready", http.MethodPost, "/v1/corpus",
		map[string]any{"entries": []map[string]string{{"id": "x", "source": benignSrc}}})
}

// runGoldenCase issues one request and compares (status, body) against the
// committed fixture, rewriting it under -update.
func runGoldenCase(t *testing.T, ts *httptest.Server, name, method, path string, body any) {
	t.Helper()
	var req *http.Request
	var err error
	if body == nil {
		req, err = http.NewRequest(method, ts.URL+path, nil)
	} else {
		buf, merr := json.Marshal(body)
		if merr != nil {
			t.Fatal(merr)
		}
		req, err = http.NewRequest(method, ts.URL+path, bytes.NewReader(buf))
		req.Header.Set("Content-Type", "application/json")
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	got := canonicalize(t, resp.StatusCode, raw)

	fixture := filepath.Join("testdata", "golden", name+".json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(fixture), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fixture, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("response shape changed for %s %s.\n got: %s\nwant: %s\n(re-run with -update if intentional)",
			method, path, got, want)
	}
}

// canonicalize renders status + body as stable, indented JSON (object keys
// sorted by encoding/json's map ordering) so fixtures diff cleanly. Randomly
// generated trace ids are masked to a placeholder: the fixtures pin that the
// field is present, not its value.
func canonicalize(t *testing.T, status int, raw []byte) []byte {
	t.Helper()
	var body any
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, raw)
	}
	maskTraceIDs(body)
	out, err := json.MarshalIndent(map[string]any{"status": status, "body": body}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// maskTraceIDs replaces every "trace_id" string value in a decoded JSON
// tree with a fixed placeholder.
func maskTraceIDs(v any) {
	switch n := v.(type) {
	case map[string]any:
		for k, child := range n {
			if k == "trace_id" {
				if _, ok := child.(string); ok {
					n[k] = "TRACE_ID"
					continue
				}
			}
			maskTraceIDs(child)
		}
	case []any:
		for _, child := range n {
			maskTraceIDs(child)
		}
	}
}

// TestMatchLimitAndBatch covers the top-K wire behavior beyond the golden
// shapes: limits truncate, batch results keep request order, and the
// unlimited form returns everything.
func TestMatchLimitAndBatch(t *testing.T) {
	ts, _ := newTestServer(t)
	entries := make([]map[string]string, 8)
	for i := range entries {
		entries[i] = map[string]string{"id": fmt.Sprintf("v-%d", i), "source": reentrantSrc}
	}
	if resp, _ := post(t, ts.URL+"/v1/corpus", map[string]any{"entries": entries}); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed status %d", resp.StatusCode)
	}

	_, body := post(t, ts.URL+"/v1/match", map[string]any{"source": reentrantSrc})
	if n := len(body["matches"].([]any)); n != len(entries) {
		t.Fatalf("unlimited match returned %d of %d", n, len(entries))
	}
	_, body = post(t, ts.URL+"/v1/match", map[string]any{"source": reentrantSrc, "limit": 3})
	ms := body["matches"].([]any)
	if len(ms) != 3 {
		t.Fatalf("limit=3 returned %d matches", len(ms))
	}
	// Ties broken by id ascending: v-0, v-1, v-2.
	for i, m := range ms {
		if id := m.(map[string]any)["id"]; id != fmt.Sprintf("v-%d", i) {
			t.Errorf("match %d: id %v", i, id)
		}
	}

	resp, raw := post(t, ts.URL+"/v1/match", map[string]any{
		"sources": []string{reentrantSrc, benignSrc}, "limit": 2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	results := raw["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("batch results: %d", len(results))
	}
	if n := len(results[0].(map[string]any)["matches"].([]any)); n != 2 {
		t.Errorf("batch result 0: %d matches, want 2", n)
	}
	if n := len(results[1].(map[string]any)["matches"].([]any)); n != 0 {
		t.Errorf("benign source matched %d entries", n)
	}
}
