package service

import "sync/atomic"

// counters aggregates the engine's atomic operation counts.
type counters struct {
	analyses     atomic.Int64
	fingerprints atomic.Int64
	matches      atomic.Int64
	corpusAdds   atomic.Int64
	tasks        atomic.Int64
	busy         atomic.Int64
	peakBusy     atomic.Int64
}

// taskStart accounts one task entering a worker slot and keeps the
// saturation high-water mark.
func (c *counters) taskStart() {
	c.tasks.Add(1)
	busy := c.busy.Add(1)
	for {
		peak := c.peakBusy.Load()
		if busy <= peak || c.peakBusy.CompareAndSwap(peak, busy) {
			return
		}
	}
}

func (c *counters) taskDone() { c.busy.Add(-1) }

// Snapshot is a point-in-time view of an Engine's load and cache
// effectiveness, JSON-serializable for the /metrics endpoint.
type Snapshot struct {
	// Workers is the pool size; BusyWorkers the slots currently held;
	// Saturation their ratio; PeakBusyWorkers the high-water mark.
	Workers         int     `json:"workers"`
	BusyWorkers     int64   `json:"busy_workers"`
	PeakBusyWorkers int64   `json:"peak_busy_workers"`
	Saturation      float64 `json:"saturation"`

	// TasksExecuted counts every unit of work that went through the pool.
	TasksExecuted int64 `json:"tasks_executed"`

	// Operation counts.
	Analyses     int64 `json:"analyses"`
	Fingerprints int64 `json:"fingerprints"`
	Matches      int64 `json:"matches"`
	CorpusAdds   int64 `json:"corpus_adds"`
	CorpusSize   int   `json:"corpus_size"`

	// Per-layer cache statistics.
	ParseCache       CacheStats `json:"parse_cache"`
	ReportCache      CacheStats `json:"report_cache"`
	FingerprintCache CacheStats `json:"fingerprint_cache"`
}

// Metrics returns a snapshot of the engine's counters and caches.
func (e *Engine) Metrics() Snapshot {
	s := Snapshot{
		Workers:          e.workers,
		BusyWorkers:      e.ctr.busy.Load(),
		PeakBusyWorkers:  e.ctr.peakBusy.Load(),
		TasksExecuted:    e.ctr.tasks.Load(),
		Analyses:         e.ctr.analyses.Load(),
		Fingerprints:     e.ctr.fingerprints.Load(),
		Matches:          e.ctr.matches.Load(),
		CorpusAdds:       e.ctr.corpusAdds.Load(),
		CorpusSize:       e.corpus.Len(),
		ParseCache:       e.graphs.Stats(),
		ReportCache:      e.reports.Stats(),
		FingerprintCache: e.prints.Stats(),
	}
	if e.workers > 0 {
		s.Saturation = float64(s.BusyWorkers) / float64(e.workers)
	}
	return s
}
