package service

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/ccd"
	"repro/internal/cluster"
)

// counters aggregates the engine's atomic operation counts.
type counters struct {
	analyses     atomic.Int64
	fingerprints atomic.Int64
	matches      atomic.Int64
	corpusAdds   atomic.Int64
	tasks        atomic.Int64
	busy         atomic.Int64
	peakBusy     atomic.Int64

	// Match read-path pruning: how far candidates got before being cut.
	matchCandidates    atomic.Int64
	matchFilterPruned  atomic.Int64
	matchScored        atomic.Int64
	matchCutoffSkipped atomic.Int64

	matchLatency latencyHist

	// Corpus-wide clone studies (the /v1/study corpus mode): cumulative
	// per-phase funnel across every self-join this engine ran.
	studiesStarted   atomic.Int64
	studiesCompleted atomic.Int64
	studiesCancelled atomic.Int64
	studiesFailed    atomic.Int64
	studyDocs        atomic.Int64
	studyQueried     atomic.Int64
	studyCandidates  atomic.Int64
	studyScored      atomic.Int64
	studyCutoffs     atomic.Int64
	studyMatches     atomic.Int64
	studyUnions      atomic.Int64
	studyErrors      atomic.Int64
}

// observeStudy folds a finished self-join's funnel in, classifying the
// outcome by err: nil is a completion, a context error a client
// cancellation, anything else a failure. Conflating the last two would send
// an operator chasing a phantom client cancel instead of the backend error
// that actually aborted the study.
func (c *counters) observeStudy(st SelfJoinStats, err error) {
	switch {
	case err == nil:
		c.studiesCompleted.Add(1)
	case isCancellation(err):
		c.studiesCancelled.Add(1)
	default:
		c.studiesFailed.Add(1)
	}
	c.studyDocs.Add(st.Docs)
	c.studyQueried.Add(st.Queried)
	c.studyCandidates.Add(st.Candidates)
	c.studyScored.Add(st.Scored)
	c.studyCutoffs.Add(st.CutoffSkipped)
	c.studyMatches.Add(st.Matches)
	c.studyUnions.Add(st.Unions)
	c.studyErrors.Add(st.Errors)
}

// observeMatch folds one match call's stats and latency into the counters.
func (c *counters) observeMatch(st ccd.MatchStats, elapsed time.Duration) {
	c.matches.Add(1)
	c.matchCandidates.Add(int64(st.Candidates))
	c.matchFilterPruned.Add(int64(st.FilterPruned))
	c.matchScored.Add(int64(st.Scored))
	c.matchCutoffSkipped.Add(int64(st.CutoffSkipped))
	c.matchLatency.observe(elapsed)
}

// taskStart accounts one task entering a worker slot and keeps the
// saturation high-water mark.
func (c *counters) taskStart() {
	c.tasks.Add(1)
	busy := c.busy.Add(1)
	for {
		peak := c.peakBusy.Load()
		if busy <= peak || c.peakBusy.CompareAndSwap(peak, busy) {
			return
		}
	}
}

func (c *counters) taskDone() { c.busy.Add(-1) }

// latencyHist is a lock-free log₂-bucketed latency histogram: bucket i
// counts observations in [2^i, 2^(i+1)) microseconds, with the last bucket
// absorbing everything slower (~4 s and up).
type latencyHist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

const histBuckets = 23

func (h *latencyHist) observe(d time.Duration) {
	us := d.Microseconds()
	b := 0
	if us > 0 {
		b = min(bits.Len64(uint64(us))-1, histBuckets-1)
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// quantile returns the upper bound (µs) of the bucket holding the q-th
// observation — an estimate with factor-of-two resolution, which is all a
// dashboard histogram needs.
func (h *latencyHist) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	// Ceiling rank: the q-quantile of n samples is the ⌈q·n⌉-th smallest, so
	// p99 of a handful of observations still lands on the slowest one.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return float64(uint64(1) << (i + 1)) // bucket upper bound in µs
		}
	}
	return float64(uint64(1) << histBuckets)
}

// LatencyStats is the JSON view of a latency histogram.
type LatencyStats struct {
	Count    int64   `json:"count"`
	MeanUs   float64 `json:"mean_us"`
	P50Us    float64 `json:"p50_us"`
	P90Us    float64 `json:"p90_us"`
	P99Us    float64 `json:"p99_us"`
	TotalSec float64 `json:"total_sec"`
}

func (h *latencyHist) stats() LatencyStats {
	s := LatencyStats{
		Count: h.count.Load(),
		P50Us: h.quantile(0.50),
		P90Us: h.quantile(0.90),
		P99Us: h.quantile(0.99),
	}
	ns := h.sumNs.Load()
	if s.Count > 0 {
		s.MeanUs = float64(ns) / float64(s.Count) / 1e3
	}
	s.TotalSec = float64(ns) / 1e9
	return s
}

// Snapshot is a point-in-time view of an Engine's load and cache
// effectiveness, JSON-serializable for the /metrics endpoint.
type Snapshot struct {
	// Workers is the pool size; BusyWorkers the slots currently held;
	// Saturation their ratio; PeakBusyWorkers the high-water mark.
	Workers         int     `json:"workers"`
	BusyWorkers     int64   `json:"busy_workers"`
	PeakBusyWorkers int64   `json:"peak_busy_workers"`
	Saturation      float64 `json:"saturation"`

	// TasksExecuted counts every unit of work that went through the pool.
	TasksExecuted int64 `json:"tasks_executed"`

	// Operation counts.
	Analyses     int64 `json:"analyses"`
	Fingerprints int64 `json:"fingerprints"`
	Matches      int64 `json:"matches"`
	CorpusAdds   int64 `json:"corpus_adds"`
	CorpusSize   int   `json:"corpus_size"`

	// Read-path shape of the ccd corpus: the generations the lock-free
	// readers currently see, across all shards.
	CorpusShardCount  int    `json:"corpus_shard_count"`
	CorpusSegments    int    `json:"corpus_segments"`
	CorpusGeneration  uint64 `json:"corpus_generation"`
	CorpusPublishes   int64  `json:"corpus_publishes"`
	CorpusCompactions int64  `json:"corpus_compactions"`

	// CorpusShards breaks the ccd corpus down per generation-shard.
	CorpusShards []ShardSnapshot `json:"corpus_shards"`

	// Backends reports every loaded similarity backend's corpus: size,
	// shard layout, ingest accounting and its own match funnel.
	Backends map[string]BackendSnapshot `json:"backends"`

	// Match pruning funnel: candidates from the n-gram pre-filter, how many
	// the η cutoff abandoned inside the filter, how many were fully scored,
	// and how many the top-K lower bound cut short.
	MatchCandidates    int64 `json:"match_candidates"`
	MatchFilterPruned  int64 `json:"match_filter_pruned"`
	MatchScored        int64 `json:"match_scored"`
	MatchCutoffSkipped int64 `json:"match_cutoff_skipped"`

	// MatchLatency is the /v1/match service-time histogram summary.
	MatchLatency LatencyStats `json:"match_latency"`

	// SelfJoin is the cumulative per-phase funnel of the corpus-wide clone
	// studies this engine ran (the /v1/study corpus mode).
	SelfJoin StudyFunnel `json:"self_join"`

	// Clusters is the live clone-cluster view (present only when the engine
	// tracks clusters online).
	Clusters *cluster.Summary `json:"clusters,omitempty"`

	// Per-layer cache statistics.
	ParseCache       CacheStats `json:"parse_cache"`
	ReportCache      CacheStats `json:"report_cache"`
	FingerprintCache CacheStats `json:"fingerprint_cache"`
}

// StudyFunnel aggregates the engine's clone-study phases for /metrics:
// enumerate → block (posting-list candidates) → verify (scored vs cut) →
// edges (matches, of which unions merged components).
type StudyFunnel struct {
	Started       int64 `json:"started"`
	Completed     int64 `json:"completed"`
	Cancelled     int64 `json:"cancelled"`
	Failed        int64 `json:"failed"`
	Docs          int64 `json:"docs"`
	Queried       int64 `json:"queried"`
	Candidates    int64 `json:"candidates"`
	Scored        int64 `json:"scored"`
	CutoffSkipped int64 `json:"cutoff_skipped"`
	Matches       int64 `json:"matches"`
	Unions        int64 `json:"unions"`
	Errors        int64 `json:"errors"`
}

// BackendSnapshot is the /metrics view of one loaded backend's corpus.
type BackendSnapshot struct {
	Size       int          `json:"size"`
	Shards     int          `json:"shards"`
	Segments   int          `json:"segments"`
	Adds       int64        `json:"adds"`
	Skips      int64        `json:"skips,omitempty"`
	Supersedes int64        `json:"supersedes,omitempty"`
	Funnel     CorpusFunnel `json:"funnel"`
}

// Metrics returns a snapshot of the engine's counters and caches.
func (e *Engine) Metrics() Snapshot {
	backends := make(map[string]BackendSnapshot, len(e.corpora))
	for name, c := range e.corpora {
		backends[name] = BackendSnapshot{
			Size:       c.Len(),
			Shards:     c.Shards(),
			Segments:   c.Segments(),
			Adds:       c.Adds(),
			Skips:      c.Skips(),
			Supersedes: c.Supersedes(),
			Funnel:     c.Funnel(),
		}
	}
	s := Snapshot{
		Workers:            e.workers,
		BusyWorkers:        e.ctr.busy.Load(),
		PeakBusyWorkers:    e.ctr.peakBusy.Load(),
		TasksExecuted:      e.ctr.tasks.Load(),
		Analyses:           e.ctr.analyses.Load(),
		Fingerprints:       e.ctr.fingerprints.Load(),
		Matches:            e.ctr.matches.Load(),
		CorpusAdds:         e.ctr.corpusAdds.Load(),
		CorpusSize:         e.corpus.Len(),
		CorpusShardCount:   e.corpus.Shards(),
		CorpusSegments:     e.corpus.Segments(),
		CorpusGeneration:   e.corpus.Generation(),
		CorpusPublishes:    e.corpus.Publishes(),
		CorpusCompactions:  e.corpus.Compactions(),
		CorpusShards:       e.corpus.ShardStats(),
		Backends:           backends,
		MatchCandidates:    e.ctr.matchCandidates.Load(),
		MatchFilterPruned:  e.ctr.matchFilterPruned.Load(),
		MatchScored:        e.ctr.matchScored.Load(),
		MatchCutoffSkipped: e.ctr.matchCutoffSkipped.Load(),
		MatchLatency:       e.ctr.matchLatency.stats(),
		SelfJoin: StudyFunnel{
			Started:       e.ctr.studiesStarted.Load(),
			Completed:     e.ctr.studiesCompleted.Load(),
			Cancelled:     e.ctr.studiesCancelled.Load(),
			Failed:        e.ctr.studiesFailed.Load(),
			Docs:          e.ctr.studyDocs.Load(),
			Queried:       e.ctr.studyQueried.Load(),
			Candidates:    e.ctr.studyCandidates.Load(),
			Scored:        e.ctr.studyScored.Load(),
			CutoffSkipped: e.ctr.studyCutoffs.Load(),
			Matches:       e.ctr.studyMatches.Load(),
			Unions:        e.ctr.studyUnions.Load(),
			Errors:        e.ctr.studyErrors.Load(),
		},
		ParseCache:       e.graphs.Stats(),
		ReportCache:      e.reports.Stats(),
		FingerprintCache: e.prints.Stats(),
	}
	if e.clusters != nil {
		sum := e.clusters.Summary()
		s.Clusters = &sum
	}
	if e.workers > 0 {
		s.Saturation = float64(s.BusyWorkers) / float64(e.workers)
	}
	return s
}
