package service

import (
	"sync/atomic"
	"time"

	"repro/internal/ccd"
	"repro/internal/cluster"
	"repro/internal/trace"
)

// counters aggregates the engine's atomic operation counts.
type counters struct {
	analyses     atomic.Int64
	fingerprints atomic.Int64
	matches      atomic.Int64
	corpusAdds   atomic.Int64
	tasks        atomic.Int64
	busy         atomic.Int64
	peakBusy     atomic.Int64

	// Admission control and priority scheduling: in-flight admitted
	// requests, admission decisions, interactive tasks blocked on a worker
	// slot, and background tasks that parked behind them.
	inflight           atomic.Int64
	admitted           atomic.Int64
	shed               atomic.Int64
	interactiveWaiting atomic.Int64
	yields             atomic.Int64

	// Match read-path pruning: how far candidates got before being cut.
	matchCandidates    atomic.Int64
	matchFilterPruned  atomic.Int64
	matchScored        atomic.Int64
	matchCutoffSkipped atomic.Int64

	matchLatency trace.Hist

	// Quality-degradation ladder and deadline-budget accounting.
	tierEntered     atomic.Int64
	limitHalved     atomic.Int64
	etaRaised       atomic.Int64
	clustersStale   atomic.Int64
	budgetRequests  atomic.Int64
	deadlineExpired atomic.Int64
	deadlineShipped atomic.Int64

	// Corpus-wide clone studies (the /v1/study corpus mode): cumulative
	// per-phase funnel across every self-join this engine ran.
	studiesStarted   atomic.Int64
	studiesCompleted atomic.Int64
	studiesCancelled atomic.Int64
	studiesFailed    atomic.Int64
	studyDocs        atomic.Int64
	studyQueried     atomic.Int64
	studyCandidates  atomic.Int64
	studyScored      atomic.Int64
	studyCutoffs     atomic.Int64
	studyMatches     atomic.Int64
	studyUnions      atomic.Int64
	studyErrors      atomic.Int64
}

// observeStudy folds a finished self-join's funnel in, classifying the
// outcome by err: nil is a completion, a context error a client
// cancellation, anything else a failure. Conflating the last two would send
// an operator chasing a phantom client cancel instead of the backend error
// that actually aborted the study.
func (c *counters) observeStudy(st SelfJoinStats, err error) {
	switch {
	case err == nil:
		c.studiesCompleted.Add(1)
	case isCancellation(err):
		c.studiesCancelled.Add(1)
	default:
		c.studiesFailed.Add(1)
	}
	c.studyDocs.Add(st.Docs)
	c.studyQueried.Add(st.Queried)
	c.studyCandidates.Add(st.Candidates)
	c.studyScored.Add(st.Scored)
	c.studyCutoffs.Add(st.CutoffSkipped)
	c.studyMatches.Add(st.Matches)
	c.studyUnions.Add(st.Unions)
	c.studyErrors.Add(st.Errors)
}

// observeMatch folds one match call's stats and latency into the counters.
func (c *counters) observeMatch(st ccd.MatchStats, elapsed time.Duration) {
	c.matches.Add(1)
	c.matchCandidates.Add(int64(st.Candidates))
	c.matchFilterPruned.Add(int64(st.FilterPruned))
	c.matchScored.Add(int64(st.Scored))
	c.matchCutoffSkipped.Add(int64(st.CutoffSkipped))
	c.matchLatency.ObserveDuration(elapsed)
}

// taskStart accounts one task entering a worker slot and keeps the
// saturation high-water mark.
func (c *counters) taskStart() {
	c.tasks.Add(1)
	busy := c.busy.Add(1)
	for {
		peak := c.peakBusy.Load()
		if busy <= peak || c.peakBusy.CompareAndSwap(peak, busy) {
			return
		}
	}
}

func (c *counters) taskDone() { c.busy.Add(-1) }

// LatencyStats is the JSON view of a latency histogram (µs observations).
// Quantiles landing in the overflow bucket report MaxUs, the true observed
// maximum — a stalled server's p99 is minutes, not the bucket ceiling.
// Buckets carries the raw log₂ counts for the Prometheus exposition; the
// JSON view keeps the summary fields only.
type LatencyStats struct {
	Count    int64   `json:"count"`
	MeanUs   float64 `json:"mean_us"`
	P50Us    float64 `json:"p50_us"`
	P90Us    float64 `json:"p90_us"`
	P99Us    float64 `json:"p99_us"`
	MaxUs    int64   `json:"max_us"`
	TotalSec float64 `json:"total_sec"`

	Buckets [trace.HistBuckets]int64 `json:"-"`
}

// latencyStats summarizes a microseconds histogram for JSON and Prometheus.
func latencyStats(h *trace.Hist) LatencyStats {
	s := h.Snapshot()
	return LatencyStats{
		Count:    s.Count,
		MeanUs:   s.Mean(),
		P50Us:    s.Quantile(0.50),
		P90Us:    s.Quantile(0.90),
		P99Us:    s.Quantile(0.99),
		MaxUs:    s.Max,
		TotalSec: float64(s.Sum) / 1e6,
		Buckets:  s.Buckets,
	}
}

// SizeStats is the JSON view of a unitless size histogram (group-commit
// batch sizes, ...). Same log₂ layout as LatencyStats, raw units.
type SizeStats struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Max   int64   `json:"max"`

	Buckets [trace.HistBuckets]int64 `json:"-"`
}

// sizeStats summarizes a size histogram for JSON and Prometheus.
func sizeStats(h *trace.Hist) SizeStats {
	s := h.Snapshot()
	return SizeStats{
		Count:   s.Count,
		Mean:    s.Mean(),
		P50:     s.Quantile(0.50),
		P99:     s.Quantile(0.99),
		Max:     s.Max,
		Buckets: s.Buckets,
	}
}

// Snapshot is a point-in-time view of an Engine's load and cache
// effectiveness, JSON-serializable for the /metrics endpoint.
type Snapshot struct {
	// Workers is the pool size; BusyWorkers the slots currently held;
	// Saturation their ratio; PeakBusyWorkers the high-water mark.
	Workers         int     `json:"workers"`
	BusyWorkers     int64   `json:"busy_workers"`
	PeakBusyWorkers int64   `json:"peak_busy_workers"`
	Saturation      float64 `json:"saturation"`

	// TasksExecuted counts every unit of work that went through the pool.
	TasksExecuted int64 `json:"tasks_executed"`

	// Admission reports the bounded request queue and priority gate.
	Admission AdmissionSnapshot `json:"admission"`

	// Operation counts.
	Analyses     int64 `json:"analyses"`
	Fingerprints int64 `json:"fingerprints"`
	Matches      int64 `json:"matches"`
	CorpusAdds   int64 `json:"corpus_adds"`
	CorpusSize   int   `json:"corpus_size"`

	// Read-path shape of the ccd corpus: the generations the lock-free
	// readers currently see, across all shards.
	CorpusShardCount  int    `json:"corpus_shard_count"`
	CorpusSegments    int    `json:"corpus_segments"`
	CorpusGeneration  uint64 `json:"corpus_generation"`
	CorpusPublishes   int64  `json:"corpus_publishes"`
	CorpusCompactions int64  `json:"corpus_compactions"`

	// CorpusShards breaks the ccd corpus down per generation-shard.
	CorpusShards []ShardSnapshot `json:"corpus_shards"`

	// Backends reports every loaded similarity backend's corpus: size,
	// shard layout, ingest accounting and its own match funnel.
	Backends map[string]BackendSnapshot `json:"backends"`

	// Match pruning funnel: candidates from the n-gram pre-filter, how many
	// the η cutoff abandoned inside the filter, how many were fully scored,
	// and how many the top-K lower bound cut short.
	MatchCandidates    int64 `json:"match_candidates"`
	MatchFilterPruned  int64 `json:"match_filter_pruned"`
	MatchScored        int64 `json:"match_scored"`
	MatchCutoffSkipped int64 `json:"match_cutoff_skipped"`

	// MatchLatency is the /v1/match service-time histogram summary.
	MatchLatency LatencyStats `json:"match_latency"`

	// Degrade reports the quality-degradation ladder; Deadline the
	// request-budget spine.
	Degrade  DegradeSnapshot  `json:"degrade"`
	Deadline DeadlineSnapshot `json:"deadline"`

	// Durability reports the WAL/snapshot instrumentation (present only when
	// the ccd corpus has a store attached).
	Durability *DurabilityStats `json:"durability,omitempty"`

	// SelfJoin is the cumulative per-phase funnel of the corpus-wide clone
	// studies this engine ran (the /v1/study corpus mode).
	SelfJoin StudyFunnel `json:"self_join"`

	// Clusters is the live clone-cluster view (present only when the engine
	// tracks clusters online).
	Clusters *cluster.Summary `json:"clusters,omitempty"`

	// Per-layer cache statistics.
	ParseCache       CacheStats `json:"parse_cache"`
	ReportCache      CacheStats `json:"report_cache"`
	FingerprintCache CacheStats `json:"fingerprint_cache"`
}

// StudyFunnel aggregates the engine's clone-study phases for /metrics:
// enumerate → block (posting-list candidates) → verify (scored vs cut) →
// edges (matches, of which unions merged components).
type StudyFunnel struct {
	Started       int64 `json:"started"`
	Completed     int64 `json:"completed"`
	Cancelled     int64 `json:"cancelled"`
	Failed        int64 `json:"failed"`
	Docs          int64 `json:"docs"`
	Queried       int64 `json:"queried"`
	Candidates    int64 `json:"candidates"`
	Scored        int64 `json:"scored"`
	CutoffSkipped int64 `json:"cutoff_skipped"`
	Matches       int64 `json:"matches"`
	Unions        int64 `json:"unions"`
	Errors        int64 `json:"errors"`
}

// BackendSnapshot is the /metrics view of one loaded backend's corpus.
type BackendSnapshot struct {
	Size       int          `json:"size"`
	Shards     int          `json:"shards"`
	Segments   int          `json:"segments"`
	Adds       int64        `json:"adds"`
	Skips      int64        `json:"skips,omitempty"`
	Supersedes int64        `json:"supersedes,omitempty"`
	Funnel     CorpusFunnel `json:"funnel"`
}

// Metrics returns a snapshot of the engine's counters and caches.
func (e *Engine) Metrics() Snapshot {
	backends := make(map[string]BackendSnapshot, len(e.corpora))
	for name, c := range e.corpora {
		backends[name] = BackendSnapshot{
			Size:       c.Len(),
			Shards:     c.Shards(),
			Segments:   c.Segments(),
			Adds:       c.Adds(),
			Skips:      c.Skips(),
			Supersedes: c.Supersedes(),
			Funnel:     c.Funnel(),
		}
	}
	s := Snapshot{
		Workers:         e.workers,
		BusyWorkers:     e.ctr.busy.Load(),
		PeakBusyWorkers: e.ctr.peakBusy.Load(),
		TasksExecuted:   e.ctr.tasks.Load(),
		Admission: AdmissionSnapshot{
			Enabled:            e.adm.capacity > 0,
			Capacity:           e.adm.capacity,
			Inflight:           e.ctr.inflight.Load(),
			InteractiveWaiting: e.ctr.interactiveWaiting.Load(),
			Admitted:           e.ctr.admitted.Load(),
			Shed:               e.ctr.shed.Load(),
			BackgroundYields:   e.ctr.yields.Load(),
		},
		Analyses:           e.ctr.analyses.Load(),
		Fingerprints:       e.ctr.fingerprints.Load(),
		Matches:            e.ctr.matches.Load(),
		CorpusAdds:         e.ctr.corpusAdds.Load(),
		CorpusSize:         e.corpus.Len(),
		CorpusShardCount:   e.corpus.Shards(),
		CorpusSegments:     e.corpus.Segments(),
		CorpusGeneration:   e.corpus.Generation(),
		CorpusPublishes:    e.corpus.Publishes(),
		CorpusCompactions:  e.corpus.Compactions(),
		CorpusShards:       e.corpus.ShardStats(),
		Backends:           backends,
		MatchCandidates:    e.ctr.matchCandidates.Load(),
		MatchFilterPruned:  e.ctr.matchFilterPruned.Load(),
		MatchScored:        e.ctr.matchScored.Load(),
		MatchCutoffSkipped: e.ctr.matchCutoffSkipped.Load(),
		MatchLatency:       latencyStats(&e.ctr.matchLatency),
		Degrade: DegradeSnapshot{
			Tier:          e.DegradeTier(),
			TierEntered:   e.ctr.tierEntered.Load(),
			LimitHalved:   e.ctr.limitHalved.Load(),
			EtaRaised:     e.ctr.etaRaised.Load(),
			ClustersStale: e.ctr.clustersStale.Load(),
		},
		Deadline: DeadlineSnapshot{
			BudgetRequests: e.ctr.budgetRequests.Load(),
			Expired:        e.ctr.deadlineExpired.Load(),
			Shipped:        e.ctr.deadlineShipped.Load(),
		},
		SelfJoin: StudyFunnel{
			Started:       e.ctr.studiesStarted.Load(),
			Completed:     e.ctr.studiesCompleted.Load(),
			Cancelled:     e.ctr.studiesCancelled.Load(),
			Failed:        e.ctr.studiesFailed.Load(),
			Docs:          e.ctr.studyDocs.Load(),
			Queried:       e.ctr.studyQueried.Load(),
			Candidates:    e.ctr.studyCandidates.Load(),
			Scored:        e.ctr.studyScored.Load(),
			CutoffSkipped: e.ctr.studyCutoffs.Load(),
			Matches:       e.ctr.studyMatches.Load(),
			Unions:        e.ctr.studyUnions.Load(),
			Errors:        e.ctr.studyErrors.Load(),
		},
		ParseCache:       e.graphs.Stats(),
		ReportCache:      e.reports.Stats(),
		FingerprintCache: e.prints.Stats(),
	}
	if e.clusters != nil {
		sum := e.clusters.Summary()
		s.Clusters = &sum
	}
	if st := e.corpus.store; st != nil {
		d := st.Durability()
		s.Durability = &d
	}
	if e.workers > 0 {
		s.Saturation = float64(s.BusyWorkers) / float64(e.workers)
	}
	return s
}
