package service

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ccd"
)

// Vulnerable / benign snippet sources used across the tests. reentrantSrc
// triggers the reentrancy detector (state write after an external money
// call); benignSrc parses cleanly and triggers nothing.
const (
	reentrantSrc = `contract Victim {
	mapping(address => uint) balances;
	function withdraw() public {
		msg.sender.call{value: balances[msg.sender]}("");
		balances[msg.sender] = 0;
	}
}`
	benignSrc = `contract Safe {
	uint total;
	function deposit(uint amount) public {
		total = total + 1;
	}
}`
)

func TestContentKeyNormalizes(t *testing.T) {
	base := ContentKey(benignSrc)
	comments := ContentKey("// a comment\n" + benignSrc + "\n/* trailing */")
	spaced := ContentKey("  " + benignSrc + "\n\n")
	if base != comments || base != spaced {
		t.Errorf("normalized variants must share a key: %s %s %s", base, comments, spaced)
	}
	if base == ContentKey(reentrantSrc) {
		t.Error("distinct sources must not collide")
	}
}

func TestAnalyzeFindsVulnerabilityAndCaches(t *testing.T) {
	e := New(Options{Workers: 2})
	rep, err := e.Analyze(reentrantSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("no findings on reentrant source")
	}
	// Identical resubmission must hit the report cache.
	rep2, err := e.Analyze(reentrantSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Findings) != len(rep.Findings) {
		t.Errorf("cached report differs: %d vs %d findings", len(rep2.Findings), len(rep.Findings))
	}
	st := e.Metrics().ReportCache
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("report cache hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
	// A comment-only variant shares the content address.
	if _, err := e.Analyze("// note\n" + reentrantSrc); err != nil {
		t.Fatal(err)
	}
	if hits := e.Metrics().ReportCache.Hits; hits != 2 {
		t.Errorf("normalized variant should hit: hits=%d", hits)
	}
}

func TestAnalyzeErrorCached(t *testing.T) {
	e := New(Options{Workers: 1})
	const garbage = "pragma solidity ^0.4.0; contract {{{{"
	_, err1 := e.Analyze(garbage)
	_, err2 := e.Analyze(garbage)
	if (err1 == nil) != (err2 == nil) {
		t.Errorf("cache must replay errors: first=%v second=%v", err1, err2)
	}
}

func TestCacheEviction(t *testing.T) {
	c := newLRU[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.Put("c", 3) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should survive (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be present")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions=%d, want 1", st.Evictions)
	}
	if st.Len != 2 || st.Cap != 2 {
		t.Errorf("len=%d cap=%d, want 2/2", st.Len, st.Cap)
	}
}

func TestCacheDisabled(t *testing.T) {
	e := New(Options{Workers: 1, CacheEntries: -1})
	if _, err := e.Analyze(reentrantSrc); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Analyze(reentrantSrc); err != nil {
		t.Fatal(err)
	}
	st := e.Metrics().ReportCache
	if st.Hits != 0 || st.Len != 0 {
		t.Errorf("disabled cache recorded hits=%d len=%d", st.Hits, st.Len)
	}
}

func TestEngineBatchOrderPreserved(t *testing.T) {
	e := New(Options{Workers: 4})
	srcs := make([]string, 40)
	for i := range srcs {
		if i%2 == 0 {
			srcs[i] = fmt.Sprintf("contract C%d { uint x; function f() public { x = %d; } }", i, i)
		} else {
			srcs[i] = reentrantSrc
		}
	}
	out := e.AnalyzeBatch(srcs)
	if len(out) != len(srcs) {
		t.Fatalf("got %d results", len(out))
	}
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		vulnerable := len(r.Report.Findings) > 0
		if vulnerable != (i%2 == 1) {
			t.Errorf("result %d: vulnerable=%v, want %v", i, vulnerable, i%2 == 1)
		}
	}
}

// TestConcurrentIngestAndMatch hammers the sharded corpus from many
// goroutines at once — half ingesting, half matching — and then verifies
// every ingested document is findable. Run under -race this is the
// concurrency safety net for the serving path.
func TestConcurrentIngestAndMatch(t *testing.T) {
	e := New(Options{Workers: 8})
	const writers, docsPerWriter, readers = 8, 25, 8

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for d := 0; d < docsPerWriter; d++ {
				id := fmt.Sprintf("c-%d-%d", w, d)
				if err := e.CorpusAdd(id, reentrantSrc); err != nil {
					t.Errorf("add %s: %v", id, err)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := e.Match(reentrantSrc); err != nil {
					t.Errorf("match: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	if n := e.Corpus().Len(); n != writers*docsPerWriter {
		t.Fatalf("corpus size %d, want %d", n, writers*docsPerWriter)
	}
	ms, err := e.Match(reentrantSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != writers*docsPerWriter {
		t.Fatalf("identical source should match every entry: %d of %d", len(ms), writers*docsPerWriter)
	}
	for i := 1; i < len(ms); i++ {
		prev, cur := ms[i-1], ms[i]
		if prev.Score < cur.Score || (prev.Score == cur.Score && prev.ID >= cur.ID) {
			t.Fatalf("matches not in deterministic order at %d: %+v then %+v", i, prev, cur)
		}
	}
}

func TestCorpusGenerationsCompact(t *testing.T) {
	c := NewCorpus(ccd.DefaultConfig, 1) // one shard: inspect its chain directly
	const docs = 200
	for i := 0; i < docs; i++ {
		_ = c.Add(fmt.Sprintf("doc-%d", i), ccd.Fingerprint("abcdefgh"))
	}
	if c.Len() != docs {
		t.Fatalf("len %d", c.Len())
	}
	// Logarithmic compaction keeps the segment count O(log n): with 200
	// single adds there must be at most ⌈log₂ 200⌉ = 8 segments, each more
	// than twice its successor.
	g := c.shards[0].gen.Load()
	if len(g.segments) == 0 || len(g.segments) > 8 {
		t.Fatalf("segment count %d after %d adds", len(g.segments), docs)
	}
	total := 0
	for i, seg := range g.segments {
		total += seg.Len()
		if i > 0 && 2*seg.Len() >= g.segments[i-1].Len() {
			t.Errorf("segment %d (%d entries) not geometrically smaller than %d (%d)",
				i, seg.Len(), i-1, g.segments[i-1].Len())
		}
	}
	if total != docs {
		t.Fatalf("segments hold %d entries, want %d", total, docs)
	}
	if c.Publishes() == 0 || c.Compactions() == 0 {
		t.Errorf("publishes=%d compactions=%d, want both > 0", c.Publishes(), c.Compactions())
	}
}

// TestCorpusShardPartitioning: documents spread across shards by id hash,
// every shard's entries stay findable, and Len/Segments aggregate cleanly.
func TestCorpusShardPartitioning(t *testing.T) {
	c := NewCorpus(ccd.DefaultConfig, 4)
	const docs = 120
	for i := 0; i < docs; i++ {
		if err := c.Add(fmt.Sprintf("doc-%d", i), testFP(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != docs {
		t.Fatalf("len %d, want %d", c.Len(), docs)
	}
	stats := c.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("shard stats: %d", len(stats))
	}
	nonEmpty, total := 0, 0
	for _, st := range stats {
		total += st.Size
		if st.Size > 0 {
			nonEmpty++
		}
	}
	if total != docs {
		t.Fatalf("shard sizes sum to %d, want %d", total, docs)
	}
	if nonEmpty < 3 {
		t.Errorf("hash partitioning left %d of 4 shards populated", nonEmpty)
	}
	verifyEntries(t, c, docs)
}

// TestCorpusReadersNeverBlockOnWriters: a reader loaded generation stays
// fully usable while writers publish new ones, and reads observe
// monotonically growing corpora (no torn or shrinking states).
func TestCorpusReadersNeverBlockOnWriters(t *testing.T) {
	c := NewCorpus(ccd.DefaultConfig, 0)
	fp := ccd.Fingerprint("QxRtYuIoPAbCdEfGh.ZxCvBnMQwErTy")
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: continuous single adds (worst-case publish churn)
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
				_ = c.Add(fmt.Sprintf("w-%d", i), fp)
			}
		}
	}()
	prev := 0
	for i := 0; i < 2000; i++ {
		ms, _ := c.MatchTopK(fp, 5)
		if len(ms) > 5 {
			t.Fatalf("top-5 returned %d matches", len(ms))
		}
		if n := c.Len(); n < prev {
			t.Fatalf("corpus shrank: %d after %d", n, prev)
		} else {
			prev = n
		}
	}
	close(done)
	wg.Wait()
}

func TestMapCoversAllIndicesOnce(t *testing.T) {
	e := New(Options{Workers: 3})
	const n = 500
	hits := make([]int32, n)
	var mu sync.Mutex
	e.Map(n, func(i int) {
		mu.Lock()
		hits[i]++
		mu.Unlock()
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d executed %d times", i, h)
		}
	}
	m := e.Metrics()
	if m.TasksExecuted != n {
		t.Errorf("tasks=%d, want %d", m.TasksExecuted, n)
	}
	if m.PeakBusyWorkers > int64(e.Workers()) {
		t.Errorf("peak busy %d exceeds pool %d", m.PeakBusyWorkers, e.Workers())
	}
	if m.BusyWorkers != 0 {
		t.Errorf("busy workers after quiescence: %d", m.BusyWorkers)
	}
}

// TestMapPropagatesPanic: a panic inside a pooled task must surface on the
// calling goroutine (so recover guards around batch work keep working), not
// crash the process from an internal worker goroutine.
func TestMapPropagatesPanic(t *testing.T) {
	e := New(Options{Workers: 4})
	defer func() {
		if p := recover(); p != "boom" {
			t.Fatalf("recovered %v, want boom", p)
		}
		// The pool must be fully released for subsequent work.
		e.Map(8, func(int) {})
		if busy := e.Metrics().BusyWorkers; busy != 0 {
			t.Fatalf("busy workers after panic drain: %d", busy)
		}
	}()
	e.Map(100, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
	t.Fatal("panic swallowed")
}

func TestMetricsSnapshot(t *testing.T) {
	e := New(Options{Workers: 2})
	if _, err := e.Analyze(benignSrc); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Analyze(benignSrc); err != nil {
		t.Fatal(err)
	}
	_ = e.CorpusAdd("a", benignSrc)
	if _, err := e.Match(benignSrc); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Analyses != 2 || m.CorpusAdds != 1 || m.Matches != 1 {
		t.Errorf("op counts: %+v", m)
	}
	if m.CorpusSize != 1 {
		t.Errorf("corpus size %d", m.CorpusSize)
	}
	if got := m.ReportCache.HitRate(); got != 0.5 {
		t.Errorf("report hit rate %.2f, want 0.50", got)
	}
	// Fingerprint cache: miss on CorpusAdd, hit on Match of same source.
	if m.FingerprintCache.Hits == 0 {
		t.Error("fingerprint cache never hit")
	}
}
