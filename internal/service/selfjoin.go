package service

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/ccd"
	"repro/internal/cluster"
	"repro/internal/index"
	"repro/internal/trace"
)

// ErrSelfJoinRunning is returned by SelfJoin.Run when the join is already
// executing: overlapping runs would process the same segments twice
// concurrently, move the (shard, segment) checkpoint backwards and
// double-count the funnel. Resume only after the active run has returned.
var ErrSelfJoinRunning = errors.New("service: self-join already running")

// isCancellation is the one place that decides whether an error means "the
// client cut the work" (a pause, for the self-join) rather than a real
// failure; recordQueryFailure and the study-outcome metrics must agree on it.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// SelfJoin is the corpus-wide clone study planner: it enumerates every
// document of the serving corpus and finds its clones by running each one
// through the posting-list match planner, feeding the resulting edges into
// an incremental union-find. Candidate pairs come from the n-gram
// pigeonhole blocking inside each backend segment — no O(n²) scoring pass —
// and the per-query verification scatter-gathers across the generation-
// shards under the shared ccd.AtomicBound admission machinery, exactly like
// interactive /v1/match traffic.
//
// The join is context-cancellable and resumable: work is checkpointed by
// (shard, segment) of the enumeration plan, which is captured once from the
// source corpus's immutable generations at construction and therefore
// stable across pauses, compactions and concurrent ingest. Cancelling Run
// mid-segment loses nothing — re-running a segment re-derives the same
// edges, and union-find is idempotent — so Resume simply calls Run again.
type SelfJoin struct {
	source *Corpus // enumerated corpus (must expose entries — ccd)
	target *Corpus // corpus queried for clones (any loaded backend)
	limit  int     // per-query match cap (0 = every clone at ε)

	// plan is the captured enumeration snapshot: one immutable segment list
	// per source shard.
	plan [][]index.Backend

	// par fans a segment's queries out; the engine wires its pooled MapCtx
	// here, the standalone (offline) join runs serially.
	par func(ctx context.Context, n int, fn func(int)) error

	set *cluster.Set

	mu      sync.Mutex
	stats   SelfJoinStats
	shard   int   // checkpoint: next shard
	segment int   // checkpoint: next segment within that shard
	segErr  error // first non-cancellation query failure of the running segment
	started bool
	running bool // a Run call is active (rejects overlapping runs)
	done    bool
}

// SelfJoinStats is the per-phase funnel of one corpus self-join.
type SelfJoinStats struct {
	// Enumeration phase.
	Docs          int64 `json:"docs"`           // documents enumerated
	SegmentsDone  int   `json:"segments_done"`  // checkpointed segments
	SegmentsTotal int   `json:"segments_total"` // segments in the plan

	// Query phase (per-document posting-list matching).
	Queried       int64 `json:"queried"`
	Candidates    int64 `json:"candidates"`
	FilterPruned  int64 `json:"filter_pruned"`
	Scored        int64 `json:"scored"`
	CutoffSkipped int64 `json:"cutoff_skipped"`

	// Edge phase.
	Matches int64 `json:"matches"` // clone pairs reported (self-hits excluded)
	Unions  int64 `json:"unions"`  // edges that merged two components

	// Lifecycle.
	Resumes   int64 `json:"resumes,omitempty"`
	Cancelled int64 `json:"cancelled,omitempty"` // queries cut by ctx
	Errors    int64 `json:"errors,omitempty"`    // queries that failed for a non-cancellation reason
}

// add folds one query's outcome in. Callers hold j.mu.
func (s *SelfJoinStats) add(st ccd.MatchStats, matches, unions int64) {
	s.Queried++
	s.Candidates += int64(st.Candidates)
	s.FilterPruned += int64(st.FilterPruned)
	s.Scored += int64(st.Scored)
	s.CutoffSkipped += int64(st.CutoffSkipped)
	s.Matches += matches
	s.Unions += unions
}

// NewSelfJoin plans a clone self-join: source supplies the documents (it
// must be able to enumerate entries — the ccd system-of-record corpus),
// target answers the clone queries (any backend; pass source itself for the
// plain ccd study). limit caps the matches per query (0 = every clone at the
// backend's ε; a cap bounds the quadratic blow-up of giant clusters while
// preserving their connectivity through shared top matches).
func NewSelfJoin(source, target *Corpus, limit int) (*SelfJoin, error) {
	j := &SelfJoin{
		source: source,
		target: target,
		limit:  limit,
		set:    cluster.New(),
		par: func(ctx context.Context, n int, fn func(int)) error {
			for i := 0; i < n; i++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				fn(i)
			}
			return ctx.Err()
		},
	}
	if _, ok := target.newSegment().(index.SourceOnlyMatcher); ok {
		return nil, fmt.Errorf("service: self-join target backend %q cannot match the enumerated fingerprint-only queries (it needs document source)", target.Backend())
	}
	total := 0
	j.plan = make([][]index.Backend, len(source.shards))
	for i, sh := range source.shards {
		segs := sh.gen.Load().segments
		for _, seg := range segs {
			if _, ok := seg.(index.EntryLister); !ok {
				return nil, fmt.Errorf("service: self-join source backend %q cannot enumerate entries", seg.Name())
			}
		}
		j.plan[i] = segs
		total += len(segs)
	}
	j.stats.SegmentsTotal = total
	return j, nil
}

// Clusters exposes the join's (partial, while running) cluster set.
func (j *SelfJoin) Clusters() *cluster.Set { return j.set }

// Stats returns a snapshot of the per-phase funnel.
func (j *SelfJoin) Stats() SelfJoinStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Checkpoint reports the resume position: the next (shard, segment) to
// process, and whether the join has completed.
func (j *SelfJoin) Checkpoint() (shard, segment int, done bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.shard, j.segment, j.done
}

// Run executes the join from its checkpoint. A cancelled ctx stops at the
// next query boundary and returns ctx.Err(); calling Run again resumes from
// the last completed segment (the unfinished segment re-runs — edge
// derivation is deterministic and union-find idempotent, so the partial
// work is absorbed, with the funnel counters recording the extra queries).
// At most one Run may be active at a time: an overlapping call returns
// ErrSelfJoinRunning instead of racing the checkpoint.
func (j *SelfJoin) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	j.mu.Lock()
	if j.done {
		j.mu.Unlock()
		return nil
	}
	if j.running {
		j.mu.Unlock()
		return ErrSelfJoinRunning
	}
	j.running = true
	if j.started {
		j.stats.Resumes++
	}
	j.started = true
	shard, segment := j.shard, j.segment
	j.mu.Unlock()
	defer func() {
		j.mu.Lock()
		j.running = false
		j.mu.Unlock()
	}()

	for ; shard < len(j.plan); shard, segment = shard+1, 0 {
		for ; segment < len(j.plan[shard]); segment++ {
			if err := j.runSegment(ctx, j.plan[shard][segment]); err != nil {
				return err
			}
			j.mu.Lock()
			j.shard, j.segment = shard, segment+1
			j.stats.SegmentsDone++
			j.mu.Unlock()
		}
	}
	j.mu.Lock()
	j.done = true
	j.mu.Unlock()
	return nil
}

// runSegment self-joins every document of one enumeration segment.
func (j *SelfJoin) runSegment(ctx context.Context, seg index.Backend) error {
	ctx, sp := trace.Start(ctx, "selfjoin.segment")
	defer sp.End()
	entries := seg.(index.EntryLister).Entries()
	sp.AnnotateInt("docs", int64(len(entries)))
	j.mu.Lock()
	j.stats.Docs += int64(len(entries))
	j.mu.Unlock()
	// Singletons count too: every enumerated document appears in the
	// cluster-size distribution even when nothing matches it.
	for _, e := range entries {
		j.set.Add(e.ID)
	}
	// The query document is itself in the target corpus and occupies one
	// TopK slot with its self-match, so ask the backend for one more than
	// the edge cap and trim after the self-filter — otherwise the effective
	// cap is limit-1 and limit=1 finds no clones at all.
	k := j.limit
	if k > 0 {
		k++
	}
	err := j.par(ctx, len(entries), func(i int) {
		e := entries[i]
		ms, st, err := j.target.MatchDocTopK(ctx, index.Doc{ID: e.ID, FP: e.FP}, k)
		if err != nil {
			j.recordQueryFailure(e.ID, err)
			return
		}
		var matches, unions int64
		for _, m := range ms {
			if m.ID == e.ID {
				continue
			}
			if j.limit > 0 && matches >= int64(j.limit) {
				break // self tie-broken out of the k+1 slots: keep the cap exact
			}
			matches++
			if j.set.Union(e.ID, m.ID) {
				unions++
			}
		}
		j.mu.Lock()
		j.stats.add(st, matches, unions)
		j.mu.Unlock()
	})
	j.mu.Lock()
	segErr := j.segErr
	j.segErr = nil
	j.mu.Unlock()
	if err != nil {
		return err
	}
	// Failing the segment keeps the checkpoint behind it, so a retry re-runs
	// the whole segment and no document's edges are lost.
	return segErr
}

// recordQueryFailure classifies one failed per-document query. Context
// cancellation is a pause — the unfinished segment re-runs on resume, so the
// query is merely counted. Anything else is a real failure: silently
// counting it as a cancellation would drop the document's edges and bias
// the study, so it is tallied apart and fails the segment via segErr.
func (j *SelfJoin) recordQueryFailure(id string, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if isCancellation(err) {
		j.stats.Cancelled++
		return
	}
	j.stats.Errors++
	if j.segErr == nil {
		j.segErr = fmt.Errorf("service: self-join query %q: %w", id, err)
	}
}

// CloneReport is the outcome of a corpus-wide clone study: the clone
// parameters, the per-phase funnel and the cluster-size distribution the
// paper's corpus measurement is built from.
type CloneReport struct {
	Backend string  `json:"backend"`
	Eta     float64 `json:"eta"`
	Epsilon float64 `json:"epsilon"`
	// Limit is the per-query match cap the join ran with (0 = exact).
	Limit   int             `json:"limit,omitempty"`
	Stats   SelfJoinStats   `json:"stats"`
	Summary cluster.Summary `json:"summary"`
	// Top lists the largest clusters (size descending, representative id
	// ascending), without member lists.
	Top []cluster.Cluster `json:"top,omitempty"`
}

// Report condenses the join into a CloneReport with the topN largest
// clusters attached (topN ≤ 0 omits them).
func (j *SelfJoin) Report(topN int) *CloneReport {
	rep := &CloneReport{
		Backend: j.target.Backend(),
		Eta:     j.target.Config().Eta,
		Epsilon: j.target.Epsilon(),
		Limit:   j.limit,
		Stats:   j.Stats(),
		Summary: j.set.Summary(),
	}
	if topN > 0 {
		top := j.set.Clusters(2, false)
		if len(top) > topN {
			top = top[:topN]
		}
		rep.Top = top
	}
	return rep
}

// Epsilon returns the corpus backend's effective admission threshold.
func (c *Corpus) Epsilon() float64 { return c.newSegment().Epsilon() }

// NaiveSelfJoin is the ablation baseline the planner is benchmarked
// against: an all-pairs scoring pass with no posting-list blocking. Returns
// the resulting cluster set.
func NaiveSelfJoin(entries []ccd.Entry, cfg ccd.Config) *cluster.Set {
	if cfg.N == 0 {
		cfg = ccd.DefaultConfig
	}
	set := cluster.New()
	for _, e := range entries {
		set.Add(e.ID)
	}
	for i := 0; i < len(entries); i++ {
		for k := i + 1; k < len(entries); k++ {
			if entries[i].ID == entries[k].ID {
				continue
			}
			if _, ok := ccd.SimilarityAtLeast(entries[i].FP, entries[k].FP, cfg.Epsilon); ok {
				set.Union(entries[i].ID, entries[k].ID)
			}
		}
	}
	return set
}
