// Package service is the concurrent analysis layer in front of the
// reproduction's primitives: a bounded worker pool, content-addressed LRU
// caches for parse results, CCC vulnerability reports and CCD fingerprints,
// and a generational corpus whose readers are lock-free (matching loads one
// immutable snapshot pointer; ingest publishes new generations off the read
// path). The study pipeline fans its hot steps out through the same Engine
// that cmd/serve exposes over HTTP, so batch reproduction and online serving
// share one scheduling and caching substrate.
package service

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ccc"
	"repro/internal/ccd"
	"repro/internal/cpg"
)

// DefaultCacheEntries bounds each cache layer when Options does not override
// it.
const DefaultCacheEntries = 4096

// Options configures an Engine.
type Options struct {
	// Workers bounds concurrent work; ≤ 0 selects GOMAXPROCS.
	Workers int
	// CacheEntries caps each cache layer (parse, report, fingerprint).
	// 0 selects DefaultCacheEntries; < 0 disables caching (benchmarks use
	// this to measure the uncached path).
	CacheEntries int
	// CCD configures the engine's serving corpus (zero value:
	// ccd.DefaultConfig).
	CCD ccd.Config
	// Shards is the legacy shard count of the RWMutex-sharded corpus;
	// the generational corpus ignores it (accepted for compatibility).
	Shards int
}

// Engine wraps CCC and CCD behind a worker pool and content-addressed
// caches. The cached primitives (Graph, Analyze, Fingerprint, Match, ...)
// are safe for concurrent use and do not themselves occupy worker slots;
// bounding happens at the task level through Do, Map and the *Batch
// helpers, so primitives may be freely composed inside pooled tasks without
// risking slot-starvation deadlocks.
type Engine struct {
	workers int
	sem     chan struct{}
	ctr     counters

	graphs  *lru[graphEntry]
	reports *lru[reportEntry]
	prints  *lru[fpEntry]

	corpus *Corpus
}

// Cached values retain the original computation's error so a hit replays
// exactly what a miss produced (parse errors are deterministic per content).
type graphEntry struct {
	g   *cpg.Graph
	err error
}

type reportEntry struct {
	rep ccc.Report
	err error
}

type fpEntry struct {
	fp  ccd.Fingerprint
	err error
}

// New returns an Engine with the given options.
func New(opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers: workers,
		sem:     make(chan struct{}, workers),
		graphs:  newLRU[graphEntry](opts.CacheEntries),
		reports: newLRU[reportEntry](opts.CacheEntries),
		prints:  newLRU[fpEntry](opts.CacheEntries),
		corpus:  NewCorpus(opts.CCD, opts.Shards),
	}
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// --- worker pool --------------------------------------------------------------

// Do runs fn on a worker slot, blocking until one is free.
func (e *Engine) Do(fn func()) {
	e.sem <- struct{}{}
	e.ctr.taskStart()
	defer func() {
		e.ctr.taskDone()
		<-e.sem
	}()
	fn()
}

// Map runs fn(i) for every i in [0, n) across the worker pool and waits for
// all of them. Items are dispatched through the engine-wide semaphore, so
// concurrent Map calls (several batch requests, a study job) share the same
// global bound. fn must not call Do or Map itself.
//
// A panic in fn stops dispatch and is re-raised on the calling goroutine
// once in-flight items drain, so callers' recover guards (the study job
// handler, net/http's per-request recovery) see it exactly as if the work
// had run serially.
func (e *Engine) Map(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	spawn := min(e.workers, n)
	if spawn == 1 {
		for i := 0; i < n; i++ {
			e.Do(func() { fn(i) })
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicked atomic.Bool
	var panicVal any // first panic; wg.Wait orders the read after the write
	wg.Add(spawn)
	for w := 0; w < spawn; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				func() {
					defer func() {
						if p := recover(); p != nil && !panicked.Swap(true) {
							panicVal = p
						}
					}()
					e.Do(func() { fn(i) })
				}()
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// --- cached primitives --------------------------------------------------------

// Graph parses src into a code property graph through the parse cache. The
// graph is immutable after construction and may be analyzed concurrently.
func (e *Engine) Graph(src string) (*cpg.Graph, error) {
	return e.graph(ContentKey(src), src)
}

func (e *Engine) graph(key Key, src string) (*cpg.Graph, error) {
	if ent, ok := e.graphs.Get(key); ok {
		return ent.g, ent.err
	}
	g, err := cpg.Parse(src)
	e.graphs.Put(key, graphEntry{g: g, err: err})
	return g, err
}

// Analyze runs the default CCC analyzer over src through the report cache
// (the parse itself goes through the parse cache).
func (e *Engine) Analyze(src string) (ccc.Report, error) {
	e.ctr.analyses.Add(1)
	key := ContentKey(src)
	if ent, ok := e.reports.Get(key); ok {
		return ent.rep, ent.err
	}
	g, err := e.graph(key, src)
	if err != nil {
		e.reports.Put(key, reportEntry{err: err})
		return ccc.Report{}, err
	}
	rep := ccc.Analyze(g)
	e.reports.Put(key, reportEntry{rep: rep})
	return rep, nil
}

// Fingerprint computes the CCD fuzzy-hash of src through the fingerprint
// cache. Matching ccd.FingerprintSource, a partial fingerprint is returned
// (and cached) even when parsing reported an error.
func (e *Engine) Fingerprint(src string) (ccd.Fingerprint, error) {
	e.ctr.fingerprints.Add(1)
	key := ContentKey(src)
	if ent, ok := e.prints.Get(key); ok {
		return ent.fp, ent.err
	}
	fp, err := ccd.FingerprintSource(src)
	e.prints.Put(key, fpEntry{fp: fp, err: err})
	return fp, err
}

// --- serving corpus -----------------------------------------------------------

// Corpus exposes the engine's concurrent serving corpus.
func (e *Engine) Corpus() *Corpus { return e.corpus }

// CorpusAdd fingerprints src and indexes it in the serving corpus under id.
// A partial fingerprint is indexed even on parse errors (the ccd.AddSource
// contract); the parse error is returned for reporting. A persistence
// failure (errors.Is ErrPersist) means the entry was NOT indexed.
func (e *Engine) CorpusAdd(id, src string) error {
	fp, ferr := e.Fingerprint(src)
	if err := e.corpus.Add(id, fp); err != nil {
		return err
	}
	e.ctr.corpusAdds.Add(1)
	return ferr
}

// CorpusAddFingerprint indexes a precomputed fingerprint under id, skipping
// parsing entirely (bulk ingest of pre-fingerprinted corpora).
func (e *Engine) CorpusAddFingerprint(id string, fp ccd.Fingerprint) error {
	if err := e.corpus.Add(id, fp); err != nil {
		return err
	}
	e.ctr.corpusAdds.Add(1)
	return nil
}

// Match fingerprints src and returns its clone candidates from the serving
// corpus, best first.
func (e *Engine) Match(src string) ([]ccd.Match, error) {
	return e.MatchTopK(src, 0)
}

// MatchTopK fingerprints src and returns its k best clone candidates (k ≤ 0:
// all of them), best first.
func (e *Engine) MatchTopK(src string, k int) ([]ccd.Match, error) {
	fp, err := e.Fingerprint(src)
	if err != nil && len(fp) == 0 {
		return nil, err
	}
	return e.MatchFingerprintTopK(fp, k), err
}

// MatchFingerprint matches a precomputed fingerprint against the serving
// corpus.
func (e *Engine) MatchFingerprint(fp ccd.Fingerprint) []ccd.Match {
	return e.MatchFingerprintTopK(fp, 0)
}

// MatchFingerprintTopK matches a precomputed fingerprint against the serving
// corpus, returning the k best candidates (k ≤ 0: all). The call is
// lock-free against concurrent ingest; its latency and pruning counts feed
// the /metrics histogram.
func (e *Engine) MatchFingerprintTopK(fp ccd.Fingerprint, k int) []ccd.Match {
	start := time.Now()
	ms, stats := e.corpus.MatchTopK(fp, k)
	e.ctr.observeMatch(stats, time.Since(start))
	return ms
}

// --- pooled batch helpers -----------------------------------------------------

// AnalyzeResult is one AnalyzeBatch element.
type AnalyzeResult struct {
	Report ccc.Report
	Err    error
}

// AnalyzeBatch analyzes every source across the worker pool, preserving
// input order.
func (e *Engine) AnalyzeBatch(srcs []string) []AnalyzeResult {
	out := make([]AnalyzeResult, len(srcs))
	e.Map(len(srcs), func(i int) {
		out[i].Report, out[i].Err = e.Analyze(srcs[i])
	})
	return out
}

// CorpusEntry is one document for bulk ingest: a source to fingerprint, or
// a precomputed Fingerprint (which wins when both are set).
type CorpusEntry struct {
	ID          string
	Source      string
	Fingerprint ccd.Fingerprint
}

// CorpusAddBatch ingests entries into the serving corpus across the worker
// pool. The i-th error reports the i-th entry's parse status (persistence
// failures satisfy errors.Is ErrPersist and mean the entry was dropped).
func (e *Engine) CorpusAddBatch(entries []CorpusEntry) []error {
	errs := make([]error, len(entries))
	e.Map(len(entries), func(i int) {
		if entries[i].Fingerprint != "" {
			errs[i] = e.CorpusAddFingerprint(entries[i].ID, entries[i].Fingerprint)
		} else {
			errs[i] = e.CorpusAdd(entries[i].ID, entries[i].Source)
		}
	})
	return errs
}

// MatchBatch matches every source against the serving corpus across the
// worker pool, preserving input order.
func (e *Engine) MatchBatch(srcs []string) ([][]ccd.Match, []error) {
	return e.MatchBatchTopK(srcs, 0)
}

// MatchBatchTopK matches every source across the worker pool, keeping the k
// best candidates per source (k ≤ 0: all), preserving input order.
func (e *Engine) MatchBatchTopK(srcs []string, k int) ([][]ccd.Match, []error) {
	out := make([][]ccd.Match, len(srcs))
	errs := make([]error, len(srcs))
	e.Map(len(srcs), func(i int) {
		out[i], errs[i] = e.MatchTopK(srcs[i], k)
	})
	return out, errs
}
