// Package service is the concurrent analysis layer in front of the
// reproduction's primitives: a bounded worker pool, content-addressed LRU
// caches for parse results, CCC vulnerability reports and CCD fingerprints,
// and a generational corpus whose readers are lock-free (matching loads one
// immutable snapshot pointer; ingest publishes new generations off the read
// path). The study pipeline fans its hot steps out through the same Engine
// that cmd/serve exposes over HTTP, so batch reproduction and online serving
// share one scheduling and caching substrate.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ccc"
	"repro/internal/ccd"
	"repro/internal/cluster"
	"repro/internal/cpg"
	"repro/internal/index"
	"repro/internal/trace"
)

// DefaultCacheEntries bounds each cache layer when Options does not override
// it.
const DefaultCacheEntries = 4096

// Options configures an Engine.
type Options struct {
	// Workers bounds concurrent work; ≤ 0 selects GOMAXPROCS.
	Workers int
	// CacheEntries caps each cache layer (parse, report, fingerprint).
	// 0 selects DefaultCacheEntries; < 0 disables caching (benchmarks use
	// this to measure the uncached path).
	CacheEntries int
	// CCD configures the engine's serving corpora (zero value:
	// ccd.DefaultConfig).
	CCD ccd.Config
	// Shards is the generation-shard count of each serving corpus (the
	// scatter-gather fan-out width); ≤ 0 selects GOMAXPROCS.
	Shards int
	// Backends lists extra similarity backends to serve alongside the
	// always-on ccd corpus (see index.Names). Unknown names panic — validate
	// with index.Known first when the list comes from user input.
	Backends []string
	// TrackClusters maintains the live clone-cluster view online: every
	// ingested document is matched against the ccd serving corpus and its
	// clone edges folded into an incremental union-find (GET /v1/clusters).
	// The live view is an additive approximation — supersedes don't unlink,
	// and each ingest contributes its top onlineClusterK edges — while the
	// /v1/study corpus mode recomputes the exact distribution on demand.
	TrackClusters bool
	// Admission bounds the request queue in front of the worker pool; the
	// zero value disables load shedding (see AdmissionConfig).
	Admission AdmissionConfig
	// Degrade tunes the pressure-tiered quality ladder (see DegradeConfig);
	// the zero value enables it with defaults.
	Degrade DegradeConfig
}

// onlineClusterK caps the clone edges one ingest contributes to the live
// cluster view. Top-K keeps ingest into an n-document clone cluster O(K)
// instead of O(n) while preserving connectivity: every new member links to
// the cluster's best matches, which are already linked to each other.
const onlineClusterK = 8

// Backend-routing errors, wrapped by CorpusFor and the match paths so the
// API layer can map them to distinct HTTP statuses.
var (
	// ErrUnknownBackend marks a backend name absent from the registry.
	ErrUnknownBackend = errors.New("unknown backend")
	// ErrBackendNotLoaded marks a registered backend this engine was not
	// started with.
	ErrBackendNotLoaded = errors.New("backend not loaded")
)

// Engine wraps CCC and CCD behind a worker pool and content-addressed
// caches. The cached primitives (Graph, Analyze, Fingerprint, Match, ...)
// are safe for concurrent use and do not themselves occupy worker slots;
// bounding happens at the task level through Do, Map and the *Batch
// helpers, so primitives may be freely composed inside pooled tasks without
// risking slot-starvation deadlocks.
type Engine struct {
	workers int
	sem     chan struct{}
	adm     admission
	ctr     counters
	deg     *degrade

	graphs  *lru[graphEntry]
	reports *lru[reportEntry]
	prints  *lru[fpEntry]

	// corpus is the always-on ccd serving corpus; corpora maps every loaded
	// backend name (including "ccd") to its sharded corpus. Both are fixed
	// at construction — reads need no locking.
	corpus  *Corpus
	corpora map[string]*Corpus

	// clusters is the live clone-cluster view (nil unless
	// Options.TrackClusters), updated as ingest lands.
	clusters *cluster.Set
}

// Cached values retain the original computation's error so a hit replays
// exactly what a miss produced (parse errors are deterministic per content).
type graphEntry struct {
	g   *cpg.Graph
	err error
}

type reportEntry struct {
	rep ccc.Report
	err error
}

type fpEntry struct {
	fp  ccd.Fingerprint
	err error
}

// New returns an Engine with the given options.
func New(opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		workers: workers,
		sem:     make(chan struct{}, workers),
		graphs:  newLRU[graphEntry](opts.CacheEntries),
		reports: newLRU[reportEntry](opts.CacheEntries),
		prints:  newLRU[fpEntry](opts.CacheEntries),
		corpus:  NewCorpus(opts.CCD, opts.Shards),
	}
	if q := opts.Admission.MaxQueue; q > 0 {
		e.adm.capacity = workers + q
	}
	eta := opts.CCD.Eta
	if opts.CCD.N == 0 {
		eta = ccd.DefaultConfig.Eta
	}
	e.deg = &degrade{cfg: opts.Degrade.withDefaults(), raisedEta: eta + (1-eta)/2}
	e.corpora = map[string]*Corpus{index.BackendCCD: e.corpus}
	for _, name := range opts.Backends {
		if name == index.BackendCCD {
			continue // always on
		}
		if _, dup := e.corpora[name]; dup {
			continue
		}
		c, err := NewBackendCorpus(name, index.Config{CCD: opts.CCD}, opts.Shards)
		if err != nil {
			panic(fmt.Sprintf("service: Options.Backends: %v", err))
		}
		e.corpora[name] = c
	}
	if opts.TrackClusters {
		e.clusters = cluster.New()
	}
	return e
}

// Clusters exposes the live clone-cluster view (nil unless the engine was
// built with Options.TrackClusters).
func (e *Engine) Clusters() *cluster.Set { return e.clusters }

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// Backends returns the loaded backend names, sorted.
func (e *Engine) Backends() []string {
	out := make([]string, 0, len(e.corpora))
	for name := range e.corpora {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// --- worker pool --------------------------------------------------------------

// Do runs fn on a worker slot, blocking until one is free.
func (e *Engine) Do(fn func()) {
	_ = e.DoCtx(context.Background(), fn)
}

// DoCtx runs fn on a worker slot. If ctx is cancelled before a slot frees,
// fn never runs and ctx.Err() is returned — a disconnected client stops
// occupying the queue. Once fn starts it runs to completion; cancellation
// mid-task is the task's own business (the match paths check ctx between
// segments).
//
// Scheduling honors the context's Class: a ClassBackground task (self-join
// segments, bulk ingest batches) first yields while any interactive task is
// waiting for a slot, so interactive latency under a running study stays
// close to the uncontended baseline.
func (e *Engine) DoCtx(ctx context.Context, fn func()) error {
	if err := ctx.Err(); err != nil {
		return err // already cancelled: never race the semaphore
	}
	_, wait := trace.Start(ctx, "queue.wait")
	if ClassOf(ctx) == ClassBackground {
		wait.Annotate("class", "background")
		if err := e.yieldToInteractive(ctx); err != nil {
			wait.End()
			return err
		}
		select {
		case e.sem <- struct{}{}:
			wait.End()
		case <-ctx.Done():
			wait.End()
			return ctx.Err()
		}
	} else {
		e.ctr.interactiveWaiting.Add(1)
		select {
		case e.sem <- struct{}{}:
			e.ctr.interactiveWaiting.Add(-1)
			wait.End()
		case <-ctx.Done():
			e.ctr.interactiveWaiting.Add(-1)
			wait.End()
			return ctx.Err()
		}
	}
	e.ctr.taskStart()
	defer func() {
		e.ctr.taskDone()
		<-e.sem
	}()
	fn()
	return nil
}

// Map runs fn(i) for every i in [0, n) across the worker pool and waits for
// all of them. Items are dispatched through the engine-wide semaphore, so
// concurrent Map calls (several batch requests, a study job) share the same
// global bound. fn must not call Do or Map itself.
//
// A panic in fn stops dispatch and is re-raised on the calling goroutine
// once in-flight items drain, so callers' recover guards (the study job
// handler, net/http's per-request recovery) see it exactly as if the work
// had run serially.
func (e *Engine) Map(n int, fn func(int)) {
	_ = e.MapCtx(context.Background(), n, fn)
}

// MapCtx is Map with cancellation: once ctx is cancelled no further items
// are dispatched (in-flight items finish) and ctx.Err() is returned. Items
// skipped by cancellation simply never ran — callers distinguish them by the
// returned error.
func (e *Engine) MapCtx(ctx context.Context, n int, fn func(int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	spawn := min(e.workers, n)
	if spawn == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := e.DoCtx(ctx, func() { fn(i) }); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicked atomic.Bool
	var panicVal any // first panic; wg.Wait orders the read after the write
	wg.Add(spawn)
	for w := 0; w < spawn; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() || ctx.Err() != nil {
					return
				}
				func() {
					defer func() {
						if p := recover(); p != nil && !panicked.Swap(true) {
							panicVal = p
						}
					}()
					_ = e.DoCtx(ctx, func() { fn(i) })
				}()
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
	return ctx.Err()
}

// --- cached primitives --------------------------------------------------------

// Graph parses src into a code property graph through the parse cache. The
// graph is immutable after construction and may be analyzed concurrently.
func (e *Engine) Graph(src string) (*cpg.Graph, error) {
	return e.graph(ContentKey(src), src)
}

func (e *Engine) graph(key Key, src string) (*cpg.Graph, error) {
	if ent, ok := e.graphs.Get(key); ok {
		return ent.g, ent.err
	}
	g, err := cpg.Parse(src)
	e.graphs.Put(key, graphEntry{g: g, err: err})
	return g, err
}

// Analyze runs the default CCC analyzer over src through the report cache
// (the parse itself goes through the parse cache).
func (e *Engine) Analyze(src string) (ccc.Report, error) {
	e.ctr.analyses.Add(1)
	key := ContentKey(src)
	if ent, ok := e.reports.Get(key); ok {
		return ent.rep, ent.err
	}
	g, err := e.graph(key, src)
	if err != nil {
		e.reports.Put(key, reportEntry{err: err})
		return ccc.Report{}, err
	}
	rep := ccc.Analyze(g)
	e.reports.Put(key, reportEntry{rep: rep})
	return rep, nil
}

// Fingerprint computes the CCD fuzzy-hash of src through the fingerprint
// cache. Matching ccd.FingerprintSource, a partial fingerprint is returned
// (and cached) even when parsing reported an error.
func (e *Engine) Fingerprint(src string) (ccd.Fingerprint, error) {
	e.ctr.fingerprints.Add(1)
	key := ContentKey(src)
	if ent, ok := e.prints.Get(key); ok {
		return ent.fp, ent.err
	}
	fp, err := ccd.FingerprintSource(src)
	e.prints.Put(key, fpEntry{fp: fp, err: err})
	return fp, err
}

// --- serving corpus -----------------------------------------------------------

// Corpus exposes the engine's always-on ccd serving corpus.
func (e *Engine) Corpus() *Corpus { return e.corpus }

// CorpusFor resolves a backend name to its serving corpus. The empty name
// selects ccd. Errors wrap ErrUnknownBackend (not in the registry) or
// ErrBackendNotLoaded (registered but not enabled on this engine).
func (e *Engine) CorpusFor(backend string) (*Corpus, error) {
	if backend == "" {
		return e.corpus, nil
	}
	if c, ok := e.corpora[backend]; ok {
		return c, nil
	}
	if index.Known(backend) {
		return nil, fmt.Errorf("%w: %q (loaded: %v; start serve with -backend %s)",
			ErrBackendNotLoaded, backend, e.Backends(), backend)
	}
	return nil, fmt.Errorf("%w: %q (known: %v)", ErrUnknownBackend, backend, index.Names())
}

// CorpusAdd fingerprints src and indexes it in every loaded serving corpus
// under id. A partial fingerprint is indexed even on parse errors (the
// ccd.AddSource contract); the parse error is returned for reporting. A
// persistence failure (errors.Is ErrPersist) means the entry was NOT
// indexed.
func (e *Engine) CorpusAdd(id, src string) error {
	return e.CorpusAddCtx(context.Background(), id, src)
}

// CorpusAddCtx is CorpusAdd carrying a request context: a traced ingest
// decomposes into fingerprint, per-backend insert and WAL fsync-wait spans.
func (e *Engine) CorpusAddCtx(ctx context.Context, id, src string) error {
	_, fsp := trace.Start(ctx, "match.fingerprint")
	fp, ferr := e.Fingerprint(src)
	fsp.End()
	if err := e.corpusAddDoc(ctx, index.Doc{ID: id, Source: src, FP: fp}); err != nil {
		return err
	}
	return ferr
}

// CorpusAddFingerprint indexes a precomputed fingerprint under id, skipping
// parsing entirely (bulk ingest of pre-fingerprinted corpora). Backends that
// need source (SmartEmbed) count it as a skip.
func (e *Engine) CorpusAddFingerprint(id string, fp ccd.Fingerprint) error {
	return e.corpusAddDoc(context.Background(), index.Doc{ID: id, FP: fp})
}

// CorpusAddFingerprintCtx is CorpusAddFingerprint carrying a request context.
func (e *Engine) CorpusAddFingerprintCtx(ctx context.Context, id string, fp ccd.Fingerprint) error {
	return e.corpusAddDoc(ctx, index.Doc{ID: id, FP: fp})
}

// corpusAddDoc fans one document out to every loaded backend corpus. The
// durable ccd corpus goes first: if its journaled add fails the document is
// nowhere; per-backend skips of the in-memory corpora are absorbed (they are
// counted on the corpus).
func (e *Engine) corpusAddDoc(ctx context.Context, doc index.Doc) error {
	ctx, sp := trace.Start(ctx, "corpus.add")
	defer sp.End()
	if err := e.corpus.AddDocCtx(ctx, doc); err != nil {
		return err
	}
	for name, c := range e.corpora {
		if name == index.BackendCCD {
			continue
		}
		_ = c.AddDoc(doc) // in-memory; unsupported docs are counted as skips
	}
	e.ctr.corpusAdds.Add(1)
	if e.clusters != nil {
		// Live clustering: the freshly published document (read-your-writes)
		// matches against the ccd corpus and its top clone edges land in the
		// union-find. Best-effort and additive — the /v1/study corpus mode
		// recomputes exactly.
		e.clusters.Add(doc.ID)
		// +1: the freshly published doc takes one slot with its self-match.
		// Trim back after the self-filter — on an exact-clone plateau the
		// doc's own ID can tie-break out of the k+1 slots, leaving k+1
		// non-self matches. WithoutCancel: the trace rides along, but a
		// disconnecting client cannot skip the cluster link of a journaled add.
		if ms, _, err := e.corpus.MatchDocTopK(context.WithoutCancel(ctx), doc, onlineClusterK+1); err == nil {
			edges := 0
			for _, m := range ms {
				if m.ID == doc.ID {
					continue
				}
				if edges == onlineClusterK {
					break
				}
				edges++
				e.clusters.Union(doc.ID, m.ID)
			}
		}
	}
	return nil
}

// --- corpus-wide clone study ----------------------------------------------------

// NewCloneStudy plans a corpus-wide clone self-join: documents enumerate
// from the durable ccd corpus and clone queries run against the named
// backend's serving corpus (empty = ccd itself). The join fans out through
// the engine's worker pool at ClassBackground — every per-document query
// yields to waiting interactive traffic, and the join's (shard, segment)
// checkpoints make the resulting pauses free. It is context-cancellable and
// resumable (see SelfJoin.Run).
func (e *Engine) NewCloneStudy(backend string, limit int) (*SelfJoin, error) {
	target, err := e.CorpusFor(backend)
	if err != nil {
		return nil, err
	}
	j, err := NewSelfJoin(e.corpus, target, limit)
	if err != nil {
		return nil, err
	}
	j.par = func(ctx context.Context, n int, fn func(int)) error {
		return e.MapCtx(WithClass(ctx, ClassBackground), n, fn)
	}
	return j, nil
}

// RunCloneStudy plans and runs a clone study to completion, folding its
// funnel into the engine's study metrics and returning the report with the
// topN largest clusters attached.
func (e *Engine) RunCloneStudy(ctx context.Context, backend string, limit, topN int) (*CloneReport, error) {
	j, err := e.NewCloneStudy(backend, limit)
	if err != nil {
		return nil, err
	}
	e.ctr.studiesStarted.Add(1)
	if err := j.Run(ctx); err != nil {
		e.ctr.observeStudy(j.Stats(), err)
		return nil, err
	}
	e.ctr.observeStudy(j.Stats(), nil)
	return j.Report(topN), nil
}

// Match fingerprints src and returns its clone candidates from the ccd
// serving corpus, best first.
func (e *Engine) Match(src string) ([]ccd.Match, error) {
	return e.MatchTopK(src, 0)
}

// MatchTopK fingerprints src and returns its k best clone candidates (k ≤ 0:
// all of them), best first.
func (e *Engine) MatchTopK(src string, k int) ([]ccd.Match, error) {
	ms, _, err := e.MatchSource(context.Background(), "", src, k)
	return ms, err
}

// MatchSource fingerprints src (through the cache) and scatter-gathers its k
// best candidates on the named backend's corpus. The returned stats are the
// query's pruning funnel; the error reports parse problems (matches still
// returned when a partial fingerprint exists), backend-routing failures, or
// ctx cancellation.
func (e *Engine) MatchSource(ctx context.Context, backend, src string, k int) ([]ccd.Match, ccd.MatchStats, error) {
	_, fsp := trace.Start(ctx, "match.fingerprint")
	fp, ferr := e.Fingerprint(src)
	fsp.AnnotateInt("source_bytes", int64(len(src)))
	fsp.End()
	if ferr != nil && len(fp) == 0 {
		return nil, ccd.MatchStats{}, ferr
	}
	ms, stats, err := e.MatchDoc(ctx, backend, index.Doc{Source: src, FP: fp}, k)
	if err != nil {
		// A budget-exhausted scan still carries its best-effort partial
		// matches; everything else fails empty.
		return ms, stats, err
	}
	return ms, stats, ferr
}

// MatchDoc scatter-gathers doc's k best candidates on the named backend's
// corpus (empty name: ccd). Latency and pruning counts feed the /metrics
// histogram; cancelled queries return ctx.Err() and are not observed as
// completed matches. A query whose deadline budget expires mid-scan returns
// its best-effort partial top-K alongside ErrBudgetExhausted — observed in
// the latency histogram (the client waited that long either way).
//
// At degradation tier ≥ 2 the scan runs with the raised pre-filter η, so
// fewer candidates survive to the expensive exact scoring.
func (e *Engine) MatchDoc(ctx context.Context, backend string, doc index.Doc, k int) ([]ccd.Match, ccd.MatchStats, error) {
	c, err := e.CorpusFor(backend)
	if err != nil {
		return nil, ccd.MatchStats{}, err
	}
	ctx, sp := trace.Start(ctx, "match")
	if backend != "" {
		sp.Annotate("backend", backend)
	}
	if tier := e.DegradeTier(); tier > 0 {
		sp.AnnotateInt("degrade.tier", int64(tier))
		if tier >= 2 && EtaOverrideOf(ctx) == 0 {
			ctx = WithEtaOverride(ctx, e.deg.raisedEta)
			e.ctr.etaRaised.Add(1)
		}
	}
	start := time.Now()
	ms, stats, err := c.MatchDocTopK(ctx, doc, k)
	sp.AnnotateInt("candidates", int64(stats.Candidates))
	sp.AnnotateInt("scored", int64(stats.Scored))
	sp.End()
	if errors.Is(err, ErrBudgetExhausted) {
		e.ctr.deadlineExpired.Add(1)
		e.ctr.observeMatch(stats, time.Since(start))
		return ms, stats, err
	}
	if err != nil {
		return nil, stats, err
	}
	e.ctr.observeMatch(stats, time.Since(start))
	return ms, stats, nil
}

// MatchFingerprint matches a precomputed fingerprint against the ccd serving
// corpus.
func (e *Engine) MatchFingerprint(fp ccd.Fingerprint) []ccd.Match {
	return e.MatchFingerprintTopK(fp, 0)
}

// MatchFingerprintTopK matches a precomputed fingerprint against the ccd
// serving corpus, returning the k best candidates (k ≤ 0: all). The call is
// lock-free against concurrent ingest.
func (e *Engine) MatchFingerprintTopK(fp ccd.Fingerprint, k int) []ccd.Match {
	ms, _, _ := e.MatchDoc(context.Background(), "", index.Doc{FP: fp}, k)
	return ms
}

// --- pooled batch helpers -----------------------------------------------------

// AnalyzeResult is one AnalyzeBatch element.
type AnalyzeResult struct {
	Report ccc.Report
	Err    error
}

// AnalyzeBatch analyzes every source across the worker pool, preserving
// input order.
func (e *Engine) AnalyzeBatch(srcs []string) []AnalyzeResult {
	out := make([]AnalyzeResult, len(srcs))
	e.Map(len(srcs), func(i int) {
		out[i].Report, out[i].Err = e.Analyze(srcs[i])
	})
	return out
}

// CorpusEntry is one document for bulk ingest: a source to fingerprint, or
// a precomputed Fingerprint (which wins when both are set).
type CorpusEntry struct {
	ID          string
	Source      string
	Fingerprint ccd.Fingerprint
}

// CorpusAddBatch ingests entries into the serving corpus across the worker
// pool. The i-th error reports the i-th entry's parse status (persistence
// failures satisfy errors.Is ErrPersist and mean the entry was dropped).
func (e *Engine) CorpusAddBatch(entries []CorpusEntry) []error {
	return e.CorpusAddBatchCtx(context.Background(), entries)
}

// CorpusAddBatchCtx is CorpusAddBatch carrying a request context; each
// entry's fingerprint/insert/fsync spans land in the request's trace (up to
// the trace's span cap). The context does not cancel journaled work.
func (e *Engine) CorpusAddBatchCtx(ctx context.Context, entries []CorpusEntry) []error {
	errs := make([]error, len(entries))
	e.Map(len(entries), func(i int) {
		if entries[i].Fingerprint != "" {
			errs[i] = e.CorpusAddFingerprintCtx(ctx, entries[i].ID, entries[i].Fingerprint)
		} else {
			errs[i] = e.CorpusAddCtx(ctx, entries[i].ID, entries[i].Source)
		}
	})
	return errs
}

// MatchBatch matches every source against the ccd serving corpus across the
// worker pool, preserving input order.
func (e *Engine) MatchBatch(srcs []string) ([][]ccd.Match, []error) {
	return e.MatchBatchTopK(srcs, 0)
}

// MatchBatchTopK matches every source across the worker pool, keeping the k
// best candidates per source (k ≤ 0: all), preserving input order.
func (e *Engine) MatchBatchTopK(srcs []string, k int) ([][]ccd.Match, []error) {
	out, errs, _ := e.MatchBatchCtx(context.Background(), "", srcs, k)
	return out, errs
}

// MatchBatchCtx matches every source on the named backend across the worker
// pool, preserving input order. A cancelled ctx stops dispatching further
// sources, cancels in-flight scatter-gathers at their next segment boundary,
// and is returned; per-source errors report parse problems. Backend-routing
// failures surface as the overall error before any work is dispatched.
func (e *Engine) MatchBatchCtx(ctx context.Context, backend string, srcs []string, k int) ([][]ccd.Match, []error, error) {
	if _, err := e.CorpusFor(backend); err != nil {
		return nil, nil, err
	}
	out := make([][]ccd.Match, len(srcs))
	errs := make([]error, len(srcs))
	mapErr := e.MapCtx(ctx, len(srcs), func(i int) {
		out[i], _, errs[i] = e.MatchSource(ctx, backend, srcs[i], k)
	})
	return out, errs, mapErr
}
