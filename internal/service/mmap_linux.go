//go:build linux

package service

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
)

// mapping owns one read-only memory mapping. Segments opened over it keep a
// reference (ccd pins it through the corpus's lifetime); once the last
// reference dies, the finalizer returns the address space.
type mapping struct {
	data []byte
}

func (m *mapping) unmap() {
	if m.data != nil {
		_ = syscall.Munmap(m.data)
		m.data = nil
	}
}

// mapFile maps path read-only and returns the bytes plus a reference the
// caller must keep alive for as long as the bytes are in use (the mapping is
// unmapped by a finalizer when the reference is collected). An empty file
// yields nil bytes and no mapping. The fallback build (mmap_other.go) reads
// the file into the heap instead.
func mapFile(path string) ([]byte, any, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	if st.Size() == 0 {
		return nil, nil, nil
	}
	if st.Size() > int64(1)<<40 {
		return nil, nil, fmt.Errorf("service: mmap %s: %d bytes exceeds limit", path, st.Size())
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("service: mmap %s: %w", path, err)
	}
	m := &mapping{data: data}
	runtime.SetFinalizer(m, (*mapping).unmap)
	// Hand out a capacity-clamped view: no append through any subslice can
	// ever write into (or past) the PROT_READ pages.
	return data[:len(data):len(data)], m, nil
}
