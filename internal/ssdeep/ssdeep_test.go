package ssdeep

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	data := []byte(strings.Repeat("contract C { function f() public {} } ", 50))
	if Hash(data) != Hash(data) {
		t.Fatal("hash not deterministic")
	}
}

func TestHashFormat(t *testing.T) {
	h := Hash([]byte(strings.Repeat("abcdefg", 100)))
	parts := strings.Split(h, ":")
	if len(parts) != 3 {
		t.Fatalf("format: %q", h)
	}
	for _, c := range parts[1] + parts[2] {
		if !strings.ContainsRune(b64, c) {
			t.Fatalf("non-base64 digest char %q", c)
		}
	}
}

func TestHashLocality(t *testing.T) {
	// A local edit must leave most of the digest unchanged: the digests of
	// the original and the edited input share a long common substring.
	base := strings.Repeat("the quick brown fox jumps over the lazy dog. ", 40)
	edited := base[:500] + "XXXX" + base[500:]
	h1 := Hash([]byte(base))
	h2 := Hash([]byte(edited))
	if h1 == h2 {
		t.Fatal("digests identical despite edit")
	}
	sig1 := strings.Split(h1, ":")[1]
	sig2 := strings.Split(h2, ":")[1]
	if lcsLen(sig1, sig2) < len(sig1)/2 {
		t.Errorf("digests share too little: %q vs %q", sig1, sig2)
	}
}

func lcsLen(a, b string) int {
	best := 0
	for i := 0; i < len(a); i++ {
		for j := 0; j < len(b); j++ {
			k := 0
			for i+k < len(a) && j+k < len(b) && a[i+k] == b[j+k] {
				k++
			}
			if k > best {
				best = k
			}
		}
	}
	return best
}

func TestHashDifferentInputsDiffer(t *testing.T) {
	h1 := Hash([]byte(strings.Repeat("aaaa bbbb cccc dddd ", 60)))
	h2 := Hash([]byte(strings.Repeat("wwww xxxx yyyy zzzz ", 60)))
	if h1 == h2 {
		t.Fatal("unrelated inputs collide entirely")
	}
}

func TestHashEmptyAndTiny(t *testing.T) {
	if Hash(nil) == "" {
		t.Error("empty hash string")
	}
	if Hash([]byte("a")) == "" {
		t.Error("tiny hash string")
	}
}

func TestStreamOneCharPerToken(t *testing.T) {
	var s Stream
	toks := []string{"contract", "c", "{", "function", "f", "(", "uint", ")", "}"}
	for _, tok := range toks {
		s.WriteToken(tok)
	}
	if s.Len() != len(toks) {
		t.Fatalf("digest length %d, want %d", s.Len(), len(toks))
	}
}

func TestStreamLocality(t *testing.T) {
	mk := func(toks []string) string {
		var s Stream
		for _, tok := range toks {
			s.WriteToken(tok)
		}
		return s.String()
	}
	a := []string{"msg", ".", "sender", ".", "transfer", "(", "uint", ")"}
	b := []string{"msg", ".", "sender", ".", "send", "(", "uint", ")"}
	da, db := mk(a), mk(b)
	diff := 0
	for i := range da {
		if da[i] != db[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("one token change should flip exactly one char, flipped %d (%q vs %q)", diff, da, db)
	}
}

func TestStreamSeparators(t *testing.T) {
	var s Stream
	s.WriteToken("contract")
	s.WriteSeparator(':')
	s.WriteToken("function")
	s.WriteSeparator('.')
	out := s.String()
	if !strings.Contains(out, ":") || !strings.Contains(out, ".") {
		t.Fatalf("separators missing: %q", out)
	}
	s.Reset()
	if s.Len() != 0 {
		t.Error("reset failed")
	}
}

func TestTokenCharMatchesStream(t *testing.T) {
	f := func(tok string) bool {
		var s Stream
		s.WriteToken(tok)
		return s.String()[0] == TokenChar(tok)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTokenCharNeverSeparator(t *testing.T) {
	f := func(tok string) bool {
		c := TokenChar(tok)
		return c != '.' && c != ':'
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRollingHashWindow(t *testing.T) {
	// The rolling hash over identical 7-byte windows must agree regardless
	// of prefix history beyond the window.
	var r1, r2 rollingState
	for _, c := range []byte("XYZXYZXYZabcdefg") {
		r1.update(c)
	}
	for _, c := range []byte("abcdefg") {
		r2.update(c)
	}
	if r1.h1 != r2.h1 || r1.h2 != r2.h2 {
		t.Errorf("window sums differ: h1 %d vs %d", r1.h1, r2.h1)
	}
}
