// Package ssdeep implements context-triggered piecewise hashing (CTPH) from
// scratch, the fuzzy-hashing scheme popularized by the ssdeep tool
// (Kornblum 2006). Unlike a cryptographic hash, a CTPH digest changes only
// locally when the input changes locally: the input is cut into pieces at
// positions where a rolling hash fires a trigger, each piece is condensed to
// one base64 character by a piecewise hash, and the digest is the
// concatenation of those characters.
//
// Two entry points are provided:
//
//   - Hash: the classic whole-input digest "blocksize:sig1:sig2" with an
//     adaptive block size and a half-block-size second signature.
//   - Stream: the per-token mode used by the paper's clone detector CCD,
//     which condenses every externally supplied piece (a source token) to
//     one digest character, so that token-level edits perturb exactly the
//     corresponding characters of the fingerprint.
package ssdeep

import (
	"strings"
)

// b64 is the digest alphabet. It deliberately excludes '.' and ':' which the
// clone detector uses as sub-fingerprint separators.
const b64 = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

// SpamSumLength is the target digest length of the classic mode.
const SpamSumLength = 64

// MinBlockSize is the smallest trigger block size of the classic mode.
const MinBlockSize = 3

// rollingState is the ssdeep rolling hash over a 7-byte window.
type rollingState struct {
	window [7]byte
	h1     uint32
	h2     uint32
	h3     uint32
	n      uint32
}

func (r *rollingState) update(c byte) {
	r.h2 -= r.h1
	r.h2 += 7 * uint32(c)
	r.h1 += uint32(c)
	r.h1 -= uint32(r.window[r.n%7])
	r.window[r.n%7] = c
	r.n++
	r.h3 <<= 5
	r.h3 ^= uint32(c)
}

func (r *rollingState) sum() uint32 { return r.h1 + r.h2 + r.h3 }

// fnvInit/fnvPrime implement the FNV-1 32-bit piecewise hash ssdeep uses.
const (
	fnvInit  = 0x28021967
	fnvPrime = 0x01000193
)

func fnvStep(h uint32, c byte) uint32 { return (h * fnvPrime) ^ uint32(c) }

// Hash returns the classic CTPH digest of data in the form
// "blocksize:sig1:sig2" where sig2 is computed with twice the block size.
func Hash(data []byte) string {
	bs := chooseBlockSize(len(data))
	for {
		sig1, sig2 := signatures(data, bs)
		// ssdeep halves the block size while the signature stays too short.
		if bs > MinBlockSize && len(sig1) < SpamSumLength/2 {
			bs /= 2
			continue
		}
		var sb strings.Builder
		sb.Grow(len(sig1) + len(sig2) + 12)
		writeInt(&sb, bs)
		sb.WriteByte(':')
		sb.WriteString(sig1)
		sb.WriteByte(':')
		sb.WriteString(sig2)
		return sb.String()
	}
}

func writeInt(sb *strings.Builder, v int) {
	if v == 0 {
		sb.WriteByte('0')
		return
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	sb.Write(buf[i:])
}

func chooseBlockSize(n int) int {
	bs := MinBlockSize
	for bs*SpamSumLength < n {
		bs *= 2
	}
	return bs
}

// signatures computes the two piecewise signatures at block sizes bs and
// 2*bs in a single pass.
func signatures(data []byte, bs int) (string, string) {
	var roll rollingState
	var sig1, sig2 []byte
	h1, h2 := uint32(fnvInit), uint32(fnvInit)
	for _, c := range data {
		roll.update(c)
		h1 = fnvStep(h1, c)
		h2 = fnvStep(h2, c)
		rs := roll.sum()
		if rs%uint32(bs) == uint32(bs)-1 {
			if len(sig1) < SpamSumLength-1 {
				sig1 = append(sig1, b64[h1%64])
				h1 = fnvInit
			}
		}
		if rs%uint32(2*bs) == uint32(2*bs)-1 {
			if len(sig2) < SpamSumLength/2-1 {
				sig2 = append(sig2, b64[h2%64])
				h2 = fnvInit
			}
		}
	}
	// Trailing piece.
	if roll.sum() != 0 {
		sig1 = append(sig1, b64[h1%64])
		sig2 = append(sig2, b64[h2%64])
	}
	return string(sig1), string(sig2)
}

// Stream is the per-piece CTPH mode: every Write turns one externally
// delimited piece (e.g. a normalized source token) into exactly one digest
// character. The paper's CCD feeds tokens one by one, enforcing token
// context on the fingerprint: an inserted, deleted, or changed token
// perturbs exactly one character.
type Stream struct {
	sb strings.Builder
}

// WriteToken appends the digest character for one token.
func (s *Stream) WriteToken(tok string) {
	h := uint32(fnvInit)
	for i := 0; i < len(tok); i++ {
		h = fnvStep(h, tok[i])
	}
	s.sb.WriteByte(b64[h%64])
}

// WriteSeparator appends a raw separator byte (e.g. '.' between functions,
// ':' between contracts) that is never produced by WriteToken.
func (s *Stream) WriteSeparator(c byte) { s.sb.WriteByte(c) }

// String returns the digest accumulated so far.
func (s *Stream) String() string { return s.sb.String() }

// Len returns the digest length accumulated so far.
func (s *Stream) Len() int { return s.sb.Len() }

// Reset clears the stream for reuse.
func (s *Stream) Reset() { s.sb.Reset() }

// TokenChar returns the digest character WriteToken would emit for tok.
func TokenChar(tok string) byte {
	h := uint32(fnvInit)
	for i := 0; i < len(tok); i++ {
		h = fnvStep(h, tok[i])
	}
	return b64[h%64]
}
