// Package cluster maintains clone clusters over the serving corpus: an
// incremental union-find (path compression + union by rank) keyed by corpus
// document id, fed by match edges at the clone threshold, with per-cluster
// statistics — size histogram, representative id, clone ratio — available at
// any point without a batch recomputation. It backs both the live cluster
// view the engine keeps up to date as ingest lands and the corpus-wide clone
// study's connected-components phase (the Figure 6 pipeline behind the
// paper's Tables 4-8, run against the serving corpus instead of a throwaway
// one).
package cluster

import (
	"sort"
	"sync"
)

// Set is a thread-safe incremental union-find over string document ids.
// Union and Add insert unseen ids on the fly; Find, Summary and Clusters may
// run concurrently with them. The partition a Set converges to depends only
// on the edge set, not on the order edges arrive in — the property test pins
// it against batch connected components.
type Set struct {
	mu     sync.Mutex
	ids    map[string]int32 // id -> node index
	names  []string         // node index -> id
	parent []int32
	rank   []int8
	size   []int32 // component size, valid at roots
	comps  int     // current number of components
	unions int64   // unions that merged two components
}

// New returns an empty cluster set.
func New() *Set {
	return &Set{ids: make(map[string]int32)}
}

// node interns id, creating a singleton component for unseen ids. Callers
// hold s.mu.
func (s *Set) node(id string) int32 {
	if n, ok := s.ids[id]; ok {
		return n
	}
	n := int32(len(s.names))
	s.ids[id] = n
	s.names = append(s.names, id)
	s.parent = append(s.parent, n)
	s.rank = append(s.rank, 0)
	s.size = append(s.size, 1)
	s.comps++
	return n
}

// find returns the root of n with path compression. Callers hold s.mu.
func (s *Set) find(n int32) int32 {
	for s.parent[n] != n {
		s.parent[n] = s.parent[s.parent[n]] // halving
		n = s.parent[n]
	}
	return n
}

// Add ensures id is tracked (as a singleton until an edge arrives).
func (s *Set) Add(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.node(id)
}

// Union records a clone edge between a and b, inserting either id if unseen.
// It returns true when the edge merged two previously separate components.
func (s *Set) Union(a, b string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ra, rb := s.find(s.node(a)), s.find(s.node(b))
	if ra == rb {
		return false
	}
	if s.rank[ra] < s.rank[rb] {
		ra, rb = rb, ra
	} else if s.rank[ra] == s.rank[rb] {
		s.rank[ra]++
	}
	s.parent[rb] = ra
	s.size[ra] += s.size[rb]
	s.comps--
	s.unions++
	return true
}

// Find returns the current root id of id's component and whether id is
// tracked. The root is an internal anchor, not the canonical representative
// (which is the smallest member id — see Clusters); it is stable between
// unions touching the component.
func (s *Set) Find(id string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.ids[id]
	if !ok {
		return "", false
	}
	return s.names[s.find(n)], true
}

// Same reports whether a and b are currently in one component.
func (s *Set) Same(a, b string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	na, aok := s.ids[a]
	nb, bok := s.ids[b]
	return aok && bok && s.find(na) == s.find(nb)
}

// Len returns the number of tracked documents.
func (s *Set) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.names)
}

// Count returns the current number of components (singletons included).
func (s *Set) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.comps
}

// Unions returns how many edges merged two components so far.
func (s *Set) Unions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.unions
}

// Summary is the point-in-time cluster statistics view: the paper's
// cluster-size distribution plus the clone ratio (fraction of documents with
// at least one clone).
type Summary struct {
	// Docs is the number of tracked documents.
	Docs int `json:"docs"`
	// Clusters counts components of size ≥ 2; Singletons the rest.
	Clusters   int `json:"clusters"`
	Singletons int `json:"singletons"`
	// Clustered is the number of documents in clusters of size ≥ 2.
	Clustered int `json:"clustered"`
	// CloneRatio is Clustered / Docs (0 when the set is empty).
	CloneRatio float64 `json:"clone_ratio"`
	// Largest is the size of the biggest cluster (0 when empty).
	Largest int `json:"largest"`
	// Sizes is the cluster-size histogram: size -> number of components of
	// that size, singletons included under key 1.
	Sizes map[int]int `json:"sizes"`
}

// Summary computes the current cluster statistics.
func (s *Set) Summary() Summary {
	// Same treatment as Clusters: snapshot the forest under the lock, count
	// outside it, so a /metrics scrape never stalls the ingest path's
	// Union/Add for an O(n) histogram pass.
	s.mu.Lock()
	parent := append([]int32(nil), s.parent...)
	size := append([]int32(nil), s.size...)
	s.mu.Unlock()

	sum := Summary{Docs: len(parent), Sizes: make(map[int]int)}
	for n := range parent {
		if parent[n] != int32(n) {
			continue
		}
		sz := int(size[n])
		sum.Sizes[sz]++
		if sz >= 2 {
			sum.Clusters++
			sum.Clustered += sz
		} else {
			sum.Singletons++
		}
		if sz > sum.Largest {
			sum.Largest = sz
		}
	}
	if sum.Docs > 0 {
		sum.CloneRatio = float64(sum.Clustered) / float64(sum.Docs)
	}
	return sum
}

// Cluster is one component in canonical form: the representative is the
// smallest member id, members sorted ascending.
type Cluster struct {
	Rep     string   `json:"rep"`
	Size    int      `json:"size"`
	Members []string `json:"members,omitempty"`
}

// Clusters returns every component of size ≥ minSize in deterministic order:
// size descending, then representative id ascending. withMembers controls
// whether the member lists are materialized (the NDJSON export wants them;
// the /v1/clusters summary does not).
func (s *Set) Clusters(minSize int, withMembers bool) []Cluster {
	if minSize < 1 {
		minSize = 1
	}
	// Snapshot the forest under the lock, materialize outside it: the
	// member-list export walks every member string of every document, and
	// holding s.mu for that would stall the ingest path's Union/Add calls
	// for the whole export on a large corpus. Sharing s.names is safe — the
	// prefix below len(names) is append-only and its elements immutable —
	// while parent and size are copied because find compresses paths and a
	// concurrent Union rewrites both.
	s.mu.Lock()
	names := s.names
	parent := append([]int32(nil), s.parent...)
	size := append([]int32(nil), s.size...)
	s.mu.Unlock()

	find := func(n int32) int32 {
		for parent[n] != n {
			parent[n] = parent[parent[n]] // halving
			n = parent[n]
		}
		return n
	}
	groups := make(map[int32]*Cluster)
	for n := range names {
		root := find(int32(n))
		if int(size[root]) < minSize {
			continue
		}
		g, ok := groups[root]
		if !ok {
			g = &Cluster{Rep: names[n], Size: int(size[root])}
			groups[root] = g
		}
		if names[n] < g.Rep {
			g.Rep = names[n]
		}
		if withMembers {
			g.Members = append(g.Members, names[n])
		}
	}
	out := make([]Cluster, 0, len(groups))
	for _, g := range groups {
		if withMembers {
			sort.Strings(g.Members)
		}
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size != out[j].Size {
			return out[i].Size > out[j].Size
		}
		return out[i].Rep < out[j].Rep
	})
	return out
}
