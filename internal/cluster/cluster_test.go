package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// batchComponents is the reference implementation: plain BFS connected
// components over the full edge set, computed from scratch.
func batchComponents(nodes []string, edges [][2]string) []Cluster {
	adj := make(map[string][]string)
	seen := make(map[string]bool)
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			adj[n] = nil
		}
	}
	for _, e := range edges {
		for _, n := range []string{e[0], e[1]} {
			if !seen[n] {
				seen[n] = true
			}
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	visited := make(map[string]bool)
	var out []Cluster
	ids := make([]string, 0, len(seen))
	for n := range seen {
		ids = append(ids, n)
	}
	sort.Strings(ids)
	for _, start := range ids {
		if visited[start] {
			continue
		}
		comp := []string{}
		queue := []string{start}
		visited[start] = true
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			comp = append(comp, n)
			for _, m := range adj[n] {
				if !visited[m] {
					visited[m] = true
					queue = append(queue, m)
				}
			}
		}
		sort.Strings(comp)
		out = append(out, Cluster{Rep: comp[0], Size: len(comp), Members: comp})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size != out[j].Size {
			return out[i].Size > out[j].Size
		}
		return out[i].Rep < out[j].Rep
	})
	return out
}

// randomEdges builds a deterministic node/edge set with chains, stars and
// isolated nodes so components of many shapes and sizes occur.
func randomEdges(seed int64, nodes, edges int) ([]string, [][2]string) {
	rng := rand.New(rand.NewSource(seed))
	ns := make([]string, nodes)
	for i := range ns {
		ns[i] = fmt.Sprintf("doc-%04d", i)
	}
	es := make([][2]string, edges)
	for i := range es {
		a := rng.Intn(nodes)
		b := rng.Intn(nodes)
		if rng.Intn(4) == 0 {
			b = (a + 1) % nodes // chain-ish edges force deep trees
		}
		es[i] = [2]string{ns[a], ns[b]}
	}
	return ns, es
}

// TestIncrementalEqualsBatch is the package property: feeding edges one at a
// time into the union-find yields exactly the partition batch connected
// components computes on the same edge set — any arrival order, self-loops
// and duplicate edges included.
func TestIncrementalEqualsBatch(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		nodes, edges := randomEdges(seed, 120, int(seed)*37)
		want := batchComponents(nodes, edges)

		s := New()
		for _, n := range nodes {
			s.Add(n)
		}
		// Shuffled arrival order: the result must not depend on it.
		rng := rand.New(rand.NewSource(seed + 100))
		perm := rng.Perm(len(edges))
		for _, i := range perm {
			s.Union(edges[i][0], edges[i][1])
		}

		got := s.Clusters(1, true)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: incremental partition differs from batch CC\n got %v\nwant %v", seed, got, want)
		}

		// Summary agrees with the materialized clusters.
		sum := s.Summary()
		if sum.Docs != len(nodes) {
			t.Fatalf("seed %d: docs %d, want %d", seed, sum.Docs, len(nodes))
		}
		clusters, clustered, largest, singles := 0, 0, 0, 0
		sizes := map[int]int{}
		for _, c := range want {
			sizes[c.Size]++
			if c.Size >= 2 {
				clusters++
				clustered += c.Size
			} else {
				singles++
			}
			if c.Size > largest {
				largest = c.Size
			}
		}
		if sum.Clusters != clusters || sum.Clustered != clustered ||
			sum.Largest != largest || sum.Singletons != singles {
			t.Fatalf("seed %d: summary %+v disagrees with batch (clusters=%d clustered=%d largest=%d singles=%d)",
				seed, sum, clusters, clustered, largest, singles)
		}
		if !reflect.DeepEqual(sum.Sizes, sizes) {
			t.Fatalf("seed %d: histogram %v, want %v", seed, sum.Sizes, sizes)
		}
		if sum.Clusters+sum.Singletons != s.Count() {
			t.Fatalf("seed %d: component count %d != clusters %d + singletons %d",
				seed, s.Count(), sum.Clusters, sum.Singletons)
		}
	}
}

func TestUnionBasics(t *testing.T) {
	s := New()
	if !s.Union("a", "b") {
		t.Fatal("first union did not merge")
	}
	if s.Union("a", "b") || s.Union("b", "a") {
		t.Fatal("repeated edge reported a merge")
	}
	if s.Union("a", "a") {
		t.Fatal("self-loop reported a merge")
	}
	s.Add("c")
	if s.Same("a", "c") {
		t.Fatal("isolated node joined a cluster")
	}
	if !s.Same("a", "b") {
		t.Fatal("a and b not clustered")
	}
	if root, ok := s.Find("b"); !ok || root == "" {
		t.Fatalf("Find(b) = %q, %v", root, ok)
	}
	if _, ok := s.Find("zzz"); ok {
		t.Fatal("Find of untracked id succeeded")
	}
	if s.Len() != 3 || s.Count() != 2 || s.Unions() != 1 {
		t.Fatalf("len=%d count=%d unions=%d, want 3/2/1", s.Len(), s.Count(), s.Unions())
	}
	cs := s.Clusters(2, true)
	if len(cs) != 1 || cs[0].Rep != "a" || !reflect.DeepEqual(cs[0].Members, []string{"a", "b"}) {
		t.Fatalf("clusters %v", cs)
	}
	if sum := s.Summary(); sum.CloneRatio != 2.0/3.0 {
		t.Fatalf("clone ratio %v, want 2/3", sum.CloneRatio)
	}
}

// TestConcurrentUnions: racing unions over overlapping components settle to
// the same partition as the serial run (run with -race in CI).
func TestConcurrentUnions(t *testing.T) {
	nodes, edges := randomEdges(42, 200, 400)
	want := batchComponents(nodes, edges)

	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(edges); i += 4 {
				s.Union(edges[i][0], edges[i][1])
			}
			for i := w; i < len(nodes); i += 4 {
				s.Add(nodes[i])
			}
		}(w)
	}
	wg.Wait()
	if got := s.Clusters(1, true); !reflect.DeepEqual(got, want) {
		t.Fatalf("concurrent partition differs from batch CC")
	}
}

// TestClustersDuringIngest: materializing the member-list export while
// unions land must neither race (the forest is snapshotted, not walked live
// under the ingest lock) nor return an internally inconsistent view — every
// snapshot's member lists exactly cover the documents it saw.
func TestClustersDuringIngest(t *testing.T) {
	nodes, edges := randomEdges(7, 300, 500)
	want := batchComponents(nodes, edges)

	s := New()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, n := range nodes {
			s.Add(n)
		}
		for _, e := range edges {
			s.Union(e[0], e[1])
		}
	}()
	for i := 0; ; i++ {
		cs := s.Clusters(1, true)
		members := 0
		for _, c := range cs {
			if len(c.Members) != c.Size {
				t.Fatalf("snapshot %d: cluster %q has %d members, size %d", i, c.Rep, len(c.Members), c.Size)
			}
			if c.Rep != c.Members[0] {
				t.Fatalf("snapshot %d: rep %q is not the smallest member %q", i, c.Rep, c.Members[0])
			}
			members += c.Size
		}
		// Docs only grows, so a snapshot can never hold more members than a
		// later summary reports documents.
		if sum := s.Summary(); members > sum.Docs {
			t.Fatalf("snapshot %d: %d members across clusters, beyond %d docs", i, members, sum.Docs)
		}
		select {
		case <-done:
			if got := s.Clusters(1, true); !reflect.DeepEqual(got, want) {
				t.Fatal("final partition differs from batch CC")
			}
			return
		default:
		}
	}
}
