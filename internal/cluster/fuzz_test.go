package cluster

import (
	"reflect"
	"testing"
)

// FuzzClusterMerge drives the union-find with an arbitrary byte-encoded edge
// script over a small id space and checks it against batch connected
// components on the same edge set, plus the internal invariants (component
// count, size bookkeeping, summary consistency). Two bytes per edge; an odd
// trailing byte becomes an Add.
func FuzzClusterMerge(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{1, 2, 2, 3, 3, 1})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 9})
	f.Add([]byte{255, 0, 254, 1, 253, 2, 252, 3, 251})
	f.Add([]byte{5, 6, 7, 8, 5, 8, 6, 7, 9, 9, 10})
	f.Fuzz(func(t *testing.T, script []byte) {
		id := func(b byte) string {
			// 32 distinct ids so merges and repeats are frequent.
			return string(rune('a'+b%26)) + string(rune('0'+b%32/26))
		}
		s := New()
		var nodes []string
		var edges [][2]string
		for i := 0; i+1 < len(script); i += 2 {
			a, b := id(script[i]), id(script[i+1])
			merged := s.Union(a, b)
			if merged && a == b {
				t.Fatalf("self-loop %q reported a merge", a)
			}
			edges = append(edges, [2]string{a, b})
		}
		if len(script)%2 == 1 {
			n := id(script[len(script)-1])
			s.Add(n)
			nodes = append(nodes, n)
		}

		want := batchComponents(nodes, edges)
		got := s.Clusters(1, true)
		if len(want) == 0 {
			want = nil
		}
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("partition differs from batch CC\n got %v\nwant %v", got, want)
		}

		sum := s.Summary()
		if sum.Docs != s.Len() {
			t.Fatalf("summary docs %d != len %d", sum.Docs, s.Len())
		}
		if sum.Clusters+sum.Singletons != s.Count() {
			t.Fatalf("clusters %d + singletons %d != count %d", sum.Clusters, sum.Singletons, s.Count())
		}
		total := 0
		for sz, n := range sum.Sizes {
			if sz < 1 || n < 1 {
				t.Fatalf("bad histogram bucket %d:%d", sz, n)
			}
			total += sz * n
		}
		if total != sum.Docs {
			t.Fatalf("histogram covers %d docs, want %d", total, sum.Docs)
		}
		// Every member resolves to its cluster's root, and Same agrees with
		// the materialized grouping for a spot-checked pair.
		for _, c := range got {
			for _, m := range c.Members {
				if !s.Same(m, c.Rep) {
					t.Fatalf("member %q not Same as rep %q", m, c.Rep)
				}
			}
		}
	})
}
