package ngram

import (
	"math/rand"
	"reflect"
	"testing"
)

// buildPostings builds a list from ids via the builder path.
func buildPostings(ids []uint32, blockSize int) *postings {
	p := &postings{}
	for _, id := range ids {
		p.add(id, blockSize)
	}
	return p
}

// randIDs returns n strictly increasing doc numbers with varied gap sizes
// (some gaps need multi-byte varints).
func randIDs(rng *rand.Rand, n int) []uint32 {
	ids := make([]uint32, n)
	cur := uint32(0)
	for i := range ids {
		gap := uint32(1)
		switch rng.Intn(4) {
		case 1:
			gap += uint32(rng.Intn(100))
		case 2:
			gap += uint32(rng.Intn(10_000))
		case 3:
			gap += uint32(rng.Intn(1_000_000))
		}
		cur += gap
		ids[i] = cur
	}
	return ids
}

func TestPostingsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, bs := range []int{1, 2, 3, 127, 128, 129} {
		for _, n := range []int{0, 1, 2, 127, 128, 129, 500} {
			ids := randIDs(rng, n)
			p := buildPostings(ids, bs)
			if p.count != n {
				t.Fatalf("bs=%d n=%d: count %d", bs, n, p.count)
			}
			got := p.appendAll(nil, bs)
			if n == 0 {
				if len(got) != 0 {
					t.Fatalf("bs=%d: empty list decoded to %v", bs, got)
				}
				continue
			}
			if !reflect.DeepEqual(got, ids) {
				t.Fatalf("bs=%d n=%d: decode mismatch\n got %v\nwant %v", bs, n, got, ids)
			}

			// The sealed encoding must parse back (the docCount bound is one
			// past the largest id) and decode to the same ids.
			skips, data := encodedPostings(p)
			parsed, err := parsePostings(uint64(n), bs, skips, data, int(ids[n-1])+1)
			if err != nil {
				t.Fatalf("bs=%d n=%d: parse: %v", bs, n, err)
			}
			if got := parsed.appendAll(nil, bs); !reflect.DeepEqual(got, ids) {
				t.Fatalf("bs=%d n=%d: parsed decode mismatch", bs, n)
			}

			// unseal must hand back a builder that keeps accepting adds.
			parsed.unseal(bs)
			parsed.add(ids[n-1]+5, bs)
			want := append(append([]uint32(nil), ids...), ids[n-1]+5)
			if got := parsed.appendAll(nil, bs); !reflect.DeepEqual(got, want) {
				t.Fatalf("bs=%d n=%d: add after unseal mismatch\n got %v\nwant %v", bs, n, got, want)
			}
		}
	}
}

func TestCursorSeekGE(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, bs := range []int{1, 4, 128} {
		ids := randIDs(rng, 300)
		p := buildPostings(ids, bs)
		// Reference: linear scan. Seek targets are a sorted mix of present
		// ids, gaps, and beyond-the-end values; seekGE only moves forward, so
		// targets must be tried in ascending order against one cursor.
		targets := make([]uint32, 0, 600)
		for _, id := range ids {
			targets = append(targets, id, id+1)
		}
		targets = append(targets, 0, ids[len(ids)-1]+1000)
		sortU32(targets)

		var c cursor
		c.init(p, make([]uint32, bs), bs)
		for _, want := range targets {
			c.seekGE(want)
			// Reference answer: first id >= want.
			i := 0
			for i < len(ids) && ids[i] < want {
				i++
			}
			if i == len(ids) {
				if c.valid {
					t.Fatalf("bs=%d seekGE(%d): cursor at %d, want exhausted", bs, want, c.cur)
				}
				continue
			}
			if !c.valid || c.cur != ids[i] {
				t.Fatalf("bs=%d seekGE(%d): cursor valid=%v cur=%d, want %d", bs, want, c.valid, c.cur, ids[i])
			}
		}
	}
}

func TestCursorNextWalksAll(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, bs := range []int{1, 5, 128} {
		ids := randIDs(rng, 257)
		p := buildPostings(ids, bs)
		var c cursor
		c.init(p, make([]uint32, bs), bs)
		var got []uint32
		for c.valid {
			got = append(got, c.cur)
			c.next()
		}
		if !reflect.DeepEqual(got, ids) {
			t.Fatalf("bs=%d: cursor walk mismatch", bs)
		}
	}
}

func sortU32(s []uint32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestParsePostingsRejectsCorruption(t *testing.T) {
	const bs = 4
	ids := []uint32{3, 5, 9, 12, 20, 21, 30}
	p := buildPostings(ids, bs)
	skips, data := encodedPostings(p)
	docCount := 31

	ok := func(sk, da []byte, count uint64, docs int) error {
		_, err := parsePostings(count, bs, sk, da, docs)
		return err
	}
	if err := ok(skips, data, 7, docCount); err != nil {
		t.Fatalf("valid encoding rejected: %v", err)
	}
	cases := []struct {
		name string
		err  error
	}{
		{"over-declared count", ok(skips, data, 8, docCount)},
		{"under-declared count", ok(skips, data, 6, docCount)},
		{"count above doc count", ok(skips, data, 7, 6)},
		{"doc out of range", ok(skips, data, 7, 30)},
		{"truncated skips", ok(skips[:len(skips)-1], data, 7, docCount)},
		{"truncated data", ok(skips, data[:len(data)-1], 7, docCount)},
		{"trailing data", ok(skips, append(append([]byte(nil), data...), 1), 7, docCount)},
		{"nonzero first offset", ok(flip(skips, 4), data, 7, docCount)},
		{"nonempty empty list", ok(skips, data, 0, docCount)},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}

	// A zero delta (duplicate doc) must be rejected: ids [3,3] encode as
	// first=3 + delta 0.
	sk := []byte{3, 0, 0, 0, 0, 0, 0, 0}
	if _, err := parsePostings(2, bs, sk, []byte{0}, docCount); err == nil {
		t.Error("zero delta accepted")
	}
	// Block order must be strictly increasing across block boundaries.
	p2 := buildPostings([]uint32{1, 2, 3, 4, 5, 6, 7, 8}, bs)
	sk2, da2 := encodedPostings(p2)
	bad := append([]byte(nil), sk2...)
	copy(bad[skipEntryBytes:], []byte{2, 0, 0, 0}) // second block "starts" at 2 <= 4
	if _, err := parsePostings(8, bs, bad, da2, docCount); err == nil {
		t.Error("non-increasing block start accepted")
	}
}

// flip returns a copy of b with byte i incremented (wrapping).
func flip(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i]++
	return out
}
