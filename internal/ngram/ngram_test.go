package ngram

import (
	"testing"
	"testing/quick"
)

func TestGrams(t *testing.T) {
	got := Grams("abcde", 3)
	want := []string{"abc", "bcd", "cde"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("gram %d: %q", i, got[i])
		}
	}
}

func TestGramsDedupe(t *testing.T) {
	got := Grams("aaaaaa", 3)
	if len(got) != 1 || got[0] != "aaa" {
		t.Fatalf("got %v", got)
	}
}

func TestGramsShortString(t *testing.T) {
	got := Grams("ab", 3)
	if len(got) != 1 || got[0] != "ab" {
		t.Fatalf("got %v", got)
	}
	if Grams("", 3) != nil {
		t.Error("empty string should have no grams")
	}
}

func TestQueryExactMatch(t *testing.T) {
	ix := New(3)
	ix.Add("a", "DG.TMQDZlrCnLVyLrmZl")
	ix.Add("b", "XXXXXXXXXXXXXXXXXXXX")
	got := ix.Query("DG.TMQDZlrCnLVyLrmZl", 0.5)
	if len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("got %v", got)
	}
	if got[0].Containment != 1 {
		t.Errorf("containment: %v", got[0].Containment)
	}
}

func TestQueryThreshold(t *testing.T) {
	ix := New(3)
	ix.Add("half", "abcdefghij")
	// Query shares exactly the first half of its grams with "half".
	got := ix.Query("abcdefghijKLMNOPQRST", 0.4)
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
	got = ix.Query("abcdefghijKLMNOPQRST", 0.9)
	if len(got) != 0 {
		t.Fatalf("eta=0.9 should filter out, got %v", got)
	}
}

func TestQueryOrdering(t *testing.T) {
	ix := New(3)
	ix.Add("close", "abcdefghij")
	ix.Add("far", "abcdexxxxx")
	got := ix.Query("abcdefghij", 0.1)
	if len(got) != 2 || got[0].ID != "close" {
		t.Fatalf("got %v", got)
	}
}

func TestQuerySelfRetrieval(t *testing.T) {
	// Any indexed string must retrieve itself at eta=1.
	f := func(s string) bool {
		if len(s) == 0 {
			return true
		}
		ix := New(3)
		ix.Add("self", s)
		got := ix.Query(s, 1.0)
		for _, c := range got {
			if c.ID == "self" {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexLenAndN(t *testing.T) {
	ix := New(0) // clamps to 1
	if ix.N() != 1 {
		t.Errorf("n: %d", ix.N())
	}
	ix.Add("x", "abc")
	if ix.Len() != 1 {
		t.Errorf("len: %d", ix.Len())
	}
}
