package ngram

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestGrams(t *testing.T) {
	got := Grams("abcde", 3)
	want := []string{"abc", "bcd", "cde"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("gram %d: %q", i, got[i])
		}
	}
}

func TestGramsDedupe(t *testing.T) {
	got := Grams("aaaaaa", 3)
	if len(got) != 1 || got[0] != "aaa" {
		t.Fatalf("got %v", got)
	}
}

func TestGramsShortString(t *testing.T) {
	got := Grams("ab", 3)
	if len(got) != 1 || got[0] != "ab" {
		t.Fatalf("got %v", got)
	}
	if Grams("", 3) != nil {
		t.Error("empty string should have no grams")
	}
}

func TestQueryExactMatch(t *testing.T) {
	ix := New(3)
	ix.Add("a", "DG.TMQDZlrCnLVyLrmZl")
	ix.Add("b", "XXXXXXXXXXXXXXXXXXXX")
	got := ix.Query("DG.TMQDZlrCnLVyLrmZl", 0.5)
	if len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("got %v", got)
	}
	if got[0].Containment != 1 {
		t.Errorf("containment: %v", got[0].Containment)
	}
}

func TestQueryThreshold(t *testing.T) {
	ix := New(3)
	ix.Add("half", "abcdefghij")
	// Query shares exactly the first half of its grams with "half".
	got := ix.Query("abcdefghijKLMNOPQRST", 0.4)
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
	got = ix.Query("abcdefghijKLMNOPQRST", 0.9)
	if len(got) != 0 {
		t.Fatalf("eta=0.9 should filter out, got %v", got)
	}
}

func TestQueryOrdering(t *testing.T) {
	ix := New(3)
	ix.Add("close", "abcdefghij")
	ix.Add("far", "abcdexxxxx")
	got := ix.Query("abcdefghij", 0.1)
	if len(got) != 2 || got[0].ID != "close" {
		t.Fatalf("got %v", got)
	}
}

func TestQuerySelfRetrieval(t *testing.T) {
	// Any indexed string must retrieve itself at eta=1.
	f := func(s string) bool {
		if len(s) == 0 {
			return true
		}
		ix := New(3)
		ix.Add("self", s)
		got := ix.Query(s, 1.0)
		for _, c := range got {
			if c.ID == "self" {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// referenceQuery is the seed's term-at-a-time scan: decompress every posting
// list of every query gram into plain sorted []uint32 (the uncompressed
// representation the seed stored directly), count postings into a map, keep
// docs reaching η·|Q|. The pruned document-at-a-time Query over the
// block-compressed lists must reproduce it exactly.
func referenceQuery(ix *Index, s string, eta float64) []Candidate {
	grams := ix.Grams(s)
	if len(grams) == 0 {
		return nil
	}
	counts := make(map[uint32]int)
	for _, g := range grams {
		p := ix.postings[g]
		if p == nil {
			continue
		}
		for _, d := range p.appendAll(nil, ix.blockSize) {
			counts[d]++
		}
	}
	need := eta * float64(len(grams))
	var out []Candidate
	for d, c := range counts {
		if float64(c) >= need {
			out = append(out, Candidate{
				ID:          ix.docID(d),
				Doc:         int(d),
				Containment: float64(c) / float64(len(grams)),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Containment != out[j].Containment {
			return out[i].Containment > out[j].Containment
		}
		return out[i].Doc < out[j].Doc
	})
	return out
}

// TestQueryMatchesReferenceScan: block-compressed retrieval with η pruning is
// an exact optimization — same candidates, same containments, same order as
// the uncompressed full scan, across random corpora, thresholds, posting
// block sizes (1 = every id its own block, up to larger-than-any-list), and
// every representation of the same index: freshly built, Save/Load
// round-tripped, and opened zero-copy over the encoded bytes (the mmap'd
// segment form). One reused Scratch serves all queries, so scratch reuse is
// pinned to be invisible too.
func TestQueryMatchesReferenceScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := "abcdefgh" // small alphabet forces heavy gram sharing
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(b)
	}
	blockSizes := []int{1, 3, 7, 128}
	var sc Scratch
	for trial := 0; trial < 50; trial++ {
		ix := NewWithBlock(3, blockSizes[trial%len(blockSizes)])
		docs := 1 + rng.Intn(40)
		for d := 0; d < docs; d++ {
			ix.Add(fmt.Sprintf("doc-%d", d), randStr(1+rng.Intn(60)))
		}

		var enc bytes.Buffer
		if err := ix.Save(&enc); err != nil {
			t.Fatalf("trial %d: save: %v", trial, err)
		}
		loaded, err := Load(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: load: %v", trial, err)
		}
		mapped, err := FromBytes(enc.Bytes())
		if err != nil {
			t.Fatalf("trial %d: from bytes: %v", trial, err)
		}

		for q := 0; q < 10; q++ {
			query := randStr(1 + rng.Intn(60))
			eta := float64(rng.Intn(11)) / 10
			want := referenceQuery(ix, query, eta)
			got, st := ix.QueryStats(query, eta)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d eta=%.1f query=%q:\n got %v\nwant %v", trial, eta, query, got, want)
			}
			if st.Kept != len(got) {
				t.Fatalf("stats kept=%d, returned %d", st.Kept, len(got))
			}
			for name, form := range map[string]*Index{"loaded": loaded, "zero-copy": mapped} {
				have, _ := form.QueryGramsScratch(form.Grams(query), eta, &sc)
				// The scratch results alias sc; clone before the next query.
				if !reflect.DeepEqual(append([]Candidate(nil), have...), want) {
					t.Fatalf("trial %d eta=%.1f query=%q [%s form]:\n got %v\nwant %v",
						trial, eta, query, name, have, want)
				}
			}
		}
	}
}

func TestQueryStatsPrunes(t *testing.T) {
	ix := New(3)
	// One near-duplicate plus far documents that each share exactly one gram
	// with the query: their single-entry posting lists sort into the
	// pigeonhole prefix, so they become candidates with count 1 and must be
	// abandoned once the unread lists can no longer lift them to threshold.
	const query = "abcdefghijklmnopqrst"
	ix.Add("near", query)
	for i := 0; i+3 <= len(query); i++ {
		ix.Add(fmt.Sprintf("far-%d", i), query[i:i+3]+fmt.Sprintf("%015d", i))
	}
	got, st := ix.QueryStats("abcdefghijklmnopqrst", 0.8)
	if len(got) != 1 || got[0].ID != "near" {
		t.Fatalf("got %v", got)
	}
	if st.Pruned == 0 {
		t.Errorf("expected early abandonment of far docs, stats %+v", st)
	}
}

func TestIndexLenAndN(t *testing.T) {
	ix := New(0) // clamps to 1
	if ix.N() != 1 {
		t.Errorf("n: %d", ix.N())
	}
	ix.Add("x", "abc")
	if ix.Len() != 1 {
		t.Errorf("len: %d", ix.Len())
	}
}
