package ngram

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzPostingBlockCodec throws arbitrary bytes at the posting-block parser:
// parsePostings must either return a clean error or a list that (a) decodes
// to exactly count strictly increasing in-range ids, (b) has a skip table
// consistent with the decoded ids, and (c) is a canonical-encoding fixpoint —
// rebuilding the list from its decoded ids re-encodes to byte-identical
// skips and data. It must never panic or read outside the input slices
// (parsePostings hands the hot path 3-index subslices, so an over-read here
// would be an out-of-bounds crash on a memory-mapped segment in production).
func FuzzPostingBlockCodec(f *testing.F) {
	const docCount = 1 << 20

	// Seed with valid encodings across block-size/length shapes, including
	// partial final blocks, so mutation starts from structurally sound input.
	rng := rand.New(rand.NewSource(3))
	for _, seed := range []struct{ n, bs int }{
		{0, 1}, {1, 1}, {2, 1}, {3, 2}, {7, 4}, {128, 128}, {129, 128}, {300, 16},
	} {
		p := buildPostings(randIDs(rng, seed.n), seed.bs)
		skips, data := encodedPostings(p)
		f.Add(uint16(seed.n), uint8(seed.bs), append(append([]byte(nil), skips...), data...))
	}
	f.Add(uint16(5), uint8(0), []byte{1, 2, 3})
	f.Add(uint16(65535), uint8(255), bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, count uint16, blockSize uint8, blob []byte) {
		bs := int(blockSize)
		if bs == 0 {
			bs = 1
		}
		// Split the blob the way the index codec frames it: the skip table is
		// sized from the declared count, the rest is the delta stream.
		blocks := (int(count) + bs - 1) / bs
		skipsLen := min(blocks*skipEntryBytes, len(blob))
		skips, data := blob[:skipsLen:skipsLen], blob[skipsLen:]

		p, err := parsePostings(uint64(count), bs, skips, data, docCount)
		if err != nil {
			return
		}
		ids := p.appendAll(nil, bs)
		if len(ids) != int(count) {
			t.Fatalf("decoded %d ids, declared %d", len(ids), count)
		}
		for i, id := range ids {
			if id >= docCount {
				t.Fatalf("id %d out of range", id)
			}
			if i > 0 && id <= ids[i-1] {
				t.Fatalf("ids not strictly increasing at %d: %d after %d", i, id, ids[i-1])
			}
			if i%bs == 0 && p.skipFirst(i/bs) != id {
				t.Fatalf("skip entry %d says first=%d, decoded %d", i/bs, p.skipFirst(i/bs), id)
			}
		}
		reSkips, reData := encodedPostings(buildPostings(ids, bs))
		if !bytes.Equal(reSkips, skips) || !bytes.Equal(reData, data) {
			t.Fatalf("accepted encoding is not canonical: re-encode differs")
		}
	})
}

// FuzzIndexFromBytes drives the whole-index zero-copy opener: arbitrary
// bytes must decode-or-error without panicking, and anything accepted must
// survive queries and re-encode losslessly.
func FuzzIndexFromBytes(f *testing.F) {
	seed := func(build func(ix *Index)) []byte {
		ix := NewWithBlock(3, 4)
		build(ix)
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(func(ix *Index) {}))
	f.Add(seed(func(ix *Index) {
		ix.Add("a", "abcdefgh")
		ix.Add("b", "abcdxxxx")
		ix.Add("c", "zzzzzzzz")
	}))
	full := seed(func(ix *Index) { ix.Add("a", "abcabcabc") })
	f.Add(full[:len(full)-3])
	f.Add([]byte("NGIX"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := FromBytes(data)
		if err != nil {
			return
		}
		got := ix.Query("abcdefgh", 0.3)
		for _, c := range got {
			if c.Doc < 0 || c.Doc >= ix.Len() {
				t.Fatalf("candidate doc %d out of range (%d docs)", c.Doc, ix.Len())
			}
		}
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Fatalf("re-save accepted index: %v", err)
		}
		if _, err := FromBytes(buf.Bytes()); err != nil {
			t.Fatalf("re-saved index does not re-open: %v", err)
		}
	})
}
