package ngram

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const alphabet = "abcdefgh."
	for trial := 0; trial < 10; trial++ {
		ix := New(2 + trial%3)
		docs := rng.Intn(50)
		var strs []string
		for d := 0; d < docs; d++ {
			n := rng.Intn(60)
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = alphabet[rng.Intn(len(alphabet))]
			}
			s := string(buf)
			strs = append(strs, s)
			ix.Add(fmt.Sprintf("doc-%d", d), s)
		}

		var enc bytes.Buffer
		if err := ix.Save(&enc); err != nil {
			t.Fatalf("save: %v", err)
		}
		got, err := Load(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		if got.N() != ix.N() || got.Len() != ix.Len() {
			t.Fatalf("n=%d len=%d, want n=%d len=%d", got.N(), got.Len(), ix.N(), ix.Len())
		}
		for i, s := range strs {
			want := ix.Query(s, 0.5)
			have := got.Query(s, 0.5)
			if !reflect.DeepEqual(want, have) {
				t.Fatalf("trial %d query %d: %v != %v", trial, i, have, want)
			}
		}
	}
}

// TestCodecRejectsDuplicatePostings: a zero posting delta after the first
// entry would put the same document twice in a list, violating the strictly
// increasing invariant the query merge relies on — Load must refuse it.
func TestCodecRejectsDuplicatePostings(t *testing.T) {
	ix := New(3)
	ix.Add("a", "abcd")
	ix.Add("b", "abcd")
	var enc bytes.Buffer
	if err := ix.Save(&enc); err != nil {
		t.Fatal(err)
	}
	raw := enc.Bytes()
	// Postings for each gram are docs [0,1], delta-encoded 0x00 0x01 at the
	// stream tail. Zeroing the final delta makes the list [0,0].
	corrupt := bytes.Clone(raw)
	corrupt[len(corrupt)-1] = 0x00
	if _, err := Load(bytes.NewReader(corrupt)); err == nil {
		t.Error("duplicate posting accepted")
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not an index"))); err == nil {
		t.Error("garbage accepted")
	}
	ix := New(3)
	ix.Add("a", "abcdef")
	var enc bytes.Buffer
	if err := ix.Save(&enc); err != nil {
		t.Fatal(err)
	}
	full := enc.Bytes()
	for cut := 0; cut < len(full); cut += 3 {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
