package ngram

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
)

// Posting lists are block-compressed: doc numbers are grouped into blocks of
// blockSize ids, each block stored as varint deltas with an 8-byte skip entry
// (first doc number + byte offset into the delta stream, both uint32 LE).
// The first id of a block lives only in its skip entry, so a block's delta
// stream holds blockLen−1 varints and every block decodes independently —
// the seek path binary-searches the skip table and decodes exactly one block
// instead of stepping ints from the start of the list.
//
// While an index is being built, the trailing <blockSize ids live in an
// uncompressed tail; a full tail seals into a block. Indexes opened zero-copy
// from snapshot bytes (FromBytes) have no tail — their final block may be
// partial — and are sealed: Add panics.

// skipEntryBytes is the encoded size of one skip-table entry.
const skipEntryBytes = 8

var blockSizeDefault atomic.Int32

func init() { blockSizeDefault.Store(128) }

// DefaultBlockSize returns the posting-block size new indexes are built with.
func DefaultBlockSize() int { return int(blockSizeDefault.Load()) }

// SetDefaultBlockSize sets the posting-block size for indexes created after
// the call (New reads it once per index). Values are clamped to [1, 65536].
// Intended as a process-start tuning knob (see docs/tuning.md); indexes built
// under different block sizes coexist — the size is recorded per index in the
// codec header.
func SetDefaultBlockSize(n int) {
	if n < 1 {
		n = 1
	}
	if n > 1<<16 {
		n = 1 << 16
	}
	blockSizeDefault.Store(int32(n))
}

// postings is one gram's block-compressed posting list.
type postings struct {
	count int      // total doc numbers in the list
	data  []byte   // concatenated per-block delta streams
	skips []byte   // skipEntryBytes per sealed block: first id, data offset
	tail  []uint32 // unsealed suffix (building only; nil for sealed lists)
}

// sealedBlocks returns the number of blocks present in skips.
func (p *postings) sealedBlocks() int { return len(p.skips) / skipEntryBytes }

// totalBlocks counts sealed blocks plus the tail (as a virtual final block).
func (p *postings) totalBlocks() int {
	n := p.sealedBlocks()
	if len(p.tail) > 0 {
		n++
	}
	return n
}

// blockLen returns the number of ids in block i: blockSize for all but the
// last block, which holds the remainder (the tail while building, or a
// partial final block in the encoded form).
func (p *postings) blockLen(i, blockSize int) int {
	if i == p.totalBlocks()-1 {
		return p.count - i*blockSize
	}
	return blockSize
}

// skipFirst returns the first doc number of sealed block i.
func (p *postings) skipFirst(i int) uint32 {
	return binary.LittleEndian.Uint32(p.skips[i*skipEntryBytes:])
}

// skipOff returns the data offset of sealed block i's delta stream.
func (p *postings) skipOff(i int) uint32 {
	return binary.LittleEndian.Uint32(p.skips[i*skipEntryBytes+4:])
}

// blockFirst returns the first doc number of block i (sealed or tail).
func (p *postings) blockFirst(i int) uint32 {
	if i < p.sealedBlocks() {
		return p.skipFirst(i)
	}
	return p.tail[0]
}

// blockEnd returns the end offset of sealed block i's delta stream.
func (p *postings) blockEnd(i int) int {
	if i+1 < p.sealedBlocks() {
		return int(p.skipOff(i + 1))
	}
	return len(p.data)
}

// add appends a doc number (strictly greater than all previous — Add assigns
// increasing numbers) and seals a full tail into a compressed block.
func (p *postings) add(id uint32, blockSize int) {
	p.tail = append(p.tail, id)
	p.count++
	if len(p.tail) >= blockSize {
		p.seal()
	}
}

// seal compresses the tail into one block: a skip entry plus the varint
// deltas of every id after the first.
func (p *postings) seal() {
	var sk [skipEntryBytes]byte
	binary.LittleEndian.PutUint32(sk[0:4], p.tail[0])
	binary.LittleEndian.PutUint32(sk[4:8], uint32(len(p.data)))
	p.skips = append(p.skips, sk[:]...)
	var buf [binary.MaxVarintLen32]byte
	prev := p.tail[0]
	for _, id := range p.tail[1:] {
		n := binary.PutUvarint(buf[:], uint64(id-prev))
		p.data = append(p.data, buf[:n]...)
		prev = id
	}
	p.tail = p.tail[:0]
}

// decodeBlock decodes block i into dst (which must hold blockSize ids) and
// returns the number of ids written. Encoded input is validated once at
// load time (parsePostings), so the hot path decodes without error returns;
// the w<=0 guard still stops short on impossible varints instead of looping.
func (p *postings) decodeBlock(i, blockSize int, dst []uint32) int {
	if i >= p.sealedBlocks() {
		return copy(dst, p.tail)
	}
	n := p.blockLen(i, blockSize)
	v := p.skipFirst(i)
	dst[0] = v
	b := p.data[p.skipOff(i):p.blockEnd(i)]
	for j := 1; j < n; j++ {
		d, w := binary.Uvarint(b)
		if w <= 0 {
			return j
		}
		b = b[w:]
		v += uint32(d)
		dst[j] = v
	}
	return n
}

// appendAll decodes the whole list into dst (test/reference helper and the
// v1-codec writer's source of truth).
func (p *postings) appendAll(dst []uint32, blockSize int) []uint32 {
	buf := make([]uint32, blockSize)
	for i := 0; i < p.totalBlocks(); i++ {
		n := p.decodeBlock(i, blockSize, buf)
		dst = append(dst, buf[:n]...)
	}
	return dst
}

// encodedPostings returns the fully sealed encoding of p: the builder's
// sealed blocks plus the tail compressed as a final (possibly partial)
// block. p itself is not mutated. The encoding is canonical — any list of
// ids encodes to exactly one byte sequence for a given block size.
func encodedPostings(p *postings) (skips, data []byte) {
	if len(p.tail) == 0 {
		return p.skips, p.data
	}
	skips = make([]byte, 0, len(p.skips)+skipEntryBytes)
	skips = append(skips, p.skips...)
	var sk [skipEntryBytes]byte
	binary.LittleEndian.PutUint32(sk[0:4], p.tail[0])
	binary.LittleEndian.PutUint32(sk[4:8], uint32(len(p.data)))
	skips = append(skips, sk[:]...)

	var buf [binary.MaxVarintLen32]byte
	data = make([]byte, 0, len(p.data)+2*len(p.tail))
	data = append(data, p.data...)
	prev := p.tail[0]
	for _, id := range p.tail[1:] {
		n := binary.PutUvarint(buf[:], uint64(id-prev))
		data = append(data, buf[:n]...)
		prev = id
	}
	return skips, data
}

// parsePostings validates an encoded posting list (count ids under blockSize,
// docs all below docCount) and returns it as a sealed postings value whose
// data/skips alias the input slices. Every block is decoded once here —
// strictly increasing ids, in-range docs, delta streams that exactly fill
// their byte ranges — so cursors can decode later without error paths and
// without ever reading past a block's slice.
func parsePostings(count uint64, blockSize int, skips, data []byte, docCount int) (*postings, error) {
	if count == 0 {
		if len(skips) != 0 || len(data) != 0 {
			return nil, fmt.Errorf("ngram: empty posting list with %d skip / %d data bytes", len(skips), len(data))
		}
		return &postings{}, nil
	}
	if count > uint64(docCount) {
		return nil, fmt.Errorf("ngram: posting count %d exceeds doc count %d", count, docCount)
	}
	blocks := (int(count) + blockSize - 1) / blockSize
	if len(skips) != blocks*skipEntryBytes {
		return nil, fmt.Errorf("ngram: posting list of %d ids wants %d skip entries, has %d bytes", count, blocks, len(skips))
	}
	p := &postings{count: int(count), data: data, skips: skips}
	prev := int64(-1) // last doc of the previous block
	for i := 0; i < blocks; i++ {
		off := int(p.skipOff(i))
		end := p.blockEnd(i)
		if i == 0 && off != 0 {
			return nil, fmt.Errorf("ngram: first block at offset %d, want 0", off)
		}
		if off > end || end > len(data) {
			return nil, fmt.Errorf("ngram: block %d byte range [%d,%d) out of bounds", i, off, end)
		}
		v := int64(p.skipFirst(i))
		if v <= prev {
			return nil, fmt.Errorf("ngram: block %d starts at doc %d, not above previous doc %d", i, v, prev)
		}
		b := data[off:end]
		for j := 1; j < p.blockLen(i, blockSize); j++ {
			d, w := binary.Uvarint(b)
			if w <= 0 {
				return nil, fmt.Errorf("ngram: block %d: bad varint delta", i)
			}
			if d == 0 {
				return nil, fmt.Errorf("ngram: block %d: zero delta (non-increasing posting list)", i)
			}
			if d > math.MaxUint32 {
				// decodeBlock accumulates in uint32; a wider delta would
				// silently truncate at query time.
				return nil, fmt.Errorf("ngram: block %d: delta %d exceeds uint32", i, d)
			}
			if w > 1 && b[w-1] == 0 {
				// A minimal uvarint never ends in a zero byte (the last byte
				// carries the most significant bits). Rejecting over-long
				// encodings keeps the format canonical: one byte sequence per
				// id list, so encode∘decode is a byte-level fixpoint.
				return nil, fmt.Errorf("ngram: block %d: non-minimal varint delta", i)
			}
			b = b[w:]
			v += int64(d)
		}
		if len(b) != 0 {
			return nil, fmt.Errorf("ngram: block %d: %d trailing bytes after %d deltas", i, len(b), p.blockLen(i, blockSize)-1)
		}
		if v >= int64(docCount) {
			return nil, fmt.Errorf("ngram: posting doc %d out of range (%d docs)", v, docCount)
		}
		prev = v
	}
	return p, nil
}

// unseal converts a parsed (fully sealed) posting list back to builder form:
// a partial final block moves into the uncompressed tail so add can continue
// appending. Lists whose final block is full are already in builder form.
func (p *postings) unseal(blockSize int) {
	blocks := p.sealedBlocks()
	if blocks == 0 || p.count%blockSize == 0 {
		return
	}
	last := blocks - 1
	n := p.blockLen(last, blockSize)
	buf := make([]uint32, blockSize)
	p.decodeBlock(last, blockSize, buf)
	// Clone before truncating: data/skips may alias caller-owned bytes.
	p.data = append([]byte(nil), p.data[:p.skipOff(last)]...)
	p.skips = append([]byte(nil), p.skips[:last*skipEntryBytes]...)
	p.tail = append(p.tail, buf[:n]...)
}

// cursor iterates one posting list in doc order, decoding a block at a time
// into a scratch buffer. seekGE jumps whole blocks via the skip table.
type cursor struct {
	p         *postings
	buf       []uint32 // decoded current block (scratch slab slice)
	blockSize int
	blocks    int
	blk       int // current block index
	bi        int // next unread position in buf (cur == buf[bi-1])
	bn        int // decoded ids in buf
	cur       uint32
	valid     bool
}

// init points the cursor at the first id of p. buf must hold blockSize ids.
func (c *cursor) init(p *postings, buf []uint32, blockSize int) {
	c.p, c.buf, c.blockSize = p, buf, blockSize
	c.blocks = p.totalBlocks()
	c.blk, c.bi, c.bn = -1, 0, 0
	c.valid = p.count > 0
	if c.valid {
		c.next()
	}
}

// next advances to the following id; valid turns false at the end.
func (c *cursor) next() {
	if c.bi < c.bn {
		c.cur = c.buf[c.bi]
		c.bi++
		return
	}
	c.blk++
	if c.blk >= c.blocks {
		c.valid = false
		return
	}
	c.bn = c.p.decodeBlock(c.blk, c.blockSize, c.buf)
	c.cur = c.buf[0]
	c.bi = 1
}

// seekGE advances to the first id ≥ doc (never backwards). When the target
// lies beyond the current block it binary-searches the skip table and decodes
// only the block that can contain doc — the whole-block skip that replaces
// the seed's int-by-int gallop.
func (c *cursor) seekGE(doc uint32) {
	if !c.valid || c.cur >= doc {
		return
	}
	lo := c.bi // ids before bi are < doc (cur == buf[bi-1] < doc)
	if c.blk+1 < c.blocks && c.p.blockFirst(c.blk+1) <= doc {
		// Jump: find the last block whose first id is ≤ doc.
		l, h := c.blk+1, c.blocks-1
		for l < h {
			mid := int(uint(l+h+1) >> 1)
			if c.p.blockFirst(mid) <= doc {
				l = mid
			} else {
				h = mid - 1
			}
		}
		c.blk = l
		c.bn = c.p.decodeBlock(l, c.blockSize, c.buf)
		lo = 0
	}
	// Binary search the decoded block for the first id ≥ doc.
	hi := c.bn
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.buf[mid] < doc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < c.bn {
		c.cur = c.buf[lo]
		c.bi = lo + 1
		return
	}
	// Block exhausted: the next block's first id (if any) is > doc.
	c.blk++
	if c.blk >= c.blocks {
		c.valid = false
		return
	}
	c.bn = c.p.decodeBlock(c.blk, c.blockSize, c.buf)
	c.cur = c.buf[0]
	c.bi = 1
}
