package ngram

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Binary index encoding. The format is versioned independently of the corpus
// snapshot that may embed it:
//
//	magic   "NGIX"
//	uvarint version (currently 1)
//	uvarint n-gram size
//	uvarint doc count
//	per doc: string id, uvarint distinct-gram count
//	uvarint gram count
//	per gram (sorted): string gram, uvarint posting count,
//	                   delta-encoded uvarint doc numbers
//
// Postings are written as deltas between consecutive doc numbers: Add only
// ever appends increasing doc numbers, so every posting list is strictly
// increasing and deltas varint-pack well. Strings are uvarint-length-prefixed.
const (
	codecMagic   = "NGIX"
	codecVersion = 1
)

// Save writes the index in the binary codec format.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}

	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	if err := writeUvarint(codecVersion); err != nil {
		return err
	}
	if err := writeUvarint(uint64(ix.n)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(ix.docs))); err != nil {
		return err
	}
	for _, d := range ix.docs {
		if err := writeString(d.id); err != nil {
			return err
		}
		if err := writeUvarint(uint64(d.ngrams)); err != nil {
			return err
		}
	}
	grams := make([]string, 0, len(ix.postings))
	for g := range ix.postings {
		grams = append(grams, g)
	}
	sort.Strings(grams)
	if err := writeUvarint(uint64(len(grams))); err != nil {
		return err
	}
	for _, g := range grams {
		if err := writeString(g); err != nil {
			return err
		}
		post := ix.postings[g]
		if err := writeUvarint(uint64(len(post))); err != nil {
			return err
		}
		prev := uint32(0)
		for _, d := range post {
			if err := writeUvarint(uint64(d - prev)); err != nil {
				return err
			}
			prev = d
		}
	}
	return bw.Flush()
}

// Load reads an index written by Save.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	readString := func(what string, max uint64) (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", fmt.Errorf("ngram: read %s length: %w", what, err)
		}
		if n > max {
			return "", fmt.Errorf("ngram: %s length %d exceeds limit %d", what, n, max)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", fmt.Errorf("ngram: read %s: %w", what, err)
		}
		return string(buf), nil
	}

	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("ngram: read magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("ngram: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("ngram: read version: %w", err)
	}
	if version != codecVersion {
		return nil, fmt.Errorf("ngram: unsupported codec version %d (want %d)", version, codecVersion)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("ngram: read n: %w", err)
	}
	ix := New(int(n))
	numDocs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("ngram: read doc count: %w", err)
	}
	// Cap the pre-allocation: numDocs is untrusted input and the loop below
	// grows organically past the cap if the stream really is that long.
	ix.docs = make([]doc, 0, min(numDocs, 1<<20))
	for i := uint64(0); i < numDocs; i++ {
		id, err := readString("doc id", 1<<24)
		if err != nil {
			return nil, err
		}
		grams, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("ngram: read doc gram count: %w", err)
		}
		ix.docs = append(ix.docs, doc{id: id, ngrams: int(grams)})
	}
	numGrams, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("ngram: read gram count: %w", err)
	}
	for i := uint64(0); i < numGrams; i++ {
		g, err := readString("gram", 1<<20)
		if err != nil {
			return nil, err
		}
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("ngram: read posting count: %w", err)
		}
		post := make([]uint32, 0, min(count, 1<<20))
		prev := uint64(0)
		for j := uint64(0); j < count; j++ {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("ngram: read posting: %w", err)
			}
			// Posting lists are strictly increasing (the query merge relies
			// on it); a zero delta after the first entry means a corrupt or
			// crafted stream that would duplicate a document.
			if j > 0 && delta == 0 {
				return nil, fmt.Errorf("ngram: non-increasing posting list for gram %q", g)
			}
			prev += delta
			if prev >= numDocs {
				return nil, fmt.Errorf("ngram: posting doc %d out of range (%d docs)", prev, numDocs)
			}
			post = append(post, uint32(prev))
		}
		ix.postings[g] = post
	}
	return ix, nil
}
