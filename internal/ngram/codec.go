package ngram

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Binary index encoding. The format is versioned independently of the corpus
// snapshot that may embed it:
//
//	magic   "NGIX"
//	uvarint version
//
// Version 2 (current) stores posting lists in their runtime block-compressed
// form, so an index can be opened zero-copy over the encoded bytes
// (FromBytes) — the on-disk format IS the in-memory format:
//
//	uvarint n-gram size
//	uvarint posting block size
//	uvarint flags (bit 0: doc-id table present)
//	uvarint doc count
//	per doc (flag bit 0 only): string id, uvarint distinct-gram count
//	uvarint gram count
//	per gram (sorted ascending): string gram, uvarint posting count,
//	                             uvarint skip-table length + skip bytes,
//	                             uvarint delta-stream length + delta bytes
//
// The skip table and delta stream are exactly the sealed postings layout of
// postings.go: one 8-byte (first id, byte offset) entry per block, then the
// concatenated per-block varint delta streams. Strings are
// uvarint-length-prefixed. Flag bit 0 off is the "docless" embedding used
// inside corpus snapshots whose owner resolves ids itself.
//
// Version 1 (legacy, still loadable) stored one flat delta-encoded uvarint
// run per gram and always carried the doc table; Load re-blocks it under the
// current default block size.
const (
	codecMagic   = "NGIX"
	codecVersion = 2

	maxDocIDLen = 1 << 24
	maxGramLen  = 1 << 20
)

// Save writes the index in the binary codec format (version 2), including
// the doc-id table when the index has one.
func (ix *Index) Save(w io.Writer) error {
	return ix.save(w, ix.docs != nil || ix.docCount == 0)
}

// SaveDocless writes the index without its doc-id table — the embedded form
// for containers (corpus snapshots) that store ids themselves. An index
// loaded from it reports Docless() and returns empty Candidate.IDs.
func (ix *Index) SaveDocless(w io.Writer) error {
	return ix.save(w, false)
}

func (ix *Index) save(w io.Writer, withDocs bool) error {
	bw := bufio.NewWriter(w)
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	writeBytes := func(b []byte) error {
		if err := writeUvarint(uint64(len(b))); err != nil {
			return err
		}
		_, err := bw.Write(b)
		return err
	}

	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	if err := writeUvarint(codecVersion); err != nil {
		return err
	}
	if err := writeUvarint(uint64(ix.n)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(ix.blockSize)); err != nil {
		return err
	}
	flags := uint64(0)
	if withDocs {
		flags |= 1
	}
	if err := writeUvarint(flags); err != nil {
		return err
	}
	if err := writeUvarint(uint64(ix.docCount)); err != nil {
		return err
	}
	if withDocs {
		for _, d := range ix.docs {
			if err := writeString(d.id); err != nil {
				return err
			}
			if err := writeUvarint(uint64(d.ngrams)); err != nil {
				return err
			}
		}
	}
	grams := make([]string, 0, len(ix.postings))
	for g := range ix.postings {
		grams = append(grams, g)
	}
	sort.Strings(grams)
	if err := writeUvarint(uint64(len(grams))); err != nil {
		return err
	}
	for _, g := range grams {
		if err := writeString(g); err != nil {
			return err
		}
		p := ix.postings[g]
		if err := writeUvarint(uint64(p.count)); err != nil {
			return err
		}
		skips, data := encodedPostings(p)
		if err := writeBytes(skips); err != nil {
			return err
		}
		if err := writeBytes(data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads an index written by Save (either codec version). The result is
// mutable: further Adds continue from the loaded doc count (docless indexes
// stay docless — their owner resolves ids by doc number).
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("ngram: read magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("ngram: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("ngram: read version: %w", err)
	}
	switch version {
	case 1:
		return loadV1(br)
	case codecVersion:
		rest, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("ngram: read index body: %w", err)
		}
		ix, err := parseBody(&byteReader{b: rest})
		if err != nil {
			return nil, err
		}
		for _, p := range ix.postings {
			p.unseal(ix.blockSize)
		}
		ix.sealed = false
		return ix, nil
	default:
		return nil, fmt.Errorf("ngram: unsupported codec version %d (want <= %d)", version, codecVersion)
	}
}

// FromBytes opens an encoded index (codec version 2) zero-copy: posting
// bytes alias data, which the caller must keep alive and immutable — this is
// how memory-mapped segment files become live indexes without a decode pass.
// Gram and doc-id strings are copied to the heap (they outlive remaps), and
// every posting list is fully validated up front so query-time decoding has
// no error paths. The returned index is sealed: Add panics. Version 1 input
// falls back to a heap decode.
func FromBytes(data []byte) (*Index, error) {
	r := &byteReader{b: data}
	magic := r.take(uint64(len(codecMagic)), "magic")
	if r.err != nil {
		return nil, r.err
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("ngram: bad magic %q", magic)
	}
	version := r.uvarint("version")
	if r.err != nil {
		return nil, r.err
	}
	if version == 1 {
		return Load(bytes.NewReader(data))
	}
	if version != codecVersion {
		return nil, fmt.Errorf("ngram: unsupported codec version %d (want <= %d)", version, codecVersion)
	}
	return parseBody(r)
}

// parseBody parses a version-2 stream after the magic+version header and
// returns a sealed index aliasing r's remaining bytes.
func parseBody(r *byteReader) (*Index, error) {
	n := r.uvarint("n")
	blockSize := r.uvarint("block size")
	flags := r.uvarint("flags")
	docCount := r.uvarint("doc count")
	if r.err != nil {
		return nil, r.err
	}
	if n < 1 || n > maxGramLen {
		return nil, fmt.Errorf("ngram: n-gram size %d out of range", n)
	}
	if docCount > 1<<31 {
		return nil, fmt.Errorf("ngram: doc count %d out of range", docCount)
	}
	if blockSize < 1 || blockSize > 1<<16 {
		return nil, fmt.Errorf("ngram: block size %d out of range [1, 65536]", blockSize)
	}
	if flags&^1 != 0 {
		return nil, fmt.Errorf("ngram: unknown flag bits %#x", flags&^1)
	}
	ix := &Index{
		n:         int(n),
		blockSize: int(blockSize),
		postings:  make(map[string]*postings),
		docCount:  int(docCount),
		sealed:    true,
	}
	if flags&1 != 0 {
		// Cap the pre-allocation: docCount is untrusted and the loop grows
		// organically past the cap if the stream really is that long.
		ix.docs = make([]doc, 0, min(docCount, 1<<20))
		for i := uint64(0); i < docCount; i++ {
			id := r.str(maxDocIDLen, "doc id")
			grams := r.uvarint("doc gram count")
			if r.err != nil {
				return nil, r.err
			}
			ix.docs = append(ix.docs, doc{id: id, ngrams: int(grams)})
		}
	}
	numGrams := r.uvarint("gram count")
	if r.err != nil {
		return nil, r.err
	}
	prev := ""
	for i := uint64(0); i < numGrams; i++ {
		g := r.str(maxGramLen, "gram")
		count := r.uvarint("posting count")
		skips := r.take(r.uvarint("skip table length"), "skip table")
		data := r.take(r.uvarint("delta stream length"), "delta stream")
		if r.err != nil {
			return nil, r.err
		}
		if i > 0 && g <= prev {
			return nil, fmt.Errorf("ngram: gram %q out of order after %q", g, prev)
		}
		prev = g
		p, err := parsePostings(count, ix.blockSize, skips, data, ix.docCount)
		if err != nil {
			return nil, fmt.Errorf("gram %q: %w", g, err)
		}
		ix.postings[g] = p
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("ngram: %d trailing bytes after index", len(r.b))
	}
	return ix, nil
}

// loadV1 reads the legacy flat-delta format (the magic and version are
// already consumed), re-blocking postings under the current default size.
func loadV1(br *bufio.Reader) (*Index, error) {
	readString := func(what string, max uint64) (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", fmt.Errorf("ngram: read %s length: %w", what, err)
		}
		if n > max {
			return "", fmt.Errorf("ngram: %s length %d exceeds limit %d", what, n, max)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", fmt.Errorf("ngram: read %s: %w", what, err)
		}
		return string(buf), nil
	}

	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("ngram: read n: %w", err)
	}
	ix := New(int(n))
	numDocs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("ngram: read doc count: %w", err)
	}
	ix.docs = make([]doc, 0, min(numDocs, 1<<20))
	for i := uint64(0); i < numDocs; i++ {
		id, err := readString("doc id", maxDocIDLen)
		if err != nil {
			return nil, err
		}
		grams, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("ngram: read doc gram count: %w", err)
		}
		ix.docs = append(ix.docs, doc{id: id, ngrams: int(grams)})
	}
	ix.docCount = len(ix.docs)
	numGrams, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("ngram: read gram count: %w", err)
	}
	for i := uint64(0); i < numGrams; i++ {
		g, err := readString("gram", maxGramLen)
		if err != nil {
			return nil, err
		}
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("ngram: read posting count: %w", err)
		}
		p := &postings{}
		prev := uint64(0)
		for j := uint64(0); j < count; j++ {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("ngram: read posting: %w", err)
			}
			// Posting lists are strictly increasing (the query merge relies
			// on it); a zero delta after the first entry means a corrupt or
			// crafted stream that would duplicate a document.
			if j > 0 && delta == 0 {
				return nil, fmt.Errorf("ngram: non-increasing posting list for gram %q", g)
			}
			prev += delta
			if prev >= numDocs {
				return nil, fmt.Errorf("ngram: posting doc %d out of range (%d docs)", prev, numDocs)
			}
			p.add(uint32(prev), ix.blockSize)
		}
		ix.postings[g] = p
	}
	return ix, nil
}

// byteReader parses length-delimited sections out of a byte slice with a
// sticky error, handing out 3-index subslices so nothing downstream can
// append into (or read past) the underlying buffer — which may be a
// read-only memory mapping.
type byteReader struct {
	b   []byte
	err error
}

func (r *byteReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, w := binary.Uvarint(r.b)
	if w <= 0 {
		r.err = fmt.Errorf("ngram: read %s: bad uvarint", what)
		return 0
	}
	r.b = r.b[w:]
	return v
}

func (r *byteReader) take(n uint64, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.err = fmt.Errorf("ngram: read %s: need %d bytes, have %d", what, n, len(r.b))
		return nil
	}
	out := r.b[:n:n]
	r.b = r.b[n:]
	return out
}

func (r *byteReader) str(max uint64, what string) string {
	n := r.uvarint(what + " length")
	if r.err != nil {
		return ""
	}
	if n > max {
		r.err = fmt.Errorf("ngram: %s length %d exceeds limit %d", what, n, max)
		return ""
	}
	return string(r.take(n, what))
}
