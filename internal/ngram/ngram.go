// Package ngram provides an inverted n-gram index with containment-threshold
// retrieval. It stands in for the Elasticsearch n-gram pre-filter of the
// paper's clone-detection pipeline: fingerprints are split into character
// n-grams, indexed, and a query retrieves only the fingerprints sharing at
// least a fraction η of the query's distinct n-grams — the cheap candidate
// filter in front of the expensive edit-distance similarity.
package ngram

import "sort"

// Index is an inverted index from n-gram to document ids.
type Index struct {
	n     int
	grams map[string][]int
	docs  []doc
}

type doc struct {
	id     string
	ngrams int // number of distinct n-grams
}

// New returns an index over n-grams of size n (n ≥ 1).
func New(n int) *Index {
	if n < 1 {
		n = 1
	}
	return &Index{n: n, grams: make(map[string][]int)}
}

// N returns the configured n-gram size.
func (ix *Index) N() int { return ix.n }

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.docs) }

// Grams returns the distinct n-grams of s (strings shorter than n yield the
// whole string as a single gram).
func (ix *Index) Grams(s string) []string {
	return Grams(s, ix.n)
}

// Grams returns the distinct character n-grams of s.
func Grams(s string, n int) []string {
	if len(s) == 0 {
		return nil
	}
	if len(s) <= n {
		return []string{s}
	}
	seen := make(map[string]bool, len(s))
	out := make([]string, 0, len(s)-n+1)
	for i := 0; i+n <= len(s); i++ {
		g := s[i : i+n]
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}

// Add indexes the string under the given id and returns the internal doc
// number.
func (ix *Index) Add(id, s string) int {
	num := len(ix.docs)
	grams := ix.Grams(s)
	ix.docs = append(ix.docs, doc{id: id, ngrams: len(grams)})
	for _, g := range grams {
		ix.grams[g] = append(ix.grams[g], num)
	}
	return num
}

// Candidate is a retrieval result.
type Candidate struct {
	ID string
	// Doc is the internal doc number assigned by Add.
	Doc int
	// Containment is |shared grams| / |query grams| in [0,1].
	Containment float64
}

// Query returns the ids of indexed documents sharing at least eta (0..1) of
// the query string's distinct n-grams, most-overlapping first.
func (ix *Index) Query(s string, eta float64) []Candidate {
	grams := ix.Grams(s)
	if len(grams) == 0 {
		return nil
	}
	counts := make(map[int]int)
	for _, g := range grams {
		for _, d := range ix.grams[g] {
			counts[d]++
		}
	}
	need := eta * float64(len(grams))
	var out []Candidate
	for d, c := range counts {
		cont := float64(c) / float64(len(grams))
		if float64(c) >= need {
			out = append(out, Candidate{ID: ix.docs[d].id, Doc: d, Containment: cont})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Containment != out[j].Containment {
			return out[i].Containment > out[j].Containment
		}
		return out[i].Doc < out[j].Doc
	})
	return out
}
