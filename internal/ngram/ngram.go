// Package ngram provides an inverted n-gram index with containment-threshold
// retrieval. It stands in for the Elasticsearch n-gram pre-filter of the
// paper's clone-detection pipeline: fingerprints are split into character
// n-grams, indexed, and a query retrieves only the fingerprints sharing at
// least a fraction η of the query's distinct n-grams — the cheap candidate
// filter in front of the expensive edit-distance similarity.
//
// Retrieval is document-at-a-time over sorted, block-compressed posting
// lists (see postings.go for the block/skip layout). A query needing
// t = ⌈η·|Q|⌉ shared grams first merge-counts the |Q|−t+1 shortest posting
// lists — by the pigeonhole principle every qualifying document appears in at
// least one of them — and then walks the remaining lists longest-last,
// abandoning any candidate whose count plus the lists still unread can no
// longer reach t. The merge decodes a block at a time and the candidate walk
// seeks whole blocks via the skip table. The pruning is exact: the surviving
// candidate set and its containment scores are identical to a full scan.
package ngram

import "sort"

// Index is an inverted index from n-gram to a block-compressed posting list
// of document numbers.
type Index struct {
	n         int
	blockSize int
	postings  map[string]*postings
	docs      []doc // nil for docless indexes (FromBytes embeddings)
	docCount  int
	sealed    bool // opened zero-copy: postings alias caller bytes, Add panics
}

type doc struct {
	id     string
	ngrams int // number of distinct n-grams
}

// New returns an index over n-grams of size n (n ≥ 1) using the current
// DefaultBlockSize.
func New(n int) *Index {
	return NewWithBlock(n, DefaultBlockSize())
}

// NewWithBlock returns an index over n-grams of size n with an explicit
// posting-block size (clamped to [1, 65536]).
func NewWithBlock(n, blockSize int) *Index {
	if n < 1 {
		n = 1
	}
	if blockSize < 1 {
		blockSize = 1
	}
	if blockSize > 1<<16 {
		blockSize = 1 << 16
	}
	return &Index{n: n, blockSize: blockSize, postings: make(map[string]*postings)}
}

// N returns the configured n-gram size.
func (ix *Index) N() int { return ix.n }

// BlockSize returns the posting-block size this index was built with.
func (ix *Index) BlockSize() int { return ix.blockSize }

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return ix.docCount }

// Docless reports whether the index carries no document-id table (an
// embedded index whose owner resolves ids itself); Query then leaves
// Candidate.ID empty.
func (ix *Index) Docless() bool { return ix.docs == nil && ix.docCount > 0 }

// docID resolves a doc number to its id ("" for docless indexes).
func (ix *Index) docID(d uint32) string {
	if int(d) < len(ix.docs) {
		return ix.docs[d].id
	}
	return ""
}

// Grams returns the distinct n-grams of s (strings shorter than n yield the
// whole string as a single gram).
func (ix *Index) Grams(s string) []string {
	return Grams(s, ix.n)
}

// Grams returns the distinct character n-grams of s, sorted.
func Grams(s string, n int) []string {
	return AppendGrams(nil, s, n)
}

// AppendGrams appends the distinct character n-grams of s to dst (sorted) —
// the scratch-friendly form of Grams: with a reused dst the only allocation
// is amortized slice growth. Deduplication is sort-and-compact, so no map is
// built; retrieval treats the grams as a set, so order carries no meaning.
func AppendGrams(dst []string, s string, n int) []string {
	if len(s) == 0 {
		return dst
	}
	if len(s) <= n {
		return append(dst, s)
	}
	base := len(dst)
	for i := 0; i+n <= len(s); i++ {
		dst = append(dst, s[i:i+n])
	}
	win := dst[base:]
	sort.Strings(win)
	w := 1
	for i := 1; i < len(win); i++ {
		if win[i] != win[i-1] {
			win[w] = win[i]
			w++
		}
	}
	return dst[:base+w]
}

// Add indexes the string under the given id and returns the internal doc
// number. Doc numbers increase monotonically, so every posting list stays
// sorted by construction. Panics on an index opened zero-copy from snapshot
// bytes (those are immutable segments).
func (ix *Index) Add(id, s string) int {
	if ix.sealed {
		panic("ngram: Add on a sealed (zero-copy) index; segments are write-once")
	}
	num := uint32(ix.docCount)
	grams := ix.Grams(s)
	if ix.docs != nil || ix.docCount == 0 {
		// Docless indexes (loaded corpus embeddings) stay docless: their
		// owner resolves ids by doc number, which needs no table here.
		ix.docs = append(ix.docs, doc{id: id, ngrams: len(grams)})
	}
	ix.docCount++
	for _, g := range grams {
		p := ix.postings[g]
		if p == nil {
			p = &postings{}
			ix.postings[g] = p
		}
		p.add(num, ix.blockSize)
	}
	return int(num)
}

// Candidate is a retrieval result.
type Candidate struct {
	ID string
	// Doc is the internal doc number assigned by Add.
	Doc int
	// Containment is |shared grams| / |query grams| in [0,1].
	Containment float64
}

// Stats counts the work one Query did; the service layer aggregates these
// into its pruning metrics.
type Stats struct {
	// Lists is the number of query grams with a non-empty posting list.
	Lists int
	// Candidates is how many distinct documents the merge phase touched.
	Candidates int
	// Pruned is how many of those were abandoned by the η upper-bound
	// cutoff before their full gram count was known.
	Pruned int
	// Kept is how many candidates reached the containment threshold.
	Kept int
}

// Query returns the ids of indexed documents sharing at least eta (0..1) of
// the query string's distinct n-grams, most-overlapping first (ties by doc
// number).
func (ix *Index) Query(s string, eta float64) []Candidate {
	out, _ := ix.QueryStats(s, eta)
	return out
}

// QueryStats is Query plus retrieval statistics.
func (ix *Index) QueryStats(s string, eta float64) ([]Candidate, Stats) {
	return ix.QueryGrams(ix.Grams(s), eta)
}

// QueryGrams retrieves by precomputed distinct query grams — callers
// querying several indexes with one query (the service's generation
// segments) derive the grams once and reuse them.
func (ix *Index) QueryGrams(grams []string, eta float64) ([]Candidate, Stats) {
	var sc Scratch
	return ix.QueryGramsScratch(grams, eta, &sc)
}

// Scratch holds the reusable buffers of one retrieval: the selected posting
// lists, one cursor and decode buffer per list, the candidate accumulator
// and the result slice. A zero Scratch is ready to use; reusing one across
// queries makes the steady-state retrieval allocation-free.
type Scratch struct {
	lists   []*postings
	cursors []cursor
	slab    []uint32
	cands   []counted
	out     []Candidate
	byLen   listsByLen
	byRank  candidatesByRank
}

// QueryGramsScratch is QueryGrams with caller-provided scratch. The returned
// candidates alias sc and are valid until its next use.
func (ix *Index) QueryGramsScratch(grams []string, eta float64, sc *Scratch) ([]Candidate, Stats) {
	var st Stats
	if len(grams) == 0 {
		return nil, st
	}
	// A qualifying document shares at least t grams: the smallest integer
	// count c with c ≥ η·|Q| (matching the historical float comparison),
	// never below 1 so η ≤ 0 still demands one shared gram.
	need := eta * float64(len(grams))
	t := int(need)
	if float64(t) < need {
		t++
	}
	t = max(t, 1)

	sc.lists = sc.lists[:0]
	for _, g := range grams {
		if p := ix.postings[g]; p != nil && p.count > 0 {
			sc.lists = append(sc.lists, p)
		}
	}
	st.Lists = len(sc.lists)
	if len(sc.lists) < t {
		return nil, st // even full membership cannot reach the threshold
	}
	sc.byLen.s = sc.lists
	sort.Sort(&sc.byLen)

	nl := len(sc.lists)
	bs := ix.blockSize
	if cap(sc.slab) < nl*bs {
		sc.slab = make([]uint32, nl*bs)
	}
	slab := sc.slab[:cap(sc.slab)]
	if cap(sc.cursors) < nl {
		sc.cursors = make([]cursor, nl)
	}
	sc.cursors = sc.cursors[:nl]
	for i, p := range sc.lists {
		sc.cursors[i].init(p, slab[i*bs:(i+1)*bs], bs)
	}

	// Phase 1 — pigeonhole prefix: any document with ≥ t shared grams
	// appears in at least one of the |lists|−t+1 shortest lists. Merge them
	// document-at-a-time into (doc, count) runs, in doc order, decoding the
	// compressed lists a block at a time.
	prefix := nl - t + 1
	sc.cands = mergeCountInto(sc.cursors[:prefix], sc.cands[:0])
	st.Candidates = len(sc.cands)

	// Phase 2 — walk the remaining (longer) lists shortest-first, merging
	// each against the surviving candidates. After list j there are
	// remaining = |lists|−j−1 unread lists; a candidate counting c can reach
	// at most c+remaining, so anything below t−remaining is abandoned.
	// Candidates arrive in doc order, so each list's cursor only moves
	// forward — seekGE hops whole blocks via the skip table.
	cands := sc.cands
	for j := prefix; j < nl; j++ {
		cur := &sc.cursors[j]
		remaining := nl - j - 1
		live := cands[:0]
		for _, c := range cands {
			cur.seekGE(c.doc)
			if cur.valid && cur.cur == c.doc {
				c.count++
			}
			if c.count+remaining < t {
				st.Pruned++
				continue
			}
			live = append(live, c)
		}
		cands = live
	}

	sc.out = sc.out[:0]
	for _, c := range cands {
		if c.count >= t {
			sc.out = append(sc.out, Candidate{
				ID:          ix.docID(c.doc),
				Doc:         int(c.doc),
				Containment: float64(c.count) / float64(len(grams)),
			})
		}
	}
	st.Kept = len(sc.out)
	if len(sc.out) == 0 {
		return nil, st
	}
	sc.byRank.s = sc.out
	sort.Sort(&sc.byRank)
	return sc.out, st
}

// counted is one candidate document with its shared-gram count so far.
type counted struct {
	doc   uint32
	count int
}

// mergeCountInto merges the cursors' posting lists into (doc, count) pairs in
// doc order — the document-at-a-time counting step. Every round the minimum
// unconsumed doc is emitted with the number of lists it appears in.
func mergeCountInto(cursors []cursor, out []counted) []counted {
	switch len(cursors) {
	case 0:
		return out
	case 1:
		c := &cursors[0]
		for c.valid {
			out = append(out, counted{doc: c.cur, count: 1})
			c.next()
		}
		return out
	}
	for {
		minDoc := uint32(0)
		found := false
		for i := range cursors {
			c := &cursors[i]
			if c.valid && (!found || c.cur < minDoc) {
				minDoc, found = c.cur, true
			}
		}
		if !found {
			return out
		}
		count := 0
		for i := range cursors {
			c := &cursors[i]
			if c.valid && c.cur == minDoc {
				count++
				c.next()
			}
		}
		out = append(out, counted{doc: minDoc, count: count})
	}
}

// listsByLen sorts posting lists shortest-first (a pre-built sort.Interface,
// so the hot path avoids the closure allocation of sort.Slice).
type listsByLen struct{ s []*postings }

func (l *listsByLen) Len() int           { return len(l.s) }
func (l *listsByLen) Swap(i, j int)      { l.s[i], l.s[j] = l.s[j], l.s[i] }
func (l *listsByLen) Less(i, j int) bool { return l.s[i].count < l.s[j].count }

// candidatesByRank sorts candidates containment-descending, doc ascending.
type candidatesByRank struct{ s []Candidate }

func (l *candidatesByRank) Len() int      { return len(l.s) }
func (l *candidatesByRank) Swap(i, j int) { l.s[i], l.s[j] = l.s[j], l.s[i] }
func (l *candidatesByRank) Less(i, j int) bool {
	if l.s[i].Containment != l.s[j].Containment {
		return l.s[i].Containment > l.s[j].Containment
	}
	return l.s[i].Doc < l.s[j].Doc
}
