// Package ngram provides an inverted n-gram index with containment-threshold
// retrieval. It stands in for the Elasticsearch n-gram pre-filter of the
// paper's clone-detection pipeline: fingerprints are split into character
// n-grams, indexed, and a query retrieves only the fingerprints sharing at
// least a fraction η of the query's distinct n-grams — the cheap candidate
// filter in front of the expensive edit-distance similarity.
//
// Retrieval is document-at-a-time over sorted posting lists. A query needing
// t = ⌈η·|Q|⌉ shared grams first merge-counts the |Q|−t+1 shortest posting
// lists — by the pigeonhole principle every qualifying document appears in at
// least one of them — and then walks the remaining lists longest-last,
// abandoning any candidate whose count plus the lists still unread can no
// longer reach t. The pruning is exact: the surviving candidate set and its
// containment scores are identical to a full scan.
package ngram

import "sort"

// Index is an inverted index from n-gram to a sorted posting list of
// document numbers.
type Index struct {
	n        int
	postings map[string][]uint32
	docs     []doc
}

type doc struct {
	id     string
	ngrams int // number of distinct n-grams
}

// New returns an index over n-grams of size n (n ≥ 1).
func New(n int) *Index {
	if n < 1 {
		n = 1
	}
	return &Index{n: n, postings: make(map[string][]uint32)}
}

// N returns the configured n-gram size.
func (ix *Index) N() int { return ix.n }

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.docs) }

// Grams returns the distinct n-grams of s (strings shorter than n yield the
// whole string as a single gram).
func (ix *Index) Grams(s string) []string {
	return Grams(s, ix.n)
}

// Grams returns the distinct character n-grams of s.
func Grams(s string, n int) []string {
	if len(s) == 0 {
		return nil
	}
	if len(s) <= n {
		return []string{s}
	}
	seen := make(map[string]bool, len(s))
	out := make([]string, 0, len(s)-n+1)
	for i := 0; i+n <= len(s); i++ {
		g := s[i : i+n]
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}

// Add indexes the string under the given id and returns the internal doc
// number. Doc numbers increase monotonically, so every posting list stays
// sorted by construction.
func (ix *Index) Add(id, s string) int {
	num := uint32(len(ix.docs))
	grams := ix.Grams(s)
	ix.docs = append(ix.docs, doc{id: id, ngrams: len(grams)})
	for _, g := range grams {
		ix.postings[g] = append(ix.postings[g], num)
	}
	return int(num)
}

// Candidate is a retrieval result.
type Candidate struct {
	ID string
	// Doc is the internal doc number assigned by Add.
	Doc int
	// Containment is |shared grams| / |query grams| in [0,1].
	Containment float64
}

// Stats counts the work one Query did; the service layer aggregates these
// into its pruning metrics.
type Stats struct {
	// Lists is the number of query grams with a non-empty posting list.
	Lists int
	// Candidates is how many distinct documents the merge phase touched.
	Candidates int
	// Pruned is how many of those were abandoned by the η upper-bound
	// cutoff before their full gram count was known.
	Pruned int
	// Kept is how many candidates reached the containment threshold.
	Kept int
}

// Query returns the ids of indexed documents sharing at least eta (0..1) of
// the query string's distinct n-grams, most-overlapping first (ties by doc
// number).
func (ix *Index) Query(s string, eta float64) []Candidate {
	out, _ := ix.QueryStats(s, eta)
	return out
}

// QueryStats is Query plus retrieval statistics.
func (ix *Index) QueryStats(s string, eta float64) ([]Candidate, Stats) {
	return ix.QueryGrams(ix.Grams(s), eta)
}

// QueryGrams retrieves by precomputed distinct query grams — callers
// querying several indexes with one query (the service's generation
// segments) derive the grams once and reuse them.
func (ix *Index) QueryGrams(grams []string, eta float64) ([]Candidate, Stats) {
	var st Stats
	if len(grams) == 0 {
		return nil, st
	}
	// A qualifying document shares at least t grams: the smallest integer
	// count c with c ≥ η·|Q| (matching the historical float comparison),
	// never below 1 so η ≤ 0 still demands one shared gram.
	need := eta * float64(len(grams))
	t := int(need)
	if float64(t) < need {
		t++
	}
	t = max(t, 1)

	lists := make([][]uint32, 0, len(grams))
	for _, g := range grams {
		if p := ix.postings[g]; len(p) > 0 {
			lists = append(lists, p)
		}
	}
	st.Lists = len(lists)
	if len(lists) < t {
		return nil, st // even full membership cannot reach the threshold
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })

	// Phase 1 — pigeonhole prefix: any document with ≥ t shared grams
	// appears in at least one of the |lists|−t+1 shortest lists. Merge them
	// document-at-a-time into (doc, count) runs, in doc order.
	prefix := len(lists) - t + 1
	cands := mergeCount(lists[:prefix])
	st.Candidates = len(cands)

	// Phase 2 — walk the remaining (longer) lists shortest-first, merging
	// each against the surviving candidates. After list j there are
	// remaining = |lists|−j−1 unread lists; a candidate counting c can reach
	// at most c+remaining, so anything below t−remaining is abandoned.
	for j := prefix; j < len(lists); j++ {
		post := lists[j]
		remaining := len(lists) - j - 1
		live := cands[:0]
		pi := 0
		for _, c := range cands {
			// Gallop forward: candidates and postings are both doc-sorted.
			pi += gallop(post[pi:], c.doc)
			if pi < len(post) && post[pi] == c.doc {
				c.count++
				pi++
			}
			if c.count+remaining < t {
				st.Pruned++
				continue
			}
			live = append(live, c)
		}
		cands = live
	}

	out := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		if c.count >= t {
			out = append(out, Candidate{
				ID:          ix.docs[c.doc].id,
				Doc:         int(c.doc),
				Containment: float64(c.count) / float64(len(grams)),
			})
		}
	}
	st.Kept = len(out)
	if len(out) == 0 {
		return nil, st
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Containment != out[j].Containment {
			return out[i].Containment > out[j].Containment
		}
		return out[i].Doc < out[j].Doc
	})
	return out, st
}

// counted is one candidate document with its shared-gram count so far.
type counted struct {
	doc   uint32
	count int
}

// mergeCount merges sorted posting lists into (doc, count) pairs in doc
// order — the document-at-a-time counting step. Lists are consumed with a
// cursor each; every round the minimum unconsumed doc is emitted with the
// number of lists it appears in.
func mergeCount(lists [][]uint32) []counted {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		out := make([]counted, len(lists[0]))
		for i, d := range lists[0] {
			out[i] = counted{doc: d, count: 1}
		}
		return out
	}
	cursors := make([]int, len(lists))
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]counted, 0, total)
	for {
		minDoc := uint32(0)
		found := false
		for i, l := range lists {
			if cursors[i] < len(l) {
				if d := l[cursors[i]]; !found || d < minDoc {
					minDoc, found = d, true
				}
			}
		}
		if !found {
			return out
		}
		count := 0
		for i, l := range lists {
			if cursors[i] < len(l) && l[cursors[i]] == minDoc {
				count++
				cursors[i]++
			}
		}
		out = append(out, counted{doc: minDoc, count: count})
	}
}

// gallop returns the number of leading elements of post strictly below doc,
// doubling the probe step before finishing with a binary search — O(log d)
// for a cursor advance of d, so intersecting a short candidate set against a
// long posting list never degrades to a linear walk.
func gallop(post []uint32, doc uint32) int {
	if len(post) == 0 || post[0] >= doc {
		return 0
	}
	hi := 1
	for hi < len(post) && post[hi] < doc {
		hi *= 2
	}
	lo := hi / 2
	hi = min(hi, len(post))
	return lo + sort.Search(hi-lo, func(i int) bool { return post[lo+i] >= doc })
}
