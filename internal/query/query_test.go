package query

import (
	"testing"

	"repro/internal/cpg"
)

// chain builds a linear EOG graph n0 -> n1 -> ... -> nk.
func chain(g *cpg.Graph, k int) []*cpg.Node {
	nodes := make([]*cpg.Node, k)
	for i := range nodes {
		nodes[i] = g.NewNode(cpg.LCallExpression)
	}
	for i := 0; i+1 < k; i++ {
		g.Edge(nodes[i], cpg.EOG, nodes[i+1])
	}
	return nodes
}

func TestReachAndPathExists(t *testing.T) {
	g := cpg.NewGraph()
	ns := chain(g, 5)
	q := New(g)
	if !q.PathExists(ns[0], ns[4], cpg.EOG) {
		t.Error("path should exist")
	}
	if q.PathExists(ns[4], ns[0], cpg.EOG) {
		t.Error("reverse path should not exist")
	}
	if q.PathExists(ns[0], ns[0], cpg.EOG) {
		t.Error("no self loop")
	}
	r := q.Reach(ns[1], cpg.EOG)
	if len(r) != 4 {
		t.Errorf("reach size: %d", len(r))
	}
	rr := q.ReachRev(ns[3], cpg.EOG)
	if len(rr) != 4 {
		t.Errorf("reachrev size: %d", len(rr))
	}
}

func TestMaxDepthLimitsReach(t *testing.T) {
	g := cpg.NewGraph()
	ns := chain(g, 10)
	q := NewLimited(g, Limits{MaxDepth: 3})
	r := q.Reach(ns[0], cpg.EOG)
	if len(r) != 4 { // start + 3 hops
		t.Errorf("limited reach size: %d", len(r))
	}
}

func TestBudgetTruncation(t *testing.T) {
	g := cpg.NewGraph()
	ns := chain(g, 100)
	q := NewLimited(g, Limits{MaxSteps: 10})
	q.Reach(ns[0], cpg.EOG)
	if !q.BudgetHit() {
		t.Error("budget should be hit")
	}
}

func TestTerminals(t *testing.T) {
	g := cpg.NewGraph()
	// Diamond with two terminal leaves.
	a, b, c, d, e := g.NewNode(cpg.LIfStatement), g.NewNode(cpg.LCallExpression),
		g.NewNode(cpg.LCallExpression), g.NewNode(cpg.LRollback), g.NewNode(cpg.LReturnStatement)
	g.Edge(a, cpg.EOG, b)
	g.Edge(a, cpg.EOG, c)
	g.Edge(b, cpg.EOG, d)
	g.Edge(c, cpg.EOG, e)
	q := New(g)
	terms := q.Terminals(a, cpg.EOG)
	if len(terms) != 2 {
		t.Fatalf("terminals: %d", len(terms))
	}
	var rollbacks int
	for _, x := range terms {
		if x.Is(cpg.LRollback) {
			rollbacks++
		}
	}
	if rollbacks != 1 {
		t.Errorf("rollback terminals: %d", rollbacks)
	}
}

func TestAnyTerminalAvoiding(t *testing.T) {
	g := cpg.NewGraph()
	// branch -> danger -> end1 ; branch -> safe -> end2
	branch := g.NewNode(cpg.LIfStatement)
	danger := g.NewNode(cpg.LCallExpression)
	safe := g.NewNode(cpg.LCallExpression)
	end1 := g.NewNode(cpg.LReturnStatement)
	end2 := g.NewNode(cpg.LReturnStatement)
	g.Edge(branch, cpg.EOG, danger)
	g.Edge(branch, cpg.EOG, safe)
	g.Edge(danger, cpg.EOG, end1)
	g.Edge(safe, cpg.EOG, end2)
	q := New(g)
	if !q.AnyTerminalAvoiding(branch, danger, nil, cpg.EOG) {
		t.Error("alternative path avoiding danger should exist")
	}
	// Without the safe branch there is no avoiding path.
	g2 := cpg.NewGraph()
	b2 := g2.NewNode(cpg.LIfStatement)
	d2 := g2.NewNode(cpg.LCallExpression)
	e2 := g2.NewNode(cpg.LReturnStatement)
	g2.Edge(b2, cpg.EOG, d2)
	g2.Edge(d2, cpg.EOG, e2)
	q2 := New(g2)
	if q2.AnyTerminalAvoiding(b2, d2, nil, cpg.EOG) {
		t.Error("no avoiding path should exist")
	}
	// ... unless the only path ends in a Rollback and okPred accepts it.
	rb := g2.NewNode(cpg.LRollback)
	g2.Edge(e2, cpg.EOG, rb)
	if !q2.AnyTerminalAvoiding(b2, d2, IsLabel(cpg.LRollback), cpg.EOG) {
		t.Error("rollback terminal should satisfy okPred")
	}
}

func TestWalkPathsEnumeratesBranches(t *testing.T) {
	g := cpg.NewGraph()
	a := g.NewNode(cpg.LIfStatement)
	b := g.NewNode(cpg.LCallExpression)
	c := g.NewNode(cpg.LCallExpression)
	g.Edge(a, cpg.EOG, b)
	g.Edge(a, cpg.EOG, c)
	q := New(g)
	var paths []Path
	q.WalkPaths(a, func(p Path) bool {
		paths = append(paths, p)
		return true
	}, cpg.EOG)
	if len(paths) != 2 {
		t.Fatalf("paths: %d", len(paths))
	}
}

func TestWalkPathsCutsCycles(t *testing.T) {
	g := cpg.NewGraph()
	ns := chain(g, 3)
	g.Edge(ns[2], cpg.EOG, ns[0]) // cycle
	q := New(g)
	count := 0
	q.WalkPaths(ns[0], func(p Path) bool {
		count++
		return count < 100
	}, cpg.EOG)
	if count >= 100 {
		t.Error("cycle not cut")
	}
}

func TestPredicates(t *testing.T) {
	g := cpg.NewGraph()
	n := g.NewNode(cpg.LCallExpression)
	n.LocalName = "transfer"
	n.Code = "msg.sender.transfer(x)"
	if !And(IsLabel(cpg.LCallExpression), LocalNameIn("send", "transfer"))(n) {
		t.Error("And/LocalNameIn failed")
	}
	if Or(HasCode("nope"), HasLocalName("nope"))(n) {
		t.Error("Or should fail")
	}
	if Not(HasLocalName("transfer"))(n) {
		t.Error("Not failed")
	}
	b := g.NewNode(cpg.LBinaryOperator)
	b.Operator = "+="
	if !OperatorIn("+", "+=")(b) {
		t.Error("OperatorIn failed")
	}
}

func TestReachAnyAndFilter(t *testing.T) {
	g := cpg.NewGraph()
	ns := chain(g, 4)
	ns[3].LocalName = "target"
	q := New(g)
	if !q.ReachAny(ns[0], HasLocalName("target"), cpg.EOG) {
		t.Error("ReachAny failed")
	}
	got := Filter(ns, HasLocalName("target"))
	if len(got) != 1 {
		t.Errorf("filter: %d", len(got))
	}
}

func TestAnyPathThrough(t *testing.T) {
	g := cpg.NewGraph()
	ns := chain(g, 4)
	ns[3].LocalName = "end"
	q := New(g)
	if !q.AnyPathThrough(ns[0], ns[2], HasLocalName("end"), cpg.EOG) {
		t.Error("path through mid to matching terminal should exist")
	}
	if q.AnyPathThrough(ns[2], ns[0], HasLocalName("end"), cpg.EOG) {
		t.Error("mid not reachable from start")
	}
	if q.AnyPathThrough(ns[0], ns[2], HasLocalName("nope"), cpg.EOG) {
		t.Error("terminal predicate should fail")
	}
}

func TestPathExistsNilArgs(t *testing.T) {
	g := cpg.NewGraph()
	n := g.NewNode(cpg.LCallExpression)
	q := New(g)
	if q.PathExists(nil, n, cpg.EOG) || q.PathExists(n, nil, cpg.EOG) {
		t.Error("nil endpoints should not have paths")
	}
}
