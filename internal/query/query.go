// Package query provides graph-pattern primitives over a CPG, standing in
// for the Neo4j/Cypher layer of the paper's toolchain. It supports the
// constructs the paper's 17 queries need:
//
//   - node selection by label and property predicates,
//   - variable-length path existence over sets of edge kinds ([:EOG*],
//     [:DFG*], [:EOG|INVOKES|RETURNS*], ...),
//   - forward path enumeration with per-query traversal budgets,
//   - existential and negated sub-patterns (expressed as Go closures),
//   - the phase-2 "path reduction" mechanism: a configurable maximum path
//     depth that bounds data-flow exploration when validation times out.
package query

import (
	"errors"

	"repro/internal/cpg"
)

// ErrBudgetExceeded is reported when a traversal exhausts its step budget
// (the analogue of the paper's Neo4j query timeouts).
var ErrBudgetExceeded = errors.New("query: traversal budget exceeded")

// Limits bounds a query's traversals.
type Limits struct {
	// MaxDepth bounds variable-length path expansion; 0 means unbounded.
	// Phase-2 validation re-runs queries with reduced MaxDepth (the paper's
	// iterative data-flow path-length reduction).
	MaxDepth int
	// MaxSteps bounds the total node visits of one traversal; 0 = default.
	MaxSteps int
}

// DefaultMaxSteps bounds a single traversal when Limits.MaxSteps is zero.
const DefaultMaxSteps = 200000

func (l Limits) steps() int {
	if l.MaxSteps <= 0 {
		return DefaultMaxSteps
	}
	return l.MaxSteps
}

// Q is a query context over one graph.
type Q struct {
	G      *cpg.Graph
	Limits Limits
	// budgetHit records whether any traversal was truncated; callers use it
	// to decide whether a phase-2 re-run is warranted.
	budgetHit bool
}

// New returns a query context with unbounded depth.
func New(g *cpg.Graph) *Q { return &Q{G: g} }

// NewLimited returns a query context with the given limits.
func NewLimited(g *cpg.Graph, l Limits) *Q { return &Q{G: g, Limits: l} }

// BudgetHit reports whether any traversal was truncated by the limits.
func (q *Q) BudgetHit() bool { return q.budgetHit }

// Nodes returns all nodes with the given label.
func (q *Q) Nodes(l cpg.Label) []*cpg.Node { return q.G.ByLabel(l) }

// Pred is a node predicate.
type Pred func(*cpg.Node) bool

// Filter returns the nodes satisfying pred.
func Filter(nodes []*cpg.Node, pred Pred) []*cpg.Node {
	var out []*cpg.Node
	for _, n := range nodes {
		if pred(n) {
			out = append(out, n)
		}
	}
	return out
}

// HasCode matches nodes by exact canonical code.
func HasCode(code string) Pred {
	return func(n *cpg.Node) bool { return n.Code == code }
}

// HasLocalName matches nodes by localName.
func HasLocalName(name string) Pred {
	return func(n *cpg.Node) bool { return n.LocalName == name }
}

// LocalNameIn matches nodes whose localName is any of names (the Cypher
// `c.name IN [...]` idiom).
func LocalNameIn(names ...string) Pred {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return func(n *cpg.Node) bool { return set[n.LocalName] }
}

// OperatorIn matches operator nodes by operator code.
func OperatorIn(ops ...string) Pred {
	set := make(map[string]bool, len(ops))
	for _, o := range ops {
		set[o] = true
	}
	return func(n *cpg.Node) bool { return set[n.Operator] }
}

// IsLabel matches nodes carrying the label.
func IsLabel(l cpg.Label) Pred {
	return func(n *cpg.Node) bool { return n.Is(l) }
}

// Not negates a predicate.
func Not(p Pred) Pred { return func(n *cpg.Node) bool { return !p(n) } }

// And combines predicates conjunctively.
func And(ps ...Pred) Pred {
	return func(n *cpg.Node) bool {
		for _, p := range ps {
			if !p(n) {
				return false
			}
		}
		return true
	}
}

// Or combines predicates disjunctively.
func Or(ps ...Pred) Pred {
	return func(n *cpg.Node) bool {
		for _, p := range ps {
			if p(n) {
				return true
			}
		}
		return false
	}
}

// --- reachability -----------------------------------------------------------

// Reach returns every node reachable from start over the given edge kinds
// (start included; the Cypher `-[:K*0..]->` closure).
func (q *Q) Reach(start *cpg.Node, kinds ...cpg.EdgeKind) map[*cpg.Node]bool {
	return q.reach([]*cpg.Node{start}, false, kinds)
}

// ReachRev returns every node that reaches start over the given edge kinds.
func (q *Q) ReachRev(start *cpg.Node, kinds ...cpg.EdgeKind) map[*cpg.Node]bool {
	return q.reach([]*cpg.Node{start}, true, kinds)
}

// ReachFrom returns every node reachable from any of the starts.
func (q *Q) ReachFrom(starts []*cpg.Node, kinds ...cpg.EdgeKind) map[*cpg.Node]bool {
	return q.reach(starts, false, kinds)
}

func (q *Q) reach(starts []*cpg.Node, rev bool, kinds []cpg.EdgeKind) map[*cpg.Node]bool {
	type item struct {
		n *cpg.Node
		d int
	}
	seen := make(map[*cpg.Node]bool)
	var queue []item
	for _, s := range starts {
		if s == nil || seen[s] {
			continue
		}
		seen[s] = true
		queue = append(queue, item{s, 0})
	}
	steps := 0
	budget := q.Limits.steps()
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if q.Limits.MaxDepth > 0 && it.d >= q.Limits.MaxDepth {
			continue
		}
		var next []*cpg.Node
		if rev {
			next = it.n.InAny(kinds...)
		} else {
			next = it.n.OutAny(kinds...)
		}
		for _, nb := range next {
			steps++
			if steps > budget {
				q.budgetHit = true
				return seen
			}
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, item{nb, it.d + 1})
			}
		}
	}
	return seen
}

// PathExists reports whether to is reachable from from over kinds with at
// least one edge (the Cypher `-[:K*1..]->`).
func (q *Q) PathExists(from, to *cpg.Node, kinds ...cpg.EdgeKind) bool {
	if from == nil || to == nil {
		return false
	}
	for _, first := range from.OutAny(kinds...) {
		if first == to || q.Reach(first, kinds...)[to] {
			return true
		}
	}
	return false
}

// ReachAny reports whether any node satisfying pred is reachable from start
// (zero or more edges).
func (q *Q) ReachAny(start *cpg.Node, pred Pred, kinds ...cpg.EdgeKind) bool {
	for n := range q.Reach(start, kinds...) {
		if pred(n) {
			return true
		}
	}
	return false
}

// Terminals returns the reachable nodes with no outgoing edges of the kinds
// (the query idiom `(last) where not exists((last)-[:EOG]->())`).
func (q *Q) Terminals(start *cpg.Node, kinds ...cpg.EdgeKind) []*cpg.Node {
	var out []*cpg.Node
	for n := range q.Reach(start, kinds...) {
		if len(n.OutAny(kinds...)) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// --- path enumeration --------------------------------------------------------

// Path is a node sequence connected by edges of the traversed kinds.
type Path []*cpg.Node

// Last returns the final node of the path.
func (p Path) Last() *cpg.Node { return p[len(p)-1] }

// Contains reports whether the path visits n.
func (p Path) Contains(n *cpg.Node) bool {
	for _, x := range p {
		if x == n {
			return true
		}
	}
	return false
}

// WalkPaths enumerates simple paths starting at start over kinds, invoking
// visit for every maximal or budget-truncated path prefix ending at a node
// with either no successors or only already-visited successors. visit
// returning false stops the enumeration. Cycles are cut by excluding nodes
// already on the current path.
func (q *Q) WalkPaths(start *cpg.Node, visit func(Path) bool, kinds ...cpg.EdgeKind) {
	if start == nil {
		return
	}
	budget := q.Limits.steps()
	steps := 0
	onPath := map[*cpg.Node]bool{start: true}
	path := Path{start}
	var rec func() bool
	rec = func() bool {
		steps++
		if steps > budget {
			q.budgetHit = true
			return false
		}
		cur := path.Last()
		if q.Limits.MaxDepth > 0 && len(path) > q.Limits.MaxDepth {
			return visit(append(Path(nil), path...))
		}
		extended := false
		for _, nb := range cur.OutAny(kinds...) {
			if onPath[nb] {
				continue
			}
			extended = true
			onPath[nb] = true
			path = append(path, nb)
			ok := rec()
			path = path[:len(path)-1]
			delete(onPath, nb)
			if !ok {
				return false
			}
		}
		if !extended {
			return visit(append(Path(nil), path...))
		}
		return true
	}
	rec()
}

// AnyPathThrough reports whether some path from start over kinds passes
// through mid and afterwards satisfies endPred at its final node.
func (q *Q) AnyPathThrough(start, mid *cpg.Node, endPred Pred, kinds ...cpg.EdgeKind) bool {
	if !(start == mid || q.PathExists(start, mid, kinds...)) {
		return false
	}
	for _, t := range q.Terminals(mid, kinds...) {
		if endPred(t) {
			return true
		}
	}
	return false
}

// AnyTerminalAvoiding reports whether execution starting at start can reach a
// terminal node while never visiting avoid, or can reach a terminal node
// satisfying okPred (typically a Rollback). This is the paper's recurring
// mitigation pattern: an alternative path exists that avoids the dangerous
// operation or rolls the transaction back.
func (q *Q) AnyTerminalAvoiding(start, avoid *cpg.Node, okPred Pred, kinds ...cpg.EdgeKind) bool {
	// Terminal satisfying okPred anywhere?
	for _, t := range q.Terminals(start, kinds...) {
		if okPred != nil && okPred(t) {
			return true
		}
	}
	if avoid == nil {
		return false
	}
	// Reachability avoiding `avoid`: BFS that never enters avoid.
	seen := map[*cpg.Node]bool{start: true}
	if start == avoid {
		return false
	}
	queue := []*cpg.Node{start}
	budget := q.Limits.steps()
	steps := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if len(n.OutAny(kinds...)) == 0 {
			return true // terminal reached without touching avoid
		}
		for _, nb := range n.OutAny(kinds...) {
			steps++
			if steps > budget {
				q.budgetHit = true
				return false
			}
			if nb == avoid || seen[nb] {
				continue
			}
			seen[nb] = true
			queue = append(queue, nb)
		}
	}
	return false
}
