package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/service/api"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := api.NewServer(service.New(service.Options{
		Workers: 4, Shards: 2,
		Admission: service.AdmissionConfig{MaxQueue: 8},
	}))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestClosedLoopReport(t *testing.T) {
	ts := testServer(t)
	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Concurrency: 4,
		Requests:    60,
		Seed:        7,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 60 {
		t.Fatalf("reported %d requests, want 60", rep.Requests)
	}
	if rep.NetErrors != 0 {
		t.Fatalf("%d network errors against a live server", rep.NetErrors)
	}
	if rep.ByStatus[http.StatusOK] == 0 {
		t.Fatalf("no 200s: %v", rep.ByStatus)
	}
	if rep.Accepted.Count == 0 || rep.All.Count != 60 {
		t.Fatalf("summaries: all=%d accepted=%d", rep.All.Count, rep.Accepted.Count)
	}
	// Quantiles must be exact and monotone.
	q := rep.Accepted
	if !(q.P50Us <= q.P90Us && q.P90Us <= q.P99Us && q.P99Us <= q.P999Us && q.P999Us <= q.MaxUs) {
		t.Errorf("non-monotone quantiles: %+v", q)
	}
	// The default mix is match-heavy; over 60 draws every kind appears.
	for _, kind := range []string{KindAnalyze, KindMatch, KindIngest, KindBulk} {
		if rep.ByKind[kind].Count == 0 {
			t.Errorf("mix never drew %s over 60 requests", kind)
		}
	}
	if rep.Server == nil {
		t.Fatal("server-side scrape missing")
	}
	if rep.Server.MatchCount == 0 {
		t.Error("server reports zero matches after a match-heavy run")
	}
	if rep.Server.Admitted == 0 {
		t.Error("server reports zero admitted requests")
	}
}

func TestOpenLoopRunsForDuration(t *testing.T) {
	ts := testServer(t)
	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Mix:         Mix{Match: 1},
		Concurrency: 8,
		Rate:        200,
		Duration:    300 * time.Millisecond,
		Seed:        3,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("open loop issued nothing")
	}
	// 200/s for 0.3s ≈ 60 arrivals; allow wide scheduling slack but pin the
	// order of magnitude so a broken arrival clock fails loudly.
	if rep.Requests+rep.Dropped < 20 {
		t.Errorf("open loop issued %d (+%d dropped), want ≈60", rep.Requests, rep.Dropped)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{BaseURL: "http://x", Rate: 10}); err == nil {
		t.Error("open loop without duration accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x"}); err == nil {
		t.Error("closed loop without request count accepted")
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("match=7, analyze=1,ingest=2,bulk=0")
	if err != nil {
		t.Fatal(err)
	}
	if m != (Mix{Analyze: 1, Match: 7, Ingest: 2}) {
		t.Fatalf("parsed %+v", m)
	}
	for _, bad := range []string{"", "match", "match=x", "nope=1", "match=-1"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestSummarizeExactQuantiles(t *testing.T) {
	var ds []time.Duration
	for i := 1; i <= 1000; i++ {
		ds = append(ds, time.Duration(i)*time.Microsecond)
	}
	q := summarize(ds)
	if q.P50Us != 500 || q.P99Us != 990 || q.P999Us != 999 || q.MaxUs != 1000 {
		t.Fatalf("exact quantiles off: %+v", q)
	}
}
