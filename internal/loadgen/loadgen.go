// Package loadgen generates synthetic mixed traffic against a running serve
// instance and reports client-side latency quantiles next to the server's
// own view. It drives the CI load gate (BenchmarkServeLoad) and the
// cmd/loadgen operator tool, so capacity numbers quoted in docs/tuning.md
// come from one code path.
//
// Two arrival models are supported. The closed loop (Rate == 0) runs
// Concurrency workers back to back — offered load adapts to service rate,
// which measures capacity. The open loop (Rate > 0) fires requests on a
// Poisson arrival process regardless of completions — offered load is held
// constant, which is how real overload arrives and what the admission queue
// is built for.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Request kinds in a synthetic mix.
const (
	KindAnalyze = "analyze"
	KindMatch   = "match"
	KindIngest  = "ingest"
	KindBulk    = "bulk"
)

// Mix weights the request kinds. Zero-valued kinds are absent; an all-zero
// Mix defaults to DefaultMix.
type Mix struct {
	Analyze int `json:"analyze"`
	Match   int `json:"match"`
	Ingest  int `json:"ingest"`
	Bulk    int `json:"bulk"`
}

// DefaultMix approximates a serving workload: match-dominated with a steady
// ingest trickle.
var DefaultMix = Mix{Analyze: 1, Match: 7, Ingest: 1, Bulk: 1}

func (m Mix) total() int { return m.Analyze + m.Match + m.Ingest + m.Bulk }

// pick maps a uniform draw in [0, total) to a kind.
func (m Mix) pick(r int) string {
	if r < m.Analyze {
		return KindAnalyze
	}
	r -= m.Analyze
	if r < m.Match {
		return KindMatch
	}
	r -= m.Match
	if r < m.Ingest {
		return KindIngest
	}
	return KindBulk
}

// ParseMix reads the CLI form "match=7,analyze=1,ingest=1,bulk=1".
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, val, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("bad mix term %q (want kind=weight)", part)
		}
		var w int
		if _, err := fmt.Sscanf(val, "%d", &w); err != nil || w < 0 {
			return Mix{}, fmt.Errorf("bad mix weight %q", val)
		}
		switch strings.TrimSpace(kind) {
		case KindAnalyze:
			m.Analyze = w
		case KindMatch:
			m.Match = w
		case KindIngest:
			m.Ingest = w
		case KindBulk:
			m.Bulk = w
		default:
			return Mix{}, fmt.Errorf("unknown mix kind %q", kind)
		}
	}
	if m.total() == 0 {
		return Mix{}, fmt.Errorf("empty mix")
	}
	return m, nil
}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the serve instance, e.g. "http://localhost:8070".
	BaseURL string
	// Targets, when non-empty, spreads requests round-robin across several
	// instances (e.g. a router plus its shards, or N routers); BaseURL is
	// ignored for requests but Targets[0] is scraped for the server view.
	Targets []string
	// Mix weights the request kinds (zero value: DefaultMix).
	Mix Mix
	// Concurrency is the client (worker) count. Closed loop: the number of
	// back-to-back request loops. Open loop: the cap on in-flight requests —
	// arrivals beyond it are counted as dropped rather than queued, keeping
	// the generator itself from becoming the bottleneck being measured.
	Concurrency int
	// Requests is the closed-loop total across all workers (ignored when
	// Rate > 0).
	Requests int
	// Rate switches to the open loop: mean arrivals per second on a Poisson
	// process, for Duration.
	Rate     float64
	Duration time.Duration
	// MatchLimit is the top-K passed on match requests (0 = all).
	MatchLimit int
	// BulkBatch is entries per bulk request (0 = 16).
	BulkBatch int
	// APIKey, when set, is sent as X-API-Key (the rate-limit client key).
	APIKey string
	// Timeout, when set, is the per-request deadline: declared to the server
	// as X-Request-Timeout (so it serves a degraded partial inside the
	// budget) and enforced client-side via the request context. Requests
	// that still blow it are reported as deadline_exceeded, separate from
	// transport errors.
	Timeout time.Duration
	// Seed makes the workload reproducible (0 = 1).
	Seed int64
	// Client overrides the HTTP client (tests inject the httptest client).
	Client *http.Client
}

// Quantiles summarizes one latency population, exact (sorted samples, ceil
// rank), not bucketed — the load gate asserts 2-3x ratios that log₂ buckets
// cannot resolve.
type Quantiles struct {
	Count  int   `json:"count"`
	MeanUs int64 `json:"mean_us"`
	P50Us  int64 `json:"p50_us"`
	P90Us  int64 `json:"p90_us"`
	P99Us  int64 `json:"p99_us"`
	P999Us int64 `json:"p999_us"`
	MaxUs  int64 `json:"max_us"`
}

func summarize(ds []time.Duration) Quantiles {
	if len(ds) == 0 {
		return Quantiles{}
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	at := func(q float64) int64 {
		rank := int(float64(len(sorted))*q + 0.9999999)
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		return sorted[rank-1].Microseconds()
	}
	return Quantiles{
		Count:  len(sorted),
		MeanUs: (sum / time.Duration(len(sorted))).Microseconds(),
		P50Us:  at(0.50),
		P90Us:  at(0.90),
		P99Us:  at(0.99),
		P999Us: at(0.999),
		MaxUs:  sorted[len(sorted)-1].Microseconds(),
	}
}

// Report is the outcome of one Run.
type Report struct {
	Requests   int           `json:"requests"`
	Elapsed    time.Duration `json:"-"`
	ElapsedSec float64       `json:"elapsed_sec"`
	// Throughput is completed requests (any status) per second.
	Throughput float64 `json:"throughput_rps"`
	// ByStatus counts responses per HTTP status; NetErrors counts requests
	// that failed below HTTP (refused connections, resets). Dropped counts
	// open-loop arrivals skipped because Concurrency in-flight requests
	// already existed. DeadlineExceeded counts requests abandoned on the
	// client-side Config.Timeout — kept separate from NetErrors so a
	// deadline drill reads budget misses, not a flaky network.
	ByStatus         map[int]int `json:"by_status"`
	NetErrors        int         `json:"net_errors"`
	Dropped          int         `json:"dropped,omitempty"`
	DeadlineExceeded int         `json:"deadline_exceeded,omitempty"`
	// Shed counts 429s — admission or rate-limit refusals.
	Shed int `json:"shed"`
	// All summarizes every completed request; Accepted only the 2xx ones —
	// the population whose p99 the overload contract pins.
	All      Quantiles `json:"all"`
	Accepted Quantiles `json:"accepted"`
	// ByKind splits accepted-latency summaries per request kind.
	ByKind map[string]Quantiles `json:"by_kind"`
	// Server is the server's own view, scraped from /metrics after the run
	// (nil when the scrape failed).
	Server *ServerView `json:"server,omitempty"`
}

// ServerView is the slice of /metrics the generator reports next to its
// client-side numbers: the two should agree on shape, and their disagreement
// (queue wait, network) is itself a signal.
type ServerView struct {
	MatchP99Us      float64 `json:"match_p99_us"`
	MatchCount      int64   `json:"match_count"`
	Admitted        int64   `json:"admitted"`
	Shed            int64   `json:"shed"`
	RateLimited     int64   `json:"requests_ratelimited"`
	BackgroundYield int64   `json:"background_yields"`
	// Degradation-ladder and deadline-spine counters (zero when the server
	// predates them or never degraded).
	DegradeTierEntered int64 `json:"degrade_tier_entered,omitempty"`
	LimitHalved        int64 `json:"degrade_limit_halved,omitempty"`
	DeadlineExpired    int64 `json:"deadline_expired,omitempty"`
	DeadlineShipped    int64 `json:"deadline_shipped,omitempty"`
}

// Run drives the configured load against cfg.BaseURL and reports.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Mix.total() == 0 {
		cfg.Mix = DefaultMix
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.BulkBatch <= 0 {
		cfg.BulkBatch = 16
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 60 * time.Second}
	}
	if cfg.Rate > 0 && cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: open loop (rate %.1f) needs a duration", cfg.Rate)
	}
	if cfg.Rate <= 0 && cfg.Requests <= 0 {
		return nil, fmt.Errorf("loadgen: closed loop needs a request count")
	}

	g := &generator{cfg: cfg}
	start := time.Now()
	var err error
	if cfg.Rate > 0 {
		err = g.runOpen(ctx)
	} else {
		err = g.runClosed(ctx)
	}
	if err != nil {
		return nil, err
	}
	rep := g.report(time.Since(start))
	rep.Server = scrape(ctx, cfg)
	return rep, nil
}

// sample is one completed request.
type sample struct {
	kind     string
	status   int // 0 = network error or client-side deadline
	deadline bool
	dur      time.Duration
}

type generator struct {
	cfg Config

	// rr round-robins requests over cfg.Targets when set.
	rr atomic.Int64

	mu      sync.Mutex
	samples []sample
	dropped int
}

// base picks the next target: BaseURL, or round-robin over Targets.
func (g *generator) base() string {
	if len(g.cfg.Targets) == 0 {
		return g.cfg.BaseURL
	}
	return g.cfg.Targets[int(g.rr.Add(1)-1)%len(g.cfg.Targets)]
}

func (g *generator) record(s sample) {
	g.mu.Lock()
	g.samples = append(g.samples, s)
	g.mu.Unlock()
}

// runClosed: Concurrency workers share a global request budget.
func (g *generator) runClosed(ctx context.Context) error {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < g.cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(g.cfg.Seed + int64(w)*7919))
			for {
				i := int(next.Add(1)) - 1
				if i >= g.cfg.Requests || ctx.Err() != nil {
					return
				}
				g.record(g.issue(ctx, rng, i))
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// runOpen: Poisson arrivals at cfg.Rate for cfg.Duration; each arrival takes
// an in-flight slot or is dropped.
func (g *generator) runOpen(ctx context.Context) error {
	arrivals := rand.New(rand.NewSource(g.cfg.Seed))
	slots := make(chan struct{}, g.cfg.Concurrency)
	var wg sync.WaitGroup
	deadline := time.Now().Add(g.cfg.Duration)
	i := 0
	for time.Now().Before(deadline) && ctx.Err() == nil {
		// Exponential inter-arrival → Poisson process.
		wait := time.Duration(arrivals.ExpFloat64() / g.cfg.Rate * float64(time.Second))
		time.Sleep(wait)
		select {
		case slots <- struct{}{}:
		default:
			g.mu.Lock()
			g.dropped++
			g.mu.Unlock()
			continue
		}
		wg.Add(1)
		i++
		go func(i int) {
			defer wg.Done()
			defer func() { <-slots }()
			rng := rand.New(rand.NewSource(g.cfg.Seed + int64(i)*7919))
			g.record(g.issue(ctx, rng, i))
		}(i)
	}
	wg.Wait()
	return ctx.Err()
}

// issue sends one request of a mix-drawn kind and times it.
func (g *generator) issue(ctx context.Context, rng *rand.Rand, i int) sample {
	kind := g.cfg.Mix.pick(rng.Intn(g.cfg.Mix.total()))
	var (
		path string
		body any
	)
	switch kind {
	case KindAnalyze:
		path = "/v1/analyze"
		body = map[string]any{"source": synthSource(rng, i)}
	case KindMatch:
		path = "/v1/match"
		body = map[string]any{"source": synthSource(rng, i), "limit": g.cfg.MatchLimit}
	case KindIngest:
		path = "/v1/corpus"
		body = map[string]any{"entries": []map[string]string{
			{"id": fmt.Sprintf("load-%d", i), "source": synthSource(rng, i)},
		}}
	case KindBulk:
		path = "/v1/corpus/bulk"
		var sb strings.Builder
		for j := 0; j < g.cfg.BulkBatch; j++ {
			line, _ := json.Marshal(map[string]string{
				"id":     fmt.Sprintf("bulk-%d-%d", i, j),
				"source": synthSource(rng, i*g.cfg.BulkBatch+j),
			})
			sb.Write(line)
			sb.WriteByte('\n')
		}
		return g.send(ctx, kind, path, "application/x-ndjson", strings.NewReader(sb.String()))
	}
	buf, _ := json.Marshal(body)
	return g.send(ctx, kind, path, "application/json", bytes.NewReader(buf))
}

func (g *generator) send(ctx context.Context, kind, path, contentType string, body io.Reader) sample {
	if g.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.cfg.Timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.base()+path, body)
	if err != nil {
		return sample{kind: kind}
	}
	req.Header.Set("Content-Type", contentType)
	if g.cfg.Timeout > 0 {
		// Declare the budget so the server degrades inside it rather than
		// discovering the hang-up after the work is done.
		req.Header.Set("X-Request-Timeout", strconv.FormatInt(g.cfg.Timeout.Milliseconds(), 10))
	}
	if g.cfg.APIKey != "" {
		req.Header.Set("X-API-Key", g.cfg.APIKey)
	}
	start := time.Now()
	resp, err := g.cfg.Client.Do(req)
	d := time.Since(start)
	if err != nil {
		return sample{kind: kind, dur: d, deadline: errors.Is(err, context.DeadlineExceeded)}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return sample{kind: kind, status: resp.StatusCode, dur: d}
}

// synthSource emits a unique small contract: realistic parse work, no cache
// hits across requests.
func synthSource(rng *rand.Rand, i int) string {
	return fmt.Sprintf(`contract Load%d_%d {
	uint total;
	mapping(address => uint) balances;
	function pay%d(uint amount) public {
		balances[msg.sender] = balances[msg.sender] + amount;
		total = total + %d;
	}
}`, i, rng.Intn(1<<20), i%97, i%13)
}

func (g *generator) report(elapsed time.Duration) *Report {
	g.mu.Lock()
	defer g.mu.Unlock()
	rep := &Report{
		Requests:   len(g.samples),
		Elapsed:    elapsed,
		ElapsedSec: elapsed.Seconds(),
		ByStatus:   make(map[int]int),
		ByKind:     make(map[string]Quantiles),
		Dropped:    g.dropped,
	}
	if elapsed > 0 {
		rep.Throughput = float64(len(g.samples)) / elapsed.Seconds()
	}
	var all, accepted []time.Duration
	perKind := make(map[string][]time.Duration)
	for _, s := range g.samples {
		if s.status == 0 {
			if s.deadline {
				rep.DeadlineExceeded++
			} else {
				rep.NetErrors++
			}
			continue
		}
		rep.ByStatus[s.status]++
		all = append(all, s.dur)
		if s.status == http.StatusTooManyRequests {
			rep.Shed++
		}
		if s.status >= 200 && s.status < 300 {
			accepted = append(accepted, s.dur)
			perKind[s.kind] = append(perKind[s.kind], s.dur)
		}
	}
	rep.All = summarize(all)
	rep.Accepted = summarize(accepted)
	for kind, ds := range perKind {
		rep.ByKind[kind] = summarize(ds)
	}
	return rep
}

// scrape pulls the server-side counters that mirror the client view.
// Best-effort: a missing or foreign /metrics yields nil, not an error.
func scrape(ctx context.Context, cfg Config) *ServerView {
	base := cfg.BaseURL
	if len(cfg.Targets) > 0 {
		base = cfg.Targets[0]
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var m struct {
		MatchLatency struct {
			Count int64   `json:"count"`
			P99Us float64 `json:"p99_us"`
		} `json:"match_latency"`
		Admission struct {
			Admitted         int64 `json:"admitted"`
			Shed             int64 `json:"shed"`
			BackgroundYields int64 `json:"background_yields"`
		} `json:"admission"`
		RateLimited int64 `json:"requests_ratelimited"`
		Degrade     struct {
			TierEntered int64 `json:"tier_entered"`
			LimitHalved int64 `json:"limit_halved"`
		} `json:"degrade"`
		Deadline struct {
			Expired int64 `json:"expired"`
			Shipped int64 `json:"shipped"`
		} `json:"deadline"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil
	}
	return &ServerView{
		MatchP99Us:         m.MatchLatency.P99Us,
		MatchCount:         m.MatchLatency.Count,
		Admitted:           m.Admission.Admitted,
		Shed:               m.Admission.Shed,
		RateLimited:        m.RateLimited,
		BackgroundYield:    m.Admission.BackgroundYields,
		DegradeTierEntered: m.Degrade.TierEntered,
		LimitHalved:        m.Degrade.LimitHalved,
		DeadlineExpired:    m.Deadline.Expired,
		DeadlineShipped:    m.Deadline.Shipped,
	}
}
