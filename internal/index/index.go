// Package index defines the pluggable similarity-backend abstraction under
// the serving corpus. The paper's study compares its n-gram/edit-distance
// clone detector (ccd) against alternative similarity schemes — classic
// ssdeep CTPH digests and the SmartEmbed structural embedding — and this
// package puts all three behind one interface so the service layer can shard,
// snapshot and scatter-gather over any of them.
//
// A Backend indexes Docs and answers top-K similarity queries with per-stage
// pruning statistics. Backends register themselves by name in a process-wide
// registry (Register/New); the service builds one sharded corpus per enabled
// backend and routes /v1/match?backend=... to it.
package index

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/ccd"
)

// Doc is one document offered to a backend: the raw source (when the caller
// has it) plus the precomputed ccd fuzzy fingerprint. Backends derive their
// own forms — the ccd backend indexes the fingerprint, ssdeep digests the
// source, SmartEmbed embeds the parsed AST — so a Doc carries both and each
// backend takes what it needs.
type Doc struct {
	ID     string
	Source string          // raw source; may be empty for fingerprint-only ingest
	FP     ccd.Fingerprint // ccd fuzzy hash; empty only if Source is set
}

// ErrDocUnsupported is returned by Add when a backend cannot index the given
// document form (e.g. SmartEmbed needs parsable source but the doc carries
// only a fingerprint). Callers treat it as a per-document skip, not a
// failure of the ingest.
var ErrDocUnsupported = errors.New("index: document form unsupported by backend")

// Query is one top-K match request shared by every segment and shard the
// query fans out to. Backends cache their derived query form (prepared
// n-grams, digest, embedding) in it via Prepare, so the expensive derivation
// runs once per query instead of once per segment.
type Query struct {
	Doc Doc
	// K bounds the result count; K ≤ 0 collects every match at or above the
	// backend's admission threshold.
	K int
	// Bound, when non-nil, is the scatter-gather admission bound shared
	// across partitions (see ccd.AtomicBound).
	Bound *ccd.AtomicBound
	// Ctx cancels the scatter-gather; backends with long candidate scans
	// should check it periodically. May be nil (treated as Background).
	Ctx context.Context
	// Eta, when positive, overrides the backend's pre-filter bound for this
	// query — degradation tiers raise it to prune harder under pressure.
	Eta float64
	// ScanDeadline, when set, is the instant scan loops must abandon work
	// and return whatever they have collected so far (the request budget's
	// scan phase; the remainder is reserved for merge and encoding).
	ScanDeadline time.Time

	prepOnce sync.Once
	prepared any
}

// Prepare returns the backend-derived query form, computing it at most once
// across all concurrent segment scans of this query. All segments of one
// scatter-gather share a backend kind, so a single slot suffices.
func (q *Query) Prepare(f func() any) any {
	q.prepOnce.Do(func() { q.prepared = f() })
	return q.prepared
}

// Done reports whether the query's context has been cancelled.
func (q *Query) Done() bool {
	return q.Ctx != nil && q.Ctx.Err() != nil
}

// Expired reports whether the query's scan-phase budget has run out. Cheap
// enough to call at segment boundaries; candidate loops should sample it
// every few dozen iterations rather than per candidate.
func (q *Query) Expired() bool {
	return !q.ScanDeadline.IsZero() && !time.Now().Before(q.ScanDeadline)
}

// Config parameterizes a backend instance.
type Config struct {
	// CCD carries the clone-detector parameters (n-gram size, η, ε). The
	// ccd backend uses all of them; other backends read only the scale.
	CCD ccd.Config
	// Epsilon overrides the admission threshold (0-100 score scale) when
	// positive; 0 selects the backend's default (CCD.Epsilon for ccd and
	// ssdeep, 90 — cosine 0.9 — for smartembed).
	Epsilon float64
}

// Backend is one similarity-matching implementation over fingerprinted
// documents. Implementations are NOT internally synchronized: the service
// layer builds immutable segments (write once via Add/Restore, then only
// read), so MatchTopK and Snapshot may run concurrently with each other but
// never with Add.
type Backend interface {
	// Name returns the registry name ("ccd", "ssdeep", "smartembed").
	Name() string
	// Config returns the effective configuration (after Restore, the
	// snapshot's configuration).
	Config() Config
	// Epsilon returns the effective admission threshold on the 0-100 score
	// scale (Config().Epsilon when positive, else the backend's default).
	Epsilon() float64
	// Add indexes one document. ErrDocUnsupported marks a per-doc skip.
	Add(doc Doc) error
	// Len returns the number of indexed documents.
	Len() int
	// MatchTopK streams the backend's candidates for q and returns the
	// query's k best matches (best first, score descending, ties by id
	// ascending) plus per-stage pruning statistics.
	MatchTopK(q *Query) ([]ccd.Match, ccd.MatchStats)
	// Merge returns a new backend of the same kind holding every document
	// of the receiver followed by every document of other (compaction).
	Merge(other Backend) (Backend, error)
	// Snapshot writes the backend's documents in its binary format.
	Snapshot(w io.Writer) error
	// Restore replaces the backend's state (which must be empty) with a
	// snapshot produced by the same kind of backend.
	Restore(r io.Reader) error
}

// EntryLister is implemented by backends that can enumerate their indexed
// (id, fingerprint) pairs — the ccd backend. The service's WAL-replay
// deduplication, shard re-partitioning and corpus self-join depend on it.
type EntryLister interface {
	Entries() []ccd.Entry
}

// IDLister is implemented by backends that can enumerate their indexed
// document ids (all built-in backends). The service's duplicate-id supersede
// uses it to seed the per-shard live-id set after a snapshot restore.
type IDLister interface {
	IDs() []string
}

// SourceOnlyMatcher marks backends whose queries need the document source:
// a fingerprint-only query silently matches nothing (SmartEmbed embeds
// compiled source). The corpus self-join enumerates (id, fingerprint)
// pairs, so it rejects such backends up front — completing against one
// would report an all-singleton distribution indistinguishable from a
// genuinely clone-free corpus.
type SourceOnlyMatcher interface {
	RequiresSourceQueries()
}

// EntryRemover is implemented by backends that can rebuild themselves
// without a set of document ids. The service uses it when a re-ingested id
// supersedes an earlier copy living in an older generation-segment: the
// stale segment is rebuilt without the dead entries, so a duplicate Add
// replaces instead of double-counting. Returns the rebuilt backend and how
// many entries were dropped; a backend containing none of the ids returns
// itself unchanged with 0.
type EntryRemover interface {
	WithoutIDs(dead map[string]struct{}) (Backend, int)
}

// SegmentOpener is implemented by backends whose snapshot format doubles as
// a runtime segment: OpenSegment replaces the backend's (empty) state with an
// immutable view reading zero-copy out of data — typically a memory-mapped
// snapshot file — instead of decoding it to the heap. ref is retained for the
// segment's lifetime to pin data's owner (the mapping holder). Only the ccd
// backend implements it today.
type SegmentOpener interface {
	OpenSegment(data []byte, ref any) error
}

// MappedReporter is implemented by backends that can report whether their
// index currently reads zero-copy out of caller-owned bytes. The service
// surfaces the count of mapped segments in its stats.
type MappedReporter interface {
	MappedSegment() bool
}

// entryIDs collects the document ids of a backend's entry slice — the
// shared body of the IDLister implementations.
func entryIDs[E any](entries []E, id func(E) string) []string {
	out := make([]string, len(entries))
	for i := range entries {
		out[i] = id(entries[i])
	}
	return out
}

// withoutIDs filters a backend's entry slice for its EntryRemover: the
// surviving entries (order preserved) and how many were dropped. removed==0
// returns the input slice untouched, so callers can keep the original
// backend.
func withoutIDs[E any](entries []E, id func(E) string, dead map[string]struct{}) (live []E, removed int) {
	for i := range entries {
		if _, dup := dead[id(entries[i])]; dup {
			removed++
		}
	}
	if removed == 0 {
		return entries, 0
	}
	live = make([]E, 0, len(entries)-removed)
	for i := range entries {
		if _, dup := dead[id(entries[i])]; dup {
			continue
		}
		live = append(live, entries[i])
	}
	return live, removed
}

// --- registry -----------------------------------------------------------------

// Factory builds an empty backend under cfg.
type Factory func(cfg Config) Backend

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register installs a backend factory under name. Called from init()
// functions of the adapter files; duplicate names panic.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("index: backend %q registered twice", name))
	}
	registry[name] = f
}

// New builds an empty backend by registry name.
func New(name string, cfg Config) (Backend, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("index: unknown backend %q (known: %v)", name, Names())
	}
	return f(cfg), nil
}

// Known reports whether name is a registered backend.
func Known(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
