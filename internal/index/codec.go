package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// Shared snapshot framing for the non-ccd backends (the ccd backend reuses
// the ccd package's own codec):
//
//	magic   8 bytes (per backend)
//	uvarint version (1)
//	uvarint entry count
//	payload (backend-specific, length-prefixed strings and floats)
//	uint32  CRC-32 (IEEE, little-endian) of every preceding byte
const frameVersion = 1

// maxFrameString bounds any single length-prefixed string, protecting
// Restore from allocating garbage lengths out of corrupt input.
const maxFrameString = 1 << 26 // 64 MiB

// maxPrealloc caps count-driven preallocations: counts are untrusted until
// the payload actually decodes.
const maxPrealloc = 1 << 16

type frameEncoder struct {
	w   *bufio.Writer
	crc hash.Hash32
}

func (e *frameEncoder) Write(p []byte) (int, error) {
	e.crc.Write(p)
	return e.w.Write(p)
}

func (e *frameEncoder) writeUvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := e.Write(buf[:n])
	return err
}

func (e *frameEncoder) writeString(s string) error {
	if err := e.writeUvarint(uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(e, s)
	return err
}

func (e *frameEncoder) writeFloat(f float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	_, err := e.Write(buf[:])
	return err
}

// writeFramed emits magic, version, count, the payload body, and the CRC.
func writeFramed(w io.Writer, magic string, count int, body func(*frameEncoder) error) error {
	enc := &frameEncoder{w: bufio.NewWriter(w), crc: crc32.NewIEEE()}
	if _, err := io.WriteString(enc, magic); err != nil {
		return err
	}
	if err := enc.writeUvarint(frameVersion); err != nil {
		return err
	}
	if err := enc.writeUvarint(uint64(count)); err != nil {
		return err
	}
	if err := body(enc); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], enc.crc.Sum32())
	if _, err := enc.w.Write(crcBuf[:]); err != nil {
		return err
	}
	return enc.w.Flush()
}

type frameDecoder struct {
	r   *bufio.Reader
	crc hash.Hash32
}

func (d *frameDecoder) readFull(p []byte) error {
	if _, err := io.ReadFull(d.r, p); err != nil {
		return err
	}
	d.crc.Write(p)
	return nil
}

func (d *frameDecoder) readUvarint() (uint64, error) {
	var v uint64
	for shift := uint(0); ; shift += 7 {
		b, err := d.r.ReadByte()
		if err != nil {
			if err == io.EOF && shift > 0 {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		d.crc.Write([]byte{b})
		if shift >= 64 {
			return 0, fmt.Errorf("index: uvarint overflow")
		}
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
	}
}

func (d *frameDecoder) readString() (string, error) {
	n, err := d.readUvarint()
	if err != nil {
		return "", err
	}
	if n > maxFrameString {
		return "", fmt.Errorf("index: string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if err := d.readFull(buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func (d *frameDecoder) readFloat() (float64, error) {
	var buf [8]byte
	if err := d.readFull(buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

// readFramed parses a writeFramed stream: it verifies magic and version,
// hands (decoder, count) to body, and checks the trailing CRC over
// everything body consumed. body must consume the payload exactly.
func readFramed(r io.Reader, magic string, body func(d *frameDecoder, count int) error) error {
	dec := &frameDecoder{r: bufio.NewReader(r), crc: crc32.NewIEEE()}
	got := make([]byte, len(magic))
	if err := dec.readFull(got); err != nil {
		return fmt.Errorf("index: snapshot magic: %w", err)
	}
	if string(got) != magic {
		return fmt.Errorf("index: bad snapshot magic %q (want %q)", got, magic)
	}
	version, err := dec.readUvarint()
	if err != nil {
		return fmt.Errorf("index: snapshot version: %w", err)
	}
	if version != frameVersion {
		return fmt.Errorf("index: unsupported snapshot version %d", version)
	}
	count, err := dec.readUvarint()
	if err != nil {
		return fmt.Errorf("index: snapshot count: %w", err)
	}
	if count > 1<<40 {
		return fmt.Errorf("index: implausible entry count %d", count)
	}
	if err := body(dec, int(count)); err != nil {
		return err
	}
	want := dec.crc.Sum32()
	var crcBuf [4]byte
	if _, err := io.ReadFull(dec.r, crcBuf[:]); err != nil {
		return fmt.Errorf("index: snapshot CRC: %w", err)
	}
	if got := binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return fmt.Errorf("index: snapshot CRC mismatch (%08x != %08x)", got, want)
	}
	return nil
}
