package index

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/ccd"
)

const (
	parsableSrc = `contract Bank {
	mapping(address => uint) balances;
	function withdraw(uint amount) public {
		require(balances[msg.sender] >= amount);
		balances[msg.sender] -= amount;
		msg.sender.transfer(amount);
	}
	function deposit() public payable { balances[msg.sender] += msg.value; }
}`
	otherSrc = `contract Token {
	mapping(address => uint) ledger;
	uint total;
	function mint(address to, uint amount) public {
		ledger[to] += amount;
		total += amount;
	}
	function burn(uint amount) public { ledger[msg.sender] -= amount; total -= amount; }
}`
)

func mustBackend(t *testing.T, name string, cfg Config) Backend {
	t.Helper()
	b, err := New(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sourceDoc(t *testing.T, id, src string) Doc {
	t.Helper()
	fp, err := ccd.FingerprintSource(src)
	if err != nil {
		t.Fatalf("fingerprint %s: %v", id, err)
	}
	return Doc{ID: id, Source: src, FP: fp}
}

func TestRegistry(t *testing.T) {
	names := Names()
	for _, want := range []string{BackendCCD, BackendSSDeep, BackendSmartEmbed} {
		if !Known(want) {
			t.Fatalf("backend %q not registered (have %v)", want, names)
		}
	}
	if _, err := New("bogus", Config{}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestBackendsEndToEnd: every backend indexes parsable source docs and ranks
// an identical-source query first with the maximum score.
func TestBackendsEndToEnd(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			b := mustBackend(t, name, Config{})
			if err := b.Add(sourceDoc(t, "bank", parsableSrc)); err != nil {
				t.Fatal(err)
			}
			if err := b.Add(sourceDoc(t, "token", otherSrc)); err != nil {
				t.Fatal(err)
			}
			if b.Len() != 2 {
				t.Fatalf("len %d", b.Len())
			}
			q := &Query{Doc: sourceDoc(t, "", parsableSrc), K: 1, Ctx: context.Background()}
			ms, stats := b.MatchTopK(q)
			if len(ms) != 1 || ms[0].ID != "bank" {
				t.Fatalf("top match %v, want bank", ms)
			}
			if ms[0].Score < 99.9 {
				t.Fatalf("identical source scored %.2f", ms[0].Score)
			}
			if stats.Candidates == 0 {
				t.Fatal("no candidates reported")
			}
		})
	}
}

// TestBackendSnapshotRoundTrip: snapshot → restore preserves the match
// behavior of every backend, and restoring foreign bytes fails cleanly.
func TestBackendSnapshotRoundTrip(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			b := mustBackend(t, name, Config{})
			for i, src := range []string{parsableSrc, otherSrc} {
				if err := b.Add(sourceDoc(t, fmt.Sprintf("doc-%d", i), src)); err != nil {
					t.Fatal(err)
				}
			}
			var buf bytes.Buffer
			if err := b.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}

			restored := mustBackend(t, name, Config{})
			if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatal(err)
			}
			if restored.Len() != b.Len() {
				t.Fatalf("restored %d docs, want %d", restored.Len(), b.Len())
			}
			q := &Query{Doc: sourceDoc(t, "", parsableSrc), K: 0}
			want, _ := b.MatchTopK(q)
			got, _ := restored.MatchTopK(&Query{Doc: sourceDoc(t, "", parsableSrc), K: 0})
			if len(got) != len(want) {
				t.Fatalf("restored match count %d, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("restored match %d: %v, want %v", i, got[i], want[i])
				}
			}

			// Truncations must error, never panic or half-load.
			raw := buf.Bytes()
			for _, cut := range []int{1, len(raw) / 2, len(raw) - 1} {
				fresh := mustBackend(t, name, Config{})
				if err := fresh.Restore(bytes.NewReader(raw[:cut])); err == nil {
					t.Fatalf("truncated snapshot at %d accepted", cut)
				}
			}
			// Foreign magic must be refused.
			for _, other := range Names() {
				if other == name {
					continue
				}
				fresh := mustBackend(t, other, Config{})
				if err := fresh.Restore(bytes.NewReader(raw)); err == nil {
					t.Fatalf("%s restored a %s snapshot", other, name)
				}
			}
		})
	}
}

// TestBackendMerge: merging two segments preserves every document and
// refuses cross-kind merges.
func TestBackendMerge(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			a := mustBackend(t, name, Config{})
			b := mustBackend(t, name, Config{})
			if err := a.Add(sourceDoc(t, "a", parsableSrc)); err != nil {
				t.Fatal(err)
			}
			if err := b.Add(sourceDoc(t, "b", otherSrc)); err != nil {
				t.Fatal(err)
			}
			m, err := a.Merge(b)
			if err != nil {
				t.Fatal(err)
			}
			if m.Len() != 2 {
				t.Fatalf("merged len %d", m.Len())
			}
			ms, _ := m.MatchTopK(&Query{Doc: sourceDoc(t, "", otherSrc), K: 1})
			if len(ms) != 1 || ms[0].ID != "b" {
				t.Fatalf("merged match %v", ms)
			}
		})
	}
	ccdB := mustBackend(t, BackendCCD, Config{})
	ssdB := mustBackend(t, BackendSSDeep, Config{})
	if _, err := ccdB.Merge(ssdB); err == nil {
		t.Fatal("cross-kind merge accepted")
	}
}

func TestSmartEmbedRequiresSource(t *testing.T) {
	b := mustBackend(t, BackendSmartEmbed, Config{})
	err := b.Add(Doc{ID: "fp-only", FP: "QxRtYuIoPAbCdEfGh"})
	if err == nil || !strings.Contains(err.Error(), "unsupported") {
		t.Fatalf("fingerprint-only doc error %v, want ErrDocUnsupported", err)
	}
	if err := b.Add(Doc{ID: "garbage", Source: "not solidity {{{"}); err == nil {
		t.Fatal("unparsable source accepted")
	}
	if b.Len() != 0 {
		t.Fatalf("len %d after refused adds", b.Len())
	}
	// A query without parsable source matches nothing (no panic).
	if err := b.Add(sourceDoc(t, "ok", parsableSrc)); err != nil {
		t.Fatal(err)
	}
	ms, _ := b.MatchTopK(&Query{Doc: Doc{FP: "QxRtYuIoP"}, K: 5})
	if len(ms) != 0 {
		t.Fatalf("fingerprint-only query matched %v on smartembed", ms)
	}
}

// TestSSDeepComparisonRules: digests are scored only across compatible block
// sizes, fingerprint-only docs stay comparable with each other, and the
// length-difference upper bound never prunes a true match.
func TestSSDeepComparisonRules(t *testing.T) {
	if got := len(comparePairs(ssdDigest{bs: 3}, ssdDigest{bs: 12})); got != 0 {
		t.Fatalf("4x block-size gap produced %d comparable pairs", got)
	}
	if got := len(comparePairs(ssdDigest{bs: 6}, ssdDigest{bs: 3})); got != 1 {
		t.Fatalf("2x block-size gap produced %d comparable pairs, want 1", got)
	}
	if got := len(comparePairs(ssdDigest{bs: 6}, ssdDigest{bs: 6})); got != 2 {
		t.Fatalf("equal block sizes produced %d comparable pairs, want 2", got)
	}

	b := mustBackend(t, BackendSSDeep, Config{Epsilon: 1})
	long := ccd.Fingerprint(strings.Repeat("QxRtYuIoPAbCdEfGh.", 40))
	if err := b.Add(Doc{ID: "fp", FP: long}); err != nil {
		t.Fatal(err)
	}
	ms, stats := b.MatchTopK(&Query{Doc: Doc{FP: long}, K: 1})
	if len(ms) != 1 || ms[0].Score != 100 {
		t.Fatalf("identical fingerprint digest: %v (stats %+v)", ms, stats)
	}
}

// TestSSDeepDegenerateSignatures is the representation-mismatch regression:
// the same document ingested with source+fingerprint and queried by
// fingerprint alone (the bulk-load and corpus-self-join shape) must stay
// block-size comparable and score 100 — digesting the source on one side
// and the fingerprint on the other produced len(pairs) == 0 (block sizes
// beyond the 2× window) or score 0 (same block size, disjoint signatures)
// for identical documents. Very short inputs are the boundary: their
// signatures collapse to a handful of characters, so any representation
// skew is fatal rather than merely lossy.
func TestSSDeepDegenerateSignatures(t *testing.T) {
	// Identical document, both representation shapes, across sizes from the
	// degenerate near-empty fingerprint up to one long enough that the raw
	// source's digest used a larger block size.
	sources := []string{
		"contract T { function f() public { } }", // near-empty fingerprint
		parsableSrc,
		parsableSrc + strings.Repeat("\ncontract Pad { function p() public { uint z; z = 1; } }", 6),
	}
	for i, src := range sources {
		d := sourceDoc(t, fmt.Sprintf("doc-%d", i), src)
		if len(d.FP) == 0 {
			t.Fatalf("source %d produced an empty fingerprint", i)
		}
		qd := digestDoc(Doc{FP: d.FP})
		ed := digestDoc(d)
		if pairs := comparePairs(qd, ed); len(pairs) == 0 {
			t.Fatalf("source %d: identical doc has no comparable pairs (query %q vs entry %q)",
				i, qd.String(), ed.String())
		}
		b := mustBackend(t, BackendSSDeep, Config{CCD: ccd.DefaultConfig})
		if err := b.Add(d); err != nil {
			t.Fatal(err)
		}
		ms, stats := b.MatchTopK(&Query{Doc: Doc{FP: d.FP}, K: 1})
		if len(ms) != 1 || ms[0].Score != 100 {
			t.Fatalf("source %d: fingerprint query against source-ingested doc: %v (stats %+v)", i, ms, stats)
		}
	}

	// Identical very-short fingerprints: signatures are 1-2 characters (or
	// empty), and identity must still score 100.
	for _, fp := range []ccd.Fingerprint{"Q", "Qx", "Qx.Rt"} {
		b := mustBackend(t, BackendSSDeep, Config{CCD: ccd.DefaultConfig})
		if err := b.Add(Doc{ID: "tiny", FP: fp}); err != nil {
			t.Fatal(err)
		}
		ms, _ := b.MatchTopK(&Query{Doc: Doc{FP: fp}, K: 0})
		if len(ms) != 1 || ms[0].Score != 100 {
			t.Fatalf("identical tiny fingerprint %q: %v", fp, ms)
		}
	}

	// Source-only documents (no fingerprint anywhere) keep digesting the
	// source and stay comparable with each other.
	b := mustBackend(t, BackendSSDeep, Config{CCD: ccd.DefaultConfig})
	if err := b.Add(Doc{ID: "src-only", Source: parsableSrc}); err != nil {
		t.Fatal(err)
	}
	ms, _ := b.MatchTopK(&Query{Doc: Doc{Source: parsableSrc}, K: 0})
	if len(ms) != 1 || ms[0].Score != 100 {
		t.Fatalf("identical source-only doc: %v", ms)
	}
}
