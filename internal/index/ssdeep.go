package index

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/ccd"
	"repro/internal/editdist"
	"repro/internal/ssdeep"
)

// BackendSSDeep is the registry name of the classic context-triggered
// piecewise-hashing comparator from the paper's evaluation: each document is
// condensed to a whole-input CTPH digest ("blocksize:sig1:sig2") and two
// documents are scored by edit-distance similarity over their comparable
// signatures, following the original ssdeep comparison rules (signatures are
// comparable when their block sizes are equal or differ by exactly 2×).
const BackendSSDeep = "ssdeep"

func init() {
	Register(BackendSSDeep, func(cfg Config) Backend {
		if cfg.CCD.N == 0 {
			cfg.CCD = ccd.DefaultConfig
		}
		return &ssdeepBackend{cfg: cfg}
	})
}

type ssdEntry struct {
	id     string
	digest ssdDigest
}

// ssdDigest is one parsed CTPH digest.
type ssdDigest struct {
	bs         int
	sig1, sig2 string
}

func (d ssdDigest) String() string {
	return strconv.Itoa(d.bs) + ":" + d.sig1 + ":" + d.sig2
}

func parseDigest(s string) (ssdDigest, error) {
	parts := strings.SplitN(s, ":", 3)
	if len(parts) != 3 {
		return ssdDigest{}, fmt.Errorf("index: malformed ssdeep digest %q", s)
	}
	bs, err := strconv.Atoi(parts[0])
	if err != nil || bs < ssdeep.MinBlockSize {
		return ssdDigest{}, fmt.Errorf("index: bad ssdeep block size in %q", s)
	}
	return ssdDigest{bs: bs, sig1: parts[1], sig2: parts[2]}, nil
}

// digestDoc derives the CTPH digest of a document from its canonical
// representation: the ccd fingerprint when present (a token-per-character
// stream), else the raw source. The fingerprint is preferred because the
// same document reaches this backend in different shapes — ingest carries
// source plus fingerprint, while bulk fingerprint loads and the corpus
// self-join query by fingerprint alone. Digesting the source on one side
// and the (much shorter) fingerprint on the other let the adaptive block
// sizes diverge beyond the 2× comparison window, so the block-size
// compatibility rule produced zero comparable pairs — and score 0 — for
// literally identical documents; on very short inputs the block sizes still
// agreed but the signatures differed, with the same zero-score result.
func digestDoc(doc Doc) ssdDigest {
	data := []byte(doc.FP)
	if len(data) == 0 {
		data = []byte(doc.Source)
	}
	d, _ := parseDigest(ssdeep.Hash(data))
	return d
}

// ssdeepBackend scores classic CTPH digests with edit-distance similarity.
type ssdeepBackend struct {
	cfg     Config
	entries []ssdEntry
}

func (b *ssdeepBackend) Name() string   { return BackendSSDeep }
func (b *ssdeepBackend) Config() Config { return b.cfg }
func (b *ssdeepBackend) Len() int       { return len(b.entries) }

// Epsilon returns the effective admission threshold.
func (b *ssdeepBackend) Epsilon() float64 {
	if b.cfg.Epsilon > 0 {
		return b.cfg.Epsilon
	}
	return b.cfg.CCD.Epsilon
}

func (b *ssdeepBackend) Add(doc Doc) error {
	if doc.Source == "" && doc.FP == "" {
		return fmt.Errorf("%w: ssdeep needs a source or fingerprint", ErrDocUnsupported)
	}
	b.entries = append(b.entries, ssdEntry{id: doc.ID, digest: digestDoc(doc)})
	return nil
}

// comparePairs yields the signature pairs the classic ssdeep comparison
// admits for two digests: same block size compares sig1↔sig1 and sig2↔sig2;
// a 2× block-size gap compares the finer digest's coarse signature with the
// coarser digest's fine one. Anything further apart is incomparable (score 0).
func comparePairs(a, b ssdDigest) [][2]string {
	switch {
	case a.bs == b.bs:
		return [][2]string{{a.sig1, b.sig1}, {a.sig2, b.sig2}}
	case a.bs == 2*b.bs:
		return [][2]string{{a.sig1, b.sig2}}
	case b.bs == 2*a.bs:
		return [][2]string{{a.sig2, b.sig1}}
	}
	return nil
}

// pairUpper is a cheap upper bound on editdist.Similarity: edit distance is
// at least the length difference, so δ ≤ (maxLen − |Δlen|)/maxLen · 100.
func pairUpper(s1, s2 string) float64 {
	ml := max(len(s1), len(s2))
	if ml == 0 {
		return 100
	}
	diff := len(s1) - len(s2)
	if diff < 0 {
		diff = -diff
	}
	return float64(ml-diff) / float64(ml) * 100
}

func (b *ssdeepBackend) MatchTopK(q *Query) ([]ccd.Match, ccd.MatchStats) {
	qd := q.Prepare(func() any { return digestDoc(q.Doc) }).(ssdDigest)
	col := ccd.NewTopK(q.K, b.Epsilon()).Share(q.Bound)
	// Funnel semantics match the ccd backend: Candidates are the entries
	// that survive the (block-size compatibility) pre-filter, FilterPruned
	// the ones it rejected — Candidates = Scored + CutoffSkipped.
	var stats ccd.MatchStats
	for i, e := range b.entries {
		if i%1024 == 1023 && q.Done() {
			break
		}
		pairs := comparePairs(qd, e.digest)
		if len(pairs) == 0 {
			stats.FilterPruned++
			continue
		}
		stats.Candidates++
		bound := col.Bound()
		best := 0.0
		scored := false
		for _, p := range pairs {
			if pairUpper(p[0], p[1]) < bound {
				continue
			}
			scored = true
			if s := editdist.Similarity(p[0], p[1]); s > best {
				best = s
			}
		}
		if !scored {
			stats.CutoffSkipped++
			continue
		}
		stats.Scored++
		col.Offer(ccd.Match{ID: e.id, Score: best})
	}
	return col.Results(), stats
}

// IDs enumerates the indexed document ids (IDLister).
func (b *ssdeepBackend) IDs() []string {
	return entryIDs(b.entries, func(e ssdEntry) string { return e.id })
}

// WithoutIDs rebuilds the segment without the dead ids (EntryRemover).
func (b *ssdeepBackend) WithoutIDs(dead map[string]struct{}) (Backend, int) {
	live, removed := withoutIDs(b.entries, func(e ssdEntry) string { return e.id }, dead)
	if removed == 0 {
		return b, 0
	}
	return &ssdeepBackend{cfg: b.cfg, entries: live}, removed
}

func (b *ssdeepBackend) Merge(other Backend) (Backend, error) {
	o, ok := other.(*ssdeepBackend)
	if !ok {
		return nil, fmt.Errorf("index: merge ssdeep with %s", other.Name())
	}
	out := &ssdeepBackend{cfg: b.cfg, entries: make([]ssdEntry, 0, len(b.entries)+len(o.entries))}
	out.entries = append(out.entries, b.entries...)
	out.entries = append(out.entries, o.entries...)
	return out, nil
}

// Snapshot format: magic "SSDSNAP\x00", uvarint version, uvarint entry
// count, per entry the id and digest strings, trailing CRC-32 of everything
// before it (shared framing in codec.go).
const ssdeepMagic = "SSDSNAP\x00"

func (b *ssdeepBackend) Snapshot(w io.Writer) error {
	return writeFramed(w, ssdeepMagic, len(b.entries), func(enc *frameEncoder) error {
		for _, e := range b.entries {
			if err := enc.writeString(e.id); err != nil {
				return err
			}
			if err := enc.writeString(e.digest.String()); err != nil {
				return err
			}
		}
		return nil
	})
}

func (b *ssdeepBackend) Restore(r io.Reader) error {
	if len(b.entries) != 0 {
		return fmt.Errorf("index: restore into non-empty ssdeep backend (%d entries)", len(b.entries))
	}
	return readFramed(r, ssdeepMagic, func(dec *frameDecoder, count int) error {
		entries := make([]ssdEntry, 0, min(count, maxPrealloc))
		for i := 0; i < count; i++ {
			id, err := dec.readString()
			if err != nil {
				return err
			}
			raw, err := dec.readString()
			if err != nil {
				return err
			}
			d, err := parseDigest(raw)
			if err != nil {
				return err
			}
			entries = append(entries, ssdEntry{id: id, digest: d})
		}
		b.entries = entries
		return nil
	})
}
