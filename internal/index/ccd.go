package index

import (
	"fmt"
	"io"

	"repro/internal/ccd"
)

// BackendCCD is the registry name of the paper's n-gram/edit-distance clone
// detector — the default backend and the only one with a durable on-disk
// representation (the WAL journals (id, fingerprint) pairs, which is exactly
// what this backend indexes).
const BackendCCD = "ccd"

func init() {
	Register(BackendCCD, func(cfg Config) Backend {
		if cfg.CCD.N == 0 {
			cfg.CCD = ccd.DefaultConfig
		}
		return &ccdBackend{cfg: cfg, c: ccd.NewCorpus(cfg.CCD)}
	})
}

// ccdBackend adapts *ccd.Corpus (posting-list pre-filter + Algorithm-1
// scoring) to the Backend interface.
type ccdBackend struct {
	cfg Config
	c   *ccd.Corpus
}

func (b *ccdBackend) Name() string   { return BackendCCD }
func (b *ccdBackend) Config() Config { return b.cfg }
func (b *ccdBackend) Len() int       { return b.c.Len() }

// Entries exposes the indexed (id, fingerprint) pairs for WAL-replay
// deduplication, shard re-partitioning and the corpus self-join
// (EntryLister).
func (b *ccdBackend) Entries() []ccd.Entry { return b.c.Entries() }

// IDs enumerates the indexed document ids (IDLister).
func (b *ccdBackend) IDs() []string {
	return entryIDs(b.c.Entries(), func(e ccd.Entry) string { return e.ID })
}

// WithoutIDs rebuilds the segment without the dead ids (EntryRemover). The
// n-gram index cannot delete in place, so the survivors re-index into a
// fresh corpus.
func (b *ccdBackend) WithoutIDs(dead map[string]struct{}) (Backend, int) {
	live, removed := withoutIDs(b.c.Entries(), func(e ccd.Entry) string { return e.ID }, dead)
	if removed == 0 {
		return b, 0
	}
	out := ccd.NewCorpus(b.cfg.CCD)
	for _, e := range live {
		out.Add(e.ID, e.FP)
	}
	return &ccdBackend{cfg: b.cfg, c: out}, removed
}

func (b *ccdBackend) Add(doc Doc) error {
	fp := doc.FP
	if fp == "" {
		if doc.Source == "" {
			return fmt.Errorf("%w: ccd needs a fingerprint or source", ErrDocUnsupported)
		}
		fp, _ = ccd.FingerprintSource(doc.Source) // partial fp still indexes
	}
	b.c.Add(doc.ID, fp)
	return nil
}

func (b *ccdBackend) MatchTopK(q *Query) ([]ccd.Match, ccd.MatchStats) {
	prep := q.Prepare(func() any {
		fp := q.Doc.FP
		if fp == "" {
			fp, _ = ccd.FingerprintSource(q.Doc.Source)
		}
		return ccd.PrepareQuery(b.cfg.CCD, fp)
	}).(*ccd.PreparedQuery)
	col := ccd.NewTopK(q.K, b.Epsilon()).Share(q.Bound)
	opts := ccd.MatchOpts{Eta: q.Eta}
	if !q.ScanDeadline.IsZero() {
		opts.Abandon = q.Expired
	}
	mb := ccd.GetMatchBuffer()
	stats := b.c.MatchPreparedOptsBuf(prep, col, mb, opts)
	mb.Release()
	return col.Results(), stats
}

// Epsilon returns the effective admission threshold.
func (b *ccdBackend) Epsilon() float64 {
	if b.cfg.Epsilon > 0 {
		return b.cfg.Epsilon
	}
	return b.cfg.CCD.Epsilon
}

func (b *ccdBackend) Merge(other Backend) (Backend, error) {
	o, ok := other.(*ccdBackend)
	if !ok {
		return nil, fmt.Errorf("index: merge ccd with %s", other.Name())
	}
	out := ccd.NewCorpus(b.cfg.CCD)
	for _, e := range b.c.Entries() {
		out.Add(e.ID, e.FP)
	}
	for _, e := range o.c.Entries() {
		out.Add(e.ID, e.FP)
	}
	return &ccdBackend{cfg: b.cfg, c: out}, nil
}

func (b *ccdBackend) Snapshot(w io.Writer) error { return b.c.Save(w) }

// OpenSegment replaces the (empty) backend with an immutable segment reading
// its posting lists zero-copy out of data (SegmentOpener). ref pins data's
// owner — typically the mmap holder — for the segment's lifetime.
func (b *ccdBackend) OpenSegment(data []byte, ref any) error {
	if b.c.Len() != 0 {
		return fmt.Errorf("index: open segment into non-empty ccd backend (%d entries)", b.c.Len())
	}
	c, err := ccd.OpenSegmentBytes(data, ref)
	if err != nil {
		return err
	}
	b.c = c
	b.cfg.CCD = c.Config()
	return nil
}

// MappedSegment reports whether the backend reads its index zero-copy out of
// caller-owned bytes (MappedReporter).
func (b *ccdBackend) MappedSegment() bool { return b.c.Mapped() }

func (b *ccdBackend) Restore(r io.Reader) error {
	if b.c.Len() != 0 {
		return fmt.Errorf("index: restore into non-empty ccd backend (%d entries)", b.c.Len())
	}
	c, err := ccd.Load(r)
	if err != nil {
		return err
	}
	b.c = c
	b.cfg.CCD = c.Config()
	return nil
}
