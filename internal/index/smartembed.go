package index

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/baseline"
	"repro/internal/ccd"
)

// BackendSmartEmbed is the registry name of the SmartEmbed structural-
// embedding comparator (Gao et al., ICSME 2019 — the paper's Table 3
// baseline): documents are embedded as damped bags of AST features and
// scored by cosine similarity, reported on the service's 0-100 scale.
//
// Like the original tool, it needs complete, parsable source: documents
// carrying only a fingerprint are skipped (ErrDocUnsupported), and a query
// without parsable source matches nothing.
const BackendSmartEmbed = "smartembed"

// smartEmbedDefaultEpsilon is the recommended cosine cut-off (0.9) on the
// 0-100 score scale.
const smartEmbedDefaultEpsilon = 90

func init() {
	Register(BackendSmartEmbed, func(cfg Config) Backend {
		if cfg.CCD.N == 0 {
			cfg.CCD = ccd.DefaultConfig
		}
		return &smartEmbedBackend{cfg: cfg, se: baseline.NewSmartEmbed()}
	})
}

type embEntry struct {
	id  string
	emb baseline.Embedding
}

type smartEmbedBackend struct {
	cfg     Config
	se      *baseline.SmartEmbed
	entries []embEntry
}

func (b *smartEmbedBackend) Name() string   { return BackendSmartEmbed }
func (b *smartEmbedBackend) Config() Config { return b.cfg }
func (b *smartEmbedBackend) Len() int       { return len(b.entries) }

// Epsilon returns the effective admission threshold.
func (b *smartEmbedBackend) Epsilon() float64 {
	if b.cfg.Epsilon > 0 {
		return b.cfg.Epsilon
	}
	return smartEmbedDefaultEpsilon
}

// RequiresSourceQueries marks the backend SourceOnlyMatcher: queries carry
// an embedding derived from compiled source, so a fingerprint-only query
// matches nothing.
func (b *smartEmbedBackend) RequiresSourceQueries() {}

func (b *smartEmbedBackend) Add(doc Doc) error {
	if doc.Source == "" {
		return fmt.Errorf("%w: smartembed needs source", ErrDocUnsupported)
	}
	emb, err := b.se.Embed(doc.Source)
	if err != nil {
		return fmt.Errorf("%w: smartembed: %v", ErrDocUnsupported, err)
	}
	b.entries = append(b.entries, embEntry{id: doc.ID, emb: emb})
	return nil
}

// prepared caches the query embedding; ok is false when the query source is
// missing or not compilable (such queries match nothing).
type embQuery struct {
	emb baseline.Embedding
	ok  bool
}

func (b *smartEmbedBackend) MatchTopK(q *Query) ([]ccd.Match, ccd.MatchStats) {
	pq := q.Prepare(func() any {
		if q.Doc.Source == "" {
			return embQuery{}
		}
		emb, err := b.se.Embed(q.Doc.Source)
		return embQuery{emb: emb, ok: err == nil}
	}).(embQuery)
	var stats ccd.MatchStats
	if !pq.ok {
		return nil, stats
	}
	col := ccd.NewTopK(q.K, b.Epsilon()).Share(q.Bound)
	// No pre-filter: every entry is a candidate and is fully scored, so
	// Candidates = Scored (the ccd funnel invariant with zero pruning).
	for i, e := range b.entries {
		if i%1024 == 1023 && q.Done() {
			break
		}
		stats.Candidates++
		stats.Scored++
		col.Offer(ccd.Match{ID: e.id, Score: baseline.Cosine(pq.emb, e.emb) * 100})
	}
	return col.Results(), stats
}

// IDs enumerates the indexed document ids (IDLister).
func (b *smartEmbedBackend) IDs() []string {
	return entryIDs(b.entries, func(e embEntry) string { return e.id })
}

// WithoutIDs rebuilds the segment without the dead ids (EntryRemover).
func (b *smartEmbedBackend) WithoutIDs(dead map[string]struct{}) (Backend, int) {
	live, removed := withoutIDs(b.entries, func(e embEntry) string { return e.id }, dead)
	if removed == 0 {
		return b, 0
	}
	return &smartEmbedBackend{cfg: b.cfg, se: b.se, entries: live}, removed
}

func (b *smartEmbedBackend) Merge(other Backend) (Backend, error) {
	o, ok := other.(*smartEmbedBackend)
	if !ok {
		return nil, fmt.Errorf("index: merge smartembed with %s", other.Name())
	}
	out := &smartEmbedBackend{cfg: b.cfg, se: b.se,
		entries: make([]embEntry, 0, len(b.entries)+len(o.entries))}
	out.entries = append(out.entries, b.entries...)
	out.entries = append(out.entries, o.entries...)
	return out, nil
}

// Snapshot format: shared framing, per entry the id, the feature count, and
// (key, damped value) pairs; the norm is recomputed on restore.
const smartEmbedMagic = "SMESNAP\x00"

func (b *smartEmbedBackend) Snapshot(w io.Writer) error {
	return writeFramed(w, smartEmbedMagic, len(b.entries), func(enc *frameEncoder) error {
		for _, e := range b.entries {
			if err := enc.writeString(e.id); err != nil {
				return err
			}
			feats := e.emb.Features()
			if err := enc.writeUvarint(uint64(len(feats))); err != nil {
				return err
			}
			for _, k := range sortedKeys(feats) {
				if err := enc.writeString(k); err != nil {
					return err
				}
				if err := enc.writeFloat(feats[k]); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

func (b *smartEmbedBackend) Restore(r io.Reader) error {
	if len(b.entries) != 0 {
		return fmt.Errorf("index: restore into non-empty smartembed backend (%d entries)", len(b.entries))
	}
	return readFramed(r, smartEmbedMagic, func(dec *frameDecoder, count int) error {
		entries := make([]embEntry, 0, min(count, maxPrealloc))
		for i := 0; i < count; i++ {
			id, err := dec.readString()
			if err != nil {
				return err
			}
			nf, err := dec.readUvarint()
			if err != nil {
				return err
			}
			if nf > maxPrealloc {
				return fmt.Errorf("index: implausible feature count %d", nf)
			}
			feats := make(map[string]float64, nf)
			for j := uint64(0); j < nf; j++ {
				k, err := dec.readString()
				if err != nil {
					return err
				}
				v, err := dec.readFloat()
				if err != nil {
					return err
				}
				feats[k] = v
			}
			entries = append(entries, embEntry{id: id, emb: baseline.EmbeddingFromFeatures(feats)})
		}
		b.entries = entries
		return nil
	})
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Deterministic snapshots: map iteration order is randomized.
	sort.Strings(out)
	return out
}
