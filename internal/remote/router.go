package remote

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ccd"
	"repro/internal/trace"
)

// Config wires a Router to its shard fleet.
type Config struct {
	// Targets are the shard base URLs; index i owns partition i of
	// NewRing(len(Targets)).
	Targets []string
	// Replicas optionally names a read replica per partition ("" = none;
	// shorter than Targets = no replica for the tail). Used for failover
	// and, when HedgeP99 is set, hedged reads.
	Replicas []string
	// Waves is how many sequential groups the fanout is split into
	// (parallel within a group). More waves ship tighter bounds to later
	// shards at the cost of serialized RTTs; 0 defaults to 2, which prices
	// one extra RTT for a bound already tightened by half the fleet.
	Waves int
	// HedgeP99 enables hedged reads: when a shard's rolling p99 exceeds it,
	// the request is raced against the partition's replica and the first
	// success wins. 0 disables hedging.
	HedgeP99 time.Duration
	// NoBoundShip disables shipping the admission bound with shard requests
	// (every request carries bound 0). Exists to measure what shipping
	// saves; production routers leave it off.
	NoBoundShip bool
	// Epsilon is the match floor seeded into the shared bound (the
	// backend's ε; 0 is safe, merely less pruning on the first wave).
	Epsilon float64
	// Client overrides the transport (nil = NewClient(30s)).
	Client *Client
}

// Router fans one match query out over remote shard nodes and merges the
// per-partition top-K responses through the same bounded heap the
// single-process scatter-gather uses. Between waves it re-reads the shared
// admission bound, so evidence from the first shards prices the scans on
// the rest — the network analogue of the in-process AtomicBound.
//
// A Router is safe for concurrent use.
type Router struct {
	cfg    Config
	client *Client
	ring   *Ring
	lat    []latencyWindow // per-partition rolling latency, hedging signal

	fanouts          atomic.Int64
	hedged           atomic.Int64
	partials         atomic.Int64
	boundShipSavings atomic.Int64
	shardErrs        []atomic.Int64
	fanoutHist       trace.Hist
}

// NewRouter returns a router over cfg.Targets. Panics when no targets are
// given — a router with nothing to route to is a wiring bug, not a runtime
// state.
func NewRouter(cfg Config) *Router {
	if len(cfg.Targets) == 0 {
		panic("remote: router needs at least one shard target")
	}
	if cfg.Waves <= 0 {
		cfg.Waves = 2
	}
	if cfg.Waves > len(cfg.Targets) {
		cfg.Waves = len(cfg.Targets)
	}
	if cfg.Client == nil {
		cfg.Client = NewClient(30 * time.Second)
	}
	return &Router{
		cfg:       cfg,
		client:    cfg.Client,
		ring:      NewRing(len(cfg.Targets)),
		lat:       make([]latencyWindow, len(cfg.Targets)),
		shardErrs: make([]atomic.Int64, len(cfg.Targets)),
	}
}

// N returns the partition count.
func (r *Router) N() int { return len(r.cfg.Targets) }

// Owner returns the partition owning id under the consistent-hash ring —
// ingest routing uses this to send each document to its shard.
func (r *Router) Owner(id string) int { return r.ring.Owner(id) }

// Target returns partition i's shard base URL.
func (r *Router) Target(i int) string { return r.cfg.Targets[i] }

// Replica returns partition i's replica base URL ("" when none).
func (r *Router) Replica(i int) string {
	if i < len(r.cfg.Replicas) {
		return r.cfg.Replicas[i]
	}
	return ""
}

// Client returns the router's shard transport, shared with ingest
// forwarding and export streaming.
func (r *Router) Client() *Client { return r.client }

// Result is one routed match: the merged top K (best first), the summed
// per-shard scan funnel, and whether any partition was unreachable (the
// results then cover only the shards that answered).
type Result struct {
	Matches []ccd.Match
	Stats   ccd.MatchStats
	Partial bool
	// Degraded is true when the request budget shaped the answer: a shard
	// self-cancelled on its shipped budget mid-scan, or the router's own
	// deadline expired between waves and later partitions were never asked.
	Degraded bool
}

// Match fans the query out over all partitions in waves, shipping the
// current admission bound with each request, and merges shard responses
// best-first. A shard that pushes back with 429/503 aborts the query and
// the *StatusError (Retry-After intact) propagates to the caller; a shard
// that is unreachable degrades the result to Partial instead. An error is
// returned only when no partition answered.
func (r *Router) Match(ctx context.Context, fingerprint string, k int) (Result, error) {
	r.fanouts.Add(1)
	start := time.Now()
	defer func() { r.fanoutHist.ObserveDuration(time.Since(start)) }()

	ctx, span := trace.Start(ctx, "router.fanout")
	defer span.End()
	span.AnnotateInt("shards", int64(r.N()))
	span.AnnotateInt("waves", int64(r.cfg.Waves))

	bound := ccd.NewAtomicBound(r.cfg.Epsilon)
	var mu sync.Mutex
	merged := ccd.NewTopK(k, r.cfg.Epsilon).Share(bound)
	res := Result{}
	failed := 0
	var overload *StatusError
	var firstErr error

	waves := r.waves()
	for _, wave := range waves {
		var wg sync.WaitGroup
		for _, part := range wave {
			// Snapshot the bound once per request: this is the value the
			// shard prunes with, and what the savings counter attributes.
			// The remaining budget snapshots the same way — each wave ships
			// what is left *now*, so a shard started late inherits a smaller
			// budget and self-cancels instead of being abandoned.
			shipped := 0.0
			if !r.cfg.NoBoundShip {
				shipped = bound.Load()
			}
			wg.Add(1)
			go func(part int, shipped float64) {
				defer wg.Done()
				resp, err := r.queryShard(ctx, part, ShardMatchRequest{
					Fingerprint: fingerprint,
					K:           k,
					Bound:       shipped,
					BudgetMs:    remainingBudgetMs(ctx),
				})
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					r.shardErrs[part].Add(1)
					var se *StatusError
					if errors.As(err, &se) && se.Overloaded() && overload == nil {
						overload = se
					}
					if firstErr == nil {
						firstErr = err
					}
					failed++
					return
				}
				for _, m := range toCCDMatches(resp.Matches) {
					merged.Offer(m)
				}
				res.Stats.Candidates += resp.Stats.Candidates
				res.Stats.FilterPruned += resp.Stats.FilterPruned
				res.Stats.Scored += resp.Stats.Scored
				res.Stats.CutoffSkipped += resp.Stats.CutoffSkipped
				res.Stats.Abandoned += resp.Stats.Abandoned
				if len(resp.Degraded) > 0 {
					res.Degraded = true
				}
				if shipped > 0 {
					r.boundShipSavings.Add(int64(resp.Stats.CutoffSkipped))
				}
			}(part, shipped)
		}
		wg.Wait()
		if overload != nil {
			// A shard is shedding load: stop fanning out and surface its
			// backpressure verbatim rather than hammering the rest.
			return Result{}, overload
		}
		if err := ctx.Err(); err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				// The client hung up — nobody is waiting for a partial.
				return Result{}, err
			}
			// The request budget ran out between waves: answer with what the
			// shards that ran produced rather than abandoning the query.
			res.Degraded = true
			res.Partial = true
			r.partials.Add(1)
			res.Matches = merged.Results()
			span.AnnotateInt("scored", int64(res.Stats.Scored))
			span.Annotate("degraded", "deadline")
			return res, nil
		}
	}
	if failed == r.N() {
		return Result{}, firstErr
	}
	if failed > 0 {
		res.Partial = true
		r.partials.Add(1)
	}
	res.Matches = merged.Results()
	span.AnnotateInt("scored", int64(res.Stats.Scored))
	span.AnnotateInt("failed", int64(failed))
	return res, nil
}

// remainingBudgetMs snapshots the budget left on ctx in whole milliseconds
// (minimum 1 when a deadline exists but under a millisecond remains, so the
// shard still learns a budget applies; 0 = no deadline, ship nothing).
func remainingBudgetMs(ctx context.Context) int64 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	rem := time.Until(dl)
	if rem <= 0 {
		return 1
	}
	ms := rem.Milliseconds()
	if ms == 0 {
		ms = 1
	}
	return ms
}

// waves splits the partition indices into cfg.Waves contiguous groups of
// near-equal size.
func (r *Router) waves() [][]int {
	n := r.N()
	w := r.cfg.Waves
	out := make([][]int, 0, w)
	for i := 0; i < w; i++ {
		lo, hi := i*n/w, (i+1)*n/w
		if lo == hi {
			continue
		}
		wave := make([]int, 0, hi-lo)
		for p := lo; p < hi; p++ {
			wave = append(wave, p)
		}
		out = append(out, wave)
	}
	return out
}

// queryShard runs one partition's request against its primary, hedging to
// or failing over to the replica when one exists.
func (r *Router) queryShard(ctx context.Context, part int, req ShardMatchRequest) (ShardMatchResponse, error) {
	primary := r.cfg.Targets[part]
	replica := r.Replica(part)
	if replica != "" && r.cfg.HedgeP99 > 0 && r.lat[part].p99() > r.cfg.HedgeP99 {
		r.hedged.Add(1)
		return r.hedge(ctx, part, primary, replica, req)
	}
	start := time.Now()
	resp, err := r.client.MatchShard(ctx, primary, req)
	if err == nil {
		r.lat[part].observe(time.Since(start))
		return resp, nil
	}
	var se *StatusError
	if errors.As(err, &se) && se.Overloaded() {
		// Backpressure is propagated, not failed over: the replica serves
		// availability, not extra capacity the primary just refused to add.
		return resp, err
	}
	if replica == "" {
		return resp, err
	}
	return r.client.MatchShard(ctx, replica, req)
}

// hedge races the primary against the replica and returns the first
// success; the loser's request is cancelled.
func (r *Router) hedge(ctx context.Context, part int, primary, replica string, req ShardMatchRequest) (ShardMatchResponse, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		resp    ShardMatchResponse
		err     error
		primary bool
	}
	ch := make(chan outcome, 2)
	for _, t := range []struct {
		base    string
		primary bool
	}{{primary, true}, {replica, false}} {
		go func(base string, isPrimary bool) {
			start := time.Now()
			resp, err := r.client.MatchShard(hctx, base, req)
			if err == nil && isPrimary {
				r.lat[part].observe(time.Since(start))
			}
			ch <- outcome{resp, err, isPrimary}
		}(t.base, t.primary)
	}
	var lastErr, overload error
	for i := 0; i < 2; i++ {
		o := <-ch
		if o.err == nil {
			return o.resp, nil
		}
		var se *StatusError
		if errors.As(o.err, &se) && se.Overloaded() {
			// One leg shedding load does not decide the hedge: the other may
			// still answer — the replica exists to serve availability, same
			// rationale as queryShard's failover. Only when both legs fail
			// does the backpressure propagate, Retry-After intact.
			overload = o.err
			continue
		}
		lastErr = o.err
	}
	if overload != nil {
		return ShardMatchResponse{}, overload
	}
	return ShardMatchResponse{}, lastErr
}

// Stats is a point-in-time view of the router's counters for /metrics.
type Stats struct {
	// Fanouts counts routed match queries.
	Fanouts int64
	// Hedged counts queries where a slow shard was raced against its
	// replica.
	Hedged int64
	// Partials counts degraded responses (at least one partition down).
	Partials int64
	// BoundShipSavings totals candidates remote shards pruned thanks to the
	// shipped (non-zero) admission bound — scoring work the network tier
	// avoided outright.
	BoundShipSavings int64
	// ShardErrors counts failed requests per partition.
	ShardErrors []int64
}

// Stats snapshots the router's counters.
func (r *Router) Stats() Stats {
	s := Stats{
		Fanouts:          r.fanouts.Load(),
		Hedged:           r.hedged.Load(),
		Partials:         r.partials.Load(),
		BoundShipSavings: r.boundShipSavings.Load(),
		ShardErrors:      make([]int64, len(r.shardErrs)),
	}
	for i := range r.shardErrs {
		s.ShardErrors[i] = r.shardErrs[i].Load()
	}
	return s
}

// FanoutHist exposes the end-to-end fanout latency histogram (µs).
func (r *Router) FanoutHist() *trace.Hist { return &r.fanoutHist }

// latencyWindow is a per-shard rolling window of recent request latencies;
// its p99 is the hedging trigger. Small and mutex-guarded — one observe per
// shard request is nowhere near contention.
type latencyWindow struct {
	mu      sync.Mutex
	samples [64]time.Duration
	n       int // total observed; ring position = n % len
}

func (w *latencyWindow) observe(d time.Duration) {
	w.mu.Lock()
	w.samples[w.n%len(w.samples)] = d
	w.n++
	w.mu.Unlock()
}

// p99 returns the window's 99th percentile (0 with no samples yet — a cold
// shard is never hedged on no evidence).
func (w *latencyWindow) p99() time.Duration {
	w.mu.Lock()
	n := min(w.n, len(w.samples))
	buf := make([]time.Duration, n)
	copy(buf, w.samples[:n])
	w.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := (n*99 + 99) / 100 // ceil(0.99n), 1-based
	if idx > n {
		idx = n
	}
	return buf[idx-1]
}
