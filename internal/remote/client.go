package remote

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/trace"
)

// Client is the router's transport to shard nodes: plain JSON over HTTP/1.1
// with keep-alive connection pooling, so steady-state fanout reuses warm
// TCP connections and a shard request costs one write + one read, no
// handshake. A Client is safe for concurrent use and shared across every
// shard the router talks to.
type Client struct {
	hc *http.Client
	// apiKey, when set, is sent as X-API-Key so shard-side rate limiting
	// sees one logical client per router rather than per source address.
	apiKey string
}

// NewClient returns a client with a connection pool sized for scatter-gather
// fanout. timeout bounds one shard request end to end (0 = no client-side
// deadline; the per-request context still applies).
func NewClient(timeout time.Duration) *Client {
	return &Client{hc: &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			// Each wave hits every shard at once; keep enough warm
			// connections per host that fanout never waits on dials.
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
		},
	}}
}

// SetAPIKey sets the X-API-Key header sent with every shard request.
func (c *Client) SetAPIKey(k string) { c.apiKey = k }

// MatchShard runs one partition-local match on the shard at base
// (e.g. "http://10.0.0.7:8080"). Non-2xx responses come back as
// *StatusError with any Retry-After preserved.
func (c *Client) MatchShard(ctx context.Context, base string, req ShardMatchRequest) (ShardMatchResponse, error) {
	var resp ShardMatchResponse
	err := c.postJSON(ctx, base+"/v1/shard/match", req, &resp)
	return resp, err
}

// PostJSON posts req as JSON to url and decodes a 2xx response into out —
// the router's ingest-forwarding primitive. Non-2xx responses come back as
// *StatusError.
func (c *Client) PostJSON(ctx context.Context, url string, req, out any) error {
	return c.postJSON(ctx, url, req, out)
}

// PostNDJSON posts an NDJSON body to url and decodes a 2xx response into
// out — bulk-ingest forwarding to the shard that owns a chunk of lines.
func (c *Client) PostNDJSON(ctx context.Context, url string, body []byte, out any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/x-ndjson")
	c.decorate(ctx, hreq)
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer drainClose(hresp.Body)
	if hresp.StatusCode/100 != 2 {
		return statusError(hresp)
	}
	return json.NewDecoder(hresp.Body).Decode(out)
}

// postJSON posts req as JSON and decodes a 2xx response into out.
func (c *Client) postJSON(ctx context.Context, url string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	c.decorate(ctx, hreq)
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer drainClose(hresp.Body)
	if hresp.StatusCode/100 != 2 {
		return statusError(hresp)
	}
	return json.NewDecoder(hresp.Body).Decode(out)
}

// decorate attaches the propagation headers: the current trace id rides a
// W3C traceparent when it has the canonical 32-hex shape, and X-Request-Id
// otherwise, so a request's spans on router and shard share one trace id end
// to end. A context deadline rides along as X-Request-Timeout (remaining
// milliseconds at send time), so every shard-bound request — match fanout,
// ingest forwarding, exports — inherits the router's remaining budget.
func (c *Client) decorate(ctx context.Context, hreq *http.Request) {
	if c.apiKey != "" {
		hreq.Header.Set("X-API-Key", c.apiKey)
	}
	if ms := remainingBudgetMs(ctx); ms > 0 {
		hreq.Header.Set("X-Request-Timeout", strconv.FormatInt(ms, 10))
	}
	tr := trace.SpanFrom(ctx).Trace()
	if tr == nil {
		return
	}
	if tp := trace.FormatTraceparent(tr.ID()); tp != "" {
		hreq.Header.Set("Traceparent", tp)
	} else {
		hreq.Header.Set("X-Request-Id", tr.ID())
	}
}

// get issues a decorated GET and returns the response, converting non-2xx
// statuses to *StatusError.
func (c *Client) get(ctx context.Context, url string) (*http.Response, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	c.decorate(ctx, hreq)
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	if hresp.StatusCode/100 != 2 {
		defer drainClose(hresp.Body)
		return nil, statusError(hresp)
	}
	return hresp, nil
}

// FetchSnapshot downloads the shard's binary corpus snapshot
// (GET /v1/corpus/export) into w — the first half of replica bootstrap.
func (c *Client) FetchSnapshot(ctx context.Context, base string, w io.Writer) (int64, error) {
	hresp, err := c.get(ctx, base+"/v1/corpus/export")
	if err != nil {
		return 0, err
	}
	defer drainClose(hresp.Body)
	return io.Copy(w, hresp.Body)
}

// StreamWAL replays the shard's WAL tail from record position `from` in WAL
// generation `epoch` (0 = unknown, first contact), invoking fn per record,
// and returns the next position plus the generation it belongs to — callers
// echo both on the next call, which is what lets the shard detect a stale
// position after it snapshots and truncates its log. The server pages the
// stream (X-WAL-More marks a cut page); this walks pages until the tail is
// drained. A 410 comes back as *StatusError{Status: 410}: the shard's WAL
// generation moved past the caller's and the replica must re-sync before
// resuming.
func (c *Client) StreamWAL(ctx context.Context, base string, from int, epoch int64, fn func(WALRecord) error) (int, int64, error) {
	next := from
	for {
		url := fmt.Sprintf("%s/v1/wal/stream?from=%d", base, next)
		if epoch != 0 {
			url += fmt.Sprintf("&epoch=%d", epoch)
		}
		more, err := c.walPage(ctx, url, &next, &epoch, fn)
		if err != nil || !more {
			return next, epoch, err
		}
	}
}

// walPage fetches one WAL stream page, advancing *next per record and
// adopting the server's generation into *epoch. It reports whether the
// server cut the page (more records are ready right now).
func (c *Client) walPage(ctx context.Context, url string, next *int, epoch *int64, fn func(WALRecord) error) (bool, error) {
	hresp, err := c.get(ctx, url)
	if err != nil {
		return false, err
	}
	defer drainClose(hresp.Body)
	if v := hresp.Header.Get("X-WAL-Epoch"); v != "" {
		if e, perr := strconv.ParseInt(v, 10, 64); perr == nil && e > 0 {
			*epoch = e
		}
	}
	sc := bufio.NewScanner(hresp.Body)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rec WALRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return false, fmt.Errorf("wal stream: bad record after seq %d: %w", *next, err)
		}
		if err := fn(rec); err != nil {
			return false, err
		}
		*next = rec.Seq + 1
	}
	if err := sc.Err(); err != nil {
		return false, err
	}
	return hresp.Header.Get("X-WAL-More") == "1", nil
}

// ExportEntries walks the shard's paginated NDJSON corpus export
// (GET /v1/corpus/export?format=ndjson&cursor=...), invoking fn per entry
// until the export is exhausted — the router-side corpus study and tooling
// stream partitions through this without unbounded responses.
func (c *Client) ExportEntries(ctx context.Context, base string, fn func(ExportEntry) error) error {
	cursor := ""
	for {
		url := base + "/v1/corpus/export?format=ndjson"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		next, err := c.exportPage(ctx, url, fn)
		if err != nil {
			return err
		}
		if next == "" {
			return nil
		}
		cursor = next
	}
}

// exportPage reads one export page, returning the next cursor ("" when the
// export is complete).
func (c *Client) exportPage(ctx context.Context, url string, fn func(ExportEntry) error) (string, error) {
	hresp, err := c.get(ctx, url)
	if err != nil {
		return "", err
	}
	defer drainClose(hresp.Body)
	sc := bufio.NewScanner(hresp.Body)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var e ExportEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return "", fmt.Errorf("corpus export: bad entry: %w", err)
		}
		if err := fn(e); err != nil {
			return "", err
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return hresp.Header.Get("X-Next-Cursor"), nil
}

// statusError converts a non-2xx response into a *StatusError, preserving
// Retry-After (header first, JSON body's retry_after_seconds as fallback)
// and the error message when the body is the API's JSON error shape.
func statusError(hresp *http.Response) error {
	se := &StatusError{Status: hresp.StatusCode}
	if v := hresp.Header.Get("Retry-After"); v != "" {
		if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && n > 0 {
			se.RetryAfterSeconds = n
		}
	}
	body, _ := io.ReadAll(io.LimitReader(hresp.Body, 16<<10))
	var payload struct {
		Error             string `json:"error"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	if json.Unmarshal(body, &payload) == nil {
		se.Msg = payload.Error
		if se.RetryAfterSeconds == 0 {
			se.RetryAfterSeconds = payload.RetryAfterSeconds
		}
	}
	return se
}

// drainClose drains and closes a response body so the underlying connection
// returns to the keep-alive pool instead of being torn down.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	_ = body.Close()
}
