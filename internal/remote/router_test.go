package remote

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"
)

// shardFixture is an in-process fake shard node: it answers
// POST /v1/shard/match over a fixed score list, pruning strictly below the
// shipped bound exactly like the real handler's AtomicBound path.
type shardFixture struct {
	mu     sync.Mutex
	docs   []Match
	delay  time.Duration
	bounds []float64 // bound received per request, in arrival order
	hits   int
}

func (f *shardFixture) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/shard/match" {
			http.NotFound(w, r)
			return
		}
		var req ShardMatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		f.bounds = append(f.bounds, req.Bound)
		f.hits++
		docs := append([]Match(nil), f.docs...)
		delay := f.delay
		f.mu.Unlock()
		if delay > 0 {
			time.Sleep(delay)
		}
		var resp ShardMatchResponse
		for _, m := range docs {
			resp.Stats.Candidates++
			if req.Bound > 0 && m.Score < req.Bound {
				resp.Stats.CutoffSkipped++
				continue
			}
			resp.Stats.Scored++
			resp.Matches = append(resp.Matches, m)
		}
		sort.Slice(resp.Matches, func(i, j int) bool { return resp.Matches[i].Score > resp.Matches[j].Score })
		if req.K > 0 && len(resp.Matches) > req.K {
			resp.Matches = resp.Matches[:req.K]
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
}

func startShard(t *testing.T, f *shardFixture) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(f.handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestRouterMergesGlobalTopK(t *testing.T) {
	s0 := &shardFixture{docs: []Match{{ID: "a", Score: 91}, {ID: "b", Score: 72}, {ID: "c", Score: 55}}}
	s1 := &shardFixture{docs: []Match{{ID: "d", Score: 88}, {ID: "e", Score: 63}}}
	r := NewRouter(Config{Targets: []string{startShard(t, s0).URL, startShard(t, s1).URL}})

	res, err := r.Match(context.Background(), "fp", 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatal("unexpected partial result")
	}
	want := []string{"a", "d", "b"}
	if len(res.Matches) != len(want) {
		t.Fatalf("got %d matches, want %d: %+v", len(res.Matches), len(want), res.Matches)
	}
	for i, id := range want {
		if res.Matches[i].ID != id {
			t.Errorf("match[%d] = %q, want %q", i, res.Matches[i].ID, id)
		}
	}
}

// TestRouterShipsTightenedBound pins the tentpole mechanism: the second wave
// must receive the bound the first wave's merge established, so remote
// shards prune exactly like local ones sharing an AtomicBound.
func TestRouterShipsTightenedBound(t *testing.T) {
	s0 := &shardFixture{docs: []Match{{ID: "a", Score: 90}, {ID: "b", Score: 80}, {ID: "c", Score: 70}}}
	s1 := &shardFixture{docs: []Match{{ID: "d", Score: 75}, {ID: "e", Score: 10}}}
	r := NewRouter(Config{
		Targets: []string{startShard(t, s0).URL, startShard(t, s1).URL},
		Waves:   2, // shard 0 alone in wave 1, shard 1 alone in wave 2
	})

	res, err := r.Match(context.Background(), "fp", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := []string{res.Matches[0].ID, res.Matches[1].ID}; got[0] != "a" || got[1] != "b" {
		t.Fatalf("top-2 = %v, want [a b]", got)
	}
	if len(s1.bounds) != 1 || s1.bounds[0] != 80 {
		t.Fatalf("second wave received bounds %v, want [80] (the k-th score after wave one)", s1.bounds)
	}
	if s1.bounds[0] > 0 && r.Stats().BoundShipSavings == 0 {
		t.Error("bound-ship savings counter did not move despite a shipped bound pruning candidates")
	}
}

func TestRouterNoBoundShip(t *testing.T) {
	s0 := &shardFixture{docs: []Match{{ID: "a", Score: 90}, {ID: "b", Score: 80}}}
	s1 := &shardFixture{docs: []Match{{ID: "d", Score: 75}}}
	r := NewRouter(Config{
		Targets:     []string{startShard(t, s0).URL, startShard(t, s1).URL},
		Waves:       2,
		NoBoundShip: true,
	})
	if _, err := r.Match(context.Background(), "fp", 2); err != nil {
		t.Fatal(err)
	}
	if len(s1.bounds) != 1 || s1.bounds[0] != 0 {
		t.Fatalf("NoBoundShip shipped bounds %v, want [0]", s1.bounds)
	}
}

func TestRouterPropagatesRetryAfter(t *testing.T) {
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(map[string]any{"error": "overloaded"})
	}))
	t.Cleanup(busy.Close)
	ok := &shardFixture{docs: []Match{{ID: "a", Score: 90}}}
	r := NewRouter(Config{Targets: []string{busy.URL, startShard(t, ok).URL}})

	_, err := r.Match(context.Background(), "fp", 1)
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("want StatusError, got %v", err)
	}
	if se.Status != http.StatusTooManyRequests || se.RetryAfterSeconds != 7 {
		t.Fatalf("got status %d retry-after %d, want 429/7", se.Status, se.RetryAfterSeconds)
	}
}

func TestRouterPartialOnDeadShard(t *testing.T) {
	ok := &shardFixture{docs: []Match{{ID: "a", Score: 90}}}
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from here on
	r := NewRouter(Config{Targets: []string{startShard(t, ok).URL, dead.URL}})

	res, err := r.Match(context.Background(), "fp", 1)
	if err != nil {
		t.Fatalf("one live shard should still answer: %v", err)
	}
	if !res.Partial {
		t.Fatal("want Partial with a dead shard")
	}
	if len(res.Matches) != 1 || res.Matches[0].ID != "a" {
		t.Fatalf("matches = %+v, want the live shard's doc", res.Matches)
	}
	st := r.Stats()
	if st.Partials != 1 {
		t.Errorf("partials counter = %d, want 1", st.Partials)
	}
	if st.ShardErrors[1] == 0 {
		t.Error("dead shard's error counter did not move")
	}
}

func TestRouterAllShardsDeadErrors(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	r := NewRouter(Config{Targets: []string{dead.URL}})
	if _, err := r.Match(context.Background(), "fp", 1); err == nil {
		t.Fatal("want an error when every shard is down")
	}
}

func TestRouterFailsOverToReplica(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	rep := &shardFixture{docs: []Match{{ID: "a", Score: 90}}}
	r := NewRouter(Config{
		Targets:  []string{dead.URL},
		Replicas: []string{startShard(t, rep).URL},
	})
	res, err := r.Match(context.Background(), "fp", 1)
	if err != nil {
		t.Fatalf("replica should cover the dead primary: %v", err)
	}
	if res.Partial || len(res.Matches) != 1 {
		t.Fatalf("got partial=%v matches=%+v, want a full answer from the replica", res.Partial, res.Matches)
	}
}

func TestRouterHedgesSlowShard(t *testing.T) {
	slow := &shardFixture{docs: []Match{{ID: "a", Score: 90}}, delay: 20 * time.Millisecond}
	rep := &shardFixture{docs: []Match{{ID: "a", Score: 90}}}
	r := NewRouter(Config{
		Targets:  []string{startShard(t, slow).URL},
		Replicas: []string{startShard(t, rep).URL},
		HedgeP99: time.Microsecond,
	})
	// First query seeds the latency window; later ones see p99 over the
	// threshold and race the replica.
	for i := 0; i < 3; i++ {
		if _, err := r.Match(context.Background(), "fp", 1); err != nil {
			t.Fatal(err)
		}
	}
	if r.Stats().Hedged == 0 {
		t.Fatal("no hedged reads despite a slow primary and a tiny -hedge-p99")
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.hits == 0 {
		t.Fatal("replica never queried")
	}
}

// overloadedShard answers every request 429 + Retry-After, the shape of a
// shard shedding load.
func overloadedShard(t *testing.T, retryAfter string) *httptest.Server {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", retryAfter)
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(map[string]any{"error": "overloaded"})
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestHedgeOverloadedLegWaitsForOther pins the hedge's overload contract:
// the replica exists to serve availability, so a 429 from whichever leg
// answers first must not abort the hedge while the other leg can still
// succeed.
func TestHedgeOverloadedLegWaitsForOther(t *testing.T) {
	busy := overloadedShard(t, "5")
	// The healthy replica answers strictly after the 429, so the overloaded
	// outcome is always the first off the channel.
	rep := &shardFixture{docs: []Match{{ID: "a", Score: 90}}, delay: 10 * time.Millisecond}
	r := NewRouter(Config{
		Targets:  []string{busy.URL},
		Replicas: []string{startShard(t, rep).URL},
		HedgeP99: time.Nanosecond,
	})
	resp, err := r.hedge(context.Background(), 0, busy.URL, r.Replica(0), ShardMatchRequest{Fingerprint: "fp", K: 1})
	if err != nil {
		t.Fatalf("healthy replica should cover the overloaded primary: %v", err)
	}
	if len(resp.Matches) != 1 || resp.Matches[0].ID != "a" {
		t.Fatalf("matches = %+v, want the replica's doc", resp.Matches)
	}
}

// TestHedgeBothOverloadedPropagates: only when BOTH legs push back does the
// backpressure surface, Retry-After intact.
func TestHedgeBothOverloadedPropagates(t *testing.T) {
	busy1 := overloadedShard(t, "7")
	busy2 := overloadedShard(t, "7")
	r := NewRouter(Config{
		Targets:  []string{busy1.URL},
		Replicas: []string{busy2.URL},
		HedgeP99: time.Nanosecond,
	})
	_, err := r.hedge(context.Background(), 0, busy1.URL, busy2.URL, ShardMatchRequest{Fingerprint: "fp", K: 1})
	var se *StatusError
	if !errors.As(err, &se) || !se.Overloaded() {
		t.Fatalf("want an overloaded StatusError when both legs shed load, got %v", err)
	}
	if se.RetryAfterSeconds != 7 {
		t.Fatalf("Retry-After %d, want 7 preserved through the hedge", se.RetryAfterSeconds)
	}
}
