package remote

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVnodes is the number of virtual nodes each partition projects onto
// the ring. 128 points per node keeps the worst/best partition load ratio
// within a few percent for small clusters while the ring stays a few KB.
const defaultVnodes = 128

// Ring is a consistent-hash assignment of document ids to N partitions.
// It is deterministic in N alone — every router and every shard that knows
// the cluster size computes the identical ring with no coordination — and
// adding or removing one partition moves only ~1/(N+1) of the keyspace,
// unlike modulo hashing where nearly every key reshuffles.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	n      int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	owner int
}

// NewRing returns the canonical ring for n partitions (n ≥ 1) with the
// default virtual-node count.
func NewRing(n int) *Ring {
	return NewRingWith(n, defaultVnodes)
}

// NewRingWith returns a ring for n partitions with vnodes virtual nodes
// each. Exposed for tests that want coarse rings; production callers use
// NewRing.
func NewRingWith(n, vnodes int) *Ring {
	if n < 1 {
		n = 1
	}
	if vnodes < 1 {
		vnodes = 1
	}
	r := &Ring{n: n, points: make([]ringPoint, 0, n*vnodes)}
	for node := 0; node < n; node++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(fmt.Sprintf("node-%d#%d", node, v)),
				owner: node,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by owner so the ring stays
		// deterministic regardless of sort stability.
		return r.points[i].owner < r.points[j].owner
	})
	return r
}

// N returns the partition count the ring was built for.
func (r *Ring) N() int { return r.n }

// Owner returns the partition that owns id: the first ring point clockwise
// from the id's hash.
func (r *Ring) Owner(id string) int {
	h := hash64(id)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: past the last point lands on the first
	}
	return r.points[i].owner
}

// hash64 is FNV-1a over the string — stable across processes and Go
// versions, unlike maphash — run through a splitmix64 finalizer. Raw
// FNV-1a of short sequential labels ("node-0#1", "node-0#2", ...) lands
// in correlated clusters, which skewed two-node rings as far as 70/30;
// the finalizer's avalanche restores a uniform spread.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
