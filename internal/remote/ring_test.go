package remote

import (
	"fmt"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	a, b := NewRing(4), NewRing(4)
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("doc-%d", i)
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("ring not deterministic for %q: %d vs %d", id, a.Owner(id), b.Owner(id))
		}
	}
}

func TestRingCoversAllPartitions(t *testing.T) {
	r := NewRing(8)
	seen := make(map[int]int)
	for i := 0; i < 10000; i++ {
		p := r.Owner(fmt.Sprintf("doc-%d", i))
		if p < 0 || p >= 8 {
			t.Fatalf("owner %d out of range", p)
		}
		seen[p]++
	}
	for p := 0; p < 8; p++ {
		if seen[p] == 0 {
			t.Errorf("partition %d owns nothing", p)
		}
	}
}

// TestRingJoinMovesFraction pins the consistent-hash property the replica
// story relies on: adding one node moves roughly 1/(N+1) of the keys, not a
// full reshuffle like mod-N hashing would.
func TestRingJoinMovesFraction(t *testing.T) {
	const keys = 20000
	before, after := NewRing(4), NewRing(5)
	moved := 0
	for i := 0; i < keys; i++ {
		id := fmt.Sprintf("doc-%d", i)
		if before.Owner(id) != after.Owner(id) {
			moved++
		}
	}
	frac := float64(moved) / keys
	// Ideal is 1/5 = 0.20; vnode placement wobbles, so accept a wide band
	// that still rules out mod-N's ~0.8 reshuffle.
	if frac < 0.05 || frac > 0.45 {
		t.Fatalf("join moved %.1f%% of keys; want a consistent-hash fraction near 20%%", frac*100)
	}
}

func TestRingClampsDegenerateInputs(t *testing.T) {
	r := NewRing(0)
	if r.N() != 1 {
		t.Fatalf("N() = %d, want clamp to 1", r.N())
	}
	if got := r.Owner("anything"); got != 0 {
		t.Fatalf("single-node ring owner = %d, want 0", got)
	}
}

// TestRingBalance pins the load spread the splitmix64 finalizer buys: raw
// FNV-1a vnode labels clustered badly enough to hand one of two nodes ~70%
// of the keyspace. Every partition must stay within 2x of fair share.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		r := NewRing(n)
		seen := make([]int, n)
		const keys = 20000
		for i := 0; i < keys; i++ {
			seen[r.Owner(fmt.Sprintf("doc-%d", i))]++
		}
		fair := keys / n
		for p, c := range seen {
			if c < fair/2 || c > fair*2 {
				t.Errorf("n=%d partition %d owns %d keys (fair share %d): spread %v", n, p, c, fair, seen)
			}
		}
	}
}
