// Package remote lifts the in-process scatter-gather seam over the network:
// a router node fans one /v1/match query out to shard nodes that each own a
// hash partition of the corpus, ships the current admission bound with every
// request so remote shards prune exactly like local generation-shards, and
// merges the per-shard top-K responses through the same bounded heap the
// single-process path uses.
//
// The design follows the FAT principle that shaped the in-memory layout:
// keep hot data where the compute is and move only what the decision needs.
// A shard request is the query fingerprint plus one float64 bound — a few
// hundred bytes — never posting blocks, so the network tier adds one RTT per
// wave and nothing proportional to corpus size.
//
// The package has three layers: wire types (this file), a persistent-
// connection HTTP client (client.go) with a consistent-hash ring for
// partition assignment (ring.go), and the Router (router.go) that owns
// fanout waves, bound tightening, hedged reads, and degraded-mode merging.
package remote

import (
	"fmt"

	"repro/internal/ccd"
)

// ShardMatchRequest is the body of POST /v1/shard/match: one query against
// the partition a shard node owns. Bound is the router's current admission
// bound at send time — the shard seeds its collector's shared bound with it,
// so candidates already beaten by another partition's evidence are pruned
// before the expensive exact similarity runs.
type ShardMatchRequest struct {
	Fingerprint string  `json:"fingerprint"`
	K           int     `json:"k"`
	Bound       float64 `json:"bound,omitempty"`
	// BudgetMs is the router's *remaining* request budget at send time, in
	// milliseconds. A shard derives its own scan deadline from it and
	// self-cancels into a degraded partial instead of being abandoned by a
	// router that already gave up.
	BudgetMs int64 `json:"budget_ms,omitempty"`
}

// Match is one scored result on the wire. It mirrors ccd.Match, which
// deliberately carries no JSON tags (it lives on a zero-allocation path);
// the wire shape is pinned here instead.
type Match struct {
	ID    string  `json:"id"`
	Score float64 `json:"score"`
}

// ShardMatchStats is the shard-local match funnel, returned so the router
// can aggregate scan effort across partitions and prove what bound shipping
// saved (CutoffSkipped counts candidates the shipped bound pruned before
// scoring).
type ShardMatchStats struct {
	Candidates    int `json:"candidates"`
	FilterPruned  int `json:"filter_pruned"`
	Scored        int `json:"scored"`
	CutoffSkipped int `json:"cutoff_skipped"`
	// Abandoned counts candidates the shard never visited because its
	// shipped budget ran out mid-scan.
	Abandoned int `json:"abandoned,omitempty"`
}

// ShardMatchResponse is the body a shard node returns: its partition-local
// top K (best first), the bound its collector ended at (≥ the shipped
// bound; the router folds it back before the next wave), and the scan
// funnel.
type ShardMatchResponse struct {
	Matches []Match         `json:"matches"`
	Bound   float64         `json:"bound"`
	Stats   ShardMatchStats `json:"stats"`
	// Degraded names the quality reductions applied shard-side ("deadline"
	// when the shipped budget expired mid-scan and Matches is a best-effort
	// partial top-K). The router folds it into its own Result.
	Degraded []string `json:"degraded,omitempty"`
}

// WALRecord is one corpus write on the WAL stream (GET /v1/wal/stream),
// NDJSON-encoded: sequence number (position in the shard's current WAL),
// document id, and fingerprint. Replay is idempotent and
// last-record-per-id, so a replica may apply an overlapping tail safely.
type WALRecord struct {
	Seq         int    `json:"seq"`
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
}

// ExportEntry is one corpus document on the paginated NDJSON export
// (GET /v1/corpus/export?format=ndjson), used by replica bootstrap and the
// router-side corpus study.
type ExportEntry struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
}

// StatusError is a non-2xx shard response that carries actionable protocol
// state — most importantly 429/503 with Retry-After, which the router must
// propagate to the client verbatim instead of flattening into a generic
// 502 (a client that retries immediately against an overloaded shard makes
// the overload worse).
type StatusError struct {
	// Status is the HTTP status the shard returned.
	Status int
	// RetryAfterSeconds is the shard's Retry-After value (0 when absent).
	RetryAfterSeconds int
	// Msg is the shard's error message, when one could be decoded.
	Msg string
}

// Error implements the error interface.
func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("shard returned %d: %s", e.Status, e.Msg)
	}
	return fmt.Sprintf("shard returned %d", e.Status)
}

// Overloaded reports whether the error is a shard pushing back (429 or 503)
// rather than failing — the router forwards these, Retry-After intact.
func (e *StatusError) Overloaded() bool {
	return e.Status == 429 || e.Status == 503
}

// toCCDMatches converts wire matches to ccd.Match for the merge heap.
func toCCDMatches(ms []Match) []ccd.Match {
	out := make([]ccd.Match, len(ms))
	for i, m := range ms {
		out[i] = ccd.Match{ID: m.ID, Score: m.Score}
	}
	return out
}
