package cpg

import (
	"testing"
	"testing/quick"

	"repro/internal/solidity"
)

func mustGraph(t *testing.T, src string) *Graph {
	t.Helper()
	g, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return g
}

func findByCode(g *Graph, l Label, code string) *Node {
	for _, n := range g.ByLabel(l) {
		if n.Code == code {
			return n
		}
	}
	return nil
}

func findByLocalName(g *Graph, l Label, name string) *Node {
	for _, n := range g.ByLabel(l) {
		if n.LocalName == name {
			return n
		}
	}
	return nil
}

// reaches reports whether to is reachable from from over the given kinds.
func reaches(from, to *Node, kinds ...EdgeKind) bool {
	seen := map[*Node]bool{}
	stack := []*Node{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, n.OutAny(kinds...)...)
	}
	return false
}

func TestFigure2Graph(t *testing.T) {
	// The paper's Figure 2: if(msg.sender == owner){}
	src := `contract C {
		address owner;
		function f() public { if (msg.sender == owner) {} }
	}`
	g := mustGraph(t, src)

	sender := findByCode(g, LMemberExpression, "msg.sender")
	if sender == nil {
		t.Fatal("no msg.sender node")
	}
	ownerRef := findByCode(g, LDeclaredReference, "owner")
	if ownerRef == nil {
		t.Fatal("no owner reference")
	}
	eq := findByLocalName(g, LBinaryOperator, "")
	for _, n := range g.ByLabel(LBinaryOperator) {
		if n.Operator == "==" {
			eq = n
		}
	}
	if eq == nil || eq.Operator != "==" {
		t.Fatal("no == operator node")
	}
	ifNode := g.ByLabel(LIfStatement)
	if len(ifNode) != 1 {
		t.Fatalf("if nodes: %d", len(ifNode))
	}

	// EOG: msg.sender evaluated before owner, before ==, before IF.
	if !reaches(sender, ownerRef, EOG) {
		t.Error("EOG: msg.sender should precede owner")
	}
	if !reaches(ownerRef, eq, EOG) {
		t.Error("EOG: owner should precede ==")
	}
	if !reaches(eq, ifNode[0], EOG) {
		t.Error("EOG: == should precede IF")
	}
	// DFG: both references flow into ==, which flows into IF.
	if !reaches(sender, eq, DFG) {
		t.Error("DFG: msg.sender should flow into ==")
	}
	if !reaches(ownerRef, eq, DFG) {
		t.Error("DFG: owner should flow into ==")
	}
	if !reaches(eq, ifNode[0], DFG) {
		t.Error("DFG: == should flow into IF")
	}
	// LHS/RHS structure.
	if len(eq.Out(LHS)) != 1 || eq.Out(LHS)[0] != sender {
		t.Error("LHS of == should be msg.sender")
	}
	if len(eq.Out(RHS)) != 1 || eq.Out(RHS)[0] != ownerRef {
		t.Error("RHS of == should be owner")
	}
	// CONDITION edge from IF.
	if len(ifNode[0].Out(CONDITION)) != 1 || ifNode[0].Out(CONDITION)[0] != eq {
		t.Error("IF condition should be ==")
	}
}

func TestRecordAndFields(t *testing.T) {
	g := mustGraph(t, `contract Bank {
		mapping(address => uint) balances;
		address owner;
	}`)
	rec := findByLocalName(g, LRecordDeclaration, "Bank")
	if rec == nil {
		t.Fatal("no record")
	}
	if rec.Kind != "contract" {
		t.Errorf("kind: %q", rec.Kind)
	}
	fields := rec.Out(FIELDS)
	if len(fields) != 2 {
		t.Fatalf("fields: %d", len(fields))
	}
	bal := findByLocalName(g, LFieldDeclaration, "balances")
	if bal.TypeName != "mapping(address => uint)" {
		t.Errorf("type: %q", bal.TypeName)
	}
}

func TestReferenceResolution(t *testing.T) {
	g := mustGraph(t, `contract C {
		uint total;
		function f(uint x) public {
			uint local = x;
			total = local;
		}
	}`)
	// x reference resolves to the parameter.
	xRef := findByCode(g, LDeclaredReference, "x")
	if xRef == nil {
		t.Fatal("no x ref")
	}
	tgt := refTarget(xRef)
	if tgt == nil || !tgt.Is(LParamVariableDecl) {
		t.Fatalf("x resolves to %v", tgt)
	}
	// total resolves to the field.
	totalRef := findByCode(g, LDeclaredReference, "total")
	if tt := refTarget(totalRef); tt == nil || !tt.Is(LFieldDeclaration) {
		t.Fatalf("total resolves to %v", refTarget(totalRef))
	}
}

func TestParamToFieldDataFlow(t *testing.T) {
	// The canonical query: MATCH (p:Parameter)-[:DFG*]->(:Field).
	g := mustGraph(t, `contract C {
		uint stored;
		function set(uint v) public { stored = v; }
	}`)
	param := findByLocalName(g, LParamVariableDecl, "v")
	field := findByLocalName(g, LFieldDeclaration, "stored")
	if param == nil || field == nil {
		t.Fatal("missing nodes")
	}
	if !reaches(param, field, DFG) {
		t.Error("parameter should flow into field")
	}
}

func TestInheritedFieldResolution(t *testing.T) {
	g := mustGraph(t, `
contract Parent { address owner; }
contract Child is Parent {
	function f() public { require(msg.sender == owner); }
}`)
	ref := findByCode(g, LDeclaredReference, "owner")
	tgt := refTarget(ref)
	if tgt == nil || !tgt.Is(LFieldDeclaration) {
		t.Fatalf("owner resolves to %v", tgt)
	}
}

func TestRollbackNodes(t *testing.T) {
	g := mustGraph(t, `contract C {
		function f() public {
			require(msg.sender == owner);
			revert();
		}
		function g2() public { throw; }
	}`)
	rollbacks := g.ByLabel(LRollback)
	// require's attached rollback + revert call + throw.
	if len(rollbacks) != 3 {
		t.Fatalf("rollback nodes: %d", len(rollbacks))
	}
	// require call node branches: one successor is a Rollback.
	req := findByLocalName(g, LCallExpression, "require")
	if req == nil {
		t.Fatal("no require call")
	}
	hasRollbackSucc := false
	for _, s := range req.Out(EOG) {
		if s.Is(LRollback) {
			hasRollbackSucc = true
		}
	}
	if !hasRollbackSucc {
		t.Error("require should branch into a Rollback node")
	}
	// revert node is EOG-terminal.
	rev := findByLocalName(g, LCallExpression, "revert")
	if rev == nil || !rev.Is(LRollback) {
		t.Fatalf("revert node: %v", rev)
	}
	if len(rev.Out(EOG)) != 0 {
		t.Error("revert should have no EOG successors")
	}
}

func TestModifierExpansion(t *testing.T) {
	g := mustGraph(t, `contract C {
		address owner;
		modifier onlyOwner() { require(msg.sender == owner); _; }
		function a() public onlyOwner { x = 1; }
		function b() public onlyOwner { x = 2; }
		uint x;
	}`)
	// Each application clones the modifier body: two require calls.
	var requires int
	for _, n := range g.ByLabel(LCallExpression) {
		if n.LocalName == "require" {
			requires++
		}
	}
	if requires != 2 {
		t.Fatalf("require calls after expansion: %d", requires)
	}
	// The require precedes the assignment in the EOG of function a.
	fa := findByLocalName(g, LFunctionDeclaration, "a")
	if fa == nil {
		t.Fatal("no function a")
	}
	var reachedRequire, reachedAssign bool
	for _, n := range g.ByLabel(LCallExpression) {
		if n.LocalName == "require" && reaches(fa, n, EOG) {
			reachedRequire = true
			for _, bin := range g.ByLabel(LBinaryOperator) {
				if bin.Operator == "=" && bin.Code == "x = 1" && reaches(n, bin, EOG) {
					reachedAssign = true
				}
			}
		}
	}
	if !reachedRequire || !reachedAssign {
		t.Errorf("modifier wrapping broken: require=%v assign=%v", reachedRequire, reachedAssign)
	}
}

func TestCallResolutionInvokes(t *testing.T) {
	g := mustGraph(t, `contract C {
		uint total;
		function outer(uint v) public { inner(v); }
		function inner(uint w) public { total = w; }
	}`)
	call := findByLocalName(g, LCallExpression, "inner")
	if call == nil {
		t.Fatal("no call")
	}
	inv := call.Out(INVOKES)
	if len(inv) != 1 || inv[0].LocalName != "inner" {
		t.Fatalf("INVOKES: %v", inv)
	}
	// Argument flows into the callee parameter and onward into the field.
	outerParam := findByLocalName(g, LParamVariableDecl, "v")
	field := findByLocalName(g, LFieldDeclaration, "total")
	if !reaches(outerParam, field, DFG) {
		t.Error("outer parameter should flow through the call into the field")
	}
}

func TestReturnsEdges(t *testing.T) {
	g := mustGraph(t, `contract C {
		function caller() public returns (uint) { return helper(); }
		function helper() public returns (uint) { return 42; }
	}`)
	call := findByLocalName(g, LCallExpression, "helper")
	if call == nil {
		t.Fatal("no call")
	}
	var gotReturns bool
	for _, r := range g.ByLabel(LReturnStatement) {
		for _, tgt := range r.Out(RETURNS) {
			if tgt == call {
				gotReturns = true
			}
		}
	}
	if !gotReturns {
		t.Error("helper's return should have a RETURNS edge to the call")
	}
}

func TestCallOptionsSpecifiedExpression(t *testing.T) {
	g := mustGraph(t, `contract C {
		function f() public { msg.sender.call{value: address(this).balance}(""); }
	}`)
	call := findByLocalName(g, LCallExpression, "call")
	if call == nil {
		t.Fatal("no call node")
	}
	spec := call.Out(CALLEE)
	if len(spec) != 1 || !spec[0].Is(LSpecifiedExpression) {
		t.Fatalf("callee: %v", spec)
	}
	kvs := spec[0].Out(SPECIFIERS)
	if len(kvs) != 1 || !kvs[0].Is(LKeyValueExpression) {
		t.Fatalf("specifiers: %v", kvs)
	}
	key := kvs[0].Out(KEY)
	if len(key) != 1 || key[0].LocalName != "value" {
		t.Fatalf("key: %v", key)
	}
}

func TestFallbackFunctionLocalName(t *testing.T) {
	g := mustGraph(t, `contract C { function () payable { lib.delegatecall(msg.data); } }`)
	var fallback *Node
	for _, f := range g.ByLabel(LFunctionDeclaration) {
		if f.LocalName == "" {
			fallback = f
		}
	}
	if fallback == nil {
		t.Fatal("no fallback function with empty localName")
	}
	dc := findByLocalName(g, LCallExpression, "delegatecall")
	if dc == nil {
		t.Fatal("no delegatecall node")
	}
	if !reaches(fallback, dc, EOG) {
		t.Error("fallback should reach delegatecall in EOG")
	}
	args := dc.Out(ARGUMENTS)
	if len(args) != 1 || args[0].Code != "msg.data" {
		t.Fatalf("args: %v", args)
	}
}

func TestSnippetInference(t *testing.T) {
	g := mustGraph(t, `msg.sender.transfer(amount);`)
	var inferredFn *Node
	for _, f := range g.ByLabel(LFunctionDeclaration) {
		if f.Inferred {
			inferredFn = f
		}
	}
	if inferredFn == nil {
		t.Fatal("no inferred function")
	}
	tr := findByLocalName(g, LCallExpression, "transfer")
	if tr == nil || !reaches(inferredFn, tr, EOG) {
		t.Error("inferred function should wrap the statement in the EOG")
	}
}

func TestLoopEOGCycle(t *testing.T) {
	g := mustGraph(t, `contract C {
		function f(uint n) public {
			for (uint i = 0; i < n; i++) { total += i; }
		}
		uint total;
	}`)
	loops := g.ByLabel(LForStatement)
	if len(loops) != 1 {
		t.Fatalf("for nodes: %d", len(loops))
	}
	// The loop node must be on an EOG cycle.
	if !onCycle(loops[0]) {
		t.Error("for node should be on an EOG cycle")
	}
}

func onCycle(n *Node) bool {
	seen := map[*Node]bool{}
	var stack []*Node
	stack = append(stack, n.Out(EOG)...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == n {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		stack = append(stack, cur.Out(EOG)...)
	}
	return false
}

func TestWhileAndDoWhileCycles(t *testing.T) {
	g := mustGraph(t, `contract C {
		function f() public {
			while (x > 0) { x--; }
			do { x++; } while (x < 3);
		}
		uint x;
	}`)
	for _, l := range g.ByLabel(LWhileStatement) {
		if !onCycle(l) {
			t.Error("while node should be on an EOG cycle")
		}
	}
	for _, l := range g.ByLabel(LDoStatement) {
		if !onCycle(l) {
			t.Error("do node should be on an EOG cycle")
		}
	}
}

func TestBreakLeavesLoop(t *testing.T) {
	g := mustGraph(t, `contract C {
		function f() public {
			while (true) { break; }
			done = true;
		}
		bool done;
	}`)
	br := g.ByLabel(LBreakStatement)
	if len(br) != 1 {
		t.Fatalf("break nodes: %d", len(br))
	}
	assign := findByCode(g, LBinaryOperator, "done = true")
	if assign == nil {
		t.Fatal("no assignment after loop")
	}
	if !reaches(br[0], assign, EOG) {
		t.Error("break should flow to the statement after the loop")
	}
}

func TestReturnIsTerminal(t *testing.T) {
	g := mustGraph(t, `contract C { function f() public returns (uint) { return 1; } }`)
	rets := g.ByLabel(LReturnStatement)
	if len(rets) != 1 {
		t.Fatalf("returns: %d", len(rets))
	}
	if len(rets[0].Out(EOG)) != 0 {
		t.Error("return should be EOG-terminal")
	}
}

func TestConstructorLabel(t *testing.T) {
	g := mustGraph(t, `contract C {
		constructor() { owner = msg.sender; }
		address owner;
	}
	contract Old { function Old() public {} }`)
	var ctors int
	for _, f := range g.ByLabel(LFunctionDeclaration) {
		if f.Is(LConstructorDecl) {
			ctors++
		}
	}
	if ctors != 2 {
		t.Fatalf("constructors: %d (old-style constructor not detected?)", ctors)
	}
}

func TestSubscriptWriteFlowsToField(t *testing.T) {
	g := mustGraph(t, `contract C {
		mapping(address => uint) balances;
		function deposit() public payable { balances[msg.sender] += msg.value; }
	}`)
	field := findByLocalName(g, LFieldDeclaration, "balances")
	val := findByCode(g, LMemberExpression, "msg.value")
	if field == nil || val == nil {
		t.Fatal("missing nodes")
	}
	if !reaches(val, field, DFG) {
		t.Error("msg.value should flow into the balances field")
	}
}

func TestGraphDeterminism(t *testing.T) {
	src := `contract C {
		uint a; uint b;
		function f(uint x) public { a = x; b = a + 1; if (b > 2) { revert(); } }
	}`
	g1 := mustGraph(t, src)
	g2 := mustGraph(t, src)
	if len(g1.Nodes) != len(g2.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(g1.Nodes), len(g2.Nodes))
	}
	for _, k := range []EdgeKind{AST, EOG, DFG, REFERS_TO} {
		if g1.EdgeCount(k) != g2.EdgeCount(k) {
			t.Errorf("%v edge counts differ", k)
		}
	}
}

func TestBuildNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEOGHasNoDanglingEntryForEmptyFunctions(t *testing.T) {
	g := mustGraph(t, `contract C { function f() public {} }`)
	fn := findByLocalName(g, LFunctionDeclaration, "f")
	if fn == nil {
		t.Fatal("no fn")
	}
	if len(fn.Out(EOG)) != 0 {
		t.Errorf("empty function should have no EOG successors, got %d", len(fn.Out(EOG)))
	}
}

func TestNodePropertiesAndLabels(t *testing.T) {
	g := mustGraph(t, `contract C { function f() public { x = 1 + 2; } uint x; }`)
	add := (*Node)(nil)
	for _, n := range g.ByLabel(LBinaryOperator) {
		if n.Operator == "+" {
			add = n
		}
	}
	if add == nil {
		t.Fatal("no + node")
	}
	if add.Code != "1 + 2" {
		t.Errorf("code: %q", add.Code)
	}
	lit := findByCode(g, LLiteral, "1")
	if lit == nil || lit.Value != "1" {
		t.Fatalf("literal: %v", lit)
	}
}

func TestBuildFromStrictContract(t *testing.T) {
	// A full well-formed contract must produce identical structure whether
	// parsed fuzzily or strictly.
	src := `contract C { uint x; function f() public { x = 1; } }`
	u1, err := solidity.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := solidity.ParseStrict(src)
	if err != nil {
		t.Fatal(err)
	}
	g1 := Build(src, u1)
	g2 := Build(src, u2)
	if len(g1.Nodes) != len(g2.Nodes) {
		t.Errorf("fuzzy %d nodes vs strict %d nodes", len(g1.Nodes), len(g2.Nodes))
	}
}
