package cpg

import (
	"repro/internal/solidity"
)

// Syntax-layer construction: every (expanded) AST statement and expression
// becomes a CPG node with AST edges plus structural edges (LHS, RHS,
// CONDITION, ARGUMENTS, ...). The EOG and DFG passes run afterwards over the
// same AST using the exprNode mapping.

func (b *builder) buildBlock(blk *solidity.Block) *Node {
	n := b.g.NewNode(LBlock)
	n.Pos = blk.Pos()
	b.exprNode[blk] = n
	b.scope = &scope{parent: b.scope, vars: make(map[string]*Node)}
	for _, s := range blk.Stmts {
		if sn := b.buildStmt(s); sn != nil {
			b.g.Edge(n, AST, sn)
		}
	}
	b.scope = b.scope.parent
	return n
}

func (b *builder) buildStmt(s solidity.Stmt) *Node {
	switch x := s.(type) {
	case nil:
		return nil
	case *solidity.Block:
		return b.buildBlock(x)
	case *solidity.ExprStmt:
		n := b.buildExpr(x.X)
		b.exprNode[x] = n
		return n
	case *solidity.VarDeclStmt:
		return b.buildVarDecl(x)
	case *solidity.IfStmt:
		n := b.g.NewNode(LIfStatement)
		n.Pos = x.Pos()
		n.Code = "if (" + solidity.ExprString(x.Cond) + ")"
		b.exprNode[x] = n
		if cn := b.buildExpr(x.Cond); cn != nil {
			b.g.Edge(n, CONDITION, cn)
			b.g.Edge(n, AST, cn)
		}
		if tn := b.buildStmt(x.Then); tn != nil {
			b.g.Edge(n, AST, tn)
		}
		if en := b.buildStmt(x.Else); en != nil {
			b.g.Edge(n, AST, en)
		}
		return n
	case *solidity.ForStmt:
		n := b.g.NewNode(LForStatement)
		n.Pos = x.Pos()
		b.exprNode[x] = n
		b.scope = &scope{parent: b.scope, vars: make(map[string]*Node)}
		if in := b.buildStmt(x.Init); in != nil {
			b.g.Edge(n, AST, in)
		}
		if cn := b.buildExpr(x.Cond); cn != nil {
			b.g.Edge(n, CONDITION, cn)
			b.g.Edge(n, AST, cn)
		}
		if pn := b.buildExpr(x.Post); pn != nil {
			b.g.Edge(n, AST, pn)
		}
		if bn := b.buildStmt(x.Body); bn != nil {
			b.g.Edge(n, AST, bn)
		}
		b.scope = b.scope.parent
		return n
	case *solidity.WhileStmt:
		n := b.g.NewNode(LWhileStatement)
		n.Pos = x.Pos()
		b.exprNode[x] = n
		if cn := b.buildExpr(x.Cond); cn != nil {
			b.g.Edge(n, CONDITION, cn)
			b.g.Edge(n, AST, cn)
		}
		if bn := b.buildStmt(x.Body); bn != nil {
			b.g.Edge(n, AST, bn)
		}
		return n
	case *solidity.DoWhileStmt:
		n := b.g.NewNode(LDoStatement)
		n.Pos = x.Pos()
		b.exprNode[x] = n
		if bn := b.buildStmt(x.Body); bn != nil {
			b.g.Edge(n, AST, bn)
		}
		if cn := b.buildExpr(x.Cond); cn != nil {
			b.g.Edge(n, CONDITION, cn)
			b.g.Edge(n, AST, cn)
		}
		return n
	case *solidity.ReturnStmt:
		n := b.g.NewNode(LReturnStatement)
		n.Pos = x.Pos()
		n.Code = "return"
		b.exprNode[x] = n
		if vn := b.buildExpr(x.Value); vn != nil {
			b.g.Edge(n, AST, vn)
		}
		if b.curFn != nil {
			b.curFn.returns = append(b.curFn.returns, n)
		}
		return n
	case *solidity.BreakStmt:
		n := b.g.NewNode(LBreakStatement)
		n.Pos = x.Pos()
		b.exprNode[x] = n
		return n
	case *solidity.ContinueStmt:
		n := b.g.NewNode(LContinueStatement)
		n.Pos = x.Pos()
		b.exprNode[x] = n
		return n
	case *solidity.ThrowStmt:
		n := b.g.NewNode(LRollback)
		n.Pos = x.Pos()
		n.Code = "throw"
		b.exprNode[x] = n
		return n
	case *solidity.EmitStmt:
		n := b.g.NewNode(LEmitStatement)
		n.Pos = x.Pos()
		b.exprNode[x] = n
		if cn := b.buildExpr(x.Call); cn != nil {
			b.g.Edge(n, AST, cn)
		}
		return n
	case *solidity.DeleteStmt:
		n := b.g.NewNode(LUnaryOperator)
		n.Operator = "delete"
		n.Code = "delete " + solidity.ExprString(x.X)
		n.Pos = x.Pos()
		b.exprNode[x] = n
		if xn := b.buildExpr(x.X); xn != nil {
			b.g.Edge(n, INPUT, xn)
			b.g.Edge(n, AST, xn)
		}
		return n
	case *solidity.PlaceholderStmt:
		// Only reachable in standalone (snippet-level) modifier bodies.
		return nil
	case *solidity.AssemblyStmt:
		n := b.g.NewNode(LAssemblyStatement)
		n.Code = x.Raw
		n.Pos = x.Pos()
		b.exprNode[x] = n
		return n
	case *solidity.UncheckedBlock:
		if x.Body == nil {
			return nil
		}
		n := b.buildBlock(x.Body)
		b.exprNode[x] = n
		return n
	case *solidity.TryStmt:
		n := b.g.NewNode(LBlock)
		n.Pos = x.Pos()
		b.exprNode[x] = n
		if cn := b.buildExpr(x.Call); cn != nil {
			b.g.Edge(n, AST, cn)
		}
		if x.Body != nil {
			b.g.Edge(n, AST, b.buildBlock(x.Body))
		}
		for _, c := range x.Catches {
			if c.Body != nil {
				b.g.Edge(n, AST, b.buildBlock(c.Body))
			}
		}
		return n
	}
	return nil
}

func (b *builder) buildVarDecl(x *solidity.VarDeclStmt) *Node {
	var first *Node
	for _, d := range x.Decls {
		if d == nil {
			continue
		}
		dn := b.g.NewNode(LVariableDeclaration)
		dn.LocalName = d.Name
		dn.Code = b.snippet(d)
		if dn.Code == "" {
			dn.Code = solidity.TypeString(d.Type) + " " + d.Name
		}
		dn.TypeName = solidity.TypeString(d.Type)
		if d.Storage != "" {
			dn.Code = dn.Code + " " + d.Storage
		}
		dn.Pos = d.Pos()
		b.attachType(dn, d.Type)
		b.scope.declare(d.Name, dn)
		b.exprNode[d] = dn
		if first == nil {
			first = dn
		}
	}
	b.exprNode[x] = first
	if vn := b.buildExpr(x.Value); vn != nil && first != nil {
		b.g.Edge(first, INITIALIZER, vn)
		b.g.Edge(first, AST, vn)
	}
	return first
}

// builtinGlobals are magic Solidity globals; references to them resolve to
// nothing and act as data-flow sources.
var builtinGlobals = map[string]bool{
	"msg": true, "tx": true, "block": true, "this": true, "now": true,
	"abi": true, "super": true,
}

func (b *builder) buildExpr(e solidity.Expr) *Node {
	switch x := e.(type) {
	case nil:
		return nil
	case *solidity.Ident:
		n := b.g.NewNode(LDeclaredReference)
		n.LocalName = x.Name
		n.Code = x.Name
		n.Pos = x.Pos()
		b.exprNode[x] = n
		b.resolveRef(n, x.Name)
		return n
	case *solidity.NumberLit:
		n := b.g.NewNode(LLiteral)
		n.Value = x.Value
		n.Code = solidity.ExprString(x)
		n.Pos = x.Pos()
		b.exprNode[x] = n
		return n
	case *solidity.StringLit:
		n := b.g.NewNode(LLiteral)
		n.Value = x.Value
		n.Code = solidity.ExprString(x)
		n.Pos = x.Pos()
		b.exprNode[x] = n
		return n
	case *solidity.BoolLit:
		n := b.g.NewNode(LLiteral)
		n.Code = solidity.ExprString(x)
		n.Value = n.Code
		n.Pos = x.Pos()
		b.exprNode[x] = n
		return n
	case *solidity.MemberAccess:
		n := b.g.NewNode(LMemberExpression)
		n.LocalName = x.Member
		n.Code = solidity.ExprString(x)
		n.Pos = x.Pos()
		b.exprNode[x] = n
		if bn := b.buildExpr(x.X); bn != nil {
			b.g.Edge(n, BASE, bn)
			b.g.Edge(n, AST, bn)
		}
		// `this.field` resolves to the contract's field.
		if id, ok := x.X.(*solidity.Ident); ok && id.Name == "this" && b.cur != nil {
			if f := b.lookupField(b.cur, x.Member); f != nil {
				b.g.Edge(n, REFERS_TO, f)
			}
		}
		return n
	case *solidity.IndexAccess:
		n := b.g.NewNode(LSubscriptExpression)
		n.Code = solidity.ExprString(x)
		n.Pos = x.Pos()
		b.exprNode[x] = n
		if bn := b.buildExpr(x.X); bn != nil {
			b.g.Edge(n, ARRAY_EXPRESSION, bn)
			b.g.Edge(n, AST, bn)
		}
		if in := b.buildExpr(x.Index); in != nil {
			b.g.Edge(n, SUBSCRIPT_EXPRESSION, in)
			b.g.Edge(n, AST, in)
		}
		return n
	case *solidity.CallExpr:
		return b.buildCall(x)
	case *solidity.NewExpr:
		n := b.g.NewNode(LNewExpression)
		n.Code = solidity.ExprString(x)
		n.LocalName = baseTypeName(solidity.TypeString(x.Type))
		n.Pos = x.Pos()
		b.exprNode[x] = n
		return n
	case *solidity.TypeExpr:
		n := b.g.NewNode(LTypeExpression)
		n.Code = solidity.TypeString(x.Type)
		n.LocalName = baseTypeName(n.Code)
		n.Pos = x.Pos()
		b.exprNode[x] = n
		return n
	case *solidity.BinaryExpr:
		n := b.g.NewNode(LBinaryOperator)
		n.Operator = x.Op.String()
		n.Code = solidity.ExprString(x)
		n.Pos = x.Pos()
		b.exprNode[x] = n
		if ln := b.buildExpr(x.LHS); ln != nil {
			b.g.Edge(n, LHS, ln)
			b.g.Edge(n, AST, ln)
		}
		if rn := b.buildExpr(x.RHS); rn != nil {
			b.g.Edge(n, RHS, rn)
			b.g.Edge(n, AST, rn)
		}
		return n
	case *solidity.UnaryExpr:
		n := b.g.NewNode(LUnaryOperator)
		n.Operator = x.Op.String()
		n.Code = solidity.ExprString(x)
		n.Pos = x.Pos()
		b.exprNode[x] = n
		if xn := b.buildExpr(x.X); xn != nil {
			b.g.Edge(n, INPUT, xn)
			b.g.Edge(n, AST, xn)
		}
		return n
	case *solidity.ConditionalExpr:
		n := b.g.NewNode(LConditionalExpression)
		n.Code = solidity.ExprString(x)
		n.Pos = x.Pos()
		b.exprNode[x] = n
		if cn := b.buildExpr(x.Cond); cn != nil {
			b.g.Edge(n, CONDITION, cn)
			b.g.Edge(n, AST, cn)
		}
		if tn := b.buildExpr(x.Then); tn != nil {
			b.g.Edge(n, LHS, tn)
			b.g.Edge(n, AST, tn)
		}
		if en := b.buildExpr(x.Else); en != nil {
			b.g.Edge(n, RHS, en)
			b.g.Edge(n, AST, en)
		}
		return n
	case *solidity.TupleExpr:
		n := b.g.NewNode(LTupleExpression)
		n.Code = solidity.ExprString(x)
		n.Pos = x.Pos()
		b.exprNode[x] = n
		for _, el := range x.Elems {
			if en := b.buildExpr(el); en != nil {
				b.g.Edge(n, AST, en)
			}
		}
		return n
	}
	return nil
}

// resolveRef adds a REFERS_TO edge for a name reference: locals, parameters,
// then contract fields through the inheritance chain. Unresolvable names in
// value position are inferred as fields of the enclosing contract — snippets
// routinely reference state variables whose declarations were not posted
// (Section 4.2 of the paper).
func (b *builder) resolveRef(n *Node, name string) {
	if builtinGlobals[name] {
		return
	}
	if b.scope != nil {
		if d := b.scope.lookup(name); d != nil {
			b.g.Edge(n, REFERS_TO, d)
			return
		}
	}
	if b.cur != nil {
		if f := b.lookupField(b.cur, name); f != nil {
			b.g.Edge(n, REFERS_TO, f)
			return
		}
		if b.noInfer || b.curFn == nil {
			return
		}
		f := b.g.NewNode(LFieldDeclaration)
		f.LocalName = name
		f.Code = name
		f.Inferred = true
		f.Pos = n.Pos
		b.g.Edge(b.cur.node, FIELDS, f)
		b.g.Edge(b.cur.node, AST, f)
		b.cur.fields[name] = f
		b.g.Edge(n, REFERS_TO, f)
	}
}

// rollbackCallees are built-in functions that conditionally revert; they get
// an attached Rollback successor in the EOG.
var rollbackCallees = map[string]bool{"require": true, "assert": true}

func (b *builder) buildCall(x *solidity.CallExpr) *Node {
	name, baseName := calleeName(x.Callee)

	n := b.g.NewNode(LCallExpression)
	n.LocalName = name
	n.Code = solidity.ExprString(x)
	n.Pos = x.Pos()
	b.exprNode[x] = n

	if name == "revert" {
		n.AddLabel(LRollback)
	}

	// Callee structure. For calls with {value:..., gas:...} options a
	// SpecifiedExpression wraps the underlying callee. Direct identifier
	// callees never infer fields (they name functions, events or types).
	if _, isIdent := x.Callee.(*solidity.Ident); isIdent {
		b.noInfer = true
	}
	calleeNode := b.buildExpr(x.Callee)
	b.noInfer = false
	if len(x.Options) > 0 {
		spec := b.g.NewNode(LSpecifiedExpression)
		spec.Code = solidity.ExprString(x.Callee)
		spec.Pos = x.Pos()
		for _, opt := range x.Options {
			kv := b.g.NewNode(LKeyValueExpression)
			kv.Code = opt.Key + ": " + solidity.ExprString(opt.Value)
			kv.Pos = opt.Pos()
			key := b.g.NewNode(LLiteral)
			key.LocalName = opt.Key
			key.Value = opt.Key
			key.Code = opt.Key
			b.g.Edge(kv, KEY, key)
			if vn := b.buildExpr(opt.Value); vn != nil {
				b.g.Edge(kv, VALUE, vn)
				b.g.Edge(kv, AST, vn)
			}
			b.g.Edge(spec, SPECIFIERS, kv)
			b.g.Edge(spec, AST, kv)
		}
		if calleeNode != nil {
			b.g.Edge(spec, BASE, calleeNode)
			b.g.Edge(spec, AST, calleeNode)
		}
		b.g.Edge(n, CALLEE, spec)
		b.g.Edge(n, AST, spec)
	} else if calleeNode != nil {
		b.g.Edge(n, CALLEE, calleeNode)
		b.g.Edge(n, AST, calleeNode)
	}
	// BASE edge of the call points at the receiver for member calls.
	if ma, ok := x.Callee.(*solidity.MemberAccess); ok {
		if recv := b.exprNode[ma.X]; recv != nil {
			b.g.Edge(n, BASE, recv)
		}
	}

	var argNodes []*Node
	for i, a := range x.Args {
		an := b.buildExpr(a)
		if an == nil {
			continue
		}
		an.Index = i
		b.g.Edge(n, ARGUMENTS, an)
		b.g.Edge(n, AST, an)
		argNodes = append(argNodes, an)
	}

	if rollbackCallees[name] {
		rb := b.g.NewNode(LRollback)
		rb.Code = "revert"
		rb.Pos = x.Pos()
		b.rollbackOf[n] = rb
	}

	// Schedule for call resolution unless it is a builtin.
	if !builtinCallees[name] && b.cur != nil {
		b.pendingCalls = append(b.pendingCalls, pendingCall{
			node: n, contract: b.cur, name: name, baseName: baseName, args: argNodes,
		})
	}
	return n
}

// builtinCallees never resolve to user functions.
var builtinCallees = map[string]bool{
	"require": true, "assert": true, "revert": true,
	"transfer": true, "send": true, "call": true, "delegatecall": true,
	"callcode": true, "staticcall": true,
	"selfdestruct": true, "suicide": true,
	"keccak256": true, "sha3": true, "sha256": true, "ripemd160": true,
	"ecrecover": true, "addmod": true, "mulmod": true, "blockhash": true,
	"encode": true, "encodePacked": true, "encodeWithSelector": true,
	"encodeWithSignature": true, "decode": true,
	"push": true, "pop": true, "value": true, "gas": true,
}

// calleeName extracts the unqualified call name and (for one-hop qualified
// calls) the base name.
func calleeName(callee solidity.Expr) (name, baseName string) {
	switch c := callee.(type) {
	case *solidity.Ident:
		return c.Name, ""
	case *solidity.MemberAccess:
		if id, ok := c.X.(*solidity.Ident); ok {
			return c.Member, id.Name
		}
		return c.Member, ""
	case *solidity.TypeExpr:
		return baseTypeName(solidity.TypeString(c.Type)), ""
	case *solidity.CallExpr:
		// Chained calls like addr.call.value(1)(data): the outer call's
		// callee is itself a call; name after the chain is empty.
		n, _ := calleeName(c.Callee)
		return n, ""
	}
	return "", ""
}
