package cpg

import (
	"repro/internal/solidity"
)

// DFG pass: adds Data Flow Graph edges. Values flow from operands into
// operators, from initializers into declarations, from writes through the
// written reference into its declaration, and from declarations into the
// references that read them. This routing through declaration nodes mirrors
// the CPG library the paper builds on and is what its queries traverse
// (e.g. Parameter -[:DFG*]-> FieldDeclaration for persisted inputs).

func (b *builder) dfgFunction(bf builtFn) {
	if bf.body == nil {
		return
	}
	b.dfgStmt(bf.body)
}

func (b *builder) dfgStmt(s solidity.Stmt) {
	switch x := s.(type) {
	case nil:
	case *solidity.Block:
		for _, st := range x.Stmts {
			b.dfgStmt(st)
		}
	case *solidity.ExprStmt:
		b.dfgExpr(x.X)
	case *solidity.VarDeclStmt:
		v := b.dfgExpr(x.Value)
		if v == nil {
			return
		}
		if tup, ok := x.Value.(*solidity.TupleExpr); ok && len(tup.Elems) == len(x.Decls) {
			// Positional tuple assignment.
			for i, d := range x.Decls {
				if d == nil {
					continue
				}
				if ev := b.exprNode[nodeOrNil(tup.Elems[i])]; ev != nil {
					b.g.Edge(ev, DFG, b.exprNode[d])
				}
			}
			return
		}
		for _, d := range x.Decls {
			if d == nil {
				continue
			}
			b.g.Edge(v, DFG, b.exprNode[d])
		}
	case *solidity.IfStmt:
		if c := b.dfgExpr(x.Cond); c != nil {
			b.g.Edge(c, DFG, b.exprNode[x])
		}
		b.dfgStmt(x.Then)
		b.dfgStmt(x.Else)
	case *solidity.WhileStmt:
		if c := b.dfgExpr(x.Cond); c != nil {
			b.g.Edge(c, DFG, b.exprNode[x])
		}
		b.dfgStmt(x.Body)
	case *solidity.ForStmt:
		b.dfgStmt(x.Init)
		if c := b.dfgExpr(x.Cond); c != nil {
			b.g.Edge(c, DFG, b.exprNode[x])
		}
		b.dfgExpr(x.Post)
		b.dfgStmt(x.Body)
	case *solidity.DoWhileStmt:
		b.dfgStmt(x.Body)
		if c := b.dfgExpr(x.Cond); c != nil {
			b.g.Edge(c, DFG, b.exprNode[x])
		}
	case *solidity.ReturnStmt:
		if v := b.dfgExpr(x.Value); v != nil {
			b.g.Edge(v, DFG, b.exprNode[x])
		}
	case *solidity.EmitStmt:
		b.dfgExpr(x.Call)
	case *solidity.DeleteStmt:
		n := b.exprNode[x]
		b.dfgWrite(x.X, n)
	case *solidity.UncheckedBlock:
		if x.Body != nil {
			b.dfgStmt(x.Body)
		}
	case *solidity.TryStmt:
		b.dfgExpr(x.Call)
		if x.Body != nil {
			b.dfgStmt(x.Body)
		}
		for _, c := range x.Catches {
			if c.Body != nil {
				b.dfgStmt(c.Body)
			}
		}
	}
}

func nodeOrNil(e solidity.Expr) solidity.Node {
	if e == nil {
		return nil
	}
	return e
}

// dfgExpr adds data-flow edges for reading an expression and returns its
// value node.
func (b *builder) dfgExpr(e solidity.Expr) *Node {
	switch x := e.(type) {
	case nil:
		return nil
	case *solidity.Ident:
		n := b.exprNode[x]
		if n == nil {
			return nil
		}
		if decl := refTarget(n); decl != nil {
			b.g.Edge(decl, DFG, n)
		}
		return n
	case *solidity.NumberLit, *solidity.StringLit, *solidity.BoolLit,
		*solidity.NewExpr, *solidity.TypeExpr:
		return b.exprNode[x.(solidity.Node)]
	case *solidity.MemberAccess:
		n := b.exprNode[x]
		if base := b.dfgExpr(x.X); base != nil && n != nil {
			b.g.Edge(base, DFG, n)
		}
		if n != nil {
			if decl := refTarget(n); decl != nil {
				b.g.Edge(decl, DFG, n)
			}
		}
		return n
	case *solidity.IndexAccess:
		n := b.exprNode[x]
		if base := b.dfgExpr(x.X); base != nil && n != nil {
			b.g.Edge(base, DFG, n)
		}
		if idx := b.dfgExpr(x.Index); idx != nil && n != nil {
			b.g.Edge(idx, DFG, n)
		}
		return n
	case *solidity.BinaryExpr:
		n := b.exprNode[x]
		if x.Op.IsAssignOp() {
			rhs := b.dfgExpr(x.RHS)
			if x.Op != solidity.ASSIGN {
				// Compound assignment also reads the target.
				if lhs := b.dfgExpr(x.LHS); lhs != nil && n != nil {
					b.g.Edge(lhs, DFG, n)
				}
			}
			if rhs != nil && n != nil {
				b.g.Edge(rhs, DFG, n)
			}
			b.dfgWrite(x.LHS, n)
			return n
		}
		if lhs := b.dfgExpr(x.LHS); lhs != nil && n != nil {
			b.g.Edge(lhs, DFG, n)
		}
		if rhs := b.dfgExpr(x.RHS); rhs != nil && n != nil {
			b.g.Edge(rhs, DFG, n)
		}
		return n
	case *solidity.UnaryExpr:
		n := b.exprNode[x]
		if v := b.dfgExpr(x.X); v != nil && n != nil {
			b.g.Edge(v, DFG, n)
		}
		if x.Op == solidity.INC || x.Op == solidity.DEC || x.Op == solidity.KwDelete {
			b.dfgWrite(x.X, n)
		}
		return n
	case *solidity.ConditionalExpr:
		n := b.exprNode[x]
		if c := b.dfgExpr(x.Cond); c != nil && n != nil {
			b.g.Edge(c, DFG, n)
		}
		if t := b.dfgExpr(x.Then); t != nil && n != nil {
			b.g.Edge(t, DFG, n)
		}
		if el := b.dfgExpr(x.Else); el != nil && n != nil {
			b.g.Edge(el, DFG, n)
		}
		return n
	case *solidity.TupleExpr:
		n := b.exprNode[x]
		for _, el := range x.Elems {
			if v := b.dfgExpr(el); v != nil && n != nil {
				b.g.Edge(v, DFG, n)
			}
		}
		return n
	case *solidity.CallExpr:
		n := b.exprNode[x]
		b.dfgExpr(x.Callee)
		for _, opt := range x.Options {
			b.dfgExpr(opt.Value)
		}
		resolved := n != nil && len(n.Out(INVOKES)) > 0
		for _, a := range x.Args {
			v := b.dfgExpr(a)
			if v != nil && n != nil && !resolved {
				// Data flows into unresolved (external/builtin) calls; for
				// resolved calls it flows into the parameters instead
				// (added during call resolution).
				b.g.Edge(v, DFG, n)
			}
		}
		// The callee base taints the call result for member calls
		// (e.g. bad randomness: blockhash(...) result flows onward).
		if ma, ok := x.Callee.(*solidity.MemberAccess); ok {
			if recv := b.exprNode[nodeOrNil(ma.X)]; recv != nil && n != nil {
				b.g.Edge(recv, DFG, n)
			}
		}
		return n
	}
	return nil
}

// dfgWrite records a write of value into target: the value flows into the
// target's expression node and onward into the written declaration.
func (b *builder) dfgWrite(target solidity.Expr, value *Node) {
	switch t := target.(type) {
	case nil:
	case *solidity.Ident:
		n := b.exprNode[t]
		if n == nil {
			return
		}
		if value != nil {
			b.g.Edge(value, DFG, n)
		}
		if decl := refTarget(n); decl != nil {
			b.g.Edge(n, DFG, decl)
		}
	case *solidity.MemberAccess:
		n := b.exprNode[t]
		if n == nil {
			return
		}
		b.dfgExpr(t.X) // base is read
		if value != nil {
			b.g.Edge(value, DFG, n)
		}
		if decl := refTarget(n); decl != nil {
			b.g.Edge(n, DFG, decl)
		} else if decl := b.rootDecl(t.X); decl != nil {
			// Writing a struct member writes the root variable.
			b.g.Edge(n, DFG, decl)
		}
	case *solidity.IndexAccess:
		n := b.exprNode[t]
		if n == nil {
			return
		}
		b.dfgExpr(t.X)
		b.dfgExpr(t.Index)
		if value != nil {
			b.g.Edge(value, DFG, n)
		}
		if decl := b.rootDecl(t.X); decl != nil {
			b.g.Edge(n, DFG, decl)
		}
	case *solidity.TupleExpr:
		for _, el := range t.Elems {
			b.dfgWrite(el, value)
		}
	default:
		// Writes to computed targets: read them.
		b.dfgExpr(target)
	}
}

// rootDecl finds the declaration of the base-most reference of an lvalue.
func (b *builder) rootDecl(e solidity.Expr) *Node {
	switch t := e.(type) {
	case *solidity.Ident:
		return refTarget(b.exprNode[t])
	case *solidity.MemberAccess:
		if n := b.exprNode[t]; n != nil {
			if d := refTarget(n); d != nil {
				return d
			}
		}
		return b.rootDecl(t.X)
	case *solidity.IndexAccess:
		return b.rootDecl(t.X)
	}
	return nil
}

func refTarget(n *Node) *Node {
	if n == nil {
		return nil
	}
	if outs := n.Out(REFERS_TO); len(outs) > 0 {
		return outs[0]
	}
	return nil
}
