// Package cpg builds a Code Property Graph from Solidity ASTs.
//
// A CPG is a directed attributed graph whose nodes embody syntactic elements
// and whose edges carry program semantics. This package reproduces the graph
// layers the paper's CCC tool relies on:
//
//   - Syntax: AST edges forming the structural backbone.
//   - Order: Evaluation Order Graph (EOG) edges modeling control flow and
//     evaluation order (operands before operators).
//   - Data flow: DFG edges describing how values propagate, routed through
//     variable declarations (writes flow into declarations, declarations
//     flow into reads).
//
// Additional edge kinds cover reference resolution (REFERS_TO), call targets
// (INVOKES/RETURNS) and fine-grained structure (LHS, RHS, CONDITION,
// ARGUMENTS, BASE, CALLEE, ...). Solidity-specific node labels added by the
// paper — most importantly Rollback for transaction-reverting control flow —
// are reproduced as well.
package cpg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/solidity"
)

// Label classifies a node. Nodes may carry several labels (e.g. a
// ParamVariableDeclaration is also a VariableDeclaration).
type Label string

// Node labels mirroring the CPG library vocabulary used by the paper's
// queries.
const (
	LTranslationUnit       Label = "TranslationUnit"
	LRecordDeclaration     Label = "RecordDeclaration"
	LFieldDeclaration      Label = "FieldDeclaration"
	LFunctionDeclaration   Label = "FunctionDeclaration"
	LConstructorDecl       Label = "ConstructorDeclaration"
	LModifierDeclaration   Label = "ModifierDeclaration"
	LEventDeclaration      Label = "EventDeclaration"
	LParamVariableDecl     Label = "ParamVariableDeclaration"
	LVariableDeclaration   Label = "VariableDeclaration"
	LDeclaredReference     Label = "DeclaredReferenceExpression"
	LMemberExpression      Label = "MemberExpression"
	LCallExpression        Label = "CallExpression"
	LBinaryOperator        Label = "BinaryOperator"
	LUnaryOperator         Label = "UnaryOperator"
	LLiteral               Label = "Literal"
	LReturnStatement       Label = "ReturnStatement"
	LIfStatement           Label = "IfStatement"
	LForStatement          Label = "ForStatement"
	LForEachStatement      Label = "ForEachStatement"
	LWhileStatement        Label = "WhileStatement"
	LDoStatement           Label = "DoStatement"
	LBlock                 Label = "Block"
	LRollback              Label = "Rollback"
	LEmitStatement         Label = "EmitStatement"
	LSpecifiedExpression   Label = "SpecifiedExpression"
	LKeyValueExpression    Label = "KeyValueExpression"
	LSubscriptExpression   Label = "SubscriptExpression"
	LConditionalExpression Label = "ConditionalExpression"
	LNewExpression         Label = "NewExpression"
	LTypeExpression        Label = "TypeExpression"
	LTupleExpression       Label = "TupleExpression"
	LAssemblyStatement     Label = "AssemblyStatement"
	LBreakStatement        Label = "BreakStatement"
	LContinueStatement     Label = "ContinueStatement"
	LTypeNode              Label = "Type"
	LObjectType            Label = "ObjectType"
)

// EdgeKind identifies the semantic relation an edge carries.
type EdgeKind int

// Edge kinds used by the paper's queries.
const (
	AST EdgeKind = iota
	EOG
	DFG
	REFERS_TO
	INVOKES
	RETURNS
	ARGUMENTS
	BASE
	CALLEE
	LHS
	RHS
	CONDITION
	BODY
	PARAMETERS
	FIELDS
	TYPE
	INITIALIZER
	KEY
	VALUE
	SPECIFIERS
	ARRAY_EXPRESSION
	SUBSCRIPT_EXPRESSION
	INPUT
	numEdgeKinds
)

var edgeKindNames = [...]string{
	"AST", "EOG", "DFG", "REFERS_TO", "INVOKES", "RETURNS", "ARGUMENTS",
	"BASE", "CALLEE", "LHS", "RHS", "CONDITION", "BODY", "PARAMETERS",
	"FIELDS", "TYPE", "INITIALIZER", "KEY", "VALUE", "SPECIFIERS",
	"ARRAY_EXPRESSION", "SUBSCRIPT_EXPRESSION", "INPUT",
}

func (k EdgeKind) String() string {
	if int(k) < len(edgeKindNames) {
		return edgeKindNames[k]
	}
	return fmt.Sprintf("EdgeKind(%d)", int(k))
}

// Node is a CPG node.
type Node struct {
	ID     int
	labels map[Label]bool

	// Code is the canonical source text of the node (e.g. "msg.sender").
	Code string
	// LocalName is the unqualified name (function name, called member, ...).
	LocalName string
	// Operator is the operator code for BinaryOperator/UnaryOperator nodes.
	Operator string
	// Value is the literal value for Literal nodes.
	Value string
	// Kind is the record kind for RecordDeclaration nodes ("contract",
	// "struct", ...).
	Kind string
	// TypeName is the declared type for variables/fields/params.
	TypeName string
	// Index is the positional index for ARGUMENTS/PARAMETERS edges.
	Index int
	// Inferred marks nodes synthesized for incomplete snippets.
	Inferred bool
	// Pos is the source position of the underlying syntax.
	Pos solidity.Position

	out [numEdgeKinds][]*Node
	in  [numEdgeKinds][]*Node
}

// Is reports whether the node carries the given label.
func (n *Node) Is(l Label) bool { return n.labels[l] }

// Labels returns the node's labels in sorted order.
func (n *Node) Labels() []string {
	out := make([]string, 0, len(n.labels))
	for l := range n.labels {
		out = append(out, string(l))
	}
	sort.Strings(out)
	return out
}

// AddLabel attaches an additional label.
func (n *Node) AddLabel(l Label) {
	n.labels[l] = true
}

// Out returns the targets of the node's outgoing edges of the given kind.
func (n *Node) Out(kind EdgeKind) []*Node { return n.out[kind] }

// In returns the sources of the node's incoming edges of the given kind.
func (n *Node) In(kind EdgeKind) []*Node { return n.in[kind] }

// OutAny returns targets across any of the given kinds.
func (n *Node) OutAny(kinds ...EdgeKind) []*Node {
	var out []*Node
	for _, k := range kinds {
		out = append(out, n.out[k]...)
	}
	return out
}

// InAny returns sources across any of the given kinds.
func (n *Node) InAny(kinds ...EdgeKind) []*Node {
	var out []*Node
	for _, k := range kinds {
		out = append(out, n.in[k]...)
	}
	return out
}

func (n *Node) String() string {
	l := "?"
	if len(n.labels) > 0 {
		l = strings.Join(n.Labels(), "|")
	}
	code := n.Code
	if len(code) > 40 {
		code = code[:37] + "..."
	}
	return fmt.Sprintf("#%d[%s]%q", n.ID, l, code)
}

// Graph is a complete code property graph for one translation unit.
type Graph struct {
	Nodes []*Node
	Root  *Node // TranslationUnit node

	byLabel map[Label][]*Node
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{byLabel: make(map[Label][]*Node)}
}

// NewNode allocates a node with the given primary label.
func (g *Graph) NewNode(l Label) *Node {
	n := &Node{ID: len(g.Nodes), labels: map[Label]bool{l: true}}
	g.Nodes = append(g.Nodes, n)
	g.byLabel[l] = append(g.byLabel[l], n)
	return n
}

// Index registers any labels added after node creation; call after building.
func (g *Graph) Index() {
	g.byLabel = make(map[Label][]*Node, len(g.byLabel))
	for _, n := range g.Nodes {
		for l := range n.labels {
			g.byLabel[l] = append(g.byLabel[l], n)
		}
	}
}

// ByLabel returns all nodes carrying the label.
func (g *Graph) ByLabel(l Label) []*Node { return g.byLabel[l] }

// Edge adds a directed edge of the given kind.
func (g *Graph) Edge(from *Node, kind EdgeKind, to *Node) {
	if from == nil || to == nil {
		return
	}
	from.out[kind] = append(from.out[kind], to)
	to.in[kind] = append(to.in[kind], from)
}

// HasEdge reports whether a direct edge from → to of the given kind exists.
func (g *Graph) HasEdge(from *Node, kind EdgeKind, to *Node) bool {
	for _, t := range from.out[kind] {
		if t == to {
			return true
		}
	}
	return false
}

// EdgeCount returns the total number of edges of the given kind.
func (g *Graph) EdgeCount(kind EdgeKind) int {
	total := 0
	for _, n := range g.Nodes {
		total += len(n.out[kind])
	}
	return total
}
