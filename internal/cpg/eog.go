package cpg

import (
	"repro/internal/solidity"
)

// EOG pass: adds Evaluation Order Graph edges modeling control flow and
// evaluation order (operands are evaluated before their operators, cf.
// Figure 2 of the paper). Branching nodes (if/loops/require) have multiple
// EOG successors; nodes that terminate execution (return, revert, throw)
// have none.

// flow is the entry node and the set of open exits of a subgraph.
type flow struct {
	entry *Node
	exits []*Node
}

func (f flow) empty() bool { return f.entry == nil }

// loopCtx tracks break/continue targets while building loop bodies.
type loopCtx struct {
	breaks       []*Node // nodes whose EOG continues at the loop exit
	continueNode *Node   // target of continue edges
}

type eogBuilder struct {
	b     *builder
	loops []*loopCtx
}

func (b *builder) eogFunction(bf builtFn) {
	if bf.body == nil {
		return
	}
	e := &eogBuilder{b: b}
	f := e.stmt(bf.body)
	if f.entry != nil {
		b.g.Edge(bf.info.node, EOG, f.entry)
	}
	// Open exits terminate the function; they simply keep no outgoing EOG
	// edges, which is what queries test for ("last" nodes).
}

// connect wires every exit to entry.
func (e *eogBuilder) connect(exits []*Node, entry *Node) {
	if entry == nil {
		return
	}
	for _, x := range exits {
		e.b.g.Edge(x, EOG, entry)
	}
}

// seq chains two flows, returning the combined flow.
func (e *eogBuilder) seq(a, b flow) flow {
	if a.empty() {
		return b
	}
	if b.empty() {
		return a
	}
	e.connect(a.exits, b.entry)
	return flow{entry: a.entry, exits: b.exits}
}

func (e *eogBuilder) node(n *Node) flow {
	if n == nil {
		return flow{}
	}
	return flow{entry: n, exits: []*Node{n}}
}

// --- statements -------------------------------------------------------------

func (e *eogBuilder) stmt(s solidity.Stmt) flow {
	switch x := s.(type) {
	case nil:
		return flow{}
	case *solidity.Block:
		f := flow{}
		for _, st := range x.Stmts {
			f = e.seq(f, e.stmt(st))
		}
		return f
	case *solidity.ExprStmt:
		return e.expr(x.X)
	case *solidity.VarDeclStmt:
		f := e.expr(x.Value)
		for _, d := range x.Decls {
			if d == nil {
				continue
			}
			f = e.seq(f, e.node(e.b.exprNode[d]))
		}
		return f
	case *solidity.IfStmt:
		ifNode := e.b.exprNode[x]
		cond := e.seq(e.expr(x.Cond), e.node(ifNode))
		then := e.stmt(x.Then)
		var exits []*Node
		if !then.empty() {
			e.b.g.Edge(ifNode, EOG, then.entry)
			exits = append(exits, then.exits...)
		} else {
			exits = append(exits, ifNode)
		}
		if x.Else != nil {
			els := e.stmt(x.Else)
			if !els.empty() {
				e.b.g.Edge(ifNode, EOG, els.entry)
				exits = append(exits, els.exits...)
			} else {
				exits = append(exits, ifNode)
			}
		} else {
			exits = append(exits, ifNode)
		}
		return flow{entry: cond.entry, exits: exits}
	case *solidity.WhileStmt:
		return e.loop(e.b.exprNode[x], nil, x.Cond, nil, x.Body)
	case *solidity.ForStmt:
		return e.loop(e.b.exprNode[x], x.Init, x.Cond, x.Post, x.Body)
	case *solidity.DoWhileStmt:
		return e.doWhile(x)
	case *solidity.ReturnStmt:
		f := e.seq(e.expr(x.Value), e.node(e.b.exprNode[x]))
		return flow{entry: f.entry} // terminal: no exits
	case *solidity.BreakStmt:
		n := e.b.exprNode[x]
		if len(e.loops) > 0 {
			lc := e.loops[len(e.loops)-1]
			lc.breaks = append(lc.breaks, n)
		}
		return flow{entry: n}
	case *solidity.ContinueStmt:
		n := e.b.exprNode[x]
		if len(e.loops) > 0 {
			lc := e.loops[len(e.loops)-1]
			if lc.continueNode != nil {
				e.b.g.Edge(n, EOG, lc.continueNode)
			}
		}
		return flow{entry: n}
	case *solidity.ThrowStmt:
		return flow{entry: e.b.exprNode[x]} // Rollback, terminal
	case *solidity.EmitStmt:
		return e.seq(e.expr(x.Call), e.node(e.b.exprNode[x]))
	case *solidity.DeleteStmt:
		return e.seq(e.expr(x.X), e.node(e.b.exprNode[x]))
	case *solidity.PlaceholderStmt:
		return flow{}
	case *solidity.AssemblyStmt:
		return e.node(e.b.exprNode[x])
	case *solidity.UncheckedBlock:
		if x.Body == nil {
			return flow{}
		}
		return e.stmt(x.Body)
	case *solidity.TryStmt:
		call := e.expr(x.Call)
		if call.empty() {
			return flow{}
		}
		var exits []*Node
		body := e.blockFlow(x.Body)
		if !body.empty() {
			e.connect(call.exits, body.entry)
			exits = append(exits, body.exits...)
		} else {
			exits = append(exits, call.exits...)
		}
		for _, c := range x.Catches {
			cf := e.blockFlow(c.Body)
			if !cf.empty() {
				e.connect(call.exits, cf.entry)
				exits = append(exits, cf.exits...)
			}
		}
		return flow{entry: call.entry, exits: exits}
	}
	return flow{}
}

func (e *eogBuilder) blockFlow(b *solidity.Block) flow {
	if b == nil {
		return flow{}
	}
	return e.stmt(b)
}

// loop builds for/while loops:
//
//	init → cond → loopNode → body → post → cond (back edge via entry)
//
// The loop node is the branch point: one successor enters the body, and the
// loop node itself remains an open exit (loop termination). This yields the
// cycle pattern (b)-[:EOG*]->(cond)-[:EOG]->(b) that the paper's expensive-
// loop query matches.
func (e *eogBuilder) loop(loopNode *Node, init solidity.Stmt, cond solidity.Expr, post solidity.Expr, body solidity.Stmt) flow {
	initF := e.stmt(init)
	condF := e.expr(cond)
	postF := e.expr(post)

	lc := &loopCtx{}
	if !postF.empty() {
		lc.continueNode = postF.entry
	} else if !condF.empty() {
		lc.continueNode = condF.entry
	} else {
		lc.continueNode = loopNode
	}
	e.loops = append(e.loops, lc)
	bodyF := e.stmt(body)
	e.loops = e.loops[:len(e.loops)-1]

	// head = cond → loopNode (or just loopNode without condition).
	head := e.seq(condF, e.node(loopNode))

	entry := head.entry
	if !initF.empty() {
		e.connect(initF.exits, head.entry)
		entry = initF.entry
	}
	// loopNode → body; body → post → cond (back).
	if !bodyF.empty() {
		e.b.g.Edge(loopNode, EOG, bodyF.entry)
		back := bodyF
		if !postF.empty() {
			e.connect(back.exits, postF.entry)
			back = flow{entry: back.entry, exits: postF.exits}
		}
		e.connect(back.exits, head.entry)
	} else {
		// Empty body: loopNode loops straight back to the condition.
		e.b.g.Edge(loopNode, EOG, head.entry)
	}
	exits := append([]*Node{loopNode}, lc.breaks...)
	return flow{entry: entry, exits: exits}
}

func (e *eogBuilder) doWhile(x *solidity.DoWhileStmt) flow {
	doNode := e.b.exprNode[x]
	condF := e.expr(x.Cond)

	lc := &loopCtx{}
	if !condF.empty() {
		lc.continueNode = condF.entry
	} else {
		lc.continueNode = doNode
	}
	e.loops = append(e.loops, lc)
	bodyF := e.stmt(x.Body)
	e.loops = e.loops[:len(e.loops)-1]

	f := e.node(doNode)
	f = e.seq(f, bodyF)
	if !condF.empty() {
		e.connect(f.exits, condF.entry)
		// Back edge from the condition to the do node plus the loop exit.
		for _, x := range condF.exits {
			e.b.g.Edge(x, EOG, doNode)
		}
		return flow{entry: doNode, exits: append(condF.exits, lc.breaks...)}
	}
	e.connect(f.exits, doNode)
	return flow{entry: doNode, exits: append([]*Node{doNode}, lc.breaks...)}
}

// --- expressions -------------------------------------------------------------

func (e *eogBuilder) expr(x solidity.Expr) flow {
	switch ex := x.(type) {
	case nil:
		return flow{}
	case *solidity.Ident, *solidity.NumberLit, *solidity.StringLit,
		*solidity.BoolLit, *solidity.NewExpr, *solidity.TypeExpr:
		return e.node(e.b.exprNode[x.(solidity.Node)])
	case *solidity.MemberAccess:
		return e.seq(e.expr(ex.X), e.node(e.b.exprNode[ex]))
	case *solidity.IndexAccess:
		f := e.expr(ex.X)
		f = e.seq(f, e.expr(ex.Index))
		return e.seq(f, e.node(e.b.exprNode[ex]))
	case *solidity.BinaryExpr:
		f := e.expr(ex.LHS)
		f = e.seq(f, e.expr(ex.RHS))
		return e.seq(f, e.node(e.b.exprNode[ex]))
	case *solidity.UnaryExpr:
		return e.seq(e.expr(ex.X), e.node(e.b.exprNode[ex]))
	case *solidity.ConditionalExpr:
		n := e.b.exprNode[ex]
		cond := e.seq(e.expr(ex.Cond), e.node(n))
		then := e.expr(ex.Then)
		els := e.expr(ex.Else)
		var exits []*Node
		if !then.empty() {
			e.b.g.Edge(n, EOG, then.entry)
			exits = append(exits, then.exits...)
		} else {
			exits = append(exits, n)
		}
		if !els.empty() {
			e.b.g.Edge(n, EOG, els.entry)
			exits = append(exits, els.exits...)
		} else {
			exits = append(exits, n)
		}
		return flow{entry: cond.entry, exits: exits}
	case *solidity.TupleExpr:
		f := flow{}
		for _, el := range ex.Elems {
			f = e.seq(f, e.expr(el))
		}
		return e.seq(f, e.node(e.b.exprNode[ex]))
	case *solidity.CallExpr:
		return e.call(ex)
	}
	return flow{}
}

func (e *eogBuilder) call(x *solidity.CallExpr) flow {
	n := e.b.exprNode[x]
	f := e.expr(x.Callee)
	for _, opt := range x.Options {
		f = e.seq(f, e.expr(opt.Value))
	}
	for _, a := range x.Args {
		f = e.seq(f, e.expr(a))
	}
	f = e.seq(f, e.node(n))
	if n == nil {
		return f
	}
	if n.Is(LRollback) {
		// revert(...): terminal.
		return flow{entry: f.entry}
	}
	if rb := e.b.rollbackOf[n]; rb != nil {
		// require/assert: branch to an attached terminal Rollback node; the
		// call node itself remains the fall-through exit.
		e.b.g.Edge(n, EOG, rb)
	}
	return f
}
