package cpg

import (
	"strings"

	"repro/internal/solidity"
)

// Build translates a parsed source unit into a complete CPG: it infers
// missing outer declarations for snippets, expands modifiers, constructs the
// syntax layer, resolves references and call targets, and runs the EOG and
// DFG passes.
func Build(src string, unit *solidity.SourceUnit) *Graph {
	b := newBuilder(src)
	b.build(solidity.Infer(unit))
	b.g.Index()
	return b.g
}

// Parse parses src with the fuzzy snippet grammar and builds its CPG.
// The returned error reflects parse problems; a graph is built from whatever
// could be parsed.
func Parse(src string) (*Graph, error) {
	unit, err := solidity.Parse(src)
	g := Build(src, unit)
	return g, err
}

// contractInfo collects per-contract context for resolution.
type contractInfo struct {
	decl   *solidity.ContractDecl
	node   *Node
	fields map[string]*Node
	funcs  map[string]*funcInfo
	mods   map[string]*solidity.ModifierDecl
	bases  []string
}

type funcInfo struct {
	decl *solidity.FunctionDecl
	node *Node
	// returns collects the ReturnStatement nodes for RETURNS edges.
	returns []*Node
}

// scope is a lexical scope for local declarations.
type scope struct {
	parent *scope
	vars   map[string]*Node
}

func (s *scope) lookup(name string) *Node {
	for cur := s; cur != nil; cur = cur.parent {
		if n, ok := cur.vars[name]; ok {
			return n
		}
	}
	return nil
}

func (s *scope) declare(name string, n *Node) {
	if name != "" {
		s.vars[name] = n
	}
}

type builder struct {
	g   *Graph
	src string

	contracts map[string]*contractInfo
	order     []*contractInfo

	cur   *contractInfo
	curFn *funcInfo
	scope *scope
	// noInfer suppresses field inference while building callee identifiers.
	noInfer bool

	// exprNode maps (expanded) AST nodes to their CPG nodes for the passes.
	exprNode map[solidity.Node]*Node
	// rollbackOf maps require/assert call nodes to their Rollback successor.
	rollbackOf map[*Node]*Node
	// pendingCalls collects calls to resolve INVOKES/RETURNS after all
	// functions exist.
	pendingCalls []pendingCall
	// builtFns records each function with its expanded body for the passes.
	builtFns []builtFn
}

type pendingCall struct {
	node     *Node
	contract *contractInfo
	name     string
	baseName string // receiver name for qualified calls ("lib.f()"), "" otherwise
	args     []*Node
}

type builtFn struct {
	info *funcInfo
	body *solidity.Block // after modifier expansion; nil for bodyless fns
}

func newBuilder(src string) *builder {
	return &builder{
		g:          NewGraph(),
		src:        src,
		contracts:  make(map[string]*contractInfo),
		exprNode:   make(map[solidity.Node]*Node),
		rollbackOf: make(map[*Node]*Node),
	}
}

// snippet extracts the raw source text of a node span.
func (b *builder) snippet(n solidity.Node) string {
	s, e := n.Pos().Offset, n.End().Offset
	if s < 0 || s >= len(b.src) || e <= s {
		return ""
	}
	if e > len(b.src) {
		e = len(b.src)
	}
	return b.src[s:e]
}

func (b *builder) build(unit *solidity.SourceUnit) {
	root := b.g.NewNode(LTranslationUnit)
	b.g.Root = root

	// Pre-pass: register contracts and their members so that references and
	// calls across contracts in the same unit resolve.
	for _, d := range unit.Decls {
		c, ok := d.(*solidity.ContractDecl)
		if !ok {
			continue
		}
		ci := &contractInfo{
			decl:   c,
			fields: make(map[string]*Node),
			funcs:  make(map[string]*funcInfo),
			mods:   make(map[string]*solidity.ModifierDecl),
			bases:  c.Bases,
		}
		b.contracts[c.Name] = ci
		b.order = append(b.order, ci)
	}

	// Declare records, fields, functions and modifiers.
	for _, ci := range b.order {
		b.declareContract(ci)
		b.g.Edge(root, AST, ci.node)
	}

	// Build function bodies.
	for _, ci := range b.order {
		b.cur = ci
		for _, part := range ci.decl.Parts {
			if fn, ok := part.(*solidity.FunctionDecl); ok {
				b.buildFunctionBody(ci, fn)
			}
		}
	}
	b.cur = nil

	// Resolve calls (INVOKES/RETURNS + parameter data flow).
	b.resolveCalls()

	// Passes.
	for _, bf := range b.builtFns {
		b.eogFunction(bf)
	}
	b.finishReturns()
	for _, bf := range b.builtFns {
		b.dfgFunction(bf)
	}
}

func (b *builder) declareContract(ci *contractInfo) {
	c := ci.decl
	rec := b.g.NewNode(LRecordDeclaration)
	rec.LocalName = c.Name
	rec.Kind = c.Kind.String()
	rec.Code = b.snippet(c)
	rec.Pos = c.Pos()
	rec.Inferred = c.Inferred
	ci.node = rec

	for _, part := range c.Parts {
		switch x := part.(type) {
		case *solidity.StateVarDecl:
			f := b.g.NewNode(LFieldDeclaration)
			f.LocalName = x.Name
			f.Code = b.snippet(x)
			f.TypeName = solidity.TypeString(x.Type)
			f.Pos = x.Pos()
			b.g.Edge(rec, FIELDS, f)
			b.g.Edge(rec, AST, f)
			b.attachType(f, x.Type)
			ci.fields[x.Name] = f
		case *solidity.StructDecl:
			sn := b.g.NewNode(LRecordDeclaration)
			sn.LocalName = x.Name
			sn.Kind = "struct"
			sn.Code = b.snippet(x)
			sn.Pos = x.Pos()
			b.g.Edge(rec, AST, sn)
		case *solidity.EventDecl:
			en := b.g.NewNode(LEventDeclaration)
			en.LocalName = x.Name
			en.Code = b.snippet(x)
			en.Pos = x.Pos()
			b.g.Edge(rec, AST, en)
		case *solidity.ModifierDecl:
			mn := b.g.NewNode(LModifierDeclaration)
			mn.LocalName = x.Name
			mn.Code = b.snippet(x)
			mn.Pos = x.Pos()
			b.g.Edge(rec, AST, mn)
			ci.mods[x.Name] = x
		case *solidity.FunctionDecl:
			fi := b.declareFunction(ci, x)
			b.g.Edge(rec, AST, fi.node)
		}
	}
}

func (b *builder) declareFunction(ci *contractInfo, fn *solidity.FunctionDecl) *funcInfo {
	n := b.g.NewNode(LFunctionDeclaration)
	n.LocalName = fn.Name
	n.Code = b.snippet(fn)
	n.Pos = fn.Pos()
	n.Inferred = fn.Inferred
	isCtor := fn.IsConstructor || (fn.Name != "" && fn.Name == ci.decl.Name)
	if isCtor {
		n.AddLabel(LConstructorDecl)
	}
	if fn.IsFallback || fn.IsReceive {
		n.LocalName = ""
	}
	fi := &funcInfo{decl: fn, node: n}
	key := fn.Name
	if key == "" {
		key = "()"
	}
	ci.funcs[key] = fi

	for i, p := range fn.Params {
		pn := b.g.NewNode(LParamVariableDecl)
		pn.AddLabel(LVariableDeclaration)
		pn.LocalName = p.Name
		pn.Code = solidity.TypeString(p.Type) + " " + p.Name
		pn.TypeName = solidity.TypeString(p.Type)
		pn.Index = i
		pn.Pos = p.Pos()
		b.g.Edge(n, PARAMETERS, pn)
		b.g.Edge(n, AST, pn)
		b.attachType(pn, p.Type)
		b.exprNode[p] = pn
	}
	return fi
}

func (b *builder) attachType(owner *Node, t solidity.TypeName) {
	if t == nil {
		return
	}
	tn := b.g.NewNode(LTypeNode)
	name := solidity.TypeString(t)
	tn.LocalName = baseTypeName(name)
	tn.Code = name
	if _, ok := t.(*solidity.UserType); ok {
		tn.AddLabel(LObjectType)
	}
	b.g.Edge(owner, TYPE, tn)
}

// baseTypeName reduces "address payable" to "address" and strips array
// suffixes for the localName property used in queries.
func baseTypeName(name string) string {
	name = strings.TrimSuffix(name, " payable")
	if i := strings.IndexByte(name, '['); i >= 0 {
		name = name[:i]
	}
	return name
}

// buildFunctionBody expands modifiers and builds statements.
func (b *builder) buildFunctionBody(ci *contractInfo, fn *solidity.FunctionDecl) {
	key := fn.Name
	if key == "" {
		key = "()"
	}
	fi := ci.funcs[key]
	if fi == nil || fi.decl != fn {
		// Overloads share a key; declare the extra one on the fly.
		fi = b.declareFunction(ci, fn)
		b.g.Edge(ci.node, AST, fi.node)
	}
	if fn.Body == nil {
		b.builtFns = append(b.builtFns, builtFn{info: fi})
		return
	}
	body := b.expandModifiers(ci, fn)
	b.curFn = fi
	b.scope = &scope{vars: make(map[string]*Node)}
	for _, p := range fn.Params {
		b.scope.declare(p.Name, b.exprNode[p])
	}
	bodyNode := b.buildBlock(body)
	b.g.Edge(fi.node, BODY, bodyNode)
	b.g.Edge(fi.node, AST, bodyNode)
	b.curFn = nil
	b.scope = nil
	b.builtFns = append(b.builtFns, builtFn{info: fi, body: body})
}

// expandModifiers wraps the function body in the (cloned) bodies of its
// modifiers, innermost-first; every `_;` placeholder is replaced by the body
// wrapped so far. Unknown modifiers (base constructors, unresolved names)
// are skipped.
func (b *builder) expandModifiers(ci *contractInfo, fn *solidity.FunctionDecl) *solidity.Block {
	body := fn.Body
	for i := len(fn.Modifiers) - 1; i >= 0; i-- {
		md := b.lookupModifier(ci, fn.Modifiers[i].Name)
		if md == nil || md.Body == nil {
			continue
		}
		wrapped := solidity.CloneBlock(md.Body)
		replacePlaceholders(wrapped, body)
		body = wrapped
	}
	return body
}

func (b *builder) lookupModifier(ci *contractInfo, name string) *solidity.ModifierDecl {
	seen := map[string]bool{}
	var walk func(c *contractInfo) *solidity.ModifierDecl
	walk = func(c *contractInfo) *solidity.ModifierDecl {
		if c == nil || seen[c.decl.Name] {
			return nil
		}
		seen[c.decl.Name] = true
		if m, ok := c.mods[name]; ok {
			return m
		}
		for _, base := range c.bases {
			if m := walk(b.contracts[base]); m != nil {
				return m
			}
		}
		return nil
	}
	return walk(ci)
}

// replacePlaceholders substitutes every `_;` in block with stmts from body.
func replacePlaceholders(block *solidity.Block, body *solidity.Block) {
	for i, s := range block.Stmts {
		switch x := s.(type) {
		case *solidity.PlaceholderStmt:
			block.Stmts[i] = body
		case *solidity.Block:
			replacePlaceholders(x, body)
		case *solidity.IfStmt:
			replaceInStmt(&x.Then, body)
			replaceInStmt(&x.Else, body)
		case *solidity.ForStmt:
			replaceInStmt(&x.Body, body)
		case *solidity.WhileStmt:
			replaceInStmt(&x.Body, body)
		case *solidity.DoWhileStmt:
			replaceInStmt(&x.Body, body)
		case *solidity.UncheckedBlock:
			if x.Body != nil {
				replacePlaceholders(x.Body, body)
			}
		}
	}
}

func replaceInStmt(slot *solidity.Stmt, body *solidity.Block) {
	switch x := (*slot).(type) {
	case nil:
	case *solidity.PlaceholderStmt:
		*slot = body
	case *solidity.Block:
		replacePlaceholders(x, body)
	case *solidity.IfStmt:
		replaceInStmt(&x.Then, body)
		replaceInStmt(&x.Else, body)
	case *solidity.ForStmt:
		replaceInStmt(&x.Body, body)
	case *solidity.WhileStmt:
		replaceInStmt(&x.Body, body)
	case *solidity.DoWhileStmt:
		replaceInStmt(&x.Body, body)
	}
}

// lookupField resolves a field name through the inheritance chain.
func (b *builder) lookupField(ci *contractInfo, name string) *Node {
	seen := map[string]bool{}
	var walk func(c *contractInfo) *Node
	walk = func(c *contractInfo) *Node {
		if c == nil || seen[c.decl.Name] {
			return nil
		}
		seen[c.decl.Name] = true
		if f, ok := c.fields[name]; ok {
			return f
		}
		for _, base := range c.bases {
			if f := walk(b.contracts[base]); f != nil {
				return f
			}
		}
		return nil
	}
	return walk(ci)
}

// lookupFunction resolves a function name through the inheritance chain.
func (b *builder) lookupFunction(ci *contractInfo, name string) *funcInfo {
	seen := map[string]bool{}
	var walk func(c *contractInfo) *funcInfo
	walk = func(c *contractInfo) *funcInfo {
		if c == nil || seen[c.decl.Name] {
			return nil
		}
		seen[c.decl.Name] = true
		if f, ok := c.funcs[name]; ok {
			return f
		}
		for _, base := range c.bases {
			if f := walk(b.contracts[base]); f != nil {
				return f
			}
		}
		return nil
	}
	return walk(ci)
}

// resolveCalls adds INVOKES and RETURNS edges plus inter-procedural DFG for
// arguments once all functions are declared.
func (b *builder) resolveCalls() {
	for _, pc := range b.pendingCalls {
		var target *funcInfo
		if pc.baseName != "" {
			// Qualified call: resolve against a contract/library named like
			// the base if one exists in this unit.
			if ci, ok := b.contracts[pc.baseName]; ok {
				target = b.lookupFunction(ci, pc.name)
			}
		} else {
			target = b.lookupFunction(pc.contract, pc.name)
		}
		if target == nil || target.node == pc.node {
			continue
		}
		b.g.Edge(pc.node, INVOKES, target.node)
		// Argument-to-parameter data flow.
		params := target.node.Out(PARAMETERS)
		for i, arg := range pc.args {
			if i < len(params) {
				b.g.Edge(arg, DFG, params[i])
			}
		}
	}
	// RETURNS edges are added after the DFG pass has collected the return
	// statements; collect them per function node here lazily instead.
}

// finishReturns adds ReturnStatement-[:RETURNS]->CallExpression edges and
// return-value data flow once the EOG pass has recorded return nodes.
func (b *builder) finishReturns() {
	for _, pc := range b.pendingCalls {
		for _, tgt := range pc.node.Out(INVOKES) {
			for _, bf := range b.builtFns {
				if bf.info.node != tgt {
					continue
				}
				for _, ret := range bf.info.returns {
					b.g.Edge(ret, RETURNS, pc.node)
					b.g.Edge(ret, DFG, pc.node)
				}
			}
		}
	}
}
