package cpg_test

import (
	"testing"

	"repro/internal/cpg"
	"repro/internal/dataset"
)

// invariant test corpus: every vulnerable template plus assorted snippets.
func invariantSources() []string {
	var out []string
	for _, t := range dataset.VulnTemplates() {
		out = append(out, t.Source)
	}
	for _, t := range dataset.DecoyTemplates() {
		out = append(out, t.Source)
	}
	out = append(out,
		`msg.sender.transfer(1);`,
		`function f() public { for (uint i = 0; i < 3; i++) { if (i == 1) { continue; } g(i); } }`,
		`contract A { function x() public { try other.f() { y = 1; } catch {} } uint y; }`,
	)
	return out
}

// TestInvariantRollbackTerminal: Rollback nodes never have outgoing cpg.EOG
// edges — a rolled-back transaction cannot continue.
func TestInvariantRollbackTerminal(t *testing.T) {
	for _, src := range invariantSources() {
		g, _ := cpg.Parse(src)
		for _, n := range g.ByLabel(cpg.LRollback) {
			if n.Is(cpg.LCallExpression) && n.LocalName == "revert" {
				// revert() call nodes are themselves terminal too.
			}
			if len(n.Out(cpg.EOG)) != 0 {
				t.Errorf("rollback node %v has cpg.EOG successors", n)
			}
		}
	}
}

// TestInvariantRefersToTargetsDeclarations: cpg.REFERS_TO edges always point at
// declaration-labeled nodes.
func TestInvariantRefersToTargetsDeclarations(t *testing.T) {
	for _, src := range invariantSources() {
		g, _ := cpg.Parse(src)
		for _, n := range g.Nodes {
			for _, tgt := range n.Out(cpg.REFERS_TO) {
				if !tgt.Is(cpg.LFieldDeclaration) && !tgt.Is(cpg.LVariableDeclaration) &&
					!tgt.Is(cpg.LParamVariableDecl) && !tgt.Is(cpg.LFunctionDeclaration) {
					t.Errorf("cpg.REFERS_TO target %v is not a declaration (from %v)", tgt, n)
				}
			}
		}
	}
}

// TestInvariantEdgeSymmetry: out-edges and in-edges agree.
func TestInvariantEdgeSymmetry(t *testing.T) {
	for _, src := range invariantSources() {
		g, _ := cpg.Parse(src)
		for _, k := range allKinds {
			outTotal, inTotal := 0, 0
			for _, n := range g.Nodes {
				outTotal += len(n.Out(k))
				inTotal += len(n.In(k))
			}
			if outTotal != inTotal {
				t.Fatalf("%v: out=%d in=%d", k, outTotal, inTotal)
			}
		}
	}
}

// TestInvariantParamsBelongToFunctions: every ParamVariableDeclaration has
// exactly one cpg.PARAMETERS parent which is a function.
func TestInvariantParamsBelongToFunctions(t *testing.T) {
	for _, src := range invariantSources() {
		g, _ := cpg.Parse(src)
		for _, p := range g.ByLabel(cpg.LParamVariableDecl) {
			parents := p.In(cpg.PARAMETERS)
			if len(parents) != 1 || !parents[0].Is(cpg.LFunctionDeclaration) {
				t.Errorf("param %v parents: %v", p, parents)
			}
		}
	}
}

// TestInvariantEOGSourcesAreFunctionsOrExpressions: cpg.EOG entry points (no
// incoming cpg.EOG) reachable in a function must include the function node.
func TestInvariantFunctionReachesItsBody(t *testing.T) {
	for _, src := range invariantSources() {
		g, _ := cpg.Parse(src)
		for _, fn := range g.ByLabel(cpg.LFunctionDeclaration) {
			succ := fn.Out(cpg.EOG)
			if len(succ) > 1 {
				t.Errorf("function %v has %d cpg.EOG entries", fn, len(succ))
			}
		}
	}
}

// TestInvariantDFGAcyclicThroughLiterals: literals have no incoming cpg.DFG.
func TestInvariantLiteralsAreSources(t *testing.T) {
	for _, src := range invariantSources() {
		g, _ := cpg.Parse(src)
		for _, n := range g.ByLabel(cpg.LLiteral) {
			if n.In(cpg.REFERS_TO) != nil {
				t.Errorf("literal %v referenced", n)
			}
			for _, pred := range n.In(cpg.DFG) {
				t.Errorf("literal %v has cpg.DFG predecessor %v", n, pred)
			}
		}
	}
}

// TestInvariantConditionEdgesFromBranching: cpg.CONDITION edges originate only
// from branching constructs.
func TestInvariantConditionEdges(t *testing.T) {
	for _, src := range invariantSources() {
		g, _ := cpg.Parse(src)
		for _, n := range g.Nodes {
			if len(n.Out(cpg.CONDITION)) == 0 {
				continue
			}
			ok := n.Is(cpg.LIfStatement) || n.Is(cpg.LForStatement) || n.Is(cpg.LWhileStatement) ||
				n.Is(cpg.LDoStatement) || n.Is(cpg.LConditionalExpression)
			if !ok {
				t.Errorf("cpg.CONDITION edge from non-branching %v", n)
			}
		}
	}
}

// TestInvariantIndexStable: building twice yields identical node/edge
// counts for the whole template corpus.
func TestInvariantDeterministicOverCorpus(t *testing.T) {
	for _, src := range invariantSources() {
		g1, _ := cpg.Parse(src)
		g2, _ := cpg.Parse(src)
		if len(g1.Nodes) != len(g2.Nodes) {
			t.Fatalf("node counts differ for %.40q", src)
		}
		for _, k := range allKinds {
			if g1.EdgeCount(k) != g2.EdgeCount(k) {
				t.Fatalf("%v edge counts differ for %.40q", k, src)
			}
		}
	}
}

// TestInvariantInferredFieldsOnlyInSnippets: fully declared contracts never
// get inferred fields.
func TestInvariantNoInferenceWhenDeclared(t *testing.T) {
	src := `contract Full {
		uint a;
		mapping(address => uint) b;
		function f(uint x) public { a = x; b[msg.sender] = a; }
	}`
	g, err := cpg.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range g.ByLabel(cpg.LFieldDeclaration) {
		if f.Inferred {
			t.Errorf("inferred field %v in fully declared contract", f)
		}
	}
}

// allKinds enumerates the edge kinds checked by the symmetry and
// determinism invariants.
var allKinds = []cpg.EdgeKind{
	cpg.AST, cpg.EOG, cpg.DFG, cpg.REFERS_TO, cpg.INVOKES, cpg.RETURNS,
	cpg.ARGUMENTS, cpg.BASE, cpg.CALLEE, cpg.LHS, cpg.RHS, cpg.CONDITION,
	cpg.BODY, cpg.PARAMETERS, cpg.FIELDS, cpg.TYPE, cpg.INITIALIZER,
	cpg.KEY, cpg.VALUE, cpg.SPECIFIERS, cpg.ARRAY_EXPRESSION,
	cpg.SUBSCRIPT_EXPRESSION, cpg.INPUT,
}
