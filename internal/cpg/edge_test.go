package cpg

import (
	"testing"
)

func TestConditionalExpressionGraph(t *testing.T) {
	g := mustGraph(t, `contract C {
		uint y;
		function f(uint a, uint b) public { y = a > b ? a : b; }
	}`)
	conds := g.ByLabel(LConditionalExpression)
	if len(conds) != 1 {
		t.Fatalf("conditional nodes: %d", len(conds))
	}
	n := conds[0]
	if len(n.Out(CONDITION)) != 1 || len(n.Out(LHS)) != 1 || len(n.Out(RHS)) != 1 {
		t.Fatalf("structure: cond=%d lhs=%d rhs=%d",
			len(n.Out(CONDITION)), len(n.Out(LHS)), len(n.Out(RHS)))
	}
	// Branching in the EOG: the ternary node has two successors.
	if !isBranchNode(n) {
		t.Error("ternary should branch in EOG")
	}
	// Value flows into the assignment and onward into the field.
	field := findByLocalName(g, LFieldDeclaration, "y")
	if !reaches(n, field, DFG) {
		t.Error("ternary value should reach the field")
	}
}

func isBranchNode(n *Node) bool {
	succ := n.Out(EOG)
	if len(succ) < 2 {
		return false
	}
	return succ[0] != succ[1]
}

func TestTupleAssignmentDataFlow(t *testing.T) {
	g := mustGraph(t, `contract C {
		uint a; uint b;
		function swap() public { (a, b) = (b, a); }
	}`)
	fa := findByLocalName(g, LFieldDeclaration, "a")
	fb := findByLocalName(g, LFieldDeclaration, "b")
	if fa == nil || fb == nil {
		t.Fatal("fields missing")
	}
	if !reaches(fb, fa, DFG) || !reaches(fa, fb, DFG) {
		t.Error("tuple swap should flow both ways")
	}
}

func TestTryCatchEOGBranches(t *testing.T) {
	g := mustGraph(t, `contract C {
		uint y;
		function f() public {
			try other.get() returns (uint v) { y = v; } catch { y = 0; }
		}
	}`)
	call := findByLocalName(g, LCallExpression, "get")
	if call == nil {
		t.Fatal("no call")
	}
	if len(call.Out(EOG)) < 2 {
		t.Errorf("try call should branch into body and catch, got %d successors", len(call.Out(EOG)))
	}
}

func TestDeleteStatementWritesDeclaration(t *testing.T) {
	g := mustGraph(t, `contract C {
		uint stored;
		function clear() public { delete stored; }
	}`)
	field := findByLocalName(g, LFieldDeclaration, "stored")
	var del *Node
	for _, n := range g.ByLabel(LUnaryOperator) {
		if n.Operator == "delete" {
			del = n
		}
	}
	if del == nil {
		t.Fatal("no delete node")
	}
	if !reaches(del, field, DFG) {
		t.Error("delete should write the field")
	}
}

func TestUncheckedBlockTransparent(t *testing.T) {
	g := mustGraph(t, `contract C {
		uint total;
		function f(uint x) public { unchecked { total += x; } }
	}`)
	param := findByLocalName(g, LParamVariableDecl, "x")
	field := findByLocalName(g, LFieldDeclaration, "total")
	if !reaches(param, field, DFG) {
		t.Error("data flow through unchecked block broken")
	}
}

func TestEmitStatementStructure(t *testing.T) {
	g := mustGraph(t, `contract C {
		event Log(uint x);
		function f() public { emit Log(1); }
	}`)
	emits := g.ByLabel(LEmitStatement)
	if len(emits) != 1 {
		t.Fatalf("emit nodes: %d", len(emits))
	}
	children := emits[0].Out(AST)
	if len(children) != 1 || !children[0].Is(LCallExpression) {
		t.Fatalf("emit children: %v", children)
	}
	// No field named Log must have been inferred.
	if f := findByLocalName(g, LFieldDeclaration, "Log"); f != nil {
		t.Error("event name inferred as field")
	}
}

func TestContinueTargetsLoopHead(t *testing.T) {
	g := mustGraph(t, `contract C {
		uint s;
		function f(uint n) public {
			for (uint i = 0; i < n; i++) {
				if (i == 2) { continue; }
				s += i;
			}
		}
	}`)
	conts := g.ByLabel(LContinueStatement)
	if len(conts) != 1 {
		t.Fatalf("continue nodes: %d", len(conts))
	}
	loop := g.ByLabel(LForStatement)[0]
	if !reaches(conts[0], loop, EOG) {
		t.Error("continue should flow back to the loop")
	}
}

func TestLibraryCallResolution(t *testing.T) {
	g := mustGraph(t, `
library SafeMath {
	function add(uint a, uint b) internal pure returns (uint) {
		uint c = a + b;
		require(c >= a);
		return c;
	}
}
contract T {
	uint total;
	function bump(uint v) public { total = SafeMath.add(total, v); }
}`)
	call := findByLocalName(g, LCallExpression, "add")
	if call == nil {
		t.Fatal("no call")
	}
	inv := call.Out(INVOKES)
	if len(inv) != 1 || inv[0].LocalName != "add" {
		t.Fatalf("INVOKES: %v", inv)
	}
	// The helper's guard is connected: v flows into the library comparison.
	param := findByLocalName(g, LParamVariableDecl, "v")
	var cmp *Node
	for _, n := range g.ByLabel(LBinaryOperator) {
		if n.Operator == ">=" {
			cmp = n
		}
	}
	if cmp == nil || !reaches(param, cmp, DFG) {
		t.Error("argument should flow into the library guard")
	}
}

func TestReceiveFunctionGraph(t *testing.T) {
	g := mustGraph(t, `contract C {
		uint received;
		receive() external payable { received += msg.value; }
	}`)
	var recv *Node
	for _, f := range g.ByLabel(LFunctionDeclaration) {
		if f.LocalName == "" {
			recv = f
		}
	}
	if recv == nil {
		t.Fatal("receive not modeled as unnamed function")
	}
	field := findByLocalName(g, LFieldDeclaration, "received")
	val := findByCode(g, LMemberExpression, "msg.value")
	if !reaches(val, field, DFG) {
		t.Error("msg.value should flow into the field")
	}
}

func TestFieldInitializerEdge(t *testing.T) {
	g := mustGraph(t, `contract C {
		uint limit = 1 ether;
	}`)
	f := findByLocalName(g, LFieldDeclaration, "limit")
	if f == nil {
		t.Fatal("no field")
	}
	// Initializer values are recorded in the field's code.
	if f.Code == "" {
		t.Error("field code empty")
	}
}

func TestNodeStringAndLabels(t *testing.T) {
	g := mustGraph(t, `contract C { function f() public {} }`)
	fn := findByLocalName(g, LFunctionDeclaration, "f")
	if fn.String() == "" {
		t.Error("node string")
	}
	labels := fn.Labels()
	if len(labels) == 0 {
		t.Error("labels empty")
	}
	fn.AddLabel("Custom")
	if !fn.Is("Custom") {
		t.Error("AddLabel failed")
	}
	g.Index()
	if len(g.ByLabel("Custom")) != 1 {
		t.Error("re-index missing custom label")
	}
}
