package editdist

import (
	"testing"
	"testing/quick"
)

func TestDistanceBasics(t *testing.T) {
	cases := []struct {
		a, b string
		d    int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "acb", 2},
	}
	for _, c := range cases {
		if got := Distance(c.a, c.b); got != c.d {
			t.Errorf("Distance(%q,%q) = %d, want %d", c.a, c.b, got, c.d)
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 50 {
			a = a[:50]
		}
		if len(b) > 50 {
			b = b[:50]
		}
		return Distance(a, b) == Distance(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(a, b, c string) bool {
		for _, s := range []*string{&a, &b, &c} {
			if len(*s) > 30 {
				*s = (*s)[:30]
			}
		}
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceBoundedAgreesWhenWithin(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		d := Distance(a, b)
		got := DistanceBounded(a, b, d)
		return got == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceBoundedEarlyExit(t *testing.T) {
	a := "aaaaaaaaaaaaaaaaaaaa"
	b := "bbbbbbbbbbbbbbbbbbbb"
	if got := DistanceBounded(a, b, 3); got != 4 {
		t.Errorf("got %d, want maxDist+1 = 4", got)
	}
	if got := DistanceBounded("abc", "abcdefgh", 2); got != 3 {
		t.Errorf("length gap: got %d want 3", got)
	}
}

func TestSimilarity(t *testing.T) {
	if s := Similarity("abcd", "abcd"); s != 100 {
		t.Errorf("identical: %v", s)
	}
	if s := Similarity("", ""); s != 100 {
		t.Errorf("empty: %v", s)
	}
	if s := Similarity("aaaa", "bbbb"); s != 0 {
		t.Errorf("disjoint: %v", s)
	}
	// One edit out of 4 chars: 75.
	if s := Similarity("abcd", "abcx"); s != 75 {
		t.Errorf("3/4: %v", s)
	}
}

func TestSimilarityRange(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		s := Similarity(a, b)
		return s >= 0 && s <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSimilarityAtLeast(t *testing.T) {
	s, ok := SimilarityAtLeast("abcd", "abcx", 70)
	if !ok || s != 75 {
		t.Errorf("got %v %v", s, ok)
	}
	_, ok = SimilarityAtLeast("abcd", "wxyz", 70)
	if ok {
		t.Error("should fail threshold")
	}
}

func TestSimilarityAtLeastConsistent(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		exact := Similarity(a, b)
		for _, th := range []float64{0, 50, 70, 90, 100} {
			_, ok := SimilarityAtLeast(a, b, th)
			if ok != (exact >= th) && !(exact == th) {
				// Allow boundary rounding at exact threshold.
				if ok != (exact >= th) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
