// Package editdist provides Levenshtein edit distance and the normalized
// similarity score δ used by the paper's clone detector (Section 5.5):
//
//	δ(s1,s2) = (max(len(s1),len(s2)) − d(s1,s2)) / max(len(s1),len(s2)) · 100
package editdist

// Distance returns the Levenshtein edit distance between a and b using two
// rolling rows (O(min(len)) space).
func Distance(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitute
			if d := prev[j] + 1; d < m { // delete
				m = d
			}
			if d := cur[j-1] + 1; d < m { // insert
				m = d
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// DistanceBounded returns the edit distance if it is at most maxDist, or
// maxDist+1 otherwise. Early exit keeps corpus matching fast when most
// candidate pairs are far apart.
func DistanceBounded(a, b string, maxDist int) int {
	if maxDist < 0 {
		return 0
	}
	la, lb := len(a), len(b)
	if la-lb > maxDist || lb-la > maxDist {
		return maxDist + 1
	}
	if a == b {
		return 0
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		rowMin := cur[0]
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost
			if d := prev[j] + 1; d < m {
				m = d
			}
			if d := cur[j-1] + 1; d < m {
				m = d
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > maxDist {
			return maxDist + 1
		}
		prev, cur = cur, prev
	}
	if d := prev[len(b)]; d <= maxDist {
		return d
	}
	return maxDist + 1
}

// Similarity returns δ(a,b) in [0,100]: 100 for identical strings, 0 when
// every character differs. Two empty strings are identical (100).
func Similarity(a, b string) float64 {
	ml := max(len(a), len(b))
	if ml == 0 {
		return 100
	}
	d := Distance(a, b)
	return float64(ml-d) / float64(ml) * 100
}

// SimilarityAtLeast reports whether δ(a,b) ≥ threshold, using the bounded
// distance for early exit.
func SimilarityAtLeast(a, b string, threshold float64) (float64, bool) {
	ml := max(len(a), len(b))
	if ml == 0 {
		return 100, threshold <= 100
	}
	// δ ≥ t  ⇔  d ≤ ml·(100−t)/100
	maxDist := int(float64(ml) * (100 - threshold) / 100)
	d := DistanceBounded(a, b, maxDist)
	if d > maxDist {
		return float64(ml-d) / float64(ml) * 100, false
	}
	return float64(ml-d) / float64(ml) * 100, true
}
