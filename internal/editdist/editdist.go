// Package editdist provides Levenshtein edit distance and the normalized
// similarity score δ used by the paper's clone detector (Section 5.5):
//
//	δ(s1,s2) = (max(len(s1),len(s2)) − d(s1,s2)) / max(len(s1),len(s2)) · 100
package editdist

// Scratch holds the two rolling DP rows so repeated distance computations
// (one per candidate pair in a corpus match) reuse one allocation. A zero
// Scratch is ready to use; methods grow the rows on demand. Not safe for
// concurrent use.
type Scratch struct {
	prev, cur []int
}

// rows returns the two DP rows, each with at least n entries.
func (s *Scratch) rows(n int) ([]int, []int) {
	if cap(s.prev) < n {
		s.prev = make([]int, n)
		s.cur = make([]int, n)
	}
	return s.prev[:n], s.cur[:n]
}

// Distance returns the Levenshtein edit distance between a and b using two
// rolling rows (O(min(len)) space).
func Distance(a, b string) int {
	var s Scratch
	return s.Distance(a, b)
}

// Distance is the scratch-reusing form of the package-level Distance.
func (s *Scratch) Distance(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	prev, cur := s.rows(len(b) + 1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitute
			if d := prev[j] + 1; d < m { // delete
				m = d
			}
			if d := cur[j-1] + 1; d < m { // insert
				m = d
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// DistanceBounded returns the edit distance if it is at most maxDist, or
// maxDist+1 otherwise. Early exit keeps corpus matching fast when most
// candidate pairs are far apart.
func DistanceBounded(a, b string, maxDist int) int {
	var s Scratch
	return s.DistanceBounded(a, b, maxDist)
}

// DistanceBounded is the scratch-reusing form of the package-level
// DistanceBounded.
func (s *Scratch) DistanceBounded(a, b string, maxDist int) int {
	if maxDist < 0 {
		return 0
	}
	la, lb := len(a), len(b)
	if la-lb > maxDist || lb-la > maxDist {
		return maxDist + 1
	}
	if a == b {
		return 0
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	prev, cur := s.rows(len(b) + 1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		rowMin := cur[0]
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost
			if d := prev[j] + 1; d < m {
				m = d
			}
			if d := cur[j-1] + 1; d < m {
				m = d
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > maxDist {
			return maxDist + 1
		}
		prev, cur = cur, prev
	}
	if d := prev[len(b)]; d <= maxDist {
		return d
	}
	return maxDist + 1
}

// Similarity returns δ(a,b) in [0,100]: 100 for identical strings, 0 when
// every character differs. Two empty strings are identical (100).
func Similarity(a, b string) float64 {
	ml := max(len(a), len(b))
	if ml == 0 {
		return 100
	}
	d := Distance(a, b)
	return float64(ml-d) / float64(ml) * 100
}

// SimilarityAtLeast reports whether δ(a,b) ≥ threshold, using the bounded
// distance for early exit.
func SimilarityAtLeast(a, b string, threshold float64) (float64, bool) {
	var s Scratch
	return s.SimilarityAtLeast(a, b, threshold)
}

// SimilarityAtLeast is the scratch-reusing form of the package-level
// SimilarityAtLeast.
func (s *Scratch) SimilarityAtLeast(a, b string, threshold float64) (float64, bool) {
	ml := max(len(a), len(b))
	if ml == 0 {
		return 100, threshold <= 100
	}
	// δ ≥ t  ⇔  d ≤ ml·(100−t)/100
	maxDist := int(float64(ml) * (100 - threshold) / 100)
	d := s.DistanceBounded(a, b, maxDist)
	if d > maxDist {
		return float64(ml-d) / float64(ml) * 100, false
	}
	return float64(ml-d) / float64(ml) * 100, true
}
