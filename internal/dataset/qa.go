package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/solidity"
)

// Site identifies a Q&A website.
type Site string

// The two crawled sites.
const (
	StackOverflow Site = "Stack Overflow"
	EthereumSE    Site = "Ethereum Stack Exchange"
)

// Post is one Q&A post tagged "solidity".
type Post struct {
	Site     Site
	ID       string
	Created  time.Time
	Views    int
	Snippets []Snippet
}

// SnippetKind classifies generated snippet content.
type SnippetKind int

// Snippet content kinds.
const (
	KindSolidity SnippetKind = iota // parsable Solidity
	KindPseudo                      // Solidity-flavored pseudo code (keyword pass, parse fail)
	KindJS                          // JavaScript/web3 (fails keyword filter)
	KindProse                       // plain text (fails keyword filter)
)

// Snippet is one code block inside a post.
type Snippet struct {
	ID      string
	PostID  string
	Site    Site
	Created time.Time
	Views   int
	Kind    SnippetKind
	Source  string
	// Template names the vulnerable template the snippet derives from
	// (generator ground truth; "" for benign/non-Solidity snippets).
	Template string
	// Viral marks snippets designated as popular disseminators: the
	// sanctuary generator plants clone counts correlated with their views.
	Viral bool
}

// QAConfig parameterizes the Q&A corpus generator.
type QAConfig struct {
	Seed int64
	// Scale shrinks the paper's corpus size (1.0 ≈ 39,434 snippets).
	Scale float64
}

// QACorpus is the generated crawl result.
type QACorpus struct {
	Posts    []Post
	Snippets []Snippet // flattened
}

// paper-scale counts (Table 4).
const (
	paperSOPosts     = 7370
	paperSOSnippets  = 12111
	paperESEPosts    = 18283
	paperESESnippets = 27323
)

// crawlEnd is the paper's crawl cutoff (June 30, 2023).
var crawlEnd = time.Date(2023, 6, 30, 0, 0, 0, 0, time.UTC)
var crawlStart = time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)

// GenerateQA builds the Q&A snippet corpus: a mix of parsable Solidity
// (contract/function/statement shapes), Solidity-flavored pseudo-code,
// JavaScript and prose, with per-post view counts and timestamps. The mix
// reproduces the funnel proportions of Table 4.
func GenerateQA(cfg QAConfig) QACorpus {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.02
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := NewMutator(cfg.Seed + 7)

	var corpus QACorpus
	gen := func(site Site, posts, snippets int) {
		perPost := float64(snippets) / float64(posts)
		for p := 0; p < posts; p++ {
			created := crawlStart.Add(time.Duration(rng.Int63n(int64(crawlEnd.Sub(crawlStart)))))
			views := int(math.Exp(rng.NormFloat64()*1.5 + 7))
			post := Post{
				Site:    site,
				ID:      fmt.Sprintf("%s-%d", siteSlug(site), p),
				Created: created,
				Views:   views,
			}
			n := 1
			if rng.Float64() < perPost-1 {
				n = 2
			}
			if rng.Float64() < 0.1 {
				n++
			}
			for s := 0; s < n; s++ {
				sn := generateSnippet(rng, m, fmt.Sprintf("%s-s%d", post.ID, s))
				sn.PostID = post.ID
				sn.Site = site
				sn.Created = created
				sn.Views = views
				post.Snippets = append(post.Snippets, sn)
				corpus.Snippets = append(corpus.Snippets, sn)
			}
			corpus.Posts = append(corpus.Posts, post)
		}
	}
	gen(StackOverflow, scaleCount(paperSOPosts, cfg.Scale), scaleCount(paperSOSnippets, cfg.Scale))
	gen(EthereumSE, scaleCount(paperESEPosts, cfg.Scale), scaleCount(paperESESnippets, cfg.Scale))
	return corpus
}

func scaleCount(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 10 {
		v = 10
	}
	return v
}

func siteSlug(s Site) string {
	if s == StackOverflow {
		return "so"
	}
	return "ese"
}

// generateSnippet draws one snippet according to the Table 4 mix:
// ~50% parsable Solidity, ~15% Solidity-flavored pseudo code, ~20% JS,
// ~15% prose. Parsable Solidity splits into contract (54.2%), function
// (38%) and statement (7.8%) shapes; about a quarter derive from vulnerable
// templates, and ~6% are duplicates of canonical forms.
func generateSnippet(rng *rand.Rand, m *Mutator, id string) Snippet {
	r := rng.Float64()
	switch {
	case r < 0.50:
		return solibitySnippet(rng, m, id)
	case r < 0.65:
		return Snippet{ID: id, Kind: KindPseudo, Source: pseudoSnippet(rng)}
	case r < 0.85:
		return Snippet{ID: id, Kind: KindJS, Source: jsSnippet(rng)}
	default:
		return Snippet{ID: id, Kind: KindProse, Source: proseSnippet(rng)}
	}
}

func solibitySnippet(rng *rand.Rand, m *Mutator, id string) Snippet {
	r := rng.Float64()
	var src, tmplName string
	switch {
	case r < 0.27:
		// Genuinely vulnerable snippet.
		t := vulnTemplates[rng.Intn(len(vulnTemplates))]
		src = t.Source
		tmplName = t.Name
	case r < 0.36:
		// Benign decoy: unconventionally mitigated code that baits
		// pattern-based detection (snippet false positives, Section 6.5).
		src = decoyTemplates[rng.Intn(len(decoyTemplates))].Source
	default:
		src = mitigatedTemplates[rng.Intn(len(mitigatedTemplates))]
	}
	// Duplicate posting: keep the canonical source untouched (~6%).
	duplicate := rng.Float64() < 0.06
	if !duplicate {
		src = m.Mutate(src, rng.Intn(3))
	}
	// Shape: contract 54.2%, function 38%, statements 7.8%.
	shape := rng.Float64()
	switch {
	case shape < 0.542:
		// keep the contract form
	case shape < 0.922:
		if fn := firstFunction(src); fn != "" {
			src = fn
		}
	default:
		if st := firstStatements(src, 1+rng.Intn(5)); st != "" {
			src = st
		}
	}
	// Non-duplicate snippets carry the poster's own surrounding code:
	// unique inert statements that individualize the snippet (and survive
	// CCD normalization via their undeclared identifiers).
	if !duplicate {
		src = insertUniqueStatements(rng, src)
	}
	return Snippet{
		ID:       id,
		Kind:     KindSolidity,
		Source:   src,
		Template: tmplName,
		Viral:    rng.Float64() < 0.25,
	}
}

// insertUniqueStatements splices 2-3 harmless statements with unique
// undeclared identifiers into the first function body (or prepends them to
// statement-shaped snippets).
func insertUniqueStatements(rng *rand.Rand, src string) string {
	n := 2 + rng.Intn(2)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		tag := rng.Intn(90000) + 10000
		switch rng.Intn(4) {
		case 0:
			fmt.Fprintf(&sb, "\n\t\tmark%d = mark%d + %d;", tag, tag, rng.Intn(900)+1)
		case 1:
			fmt.Fprintf(&sb, "\n\t\tslot%d = %d;", tag, rng.Intn(9000)+1)
		case 2:
			fmt.Fprintf(&sb, "\n\t\temit Trace%d(%d);", tag, rng.Intn(100))
		default:
			fmt.Fprintf(&sb, "\n\t\tstep%d = step%d | %d;", tag, tag, rng.Intn(255)+1)
		}
	}
	ins := sb.String()
	// Find the opening brace of the first function-like body.
	idx := -1
	for _, kw := range []string{"function", "constructor", "modifier"} {
		if k := strings.Index(src, kw); k >= 0 && (idx == -1 || k < idx) {
			idx = k
		}
	}
	if idx >= 0 {
		if b := strings.IndexByte(src[idx:], '{'); b >= 0 {
			p := idx + b + 1
			return src[:p] + ins + src[p:]
		}
	}
	// Statement shape: prepend.
	return strings.TrimPrefix(ins, "\n") + "\n" + src
}

func firstFunction(src string) string {
	unit, _ := solidity.Parse(src)
	var out string
	solidity.Walk(unit, func(n solidity.Node) bool {
		if out != "" {
			return false
		}
		if fn, ok := n.(*solidity.FunctionDecl); ok && fn.Body != nil && len(fn.Body.Stmts) > 0 {
			s, e := fn.Pos().Offset, fn.End().Offset
			if s >= 0 && e > s && e <= len(src) {
				out = src[s:e]
			}
			return false
		}
		return true
	})
	return out
}

func firstStatements(src string, maxStmts int) string {
	unit, _ := solidity.Parse(src)
	var parts []string
	solidity.Walk(unit, func(n solidity.Node) bool {
		if len(parts) >= maxStmts {
			return false
		}
		if fn, ok := n.(*solidity.FunctionDecl); ok && fn.Body != nil {
			for _, st := range fn.Body.Stmts {
				if len(parts) >= maxStmts {
					break
				}
				s, e := st.Pos().Offset, st.End().Offset
				if s >= 0 && e > s && e <= len(src) {
					parts = append(parts, strings.TrimSpace(src[s:e]))
				}
			}
			return false
		}
		return true
	})
	return strings.Join(parts, "\n")
}

// pseudoLines mix Solidity keywords (so the keyword filter passes) with
// natural-language punctuation that defeats even the fuzzy grammar.
var pseudoLines = []string{
	"contract MyToken should have a mapping balances, or a struct maybe?",
	"then call transfer(to, amount) and check, did require succeed?",
	"function withdraw() ... but where, exactly, does onlyOwner go?",
	"if owner == msg.sender then selfdestruct, else revert the payable, ok?",
	"mapping(address => uint) but how do I iterate it, with keys??",
	"constructor takes the address, then: owner = ???",
	"first pragma solidity, second the contract, third deploy, right?",
}

func pseudoSnippet(rng *rand.Rand) string {
	n := 2 + rng.Intn(3)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString(pseudoLines[rng.Intn(len(pseudoLines))])
		sb.WriteByte('\n')
	}
	return sb.String()
}

var jsLines = []string{
	"const Web3 = require('web3');",
	"const web3 = new Web3('http://localhost:8545');",
	"const instance = await MyContract.deployed();",
	"await instance.methods.withdraw(amount).send({from: accounts[0]});",
	"const receipt = await web3.eth.sendTransaction({to: addr, value: 1});",
	"console.log(await web3.eth.getBalance(accounts[0]));",
	"truffle migrate --reset --network development",
}

func jsSnippet(rng *rand.Rand) string {
	n := 2 + rng.Intn(4)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString(jsLines[rng.Intn(len(jsLines))])
		sb.WriteByte('\n')
	}
	return sb.String()
}

var proseLines = []string{
	"You need to compile it first, then deploy with remix.",
	"The gas estimation fails because the node is out of sync.",
	"Check the ABI and make sure the account is unlocked.",
	"This error usually means the nonce is wrong, reset the account.",
}

func proseSnippet(rng *rand.Rand) string {
	return proseLines[rng.Intn(len(proseLines))]
}

// --- keyword filter ---------------------------------------------------------

// solidityOnlyKeywords are keywords unique to Solidity after removing those
// shared with JavaScript (the paper reduces 251 Solidity keywords to 166
// unique ones; this list covers the discriminative core).
var solidityOnlyKeywords = []string{
	"pragma", "solidity", "contract", "mapping", "uint", "uint8", "uint16",
	"uint32", "uint64", "uint128", "uint256", "int8", "int16", "int256",
	"bytes32", "bytes4", "address", "payable", "modifier", "emit", "wei",
	"gwei", "szabo", "finney", "ether", "msg.sender", "msg.value",
	"keccak256", "sha3", "revert(", "selfdestruct", "suicide",
	"delegatecall", "staticcall", "calldata", "memory", "storage",
	"constructor(", "immutable", "unchecked", "assembly", "indexed",
	"onlyOwner", "tx.origin", "block.timestamp", "block.number",
	"balanceOf", "transferFrom", "internal", "external", "view returns",
	"pure returns", "is Ownable", "receive()", "fallback()",
}

// IsSolidityLike implements the keyword filter of Section 6.1: a snippet
// passes when it contains at least one Solidity-unique keyword.
func IsSolidityLike(src string) bool {
	for _, kw := range solidityOnlyKeywords {
		if strings.Contains(src, kw) {
			return true
		}
	}
	return false
}
