package dataset

import (
	"fmt"
	"strings"

	"repro/internal/ccc"
	"repro/internal/solidity"
)

// LabeledFile is one benchmark file with category-labeled vulnerabilities,
// mirroring the structure of SmartBugs Curated: files are grouped per
// category and every file carries zero or more labels of that category.
type LabeledFile struct {
	Name     string
	Category ccc.Category
	Source   string
	// Labels is the number of labeled vulnerabilities of Category in Source.
	Labels int
	// VulnFuncs names the functions containing the labels (used to derive
	// the Functions/Statements snippet datasets).
	VulnFuncs []string
	// Detectable counts how many labels stem from patterns within reach of
	// source-level pattern matching (generator ground truth; not visible to
	// the evaluated tools).
	Detectable int
}

// Benchmark is the labeled vulnerability benchmark.
type Benchmark struct {
	Files []LabeledFile
}

// Labels returns the total number of labels, optionally per category.
func (b Benchmark) Labels() int {
	total := 0
	for _, f := range b.Files {
		total += f.Labels
	}
	return total
}

// CategoryLabels returns the label count for one category.
func (b Benchmark) CategoryLabels(cat ccc.Category) int {
	total := 0
	for _, f := range b.Files {
		if f.Category == cat {
			total += f.Labels
		}
	}
	return total
}

// categoryPlan fixes the per-category label counts of Table 1 and the mix of
// detectable vs deliberately-missed instances that gives the benchmark the
// same recall head-room the paper's dataset has.
type categoryPlan struct {
	cat        ccc.Category
	labels     int // Table 1 "#" column
	hardLabels int // labels drawn from Detectable:false templates
	decoys     int // benign decoy files added to the category's test set
}

var smartBugsPlan = []categoryPlan{
	{ccc.AccessControl, 21, 10, 2},
	{ccc.Arithmetic, 23, 5, 2},
	{ccc.BadRandomness, 31, 19, 2},
	{ccc.DenialOfService, 7, 1, 1},
	{ccc.FrontRunning, 7, 5, 1},
	{ccc.Reentrancy, 32, 4, 1},
	{ccc.ShortAddresses, 1, 0, 0},
	{ccc.TimeManipulation, 7, 0, 1},
	{ccc.UncheckedCalls, 75, 0, 0},
}

// GenerateSmartBugs builds the labeled benchmark: 204 labels across 9 DASP
// categories with the paper's per-category counts, instantiated from
// mutated vulnerability templates plus benign decoy files.
func GenerateSmartBugs(seed int64) Benchmark {
	m := NewMutator(seed)
	var b Benchmark
	for _, plan := range smartBugsPlan {
		easy, hard := splitTemplates(TemplatesFor(plan.cat))
		// Deliberately-missed labels first.
		b.emit(m, plan.cat, hard, plan.hardLabels, false)
		// Detectable labels.
		b.emit(m, plan.cat, easy, plan.labels-plan.hardLabels, true)
		// Decoys.
		var decoys []Template
		for _, d := range decoyTemplates {
			if d.Category == plan.cat {
				decoys = append(decoys, d)
			}
		}
		for i := 0; i < plan.decoys; i++ {
			var src string
			if len(decoys) > 0 {
				src = m.Mutate(decoys[i%len(decoys)].Source, i%2)
			} else {
				src = m.Mutate(mitigatedTemplates[i%len(mitigatedTemplates)], 1)
			}
			b.Files = append(b.Files, LabeledFile{
				Name:     fmt.Sprintf("%s_decoy_%d.sol", slug(plan.cat), i),
				Category: plan.cat,
				Source:   src,
			})
		}
	}
	return b
}

func splitTemplates(ts []Template) (easy, hard []Template) {
	for _, t := range ts {
		if t.Detectable {
			easy = append(easy, t)
		} else {
			hard = append(hard, t)
		}
	}
	return easy, hard
}

// emit instantiates templates until `labels` labels are generated.
func (b *Benchmark) emit(m *Mutator, cat ccc.Category, ts []Template, labels int, detectable bool) {
	if labels <= 0 || len(ts) == 0 {
		return
	}
	idx := 0
	for labels > 0 {
		t := ts[idx%len(ts)]
		strength := idx % 3
		src := m.Mutate(t.Source, strength)
		n := t.Labels
		if n > labels {
			n = labels
		}
		det := 0
		if detectable {
			det = n
		}
		b.Files = append(b.Files, LabeledFile{
			Name:       fmt.Sprintf("%s_%s_%d.sol", slug(cat), t.Name, idx),
			Category:   cat,
			Source:     src,
			Labels:     n,
			VulnFuncs:  []string{t.VulnFunc},
			Detectable: det,
		})
		labels -= n
		idx++
	}
}

func slug(cat ccc.Category) string {
	return strings.ReplaceAll(strings.ToLower(string(cat)), " ", "_")
}

// --- derived snippet datasets (Section 4.6.1) ---------------------------------

// DeriveFunctions extracts each file's labeled function(s) into standalone,
// non-compilable snippets (the Functions dataset). Label counts are
// preserved.
func DeriveFunctions(b Benchmark) Benchmark {
	var out Benchmark
	for _, f := range b.Files {
		src := extractFunctions(f.Source, f.VulnFuncs)
		if src == "" {
			src = f.Source
		}
		nf := f
		nf.Name = strings.TrimSuffix(f.Name, ".sol") + "_fn.sol"
		nf.Source = src
		out.Files = append(out.Files, nf)
	}
	return out
}

// DeriveStatements extracts the labeled functions' body statements without
// the function headers (the Statements dataset, up to five statements of
// context).
func DeriveStatements(b Benchmark) Benchmark {
	var out Benchmark
	for _, f := range b.Files {
		src := extractStatements(f.Source, f.VulnFuncs, 5)
		if src == "" {
			src = f.Source
		}
		nf := f
		nf.Name = strings.TrimSuffix(f.Name, ".sol") + "_stmt.sol"
		nf.Source = src
		out.Files = append(out.Files, nf)
	}
	return out
}

// extractFunctions returns the source text of the named functions (plus the
// default function when name is empty). When mutation renamed the labeled
// function away, every non-constructor function with a body is extracted
// instead, preserving the function-level snippet shape.
func extractFunctions(src string, names []string) string {
	unit, _ := solidity.Parse(src)
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	collect := func(match func(*solidity.FunctionDecl) bool) []string {
		var parts []string
		solidity.Walk(unit, func(n solidity.Node) bool {
			fn, ok := n.(*solidity.FunctionDecl)
			if !ok {
				return true
			}
			if match(fn) {
				s, e := fn.Pos().Offset, fn.End().Offset
				if s >= 0 && e > s && e <= len(src) {
					parts = append(parts, src[s:e])
				}
			}
			return true
		})
		return parts
	}
	parts := collect(func(fn *solidity.FunctionDecl) bool {
		return want[fn.Name] || (fn.Name == "" && want[""])
	})
	if len(parts) == 0 {
		parts = collect(func(fn *solidity.FunctionDecl) bool {
			return !fn.IsConstructor && fn.Body != nil && len(fn.Body.Stmts) > 0
		})
	}
	return strings.Join(parts, "\n\n")
}

// extractStatements returns up to maxStmts statements from the bodies of the
// named functions, without the headers. Falls back to the first function
// with a body when the labeled name was renamed away.
func extractStatements(src string, names []string, maxStmts int) string {
	unit, _ := solidity.Parse(src)
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	collect := func(match func(*solidity.FunctionDecl) bool) []string {
		var parts []string
		solidity.Walk(unit, func(n solidity.Node) bool {
			fn, ok := n.(*solidity.FunctionDecl)
			if !ok {
				return true
			}
			if !match(fn) || fn.Body == nil {
				return true
			}
			for _, st := range fn.Body.Stmts {
				if len(parts) >= maxStmts {
					break
				}
				s, e := st.Pos().Offset, st.End().Offset
				if s >= 0 && e > s && e <= len(src) {
					parts = append(parts, strings.TrimSpace(src[s:e]))
				}
			}
			return true
		})
		return parts
	}
	parts := collect(func(fn *solidity.FunctionDecl) bool {
		return want[fn.Name] || (fn.Name == "" && want[""])
	})
	if len(parts) == 0 {
		parts = collect(func(fn *solidity.FunctionDecl) bool {
			return !fn.IsConstructor && fn.Body != nil && len(fn.Body.Stmts) > 0
		})
	}
	return strings.Join(parts, "\n")
}
