package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// DeployedContract is one verified contract of the sanctuary corpus.
type DeployedContract struct {
	Address  string
	Name     string
	Deployed time.Time
	Compiler string // "v0.4".."v0.8"
	Source   string
	// FromSnippet names the Q&A snippet whose code was embedded (generator
	// ground truth; "" when the contract contains no planted clone).
	FromSnippet string
	// PlantedBefore marks clones planted with a deployment time BEFORE the
	// snippet's posting (the third-source/confused-direction case).
	PlantedBefore bool
}

// SanctuaryConfig parameterizes the deployed-contract generator.
type SanctuaryConfig struct {
	Seed int64
	// Scale shrinks the paper's corpus (1.0 ≈ 323,328 contracts).
	Scale float64
	// CloneFraction is the fraction of contracts embedding a Q&A snippet
	// (paper: 135,408/323,328 ≈ 0.42).
	CloneFraction float64
	// BeforeFraction is the fraction of planted clones deployed before the
	// snippet was posted (confusing causal direction).
	BeforeFraction float64
}

const paperSanctuarySize = 323328

// compilerDist reproduces the paper's compiler version distribution
// (59% v0.8, 16% v0.6, 13% v0.4, 7.4% v0.5, ~4% v0.7).
var compilerDist = []struct {
	version string
	p       float64
}{
	{"v0.8", 0.59}, {"v0.6", 0.16}, {"v0.4", 0.13}, {"v0.5", 0.074}, {"v0.7", 0.046},
}

func pickCompiler(rng *rand.Rand) string {
	r := rng.Float64()
	acc := 0.0
	for _, c := range compilerDist {
		acc += c.p
		if r < acc {
			return c.version
		}
	}
	return "v0.8"
}

// sanctuaryEnd is the sanctuary cutoff (July 14, 2023).
var sanctuaryEnd = time.Date(2023, 7, 14, 0, 0, 0, 0, time.UTC)

// GenerateSanctuary builds the deployed-contract corpus. A CloneFraction of
// contracts embed a mutated copy of a Solidity snippet from the Q&A corpus;
// snippet selection is popularity-biased for snippets marked Viral, which
// plants the views-vs-adoption correlation that Table 5 measures, and the
// planted deployment times encode the causal direction (after the post for
// disseminator/source relations, before it for third-source noise).
func GenerateSanctuary(cfg SanctuaryConfig, qa QACorpus) []DeployedContract {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.02
	}
	if cfg.CloneFraction == 0 {
		cfg.CloneFraction = 0.42
	}
	if cfg.BeforeFraction == 0 {
		cfg.BeforeFraction = 0.16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := NewMutator(cfg.Seed + 13)
	total := scaleCount(paperSanctuarySize, cfg.Scale)

	// Candidate snippets: parsable Solidity only.
	var candidates []Snippet
	for _, s := range qa.Snippets {
		if s.Kind == KindSolidity {
			candidates = append(candidates, s)
		}
	}
	// Provenance: most snippets are originals (the code first appeared in
	// the post; every deployed clone comes later). A views-biased minority
	// are reposts of code that already lived on chain, so their clones can
	// predate the post. This per-snippet split is what separates the
	// All/Disseminator/Source correlations of Table 5.
	reposted := make([]bool, len(candidates))
	adopted := make([]bool, len(candidates))
	viewRank := rankByViews(candidates)
	for i := range candidates {
		p := cfg.BeforeFraction + 0.3*viewRank[i]
		reposted[i] = rng.Float64() < p
		// Only a minority of snippets are ever adopted on-chain (paper:
		// 4,524 of 18,660 snippets have at least one containing contract).
		adopted[i] = rng.Float64() < 0.12+0.4*viewRank[i]
	}
	weights := cloneWeights(candidates, reposted, adopted, viewRank, rng)

	out := make([]DeployedContract, 0, total)
	for i := 0; i < total; i++ {
		addr := fmt.Sprintf("0x%040x", rng.Int63())
		name := fillerNames[rng.Intn(len(fillerNames))]
		c := DeployedContract{
			Address:  addr,
			Name:     name,
			Compiler: pickCompiler(rng),
		}
		if len(candidates) > 0 && rng.Float64() < cfg.CloneFraction {
			ci := sampleIndex(rng, weights)
			sn := candidates[ci]
			c.FromSnippet = sn.ID
			// Orphan snippets (functions/statements) become contracts first,
			// then the paste gets mutated and (sometimes) embedded.
			src := sn.Source
			if !containsContract(src) {
				if !strings.Contains(src, "function") && !strings.Contains(src, "constructor") &&
					!strings.Contains(src, "modifier") {
					src = "function run() public {\n" + indent(src) + "\n}"
				}
				src = "contract " + name + " {\n" + indent(src) + "\n}\n"
			}
			src = m.Mutate(src, 1+rng.Intn(2))
			if rng.Float64() < 0.3 {
				src = m.Embed(src, name+"Impl")
			}
			// A fraction of developers fixed the bug after pasting: the
			// contract stays a clone but mitigates the vulnerability
			// (the paper's 17,852 of 21,047 validated-vulnerable rate).
			if rng.Float64() < 0.18 {
				src = mitigateClone(src)
			}
			c.Source = src
			if reposted[ci] && rng.Float64() < 0.45 {
				// Deployed before the snippet was posted.
				c.PlantedBefore = true
				span := sn.Created.Sub(crawlStart)
				if span <= 0 {
					span = time.Hour
				}
				c.Deployed = crawlStart.Add(time.Duration(rng.Int63n(int64(span))))
			} else {
				span := sanctuaryEnd.Sub(sn.Created)
				if span <= 0 {
					span = time.Hour
				}
				c.Deployed = sn.Created.Add(time.Duration(rng.Int63n(int64(span))))
			}
		} else {
			// Unrelated contract.
			src := mitigatedTemplates[rng.Intn(len(mitigatedTemplates))]
			c.Source = m.Mutate(src, 2+rng.Intn(2))
			c.Deployed = crawlStart.Add(time.Duration(rng.Int63n(int64(sanctuaryEnd.Sub(crawlStart)))))
		}
		out = append(out, c)
	}
	return out
}

// rankByViews returns each snippet's view rank normalized to (0,1].
func rankByViews(snippets []Snippet) []float64 {
	idx := make([]int, len(snippets))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return snippets[idx[a]].Views < snippets[idx[b]].Views })
	out := make([]float64, len(snippets))
	for rank, i := range idx {
		out[i] = float64(rank+1) / float64(len(idx))
	}
	return out
}

// cloneWeights biases clone planting: for original snippets the adoption
// rate grows with visibility (especially for the Viral subset) — developers
// copy what they see — while reposted snippets get weights independent of
// their views (their on-chain prevalence was determined before the post),
// which dilutes the correlation for the unrestricted "All Snippets" group.
func cloneWeights(snippets []Snippet, reposted, adopted []bool, viewRank []float64, rng *rand.Rand) []float64 {
	w := make([]float64, len(snippets))
	for i := range snippets {
		switch {
		case !adopted[i]:
			w[i] = 0
		case reposted[i]:
			w[i] = 0.5 + 5*rng.Float64()
		case snippets[i].Viral:
			w[i] = 1 + 8*math.Pow(viewRank[i], 2)
		default:
			w[i] = 0.8 + 1.2*viewRank[i]
		}
	}
	// Prefix sums for sampling.
	for i := 1; i < len(w); i++ {
		w[i] += w[i-1]
	}
	return w
}

func sampleIndex(rng *rand.Rand, prefix []float64) int {
	if len(prefix) == 0 {
		return 0
	}
	r := rng.Float64() * prefix[len(prefix)-1]
	lo, hi := 0, len(prefix)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if prefix[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// mitigateClone applies textual fixes a careful developer would make after
// pasting: checks-effects-interactions reordering (reentrancy), an ownership
// guard at function entry (access control / front running), and a
// msg.data.length check (short addresses). The result remains a Type-III
// clone of the snippet.
func mitigateClone(src string) string {
	lines := strings.Split(src, "\n")
	// Reorder external call before state write (CEI).
	for i := 0; i+1 < len(lines); i++ {
		l := lines[i]
		if !strings.Contains(l, ".call{value") && !strings.Contains(l, ".call.value") {
			continue
		}
		next := lines[i+1]
		if strings.Contains(next, "-=") || strings.Contains(next, "= 0;") {
			lines[i], lines[i+1] = next, l
		}
	}
	// Token-cheap fixes only: heavier rewrites (added guard lines) would
	// drop the contract below the conservative clone threshold, removing it
	// from the study entirely rather than flipping its validation verdict.
	var out []string
	for _, l := range lines {
		t := strings.TrimSpace(l)
		indentPfx := l[:len(l)-len(strings.TrimLeft(l, " \t"))]
		// Unchecked low-level calls: consume the result (2 extra tokens).
		if isBareCallStatement(t) {
			l = indentPfx + "require(" + strings.TrimSuffix(t, ";") + ");"
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// isBareCallStatement reports whether the line is a standalone low-level
// call whose result is discarded.
func isBareCallStatement(t string) bool {
	if !strings.HasSuffix(t, ";") {
		return false
	}
	if !strings.Contains(t, ".call") && !strings.Contains(t, ".send(") {
		return false
	}
	for _, pfx := range []string{"require", "assert", "if", "return", "bool", "uint", "("} {
		if strings.HasPrefix(t, pfx) {
			return false
		}
	}
	return !strings.Contains(t, "=") || strings.Contains(t, "==")
}

// compoundUpdate parses `X op= Y;` textually, returning the operand texts.
func compoundUpdate(t string) (x, y, op string, ok bool) {
	for _, candidate := range []string{"-=", "+="} {
		i := strings.Index(t, candidate)
		if i < 0 {
			continue
		}
		x = strings.TrimSpace(t[:i])
		y = strings.TrimSpace(strings.TrimSuffix(t[i+2:], ";"))
		if x == "" || y == "" || strings.ContainsAny(x, "(){}") || strings.ContainsAny(y, "(){}") {
			return "", "", "", false
		}
		return x, y, candidate, true
	}
	return "", "", "", false
}

func containsContract(src string) bool {
	return strings.Contains(src, "contract ") || strings.Contains(src, "library ") ||
		strings.Contains(src, "interface ")
}

func indent(src string) string {
	lines := strings.Split(src, "\n")
	for i, l := range lines {
		lines[i] = "\t" + l
	}
	return strings.Join(lines, "\n")
}
