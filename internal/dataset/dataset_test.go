package dataset

import (
	"testing"

	"repro/internal/ccc"
	"repro/internal/solidity"
)

func TestSmartBugsLabelCounts(t *testing.T) {
	b := GenerateSmartBugs(1)
	if got := b.Labels(); got != 204 {
		t.Fatalf("total labels: %d, want 204", got)
	}
	want := map[ccc.Category]int{
		ccc.AccessControl: 21, ccc.Arithmetic: 23, ccc.BadRandomness: 31,
		ccc.DenialOfService: 7, ccc.FrontRunning: 7, ccc.Reentrancy: 32,
		ccc.ShortAddresses: 1, ccc.TimeManipulation: 7, ccc.UncheckedCalls: 75,
	}
	for cat, n := range want {
		if got := b.CategoryLabels(cat); got != n {
			t.Errorf("%s: %d labels, want %d", cat, got, n)
		}
	}
}

func TestSmartBugsDeterministic(t *testing.T) {
	a := GenerateSmartBugs(42)
	b := GenerateSmartBugs(42)
	if len(a.Files) != len(b.Files) {
		t.Fatal("file counts differ")
	}
	for i := range a.Files {
		if a.Files[i].Source != b.Files[i].Source {
			t.Fatalf("file %d differs", i)
		}
	}
	c := GenerateSmartBugs(43)
	same := true
	for i := range a.Files {
		if i < len(c.Files) && a.Files[i].Source != c.Files[i].Source {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestSmartBugsFilesParse(t *testing.T) {
	b := GenerateSmartBugs(1)
	for _, f := range b.Files {
		if _, err := solidity.Parse(f.Source); err != nil {
			t.Errorf("%s does not parse: %v", f.Name, err)
		}
	}
}

// TestTemplateDetectability pins the generator's ground truth: every
// Detectable template is found by CCC in its own category, every
// !Detectable template is missed. This keeps the Table 1 shape meaningful.
func TestTemplateDetectability(t *testing.T) {
	for _, tmpl := range vulnTemplates {
		rep, _ := ccc.AnalyzeSource(tmpl.Source)
		got := rep.HasCategory(tmpl.Category)
		if got != tmpl.Detectable {
			t.Errorf("template %s: CCC detection=%v, flag=%v (findings: %v)",
				tmpl.Name, got, tmpl.Detectable, rep.Findings)
		}
	}
}

// TestDecoysTriggerFalsePositives documents that decoys bait CCC into a
// finding of their category (that is their purpose); at least half must.
func TestDecoysTriggerFalsePositives(t *testing.T) {
	baited := 0
	for _, d := range decoyTemplates {
		rep, _ := ccc.AnalyzeSource(d.Source)
		if rep.HasCategory(d.Category) {
			baited++
		}
	}
	if baited*2 < len(decoyTemplates) {
		t.Errorf("only %d/%d decoys bait CCC", baited, len(decoyTemplates))
	}
}

func TestMitigatedTemplatesMostlyClean(t *testing.T) {
	dirty := 0
	for i, src := range mitigatedTemplates {
		rep, err := ccc.AnalyzeSource(src)
		if err != nil {
			t.Errorf("mitigated %d does not parse: %v", i, err)
			continue
		}
		if len(rep.Findings) > 0 {
			dirty++
			t.Logf("mitigated %d findings: %v", i, rep.Findings)
		}
	}
	if dirty > 1 {
		t.Errorf("%d mitigated templates trigger findings", dirty)
	}
}

func TestDeriveFunctions(t *testing.T) {
	b := GenerateSmartBugs(1)
	fb := DeriveFunctions(b)
	if len(fb.Files) != len(b.Files) {
		t.Fatal("file count changed")
	}
	if fb.Labels() != b.Labels() {
		t.Fatalf("labels changed: %d vs %d", fb.Labels(), b.Labels())
	}
	// Derived sources must be smaller or equal and still snippet-parsable.
	smaller := 0
	for i, f := range fb.Files {
		if len(f.Source) < len(b.Files[i].Source) {
			smaller++
		}
	}
	if smaller < len(fb.Files)/2 {
		t.Errorf("only %d/%d function derivations shrank", smaller, len(fb.Files))
	}
}

func TestDeriveStatements(t *testing.T) {
	b := GenerateSmartBugs(1)
	sb := DeriveStatements(b)
	if sb.Labels() != b.Labels() {
		t.Fatal("labels changed")
	}
	// Statement snippets must not contain function headers.
	withHeader := 0
	for _, f := range sb.Files {
		if containsWord(f.Source, "function") {
			withHeader++
		}
	}
	if withHeader > len(sb.Files)/4 {
		t.Errorf("%d/%d statement snippets still contain functions", withHeader, len(sb.Files))
	}
}

func containsWord(s, w string) bool {
	for i := 0; i+len(w) <= len(s); i++ {
		if s[i:i+len(w)] == w {
			return true
		}
	}
	return false
}

func TestHoneypotGeneration(t *testing.T) {
	hp := GenerateHoneypots(1)
	if len(hp) != 379 {
		t.Fatalf("honeypots: %d, want 379", len(hp))
	}
	counts := map[HoneypotType]int{}
	for _, h := range hp {
		counts[h.Type]++
		if _, err := solidity.Parse(h.Source); err != nil {
			t.Errorf("%s does not parse: %v", h.ID, err)
		}
	}
	if len(counts) != 9 {
		t.Fatalf("types: %d", len(counts))
	}
	if counts[HiddenStateUpdate] <= counts[BalanceDisorder] {
		t.Error("Hidden State Update must be the largest family")
	}
	for _, p := range honeypotPlans {
		if counts[p.typ] != p.family {
			t.Errorf("%s: %d, want %d", p.typ, counts[p.typ], p.family)
		}
	}
}

func TestQACorpusFunnelProportions(t *testing.T) {
	qa := GenerateQA(QAConfig{Seed: 1, Scale: 0.05})
	total := len(qa.Snippets)
	if total < 1500 {
		t.Fatalf("snippets: %d", total)
	}
	var keywordPass, parsable int
	for _, s := range qa.Snippets {
		if !IsSolidityLike(s.Source) {
			continue
		}
		keywordPass++
		if _, err := solidity.Parse(s.Source); err == nil {
			parsable++
		}
	}
	kp := float64(keywordPass) / float64(total)
	if kp < 0.55 || kp > 0.78 {
		t.Errorf("keyword-pass fraction: %.2f (want ≈0.65)", kp)
	}
	pp := float64(parsable) / float64(keywordPass)
	if pp < 0.6 || pp > 0.92 {
		t.Errorf("parsable fraction: %.2f (want ≈0.77)", pp)
	}
}

func TestQAKindsBehave(t *testing.T) {
	qa := GenerateQA(QAConfig{Seed: 2, Scale: 0.03})
	for _, s := range qa.Snippets {
		switch s.Kind {
		case KindSolidity:
			// Statement-shaped snippets may legitimately miss the keyword
			// filter; contract/function shapes must pass.
			if _, err := solidity.Parse(s.Source); err != nil {
				t.Errorf("solidity snippet unparsable: %v", err)
			}
		case KindPseudo:
			if !IsSolidityLike(s.Source) {
				t.Errorf("pseudo snippet should pass keyword filter: %q", s.Source)
			}
			if _, err := solidity.Parse(s.Source); err == nil {
				t.Errorf("pseudo snippet should not parse: %q", s.Source)
			}
		case KindJS, KindProse:
			if IsSolidityLike(s.Source) {
				t.Errorf("non-Solidity snippet passes keyword filter: %q", s.Source)
			}
		}
	}
}

func TestQATimestampsWithinCrawl(t *testing.T) {
	qa := GenerateQA(QAConfig{Seed: 3, Scale: 0.02})
	for _, p := range qa.Posts {
		if p.Created.Before(crawlStart) || p.Created.After(crawlEnd) {
			t.Fatalf("post %s outside crawl window: %v", p.ID, p.Created)
		}
		if p.Views < 0 {
			t.Fatalf("negative views")
		}
	}
}

func TestSanctuaryGeneration(t *testing.T) {
	qa := GenerateQA(QAConfig{Seed: 4, Scale: 0.02})
	sc := GenerateSanctuary(SanctuaryConfig{Seed: 4, Scale: 0.01}, qa)
	if len(sc) < 1000 {
		t.Fatalf("contracts: %d", len(sc))
	}
	snippetByID := map[string]Snippet{}
	for _, s := range qa.Snippets {
		snippetByID[s.ID] = s
	}
	var clones, before, v8 int
	for _, c := range sc {
		if c.Deployed.After(sanctuaryEnd) {
			t.Fatal("deployment after cutoff")
		}
		if c.Compiler == "v0.8" {
			v8++
		}
		if c.FromSnippet == "" {
			continue
		}
		clones++
		sn, ok := snippetByID[c.FromSnippet]
		if !ok {
			t.Fatalf("unknown snippet %s", c.FromSnippet)
		}
		if c.PlantedBefore {
			before++
			if !c.Deployed.Before(sn.Created) {
				t.Error("PlantedBefore contract deployed after snippet")
			}
		} else if c.Deployed.Before(sn.Created) {
			t.Error("disseminator contract deployed before snippet")
		}
	}
	cf := float64(clones) / float64(len(sc))
	if cf < 0.3 || cf > 0.55 {
		t.Errorf("clone fraction: %.2f", cf)
	}
	bf := float64(before) / float64(clones)
	if bf < 0.08 || bf > 0.3 {
		t.Errorf("before fraction: %.2f", bf)
	}
	if f := float64(v8) / float64(len(sc)); f < 0.5 || f > 0.7 {
		t.Errorf("v0.8 fraction: %.2f (want ≈0.59)", f)
	}
}

func TestSanctuaryClonesActuallySimilar(t *testing.T) {
	// Planted clones must parse (they are deployed contracts).
	qa := GenerateQA(QAConfig{Seed: 5, Scale: 0.02})
	sc := GenerateSanctuary(SanctuaryConfig{Seed: 5, Scale: 0.005}, qa)
	checked := 0
	for _, c := range sc {
		if c.FromSnippet == "" {
			continue
		}
		if _, err := solidity.Parse(c.Source); err != nil {
			t.Errorf("clone %s unparsable: %v", c.Address, err)
		}
		checked++
		if checked > 200 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no clones generated")
	}
}

func TestMutatorTypeIIPreservesParse(t *testing.T) {
	m := NewMutator(9)
	for _, tmpl := range vulnTemplates {
		for s := 0; s < 3; s++ {
			src := m.Mutate(tmpl.Source, s)
			if _, err := solidity.Parse(src); err != nil {
				t.Errorf("mutated %s (strength %d) unparsable: %v", tmpl.Name, s, err)
			}
		}
	}
}

func TestReplaceIdentWholeWord(t *testing.T) {
	got := replaceIdent("amount amounts _amount amount;", "amount", "qty")
	want := "qty amounts _amount qty;"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestEmbedWrapsBody(t *testing.T) {
	m := NewMutator(3)
	out := m.Embed(vulnTemplates[0].Source, "Host")
	if _, err := solidity.Parse(out); err != nil {
		t.Fatalf("embedded source unparsable: %v", err)
	}
	if !containsWord(out, "contract Host") {
		t.Error("host contract missing")
	}
}
