// Package dataset generates the synthetic corpora standing in for the
// paper's external datasets: a SmartBugs-Curated-like labeled vulnerability
// benchmark (with the Functions and Statements snippet derivations), the
// honeypot clone-detection benchmark, the Q&A snippet corpus, and the
// deployed-contract "sanctuary" with planted, time-stamped clone relations.
// All generators are deterministic under a seed.
package dataset

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/ccc"
)

// Template is one vulnerable (or deliberately tricky benign) code pattern.
type Template struct {
	// Name identifies the template.
	Name string
	// Category is the DASP category the pattern belongs to.
	Category ccc.Category
	// Source is the contract source; the vulnerable function is VulnFunc.
	Source string
	// VulnFunc names the function containing the labeled vulnerability.
	VulnFunc string
	// Labels is the number of labeled vulnerability instances in Source.
	Labels int
	// Detectable records whether CCC's pattern catches this variant
	// (false = deliberate false negative: obfuscated or context-dependent).
	Detectable bool
	// Decoy marks benign code that baits detectors into false positives
	// (mitigations expressed in ways pattern matching does not recognize).
	Decoy bool
}

// Vulnerable templates, several per category, mirroring the idioms the
// SmartBugs Curated categories are defined by.
var vulnTemplates = []Template{
	// --- Reentrancy ----------------------------------------------------------
	{
		Name: "reentrancy-dao", Category: ccc.Reentrancy, VulnFunc: "withdraw", Labels: 1, Detectable: true,
		Source: `contract SimpleDAO {
	mapping(address => uint) public credit;
	event Withdrawn(address who, uint amount);
	function donate(address to) public payable { credit[to] += msg.value; }
	function withdraw(uint amount) public {
		if (credit[msg.sender] >= amount) {
			msg.sender.call{value: amount}("");
			credit[msg.sender] -= amount;
		}
	}
	function safePull(uint amount) public {
		require(credit[msg.sender] >= amount);
		credit[msg.sender] -= amount;
		msg.sender.transfer(amount);
		emit Withdrawn(msg.sender, amount);
	}
}`,
	},
	{
		Name: "reentrancy-etherstore", Category: ccc.Reentrancy, VulnFunc: "withdrawFunds", Labels: 1, Detectable: true,
		Source: `contract EtherStore {
	mapping(address => uint256) public balances;
	uint256 public withdrawalLimit = 1 ether;
	event Paid(address who);
	function depositFunds() public payable { balances[msg.sender] += msg.value; }
	function withdrawFunds(uint256 weiToWithdraw) public {
		require(balances[msg.sender] >= weiToWithdraw);
		msg.sender.call{value: weiToWithdraw}("");
		balances[msg.sender] -= weiToWithdraw;
	}
	function refundSmall() public {
		require(balances[msg.sender] <= withdrawalLimit);
		balances[msg.sender] = 0;
		msg.sender.transfer(balances[msg.sender]);
		emit Paid(msg.sender);
	}
}`,
	},
	{
		Name: "reentrancy-legacy-value", Category: ccc.Reentrancy, VulnFunc: "collect", Labels: 1, Detectable: true,
		Source: `contract PrivateBank {
	mapping(address => uint) public balances;
	function deposit() public payable { balances[msg.sender] += msg.value; }
	function collect(uint amount) public {
		if (balances[msg.sender] >= amount) {
			msg.sender.call.value(amount)();
			balances[msg.sender] -= amount;
		}
	}
}`,
	},
	{
		Name: "reentrancy-external-token", Category: ccc.Reentrancy, VulnFunc: "cashOut", Labels: 1, Detectable: true,
		Source: `contract TokenBank {
	mapping(address => uint) balances;
	function cashOut(address receiver) public {
		uint amount = balances[msg.sender];
		Receiver(receiver).acceptPayment{value: amount}(amount);
		balances[msg.sender] = 0;
	}
}`,
	},
	{
		Name: "reentrancy-crossfunction", Category: ccc.Reentrancy, VulnFunc: "pull", Labels: 1, Detectable: false,
		// Hidden behind assembly: CCC does not model assembly (Section 4.5).
		Source: `contract AsmVault {
	mapping(address => uint) balances;
	function pull() public {
		uint amount = balances[msg.sender];
		assembly { let ok := call(gas(), caller(), amount, 0, 0, 0, 0) }
		balances[msg.sender] = 0;
	}
}`,
	},
	// --- Access Control --------------------------------------------------------
	{
		Name: "ac-unprotected-owner", Category: ccc.AccessControl, VulnFunc: "initContract", Labels: 1, Detectable: true,
		Source: `contract Phishable {
	address public owner;
	function initContract() public { owner = msg.sender; }
	function withdrawAll(address dest) public {
		require(msg.sender == owner);
		dest.transfer(address(this).balance);
	}
}`,
	},
	{
		Name: "ac-selfdestruct", Category: ccc.AccessControl, VulnFunc: "destroy", Labels: 1, Detectable: true,
		Source: `contract SuicideMultiTx {
	address owner;
	function destroy() public { selfdestruct(msg.sender); }
	function deposit() public payable { require(msg.value > 0); }
}`,
	},
	{
		Name: "ac-parity-proxy", Category: ccc.AccessControl, VulnFunc: "", Labels: 1, Detectable: true,
		Source: `contract WalletProxy {
	address walletLibrary;
	function () payable { walletLibrary.delegatecall(msg.data); }
}`,
	},
	{
		Name: "ac-txorigin", Category: ccc.AccessControl, VulnFunc: "sendTo", Labels: 1, Detectable: true,
		Source: `contract TxOriginWallet {
	address owner;
	constructor() { owner = msg.sender; }
	function sendTo(address receiver, uint amount) public {
		require(tx.origin == owner);
		receiver.transfer(amount);
	}
}`,
	},
	{
		Name: "ac-array-length-underflow", Category: ccc.AccessControl, VulnFunc: "popBonus", Labels: 1, Detectable: false,
		// Access gained through array length manipulation: out of pattern
		// scope for CCC's access-control queries.
		Source: `contract BonusLedger {
	address owner;
	uint[] bonusCodes;
	constructor() { owner = msg.sender; }
	function popBonus() public {
		bonusCodes.length--;
	}
	function setBonus(uint idx, uint value) public {
		bonusCodes[idx] = value;
	}
}`,
	},
	// --- Arithmetic --------------------------------------------------------------
	{
		Name: "arith-token-transfer", Category: ccc.Arithmetic, VulnFunc: "transfer", Labels: 2, Detectable: true,
		Source: `contract BecToken {
	mapping(address => uint256) balances;
	function transfer(address to, uint256 value) public returns (bool) {
		balances[msg.sender] -= value;
		balances[to] += value;
		return true;
	}
}`,
	},
	{
		Name: "arith-batch-overflow", Category: ccc.Arithmetic, VulnFunc: "batchTransfer", Labels: 3, Detectable: true,
		Source: `contract BatchToken {
	mapping(address => uint256) balances;
	function batchTransfer(address[] memory receivers, uint256 value) public {
		uint256 amount = receivers.length * value;
		balances[msg.sender] -= amount;
		for (uint i = 0; i < receivers.length; i++) {
			balances[receivers[i]] += value;
		}
	}
}`,
	},
	{
		Name: "arith-locktime", Category: ccc.Arithmetic, VulnFunc: "increaseLockTime", Labels: 1, Detectable: true,
		Source: `contract TimeLock {
	mapping(address => uint) public lockTime;
	function increaseLockTime(uint secondsToIncrease) public {
		lockTime[msg.sender] += secondsToIncrease;
	}
	function deposit() public payable { lockTime[msg.sender] = 1; }
}`,
	},
	{
		Name: "arith-field-only", Category: ccc.Arithmetic, VulnFunc: "tick", Labels: 1, Detectable: false,
		// No externally supplied operand: CCC's relevancy condition requires
		// a parameter source, so wrap-around of internal counters is missed.
		Source: `contract Epoch {
	uint8 round;
	function tick() public { round += 1; counter = counter + round; }
	uint counter;
}`,
	},
	// --- Unchecked Low Level Calls ---------------------------------------------------
	{
		Name: "unchecked-send", Category: ccc.UncheckedCalls, VulnFunc: "sendPayout", Labels: 1, Detectable: true,
		Source: `contract Lotto {
	mapping(address => uint) winners;
	function sendPayout(address winner, uint amount) public {
		winner.send(amount);
		winners[winner] = 0;
	}
	function safeSend(address receiver, uint amount) public {
		bool ok = receiver.send(amount);
		if (!ok) { revert(); }
	}
}`,
	},
	{
		Name: "unchecked-call", Category: ccc.UncheckedCalls, VulnFunc: "callNotChecked", Labels: 1, Detectable: true,
		Source: `contract ReturnValue {
	bool done;
	function callNotChecked(address callee) public {
		callee.call("");
		done = true;
	}
}`,
	},
	{
		Name: "unchecked-king-send", Category: ccc.UncheckedCalls, VulnFunc: "becomeKing", Labels: 1, Detectable: true,
		Source: `contract KingOfEther {
	address king;
	uint highestBid;
	function becomeKing() public payable {
		if (msg.value > highestBid) {
			king.send(highestBid);
			king = msg.sender;
			highestBid = msg.value;
		}
	}
}`,
	},
	// --- Bad Randomness -----------------------------------------------------------------
	{
		Name: "rand-blockhash-lottery", Category: ccc.BadRandomness, VulnFunc: "play", Labels: 1, Detectable: true,
		Source: `contract LuckyDoubler {
	function play() public payable {
		uint rand = uint(blockhash(block.number - 1));
		if (rand % 2 == 0) {
			msg.sender.transfer(msg.value * 2);
		}
	}
}`,
	},
	{
		Name: "rand-difficulty", Category: ccc.BadRandomness, VulnFunc: "spin", Labels: 1, Detectable: true,
		Source: `contract SlotMachine {
	function spin() public payable {
		uint256 roll = block.difficulty + block.number;
		if (roll % 7 == 3) {
			msg.sender.transfer(address(this).balance);
		}
	}
}`,
	},
	{
		Name: "rand-coinbase-seed", Category: ccc.BadRandomness, VulnFunc: "reseed", Labels: 2, Detectable: true,
		Source: `contract SeedStore {
	uint seed;
	function reseed() public {
		seedValue = uint(keccak256(abi.encodePacked(block.coinbase)));
	}
	uint seedValue;
	function randForCaller() public returns (uint) {
		uint r = uint(blockhash(block.number - 1)) % 100;
		return r;
	}
}`,
	},
	// --- Denial of Service ------------------------------------------------------------------
	{
		Name: "dos-auction-refund", Category: ccc.DenialOfService, VulnFunc: "bid", Labels: 1, Detectable: true,
		Source: `contract DosAuction {
	address currentFrontrunner;
	uint currentBid;
	function bid() public payable {
		require(msg.value > currentBid);
		currentFrontrunner.transfer(currentBid);
		currentFrontrunner = msg.sender;
		currentBid = msg.value;
	}
}`,
	},
	{
		Name: "dos-unbounded-loop", Category: ccc.DenialOfService, VulnFunc: "refundAll", Labels: 1, Detectable: true,
		Source: `contract DosNumberLoop {
	address[] investors;
	mapping(address => uint) invested;
	function invest() public payable { investors.push(msg.sender); invested[msg.sender] = msg.value; }
	function refundAll(uint upTo) public {
		for (uint i = 0; i < upTo; i++) {
			invested[investors[i]] += 1;
		}
	}
}`,
	},
	{
		Name: "dos-clearable-payees", Category: ccc.DenialOfService, VulnFunc: "setPayees", Labels: 2, Detectable: true,
		Source: `contract Dividends {
	address[] payees;
	function setPayees(address[] memory newPayees) public { payees = newPayees; }
	function payout() public {
		for (uint i = 0; i < payees.length; i++) {
			payees[i].transfer(1 ether);
		}
	}
}`,
	},
	// --- Front Running ----------------------------------------------------------------------------
	{
		Name: "fr-puzzle-winner", Category: ccc.FrontRunning, VulnFunc: "solve", Labels: 1, Detectable: true,
		Source: `contract OddsAndEvens {
	address winner;
	function solve(uint guess) public {
		require(guess == 42);
		winner = msg.sender;
	}
}`,
	},
	{
		Name: "fr-bounty-claim", Category: ccc.FrontRunning, VulnFunc: "claim", Labels: 1, Detectable: true,
		Source: `contract HashBounty {
	uint reward;
	mapping(address => uint) credit;
	function claim(bytes32 preimage) public {
		credit[msg.sender] = reward;
	}
	function fund() public payable { reward = msg.value; }
}`,
	},
	{
		Name: "fr-payout-sender", Category: ccc.FrontRunning, VulnFunc: "redeem", Labels: 1, Detectable: true,
		Source: `contract FomoPot {
	uint pot;
	function redeem(bytes32 answer) public {
		require(answer == 0x0);
		msg.sender.transfer(pot);
	}
	function fill() public payable { pot += msg.value; }
}`,
	},
	// --- Time Manipulation --------------------------------------------------------------------------
	{
		Name: "time-roulette", Category: ccc.TimeManipulation, VulnFunc: "bet", Labels: 1, Detectable: true,
		Source: `contract Roulette {
	function bet() public payable {
		require(msg.value == 10 ether);
		if (now % 15 == 0) {
			msg.sender.transfer(address(this).balance);
		}
	}
}`,
	},
	{
		Name: "time-deadline-store", Category: ccc.TimeManipulation, VulnFunc: "start", Labels: 2, Detectable: true,
		Source: `contract CrowdSale {
	uint deadline;
	function start() public {
		deadline = block.timestamp + 300;
	}
	function finish() public {
		if (block.timestamp > deadline) {
			msg.sender.transfer(address(this).balance);
		}
	}
}`,
	},
	// --- Short Addresses ---------------------------------------------------------------------------------
	{
		Name: "short-address-token", Category: ccc.ShortAddresses, VulnFunc: "sendCoin", Labels: 1, Detectable: true,
		Source: `contract ShortToken {
	mapping(address => uint) balances;
	function sendCoin(address to, uint amount) public returns (bool) {
		require(balances[msg.sender] >= amount);
		balances[msg.sender] -= amount;
		balances[to] += amount;
		return true;
	}
}`,
	},
	// --- Unknown Unknowns ---------------------------------------------------------------------------------
	{
		Name: "uu-storage-pointer", Category: ccc.UnknownUnknowns, VulnFunc: "deposit", Labels: 1, Detectable: true,
		Source: `contract StorageWallet {
	address owner;
	struct Holding { uint amount; address from; }
	function deposit() public payable {
		Holding h;
		h.amount = msg.value;
		h.from = msg.sender;
	}
}`,
	},
	// --- hard (deliberately missed) variants -----------------------------------
	{
		Name: "rand-assembly", Category: ccc.BadRandomness, VulnFunc: "roll", Labels: 1, Detectable: false,
		// Entropy handling inside assembly: out of CCC's model (Section 4.5).
		Source: `contract AsmDice {
	function roll() public payable {
		uint r;
		assembly { r := mod(timestamp(), 6) }
		if (r == 3) { msg.sender.transfer(address(this).balance); }
	}
}`,
	},
	{
		Name: "rand-read-seed", Category: ccc.BadRandomness, VulnFunc: "shuffle", Labels: 1, Detectable: false,
		// The stored seed is read elsewhere, so the write-only-field
		// relevancy condition fails; no transfer is influenced directly.
		Source: `contract SeededGame {
	uint seed;
	uint cursor;
	function shuffle() public {
		seed = uint(keccak256(abi.encodePacked(seed, block.number)));
	}
	function next() public returns (uint) {
		cursor = seed % 52;
		return cursor;
	}
}`,
	},
	{
		Name: "ac-missing-compare", Category: ccc.AccessControl, VulnFunc: "initOwner", Labels: 1, Detectable: false,
		// Ownership is never compared with ==; the access-control query's
		// base pattern (field used in msg.sender comparison) does not apply.
		Source: `contract Claimable {
	address beneficiary;
	function initOwner() public { beneficiary = msg.sender; }
	function drain() public { beneficiary.transfer(address(this).balance); }
	function fill() public payable { require(msg.value >= 1); }
}`,
	},
	{
		Name: "fr-tx-ordering", Category: ccc.FrontRunning, VulnFunc: "reveal", Labels: 1, Detectable: false,
		// Pure transaction-ordering dependence without sender-keyed state:
		// requires mempool semantics CCC does not model.
		Source: `contract Sealed {
	uint pot;
	bool resolved;
	uint stake;
	function reveal(uint secret) public {
		if (secret == 7 && !resolved) {
			resolved = true;
			pot = stake * 2;
		}
	}
}`,
	},
	{
		Name: "time-assembly", Category: ccc.TimeManipulation, VulnFunc: "expire", Labels: 1, Detectable: false,
		Source: `contract AsmExpiry {
	bool expired;
	function expire() public {
		uint t;
		assembly { t := timestamp() }
		expired = t > 1700000000;
	}
}`,
	},
	{
		Name: "dos-external-gas", Category: ccc.DenialOfService, VulnFunc: "forward", Labels: 1, Detectable: false,
		// Gas-griefing via insufficient forwarded gas: needs gas semantics.
		Source: `contract Relayer {
	mapping(bytes32 => bool) executed;
	function forward(address target, bytes memory data) public {
		bytes32 id = keccak256(data);
		require(!executed[id]);
		executed[id] = true;
		target.call{gas: 2300}(data);
	}
}`,
	},
	{
		Name: "reentrancy-view-helper", Category: ccc.Reentrancy, VulnFunc: "claimAll", Labels: 1, Detectable: false,
		// The external call hides behind assembly.
		Source: `contract HelperVault {
	mapping(address => uint) shares;
	function claimAll() public {
		uint due = shares[msg.sender];
		address who = msg.sender;
		assembly { pop(call(gas(), who, due, 0, 0, 0, 0)) }
		shares[msg.sender] = 0;
	}
}`,
	},
	{
		Name: "arith-shift", Category: ccc.Arithmetic, VulnFunc: "scale", Labels: 1, Detectable: false,
		// Overflow via shift operators, outside the +,-,* pattern set.
		Source: `contract Shifter {
	uint factor;
	function scale(uint exp) public {
		factor = 1 << exp;
	}
}`,
	},
}

// Decoy templates: benign code with unconventional mitigations that bait
// pattern-based detectors (the paper's qualitative FP analysis, Section 6.5).
var decoyTemplates = []Template{
	{
		Name: "decoy-multiowner", Category: ccc.AccessControl, VulnFunc: "setOwner", Labels: 0, Decoy: true,
		// Complex access control: the write is gated by a state flag that
		// only the owner can raise, a two-step pattern that data-flow
		// matching on msg.sender cannot see through.
		Source: `contract TimelockAdmin {
	address owner;
	bool unlocked;
	function unlock() public { require(msg.sender == owner); unlocked = true; }
	function setOwner(address next) public {
		require(unlocked);
		owner = next;
		unlocked = false;
	}
	function auth() public { require(msg.sender == owner); }
}`,
	},
	{
		Name: "decoy-safemath-custom", Category: ccc.Arithmetic, VulnFunc: "transfer", Labels: 0, Decoy: true,
		// Overflow mitigation implemented differently than SafeMath: a
		// boolean helper checked by the caller.
		Source: `contract GuardedToken {
	mapping(address => uint) balances;
	function safeToAdd(uint a, uint b) internal returns (bool) { return a + b >= a; }
	function transfer(address to, uint value) public {
		if (safeToAdd(balances[to], value)) {
			balances[msg.sender] -= value;
			balances[to] += value;
		}
	}
}`,
	},
	{
		Name: "decoy-blocknumber-epoch", Category: ccc.BadRandomness, VulnFunc: "checkpoint", Labels: 0, Decoy: true,
		// Legitimate block.number bookkeeping stored into a write-only
		// audit field (looks like a stored seed to the query).
		Source: `contract Checkpointer {
	uint lastCheckpoint;
	function checkpoint() public {
		lastCheckpoint = block.number;
	}
}`,
	},
	{
		Name: "decoy-converging-distribute", Category: ccc.DenialOfService, VulnFunc: "distribute", Labels: 0, Decoy: true,
		// Converging loop bound: benign, but recognizing it needs value
		// analysis (the paper's FP discussion calls these out).
		Source: `contract Distributor {
	uint total;
	function distribute(uint start) public {
		uint end = start + 4;
		for (uint i = start; i < end; i++) {
			total += i;
		}
	}
}`,
	},
	{
		Name: "decoy-converging-loop", Category: ccc.DenialOfService, VulnFunc: "sum", Labels: 0, Decoy: true,
		// The bound is user-supplied but clamped; needs value reasoning.
		Source: `contract Summer {
	uint total;
	function sum(uint n) public {
		uint bound = n;
		if (bound > 10) { bound = 10; }
		for (uint i = 0; i < bound; i++) { total += i; }
	}
}`,
	},
	{
		Name: "decoy-allowance-delegate", Category: ccc.FrontRunning, VulnFunc: "sweep", Labels: 0, Decoy: true,
		// Harmless allowance-delegation pattern the paper saw reported as
		// front running.
		Source: `contract AllowanceSweeper {
	mapping(address => uint) allowance;
	function sweep() public {
		uint granted = allowance[msg.sender];
		allowance[msg.sender] = 0;
		msg.sender.transfer(granted);
	}
	function grant(address to) public payable { allowance[to] = msg.value; }
}`,
	},
}

// mitigatedTemplates are clean counterparts used as filler so that corpora
// contain benign code exercising the detectors' mitigation recognition.
var mitigatedTemplates = []string{
	`contract SafeVault {
	mapping(address => uint) balances;
	function deposit() public payable { balances[msg.sender] += msg.value; }
	function withdraw(uint amount) public {
		require(balances[msg.sender] >= amount);
		balances[msg.sender] -= amount;
		msg.sender.transfer(amount);
	}
}`,
	`contract Owned {
	address owner;
	constructor() { owner = msg.sender; }
	modifier onlyOwner() { require(msg.sender == owner); _; }
	function setOwner(address next) public onlyOwner { owner = next; }
	function destroy() public onlyOwner { selfdestruct(msg.sender); }
}`,
	`contract CheckedPayout {
	function pay(address to, uint amount) public {
		require(msg.data.length >= 68);
		bool ok = to.send(amount);
		require(ok);
	}
}`,
	`contract SimpleStore {
	uint value;
	function set(uint v) public { require(v < 1000); value = v; }
	function get() public view returns (uint) { return value; }
}`,
	`contract Escrow {
	address payee;
	address payer;
	uint amount;
	constructor() { payer = msg.sender; }
	function release() public {
		require(msg.sender == payer);
		payee.transfer(amount);
	}
}`,
}

// VulnTemplates returns the vulnerable template pool (copy).
func VulnTemplates() []Template { return append([]Template(nil), vulnTemplates...) }

// DecoyTemplates returns the decoy pool (copy).
func DecoyTemplates() []Template { return append([]Template(nil), decoyTemplates...) }

// TemplatesFor returns the vulnerable templates of one category.
func TemplatesFor(cat ccc.Category) []Template {
	var out []Template
	for _, t := range vulnTemplates {
		if t.Category == cat {
			out = append(out, t)
		}
	}
	return out
}

// --- mutation engine ----------------------------------------------------------

// Mutator applies identity-preserving (Type II) and near-miss (Type III)
// mutations to template sources, producing realistic clone families.
type Mutator struct {
	rng *rand.Rand
}

// NewMutator returns a seeded mutator.
func NewMutator(seed int64) *Mutator {
	return &Mutator{rng: rand.New(rand.NewSource(seed))}
}

var fillerNames = []string{
	"Alpha", "Beta", "Gamma", "Delta", "Omega", "Nova", "Lux", "Orbit",
	"Prime", "Atlas", "Vertex", "Zenith", "Aurora", "Cobalt", "Onyx",
}

// renamePools map common template identifiers to synonym pools. Identifiers
// with language semantics (value, sender, transfer, call, data, ...) are
// deliberately absent: renaming them would change program behaviour, not
// just its surface.
var renamePools = []struct {
	base string
	pool []string
}{
	{"amount", []string{"amount", "amt", "sum", "qty", "wad", "tokens", "cash", "units"}},
	{"balances", []string{"balances", "ledger", "accounts", "userBalances", "funds", "credits", "holdings"}},
	{"owner", []string{"owner", "admin", "creator", "deployer", "boss", "root", "manager"}},
	{"to", []string{"to", "recipient", "dest", "receivr", "target_", "beneficiary"}},
	{"winner", []string{"winner", "champ", "leader", "topPlayer", "victor"}},
	{"credit", []string{"credit", "deposits", "stakes", "shares_", "grants"}},
	{"receiver", []string{"receiver", "payee", "destAddr", "sink", "getter"}},
	{"payees", []string{"payees", "members", "holders", "parties", "walletList"}},
	{"investors", []string{"investors", "backers", "players", "users_", "stakers"}},
	{"withdraw", []string{"withdraw", "take", "pull", "redeemFunds", "cashOutAll", "unstake"}},
	{"deposit", []string{"deposit", "put", "stake", "payIn", "fund_", "addFunds"}},
	{"solution", []string{"solution", "answer_", "guessVal", "input_", "proof"}},
	{"king", []string{"king", "captain", "holderNow", "current"}},
	{"pot", []string{"pot", "prizePool", "bank_", "jackpot_"}},
	{"seed", []string{"seed", "entropy", "mixer", "nonceSeed"}},
}

// RenameType2 renames the contract and several identifiers from synonym
// pools (a Type II clone). Language-semantic names are never touched.
func (m *Mutator) RenameType2(src string) string {
	out := src
	// Rename the contract.
	if i := strings.Index(out, "contract "); i >= 0 {
		rest := out[i+9:]
		if j := strings.IndexAny(rest, " {"); j > 0 {
			old := rest[:j]
			out = strings.ReplaceAll(out, old, fillerNames[m.rng.Intn(len(fillerNames))]+old[:min(3, len(old))])
		}
	}
	for _, rp := range renamePools {
		if m.rng.Float64() < 0.7 {
			repl := rp.pool[m.rng.Intn(len(rp.pool))]
			if repl != rp.base {
				out = replaceIdent(out, rp.base, repl)
			}
		}
	}
	return out
}

// replaceIdent replaces whole-word occurrences of old with new.
func replaceIdent(src, old, new string) string {
	var sb strings.Builder
	for i := 0; i < len(src); {
		j := strings.Index(src[i:], old)
		if j < 0 {
			sb.WriteString(src[i:])
			break
		}
		j += i
		beforeOK := j == 0 || !isWordByte(src[j-1])
		after := j + len(old)
		afterOK := after >= len(src) || !isWordByte(src[after])
		sb.WriteString(src[i:j])
		if beforeOK && afterOK {
			sb.WriteString(new)
		} else {
			sb.WriteString(old)
		}
		i = after
	}
	return sb.String()
}

func isWordByte(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

var fillerFunctions = []string{
	"\tfunction ping() public returns (uint) { return 1; }\n",
	"\tfunction version() public returns (uint) { return 3; }\n",
	"\tevent Log(address who, uint what);\n",
	"\tfunction ownerOf() public returns (address) { return address(this); }\n",
	"\tuint internalCounter;\n\tfunction bumpInternal() internal { internalCounter = internalCounter + 1; }\n",
	"\tstring public name_ = \"instance\";\n",
}

// AddFiller inserts a harmless extra member (a Type III edit).
func (m *Mutator) AddFiller(src string) string {
	i := strings.LastIndexByte(src, '}')
	if i <= 0 {
		return src
	}
	f := fillerFunctions[m.rng.Intn(len(fillerFunctions))]
	return src[:i] + f + src[i:]
}

// AddComment prepends a comment block (a Type I edit).
func (m *Mutator) AddComment(src string) string {
	return fmt.Sprintf("// deployed build %d\n/* auto-generated header */\n%s", m.rng.Intn(100000), src)
}

// Mutate applies a random mix of Type I-III edits of the given strength
// (0 = comments only, 1 = +renames, 2+ = +filler members).
func (m *Mutator) Mutate(src string, strength int) string {
	out := m.AddComment(src)
	if strength >= 1 {
		out = m.RenameType2(out)
	}
	for i := 2; i <= strength; i++ {
		out = m.AddFiller(out)
	}
	return out
}

// Embed splices the snippet's contract body into a host contract with extra
// members around it, simulating a developer pasting a snippet into their
// own contract.
func (m *Mutator) Embed(snippet, hostName string) string {
	body := contractBody(snippet)
	var extra strings.Builder
	for range 1 + m.rng.Intn(2) {
		extra.WriteString(fillerFunctions[m.rng.Intn(len(fillerFunctions))])
	}
	return fmt.Sprintf("contract %s {\n%s\n%s}\n", hostName, body, extra.String())
}

// contractBody extracts the inside of the first contract declaration, or
// returns the source unchanged when no contract wrapper exists.
func contractBody(src string) string {
	i := strings.Index(src, "contract ")
	if i < 0 {
		return src
	}
	j := strings.IndexByte(src[i:], '{')
	if j < 0 {
		return src
	}
	start := i + j + 1
	depth := 1
	for k := start; k < len(src); k++ {
		switch src[k] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return src[start:k]
			}
		}
	}
	return src[start:]
}
