package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestRanks(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("rank %d: %v want %v", i, r[i], want[i])
		}
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if p := Pearson(x, y); math.Abs(p-1) > 1e-12 {
		t.Errorf("pearson: %v", p)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if p := Pearson(x, neg); math.Abs(p+1) > 1e-12 {
		t.Errorf("pearson: %v", p)
	}
}

func TestSpearmanMonotonic(t *testing.T) {
	// Spearman is invariant to monotone transforms.
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v) // monotone
	}
	rho, p := Spearman(x, y)
	if math.Abs(rho-1) > 1e-12 {
		t.Errorf("rho: %v", rho)
	}
	if p > 0.001 {
		t.Errorf("p: %v", p)
	}
}

func TestSpearmanIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 2000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
	}
	rho, p := Spearman(x, y)
	if math.Abs(rho) > 0.08 {
		t.Errorf("rho for independent data: %v", rho)
	}
	if p < 0.01 {
		t.Errorf("independent data should not be significant: p=%v rho=%v", p, rho)
	}
}

func TestSpearmanCorrelatedSignificant(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = x[i]*0.5 + rng.Float64()*0.8
	}
	rho, p := Spearman(x, y)
	if rho < 0.2 {
		t.Errorf("rho: %v", rho)
	}
	if p > 0.001 {
		t.Errorf("p: %v", p)
	}
}

func TestSpearmanTiesHandled(t *testing.T) {
	x := []float64{1, 1, 1, 2, 2, 3, 4, 5}
	y := []float64{1, 2, 1, 3, 3, 4, 5, 6}
	rho, _ := Spearman(x, y)
	if rho <= 0.8 || rho > 1 {
		t.Errorf("rho with ties: %v", rho)
	}
}

func TestSpearmanDegenerate(t *testing.T) {
	rho, p := Spearman([]float64{1, 2}, []float64{3, 4})
	if rho != 0 || p != 1 {
		t.Errorf("n<3 should be inconclusive: %v %v", rho, p)
	}
}

func TestStudentTSurvival(t *testing.T) {
	// Known values: P(T>2.0) for df=10 ≈ 0.0367; df=30, t=2.042 ≈ 0.025.
	if got := studentTSurvival(2.0, 10); math.Abs(got-0.0367) > 0.002 {
		t.Errorf("t=2 df=10: %v", got)
	}
	if got := studentTSurvival(2.042, 30); math.Abs(got-0.025) > 0.002 {
		t.Errorf("t=2.042 df=30: %v", got)
	}
	if got := studentTSurvival(0, 10); got != 0.5 {
		t.Errorf("t=0: %v", got)
	}
}

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 80, FP: 20, FN: 120}
	if p := c.Precision(); p != 0.8 {
		t.Errorf("precision: %v", p)
	}
	if r := c.Recall(); r != 0.4 {
		t.Errorf("recall: %v", r)
	}
	f1 := c.F1()
	want := 2 * 0.8 * 0.4 / 1.2
	if math.Abs(f1-want) > 1e-12 {
		t.Errorf("f1: %v want %v", f1, want)
	}
	var zero Confusion
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 {
		t.Error("zero confusion metrics should be 0")
	}
	zero.Add(c)
	if zero.TP != 80 {
		t.Error("Add failed")
	}
}
