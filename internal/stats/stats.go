// Package stats provides the statistical tooling of the paper's evaluation:
// Spearman rank correlation with tie handling and p-values, plus
// precision/recall/F1 aggregation.
package stats

import (
	"math"
	"sort"
)

// Ranks returns fractional ranks (average rank for ties), 1-based.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Pearson returns the Pearson correlation coefficient of x and y.
func Pearson(x, y []float64) float64 {
	n := len(x)
	if n == 0 || n != len(y) {
		return 0
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var num, dx, dy float64
	for i := range x {
		a, b := x[i]-mx, y[i]-my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}

// Spearman returns Spearman's rank correlation ρ of x and y (ties averaged)
// and the two-sided p-value of the null hypothesis ρ=0, using the
// t-distribution approximation t = ρ·sqrt((n−2)/(1−ρ²)).
func Spearman(x, y []float64) (rho, p float64) {
	n := len(x)
	if n < 3 || n != len(y) {
		return 0, 1
	}
	rho = Pearson(Ranks(x), Ranks(y))
	if rho >= 1 || rho <= -1 {
		return rho, 0
	}
	t := rho * math.Sqrt(float64(n-2)/(1-rho*rho))
	p = 2 * studentTSurvival(math.Abs(t), float64(n-2))
	if p > 1 {
		p = 1
	}
	return rho, p
}

// studentTSurvival returns P(T > t) for Student's t with df degrees of
// freedom, via the regularized incomplete beta function.
func studentTSurvival(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a,b)
// using the continued-fraction expansion (Numerical Recipes style).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	if x > (a+1)/(a+b+2) {
		return 1 - regIncBeta(b, a, 1-x)
	}
	// Lentz's algorithm.
	const eps = 1e-12
	const tiny = 1e-30
	f, c, d := 1.0, 1.0, 0.0
	for m := 0; m <= 300; m++ {
		var numerator float64
		if m == 0 {
			numerator = 1
		} else if m%2 == 0 {
			k := float64(m / 2)
			numerator = k * (b - k) * x / ((a + 2*k - 1) * (a + 2*k))
		} else {
			k := float64((m - 1) / 2)
			numerator = -(a + k) * (a + b + k) * x / ((a + 2*k) * (a + 2*k + 1))
		}
		d = 1 + numerator*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + numerator/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		cd := c * d
		f *= cd
		if math.Abs(1-cd) < eps {
			break
		}
	}
	return front * (f - 1)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Confusion accumulates binary classification counts.
type Confusion struct {
	TP, FP, FN, TN int
}

// Add merges another confusion matrix.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.FN += o.FN
	c.TN += o.TN
}

// Precision returns TP/(TP+FP), 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}
