// Package pipeline implements the paper's study (Figure 6): collect Q&A
// snippets, filter and deduplicate them (Table 4), detect vulnerable
// snippets with CCC, map them to deployed contracts with CCD, categorize the
// clone relations temporally (All/Disseminator/Source), validate the
// vulnerabilities inside the deployed contracts in two phases, and compute
// the popularity correlation (Table 5), DASP distribution (Table 6), funnel
// (Table 7) and ground-truth validation sample (Table 8).
package pipeline

import (
	"sort"
	"strings"
	"time"

	"repro/internal/ccc"
	"repro/internal/ccd"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/solidity"
	"repro/internal/stats"
)

// Config parameterizes a study run.
type Config struct {
	Seed  int64
	Scale float64 // corpus scale relative to the paper (1.0 = full size)
	// CCD is the clone-detector configuration (default: conservative
	// N=3, η=0.5, ε=0.9 per Section 6.3).
	CCD ccd.Config
	// Phase1Steps is the traversal budget standing in for the paper's
	// 1,800s validation timeout; contracts exceeding it go to phase 2.
	Phase1Steps int
	// Phase2Depths are the successively reduced data-flow path lengths of
	// the second validation phase.
	Phase2Depths []int
	// Workers bounds the study's parallel fan-out when no Engine is
	// supplied (≤ 0 selects GOMAXPROCS).
	Workers int
	// Engine optionally supplies a shared analysis engine whose worker
	// pool and caches the study reuses (cmd/serve passes its serving
	// engine here). nil creates a study-private engine.
	Engine *service.Engine
}

// DefaultConfig returns the configuration of Section 6.3 at a test-friendly
// scale.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		Scale:        0.02,
		CCD:          ccd.ConservativeConfig,
		Phase1Steps:  200000,
		Phase2Depths: []int{64, 32, 16},
	}
}

// UniqueSnippet is a deduplicated, parsable Solidity snippet.
type UniqueSnippet struct {
	dataset.Snippet
	// Categories found by CCC ("" when the snippet is not vulnerable).
	Categories []ccc.Category
	// Duplicates counts how many crawled snippets collapsed into this one.
	Duplicates int
}

// Vulnerable reports whether CCC flagged the snippet.
func (u UniqueSnippet) Vulnerable() bool { return len(u.Categories) > 0 }

// FunnelStats is the Table 4 row set.
type FunnelStats struct {
	Posts, Snippets, Solidity, Parsable, StrictParsable, Unique int
}

// SiteFunnel maps sites to funnel stats plus the total.
type SiteFunnel struct {
	PerSite map[dataset.Site]*FunnelStats
	Total   FunnelStats
}

// ContractMatch links a snippet to a deployed contract containing it.
type ContractMatch struct {
	Contract *dataset.DeployedContract
	Score    float64
	// After reports snippet posting preceding the deployment.
	After bool
}

// Correlation is one Table 5 row.
type Correlation struct {
	Name       string
	SampleSize int
	Rho        float64
	P          float64
}

// Funnel is the Table 7 column.
type Funnel struct {
	UniqueSnippets       int
	VulnerableSnippets   int
	ContainedInContracts int // vulnerable snippets found in ≥1 contract
	PostedBefore         int // ... restricted to disseminator relations
	SourceSnippets       int
	ContractsContaining  int // contract clone relations (with duplicates)
	UniqueContracts      int
	SourceContracts      int
	ValidatedContracts   int // analyses that completed (phase 1+2)
	VulnerableContracts  int
	VulnSnippetsInVuln   int
	Phase1Validated      int // completed without path reduction
}

// ManualValidation is the Table 8 sample: true/false clones × snippet TP/FP
// × contract TP/FP.
type ManualValidation struct {
	SampleSize int
	// Counts[trueClone][snippetTP][contractTP]
	Counts map[bool]map[bool]map[bool]int
}

// Result aggregates everything the study produces.
type Result struct {
	Config       Config
	Funnel4      SiteFunnel
	Unique       []UniqueSnippet
	CloneMap     map[string][]ContractMatch // snippet ID -> matches
	Correlations []Correlation
	Table6       map[ccc.Category]struct{ Snippets, Contracts int }
	Funnel       Funnel
	Manual       ManualValidation

	// corpora retained for inspection.
	QA        dataset.QACorpus
	Contracts []dataset.DeployedContract
}

// Run executes the full study: corpus generation, filtering, detection,
// clone mapping, temporal categorization, validation and statistics.
func Run(cfg Config) *Result {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.02
	}
	if cfg.CCD.N == 0 {
		cfg.CCD = ccd.ConservativeConfig
	}
	if cfg.Phase1Steps == 0 {
		cfg.Phase1Steps = 200000
	}
	if len(cfg.Phase2Depths) == 0 {
		cfg.Phase2Depths = []int{64, 32, 16}
	}
	qa := dataset.GenerateQA(dataset.QAConfig{Seed: cfg.Seed, Scale: cfg.Scale})
	contracts := dataset.GenerateSanctuary(dataset.SanctuaryConfig{Seed: cfg.Seed + 1, Scale: cfg.Scale}, qa)
	return RunWith(cfg, qa, contracts)
}

// RunWith executes the study over externally supplied corpora. The hot
// steps — CCC detection, clone mapping and two-phase validation — fan out
// through the service engine's worker pool, and every parse, report and
// fingerprint goes through its content-addressed caches.
func RunWith(cfg Config, qa dataset.QACorpus, contracts []dataset.DeployedContract) *Result {
	eng := cfg.Engine
	if eng == nil {
		eng = service.New(service.Options{Workers: cfg.Workers, CCD: cfg.CCD})
	}
	res := &Result{
		Config:    cfg,
		QA:        qa,
		Contracts: contracts,
		CloneMap:  make(map[string][]ContractMatch),
		Table6:    make(map[ccc.Category]struct{ Snippets, Contracts int }),
	}

	// Step 1: filter and deduplicate (Table 4).
	res.Funnel4, res.Unique = filterSnippets(qa)
	res.Funnel.UniqueSnippets = len(res.Unique)

	// Step 2: vulnerable snippet detection (CCC), one snippet per task.
	eng.Map(len(res.Unique), func(i int) {
		rep, err := eng.Analyze(res.Unique[i].Source)
		if err != nil {
			return
		}
		res.Unique[i].Categories = rep.Categories()
	})
	for i := range res.Unique {
		if res.Unique[i].Vulnerable() {
			res.Funnel.VulnerableSnippets++
		}
	}

	// Step 3: clone mapping (CCD). Contracts are fingerprinted and
	// ingested into a sharded study corpus in parallel, then every unique
	// snippet matches against it in parallel. Matches land in per-snippet
	// slots; the sharded corpus returns them in deterministic
	// (score, address) order regardless of ingest interleaving.
	corpus := service.NewCorpus(cfg.CCD, 0)
	contractByID := make(map[string]*dataset.DeployedContract, len(contracts))
	for i := range contracts {
		contractByID[contracts[i].Address] = &contracts[i]
	}
	eng.Map(len(contracts), func(i int) {
		c := &contracts[i]
		fp, _ := eng.Fingerprint(c.Source) // partial fingerprints still index
		corpus.Add(c.Address, fp)
	})
	matches := make([][]ContractMatch, len(res.Unique))
	eng.Map(len(res.Unique), func(i int) {
		sn := &res.Unique[i]
		fp, err := eng.Fingerprint(sn.Source)
		if err != nil || len(fp) == 0 {
			return
		}
		for _, m := range corpus.Match(fp) {
			c := contractByID[m.ID]
			matches[i] = append(matches[i], ContractMatch{
				Contract: c,
				Score:    m.Score,
				After:    c.Deployed.After(sn.Created),
			})
		}
	})
	for i := range res.Unique {
		if len(matches[i]) > 0 {
			res.CloneMap[res.Unique[i].ID] = matches[i]
		}
	}

	// Step 4: popularity correlation (Table 5).
	res.Correlations = correlations(res)

	// Step 5: vulnerable pairing, temporal filtering, dedup, validation.
	runValidation(cfg, eng, res)

	// Step 6: ground-truth validation sample (Table 8).
	res.Manual = manualValidation(res, 100)
	return res
}

// filterSnippets applies the keyword filter, the fuzzy parse filter and
// deduplication, producing Table 4's funnel.
func filterSnippets(qa dataset.QACorpus) (SiteFunnel, []UniqueSnippet) {
	sf := SiteFunnel{PerSite: map[dataset.Site]*FunnelStats{
		dataset.StackOverflow: {},
		dataset.EthereumSE:    {},
	}}
	for _, p := range qa.Posts {
		sf.PerSite[p.Site].Posts++
	}
	// seen maps dedupe keys to positions in unique: appends reallocate the
	// backing array, so stored *UniqueSnippet pointers would go stale.
	seen := map[string]int{}
	var unique []UniqueSnippet
	for _, s := range qa.Snippets {
		st := sf.PerSite[s.Site]
		st.Snippets++
		if !dataset.IsSolidityLike(s.Source) {
			continue
		}
		st.Solidity++
		if _, err := solidity.Parse(s.Source); err != nil {
			continue
		}
		st.Parsable++
		if _, err := solidity.ParseStrict(s.Source); err == nil {
			st.StrictParsable++
		}
		key := dedupeKey(s.Source)
		if i, dup := seen[key]; dup {
			u := &unique[i]
			u.Duplicates++
			// Keep the earliest posting and the larger view count.
			if s.Created.Before(u.Created) {
				u.Created = s.Created
			}
			if s.Views > u.Views {
				u.Views = s.Views
			}
			continue
		}
		st.Unique++
		unique = append(unique, UniqueSnippet{Snippet: s})
		seen[key] = len(unique) - 1
	}
	for _, st := range sf.PerSite {
		sf.Total.Posts += st.Posts
		sf.Total.Snippets += st.Snippets
		sf.Total.Solidity += st.Solidity
		sf.Total.Parsable += st.Parsable
		sf.Total.StrictParsable += st.StrictParsable
		sf.Total.Unique += st.Unique
	}
	return sf, unique
}

// dedupeKey normalizes whitespace and comments for duplicate detection.
func dedupeKey(src string) string {
	s := solidity.StripComments(src)
	return strings.Join(strings.Fields(s), " ")
}

// correlations computes Spearman's ρ of views vs number of containing
// contracts for the three temporal snippet groups, restricted to snippets
// with at least one embedding contract.
func correlations(res *Result) []Correlation {
	var allV, allN []float64
	var dissV, dissN []float64
	var srcV, srcN []float64
	for i := range res.Unique {
		sn := &res.Unique[i]
		matches := res.CloneMap[sn.ID]
		if len(matches) == 0 {
			continue
		}
		nr := float64(len(uniqueContracts(matches)))
		allV = append(allV, float64(sn.Views))
		allN = append(allN, nr)
		var after, before int
		for _, m := range matches {
			if m.After {
				after++
			} else {
				before++
			}
		}
		if after > 0 {
			// Disseminator: only contracts deployed after the posting count.
			dissV = append(dissV, float64(sn.Views))
			dissN = append(dissN, float64(after))
			if before == 0 {
				srcV = append(srcV, float64(sn.Views))
				srcN = append(srcN, float64(after))
			}
		}
	}
	mk := func(name string, v, n []float64) Correlation {
		rho, p := stats.Spearman(v, n)
		return Correlation{Name: name, SampleSize: len(v), Rho: rho, P: p}
	}
	return []Correlation{
		mk("All Snippets", allV, allN),
		mk("Disseminator", dissV, dissN),
		mk("Source", srcV, srcN),
	}
}

func uniqueContracts(ms []ContractMatch) map[string]bool {
	out := map[string]bool{}
	for _, m := range ms {
		out[dedupeKey(m.Contract.Source)] = true
	}
	return out
}

// runValidation performs the vulnerable pairing and the two-phase contract
// validation of Section 6.3. Validation fans out one contract per worker
// task; aggregation stays serial in pair order so results are deterministic.
func runValidation(cfg Config, eng *service.Engine, res *Result) {
	type pair struct {
		snippet  *UniqueSnippet
		contract *dataset.DeployedContract
	}
	seenContract := map[string]bool{}   // deduped contract keys
	sourceContract := map[string]bool{} // contracts of source snippets
	vulnContracts := map[string]bool{}  // validated vulnerable contracts
	snippetHasVulnContract := map[string]bool{}
	var pairs []pair

	contractsContaining := 0
	for i := range res.Unique {
		sn := &res.Unique[i]
		if !sn.Vulnerable() {
			continue
		}
		matches := res.CloneMap[sn.ID]
		if len(matches) == 0 {
			continue
		}
		res.Funnel.ContainedInContracts++
		var after []ContractMatch
		allAfter := true
		for _, m := range matches {
			if m.After {
				after = append(after, m)
			} else {
				allAfter = false
			}
		}
		if len(after) == 0 {
			continue
		}
		res.Funnel.PostedBefore++
		if allAfter {
			res.Funnel.SourceSnippets++
		}
		contractsContaining += len(after)
		for _, m := range after {
			key := dedupeKey(m.Contract.Source)
			if !seenContract[key] {
				seenContract[key] = true
				pairs = append(pairs, pair{snippet: sn, contract: m.Contract})
			}
			if allAfter {
				sourceContract[key] = true
			}
		}
		// Table 6: snippet-side category distribution.
		for _, cat := range sn.Categories {
			e := res.Table6[cat]
			e.Snippets++
			res.Table6[cat] = e
		}
	}
	res.Funnel.ContractsContaining = contractsContaining
	res.Funnel.UniqueContracts = len(seenContract)
	res.Funnel.SourceContracts = len(sourceContract)

	// Two-phase validation: re-run CCC on each candidate contract checking
	// only the snippet's categories. Phase 1 runs with the step budget;
	// truncated analyses re-run with iteratively reduced path depths.
	type valResult struct {
		rep       ccc.Report
		completed bool
	}
	validated := make([]valResult, len(pairs))
	eng.Map(len(pairs), func(i int) {
		rep, completed := validateContract(cfg, eng, pairs[i].contract.Source, pairs[i].snippet.Categories)
		validated[i] = valResult{rep: rep, completed: completed}
	})
	for i, p := range pairs {
		rep, completed := validated[i].rep, validated[i].completed
		if !completed {
			continue
		}
		res.Funnel.ValidatedContracts++
		if !rep.Truncated {
			res.Funnel.Phase1Validated++
		}
		if len(rep.Findings) == 0 {
			continue
		}
		key := dedupeKey(p.contract.Source)
		if !vulnContracts[key] {
			vulnContracts[key] = true
		}
		snippetHasVulnContract[p.snippet.ID] = true
		for _, cat := range rep.Categories() {
			e := res.Table6[cat]
			e.Contracts++
			res.Table6[cat] = e
		}
	}
	res.Funnel.VulnerableContracts = len(vulnContracts)
	res.Funnel.VulnSnippetsInVuln = len(snippetHasVulnContract)
}

// validateContract runs CCC restricted to the snippet's categories with the
// phase-1 budget, then retries with reduced path depths (phase 2). The
// second result reports whether any phase completed. The contract is parsed
// once through the engine's content-addressed cache and the graph is shared
// by every phase (it is immutable during analysis), instead of re-parsing
// per attempt as the serial pipeline did.
func validateContract(cfg Config, eng *service.Engine, src string, cats []ccc.Category) (ccc.Report, bool) {
	g, err := eng.Graph(src)
	if err != nil {
		return ccc.Report{}, false
	}
	a := &ccc.Analyzer{Limits: query.Limits{MaxSteps: cfg.Phase1Steps}}
	a.OnlyCategories(cats...)
	rep := a.Analyze(g)
	if !rep.Truncated {
		return rep, true
	}
	// Phase 2: iterative data-flow path reduction. Only applied outside
	// negated mitigation sub-queries conceptually; here the analyzer's
	// depth limit bounds the positive patterns, so reducing it can only
	// add findings that the budget previously hid, never remove
	// mitigations recognized in phase 1.
	for _, depth := range cfg.Phase2Depths {
		a2 := &ccc.Analyzer{Limits: query.Limits{MaxSteps: cfg.Phase1Steps, MaxDepth: depth}}
		a2.OnlyCategories(cats...)
		rep2 := a2.Analyze(g)
		if !rep2.Truncated {
			rep2.Truncated = true // mark as phase-2 validated
			return rep2, true
		}
	}
	return rep, false
}

// manualValidation samples flagged (snippet, contract) pairs and compares
// them against the generator's ground truth, producing Table 8.
func manualValidation(res *Result, sample int) ManualValidation {
	mv := ManualValidation{Counts: map[bool]map[bool]map[bool]int{}}
	for _, tc := range []bool{true, false} {
		mv.Counts[tc] = map[bool]map[bool]int{}
		for _, st := range []bool{true, false} {
			mv.Counts[tc][st] = map[bool]int{}
		}
	}
	snippetByID := map[string]dataset.Snippet{}
	for _, s := range res.QA.Snippets {
		snippetByID[s.ID] = s
	}
	vulnTemplate := map[string]bool{}
	for _, t := range dataset.VulnTemplates() {
		vulnTemplate[t.Name] = true
	}

	// Stratify across categories: round-robin over category buckets.
	type flagged struct {
		sn *UniqueSnippet
		m  ContractMatch
	}
	buckets := map[ccc.Category][]flagged{}
	for i := range res.Unique {
		sn := &res.Unique[i]
		if !sn.Vulnerable() {
			continue
		}
		for _, m := range res.CloneMap[sn.ID] {
			if !m.After {
				continue
			}
			buckets[sn.Categories[0]] = append(buckets[sn.Categories[0]], flagged{sn, m})
		}
	}
	var cats []ccc.Category
	for c := range buckets {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })

	taken := 0
	for round := 0; taken < sample; round++ {
		progress := false
		for _, c := range cats {
			if round < len(buckets[c]) && taken < sample {
				f := buckets[c][round]
				progress = true
				taken++
				// Ground truth from generator lineage.
				snippetTrue := f.sn.Template != "" && vulnTemplate[f.sn.Template]
				var trueClone, contractTrue bool
				src := snippetByID[f.m.Contract.FromSnippet]
				if f.m.Contract.FromSnippet == f.sn.ID {
					trueClone = true
				} else if f.m.Contract.FromSnippet != "" && src.Template != "" && src.Template == f.sn.Template {
					// Same template family: genuinely the same code.
					trueClone = true
				}
				if f.m.Contract.FromSnippet != "" {
					contractTrue = src.Template != "" && vulnTemplate[src.Template]
				}
				mv.Counts[trueClone][snippetTrue][contractTrue]++
			}
		}
		if !progress {
			break
		}
	}
	mv.SampleSize = taken
	return mv
}

// Dedup helpers used by reporting.

// SnippetDuplicates returns total crawled→unique shrinkage.
func (r *Result) SnippetDuplicates() int {
	total := 0
	for _, u := range r.Unique {
		total += u.Duplicates
	}
	return total
}

// TimeRange returns the span of contract deployments.
func (r *Result) TimeRange() (time.Time, time.Time) {
	if len(r.Contracts) == 0 {
		return time.Time{}, time.Time{}
	}
	lo, hi := r.Contracts[0].Deployed, r.Contracts[0].Deployed
	for _, c := range r.Contracts {
		if c.Deployed.Before(lo) {
			lo = c.Deployed
		}
		if c.Deployed.After(hi) {
			hi = c.Deployed
		}
	}
	return lo, hi
}
