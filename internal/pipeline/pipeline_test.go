package pipeline

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ccd"
	"repro/internal/dataset"
)

// runSmall executes a small but statistically meaningful study once and
// shares it across tests. Short mode trims the corpus scale enough to keep
// CI fast while staying above the statistical thresholds the shape tests
// assert.
var shared *Result

func sharedResult(t *testing.T) *Result {
	t.Helper()
	if shared == nil {
		cfg := DefaultConfig()
		cfg.Scale = 0.015
		if testing.Short() {
			cfg.Scale = 0.012
		}
		shared = Run(cfg)
	}
	return shared
}

func TestFunnelShape(t *testing.T) {
	res := sharedResult(t)
	f := res.Funnel4.Total
	if f.Snippets == 0 || f.Posts == 0 {
		t.Fatal("empty corpus")
	}
	// Keyword filter keeps roughly 65%.
	kw := float64(f.Solidity) / float64(f.Snippets)
	if kw < 0.5 || kw > 0.8 {
		t.Errorf("keyword filter fraction: %.2f", kw)
	}
	// Fuzzy parse keeps roughly 77% of the keyword-passing snippets.
	pp := float64(f.Parsable) / float64(f.Solidity)
	if pp < 0.6 || pp > 0.95 {
		t.Errorf("parse fraction: %.2f", pp)
	}
	// The fuzzy grammar parses strictly more than the standard grammar
	// ("3,133 more snippets than the standard Solidity grammar").
	if f.StrictParsable >= f.Parsable {
		t.Errorf("fuzzy grammar should beat strict: %d vs %d", f.StrictParsable, f.Parsable)
	}
	// Dedup keeps most snippets.
	uq := float64(f.Unique) / float64(f.Parsable)
	if uq < 0.8 || uq > 1 {
		t.Errorf("unique fraction: %.2f", uq)
	}
	// Both sites contribute, ESE more than SO (Table 4).
	so := res.Funnel4.PerSite[dataset.StackOverflow]
	ese := res.Funnel4.PerSite[dataset.EthereumSE]
	if so.Unique == 0 || ese.Unique == 0 || ese.Unique <= so.Unique {
		t.Errorf("site split: SO=%d ESE=%d", so.Unique, ese.Unique)
	}
}

func TestVulnerableFraction(t *testing.T) {
	res := sharedResult(t)
	frac := float64(res.Funnel.VulnerableSnippets) / float64(res.Funnel.UniqueSnippets)
	// Paper: 4,596/18,660 ≈ 0.246.
	if frac < 0.12 || frac > 0.45 {
		t.Errorf("vulnerable fraction: %.2f", frac)
	}
}

func TestCloneMapFindsPlantedClones(t *testing.T) {
	res := sharedResult(t)
	// Count contracts with planted clones whose snippet survived filtering.
	uniqueIDs := map[string]bool{}
	for _, u := range res.Unique {
		uniqueIDs[u.ID] = true
	}
	planted, found := 0, 0
	matchedBy := map[string]map[string]bool{} // snippet -> contract set
	for id, ms := range res.CloneMap {
		matchedBy[id] = map[string]bool{}
		for _, m := range ms {
			matchedBy[id][m.Contract.Address] = true
		}
	}
	for i := range res.Contracts {
		c := &res.Contracts[i]
		if c.FromSnippet == "" || !uniqueIDs[c.FromSnippet] {
			continue
		}
		planted++
		if matchedBy[c.FromSnippet][c.Address] {
			found++
		}
	}
	if planted == 0 {
		t.Fatal("no planted clones with surviving snippets")
	}
	recall := float64(found) / float64(planted)
	// The conservative ε=0.9 still has to find the majority of direct
	// plants (mutations are Type I-III).
	if recall < 0.45 {
		t.Errorf("planted clone recall: %.2f (%d/%d)", recall, found, planted)
	}
}

func TestCorrelationOrdering(t *testing.T) {
	res := sharedResult(t)
	if len(res.Correlations) != 3 {
		t.Fatalf("correlations: %d", len(res.Correlations))
	}
	all, diss, src := res.Correlations[0], res.Correlations[1], res.Correlations[2]
	if all.SampleSize < diss.SampleSize || diss.SampleSize < src.SampleSize {
		t.Errorf("sample sizes must shrink: %d %d %d", all.SampleSize, diss.SampleSize, src.SampleSize)
	}
	// Table 5 shape: correlation strengthens toward source snippets.
	if !(src.Rho > all.Rho) {
		t.Errorf("source rho (%.3f) should exceed all-snippets rho (%.3f)", src.Rho, all.Rho)
	}
	if src.Rho < 0.1 {
		t.Errorf("source rho too weak: %.3f", src.Rho)
	}
	if src.P > 0.05 {
		t.Errorf("source correlation not significant: p=%.4f", src.P)
	}
}

func TestFunnelMonotonic(t *testing.T) {
	res := sharedResult(t)
	f := res.Funnel
	if f.VulnerableSnippets > f.UniqueSnippets {
		t.Error("vulnerable > unique")
	}
	if f.ContainedInContracts > f.VulnerableSnippets {
		t.Error("contained > vulnerable")
	}
	if f.PostedBefore > f.ContainedInContracts {
		t.Error("posted-before > contained")
	}
	if f.SourceSnippets > f.PostedBefore {
		t.Error("source > posted-before")
	}
	if f.UniqueContracts > f.ContractsContaining {
		t.Error("unique contracts > containing relations")
	}
	if f.VulnerableContracts > f.ValidatedContracts {
		t.Error("vulnerable > validated")
	}
	if f.ValidatedContracts > f.UniqueContracts {
		t.Error("validated > unique contracts")
	}
	if f.VulnSnippetsInVuln > f.PostedBefore {
		t.Error("snippets-in-vuln > posted-before")
	}
	// The study must find a real effect: clones exist and most validate.
	if f.PostedBefore == 0 || f.UniqueContracts == 0 {
		t.Fatalf("no clone relations found: %+v", f)
	}
	if f.ValidatedContracts == 0 {
		t.Fatal("validation did not complete for any contract")
	}
	validRate := float64(f.VulnerableContracts) / float64(f.ValidatedContracts)
	// Paper: 17,852/21,047 ≈ 0.85 of validated contracts stay vulnerable.
	if validRate < 0.5 {
		t.Errorf("validated-vulnerable rate: %.2f", validRate)
	}
}

func TestTable6Distribution(t *testing.T) {
	res := sharedResult(t)
	if len(res.Table6) < 4 {
		t.Fatalf("too few categories in Table 6: %v", res.Table6)
	}
	for cat, e := range res.Table6 {
		if e.Snippets == 0 && e.Contracts > 0 {
			t.Errorf("%s: contracts without snippets", cat)
		}
	}
}

func TestManualValidationSample(t *testing.T) {
	res := sharedResult(t)
	mv := res.Manual
	if mv.SampleSize == 0 {
		t.Fatal("empty manual validation sample")
	}
	total := 0
	for _, a := range mv.Counts {
		for _, b := range a {
			for _, n := range b {
				total += n
			}
		}
	}
	if total != mv.SampleSize {
		t.Fatalf("cell sum %d != sample %d", total, mv.SampleSize)
	}
	// The dominant cell must be true-clone/snippet-TP/contract-TP
	// (48 of 100 in the paper).
	tp := mv.Counts[true][true][true]
	if tp*3 < mv.SampleSize {
		t.Errorf("true/TP/TP cell too small: %d of %d", tp, mv.SampleSize)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.004
	a := Run(cfg)
	b := Run(cfg)
	if a.Funnel != b.Funnel {
		t.Errorf("funnels differ:\n%+v\n%+v", a.Funnel, b.Funnel)
	}
}

func TestConservativeStricterThanDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.004
	cons := Run(cfg)
	cfg2 := cfg
	cfg2.CCD = ccd.DefaultConfig // ε=0.7
	loose := Run(cfg2)
	consRel, looseRel := 0, 0
	for _, ms := range cons.CloneMap {
		consRel += len(ms)
	}
	for _, ms := range loose.CloneMap {
		looseRel += len(ms)
	}
	if looseRel < consRel {
		t.Errorf("ε=0.7 should find at least as many clones: %d vs %d", looseRel, consRel)
	}
}

func TestPhase2RescuesTightBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two extra studies; run without -short")
	}
	// With a tiny phase-1 step budget, validations truncate and the
	// phase-2 path reduction completes them (the paper's 17,278 → 17,852
	// mechanism). Phase1Validated must fall below ValidatedContracts.
	cfg := DefaultConfig()
	cfg.Scale = 0.006
	cfg.Phase1Steps = 40
	cfg.Phase2Depths = []int{4, 2}
	res := Run(cfg)
	if res.Funnel.ValidatedContracts == 0 {
		t.Skip("no contracts validated at this scale")
	}
	if res.Funnel.Phase1Validated >= res.Funnel.ValidatedContracts {
		t.Errorf("tight budget should force phase-2 validations: phase1=%d total=%d",
			res.Funnel.Phase1Validated, res.Funnel.ValidatedContracts)
	}
	// Path reduction completes what phase 1 could not: the paper's
	// 19,992 → 21,047 rescue.
	unbounded := DefaultConfig()
	unbounded.Scale = 0.006
	full := Run(unbounded)
	if res.Funnel.ValidatedContracts != full.Funnel.ValidatedContracts {
		t.Errorf("phase 2 should complete all candidates: %d vs %d",
			res.Funnel.ValidatedContracts, full.Funnel.ValidatedContracts)
	}
}

func TestManualValidationStratified(t *testing.T) {
	res := sharedResult(t)
	// The sample must include pairs from more than one DASP category.
	cats := map[string]bool{}
	for i := range res.Unique {
		sn := &res.Unique[i]
		if sn.Vulnerable() && len(res.CloneMap[sn.ID]) > 0 {
			cats[string(sn.Categories[0])] = true
		}
	}
	if len(cats) < 3 {
		t.Skipf("too few categories in corpus: %d", len(cats))
	}
	if res.Manual.SampleSize < 50 {
		t.Errorf("sample too small: %d", res.Manual.SampleSize)
	}
}

// TestFilterSnippetsDuplicateUpdatesSurviveReallocation is the regression
// test for the stale-pointer bug in filterSnippets: the dedup map used to
// store pointers into the unique slice, which append reallocates, so
// Duplicates/Created/Views updates landed in dead backing arrays. Enough
// distinct snippets are interleaved with duplicates that the slice must grow
// several times between a snippet's first sighting and its later duplicates.
func TestFilterSnippetsDuplicateUpdatesSurviveReallocation(t *testing.T) {
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	mkSnippet := func(id, src string, created time.Time, views int) dataset.Snippet {
		return dataset.Snippet{
			ID: id, Site: dataset.StackOverflow, Source: src,
			Created: created, Views: views,
		}
	}
	src := func(i int) string {
		return fmt.Sprintf("contract C%d { uint x; function f() public { x = %d; } }", i, i)
	}

	var qa dataset.QACorpus
	const distinct = 300
	// First sighting of every distinct snippet, in order.
	for i := 0; i < distinct; i++ {
		qa.Snippets = append(qa.Snippets, mkSnippet(fmt.Sprintf("s%d", i), src(i), base.AddDate(0, 0, i), 10))
	}
	// Then duplicates of the EARLIEST snippets: by now the unique slice has
	// grown (and reallocated) far past its first backing array, so any
	// retained pointer into it would be stale. Each duplicate also carries
	// an earlier creation date and a larger view count that must be folded
	// into the surviving unique snippet.
	for d := 0; d < 3; d++ {
		for i := 0; i < 10; i++ {
			qa.Snippets = append(qa.Snippets, mkSnippet(
				fmt.Sprintf("dup%d-%d", d, i), src(i),
				base.AddDate(0, 0, -1-d), 100+d,
			))
		}
	}

	_, unique := filterSnippets(qa)
	if len(unique) != distinct {
		t.Fatalf("unique: %d, want %d", len(unique), distinct)
	}
	for i := 0; i < 10; i++ {
		u := unique[i]
		if u.Duplicates != 3 {
			t.Errorf("snippet %d: Duplicates=%d, want 3", i, u.Duplicates)
		}
		if want := base.AddDate(0, 0, -3); !u.Created.Equal(want) {
			t.Errorf("snippet %d: Created=%v, want earliest %v", i, u.Created, want)
		}
		if u.Views != 102 {
			t.Errorf("snippet %d: Views=%d, want 102", i, u.Views)
		}
	}
	for i := 10; i < distinct; i++ {
		if unique[i].Duplicates != 0 {
			t.Errorf("snippet %d: unexpected Duplicates=%d", i, unique[i].Duplicates)
		}
	}
}

func TestTimeRangeAndDuplicates(t *testing.T) {
	res := sharedResult(t)
	lo, hi := res.TimeRange()
	if !lo.Before(hi) {
		t.Errorf("time range degenerate: %v %v", lo, hi)
	}
	if res.SnippetDuplicates() < 0 {
		t.Error("negative duplicates")
	}
}
