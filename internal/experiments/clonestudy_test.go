package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/ccd"
	"repro/internal/dataset"
	"repro/internal/service"
)

// TestCloneStudyServicePathEqualsOffline pins the shared-implementation
// guarantee over a real pipeline contract corpus: the clone study through
// the serving engine (sharded, pooled — cmd/soddstudy -service and the
// /v1/study corpus mode) and the offline single-shard join report the
// identical cluster-size distribution.
func TestCloneStudyServicePathEqualsOffline(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a contract corpus")
	}
	cfg := ccd.ConservativeConfig
	qa := dataset.GenerateQA(dataset.QAConfig{Seed: 3, Scale: 0.002})
	contracts := dataset.GenerateSanctuary(dataset.SanctuaryConfig{Seed: 4, Scale: 0.002}, qa)
	if len(contracts) < 100 {
		t.Fatalf("contract corpus too small: %d", len(contracts))
	}

	offline, err := CloneStudy(nil, contracts, cfg, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	online, err := CloneStudy(service.New(service.Options{CCD: cfg}), contracts, cfg, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(online.Summary, offline.Summary) {
		t.Fatalf("service-path summary %+v\noffline %+v", online.Summary, offline.Summary)
	}
	if !reflect.DeepEqual(online.Top, offline.Top) {
		t.Fatalf("service-path top %v\noffline %v", online.Top, offline.Top)
	}
	if online.Eta != offline.Eta || online.Epsilon != offline.Epsilon {
		t.Fatalf("parameters differ: %v/%v vs %v/%v", online.Eta, online.Epsilon, offline.Eta, offline.Epsilon)
	}

	out := RenderCloneStudy(online)
	for _, want := range []string{"Clone study", "size distribution:", "clone ratio"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
