package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ccd"
	"repro/internal/dataset"
	"repro/internal/service"
)

// CloneStudy runs the corpus-wide clone study — the cluster measurement
// behind the paper's Tables 4-8 — over the study's deployed-contract
// corpus, through the SAME self-join implementation the service's
// /v1/study corpus mode uses. viaService selects the serving path: the
// contracts ingest into eng's sharded scatter-gather corpus and the join
// fans out through the engine's worker pool, exactly like an online study
// job. Offline (viaService false), a private single-shard corpus is joined
// serially. Both paths produce the identical cluster-size distribution at
// the same η/ε — pinned by the service-layer equivalence tests — so
// cmd/soddstudy and cmd/serve report one measurement, not two
// implementations that can drift.
//
// limit caps the matches per document (0 = the exact join at ε).
func CloneStudy(eng *service.Engine, contracts []dataset.DeployedContract, cfg ccd.Config, viaService bool, limit int) (*service.CloneReport, error) {
	if eng == nil {
		eng = service.New(service.Options{CCD: cfg})
	}
	// Fingerprint every contract through the engine's content-addressed
	// cache (a pipeline run that just fingerprinted them makes this free).
	fps := make([]ccd.Fingerprint, len(contracts))
	eng.Map(len(contracts), func(i int) {
		fps[i], _ = eng.Fingerprint(contracts[i].Source)
	})

	if viaService {
		for i := range contracts {
			if err := eng.CorpusAddFingerprint(contracts[i].Address, fps[i]); err != nil {
				return nil, fmt.Errorf("experiments: ingest %s: %w", contracts[i].Address, err)
			}
		}
		return eng.RunCloneStudy(context.Background(), "", limit, 10)
	}

	corpus := service.NewCorpus(cfg, 1)
	for i := range contracts {
		if err := corpus.Add(contracts[i].Address, fps[i]); err != nil {
			return nil, fmt.Errorf("experiments: ingest %s: %w", contracts[i].Address, err)
		}
	}
	join, err := service.NewSelfJoin(corpus, corpus, limit)
	if err != nil {
		return nil, err
	}
	if err := join.Run(context.Background()); err != nil {
		return nil, err
	}
	return join.Report(10), nil
}

// RenderCloneStudy formats a clone study report as text: the study
// parameters, the funnel, and the cluster-size distribution.
func RenderCloneStudy(rep *service.CloneReport) string {
	var sb strings.Builder
	sb.WriteString("Clone study: corpus-wide self-join over the contract corpus\n")
	fmt.Fprintf(&sb, "backend=%s eta=%.2f epsilon=%.0f", rep.Backend, rep.Eta, rep.Epsilon)
	if rep.Limit > 0 {
		fmt.Fprintf(&sb, " limit=%d", rep.Limit)
	}
	sb.WriteString("\n")
	st := rep.Stats
	fmt.Fprintf(&sb, "funnel: %d docs -> %d candidate pairs -> %d scored (%d cut by the shared bound) -> %d clone pairs -> %d merges\n",
		st.Docs, st.Candidates, st.Scored, st.CutoffSkipped, st.Matches, st.Unions)
	sum := rep.Summary
	fmt.Fprintf(&sb, "clusters: %d docs, %d clone clusters + %d singletons, %d clustered (clone ratio %.4f), largest %d\n",
		sum.Docs, sum.Clusters, sum.Singletons, sum.Clustered, sum.CloneRatio, sum.Largest)
	sizes := make([]int, 0, len(sum.Sizes))
	for sz := range sum.Sizes {
		sizes = append(sizes, sz)
	}
	sort.Ints(sizes)
	sb.WriteString("size distribution:\n")
	for _, sz := range sizes {
		fmt.Fprintf(&sb, "  size %-6d x %d\n", sz, sum.Sizes[sz])
	}
	if len(rep.Top) > 0 {
		sb.WriteString("largest clusters:\n")
		for _, c := range rep.Top {
			fmt.Fprintf(&sb, "  %-44s size %d\n", c.Rep, c.Size)
		}
	}
	return sb.String()
}
