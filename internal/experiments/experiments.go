// Package experiments regenerates every table and figure of the paper's
// evaluation from the synthetic corpora: Table 1 (CCC vs 8 tools), Table 2
// (snippet derivations), Table 3 (CCD vs SmartEmbed on honeypots), Tables
// 4-8 (the large-scale study) and Table 9/Figure 9 (the CCD parameter
// sweep). The same functions back bench_test.go, cmd/soddstudy and
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/baseline"
	"repro/internal/ccc"
	"repro/internal/ccd"
	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// CatResult is a per-category TP/FP cell of Table 1.
type CatResult struct {
	TP, FP int
}

// ToolRow is one tool column of Table 1.
type ToolRow struct {
	Tool      string
	PerCat    map[ccc.Category]CatResult
	TotalTP   int
	TotalFP   int
	Precision float64
	Recall    float64
	// Refused counts files the tool could not analyze (snippets).
	Refused int
}

// evalTool scores an analyzer over a benchmark with the paper's counting
// rule: findings only count within the matching test set; per file, up to
// Labels findings are true positives, the surplus is false positives.
func evalTool(name string, analyze func(src string) ([]baseline.Finding, error), b dataset.Benchmark, totalLabels int) ToolRow {
	row := ToolRow{Tool: name, PerCat: map[ccc.Category]CatResult{}}
	for _, f := range b.Files {
		findings, err := analyze(f.Source)
		if err != nil {
			row.Refused++
			continue
		}
		lines := map[int]bool{}
		n := 0
		for _, fd := range findings {
			if fd.Category != f.Category || lines[fd.Line] {
				continue
			}
			lines[fd.Line] = true
			n++
		}
		cell := row.PerCat[f.Category]
		tp := n
		if tp > f.Labels {
			tp = f.Labels
		}
		cell.TP += tp
		cell.FP += n - tp
		row.PerCat[f.Category] = cell
	}
	for _, cell := range row.PerCat {
		row.TotalTP += cell.TP
		row.TotalFP += cell.FP
	}
	if row.TotalTP+row.TotalFP > 0 {
		row.Precision = float64(row.TotalTP) / float64(row.TotalTP+row.TotalFP)
	}
	if totalLabels > 0 {
		row.Recall = float64(row.TotalTP) / float64(totalLabels)
	}
	return row
}

// cccAsTool adapts CCC to the baseline tool signature (CCC accepts
// snippets, so it never refuses input).
func cccAsTool(src string) ([]baseline.Finding, error) {
	rep, err := ccc.AnalyzeSource(src)
	if err != nil {
		return nil, err
	}
	out := make([]baseline.Finding, 0, len(rep.Findings))
	for _, f := range rep.Findings {
		out = append(out, baseline.Finding{Category: f.Category, Line: f.Line})
	}
	return out, nil
}

// Table1 runs CCC and the eight baselines over the labeled benchmark.
func Table1(seed int64) []ToolRow {
	b := dataset.GenerateSmartBugs(seed)
	total := b.Labels()
	rows := []ToolRow{evalTool("CCC", cccAsTool, b, total)}
	for _, tool := range baseline.Tools() {
		rows = append(rows, evalTool(tool.Name(), tool.Analyze, b, total))
	}
	return rows
}

// Table2Row is one dataset column of Table 2.
type Table2Row struct {
	Dataset   string
	TP, FP    int
	Precision float64
	Recall    float64
}

// Table2 evaluates CCC on the original benchmark and its Functions and
// Statements derivations.
func Table2(seed int64) []Table2Row {
	orig := dataset.GenerateSmartBugs(seed)
	total := orig.Labels()
	sets := []struct {
		name string
		b    dataset.Benchmark
	}{
		{"Original", orig},
		{"Functions", dataset.DeriveFunctions(orig)},
		{"Statements", dataset.DeriveStatements(orig)},
	}
	var out []Table2Row
	for _, s := range sets {
		row := evalTool("CCC", cccAsTool, s.b, total)
		out = append(out, Table2Row{
			Dataset: s.name, TP: row.TotalTP, FP: row.TotalFP,
			Precision: row.Precision, Recall: row.Recall,
		})
	}
	return out
}

// Table3Row is one honeypot-type row of Table 3.
type Table3Row struct {
	Type                       dataset.HoneypotType
	SmartEmbedTP, SmartEmbedFP int
	CCDTP, CCDFP               int
}

// Table3Result is the full comparison with totals.
type Table3Result struct {
	Rows       []Table3Row
	SmartEmbed stats.Confusion
	CCD        stats.Confusion
}

// Table3 compares CCD against SmartEmbed on the honeypot benchmark: every
// contract is matched against all others; a reported pair is a true positive
// when both contracts share the honeypot type.
func Table3(seed int64, cfg ccd.Config) Table3Result {
	hp := dataset.GenerateHoneypots(seed)
	res := Table3Result{}
	byType := map[dataset.HoneypotType]*Table3Row{}
	for _, t := range dataset.HoneypotTypes {
		row := &Table3Row{Type: t}
		byType[t] = row
	}

	// Ground-truth ordered pair counts per type for FN computation.
	fam := map[dataset.HoneypotType]int{}
	for _, h := range hp {
		fam[h.Type]++
	}
	gtPairs := 0
	for _, n := range fam {
		gtPairs += n * (n - 1)
	}

	// CCD.
	corpus := ccd.NewCorpus(cfg)
	fps := make([]ccd.Fingerprint, len(hp))
	for i, h := range hp {
		fp, _ := ccd.FingerprintSource(h.Source)
		fps[i] = fp
		corpus.Add(h.ID, fp)
	}
	typeOf := map[string]dataset.HoneypotType{}
	for _, h := range hp {
		typeOf[h.ID] = h.Type
	}
	ccdTP := 0
	for i, h := range hp {
		for _, m := range corpus.Match(fps[i]) {
			if m.ID == h.ID {
				continue
			}
			row := byType[h.Type]
			if typeOf[m.ID] == h.Type {
				row.CCDTP++
				ccdTP++
			} else {
				row.CCDFP++
			}
		}
	}

	// SmartEmbed.
	se := baseline.NewSmartEmbed()
	embs := make([]baseline.Embedding, len(hp))
	ok := make([]bool, len(hp))
	for i, h := range hp {
		e, err := se.Embed(h.Source)
		if err == nil {
			embs[i] = e
			ok[i] = true
		}
	}
	seTP := 0
	for i, h := range hp {
		if !ok[i] {
			continue
		}
		for j := range hp {
			if i == j || !ok[j] {
				continue
			}
			if _, clone := se.IsClone(embs[i], embs[j]); !clone {
				continue
			}
			row := byType[h.Type]
			if hp[j].Type == h.Type {
				row.SmartEmbedTP++
				seTP++
			} else {
				row.SmartEmbedFP++
			}
		}
	}

	for _, t := range dataset.HoneypotTypes {
		res.Rows = append(res.Rows, *byType[t])
		res.CCD.TP += byType[t].CCDTP
		res.CCD.FP += byType[t].CCDFP
		res.SmartEmbed.TP += byType[t].SmartEmbedTP
		res.SmartEmbed.FP += byType[t].SmartEmbedFP
	}
	res.CCD.FN = gtPairs - res.CCD.TP
	res.SmartEmbed.FN = gtPairs - res.SmartEmbed.TP
	return res
}

// Study runs the full pipeline (Tables 4-8) at the given scale.
func Study(seed int64, scale float64) *pipeline.Result {
	cfg := pipeline.DefaultConfig()
	cfg.Seed = seed
	cfg.Scale = scale
	return pipeline.Run(cfg)
}

// PRPoint is one parameter combination of Figure 9.
type PRPoint struct {
	N         int
	Eta       float64
	Epsilon   float64
	Precision float64
	Recall    float64
}

// Figure9 sweeps the CCD parameters of Table 9 over the honeypot benchmark
// and returns precision/recall per combination, plus the SmartEmbed
// reference point.
func Figure9(seed int64) (points []PRPoint, smartEmbed stats.Confusion) {
	hp := dataset.GenerateHoneypots(seed)
	fps := make([]ccd.Fingerprint, len(hp))
	for i, h := range hp {
		fps[i], _ = ccd.FingerprintSource(h.Source)
	}
	fam := map[dataset.HoneypotType]int{}
	for _, h := range hp {
		fam[h.Type]++
	}
	gtPairs := 0
	for _, n := range fam {
		gtPairs += n * (n - 1)
	}

	// Pairwise similarity cache shared across all parameter combinations.
	type pairKey struct{ a, b int }
	simCache := map[pairKey]float64{}
	sim := func(a, b int) float64 {
		if s, hit := simCache[pairKey{a, b}]; hit {
			return s
		}
		s := ccd.Similarity(fps[a], fps[b])
		simCache[pairKey{a, b}] = s
		return s
	}

	etas := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	epsilons := []float64{50, 60, 70, 80, 90}
	for _, n := range []int{3, 5, 7} {
		// Candidate containments at the loosest η, reused for stricter ones.
		corpus := ccd.NewCorpus(ccd.Config{N: n, Eta: 0.5, Epsilon: 0})
		idx := newContainmentIndex(n, fps)
		for _, eta := range etas {
			for _, eps := range epsilons {
				var conf stats.Confusion
				for qi := range hp {
					for _, cand := range idx.candidates(qi, eta) {
						if cand == qi {
							continue
						}
						if sim(qi, cand) < eps {
							continue
						}
						if hp[cand].Type == hp[qi].Type {
							conf.TP++
						} else {
							conf.FP++
						}
					}
				}
				conf.FN = gtPairs - conf.TP
				points = append(points, PRPoint{
					N: n, Eta: eta, Epsilon: eps,
					Precision: conf.Precision(), Recall: conf.Recall(),
				})
			}
		}
		_ = corpus
	}

	t3 := Table3(seed, ccd.DefaultConfig)
	return points, t3.SmartEmbed
}

// containmentIndex precomputes n-gram containments at η=0 so that sweeps can
// filter cheaply.
type containmentIndex struct {
	containments [][]candContainment
}

type candContainment struct {
	doc         int
	containment float64
}

func newContainmentIndex(n int, fps []ccd.Fingerprint) *containmentIndex {
	grams := make([]map[string]bool, len(fps))
	inverted := map[string][]int{}
	for i, fp := range fps {
		set := map[string]bool{}
		s := string(fp)
		if len(s) <= n {
			if s != "" {
				set[s] = true
			}
		} else {
			for j := 0; j+n <= len(s); j++ {
				set[s[j:j+n]] = true
			}
		}
		grams[i] = set
		for g := range set {
			inverted[g] = append(inverted[g], i)
		}
	}
	ci := &containmentIndex{containments: make([][]candContainment, len(fps))}
	for i := range fps {
		counts := map[int]int{}
		for g := range grams[i] {
			for _, d := range inverted[g] {
				counts[d]++
			}
		}
		total := len(grams[i])
		if total == 0 {
			continue
		}
		for d, c := range counts {
			ci.containments[i] = append(ci.containments[i], candContainment{
				doc: d, containment: float64(c) / float64(total),
			})
		}
		sort.Slice(ci.containments[i], func(a, b int) bool {
			return ci.containments[i][a].doc < ci.containments[i][b].doc
		})
	}
	return ci
}

func (ci *containmentIndex) candidates(q int, eta float64) []int {
	var out []int
	for _, c := range ci.containments[q] {
		if c.containment >= eta {
			out = append(out, c.doc)
		}
	}
	return out
}

// --- rendering ---------------------------------------------------------------

// RenderTable1 formats Table 1 as text.
func RenderTable1(rows []ToolRow) string {
	var sb strings.Builder
	sb.WriteString("Table 1: per-category TP/FP and totals\n")
	fmt.Fprintf(&sb, "%-28s", "Category")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%14s", r.Tool)
	}
	sb.WriteString("\n")
	for _, cat := range ccc.Categories {
		if cat == ccc.UnknownUnknowns {
			continue
		}
		fmt.Fprintf(&sb, "%-28s", cat)
		for _, r := range rows {
			c := r.PerCat[cat]
			fmt.Fprintf(&sb, "%8d/%-5d", c.TP, c.FP)
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%-28s", "Total TP/FP")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%8d/%-5d", r.TotalTP, r.TotalFP)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-28s", "Precision/Recall")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%7.1f%%/%-5.1f", r.Precision*100, r.Recall*100)
	}
	sb.WriteString("\n")
	return sb.String()
}

// RenderTable2 formats Table 2 as text.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: CCC on Original / Functions / Statements\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s TP=%-4d FP=%-3d precision=%5.1f%% recall=%5.1f%%\n",
			r.Dataset, r.TP, r.FP, r.Precision*100, r.Recall*100)
	}
	return sb.String()
}

// RenderTable3 formats Table 3 as text.
func RenderTable3(r Table3Result) string {
	var sb strings.Builder
	sb.WriteString("Table 3: SmartEmbed vs CCD on honeypots (TP/FP per type)\n")
	fmt.Fprintf(&sb, "%-28s %16s %16s\n", "Honeypot Type", "SmartEmbed", "CCD")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-28s %8d/%-7d %8d/%-7d\n",
			row.Type, row.SmartEmbedTP, row.SmartEmbedFP, row.CCDTP, row.CCDFP)
	}
	fmt.Fprintf(&sb, "%-28s %8d/%-7d %8d/%-7d\n", "Total",
		r.SmartEmbed.TP, r.SmartEmbed.FP, r.CCD.TP, r.CCD.FP)
	fmt.Fprintf(&sb, "Precision: SmartEmbed %.4f vs CCD %.4f\n", r.SmartEmbed.Precision(), r.CCD.Precision())
	fmt.Fprintf(&sb, "Recall:    SmartEmbed %.4f vs CCD %.4f\n", r.SmartEmbed.Recall(), r.CCD.Recall())
	fmt.Fprintf(&sb, "F1:        SmartEmbed %.4f vs CCD %.4f\n", r.SmartEmbed.F1(), r.CCD.F1())
	return sb.String()
}

// RenderStudy formats Tables 4-8 from a pipeline result.
func RenderStudy(res *pipeline.Result) string {
	var sb strings.Builder
	sb.WriteString("Table 4: Q&A snippet corpus\n")
	fmt.Fprintf(&sb, "%-26s %8s %9s %9s %9s %8s\n", "Site", "Posts", "Snippets", "Solidity", "Parsable", "Unique")
	for _, site := range []dataset.Site{dataset.StackOverflow, dataset.EthereumSE} {
		st := res.Funnel4.PerSite[site]
		fmt.Fprintf(&sb, "%-26s %8d %9d %9d %9d %8d\n", site, st.Posts, st.Snippets, st.Solidity, st.Parsable, st.Unique)
	}
	tt := res.Funnel4.Total
	fmt.Fprintf(&sb, "%-26s %8d %9d %9d %9d %8d\n", "Total", tt.Posts, tt.Snippets, tt.Solidity, tt.Parsable, tt.Unique)
	fmt.Fprintf(&sb, "(fuzzy grammar parses %d snippets; the standard grammar parses %d)\n\n",
		tt.Parsable, tt.StrictParsable)

	sb.WriteString("Table 5: Spearman correlation of views vs containing contracts\n")
	for _, c := range res.Correlations {
		fmt.Fprintf(&sb, "%-16s n=%-6d rho=%6.3f p=%.4f\n", c.Name, c.SampleSize, c.Rho, c.P)
	}
	sb.WriteString("\n")

	sb.WriteString("Table 6: DASP categories across vulnerable snippets and contracts\n")
	for _, cat := range ccc.Categories {
		e, present := res.Table6[cat]
		if !present {
			continue
		}
		fmt.Fprintf(&sb, "%-28s snippets=%-5d contracts=%d\n", cat, e.Snippets, e.Contracts)
	}
	sb.WriteString("\n")

	f := res.Funnel
	sb.WriteString("Table 7: funnel\n")
	fmt.Fprintf(&sb, "Unique snippets:                    %d\n", f.UniqueSnippets)
	fmt.Fprintf(&sb, "Vulnerable snippets:                %d\n", f.VulnerableSnippets)
	fmt.Fprintf(&sb, "Contained in contracts:             %d\n", f.ContainedInContracts)
	fmt.Fprintf(&sb, "Posted before deployment:           %d (source: %d)\n", f.PostedBefore, f.SourceSnippets)
	fmt.Fprintf(&sb, "Contract clone relations:           %d\n", f.ContractsContaining)
	fmt.Fprintf(&sb, "Unique contracts:                   %d (source: %d)\n", f.UniqueContracts, f.SourceContracts)
	fmt.Fprintf(&sb, "Successfully validated:             %d (phase 1: %d)\n", f.ValidatedContracts, f.Phase1Validated)
	fmt.Fprintf(&sb, "Vulnerable contracts:               %d\n", f.VulnerableContracts)
	fmt.Fprintf(&sb, "Vuln. snippets in vuln. contracts:  %d\n\n", f.VulnSnippetsInVuln)

	mv := res.Manual
	sb.WriteString(fmt.Sprintf("Table 8: ground-truth validation of %d sampled pairs\n", mv.SampleSize))
	fmt.Fprintf(&sb, "%-14s %-12s %10s %10s\n", "", "", "contract TP", "contract FP")
	for _, tc := range []bool{true, false} {
		label := "True clones"
		if !tc {
			label = "False clones"
		}
		for _, st := range []bool{true, false} {
			sl := "snippet TP"
			if !st {
				sl = "snippet FP"
			}
			fmt.Fprintf(&sb, "%-14s %-12s %10d %10d\n", label, sl,
				mv.Counts[tc][st][true], mv.Counts[tc][st][false])
			label = ""
		}
	}
	return sb.String()
}

// RenderFigure9 formats the parameter sweep as a text table (the figure's
// series).
func RenderFigure9(points []PRPoint, se stats.Confusion) string {
	var sb strings.Builder
	sb.WriteString("Figure 9 / Table 9: CCD parameter sweep (precision, recall)\n")
	fmt.Fprintf(&sb, "SmartEmbed reference: precision=%.4f recall=%.4f\n", se.Precision(), se.Recall())
	cur := 0
	for _, p := range points {
		if p.N != cur {
			cur = p.N
			fmt.Fprintf(&sb, "-- N-gram size %d --\n", p.N)
		}
		fmt.Fprintf(&sb, "eta=%.1f eps=%.0f  precision=%.4f recall=%.4f\n",
			p.Eta, p.Epsilon, p.Precision, p.Recall)
	}
	return sb.String()
}

// Figure9CSV renders the sweep as CSV for external plotting: one row per
// (N, η, ε) combination plus a SmartEmbed reference row.
func Figure9CSV(points []PRPoint, se stats.Confusion) string {
	var sb strings.Builder
	sb.WriteString("tool,n,eta,epsilon,precision,recall\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "ccd,%d,%.1f,%.0f,%.6f,%.6f\n", p.N, p.Eta, p.Epsilon, p.Precision, p.Recall)
	}
	fmt.Fprintf(&sb, "smartembed,,,,%.6f,%.6f\n", se.Precision(), se.Recall())
	return sb.String()
}

// BestFigure9 returns the sweep point with the best F1.
func BestFigure9(points []PRPoint) PRPoint {
	best := PRPoint{}
	bestF1 := -1.0
	for _, p := range points {
		f1 := 0.0
		if p.Precision+p.Recall > 0 {
			f1 = 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
		}
		if f1 > bestF1 {
			bestF1 = f1
			best = p
		}
	}
	return best
}
