package experiments

import (
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/ccc"
	"repro/internal/ccd"
	"repro/internal/dataset"
)

func findRow(rows []ToolRow, name string) ToolRow {
	for _, r := range rows {
		if r.Tool == name {
			return r
		}
	}
	return ToolRow{}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1(1)
	if len(rows) != 9 {
		t.Fatalf("tools: %d", len(rows))
	}
	cccRow := findRow(rows, "CCC")

	// CCC reports the most true positives of all tools (the paper's headline).
	for _, r := range rows[1:] {
		if r.TotalTP >= cccRow.TotalTP {
			t.Errorf("%s TP (%d) >= CCC TP (%d)", r.Tool, r.TotalTP, cccRow.TotalTP)
		}
	}
	// CCC recall near the paper's 77.4% and precision near 92.3%.
	if cccRow.Recall < 0.70 || cccRow.Recall > 0.85 {
		t.Errorf("CCC recall: %.3f", cccRow.Recall)
	}
	if cccRow.Precision < 0.85 {
		t.Errorf("CCC precision: %.3f", cccRow.Precision)
	}
	// CCC covers all nine categories; no baseline does.
	cccCats := 0
	for _, c := range cccRow.PerCat {
		if c.TP > 0 {
			cccCats++
		}
	}
	if cccCats != 9 {
		t.Errorf("CCC category coverage: %d", cccCats)
	}
	for _, r := range rows[1:] {
		cats := 0
		for _, c := range r.PerCat {
			if c.TP > 0 {
				cats++
			}
		}
		if cats >= 9 {
			t.Errorf("%s covers %d categories", r.Tool, cats)
		}
	}
	// Conkas is the second-best detector by TP but noisier than CCC.
	conkas := findRow(rows, "Conkas")
	second := 0
	for _, r := range rows[1:] {
		if r.TotalTP > second {
			second = r.TotalTP
		}
	}
	if conkas.TotalTP != second {
		t.Errorf("Conkas should be the best baseline: %d vs %d", conkas.TotalTP, second)
	}
	// SmartCheck: precise but narrow.
	sc := findRow(rows, "SmartCheck")
	if sc.Precision < cccRow.Precision {
		t.Errorf("SmartCheck precision (%.2f) should beat CCC (%.2f)", sc.Precision, cccRow.Precision)
	}
	if sc.TotalTP*2 > cccRow.TotalTP {
		t.Errorf("SmartCheck TP too high: %d", sc.TotalTP)
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2(1)
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	orig, fns, stmts := rows[0], rows[1], rows[2]
	// The paper's pattern: precision rises, recall falls from Original →
	// Functions → Statements.
	if !(fns.Precision >= orig.Precision && stmts.Precision >= fns.Precision) {
		t.Errorf("precision should increase: %.3f %.3f %.3f", orig.Precision, fns.Precision, stmts.Precision)
	}
	if !(fns.Recall <= orig.Recall && stmts.Recall <= fns.Recall) {
		t.Errorf("recall should decrease: %.3f %.3f %.3f", orig.Recall, fns.Recall, stmts.Recall)
	}
	if stmts.Recall < 0.35 {
		t.Errorf("statements recall collapsed: %.3f", stmts.Recall)
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("Table 3 honeypot corpus is expensive; run without -short")
	}
	res := Table3(1, ccd.DefaultConfig)
	if len(res.Rows) != 9 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	// CCD reports more true positives, higher recall and F1 than SmartEmbed.
	if res.CCD.TP <= res.SmartEmbed.TP {
		t.Errorf("CCD TP (%d) should exceed SmartEmbed (%d)", res.CCD.TP, res.SmartEmbed.TP)
	}
	if res.CCD.Recall() <= res.SmartEmbed.Recall() {
		t.Errorf("CCD recall (%.3f) should exceed SmartEmbed (%.3f)", res.CCD.Recall(), res.SmartEmbed.Recall())
	}
	if res.CCD.F1() <= res.SmartEmbed.F1() {
		t.Errorf("CCD F1 (%.3f) should exceed SmartEmbed (%.3f)", res.CCD.F1(), res.SmartEmbed.F1())
	}
	// Both precisions are high; CCD's within 5 points of SmartEmbed's.
	if res.CCD.Precision() < 0.9 {
		t.Errorf("CCD precision: %.3f", res.CCD.Precision())
	}
	if res.SmartEmbed.Precision()-res.CCD.Precision() > 0.05 {
		t.Errorf("precision gap too large: %.3f vs %.3f", res.SmartEmbed.Precision(), res.CCD.Precision())
	}
	// Recall is low for both (the paper's ~0.25): families are diverse.
	if res.CCD.Recall() > 0.6 {
		t.Errorf("CCD recall unrealistically high: %.3f", res.CCD.Recall())
	}
	// Hidden State Update dominates the counts (paper: 6,912 of 8,736).
	var hsu Table3Row
	for _, r := range res.Rows {
		if string(r.Type) == "Hidden State Update" {
			hsu = r
		}
	}
	if hsu.CCDTP*2 < res.CCD.TP {
		t.Errorf("Hidden State Update should dominate: %d of %d", hsu.CCDTP, res.CCD.TP)
	}
}

func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("Figure 9 sweeps 75 parameter combinations; run without -short")
	}
	points, se := Figure9(1)
	if len(points) != 3*5*5 {
		t.Fatalf("points: %d", len(points))
	}
	// Precision grows and recall falls with epsilon (per N, eta fixed).
	byKey := map[[2]int]map[float64]PRPoint{}
	for _, p := range points {
		k := [2]int{p.N, int(p.Eta * 10)}
		if byKey[k] == nil {
			byKey[k] = map[float64]PRPoint{}
		}
		byKey[k][p.Epsilon] = p
	}
	for k, series := range byKey {
		if series[50].Recall < series[90].Recall {
			t.Errorf("N=%d eta=%.1f: recall should fall with epsilon (%.3f -> %.3f)",
				k[0], float64(k[1])/10, series[50].Recall, series[90].Recall)
		}
		if series[90].Precision+1e-9 < series[50].Precision {
			t.Errorf("N=%d eta=%.1f: precision should rise with epsilon (%.3f -> %.3f)",
				k[0], float64(k[1])/10, series[50].Precision, series[90].Precision)
		}
	}
	// The best-F1 combination must beat the SmartEmbed reference on recall
	// while keeping comparable precision.
	best := BestFigure9(points)
	if best.Recall <= se.Recall() {
		t.Errorf("best sweep recall %.3f should exceed SmartEmbed %.3f", best.Recall, se.Recall())
	}
	if best.Precision < 0.85 {
		t.Errorf("best sweep precision: %.3f", best.Precision)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	t1 := RenderTable1(Table1(1))
	if !strings.Contains(t1, "CCC") || !strings.Contains(t1, "Reentrancy") {
		t.Error("table 1 render incomplete")
	}
	t2 := RenderTable2(Table2(1))
	if !strings.Contains(t2, "Statements") {
		t.Error("table 2 render incomplete")
	}
	res := Study(1, 0.004)
	st := RenderStudy(res)
	for _, want := range []string{"Table 4", "Table 5", "Table 6", "Table 7", "Table 8", "Spearman"} {
		if !strings.Contains(st, want) {
			t.Errorf("study render missing %q", want)
		}
	}
	// The Table 3 and Figure 9 renders each regenerate their corpus / sweep
	// the full parameter grid; keep CI fast.
	if testing.Short() {
		t.Skip("Table 3 / Figure 9 renders are expensive; run without -short")
	}
	t3 := RenderTable3(Table3(1, ccd.DefaultConfig))
	if !strings.Contains(t3, "Hidden State Update") {
		t.Error("table 3 render incomplete")
	}
	pts, se := Figure9(1)
	f9 := RenderFigure9(pts, se)
	if !strings.Contains(f9, "N-gram size 3") || !strings.Contains(f9, "eta=0.9") {
		t.Error("figure 9 render incomplete")
	}
	_ = ccc.Categories
}

func TestTable1Deterministic(t *testing.T) {
	a := Table1(7)
	b := Table1(7)
	for i := range a {
		if a[i].TotalTP != b[i].TotalTP || a[i].TotalFP != b[i].TotalFP {
			t.Fatalf("tool %s differs across runs", a[i].Tool)
		}
	}
}

// TestBaselinesRefuseSnippetDatasets documents the paper's core motivation:
// on the Functions/Statements derivations every baseline refuses most files,
// while CCC analyzes all of them.
func TestBaselinesRefuseSnippetDatasets(t *testing.T) {
	orig := dataset.GenerateSmartBugs(1)
	fns := dataset.DeriveFunctions(orig)
	total := fns.Labels()
	cccRow := evalTool("CCC", cccAsTool, fns, total)
	if cccRow.Refused != 0 {
		t.Errorf("CCC refused %d snippet files", cccRow.Refused)
	}
	for _, tool := range baseline.Tools() {
		row := evalTool(tool.Name(), tool.Analyze, fns, total)
		if row.Refused*2 < len(fns.Files) {
			t.Errorf("%s refused only %d of %d snippet files", tool.Name(), row.Refused, len(fns.Files))
		}
	}
}
