package solidity_test

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/solidity"
)

// FuzzParse: the parser must never panic on arbitrary input in either
// grammar mode, and the printer must be a fixpoint of the fuzzy parser —
// whatever Parse accepts, Print renders back into something Parse accepts
// again (with an identical second print, so print∘parse converges after one
// round). Seeded from the generated study corpus plus syntax edge cases;
// the committed corpus lives in testdata/fuzz/FuzzParse.
func FuzzParse(f *testing.F) {
	for _, t := range dataset.VulnTemplates() {
		f.Add(t.Source)
	}
	hp := dataset.GenerateHoneypots(1)
	for i := 0; i < 5 && i < len(hp); i++ {
		f.Add(hp[i].Source)
	}
	for _, s := range []string{
		"",
		"contract C {",
		"function f(uint x) public { x = ; }",
		"contract A { function f() public { if (x) { y = 1 } else z = 2 } }",
		"pragma solidity ^0.8.0;\ninterface I { function f() external; }",
		"x = msg.sender.call{value: 1}(\"\")",
		"for (uint i = 0; i < 10; i++) { total += i }",
		"contract \x00\xff { }",
		"modifier m() { _; } function g() m public {}",
		"assembly { let x := 0 }",
	} {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		// Strict mode: must not panic; nothing else is promised for
		// arbitrary input.
		_, _ = solidity.ParseStrict(src)

		unit, err := solidity.Parse(src)
		if err != nil || unit == nil {
			return
		}
		printed := solidity.Print(unit)
		reparsed, err := solidity.Parse(printed)
		if err != nil {
			t.Fatalf("printed form no longer parses: %v\ninput:   %q\nprinted: %q", err, src, printed)
		}
		// One round of print∘parse must reach a fixpoint: printing the
		// reparsed unit yields the same text.
		if again := solidity.Print(reparsed); again != printed {
			t.Fatalf("print/parse does not converge:\nfirst:  %q\nsecond: %q\ninput:  %q", printed, again, src)
		}
	})
}
