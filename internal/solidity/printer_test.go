package solidity

import (
	"strings"
	"testing"
)

// structurally compares two ASTs by node-kind sequence.
func shapeOf(u *SourceUnit) []string {
	var out []string
	Walk(u, func(n Node) bool {
		out = append(out, kindName(n))
		return true
	})
	return out
}

func kindName(n Node) string {
	switch x := n.(type) {
	case *ContractDecl:
		return "contract:" + x.Name
	case *FunctionDecl:
		return "function:" + x.Name
	case *StateVarDecl:
		return "statevar:" + x.Name
	case *Ident:
		return "ident:" + x.Name
	case *CallExpr:
		return "call"
	case *BinaryExpr:
		return "bin:" + x.Op.String()
	case *IfStmt:
		return "if"
	case *ForStmt:
		return "for"
	case *WhileStmt:
		return "while"
	case *ReturnStmt:
		return "return"
	case *MemberAccess:
		return "member:" + x.Member
	case *IndexAccess:
		return "index"
	case *NumberLit:
		return "num:" + x.Value
	case *Block:
		return "block"
	}
	return "node"
}

var roundTripSources = []string{
	`contract C {
		uint x;
		mapping(address => uint) balances;
		function f(uint a, address b) public returns (bool) {
			if (a > 0) { balances[b] += a; } else { balances[b] = 0; }
			for (uint i = 0; i < a; i++) { x += i; }
			while (x > 100) { x -= 1; }
			return true;
		}
	}`,
	`contract D is Base {
		event Log(address indexed who, uint what);
		modifier onlyOwner() { require(msg.sender == owner); _; }
		address owner;
		constructor() { owner = msg.sender; }
		function pay(address to) public payable onlyOwner {
			to.transfer(msg.value);
			emit Log(to, msg.value);
		}
	}`,
	`contract E {
		struct P { uint a; uint b; }
		enum S { On, Off }
		function g() public {
			P memory p;
			delete x;
			do { x++; } while (x < 3);
			msg.sender.call{value: 1 ether}("");
		}
		uint x;
	}`,
	`function lonely(uint n) public returns (uint) {
		return n * 2 + 1;
	}`,
	`require(msg.sender == owner);
msg.sender.transfer(amount);`,
}

func TestPrintParseRoundTrip(t *testing.T) {
	for i, src := range roundTripSources {
		u1, err := Parse(src)
		if err != nil {
			t.Fatalf("source %d: %v", i, err)
		}
		printed := Print(u1)
		u2, err := Parse(printed)
		if err != nil {
			t.Fatalf("source %d: reparse failed: %v\nprinted:\n%s", i, err, printed)
		}
		s1, s2 := shapeOf(u1), shapeOf(u2)
		if len(s1) != len(s2) {
			t.Fatalf("source %d: shape length %d vs %d\nprinted:\n%s", i, len(s1), len(s2), printed)
		}
		for j := range s1 {
			if s1[j] != s2[j] {
				t.Fatalf("source %d node %d: %q vs %q\nprinted:\n%s", i, j, s1[j], s2[j], printed)
			}
		}
	}
}

func TestPrintIdempotent(t *testing.T) {
	for i, src := range roundTripSources {
		u1, _ := Parse(src)
		p1 := Print(u1)
		u2, err := Parse(p1)
		if err != nil {
			t.Fatalf("source %d: %v", i, err)
		}
		p2 := Print(u2)
		if p1 != p2 {
			t.Errorf("source %d: print not idempotent:\n%s\n---\n%s", i, p1, p2)
		}
	}
}

func TestPrintContainsDeclarations(t *testing.T) {
	u, _ := Parse(roundTripSources[1])
	out := Print(u)
	for _, want := range []string{"contract D is Base", "modifier onlyOwner", "event Log",
		"constructor()", "emit Log", "_;", "require(msg.sender == owner)"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintBenchmarkCorpusRoundTrips(t *testing.T) {
	// Every vulnerable template must survive a print/parse round trip.
	for _, src := range roundTripSources {
		u, _ := Parse(src)
		if _, err := Parse(Print(u)); err != nil {
			t.Errorf("round trip failed: %v", err)
		}
	}
}
