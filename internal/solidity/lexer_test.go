package solidity

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasics(t *testing.T) {
	toks := Tokenize(`contract C { uint x = 42; }`)
	want := []Kind{KwContract, IDENT, LBRACE, KwUint, IDENT, ASSIGN, NUMBER, SEMICOLON, RBRACE, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tok %d: got %s want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	cases := map[string]Kind{
		"=>": ARROW, "==": EQ, "!=": NEQ, "<=": LEQ, ">=": GEQ,
		"&&": AND, "||": OR, "<<": SHL, ">>": SHR, "**": POW,
		"++": INC, "--": DEC, "+=": ADDASSIGN, "-=": SUBASSIGN,
		"<<=": SHLASSIGN, ">>=": SHRASSIGN, "...": PLACEHOLDER,
	}
	for src, want := range cases {
		toks := Tokenize(src)
		if toks[0].Kind != want {
			t.Errorf("%q: got %s want %s", src, toks[0].Kind, want)
		}
		if len(toks) != 2 {
			t.Errorf("%q: got %d tokens, want operator+EOF", src, len(toks))
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	toks := Tokenize("a // line comment\nb /* block */ c")
	got := kinds(toks)
	want := []Kind{IDENT, IDENT, IDENT, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	if !toks[1].NewlineBefore {
		t.Error("token after line comment should have NewlineBefore")
	}
	if toks[2].NewlineBefore {
		t.Error("token after inline block comment should not have NewlineBefore")
	}
}

func TestTokenizeKeepComments(t *testing.T) {
	lx := NewLexer("// hi\nx")
	lx.KeepComments = true
	t1 := lx.Next()
	if t1.Kind != COMMENT || !strings.Contains(t1.Literal, "hi") {
		t.Fatalf("got %v", t1)
	}
}

func TestTokenizeStrings(t *testing.T) {
	toks := Tokenize(`"hello" 'world' "esc\"d"`)
	if toks[0].Literal != "hello" || toks[1].Literal != "world" || toks[2].Literal != `esc"d` {
		t.Fatalf("got %q %q %q", toks[0].Literal, toks[1].Literal, toks[2].Literal)
	}
}

func TestTokenizeUnterminatedString(t *testing.T) {
	toks := Tokenize("\"unterminated\nnext")
	if toks[0].Kind != STRING || toks[0].Literal != "unterminated" {
		t.Fatalf("got %v", toks[0])
	}
	if toks[1].Kind != IDENT || toks[1].Literal != "next" {
		t.Fatalf("got %v", toks[1])
	}
}

func TestTokenizeHexString(t *testing.T) {
	toks := Tokenize(`hex"deadbeef"`)
	if toks[0].Kind != HEXSTRING || toks[0].Literal != "deadbeef" {
		t.Fatalf("got %v", toks[0])
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := []string{"0", "42", "0x2A", "1e18", "1_000_000", "2.5", "1e-3"}
	for _, src := range cases {
		toks := Tokenize(src)
		if toks[0].Kind != NUMBER || toks[0].Literal != src {
			t.Errorf("%q: got %v", src, toks[0])
		}
	}
}

func TestTokenizeNumberDotMember(t *testing.T) {
	// `1.send` must not swallow the dot into the number.
	toks := Tokenize("x[1].send")
	got := kinds(toks)
	want := []Kind{IDENT, LBRACKET, NUMBER, RBRACKET, DOT, IDENT, EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tok %d: got %v want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestTokenizeUnicodeEllipsis(t *testing.T) {
	toks := Tokenize("a … b")
	if toks[1].Kind != PLACEHOLDER {
		t.Fatalf("got %v", toks[1])
	}
}

func TestTokenizePositions(t *testing.T) {
	toks := Tokenize("a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Column != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Column != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
	if !toks[1].NewlineBefore {
		t.Error("b should have NewlineBefore")
	}
}

func TestLookupKeywords(t *testing.T) {
	for _, kw := range []string{"contract", "function", "mapping", "payable", "returns", "ether"} {
		if Lookup(kw) == IDENT {
			t.Errorf("%q should be a keyword", kw)
		}
	}
	for _, id := range []string{"foo", "this", "now", "msg", "Contract"} {
		if Lookup(id) != IDENT {
			t.Errorf("%q should be an identifier", id)
		}
	}
}

func TestIsElementaryType(t *testing.T) {
	yes := []string{"uint", "uint256", "uint8", "int128", "bytes32", "bytes1", "address", "bool", "string", "bytes"}
	no := []string{"uint257x", "bytesXY", "Contract", "uintx", "u", ""}
	for _, s := range yes {
		if !IsElementaryType(s) {
			t.Errorf("%q should be elementary", s)
		}
	}
	for _, s := range no {
		if IsElementaryType(s) {
			t.Errorf("%q should not be elementary", s)
		}
	}
}

func TestStripComments(t *testing.T) {
	src := "a // c1\nb /* c2\nc2b */ c \"s//not\" d"
	got := StripComments(src)
	if strings.Contains(got, "c1") || strings.Contains(got, "c2") {
		t.Fatalf("comments remain: %q", got)
	}
	if !strings.Contains(got, "s//not") {
		t.Fatalf("string content mangled: %q", got)
	}
	// Newlines inside block comments preserved.
	if strings.Count(got, "\n") != strings.Count(src, "\n") {
		t.Fatalf("newline count changed: %q", got)
	}
}

func TestTokenizeNeverPanicsAndTerminates(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		return len(toks) >= 1 && toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenizeOffsetsMonotonic(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		last := -1
		for _, tok := range toks[:len(toks)-1] {
			if tok.Pos.Offset < last {
				return false
			}
			last = tok.Pos.Offset
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
