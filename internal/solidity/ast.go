package solidity

import (
	"strings"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() Position
	End() Position
}

// Span is embedded in every node to record its source extent.
type Span struct {
	StartPos Position
	EndPos   Position
}

// Pos returns the start of the node.
func (s *Span) Pos() Position { return s.StartPos }

// End returns the position just past the node.
func (s *Span) End() Position { return s.EndPos }

// ---------------------------------------------------------------------------
// Source unit
// ---------------------------------------------------------------------------

// SourceUnit is the root of a parsed file or snippet. Thanks to the fuzzy
// grammar, Decls may directly contain functions, statements or expressions
// that would normally be nested inside contracts.
type SourceUnit struct {
	Span
	Pragmas []*PragmaDirective
	Imports []*ImportDirective
	Decls   []Node // *ContractDecl, *FunctionDecl, *StateVarDecl, Stmt, ...
}

// PragmaDirective is `pragma solidity ^0.8.0;` and friends.
type PragmaDirective struct {
	Span
	Name  string
	Value string
}

// ImportDirective is an import statement (path only; symbol lists ignored).
type ImportDirective struct {
	Span
	Path string
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

// ContractKind distinguishes contract/interface/library declarations.
type ContractKind int

// Contract kinds.
const (
	KindContract ContractKind = iota
	KindInterface
	KindLibrary
)

func (k ContractKind) String() string {
	switch k {
	case KindInterface:
		return "interface"
	case KindLibrary:
		return "library"
	default:
		return "contract"
	}
}

// ContractDecl is a contract, interface or library declaration.
type ContractDecl struct {
	Span
	Kind     ContractKind
	Abstract bool
	Name     string
	Bases    []string // inheritance list
	Parts    []Node   // functions, state vars, modifiers, events, structs, enums, usings
	// Inferred marks declarations synthesized by the parser to wrap orphan
	// snippet-level functions/statements.
	Inferred bool
}

// StateVarDecl is a contract-level variable declaration.
type StateVarDecl struct {
	Span
	Type       TypeName
	Name       string
	Visibility string // public/private/internal/"" etc.
	Constant   bool
	Immutable  bool
	Value      Expr // optional initializer
}

// Param is a function/event/struct parameter or field.
type Param struct {
	Span
	Type    TypeName
	Name    string
	Storage string // memory/storage/calldata/""
	Indexed bool
}

// FunctionDecl is a function, constructor, fallback or receive declaration.
type FunctionDecl struct {
	Span
	Name          string // empty for default (fallback) functions
	IsConstructor bool
	IsFallback    bool // unnamed `function()` or `fallback()`
	IsReceive     bool
	Params        []*Param
	Returns       []*Param
	Modifiers     []*ModifierInvocation
	Visibility    string
	Mutability    string // pure/view/payable/constant/""
	Virtual       bool
	Override      bool
	Body          *Block // nil for unimplemented (interface) functions
	// Inferred marks functions synthesized by the parser to wrap orphan
	// snippet-level statements.
	Inferred bool
}

// Header returns the function signature text up to the body, used by
// queries that inspect `split(f.code,'{')[0]` in the paper.
func (f *FunctionDecl) Header() string {
	var sb strings.Builder
	switch {
	case f.IsConstructor:
		sb.WriteString("constructor")
	case f.IsReceive:
		sb.WriteString("receive")
	default:
		sb.WriteString("function")
		if f.Name != "" {
			sb.WriteString(" " + f.Name)
		}
	}
	sb.WriteString("(")
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(TypeString(p.Type))
		if p.Name != "" {
			sb.WriteString(" " + p.Name)
		}
	}
	sb.WriteString(")")
	if f.Visibility != "" {
		sb.WriteString(" " + f.Visibility)
	}
	if f.Mutability != "" {
		sb.WriteString(" " + f.Mutability)
	}
	for _, m := range f.Modifiers {
		sb.WriteString(" " + m.Name)
	}
	return sb.String()
}

// ModifierInvocation is the application of a modifier (or base constructor)
// in a function header.
type ModifierInvocation struct {
	Span
	Name string
	Args []Expr
}

// ModifierDecl declares a function modifier.
type ModifierDecl struct {
	Span
	Name   string
	Params []*Param
	Body   *Block
}

// EventDecl declares an event.
type EventDecl struct {
	Span
	Name      string
	Params    []*Param
	Anonymous bool
}

// StructDecl declares a struct type.
type StructDecl struct {
	Span
	Name   string
	Fields []*Param
}

// EnumDecl declares an enum type.
type EnumDecl struct {
	Span
	Name    string
	Members []string
}

// UsingDecl is `using L for T;`.
type UsingDecl struct {
	Span
	Library string
	Target  TypeName // nil for `*`
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

// TypeName is implemented by all type AST nodes.
type TypeName interface {
	Node
	typeName()
}

// ElementaryType is a built-in type such as uint256 or address.
type ElementaryType struct {
	Span
	Name    string
	Payable bool // address payable
}

func (*ElementaryType) typeName() {}

// UserType is a user-defined type reference, possibly qualified (A.B).
type UserType struct {
	Span
	Name string
}

func (*UserType) typeName() {}

// MappingType is mapping(K => V).
type MappingType struct {
	Span
	Key   TypeName
	Value TypeName
}

func (*MappingType) typeName() {}

// ArrayType is T[] or T[n].
type ArrayType struct {
	Span
	Elem   TypeName
	Length Expr // nil for dynamic arrays
}

func (*ArrayType) typeName() {}

// FunctionType is a function type used as a variable type.
type FunctionType struct {
	Span
	Params  []*Param
	Returns []*Param
}

func (*FunctionType) typeName() {}

// TypeString renders a type canonically ("uint256", "mapping(address => uint)").
func TypeString(t TypeName) string {
	switch tt := t.(type) {
	case nil:
		return ""
	case *ElementaryType:
		if tt.Payable {
			return tt.Name + " payable"
		}
		return tt.Name
	case *UserType:
		return tt.Name
	case *MappingType:
		return "mapping(" + TypeString(tt.Key) + " => " + TypeString(tt.Value) + ")"
	case *ArrayType:
		if tt.Length != nil {
			return TypeString(tt.Elem) + "[" + ExprString(tt.Length) + "]"
		}
		return TypeString(tt.Elem) + "[]"
	case *FunctionType:
		// Print the parameter parens even when empty: a bare `function`
		// token in statement position re-parses as a function declaration,
		// not a type expression.
		var params, returns []string
		for _, p := range tt.Params {
			params = append(params, TypeString(p.Type))
		}
		s := "function (" + strings.Join(params, ", ") + ")"
		for _, r := range tt.Returns {
			returns = append(returns, TypeString(r.Type))
		}
		if len(returns) > 0 {
			s += " returns (" + strings.Join(returns, ", ") + ")"
		}
		return s
	}
	return "?"
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmt()
}

// Block is `{ ... }`.
type Block struct {
	Span
	Stmts []Stmt
}

func (*Block) stmt() {}

// ExprStmt wraps an expression used as a statement.
type ExprStmt struct {
	Span
	X Expr
}

func (*ExprStmt) stmt() {}

// VarDecl is a single declared local variable within a VarDeclStmt.
type VarDecl struct {
	Span
	Type    TypeName // nil in tuple positions without type, or `var`
	Name    string
	Storage string
}

// VarDeclStmt is a local variable declaration, possibly a tuple
// `(uint a, uint b) = f();`.
type VarDeclStmt struct {
	Span
	Decls []*VarDecl // nil entries for skipped tuple slots
	Value Expr       // optional initializer
}

func (*VarDeclStmt) stmt() {}

// IfStmt is an if/else statement.
type IfStmt struct {
	Span
	Cond Expr
	Then Stmt
	Else Stmt // nil if absent
}

func (*IfStmt) stmt() {}

// ForStmt is a for loop.
type ForStmt struct {
	Span
	Init Stmt // nil, VarDeclStmt or ExprStmt
	Cond Expr // nil if absent
	Post Expr // nil if absent
	Body Stmt
}

func (*ForStmt) stmt() {}

// WhileStmt is a while loop.
type WhileStmt struct {
	Span
	Cond Expr
	Body Stmt
}

func (*WhileStmt) stmt() {}

// DoWhileStmt is a do/while loop.
type DoWhileStmt struct {
	Span
	Body Stmt
	Cond Expr
}

func (*DoWhileStmt) stmt() {}

// ReturnStmt is a return statement.
type ReturnStmt struct {
	Span
	Value Expr // nil if absent
}

func (*ReturnStmt) stmt() {}

// BreakStmt is a break statement.
type BreakStmt struct{ Span }

func (*BreakStmt) stmt() {}

// ContinueStmt is a continue statement.
type ContinueStmt struct{ Span }

func (*ContinueStmt) stmt() {}

// ThrowStmt is the legacy `throw;` (always rolls back).
type ThrowStmt struct{ Span }

func (*ThrowStmt) stmt() {}

// EmitStmt is `emit Event(...)`.
type EmitStmt struct {
	Span
	Call *CallExpr
}

func (*EmitStmt) stmt() {}

// DeleteStmt is `delete x;`.
type DeleteStmt struct {
	Span
	X Expr
}

func (*DeleteStmt) stmt() {}

// PlaceholderStmt is the `_;` inside a modifier body.
type PlaceholderStmt struct{ Span }

func (*PlaceholderStmt) stmt() {}

// AssemblyStmt is an inline assembly block; the body is kept as raw text
// (only 3.6% of snippets contain assembly per the paper, so it is not
// modeled further).
type AssemblyStmt struct {
	Span
	Raw string
}

func (*AssemblyStmt) stmt() {}

// UncheckedBlock is `unchecked { ... }` (Solidity >= 0.8).
type UncheckedBlock struct {
	Span
	Body *Block
}

func (*UncheckedBlock) stmt() {}

// TryStmt is try/catch over an external call.
type TryStmt struct {
	Span
	Call    Expr
	Returns []*Param
	Body    *Block
	Catches []*CatchClause
}

func (*TryStmt) stmt() {}

// CatchClause is one catch arm of a try statement.
type CatchClause struct {
	Span
	Ident  string
	Params []*Param
	Body   *Block
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	expr()
}

// Ident is an identifier reference.
type Ident struct {
	Span
	Name string
}

func (*Ident) expr() {}

// NumberLit is a numeric literal with an optional denomination unit.
type NumberLit struct {
	Span
	Value string
	Unit  string // ether/wei/days/... or ""
}

func (*NumberLit) expr() {}

// escapeStringLit renders a decoded string value back into double-quoted
// literal syntax, inverting exactly the escapes the lexer understands —
// embedded quotes, backslashes, newlines (which would otherwise terminate
// the literal), tabs, carriage returns and NUL.
func escapeStringLit(v string) string {
	var sb strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		case '\r':
			sb.WriteString(`\r`)
		case 0:
			sb.WriteString(`\0`)
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// StringLit is a string literal.
type StringLit struct {
	Span
	Value string
	Hex   bool
}

func (*StringLit) expr() {}

// BoolLit is true/false.
type BoolLit struct {
	Span
	Value bool
}

func (*BoolLit) expr() {}

// MemberAccess is `x.member`.
type MemberAccess struct {
	Span
	X      Expr
	Member string
}

func (*MemberAccess) expr() {}

// IndexAccess is `x[i]` (Index nil for `x[]` in type contexts).
type IndexAccess struct {
	Span
	X     Expr
	Index Expr
}

func (*IndexAccess) expr() {}

// CallOption is a {key: value} call option such as value or gas.
type CallOption struct {
	Span
	Key   string
	Value Expr
}

// CallExpr is a call `f(args)` with optional named arguments and
// {value:..., gas:...} options.
type CallExpr struct {
	Span
	Callee   Expr
	Args     []Expr
	ArgNames []string // parallel to Args when named-argument syntax used; nil otherwise
	Options  []*CallOption
}

func (*CallExpr) expr() {}

// NewExpr is `new T`.
type NewExpr struct {
	Span
	Type TypeName
}

func (*NewExpr) expr() {}

// TypeExpr wraps a type used in expression position, e.g. the callee of the
// cast `address(x)` or `uint256` in `type(uint256).max`.
type TypeExpr struct {
	Span
	Type TypeName
}

func (*TypeExpr) expr() {}

// BinaryExpr covers arithmetic/logical/comparison operators and all
// assignment operators (Op is the token kind).
type BinaryExpr struct {
	Span
	Op  Kind
	LHS Expr
	RHS Expr
}

func (*BinaryExpr) expr() {}

// UnaryExpr is a prefix or postfix unary operation.
type UnaryExpr struct {
	Span
	Op     Kind
	Prefix bool
	X      Expr
}

func (*UnaryExpr) expr() {}

// ConditionalExpr is `c ? a : b`.
type ConditionalExpr struct {
	Span
	Cond Expr
	Then Expr
	Else Expr
}

func (*ConditionalExpr) expr() {}

// TupleExpr is `(a, b)`; single-element tuples are parenthesized exprs.
type TupleExpr struct {
	Span
	Elems []Expr // nil entries for skipped slots
}

func (*TupleExpr) expr() {}

// ---------------------------------------------------------------------------
// Canonical printing
// ---------------------------------------------------------------------------

// ExprString renders an expression canonically with minimal whitespace, e.g.
// `msg.sender`, `balances[msg.sender] += amount`. The CPG uses this as the
// `code` property of expression nodes, matching the paper's query literals.
func ExprString(e Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e)
	return sb.String()
}

func writeExpr(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case nil:
		return
	case *Ident:
		sb.WriteString(x.Name)
	case *NumberLit:
		sb.WriteString(x.Value)
		if x.Unit != "" {
			sb.WriteString(" " + x.Unit)
		}
	case *StringLit:
		sb.WriteString("\"")
		sb.WriteString(escapeStringLit(x.Value))
		sb.WriteString("\"")
	case *BoolLit:
		if x.Value {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case *MemberAccess:
		writeExpr(sb, x.X)
		sb.WriteString(".")
		sb.WriteString(x.Member)
	case *IndexAccess:
		writeExpr(sb, x.X)
		sb.WriteString("[")
		writeExpr(sb, x.Index)
		sb.WriteString("]")
	case *CallExpr:
		writeExpr(sb, x.Callee)
		if len(x.Options) > 0 {
			sb.WriteString("{")
			for i, o := range x.Options {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(o.Key + ": ")
				writeExpr(sb, o.Value)
			}
			sb.WriteString("}")
		}
		sb.WriteString("(")
		for i, a := range x.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			if x.ArgNames != nil && i < len(x.ArgNames) && x.ArgNames[i] != "" {
				sb.WriteString(x.ArgNames[i] + ": ")
			}
			writeExpr(sb, a)
		}
		sb.WriteString(")")
	case *NewExpr:
		sb.WriteString("new " + TypeString(x.Type))
	case *TypeExpr:
		sb.WriteString(TypeString(x.Type))
	case *BinaryExpr:
		writeExpr(sb, x.LHS)
		sb.WriteString(" " + x.Op.String() + " ")
		writeExpr(sb, x.RHS)
	case *UnaryExpr:
		if x.Prefix {
			sb.WriteString(x.Op.String())
			writeExpr(sb, x.X)
		} else {
			writeExpr(sb, x.X)
			sb.WriteString(x.Op.String())
		}
	case *ConditionalExpr:
		writeExpr(sb, x.Cond)
		sb.WriteString(" ? ")
		writeExpr(sb, x.Then)
		sb.WriteString(" : ")
		writeExpr(sb, x.Else)
	case *TupleExpr:
		sb.WriteString("(")
		for i, el := range x.Elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, el)
		}
		sb.WriteString(")")
	}
}

// Walk traverses the AST rooted at n in depth-first order, calling fn for
// each node. If fn returns false the subtree below the node is skipped.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || isNilNode(n) {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range Children(n) {
		Walk(c, fn)
	}
}

func isNilNode(n Node) bool {
	switch v := n.(type) {
	case *SourceUnit:
		return v == nil
	case *ContractDecl:
		return v == nil
	case *FunctionDecl:
		return v == nil
	case *Block:
		return v == nil
	}
	return false
}

// Children returns the direct child nodes of n.
func Children(n Node) []Node {
	var out []Node
	add := func(c Node) {
		switch v := c.(type) {
		case nil:
		case Expr:
			if v != nil {
				out = append(out, v)
			}
		default:
			out = append(out, c)
		}
	}
	switch x := n.(type) {
	case *SourceUnit:
		for _, d := range x.Decls {
			add(d)
		}
	case *ContractDecl:
		for _, p := range x.Parts {
			add(p)
		}
	case *StateVarDecl:
		if x.Type != nil {
			add(x.Type)
		}
		if x.Value != nil {
			add(x.Value)
		}
	case *FunctionDecl:
		for _, p := range x.Params {
			add(p)
		}
		for _, p := range x.Returns {
			add(p)
		}
		for _, m := range x.Modifiers {
			add(m)
		}
		if x.Body != nil {
			add(x.Body)
		}
	case *Param:
		if x.Type != nil {
			add(x.Type)
		}
	case *ModifierInvocation:
		for _, a := range x.Args {
			add(a)
		}
	case *ModifierDecl:
		for _, p := range x.Params {
			add(p)
		}
		if x.Body != nil {
			add(x.Body)
		}
	case *EventDecl:
		for _, p := range x.Params {
			add(p)
		}
	case *StructDecl:
		for _, f := range x.Fields {
			add(f)
		}
	case *UsingDecl:
		if x.Target != nil {
			add(x.Target)
		}
	case *MappingType:
		add(x.Key)
		add(x.Value)
	case *ArrayType:
		add(x.Elem)
		if x.Length != nil {
			add(x.Length)
		}
	case *FunctionType:
		for _, p := range x.Params {
			add(p)
		}
		for _, p := range x.Returns {
			add(p)
		}
	case *Block:
		for _, s := range x.Stmts {
			add(s)
		}
	case *ExprStmt:
		add(x.X)
	case *VarDeclStmt:
		for _, d := range x.Decls {
			if d != nil {
				add(d)
			}
		}
		if x.Value != nil {
			add(x.Value)
		}
	case *VarDecl:
		if x.Type != nil {
			add(x.Type)
		}
	case *IfStmt:
		add(x.Cond)
		add(x.Then)
		if x.Else != nil {
			add(x.Else)
		}
	case *ForStmt:
		if x.Init != nil {
			add(x.Init)
		}
		if x.Cond != nil {
			add(x.Cond)
		}
		if x.Post != nil {
			add(x.Post)
		}
		add(x.Body)
	case *WhileStmt:
		add(x.Cond)
		add(x.Body)
	case *DoWhileStmt:
		add(x.Body)
		add(x.Cond)
	case *ReturnStmt:
		if x.Value != nil {
			add(x.Value)
		}
	case *EmitStmt:
		add(x.Call)
	case *DeleteStmt:
		add(x.X)
	case *UncheckedBlock:
		add(x.Body)
	case *TryStmt:
		add(x.Call)
		for _, p := range x.Returns {
			add(p)
		}
		add(x.Body)
		for _, c := range x.Catches {
			add(c)
		}
	case *CatchClause:
		for _, p := range x.Params {
			add(p)
		}
		add(x.Body)
	case *MemberAccess:
		add(x.X)
	case *IndexAccess:
		add(x.X)
		if x.Index != nil {
			add(x.Index)
		}
	case *CallExpr:
		add(x.Callee)
		for _, o := range x.Options {
			add(o.Value)
		}
		for _, a := range x.Args {
			add(a)
		}
	case *NewExpr:
		add(x.Type)
	case *TypeExpr:
		add(x.Type)
	case *BinaryExpr:
		add(x.LHS)
		add(x.RHS)
	case *UnaryExpr:
		add(x.X)
	case *ConditionalExpr:
		add(x.Cond)
		add(x.Then)
		add(x.Else)
	case *TupleExpr:
		for _, e := range x.Elems {
			if e != nil {
				add(e)
			}
		}
	}
	return out
}
